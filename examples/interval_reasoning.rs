//! Interval reasoning in the Allen tradition (§1–2 of the paper) plus
//! temporal-logic model checking, both running on generalized lrp
//! relations.
//!
//! Run with: `cargo run --example interval_reasoning`

use itd_core::{Atom, GenRelation, GenTuple, Lrp, Schema, Value};
use itd_interval::{allen_join, allen_select, compose, AllenRel};
use itd_tl::{holds_at, valid, Tl};

fn lrp(c: i64, k: i64) -> Lrp {
    Lrp::new(c, k).unwrap()
}

fn main() {
    // ---- Allen relations over infinite interval relations ----
    // Maintenance windows [20n, 20n+6] and meetings [10n+3, 10n+5].
    let windows = GenRelation::builder(Schema::new(2, 1))
        .push_row(
            GenTuple::builder()
                .lrps(vec![lrp(0, 20), lrp(6, 20)])
                .atoms([Atom::diff_eq(1, 0, 6)])
                .data(vec![Value::str("window")])
                .build()
                .unwrap(),
        )
        .build()
        .unwrap();
    let meetings = GenRelation::builder(Schema::new(2, 1))
        .push_row(
            GenTuple::builder()
                .lrps(vec![lrp(3, 10), lrp(5, 10)])
                .atoms([Atom::diff_eq(1, 0, 2)])
                .data(vec![Value::str("meeting")])
                .build()
                .unwrap(),
        )
        .build()
        .unwrap();

    // Which meetings happen DURING a maintenance window? The join is
    // symbolic — it covers all infinitely many interval pairs at once.
    let clashes = allen_join(&meetings, &windows, AllenRel::During).unwrap();
    println!(
        "meetings during windows: {} generalized tuple(s)",
        clashes.tuple_count()
    );
    // Meeting [3,5] sits inside window [0,6]; meeting [13,15] does not sit
    // inside any window ([0,6] ended, [20,26] not started).
    assert!(clashes.contains(
        &[3, 5, 0, 6],
        &[Value::str("meeting"), Value::str("window")]
    ));
    assert!(clashes.contains(
        &[23, 25, 20, 26],
        &[Value::str("meeting"), Value::str("window")]
    ));
    assert!(!clashes.contains(
        &[13, 15, 0, 6],
        &[Value::str("meeting"), Value::str("window")]
    ));
    println!("  [3,5] during [0,6] ✓, [13,15] clash-free ✓ — for ALL n");

    // Select against a fixed interval: windows strictly after lunch [12, 13].
    let after_lunch = allen_select(&windows, AllenRel::After, 12, 13).unwrap();
    assert!(after_lunch.contains(&[20, 26], &[Value::str("window")]));
    assert!(!after_lunch.contains(&[0, 6], &[Value::str("window")]));
    println!("windows after [12,13]: starts at [20,26] ✓");

    // The Allen composition table, derived from the DBM engine rather than
    // transcribed: overlaps ∘ overlaps = {before, meets, overlaps}.
    let oo = compose(AllenRel::Overlaps, AllenRel::Overlaps).unwrap();
    println!(
        "overlaps ∘ overlaps = {:?}",
        oo.iter().map(ToString::to_string).collect::<Vec<_>>()
    );
    assert_eq!(
        oo,
        vec![AllenRel::Before, AllenRel::Meets, AllenRel::Overlaps]
    );

    // ---- Temporal logic: the traffic light, verified over all of Z ----
    let mut cat = itd_query::MemoryCatalog::new();
    let phase = |offset| {
        GenRelation::builder(Schema::new(1, 0))
            .push_row(GenTuple::unconstrained(vec![lrp(offset, 3)], vec![]))
            .build()
            .unwrap()
    };
    cat.insert("green", phase(0));
    cat.insert("yellow", phase(1));
    cat.insert("red", phase(2));

    // G (green → X yellow): the light never skips yellow.
    let never_skips = Tl::always(Tl::implies(Tl::prop("green"), Tl::next(Tl::prop("yellow"))));
    assert!(valid(&cat, &never_skips).unwrap());
    println!("G(green → X yellow): valid over all of Z");

    // G F green: green recurs forever (a liveness property no finite
    // unrolling can establish).
    let recurrent = Tl::always(Tl::eventually(Tl::prop("green")));
    assert!(valid(&cat, &recurrent).unwrap());
    println!("G F green: valid — liveness over infinite time");

    // Bounded response: from anywhere, green within 2 ticks.
    assert!(valid(&cat, &Tl::eventually_within(2, Tl::prop("green"))).unwrap());
    assert!(!valid(&cat, &Tl::eventually_within(1, Tl::prop("green"))).unwrap());
    println!("F≤2 green valid, F≤1 green invalid — exact metric bounds");

    // Until: at a green instant, ¬red holds until yellow.
    assert!(holds_at(
        &cat,
        &Tl::until(Tl::not(Tl::prop("red")), Tl::prop("yellow")),
        0
    )
    .unwrap());
    println!("(¬red) U yellow holds at green instants");
}

//! Quickstart: define a temporal database with infinite (periodic)
//! information, run relational algebra, and ask first-order queries.
//!
//! Run with: `cargo run --example quickstart`

use itd_db::{Database, QueryOpts, TupleSpec};

/// Closed-formula truth through the unified `run` entry point.
fn ask(db: &Database, src: &str) -> bool {
    db.run(src, QueryOpts::new())
        .expect("query")
        .truth()
        .expect("truth")
}

fn main() {
    let mut db = Database::new();

    // A backup job runs every 12 hours starting at hour 3, forever —
    // one generalized tuple stands for infinitely many facts.
    db.create_table("backup", &["start", "end"], &["host"])
        .expect("fresh table");
    let backups = db.table_mut("backup").expect("table exists");
    backups
        .insert(
            TupleSpec::new()
                .lrp("start", 3, 12)
                .lrp("end", 5, 12)
                .diff_eq("start", "end", -2) // each run takes 2 hours
                .datum("host", "db-primary"),
        )
        .expect("valid tuple");
    backups
        .insert(
            TupleSpec::new()
                .lrp("start", 9, 24)
                .lrp("end", 10, 24)
                .diff_eq("start", "end", -1)
                .ge("start", 9) // replica backups only started at hour 9
                .datum("host", "db-replica"),
        )
        .expect("valid tuple");

    println!("{}", db.table("backup").expect("table exists").render());

    // Membership is exact over infinite time: hour 999_999_999?
    let far_future = 999_999_996 + 3; // ≡ 3 (mod 12)
    let q = format!(r#"exists e. backup({far_future}, e; "db-primary")"#);
    println!("primary backup starts at {far_future}: {}", ask(&db, &q));
    assert!(ask(&db, &q));

    // First-order reasoning over all of Z: every primary backup finishes
    // two hours after it starts.
    let always_two_hours = r#"
        forall s. forall e. backup(s, e; "db-primary") implies e = s + 2
    "#;
    assert!(ask(&db, always_two_hours));
    println!("every primary backup lasts exactly 2h: true");

    // Do the two hosts ever back up at overlapping times?
    let overlap = r#"
        exists s1. exists e1. exists s2. exists e2.
            backup(s1, e1; "db-primary") and backup(s2, e2; "db-replica")
            and s1 <= s2 and s2 <= e1
    "#;
    let overlapping = ask(&db, overlap);
    println!("primary and replica backups ever overlap: {overlapping}");

    // Algebra directly on the relation: project to start times.
    let rel = db.table("backup").expect("table exists").relation();
    let starts = rel.project(&[0], &[]).expect("projection");
    println!(
        "start times form {} generalized tuple(s); contains t=27? {}",
        starts.tuple_count(),
        starts.contains(&[27], &[])
    );
    assert!(starts.contains(&[27], &[])); // 27 ≡ 3 (mod 12)
    assert!(!starts.contains(&[4], &[]));

    // Persistence round trip.
    let json = db.to_json().expect("serialize");
    let restored = Database::from_json(&json).expect("deserialize");
    assert!(ask(&restored, &q));
    println!("database JSON round trip: ok ({} bytes)", json.len());
}

//! Verification by query evaluation — the "model checking as database
//! querying" view the paper takes from concurrent-program verification
//! (§1: "model-checking is essentially a form of query evaluation on a
//! special type of database").
//!
//! A workcell has two machines sharing one crane. Each machine's crane
//! usage is periodic and infinite; we verify safety (mutual exclusion) and
//! liveness-like (recurrence) properties over ALL of infinite time —
//! something finite materialization can never do.
//!
//! Run with: `cargo run --example factory_verification`

use itd_db::{Database, QueryOpts, TupleSpec};

/// Closed-formula truth through the unified `run` entry point.
fn ask(db: &Database, src: &str) -> bool {
    db.run(src, QueryOpts::new())
        .expect("query")
        .truth()
        .expect("truth")
}

fn main() {
    let mut db = Database::new();

    // Crane reservations [start, end] per machine. The cycle is 30 time
    // units long: press uses the crane during [0, 9] of each cycle, the
    // lathe during [12, 20], a maintenance sweep during [24, 27].
    db.create_table("holds", &["from", "to"], &["who"])
        .expect("fresh");
    let holds = db.table_mut("holds").expect("exists");
    holds
        .insert(
            TupleSpec::new()
                .lrp("from", 0, 30)
                .lrp("to", 9, 30)
                .diff_eq("from", "to", -9)
                .datum("who", "press"),
        )
        .expect("valid");
    holds
        .insert(
            TupleSpec::new()
                .lrp("from", 12, 30)
                .lrp("to", 20, 30)
                .diff_eq("from", "to", -8)
                .datum("who", "lathe"),
        )
        .expect("valid");
    holds
        .insert(
            TupleSpec::new()
                .lrp("from", 24, 30)
                .lrp("to", 27, 30)
                .diff_eq("from", "to", -3)
                .datum("who", "maintenance"),
        )
        .expect("valid");
    println!("{}", db.table("holds").expect("exists").render());

    // SAFETY: no two different holders' intervals ever overlap — checked
    // symbolically for every point of Z, not on a sampled window.
    let mutual_exclusion = r#"
        forall a1. forall b1. forall a2. forall b2. forall x. forall y.
            (holds(a1, b1; x) and holds(a2, b2; y) and x != y
               and a1 <= a2 and a2 < b1)
            implies false
    "#;
    let safe = ask(&db, mutual_exclusion);
    println!("mutual exclusion holds over all time: {safe}");
    assert!(safe);

    // RECURRENCE: the press holds the crane "infinitely often" — for every
    // time t there is a later press interval. (This is the temporal-logic
    // `GF press` rendered in first-order form; it is where infinite
    // representations earn their keep.)
    let press_infinitely_often = r#"
        forall t. exists a. exists b. holds(a, b; "press") and t <= a
    "#;
    let recurrent = ask(&db, press_infinitely_often);
    println!("press acquires the crane infinitely often: {recurrent}");
    assert!(recurrent);

    // BOUNDED RESPONSE: after every lathe release, the press re-acquires
    // within 15 time units.
    let bounded_response = r#"
        forall a. forall b. holds(a, b; "lathe") implies
            exists c. exists d. holds(c, d; "press") and b <= c and c <= b + 15
    "#;
    let responsive = ask(&db, bounded_response);
    println!("press re-acquires within 15 after each lathe release: {responsive}");
    assert!(responsive);

    // Now inject a faulty reservation overlapping the lathe and watch the
    // safety check fail — the verifier really is exercising the data.
    db.table_mut("holds")
        .expect("exists")
        .insert(
            TupleSpec::new()
                .lrp("from", 15, 30)
                .lrp("to", 18, 30)
                .diff_eq("from", "to", -3)
                .datum("who", "forklift"),
        )
        .expect("valid");
    let still_safe = ask(&db, mutual_exclusion);
    println!("after adding the forklift reservation, safety: {still_safe}");
    assert!(!still_safe);

    // Diagnose: which pairs conflict? An open query returns the witnesses.
    let witnesses = db
        .run(
            r#"holds(a1, b1; x) and holds(a2, b2; y) and x != y
               and a1 <= a2 and a2 < b1 and a1 >= 0 and b2 <= 30"#,
            QueryOpts::new(),
        )
        .expect("query")
        .result;
    let rows = witnesses.relation.materialize(0, 30);
    println!("conflicts within the first cycle:");
    for (times, data) in &rows {
        println!("  {data:?} at {times:?}");
    }
    assert!(!rows.is_empty());
}

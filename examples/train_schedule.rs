//! The paper's Example 2.4: the Liège → Brussels train schedule, and why
//! intervals (temporal arity 2) beat unary "Leaving"/"Arriving" predicates.
//!
//! Every hour `h` there is a slow train leaving at `h:02` arriving `h+1:20`
//! and an express leaving at `h:46` arriving `h+1:50`. Times are minutes
//! since midnight; one hour = 60.
//!
//! Run with: `cargo run --example train_schedule`

use itd_db::{Database, QueryOpts, TupleSpec};

const HOUR: i64 = 60;

/// Closed-formula truth through the unified `run` entry point.
fn ask(db: &Database, src: &str) -> bool {
    db.run(src, QueryOpts::new())
        .expect("query")
        .truth()
        .expect("truth")
}

fn main() {
    let mut db = Database::new();

    // ---- The correct, interval-based design (paper's final table) ----
    //   [02 + 60n, 80 + 60n]   X1 = X2 − 78   (slow)
    //   [46 + 60n, 110 + 60n]  X1 = X2 − 64   (express)
    db.create_table("train", &["dep", "arr"], &["kind"])
        .expect("fresh table");
    let trains = db.table_mut("train").expect("table exists");
    trains
        .insert(
            TupleSpec::new()
                .lrp("dep", 2, HOUR)
                .lrp("arr", 80, HOUR)
                .diff_eq("dep", "arr", -78)
                .datum("kind", "slow"),
        )
        .expect("valid tuple");
    trains
        .insert(
            TupleSpec::new()
                .lrp("dep", 46, HOUR)
                .lrp("arr", 110, HOUR)
                .diff_eq("dep", "arr", -64)
                .datum("kind", "express"),
        )
        .expect("valid tuple");
    println!("{}", db.table("train").expect("exists").render());

    // The 7:02 train arrives 8:20.
    let t0702 = 7 * HOUR + 2;
    let t0820 = 8 * HOUR + 20;
    assert!(ask(&db, &format!(r#"train({t0702}, {t0820}; "slow")"#)));
    println!("7:02 → 8:20 slow train exists: true");

    // The paper's broken inference — "a train leaving at h+1:46 arriving at
    // h+1:50" — is NOT derivable here: the express from 7:46 arrives 8:50,
    // never 7:50.
    let t0746 = 7 * HOUR + 46;
    let t0750 = 7 * HOUR + 50;
    assert!(!ask(&db, &format!("exists k. train({t0746}, {t0750}; k)")));
    println!("bogus 7:46 → 7:50 train: correctly absent");

    // Every slow train takes exactly 78 minutes — over the whole infinite
    // schedule.
    assert!(ask(
        &db,
        r#"forall d. forall a. train(d, a; "slow") implies a = d + 78"#
    ));
    println!("every slow train takes 78 minutes: true");

    // Between 7:46 and 8:20 two trains are under way simultaneously.
    let q = format!(
        "exists d1. exists a1. exists d2. exists a2. exists k1. exists k2.
            train(d1, a1; k1) and train(d2, a2; k2)
            and d1 < d2 and d2 < a1 and k1 != k2
            and d1 = {t0702}"
    );
    assert!(ask(&db, &q));
    println!("overlapping slow+express service around 8:00: true");

    // ---- The paper's cautionary unary design ----
    // With separate Leaving/Arriving unary predicates the association
    // between departure and arrival is lost: the bogus pair becomes
    // derivable.
    db.create_table("leaving", &["t"], &[]).expect("fresh");
    db.table_mut("leaving")
        .expect("exists")
        .insert(TupleSpec::new().lrp("t", 46, HOUR))
        .expect("valid");
    db.create_table("arriving", &["t"], &[]).expect("fresh");
    db.table_mut("arriving")
        .expect("exists")
        .insert(TupleSpec::new().lrp("t", 50, HOUR))
        .expect("valid");
    // "some train leaves at 7:46 and arrives at 7:50" — wrongly true in the
    // unary design:
    let bogus = format!("leaving({t0746}) and arriving({t0750})");
    assert!(ask(&db, &bogus));
    println!("unary design wrongly admits the 7:46 → 7:50 pair: true (as the paper warns)");

    // ---- Algebra: the departures timetable ----
    let departures = db
        .table("train")
        .expect("exists")
        .relation()
        .project(&[0], &[0])
        .expect("projection");
    // 9:46 express and 9:02 slow are in the projection; 9:03 is not.
    assert!(departures.contains(&[9 * HOUR + 46], &[itd_db::Value::str("express")]));
    assert!(departures.contains(&[9 * HOUR + 2], &[itd_db::Value::str("slow")]));
    assert!(!departures.contains(&[9 * HOUR + 3], &[itd_db::Value::str("slow")]));
    println!("projected departure timetable checks out");
}

//! The paper's running robot example: Table 1 (the `Perform` relation) and
//! the Example 4.1 query.
//!
//! Table 1:
//!
//! | robot  | task  | from     | to       | constraints                 |
//! |--------|-------|----------|----------|-----------------------------|
//! | robot1 | task1 | 2 + 2n   | 4 + 2n   | X1 = X2 − 2 ∧ X1 ≥ −1       |
//! | robot2 | task1 | 6 + 10n  | 7 + 10n  | X1 = X2 − 1 ∧ X1 ≥ 10       |
//! | robot2 | task2 | 10n      | 3 + 10n  | X1 = X2 − 3                 |
//!
//! Run with: `cargo run --example robot_factory`

use itd_db::{Database, QueryOpts, TupleSpec};

/// Closed-formula truth through the unified `run` entry point.
fn ask(db: &Database, src: &str) -> bool {
    db.run(src, QueryOpts::new())
        .expect("query")
        .truth()
        .expect("truth")
}

fn main() {
    let mut db = Database::new();
    db.create_table("perform", &["from", "to"], &["robot", "task"])
        .expect("fresh table");
    let perform = db.table_mut("perform").expect("exists");
    perform
        .insert(
            TupleSpec::new()
                .lrp("from", 2, 2)
                .lrp("to", 4, 2)
                .diff_eq("from", "to", -2)
                .ge("from", -1)
                .datum("robot", "robot1")
                .datum("task", "task1"),
        )
        .expect("valid");
    perform
        .insert(
            TupleSpec::new()
                .lrp("from", 6, 10)
                .lrp("to", 7, 10)
                .diff_eq("from", "to", -1)
                .ge("from", 10)
                .datum("robot", "robot2")
                .datum("task", "task1"),
        )
        .expect("valid");
    perform
        .insert(
            TupleSpec::new()
                .lrp("from", 0, 10)
                .lrp("to", 3, 10)
                .diff_eq("from", "to", -3)
                .datum("robot", "robot2")
                .datum("task", "task2"),
        )
        .expect("valid");

    println!("{}", db.table("perform").expect("exists").render());

    // Sanity: robot2 performs task2 during [10, 13], [20, 23], … and also
    // at negative times (no lower bound on that row).
    assert!(ask(&db, r#"perform(10, 13; "robot2", "task2")"#));
    assert!(ask(&db, r#"perform(-10, -7; "robot2", "task2")"#));
    assert!(!ask(&db, r#"perform(-10, -7; "robot2", "task1")"#));

    // Example 4.1: is there a robot x and a robot y such that whenever x
    // performs task2 for an interval of length ≥ 5, y performs nothing
    // during any part of that interval?
    //
    // In Table 1 every task2 interval has length 3 < 5, so the antecedent
    // is vacuously false and the property holds.
    let example_4_1 = r#"
        exists x. exists y. exists t1. exists t2. forall t3. forall t4. forall z.
            (perform(t1, t2; x, "task2")
               and t1 <= t3 and t3 <= t4 and t4 <= t2 and t1 + 5 <= t2)
            implies not perform(t3, t4; y, z)
    "#;
    // Note: the paper's formula needs SOME witness interval for x; with a
    // vacuous antecedent the inner implication is true for any t1, t2.
    let holds = ask(&db, example_4_1);
    println!("Example 4.1 property: {holds}");
    assert!(holds);

    // A sharper variant: does robot1 ever work while robot2 performs
    // task2? robot1's intervals are [even, even+2] with from ≥ −1; robot2
    // task2 intervals are [10n, 10n+3]. At t = 10: robot1 works [10, 12],
    // robot2 works [10, 13] — yes.
    let busy_overlap = r#"
        exists t1. exists t2. exists s1. exists s2.
            perform(t1, t2; "robot1", "task1")
            and perform(s1, s2; "robot2", "task2")
            and s1 <= t1 and t1 <= s2
    "#;
    assert!(ask(&db, busy_overlap));
    println!("robot1 sometimes starts while robot2 is on task2: true");

    // And a universal: robot2's task1 work never starts before time 10
    // (the X1 ≥ 10 constraint), over the entire infinite future.
    assert!(ask(
        &db,
        r#"forall t1. forall t2. perform(t1, t2; "robot2", "task1") implies t1 >= 10"#
    ));
    println!("robot2 never performs task1 before t = 10: true");

    // Algebra flavor: who is ever working at time point 22?
    // σ(from ≤ 22 ≤ to) then project the robot column.
    let rel = db.table("perform").expect("exists").relation();
    let at_22 = rel
        .select_temporal(itd_db::Atom::le(0, 22))
        .expect("selection")
        .select_temporal(itd_db::Atom::ge(1, 22))
        .expect("selection")
        .project(&[], &[0])
        .expect("projection");
    let workers: Vec<String> = at_22
        .materialize(0, 0)
        .into_iter()
        .map(|(_, d)| d[0].to_string())
        .collect();
    println!("robots active at t = 22: {workers:?}");
    assert!(workers.contains(&"robot1".to_owned()));
    assert!(workers.contains(&"robot2".to_owned()));
}

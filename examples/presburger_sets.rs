//! The expressiveness results of §2.2: Presburger-definable predicates as
//! generalized lrp relations (Theorems 2.1 and 2.2).
//!
//! Run with: `cargo run --example presburger_sets`

use itd_presburger::{BinaryAtom, BinaryFormula, UnaryAtom, UnaryFormula};

fn main() {
    // ---- Theorem 2.1: a unary Presburger predicate ----
    // "v is a leap-ish year": v ≡ 0 (mod 4) and not v ≡ 0 (mod 100),
    // or v ≡ 0 (mod 400).
    let leap = UnaryFormula::or(
        UnaryFormula::and(
            UnaryFormula::atom(UnaryAtom::ModEq { k1: 1, k2: 4, c: 0 }),
            UnaryFormula::not(UnaryFormula::atom(UnaryAtom::ModEq {
                k1: 1,
                k2: 100,
                c: 0,
            })),
        ),
        UnaryFormula::atom(UnaryAtom::ModEq {
            k1: 1,
            k2: 400,
            c: 0,
        }),
    );
    // The boolean connectives run through the real §3 algebra: union,
    // intersection, and the Appendix A.6 complement.
    let rel = leap.to_relation().expect("translation");
    println!(
        "leap-year predicate compiled to {} generalized tuple(s)",
        rel.tuple_count()
    );
    for (year, expect) in [(2000, true), (1900, false), (2024, true), (2023, false)] {
        let got = rel.contains(&[year], &[]);
        println!("  {year}: {got}");
        assert_eq!(got, expect);
        assert_eq!(leap.eval(year), expect);
    }

    // The compiled relation answers far outside any materialized window.
    assert!(rel.contains(&[400_000_000], &[]));
    assert!(!rel.contains(&[100], &[]));

    // ---- Theorem 2.1, basic formulas ----
    // 3v ≡ 2 (mod 5) ⇔ v ≡ 4 (mod 5): solved by the extended Euclid
    // machinery of §3.2.1.
    let f = UnaryFormula::atom(UnaryAtom::ModEq { k1: 3, k2: 5, c: 2 });
    let r = f.to_relation().expect("translation");
    println!("3v ≡ 2 (mod 5) compiles to: {r}");
    assert!(r.contains(&[4], &[]) && r.contains(&[-1], &[]) && !r.contains(&[3], &[]));

    // ---- Theorem 2.2: binary predicates need general constraints ----
    // 2·v1 ≤ 3·v2 + 1 — not expressible with unit-coefficient (restricted)
    // constraints, but directly a general-constraint generalized relation.
    let halfplane = BinaryFormula::atom(BinaryAtom::Cmp {
        k1: 2,
        rel: itd_constraint::Rel::Le,
        k2: 3,
        c: 1,
    });
    let rel2 = halfplane.to_relation().expect("translation");
    assert!(rel2.contains(2, 1)); // 4 ≤ 4
    assert!(!rel2.contains(3, 1)); // 6 ≤ 4 ✗
    assert!(
        rel2.to_core_relation().expect("check").is_none(),
        "non-unit coefficients cannot downgrade to restricted constraints"
    );
    println!("2·v1 ≤ 3·v2 + 1: general-constraint relation, as Theorem 2.2 requires");

    // Congruence atoms DO reduce to restricted (even unconstrained) form:
    // v1 ≡ v2 + 1 (mod 3) is a union of residue-pair lrp tuples.
    let cong = BinaryFormula::atom(BinaryAtom::mod_eq(1, 1, 3, 1));
    let rel3 = cong.to_relation().expect("translation");
    let core = rel3
        .to_core_relation()
        .expect("check")
        .expect("restricted form exists");
    println!(
        "v1 ≡ v2 + 1 (mod 3) is {} unconstrained residue-pair tuple(s)",
        core.tuple_count()
    );
    assert!(core.contains(&[4, 3], &[]));
    assert!(!core.contains(&[5, 3], &[]));

    // Boolean combination with negation (pushed to atoms — every negated
    // basic formula is again a disjunction of basic formulas).
    let combo = BinaryFormula::and(
        halfplane,
        BinaryFormula::not(BinaryFormula::atom(BinaryAtom::eq(1, 1, 0))),
    );
    let rel4 = combo.to_relation().expect("translation");
    for v1 in -6..6 {
        for v2 in -6..6 {
            assert_eq!(rel4.contains(v1, v2), combo.eval(v1, v2));
        }
    }
    println!("boolean closure over binary atoms verified on a window");
}

//! The instrumented parallel executor: results must be bit-identical at
//! every thread count, and the per-operator counters must match the
//! paper's own worked examples exactly.

use itd_core::{Atom, ExecContext, GenRelation, GenTuple, Lrp, OpKind, Schema};
use proptest::prelude::*;

fn lrp(c: i64, k: i64) -> Lrp {
    Lrp::new(c, k).unwrap()
}

/// Small-period base relations (stress_random_algebra's family) so that
/// complements stay tractable inside deep expressions.
fn bases() -> Vec<GenRelation> {
    let schema = Schema::new(2, 0);
    vec![
        GenRelation::builder(schema)
            .push_row(
                GenTuple::builder()
                    .lrps(vec![lrp(0, 2), lrp(1, 2)])
                    .atoms([Atom::diff_le(0, 1, 3)])
                    .build()
                    .unwrap(),
            )
            .build()
            .unwrap(),
        GenRelation::builder(schema)
            .push_row(
                GenTuple::builder()
                    .lrps(vec![lrp(1, 3), lrp(0, 3)])
                    .atoms([Atom::ge(0, -4)])
                    .build()
                    .unwrap(),
            )
            .push_row(GenTuple::unconstrained(vec![lrp(2, 3), lrp(2, 3)], vec![]))
            .build()
            .unwrap(),
        GenRelation::builder(schema)
            .push_row(
                GenTuple::builder()
                    .lrps(vec![lrp(0, 1), lrp(0, 2)])
                    .atoms([Atom::diff_eq(0, 1, -1), Atom::le(0, 6)])
                    .build()
                    .unwrap(),
            )
            .build()
            .unwrap(),
    ]
}

/// Random algebra expression over the base relations.
#[derive(Debug, Clone)]
enum Expr {
    Base(usize),
    Union(Box<Expr>, Box<Expr>),
    Intersect(Box<Expr>, Box<Expr>),
    Difference(Box<Expr>, Box<Expr>),
    SelectGe(usize, i64, Box<Expr>),
    Swap(Box<Expr>),
    Shift(usize, i64, Box<Expr>),
    Complement(Box<Expr>),
    Normalize(Box<Expr>),
}

/// Symbolic evaluation entirely through the `_in` operators of `ctx`.
fn eval_in(e: &Expr, bases: &[GenRelation], ctx: &ExecContext) -> itd_core::Result<GenRelation> {
    Ok(match e {
        Expr::Base(i) => bases[*i].clone(),
        Expr::Union(a, b) => eval_in(a, bases, ctx)?.union_in(&eval_in(b, bases, ctx)?, ctx)?,
        Expr::Intersect(a, b) => {
            eval_in(a, bases, ctx)?.intersect_in(&eval_in(b, bases, ctx)?, ctx)?
        }
        Expr::Difference(a, b) => {
            eval_in(a, bases, ctx)?.difference_in(&eval_in(b, bases, ctx)?, ctx)?
        }
        Expr::SelectGe(col, c, a) => {
            eval_in(a, bases, ctx)?.select_temporal_in(Atom::ge(*col, *c), ctx)?
        }
        Expr::Swap(a) => eval_in(a, bases, ctx)?.project_in(&[1, 0], &[], ctx)?,
        Expr::Shift(col, d, a) => eval_in(a, bases, ctx)?.shift_temporal_in(*col, *d, ctx)?,
        Expr::Complement(a) => {
            eval_in(a, bases, ctx)?.complement_temporal_with_limit_in(1 << 16, ctx)?
        }
        Expr::Normalize(a) => eval_in(a, bases, ctx)?.normalize_in(ctx)?,
    })
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = (0usize..3).prop_map(Expr::Base);
    leaf.prop_recursive(3, 10, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Union(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Intersect(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Difference(Box::new(a), Box::new(b))),
            (0usize..2, -5i64..5, inner.clone()).prop_map(|(col, c, a)| Expr::SelectGe(
                col,
                c,
                Box::new(a)
            )),
            inner.clone().prop_map(|a| Expr::Swap(Box::new(a))),
            (0usize..2, -3i64..3, inner.clone()).prop_map(|(col, d, a)| Expr::Shift(
                col,
                d,
                Box::new(a)
            )),
            inner.clone().prop_map(|a| Expr::Complement(Box::new(a))),
            inner.prop_map(|a| Expr::Normalize(Box::new(a))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The tentpole guarantee: evaluating any expression at 1, 2, or 8
    /// threads yields *bit-identical* relations — same tuples, same order.
    #[test]
    fn results_bit_identical_across_thread_counts(e in expr_strategy()) {
        let bases = bases();
        let serial = match eval_in(&e, &bases, &ExecContext::serial()) {
            Ok(r) => r,
            Err(itd_core::CoreError::TooManyExtensions { .. }) => return Ok(()),
            Err(other) => return Err(TestCaseError::fail(format!("{other}"))),
        };
        for threads in [1usize, 2, 8] {
            let ctx = ExecContext::with_threads(threads);
            let got = eval_in(&e, &bases, &ctx)
                .map_err(|err| TestCaseError::fail(format!("{err}")))?;
            prop_assert_eq!(
                &got, &serial,
                "thread count {} changed the result of {:?}", threads, e
            );
        }
    }

    /// Span trees are deterministic: tracing any expression at 1, 2, or 8
    /// threads records the same tree — same span ids, parents, labels,
    /// and per-span counters — once timing is stripped. (Span ids come
    /// from the context-local begin-order counter, not thread identity.)
    #[test]
    fn span_tree_identical_across_thread_counts(e in expr_strategy()) {
        let bases = bases();
        let traced = |threads: usize| -> Result<Option<itd_core::Trace>, TestCaseError> {
            let ctx = ExecContext::with_threads(threads).traced();
            match eval_in(&e, &bases, &ctx) {
                Ok(_) => Ok(ctx.take_trace().map(|t| t.without_timing())),
                Err(itd_core::CoreError::TooManyExtensions { .. }) => Ok(None),
                Err(other) => Err(TestCaseError::fail(format!("{other}"))),
            }
        };
        let one = traced(1)?;
        prop_assert_eq!(traced(2)?, one.clone(), "2 threads changed the span tree of {:?}", &e);
        prop_assert_eq!(traced(8)?, one, "8 threads changed the span tree of {:?}", &e);
    }

    /// No operator work escapes the span tree: summing the operator spans
    /// of a trace reproduces the context's aggregate counters exactly —
    /// wall time included, at any thread count.
    #[test]
    fn span_totals_match_aggregate_counters(e in expr_strategy(), threads in 1usize..5) {
        let bases = bases();
        let ctx = ExecContext::with_threads(threads).traced();
        match eval_in(&e, &bases, &ctx) {
            Ok(_) | Err(itd_core::CoreError::TooManyExtensions { .. }) => {}
            Err(other) => return Err(TestCaseError::fail(format!("{other}"))),
        }
        let stats = ctx.stats();
        let trace = ctx.take_trace().expect("tracing is on");
        prop_assert_eq!(trace.op_totals(), stats);
        prop_assert_eq!(trace.spans().len() as u64, stats.total_calls());
    }

    /// Counters are deterministic too (they tally work items, not
    /// scheduling): the same expression produces the same `pairs`,
    /// `tuples_in`/`out`, and `empties_pruned` at any thread count.
    #[test]
    fn counters_identical_across_thread_counts(e in expr_strategy()) {
        let bases = bases();
        let count = |threads: usize| -> Result<Vec<(u64, u64, u64, u64)>, TestCaseError> {
            let ctx = ExecContext::with_threads(threads);
            match eval_in(&e, &bases, &ctx) {
                Ok(_) => {}
                Err(itd_core::CoreError::TooManyExtensions { .. }) => {}
                Err(other) => return Err(TestCaseError::fail(format!("{other}"))),
            }
            Ok(ctx
                .stats()
                .iter()
                .map(|(_, op)| (op.tuples_in, op.tuples_out, op.pairs, op.empties_pruned))
                .collect())
        };
        let one = count(1)?;
        prop_assert_eq!(count(2)?, one.clone());
        prop_assert_eq!(count(8)?, one);
    }
}

/// Example 3.2 of the paper: normalizing `[4n₁+3, 8n₂+1]` with
/// `X₁ ≥ X₂ ∧ X₁ ≤ X₂+5 ∧ X₂ ≥ 2` refines to common period `k = 8`,
/// enumerates `(8/4)·(8/8) = 2` residue combinations, and drops one of
/// them as grid-unsatisfiable.
#[test]
fn normalize_counters_match_paper_example_3_2() {
    let rel = GenRelation::builder(Schema::new(2, 0))
        .push_row(
            GenTuple::builder()
                .lrps(vec![lrp(3, 4), lrp(1, 8)])
                .atoms([
                    Atom::diff_ge(0, 1, 0).unwrap(),
                    Atom::diff_le(0, 1, 5),
                    Atom::ge(1, 2),
                ])
                .build()
                .unwrap(),
        )
        .build()
        .unwrap();
    let ctx = ExecContext::serial();
    let norm = rel.normalize_in(&ctx).unwrap();
    assert_eq!(norm.tuple_count(), 1);
    let op = *ctx.stats().op(OpKind::Normalize);
    assert_eq!(op.calls, 1);
    assert_eq!(op.tuples_in, 1);
    assert_eq!(op.pairs, 2, "Π k/kᵢ = (8/4)(8/8)");
    assert_eq!(op.empties_pruned, 1, "the contradictory second combination");
    assert_eq!(op.tuples_out, 1);
    assert_eq!(op.max_period, 8);
    assert!(op.atoms_simplified > 0, "the tuple was rewritten");
}

/// The Π k/kᵢ counting formula on an unconstrained tuple: `[2n₁, 3n₂+1]`
/// refines to `k = 6` with `(6/2)·(6/3) = 6` combinations, all satisfiable.
#[test]
fn normalize_counters_match_counting_formula() {
    let rel = GenRelation::builder(Schema::new(2, 0))
        .push_row(GenTuple::unconstrained(vec![lrp(0, 2), lrp(1, 3)], vec![]))
        .build()
        .unwrap();
    let ctx = ExecContext::serial();
    let norm = rel.normalize_in(&ctx).unwrap();
    assert_eq!(norm.tuple_count(), 6);
    let op = *ctx.stats().op(OpKind::Normalize);
    assert_eq!(op.pairs, 6, "Π k/kᵢ = (6/2)(6/3)");
    assert_eq!(op.empties_pruned, 0);
    assert_eq!(op.tuples_out, 6);
    assert_eq!(op.max_period, 6);
}

/// Intersection counts every candidate pair (§3.2.2's N₁·N₂ bound).
#[test]
fn intersect_counters_count_pairs() {
    let b = bases();
    let (two, three) = (&b[0], &b[1]);
    let both = two.union(three).unwrap(); // 3 tuples
    let ctx = ExecContext::serial();
    let out = both.intersect_in(&b[2], &ctx).unwrap();
    let op = *ctx.stats().op(OpKind::Intersect);
    assert_eq!(op.calls, 1);
    assert_eq!(op.tuples_in, 3 + 1);
    assert_eq!(op.pairs, 3, "N₁·N₂ candidate pairs");
    assert_eq!(op.tuples_out as usize, out.tuple_count());
    assert_eq!(
        op.tuples_out + op.empties_pruned,
        op.pairs,
        "every pair either survives or is pruned"
    );
}

/// Complement's `pairs` counter is the free-extension count `k^m`
/// (Appendix A.6), and the parallel fan-out preserves the serial output
/// exactly.
#[test]
fn complement_counters_count_free_extensions() {
    let rel = GenRelation::builder(Schema::new(2, 0))
        .push_row(
            GenTuple::builder()
                .lrps(vec![lrp(0, 3), lrp(1, 3)])
                .atom(Atom::ge(0, 0))
                .build()
                .unwrap(),
        )
        .build()
        .unwrap();
    let ctx = ExecContext::serial();
    let comp = rel.complement_temporal_in(&ctx).unwrap();
    let op = *ctx.stats().op(OpKind::Complement);
    assert_eq!(op.calls, 1);
    assert_eq!(op.pairs, 9, "k^m = 3² free extensions");
    assert_eq!(op.max_period, 3);

    let par = ExecContext::with_threads(8);
    let comp8 = rel.complement_temporal_in(&par).unwrap();
    assert_eq!(comp8, comp, "parallel complement must be bit-identical");
    assert_eq!(par.stats().op(OpKind::Complement).pairs, 9);
}

/// End-to-end: counters flow through query evaluation into
/// `QueryResult::stats`, and a context reused across queries accumulates.
#[test]
fn query_evaluation_reports_nonzero_stats() {
    use itd_query::{parse, run, MemoryCatalog, QueryOpts};
    let mut cat = MemoryCatalog::new();
    cat.insert(
        "even",
        GenRelation::builder(Schema::new(1, 0))
            .push_row(GenTuple::unconstrained(vec![lrp(0, 2)], vec![]))
            .build()
            .unwrap(),
    );
    let ctx = ExecContext::new();
    let f = parse("exists t. even(t) and even(t + 2) and even(0) and t >= 4").unwrap();
    let r = run(&cat, &f, QueryOpts::new().ctx(&ctx).optimize(false))
        .unwrap()
        .result;
    let stats = r.stats();
    assert!(!stats.is_zero());
    assert!(stats.op(OpKind::Join).calls > 0, "conjunction joins");
    assert!(stats.op(OpKind::Project).calls > 0, "∃ projects");
    assert!(stats.op(OpKind::Select).calls > 0, "even(0) selects");
    assert!(stats.op(OpKind::Shift).calls > 0, "t + 2 shifts");
    assert!(stats.total_calls() >= 4);

    // Reusing the context accumulates across evaluations.
    let before = stats.total_calls();
    let _ = run(&cat, &f, QueryOpts::new().ctx(&ctx).optimize(false)).unwrap();
    assert_eq!(ctx.stats().total_calls(), before * 2);
}

/// EXPLAIN ANALYZE acceptance: on a join+negation query, `explain`
/// renders the plan without executing, `run` with tracing yields a span
/// tree whose operator spans sum back to the aggregate counters, and the
/// tree is bit-identical across thread counts (up to timing).
#[test]
fn traced_query_spans_sum_to_stats_and_are_thread_invariant() {
    use itd_query::{explain, parse, run, MemoryCatalog, QueryOpts};
    let mut cat = MemoryCatalog::new();
    cat.insert(
        "even",
        GenRelation::builder(Schema::new(1, 0))
            .push_row(GenTuple::unconstrained(vec![lrp(0, 2)], vec![]))
            .build()
            .unwrap(),
    );
    let f = parse("even(t) and not even(t + 1)").unwrap();

    // EXPLAIN compiles the join + difference without touching a relation.
    let plan = explain(&cat, &f).unwrap();
    let rendered = plan.render();
    assert!(rendered.contains("join on t"), "{rendered}");
    assert!(rendered.contains("difference from Z^1"), "{rendered}");

    let run_at = |threads: usize| {
        let ctx = ExecContext::with_threads(threads).traced();
        let out = run(
            &cat,
            &f,
            QueryOpts::new().ctx(&ctx).trace(true).optimize(false),
        )
        .unwrap();
        struct Traced {
            result: itd_query::QueryResult,
            plan: itd_query::Plan,
            trace: itd_core::Trace,
        }
        let traced = Traced {
            result: out.result,
            plan: out.plan,
            trace: out.trace.expect("tracing requested"),
        };
        (traced, ctx.stats())
    };
    let (baseline, stats1) = run_at(1);
    assert!(baseline.result.relation.contains(&[0], &[]));
    assert!(!baseline.result.relation.contains(&[1], &[]));

    // Operator spans reproduce the aggregate counters exactly (node spans
    // contribute nothing), and the plan root label matches the root span.
    assert_eq!(baseline.trace.op_totals(), stats1);
    assert_eq!(stats1, *baseline.result.stats());
    let root = baseline.trace.roots().next().unwrap();
    assert_eq!(root.label.name(), baseline.plan.root().label);
    assert!(
        baseline.trace.len() as u64 > stats1.total_calls(),
        "node spans present"
    );

    for threads in [2usize, 8] {
        let (traced, stats) = run_at(threads);
        assert_eq!(
            traced.trace.without_timing(),
            baseline.trace.without_timing(),
            "thread count {threads} changed the span tree"
        );
        assert_eq!(traced.trace.op_totals(), stats);
        assert_eq!(traced.result.relation, baseline.result.relation);
    }
}

//! Golden EXPLAIN snapshots: the rendered pre/post-rewrite plan trees
//! for representative queries are pinned byte-for-byte. A diff here
//! means the lowering, the cost model's printed estimates, or a rewrite
//! rule changed behavior — update the golden deliberately, in the same
//! change that altered the optimizer.

use itd_core::{GenRelation, GenTuple, Lrp, Schema, Value};
use itd_query::{explain_opt, parse, MemoryCatalog};

/// A fixed catalog (no randomness) so estimates — and therefore the
/// rendered goldens — are stable.
fn catalog() -> MemoryCatalog {
    let mut cat = MemoryCatalog::new();
    let unary = |residues: &[i64], k: i64| {
        let mut rel = GenRelation::empty(Schema::new(1, 0));
        for &r in residues {
            rel.push(GenTuple::unconstrained(
                vec![Lrp::new(r, k).unwrap()],
                vec![],
            ))
            .unwrap();
        }
        rel
    };
    cat.insert("p", unary(&[0, 1, 2, 3, 4, 5, 0, 2, 4, 1, 3, 5], 6));
    cat.insert("q", unary(&[0, 3, 1, 4, 2, 5, 0, 1, 2, 3, 4, 5], 6));
    cat.insert("r", unary(&[0, 3], 6));
    cat.insert("never", GenRelation::empty(Schema::new(1, 0)));
    cat.insert(
        "perform",
        GenRelation::builder(Schema::new(1, 1))
            .push_row(GenTuple::unconstrained(
                vec![Lrp::new(0, 4).unwrap()],
                vec![Value::str("robot1")],
            ))
            .push_row(GenTuple::unconstrained(
                vec![Lrp::new(2, 4).unwrap()],
                vec![Value::str("robot2")],
            ))
            .build()
            .unwrap(),
    );
    cat
}

/// Compares against the golden, or rewrites it when `BLESS` is set in
/// the environment (`BLESS=1 cargo test -p itd-db --test plan_snapshots`,
/// then rebuild — goldens are compiled in via `include_str!`).
#[track_caller]
fn check(src: &str, name: &str, golden: &str) {
    let cat = catalog();
    let report = explain_opt(&cat, &parse(src).unwrap()).unwrap();
    let actual = report.render();
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(format!("../../tests/goldens/{name}"), &actual).unwrap();
        return;
    }
    assert_eq!(
        actual, golden,
        "\nEXPLAIN golden mismatch for `{src}`.\nActual output:\n\
         ---8<---\n{actual}--->8---\n"
    );
}

/// Greedy join reordering: the parse order pairs the two 12-row
/// relations first; the optimizer starts from the 2-row `r`.
#[test]
fn golden_join_reorder() {
    check(
        "p(t) and q(t) and r(t)",
        "join_reorder.explain.txt",
        include_str!("goldens/join_reorder.explain.txt"),
    );
}

/// Empty short-circuits: the empty scan collapses the whole tree before
/// any join runs.
#[test]
fn golden_empty_short_circuit() {
    check(
        "exists t. (p(t) and q(t)) and never(t)",
        "empty_short_circuit.explain.txt",
        include_str!("goldens/empty_short_circuit.explain.txt"),
    );
}

/// Selection pushdown plus negation: the constraint sinks below the
/// join; the negated predicate keeps its difference-from-`Z` wrapper.
#[test]
fn golden_pushdown_with_negation() {
    check(
        r#"exists t. (p(t) and perform(t; "robot1")) and t >= 4 and not q(t)"#,
        "pushdown_negation.explain.txt",
        include_str!("goldens/pushdown_negation.explain.txt"),
    );
}

//! Serde persistence: databases round-trip through JSON (and files)
//! without semantic change, across randomized contents.

use itd_db::{Database, DbError, QueryOpts, TupleSpec};

fn ask(db: &Database, src: &str) -> itd_db::Result<bool> {
    db.run(src, QueryOpts::new())?
        .truth()
        .map_err(DbError::Query)
}
use itd_workload::{random_relation, RelationSpec};

#[test]
fn database_json_roundtrip_semantics() {
    for seed in 0..6 {
        let mut db = Database::new();
        db.create_table("r", &["x", "y"], &[]).unwrap();
        let rel = random_relation(
            &RelationSpec {
                tuples: 8,
                temporal_arity: 2,
                period: 5,
                data_arity: 0,
                constraint_density: 0.6,
                bound_steps: 4,
            },
            seed,
        );
        db.table_mut("r")
            .unwrap()
            .set_relation(rel.clone())
            .unwrap();

        let json = db.to_json().unwrap();
        let back = Database::from_json(&json).unwrap();
        let rel2 = back.table("r").unwrap().relation().clone();
        assert_eq!(
            rel, rel2,
            "structural equality after roundtrip, seed {seed}"
        );
        assert_eq!(
            rel.materialize(-20, 20),
            rel2.materialize(-20, 20),
            "semantic equality, seed {seed}"
        );
    }
}

#[test]
fn file_roundtrip() {
    let mut db = Database::new();
    db.create_table("sched", &["dep", "arr"], &["kind"])
        .unwrap();
    db.table_mut("sched")
        .unwrap()
        .insert(
            TupleSpec::new()
                .lrp("dep", 2, 60)
                .lrp("arr", 80, 60)
                .diff_eq("dep", "arr", -78)
                .datum("kind", "slow"),
        )
        .unwrap();
    let dir = std::env::temp_dir().join("itd_persistence_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("db.json");
    db.save(&path).unwrap();
    let back = Database::load(&path).unwrap();
    assert!(ask(&back, r#"sched(62, 140; "slow")"#).unwrap());
    assert!(!ask(&back, r#"sched(63, 140; "slow")"#).unwrap());
    std::fs::remove_file(&path).ok();
}

#[test]
fn legacy_row_oriented_files_stay_readable() {
    // Files written before the columnar storage encoded relations as
    // `{schema, tuples: [{lrps, cons, data}, ...]}`. The tuple encoding is
    // unchanged, so a legacy relation body can be reassembled from
    // serialized tuples and must decode to the same relation.
    use itd_core::{GenRelation, GenTuple, Lrp, Schema, Value};
    let t1 = GenTuple::builder()
        .lrp(Lrp::new(0, 10).unwrap())
        .datum(Value::from("a"))
        .build()
        .unwrap();
    let t2 = GenTuple::builder()
        .lrp(Lrp::new(3, 10).unwrap())
        .datum(Value::from("a"))
        .build()
        .unwrap();
    let expected = GenRelation::new(Schema::new(1, 1), vec![t1.clone(), t2.clone()]).unwrap();
    let legacy = format!(
        r#"{{"schema":{},"tuples":[{},{}]}}"#,
        serde_json::to_string(&Schema::new(1, 1)).unwrap(),
        serde_json::to_string(&t1).unwrap(),
        serde_json::to_string(&t2).unwrap(),
    );
    let back: GenRelation = serde_json::from_str(&legacy).unwrap();
    assert_eq!(back, expected, "legacy row-oriented format must decode");
}

#[test]
fn columnar_format_writes_id_tables_once() {
    // The new format stores the distinct temporal parts and data values
    // once and refers to them by local id: two rows sharing a part and a
    // value must serialize with single-entry tables.
    use itd_core::{GenRelation, GenTuple, Lrp, Schema, Value};
    let part = |offset| {
        GenTuple::builder()
            .lrp(Lrp::new(offset, 7).unwrap())
            .datum(Value::from("shared"))
            .build()
            .unwrap()
    };
    let rel = GenRelation::new(Schema::new(1, 1), vec![part(1), part(1), part(1)]).unwrap();
    let json = serde_json::to_string(&rel).unwrap();
    for key in ["\"parts\"", "\"values\"", "\"rows\"", "\"data\""] {
        assert!(json.contains(key), "columnar field {key} missing: {json}");
    }
    // One distinct part, one distinct value, three rows.
    assert_eq!(json.matches("shared").count(), 1, "value written once");
    assert_eq!(json.matches("\"cons\"").count(), 1, "part written once");
    let back: GenRelation = serde_json::from_str(&json).unwrap();
    assert_eq!(back, rel);
}

#[test]
fn malformed_input_rejected() {
    assert!(Database::from_json("{").is_err());
    assert!(Database::from_json(r#"{"tables": 3}"#).is_err());
    assert!(Database::load("/nonexistent/path/db.json").is_err());
}

#[test]
fn names_and_schemas_survive() {
    let mut db = Database::new();
    db.create_table("a", &["t"], &["d1", "d2"]).unwrap();
    db.create_table("b", &[], &["only_data"]).unwrap();
    let json = db.to_json().unwrap();
    let back = Database::from_json(&json).unwrap();
    assert_eq!(back.table_names(), vec!["a", "b"]);
    let a = back.table("a").unwrap();
    assert_eq!(a.temporal_names(), &["t".to_string()]);
    assert_eq!(a.data_names(), &["d1".to_string(), "d2".to_string()]);
    assert!(a.is_empty());
}

//! Randomized stress test: arbitrary compositions of the §3 algebra are
//! compared **pointwise** against a direct semantic evaluator. Because
//! every operator has compositional point semantics, no finite-window
//! approximation is involved — each check is exact at the sampled point.

use itd_core::{Atom, GenRelation, GenTuple, Lrp, Schema};
use proptest::prelude::*;

/// Expression over binary (temporal-arity-2, data-free) relations.
#[derive(Debug, Clone)]
enum Expr {
    Base(usize),
    Union(Box<Expr>, Box<Expr>),
    Intersect(Box<Expr>, Box<Expr>),
    Difference(Box<Expr>, Box<Expr>),
    SelectGe(usize, i64, Box<Expr>),
    SelectDiffLe(i64, Box<Expr>),
    Swap(Box<Expr>),
    Shift(usize, i64, Box<Expr>),
    Complement(Box<Expr>),
}

fn lrp(c: i64, k: i64) -> Lrp {
    Lrp::new(c, k).unwrap()
}

/// Three fixed base relations with small periods (2, 3) so complements stay
/// tractable inside deep expressions.
fn bases() -> Vec<GenRelation> {
    let schema = Schema::new(2, 0);
    vec![
        GenRelation::new(
            schema,
            vec![GenTuple::builder()
                .lrps(vec![lrp(0, 2), lrp(1, 2)])
                .atoms([Atom::diff_le(0, 1, 3)])
                .build()
                .unwrap()],
        )
        .unwrap(),
        GenRelation::new(
            schema,
            vec![
                GenTuple::builder()
                    .lrps(vec![lrp(1, 3), lrp(0, 3)])
                    .atoms([Atom::ge(0, -4)])
                    .build()
                    .unwrap(),
                GenTuple::unconstrained(vec![lrp(2, 3), lrp(2, 3)], vec![]).clone(),
            ],
        )
        .unwrap(),
        GenRelation::new(
            schema,
            vec![GenTuple::builder()
                .lrps(vec![lrp(0, 1), lrp(0, 2)])
                .atoms([Atom::diff_eq(0, 1, -1), Atom::le(0, 6)])
                .build()
                .unwrap()],
        )
        .unwrap(),
    ]
}

/// Direct (reference) point semantics.
fn member(e: &Expr, bases: &[GenRelation], x: i64, y: i64) -> bool {
    match e {
        Expr::Base(i) => bases[*i].contains(&[x, y], &[]),
        Expr::Union(a, b) => member(a, bases, x, y) || member(b, bases, x, y),
        Expr::Intersect(a, b) => member(a, bases, x, y) && member(b, bases, x, y),
        Expr::Difference(a, b) => member(a, bases, x, y) && !member(b, bases, x, y),
        Expr::SelectGe(col, c, a) => {
            member(a, bases, x, y) && (if *col == 0 { x } else { y }) >= *c
        }
        Expr::SelectDiffLe(c, a) => member(a, bases, x, y) && x <= y + c,
        Expr::Swap(a) => member(a, bases, y, x),
        Expr::Shift(col, d, a) => {
            if *col == 0 {
                member(a, bases, x - d, y)
            } else {
                member(a, bases, x, y - d)
            }
        }
        Expr::Complement(a) => !member(a, bases, x, y),
    }
}

/// Symbolic evaluation through the real algebra.
fn eval(e: &Expr, bases: &[GenRelation]) -> itd_core::Result<GenRelation> {
    Ok(match e {
        Expr::Base(i) => bases[*i].clone(),
        Expr::Union(a, b) => eval(a, bases)?.union(&eval(b, bases)?)?,
        Expr::Intersect(a, b) => eval(a, bases)?.intersect(&eval(b, bases)?)?,
        Expr::Difference(a, b) => eval(a, bases)?.difference(&eval(b, bases)?)?,
        Expr::SelectGe(col, c, a) => eval(a, bases)?.select_temporal(Atom::ge(*col, *c))?,
        Expr::SelectDiffLe(c, a) => eval(a, bases)?.select_temporal(Atom::diff_le(0, 1, *c))?,
        Expr::Swap(a) => eval(a, bases)?.project(&[1, 0], &[])?,
        Expr::Shift(col, d, a) => eval(a, bases)?.shift_temporal(*col, *d)?,
        Expr::Complement(a) => eval(a, bases)?.complement_temporal_with_limit(1 << 16)?,
    })
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = (0usize..3).prop_map(Expr::Base);
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Union(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Intersect(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Difference(Box::new(a), Box::new(b))),
            (0usize..2, -5i64..5, inner.clone()).prop_map(|(col, c, a)| Expr::SelectGe(
                col,
                c,
                Box::new(a)
            )),
            (-4i64..4, inner.clone()).prop_map(|(c, a)| Expr::SelectDiffLe(c, Box::new(a))),
            inner.clone().prop_map(|a| Expr::Swap(Box::new(a))),
            (0usize..2, -3i64..3, inner.clone()).prop_map(|(col, d, a)| Expr::Shift(
                col,
                d,
                Box::new(a)
            )),
            inner.prop_map(|a| Expr::Complement(Box::new(a))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn symbolic_algebra_matches_point_semantics(
        e in expr_strategy(),
        points in proptest::collection::vec((-12i64..12, -12i64..12), 6),
    ) {
        let bases = bases();
        let rel = match eval(&e, &bases) {
            Ok(r) => r,
            // Complement blow-up guards are legitimate outcomes for
            // adversarial expressions; skip those cases.
            Err(itd_core::CoreError::TooManyExtensions { .. }) => return Ok(()),
            Err(other) => return Err(TestCaseError::fail(format!("{other}"))),
        };
        for (x, y) in points {
            let expect = member(&e, &bases, x, y);
            prop_assert_eq!(
                rel.contains(&[x, y], &[]),
                expect,
                "expr {:?} at ({}, {})", e, x, y
            );
        }
    }

    /// Simplification passes never change semantics, on the same random
    /// expressions.
    #[test]
    fn simplify_and_compact_preserve_random_expressions(
        e in expr_strategy(),
        points in proptest::collection::vec((-10i64..10, -10i64..10), 4),
    ) {
        let bases = bases();
        let rel = match eval(&e, &bases) {
            Ok(r) => r,
            Err(_) => return Ok(()),
        };
        let simplified = rel.simplify().map_err(|e| TestCaseError::fail(format!("{e}")))?;
        let compacted = rel.compact().map_err(|e| TestCaseError::fail(format!("{e}")))?;
        for (x, y) in points {
            let expect = rel.contains(&[x, y], &[]);
            prop_assert_eq!(simplified.contains(&[x, y], &[]), expect);
            prop_assert_eq!(compacted.contains(&[x, y], &[]), expect);
        }
    }
}

//! Integration tests reproducing every worked example in the paper,
//! through the public API only.

use itd_db::{
    Atom, Database, DbError, GenRelation, GenTuple, Lrp, QueryOpts, Schema, TupleSpec, Value,
};

fn ask(db: &Database, src: &str) -> itd_db::Result<bool> {
    db.run(src, QueryOpts::new())?
        .truth()
        .map_err(DbError::Query)
}

fn lrp(c: i64, k: i64) -> Lrp {
    Lrp::new(c, k).unwrap()
}

/// Example 2.1: the lrp 3 + 5n.
#[test]
fn example_2_1_lrp_membership() {
    let l = lrp(3, 5);
    for x in [-17, -12, 3, 8, 13, 18, 23] {
        assert!(l.contains(x));
    }
    assert_eq!(l.in_window(-17, 23).len(), 9);
}

/// Example 2.2: both generalized tuples and their denotations.
#[test]
fn example_2_2_tuple_denotations() {
    let t1 = GenTuple::builder()
        .lrps(vec![Lrp::point(1), lrp(1, 2)])
        .atoms([Atom::ge(1, 0)])
        .build()
        .unwrap();
    let rel = GenRelation::new(Schema::new(2, 0), vec![t1]).unwrap();
    let m = rel.materialize(-3, 7);
    let times: Vec<Vec<i64>> = m.into_iter().map(|(t, _)| t).collect();
    assert_eq!(
        times,
        vec![vec![1, 1], vec![1, 3], vec![1, 5], vec![1, 7]],
        "first tuple of Example 2.2"
    );

    let t2 = GenTuple::builder()
        .lrps(vec![lrp(3, 2), lrp(5, 2)])
        .atoms([Atom::diff_eq(0, 1, -2)])
        .build()
        .unwrap();
    let rel = GenRelation::new(Schema::new(2, 0), vec![t2]).unwrap();
    for (a, b) in [(3, 5), (5, 7), (7, 9), (1, 3), (-3, -1)] {
        assert!(rel.contains(&[a, b], &[]), "({a},{b})");
    }
    assert!(!rel.contains(&[3, 7], &[]));
    assert!(!rel.contains(&[4, 6], &[]));
}

/// Table 1 as a database table; every row denotes what the paper says.
#[test]
fn table_1_robot_relation() {
    let mut db = Database::new();
    db.create_table("perform", &["from", "to"], &["robot", "task"])
        .unwrap();
    let t = db.table_mut("perform").unwrap();
    t.insert(
        TupleSpec::new()
            .lrp("from", 2, 2)
            .lrp("to", 4, 2)
            .diff_eq("from", "to", -2)
            .ge("from", -1)
            .datum("robot", "robot1")
            .datum("task", "task1"),
    )
    .unwrap();
    t.insert(
        TupleSpec::new()
            .lrp("from", 6, 10)
            .lrp("to", 7, 10)
            .diff_eq("from", "to", -1)
            .ge("from", 10)
            .datum("robot", "robot2")
            .datum("task", "task1"),
    )
    .unwrap();
    t.insert(
        TupleSpec::new()
            .lrp("from", 0, 10)
            .lrp("to", 3, 10)
            .diff_eq("from", "to", -3)
            .datum("robot", "robot2")
            .datum("task", "task2"),
    )
    .unwrap();

    let r1 = [Value::str("robot1"), Value::str("task1")];
    let r2a = [Value::str("robot2"), Value::str("task1")];
    let r2b = [Value::str("robot2"), Value::str("task2")];
    let rel = db.table("perform").unwrap().relation();

    // Row 1: even intervals of length 2 from −1 on, i.e. starting at 0.
    assert!(rel.contains(&[0, 2], &r1));
    assert!(rel.contains(&[2, 4], &r1));
    assert!(!rel.contains(&[-2, 0], &r1)); // X1 ≥ −1 cuts it
                                           // Row 2: [6+10n, 7+10n] with X1 ≥ 10 → starts at 16.
    assert!(rel.contains(&[16, 17], &r2a));
    assert!(!rel.contains(&[6, 7], &r2a));
    // Row 3: unbounded in both directions.
    assert!(rel.contains(&[-20, -17], &r2b));
    assert!(rel.contains(&[40, 43], &r2b));
}

/// Example 3.1: intersection of the two constrained tuples.
#[test]
fn example_3_1_intersection() {
    let a = GenRelation::new(
        Schema::new(2, 0),
        vec![GenTuple::builder()
            .lrps(vec![lrp(1, 2), lrp(-4, 3)])
            .atoms([Atom::diff_le(0, 1, 0), Atom::ge(0, 3)])
            .build()
            .unwrap()],
    )
    .unwrap();
    let b = GenRelation::new(
        Schema::new(2, 0),
        vec![GenTuple::builder()
            .lrps(vec![lrp(0, 5), lrp(2, 5)])
            .atoms([Atom::diff_eq(0, 1, -2)])
            .build()
            .unwrap()],
    )
    .unwrap();
    let i = a.intersect(&b).unwrap();
    assert_eq!(i.tuple_count(), 1);
    let t = i.row(0).unwrap();
    assert_eq!(t.lrps()[0], lrp(5, 10));
    assert_eq!(t.lrps()[1], lrp(2, 15));
    // Semantics: x1 ∈ 10n+5, x2 ∈ 15n+2, x1 = x2 − 2, x1 ≥ 3.
    // x1 = x2 − 2 with the residues: x1 ≡ 5 (10), x2 ≡ 2 (15) →
    // x2 = x1 + 2 ≡ 7 (10) and ≡ 2 (15) → x2 ≡ 17 (30), x1 ≡ 15 (30).
    assert!(i.contains(&[15, 17], &[]));
    assert!(i.contains(&[45, 47], &[]));
    assert!(!i.contains(&[5, 7], &[])); // 7 ∉ 15n+2
                                        // Window cross-check against the two inputs.
    for x in -5..60 {
        for y in -5..60 {
            assert_eq!(
                i.contains(&[x, y], &[]),
                a.contains(&[x, y], &[]) && b.contains(&[x, y], &[]),
                "({x},{y})"
            );
        }
    }
}

/// Example 3.2 / Figures 2–3: normalization and the exact projection.
#[test]
fn example_3_2_normalization_and_projection() {
    let t = GenTuple::builder()
        .lrps(vec![lrp(3, 4), lrp(1, 8)])
        .atoms([
            Atom::diff_ge(0, 1, 0).unwrap(),
            Atom::diff_le(0, 1, 5),
            Atom::ge(1, 2),
        ])
        .build()
        .unwrap();
    let rel = GenRelation::new(Schema::new(2, 0), vec![t]).unwrap();

    // Normalized: the surviving tuple is [8n+3, 8n+1] X1 = X2+2 ∧ X2 ≥ 9.
    let norm = rel.normalize().unwrap();
    assert_eq!(norm.tuple_count(), 1);
    assert!(norm.row(0).unwrap().to_tuple().is_normal_form().unwrap());

    // Projection on X1: the paper's answer is 8n+3 with X1 ≥ 11.
    let p = rel.project(&[0], &[]).unwrap();
    let present: Vec<i64> = (0..50).filter(|&x| p.contains(&[x], &[])).collect();
    assert_eq!(present, vec![11, 19, 27, 35, 43]);
}

/// Example 2.4: the train schedule in all three designs.
#[test]
fn example_2_4_train_schedule() {
    const HOUR: i64 = 60;
    let mut db = Database::new();
    db.create_table("train", &["dep", "arr"], &["kind"])
        .unwrap();
    let t = db.table_mut("train").unwrap();
    t.insert(
        TupleSpec::new()
            .lrp("dep", 2, HOUR)
            .lrp("arr", 80, HOUR)
            .diff_eq("dep", "arr", -78)
            .datum("kind", "slow"),
    )
    .unwrap();
    t.insert(
        TupleSpec::new()
            .lrp("dep", 46, HOUR)
            .lrp("arr", 110, HOUR)
            .diff_eq("dep", "arr", -64)
            .datum("kind", "express"),
    )
    .unwrap();

    // 7:02 → 8:20 and 7:46 → 8:50 trains exist…
    assert!(ask(&db, r#"train(422, 500; "slow")"#).unwrap());
    assert!(ask(&db, r#"train(466, 530; "express")"#).unwrap());
    // …but the bogus 7:46 → 7:50 from the broken unary design does not.
    assert!(!ask(&db, "exists k. train(466, 470; k)").unwrap());
    // Durations are uniform over the whole infinite schedule.
    assert!(ask(
        &db,
        r#"forall d. forall a. train(d, a; "express") implies a = d + 64"#
    )
    .unwrap());
}

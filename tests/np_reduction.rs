//! Theorem 3.6: nonemptiness-of-complement is NP-complete — validated by
//! actually *solving 3-SAT* with the complement machinery and checking
//! against a brute-force oracle.

use itd_workload::{brute_force_sat, random_3cnf, solve_via_complement, Cnf, Lit};

fn lit(var: usize, positive: bool) -> Lit {
    Lit { var, positive }
}

#[test]
fn random_instances_match_oracle() {
    // A spread of densities around the hard ratio (~4.26 clauses/var).
    for vars in [3usize, 4, 5, 6] {
        for ratio_x10 in [20u64, 35, 43, 55] {
            let clauses = (vars as u64 * ratio_x10 / 10).max(1) as usize;
            for seed in 0..4 {
                let cnf = random_3cnf(vars, clauses, seed * 31 + ratio_x10);
                let expected = brute_force_sat(&cnf);
                let got = solve_via_complement(&cnf).unwrap();
                assert_eq!(
                    got.is_some(),
                    expected.is_some(),
                    "vars={vars} clauses={clauses} seed={seed}"
                );
                if let Some(sol) = got {
                    assert!(cnf.eval(&sol), "returned assignment must satisfy");
                }
            }
        }
    }
}

#[test]
fn reduction_relation_shape_matches_paper() {
    // One column per literal/variable, one tuple per clause, constraints
    // `Xi < 0` for positive and `Xi ≥ 0` for negative literals.
    let cnf = Cnf {
        num_vars: 4,
        clauses: vec![
            [lit(0, true), lit(1, false), lit(2, true)],
            [lit(1, true), lit(2, true), lit(3, false)],
        ],
    };
    let r = cnf.to_relation();
    assert_eq!(r.schema().temporal(), 4);
    assert_eq!(r.tuple_count(), 2);
    // A point is in r iff it falsifies some clause.
    // (x0<0 ∧ x1≥0 ∧ x2<0) falsifies clause 1.
    assert!(r.contains(&[-1, 0, -1, 5], &[]));
    // An assignment satisfying both clauses is not in r.
    assert!(!r.contains(&[0, -1, 0, 0], &[]));
}

#[test]
fn pigeonhole_style_unsat() {
    // (u0)(¬u0 ∨ u1)(¬u1 ∨ u2)(¬u2)(padding to 3-literals by repetition is
    // not allowed — use distinct vars) — craft an unsat chain with 3-var
    // clauses instead: all eight polarities over three variables.
    let mut clauses = Vec::new();
    for bits in 0..8u8 {
        clauses.push([
            lit(0, bits & 1 != 0),
            lit(1, bits & 2 != 0),
            lit(2, bits & 4 != 0),
        ]);
    }
    let cnf = Cnf {
        num_vars: 3,
        clauses,
    };
    assert!(brute_force_sat(&cnf).is_none());
    // The complement is empty: r covers all of Z³.
    let complement = cnf.to_relation().complement_temporal().unwrap();
    assert!(complement.denotes_empty().unwrap());
    assert!(solve_via_complement(&cnf).unwrap().is_none());
}

#[test]
fn forced_assignment_extracted() {
    // Clauses forcing u0=T, u1=F, u2=T (each clause repeats the forced
    // literal across the three distinct variables... instead: encode
    // implications).
    let cnf = Cnf {
        num_vars: 3,
        clauses: vec![
            // u0 ∨ u1 ∨ u2
            [lit(0, true), lit(1, true), lit(2, true)],
            // u0 ∨ u1 ∨ ¬u2
            [lit(0, true), lit(1, true), lit(2, false)],
            // u0 ∨ ¬u1 ∨ u2
            [lit(0, true), lit(1, false), lit(2, true)],
            // u0 ∨ ¬u1 ∨ ¬u2 — together: u0 must be true.
            [lit(0, true), lit(1, false), lit(2, false)],
            // ¬u0 ∨ ¬u1 ∨ ¬u2 and ¬u0 ∨ ¬u1 ∨ u2 — u0 → ¬u1.
            [lit(0, false), lit(1, false), lit(2, false)],
            [lit(0, false), lit(1, false), lit(2, true)],
        ],
    };
    let sol = solve_via_complement(&cnf).unwrap().expect("satisfiable");
    assert!(sol[0], "u0 forced true");
    assert!(!sol[1], "u1 forced false");
    assert!(cnf.eval(&sol));
}

#[test]
fn growing_instances_stay_correct() {
    // The point of Theorem 3.6 is worst-case hardness, not impossibility:
    // moderate instances go through fine.
    let cnf = random_3cnf(8, 24, 42);
    let got = solve_via_complement(&cnf).unwrap();
    let expect = brute_force_sat(&cnf);
    assert_eq!(got.is_some(), expect.is_some());
}

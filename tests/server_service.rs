//! The query service end to end: wire round-trips are bit-identical to
//! direct `Database::run`, pipelined and concurrent sessions multiplex
//! onto the shared-snapshot batches, `apply` transactions interleave
//! between batches, protocol errors are typed frames, and the HTTP
//! listener serves Prometheus text and a health check.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

use itd_db::{Database, QueryOpts, TupleSpec, Txn};
use itd_server::{Client, Server, ServerConfig};

const QUERIES: &[&str] = &[
    "svc_even(t)",
    "svc_even(t) and svc_fives(t)",
    "svc_even(t) and not svc_fives(t)",
    "svc_tag(t; k) and svc_even(t)",
    "exists k. svc_tag(t; k)",
];

fn sample_db() -> Database {
    let mut db = Database::new();
    db.create_table("svc_even", &["t"], &[]).unwrap();
    db.create_table("svc_fives", &["t"], &[]).unwrap();
    db.create_table("svc_tag", &["t"], &["k"]).unwrap();
    db.table_mut("svc_even")
        .unwrap()
        .insert(TupleSpec::new().lrp("t", 0, 2))
        .unwrap();
    db.table_mut("svc_fives")
        .unwrap()
        .insert(TupleSpec::new().lrp("t", 0, 5))
        .unwrap();
    db.table_mut("svc_tag")
        .unwrap()
        .insert(TupleSpec::new().lrp("t", 1, 3).datum("k", 7))
        .unwrap();
    db
}

fn start(cfg: ServerConfig) -> Server {
    Server::start(sample_db(), cfg).unwrap()
}

/// The wire rendering the service must reproduce, computed by running
/// the same query directly against the server's own snapshot.
fn direct(server: &Server, src: &str) -> (Vec<String>, Vec<String>, String) {
    let out = server.snapshot().run(src, QueryOpts::new()).unwrap();
    (
        out.result.temporal_vars.clone(),
        out.result.data_vars.clone(),
        out.result.relation.to_string(),
    )
}

#[test]
fn round_trip_is_bit_identical_to_direct_run() {
    let server = start(ServerConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();
    for src in QUERIES {
        let res = client.query(*src).unwrap();
        let (temporal, data, rendering) = direct(&server, src);
        assert_eq!(res.temporal_vars, temporal, "{src}: temporal vars");
        assert_eq!(res.data_vars, data, "{src}: data vars");
        assert_eq!(res.result, rendering, "{src}: wire rendering");
        assert!(res.est_pairs.is_finite(), "{src}: estimate travels back");
    }
    server.shutdown();
}

#[test]
fn truth_requests_answer_closed_queries() {
    let server = start(ServerConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();
    let yes = client
        .query_opts("exists t. svc_even(t)", None, true)
        .unwrap();
    assert_eq!(yes.truth, Some(true));
    let no = client
        .query_opts("exists t. svc_even(t) and not svc_even(t)", None, true)
        .unwrap();
    assert_eq!(no.truth, Some(false));
    let skipped = client.query("svc_even(t)").unwrap();
    assert_eq!(skipped.truth, None, "truth is opt-in");
    server.shutdown();
}

#[test]
fn concurrent_sessions_share_batches_and_agree_with_direct_run() {
    let server = start(ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    });
    let expected: Vec<(Vec<String>, Vec<String>, String)> =
        QUERIES.iter().map(|src| direct(&server, src)).collect();
    let addr = server.addr();
    let threads: Vec<_> = (0..8)
        .map(|offset| {
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for round in 0..5 {
                    let pick = (offset + round) % QUERIES.len();
                    let res = client.query(QUERIES[pick]).unwrap();
                    let (temporal, data, rendering) = &expected[pick];
                    assert_eq!(&res.temporal_vars, temporal);
                    assert_eq!(&res.data_vars, data);
                    assert_eq!(&res.result, rendering);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    let snap = server.registry().snapshot();
    assert_eq!(snap.server_requests, 40, "8 sessions x 5 queries");
    assert_eq!(
        snap.server_admitted + snap.server_rejected_over_budget + snap.server_rejected_queue_full,
        snap.server_requests,
        "every submission is admitted or rejected, exactly once"
    );
    assert_eq!(snap.server_batch_queries, 40, "every request rode a batch");
    assert!(snap.server_batches >= 1);
    assert!(snap.server_connections >= 8);
    server.shutdown();
}

#[test]
fn apply_interleaves_between_batches() {
    let server = start(ServerConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();
    let before = client.query("svc_fives(t)").unwrap();

    server
        .apply(Txn::new().insert("svc_fives", TupleSpec::new().lrp("t", 1, 5)))
        .unwrap();

    let after = client.query("svc_fives(t)").unwrap();
    assert_ne!(before.result, after.result, "the txn must become visible");
    let (_, _, direct_after) = direct(&server, "svc_fives(t)");
    assert_eq!(after.result, direct_after, "post-txn snapshot agreement");
    server.shutdown();
}

#[test]
fn malformed_frames_get_typed_protocol_errors() {
    let server = start(ServerConfig::default());
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.write_all(b"this is not json\n").unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let resp = itd_server::wire::parse_response(line.trim()).unwrap();
    assert_eq!(resp.id, 0, "unparseable frames answer with id 0");
    let err = resp.payload.unwrap_err();
    assert_eq!(err.kind, "protocol");

    // A malformed frame never reaches admission accounting...
    let snap = server.registry().snapshot();
    assert_eq!(snap.server_requests, 0);

    // ...and the session survives it: a well-formed request still works.
    let req = itd_server::wire::Request {
        id: 9,
        query: "svc_even(t)".into(),
        deadline_ms: None,
        truth: false,
    };
    let mut frame = itd_server::wire::render_request(&req);
    frame.push('\n');
    stream.write_all(frame.as_bytes()).unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    let resp = itd_server::wire::parse_response(line.trim()).unwrap();
    assert_eq!(resp.id, 9);
    assert!(resp.payload.is_ok());
    server.shutdown();
}

#[test]
fn engine_errors_travel_as_rendered_chains() {
    let server = start(ServerConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();
    let err = client.query("no_such_table(t)").unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("no_such_table"),
        "the engine's message survives the wire: {msg}"
    );
    assert!(
        !msg.contains("Query("),
        "Debug formatting must not leak onto the wire: {msg}"
    );
    server.shutdown();
}

#[test]
fn http_listener_serves_metrics_and_health() {
    let server = start(ServerConfig {
        metrics_addr: Some("127.0.0.1:0".into()),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(server.addr()).unwrap();
    client.query("svc_even(t)").unwrap();

    let get = |path: &str| -> String {
        let mut stream = TcpStream::connect(server.metrics_addr().unwrap()).unwrap();
        write!(stream, "GET {path} HTTP/1.0\r\n\r\n").unwrap();
        let mut body = String::new();
        stream.read_to_string(&mut body).unwrap();
        body
    };

    let metrics = get("/metrics");
    assert!(metrics.starts_with("HTTP/1.0 200 OK"));
    assert!(metrics.contains("text/plain; version=0.0.4"));
    assert!(metrics.contains("itd_server_requests_total 1"));
    assert!(metrics.contains("itd_server_connections_total"));
    assert!(metrics.contains("itd_server_queue_depth"));

    let health = get("/healthz");
    assert!(health.starts_with("HTTP/1.0 200 OK"));
    assert!(health.ends_with("ok\n"));

    let missing = get("/nope");
    assert!(missing.starts_with("HTTP/1.0 404 Not Found"));
    server.shutdown();
}

#[test]
fn shutdown_joins_every_thread() {
    let server = start(ServerConfig {
        metrics_addr: Some("127.0.0.1:0".into()),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(server.addr()).unwrap();
    client.query("svc_even(t)").unwrap();
    // Returning at all (with a live session still connected) is the
    // assertion: shutdown must not deadlock on sessions or workers.
    server.shutdown();
}

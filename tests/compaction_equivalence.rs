//! The compaction pass's soundness contract, property-tested: for random
//! formulas over a catalog bulky enough that the cost model actually
//! inserts compaction, (1) the compacted evaluation computes the same
//! query as the uncompacted one (same columns, same denotation, same
//! emptiness verdict), (2) each mode is bit-identical at 1, 2, and 8
//! threads — results AND counters — and (3) every compaction call obeys
//! its exact counter budget `subsumed + merged + kept == seen`.

use itd_core::{Atom, ExecContext, GenRelation, GenTuple, Lrp, OpKind, Schema, Value};
use itd_query::{run, CmpOp, Formula, MemoryCatalog, QueryOpts, TemporalTerm};
use proptest::prelude::*;

fn lrp(c: i64, k: i64) -> Lrp {
    Lrp::new(c, k).unwrap()
}

/// Small-period relations so complements (∀, ¬) stay tractable, plus a
/// deliberately redundant `big` relation — duplicate residues and
/// constraint-weakened copies — whose scan estimate clears the cost
/// model's compaction threshold.
fn catalog() -> MemoryCatalog {
    let mut cat = MemoryCatalog::new();
    cat.insert(
        "p",
        GenRelation::builder(Schema::new(1, 0))
            .push_row(GenTuple::unconstrained(vec![lrp(0, 2)], vec![]))
            .build()
            .unwrap(),
    );
    cat.insert(
        "q",
        GenRelation::builder(Schema::new(1, 0))
            .push_row(
                GenTuple::builder()
                    .lrps(vec![lrp(1, 3)])
                    .atoms([Atom::ge(0, -6)])
                    .build()
                    .unwrap(),
            )
            .push_row(GenTuple::unconstrained(vec![lrp(2, 6)], vec![]))
            .build()
            .unwrap(),
    );
    let mut big = GenRelation::empty(Schema::new(1, 0));
    for i in 0..12i64 {
        let l = lrp(i % 6, 6);
        let t = if i % 2 == 0 {
            GenTuple::unconstrained(vec![l], vec![])
        } else {
            // Subsumed by the unconstrained tuple of the same residue.
            GenTuple::builder()
                .lrps(vec![l])
                .atoms([Atom::ge(0, -6 - i)])
                .build()
                .unwrap()
        };
        big.push(t).unwrap();
    }
    cat.insert("big", big);
    cat.insert(
        "r",
        GenRelation::builder(Schema::new(1, 1))
            .push_row(GenTuple::unconstrained(
                vec![lrp(0, 4)],
                vec![Value::str("a")],
            ))
            .push_row(GenTuple::unconstrained(
                vec![lrp(3, 4)],
                vec![Value::str("b")],
            ))
            .build()
            .unwrap(),
    );
    cat.insert("never", GenRelation::empty(Schema::new(1, 0)));
    cat
}

fn temporal_term() -> impl Strategy<Value = TemporalTerm> {
    prop_oneof![
        (-3i64..4).prop_map(TemporalTerm::Const),
        (prop_oneof![Just("t"), Just("u")], -2i64..3)
            .prop_map(|(v, s)| TemporalTerm::var_plus(v, s)),
    ]
}

fn leaf() -> impl Strategy<Value = Formula> {
    prop_oneof![
        Just(Formula::True),
        Just(Formula::False),
        (
            prop_oneof![Just("p"), Just("q"), Just("big"), Just("never")],
            temporal_term()
        )
            .prop_map(|(name, term)| Formula::Pred {
                name: name.to_string(),
                temporal: vec![term],
                data: vec![],
            }),
        (temporal_term(),).prop_map(|(term,)| Formula::Pred {
            name: "r".to_string(),
            temporal: vec![term],
            data: vec![itd_query::DataTerm::var("x")],
        }),
        (
            temporal_term(),
            prop_oneof![
                Just(CmpOp::Le),
                Just(CmpOp::Lt),
                Just(CmpOp::Ge),
                Just(CmpOp::Eq),
                Just(CmpOp::Ne)
            ],
            temporal_term()
        )
            .prop_map(|(left, op, right)| Formula::TempCmp { left, op, right }),
    ]
}

fn formula_strategy() -> impl Strategy<Value = Formula> {
    leaf().prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::or(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::implies(a, b)),
            inner.clone().prop_map(Formula::not),
            inner
                .clone()
                .prop_map(|b| Formula::exists("t", Formula::and(b, tether("t")))),
            inner
                .clone()
                .prop_map(|b| Formula::forall("u", Formula::implies(tether("u"), b))),
            inner.prop_map(|b| Formula::exists("x", b)),
        ]
    })
}

/// Keeps a quantified temporal variable inside a periodic relation so
/// universal quantification stays a small-grid complement.
fn tether(v: &str) -> Formula {
    Formula::Pred {
        name: "p".to_string(),
        temporal: vec![TemporalTerm::var(v)],
        data: vec![],
    }
}

/// Per-operator `(kind, tuples_in, tuples_out, pairs, subsumed, merged)`
/// counter rows.
type CounterRows = Vec<(OpKind, u64, u64, u64, u64, u64)>;

/// Evaluates `f` with compaction on or off; errors from oversized
/// intermediate relations (complement limits) discard the case.
fn eval(
    cat: &MemoryCatalog,
    f: &Formula,
    compact: bool,
    threads: usize,
) -> Result<Option<(itd_query::QueryResult, CounterRows)>, TestCaseError> {
    let ctx = ExecContext::with_threads(threads);
    match run(cat, f, QueryOpts::new().ctx(&ctx).compact(compact)) {
        Ok(out) => {
            let compact_op = *ctx.stats().op(OpKind::Compact);
            if compact {
                prop_assert_eq!(
                    compact_op.tuples_subsumed + compact_op.coalesce_merges + compact_op.tuples_out,
                    compact_op.tuples_in,
                    "compaction counter budget violated on {:?}",
                    f
                );
            } else {
                prop_assert_eq!(
                    compact_op.calls,
                    0,
                    "compaction off must execute no compact pass on {:?}",
                    f
                );
            }
            let counters = ctx
                .stats()
                .iter()
                .map(|(kind, op)| {
                    (
                        kind,
                        op.tuples_in,
                        op.tuples_out,
                        op.pairs,
                        op.tuples_subsumed,
                        op.coalesce_merges,
                    )
                })
                .collect();
            Ok(Some((out.result, counters)))
        }
        Err(itd_query::QueryError::Core(itd_core::CoreError::TooManyExtensions { .. })) => Ok(None),
        Err(itd_query::QueryError::SortConflict { .. }) => Ok(None),
        Err(other) => Err(TestCaseError::fail(format!("{other}"))),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Both modes are deterministic in the thread count: same relation
    /// (tuple-for-tuple) and same operator counters — compaction's
    /// subsumed/merged tallies included — at 1, 2, 8 threads.
    #[test]
    fn each_mode_bit_identical_across_thread_counts(f in formula_strategy()) {
        let cat = catalog();
        for compact in [false, true] {
            let Some(base) = eval(&cat, &f, compact, 1)? else { return Ok(()) };
            for threads in [2usize, 8] {
                let Some(got) = eval(&cat, &f, compact, threads)? else { return Ok(()) };
                prop_assert_eq!(
                    &got.0.relation, &base.0.relation,
                    "compact={} at {} threads changed the result of {:?}",
                    compact, threads, f
                );
                prop_assert_eq!(
                    &got.1, &base.1,
                    "compact={} at {} threads changed the counters of {:?}",
                    compact, threads, f
                );
            }
        }
    }

    /// The pass is sound: a compacted evaluation answers exactly the
    /// uncompacted query — same columns, same denotation on a window,
    /// same emptiness verdict.
    #[test]
    fn compacted_equals_uncompacted(f in formula_strategy()) {
        let cat = catalog();
        let Some((plain, _)) = eval(&cat, &f, false, 1)? else { return Ok(()) };
        let Some((compacted, _)) = eval(&cat, &f, true, 1)? else { return Ok(()) };
        prop_assert_eq!(&compacted.temporal_vars, &plain.temporal_vars);
        prop_assert_eq!(&compacted.data_vars, &plain.data_vars);
        prop_assert_eq!(
            compacted.relation.denotes_empty().map_err(|e| TestCaseError::fail(format!("{e}")))?,
            plain.relation.denotes_empty().map_err(|e| TestCaseError::fail(format!("{e}")))?,
            "emptiness diverged on {:?}", f
        );
        prop_assert_eq!(
            compacted.relation.materialize(-24, 24),
            plain.relation.materialize(-24, 24),
            "denotation diverged on {:?}", f
        );
    }

    /// Compacting a random relation directly never changes what it
    /// denotes, and the per-call counter budget is exact.
    #[test]
    fn compact_preserves_denotation(seed in 0u64..512) {
        use itd_workload::{random_relation, RelationSpec};
        let rel = random_relation(
            &RelationSpec {
                tuples: 12,
                temporal_arity: 2,
                period: 6,
                data_arity: 0,
                constraint_density: 0.5,
                bound_steps: 5,
            },
            seed,
        );
        let ctx = ExecContext::serial();
        let compacted = rel.compact_in(&ctx).map_err(|e| TestCaseError::fail(format!("{e}")))?;
        let op = *ctx.stats().op(OpKind::Compact);
        prop_assert_eq!(
            op.tuples_subsumed + op.coalesce_merges + op.tuples_out,
            op.tuples_in
        );
        prop_assert_eq!(op.tuples_in, rel.tuple_count() as u64);
        prop_assert_eq!(op.tuples_out, compacted.tuple_count() as u64);
        prop_assert!(compacted.tuple_count() <= rel.tuple_count());
        prop_assert_eq!(
            compacted.materialize(-24, 24),
            rel.materialize(-24, 24),
            "compaction changed the denotation of seed {}", seed
        );
    }
}

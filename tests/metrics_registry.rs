//! The cross-query metrics registry: exact counter-sum invariants,
//! thread-count invariance of every aggregated counter and histogram
//! bucket, slow-query-log replay determinism, resource accounting on
//! `QueryOutput`, and the measurement-reset satellites.
//!
//! Tests in this file serialize on a local mutex: `storage_stats_reset`
//! moves the zero point of the process-global storage gauges, and a reset
//! landing in the middle of another test's `ResourceCollector` window
//! would corrupt that window's deltas.

use std::sync::Mutex;

use itd_core::{
    Atom, ExecContext, GenRelation, GenTuple, Lrp, MetricsRegistry, RegistrySnapshot, Schema,
    SlowQueryEntry, StatsSnapshot, Value,
};
use itd_db::{Database, TupleSpec};
use itd_query::{parse, run, MemoryCatalog, QueryOpts, QueryOutput};

static LOCK: Mutex<()> = Mutex::new(());

/// The compaction-bench family: `p` holds periodic tuples over the six
/// residues mod 6 (half carrying a lower bound), `q` one coarse tuple mod
/// 12 — enough to exercise joins, complements, compaction and the index.
fn catalog() -> MemoryCatalog {
    let mut p = GenRelation::empty(Schema::new(1, 0));
    for i in 0..24i64 {
        let l = Lrp::new(i % 6, 6).expect("valid");
        let t = if i % 2 == 0 {
            GenTuple::unconstrained(vec![l], vec![])
        } else {
            GenTuple::builder()
                .lrps(vec![l])
                .atoms([Atom::ge(0, -i)])
                .build()
                .expect("valid")
        };
        p.push(t).expect("schema");
    }
    let q = GenRelation::new(
        Schema::new(1, 0),
        vec![GenTuple::unconstrained(
            vec![Lrp::new(0, 12).expect("valid")],
            vec![],
        )],
    )
    .expect("schema");
    let mut cat = MemoryCatalog::new();
    cat.insert("p", p);
    cat.insert("q", q);
    cat
}

const QUERIES: [&str; 5] = [
    "p(t) and q(t)",
    "p(t) and not q(t)",
    "(p(t) or q(t)) and p(t)",
    "p(t) and t >= 0",
    "exists t. p(t) and q(t)",
];

/// Runs the workload, one fresh context per query (so each context's
/// stats are exactly that query's delta), reporting every query to `reg`.
/// Returns the by-hand sum of the per-query deltas plus the outputs.
fn run_workload(threads: usize, reg: &MetricsRegistry) -> (StatsSnapshot, Vec<QueryOutput>) {
    let cat = catalog();
    let mut merged = StatsSnapshot::default();
    let mut outs = Vec::new();
    for src in QUERIES {
        let f = parse(src).expect("parses");
        let ctx = ExecContext::with_threads(threads);
        let out = run(&cat, &f, QueryOpts::new().ctx(&ctx).metrics(reg)).expect("query");
        merged.merge(&ctx.stats());
        outs.push(out);
    }
    (merged, outs)
}

#[test]
fn registry_totals_equal_sum_of_per_query_snapshots() {
    let _g = LOCK.lock().unwrap();
    let reg = MetricsRegistry::new();
    let (merged, outs) = run_workload(1, &reg);
    let snap = reg.snapshot();
    assert_eq!(snap.queries, QUERIES.len() as u64);
    // The acceptance invariant: registry totals are exactly the sum of
    // the per-query OpSnapshots — every field, wall time included.
    assert_eq!(snap.totals, merged);
    assert_eq!(
        snap.tuples_allocated,
        merged.iter().map(|(_, o)| o.tuples_out).sum::<u64>()
    );
    // Histograms saw one observation per query and extract monotone
    // percentiles.
    for h in [&snap.query_wall, &snap.query_pairs, &snap.query_rows] {
        assert_eq!(h.count(), QUERIES.len() as u64);
        let (p50, p90, p99) = (h.percentile(0.50), h.percentile(0.90), h.percentile(0.99));
        assert!(p50 <= p90 && p90 <= p99, "percentiles must be monotone");
    }
    assert_eq!(snap.query_pairs.sum, merged.total_pairs());
    // Per-op histograms: one observation per query that invoked the op,
    // and nothing for ops no query invoked.
    for (kind, h) in &snap.op_wall {
        assert!(
            h.count() <= QUERIES.len() as u64,
            "{kind:?} observed more often than queries ran"
        );
        if merged.op(*kind).calls == 0 {
            assert_eq!(h.count(), 0, "{kind:?} was never invoked");
        } else {
            assert!(h.count() > 0, "{kind:?} was invoked but not observed");
        }
    }
    // The slow-query log is populated and ranked worst-first.
    assert_eq!(snap.slow_by_time.len(), QUERIES.len());
    assert_eq!(snap.slow_by_pairs.len(), QUERIES.len());
    assert!(snap
        .slow_by_pairs
        .windows(2)
        .all(|w| w[0].pairs >= w[1].pairs));
    assert!(snap
        .slow_by_time
        .windows(2)
        .all(|w| w[0].wall_nanos >= w[1].wall_nanos));
    // Resource accounting rides on every QueryOutput: tuples allocated
    // match the query's own counters, and the peak covers the answer.
    for out in &outs {
        let produced: u64 = out.result.stats().iter().map(|(_, o)| o.tuples_out).sum();
        assert_eq!(out.resources.tuples_allocated, produced);
        assert!(out.resources.peak_live_rows >= out.result.relation.tuple_count() as u64);
    }
}

#[test]
fn registry_counters_are_thread_count_invariant() {
    let _g = LOCK.lock().unwrap();
    let snaps: Vec<RegistrySnapshot> = [1usize, 2, 8]
        .iter()
        .map(|&threads| {
            let reg = MetricsRegistry::new();
            run_workload(threads, &reg);
            reg.snapshot()
        })
        .collect();
    let base = &snaps[0];
    for (i, s) in snaps.iter().enumerate().skip(1) {
        let threads = [1, 2, 8][i];
        assert_eq!(s.queries, base.queries);
        // Every counter except wall time is bit-identical.
        assert_eq!(
            s.totals.without_timing(),
            base.totals.without_timing(),
            "registry totals must not depend on thread count ({threads} threads)"
        );
        // Pairs/rows histograms are bucket-exact (sums included); the
        // wall-time histograms vary in *values* but never in observation
        // count.
        assert_eq!(s.query_pairs, base.query_pairs, "{threads} threads");
        assert_eq!(s.query_rows, base.query_rows, "{threads} threads");
        assert_eq!(s.query_wall.count(), base.query_wall.count());
        for ((k, h), (bk, bh)) in s.op_wall.iter().zip(&base.op_wall) {
            assert_eq!(k, bk);
            assert_eq!(
                h.count(),
                bh.count(),
                "{k:?} observation count at {threads} threads"
            );
        }
        assert_eq!(s.tuples_allocated, base.tuples_allocated);
        assert_eq!(s.peak_rows, base.peak_rows);
    }
}

#[test]
fn slow_query_log_is_deterministic_under_replay() {
    let _g = LOCK.lock().unwrap();
    let replay = || {
        itd_lrp::crt_cache_reset();
        let reg = MetricsRegistry::new();
        run_workload(2, &reg);
        reg.snapshot()
    };
    let (first, second) = (replay(), replay());
    // Scrub wall-time and process-history fields, then compare in
    // observation order — with ≤ SLOW_LOG_CAP queries both rankings
    // retain every query, so the scrubbed entries must match exactly:
    // query text, plan, pairs, per-op counters, deterministic resources.
    let scrub = |entries: &[SlowQueryEntry]| {
        let mut v: Vec<SlowQueryEntry> =
            entries.iter().map(SlowQueryEntry::without_timing).collect();
        v.sort_by_key(|e| e.seq);
        v
    };
    assert_eq!(scrub(&first.slow_by_pairs), scrub(&second.slow_by_pairs));
    assert_eq!(scrub(&first.slow_by_time), scrub(&second.slow_by_time));
    // The by-pairs *ranking* itself is deterministic (its sort key is).
    let order =
        |entries: &[SlowQueryEntry]| -> Vec<u64> { entries.iter().map(|e| e.seq).collect() };
    assert_eq!(order(&first.slow_by_pairs), order(&second.slow_by_pairs));
}

#[test]
fn storage_stats_reset_measures_window_deltas() {
    let _g = LOCK.lock().unwrap();
    itd_core::storage_stats_reset();
    let s0 = itd_core::storage_stats();
    assert_eq!(s0.value_lookups, 0);
    assert_eq!(s0.part_lookups, 0);
    assert_eq!(s0.value_bytes, 0);
    // Intern fresh, never-before-seen payload.
    let mut r = GenRelation::empty(Schema::new(1, 1));
    for i in 0..5i64 {
        r.push(GenTuple::unconstrained(
            vec![Lrp::new(i, 97).expect("valid")],
            vec![Value::Str(format!("reset-probe-{i}"))],
        ))
        .expect("schema");
    }
    let s1 = itd_core::storage_stats();
    assert!(s1.part_lookups >= 5);
    assert!(s1.value_distinct >= 5, "five fresh strings were interned");
    assert!(s1.value_bytes > 0);
    assert!(s1.part_bytes > 0);
    // The per-arena invariant holds inside the measurement window.
    assert_eq!(s1.value_lookups - s1.value_hits, s1.value_distinct);
    assert_eq!(s1.part_lookups - s1.part_hits, s1.part_distinct);
    // Resetting again re-zeros the window without touching the arenas.
    itd_core::storage_stats_reset();
    let s2 = itd_core::storage_stats();
    assert_eq!(s2.part_lookups, 0);
    assert_eq!(s2.value_distinct, 0);
}

#[test]
fn database_owns_and_auto_attaches_a_registry() {
    let _g = LOCK.lock().unwrap();
    let mut db = Database::new();
    db.create_table("ev", &["t"], &[]).unwrap();
    db.table_mut("ev")
        .unwrap()
        .insert(TupleSpec::new().lrp("t", 0, 2))
        .unwrap();
    db.run("ev(4)", QueryOpts::new()).unwrap();
    db.run("ev(t) and t >= 0", QueryOpts::new()).unwrap();
    assert_eq!(db.metrics().queries(), 2);
    assert_eq!(db.metrics().snapshot().slow_by_time.len(), 2);
    // An explicitly attached registry wins over the database's own.
    let other = MetricsRegistry::new();
    db.run("ev(4)", QueryOpts::new().metrics(&other)).unwrap();
    assert_eq!(other.queries(), 1);
    assert_eq!(db.metrics().queries(), 2);
    // Clones share the registry (measurement state, not data)...
    let clone = db.clone();
    clone.run("ev(4)", QueryOpts::new()).unwrap();
    assert_eq!(db.metrics().queries(), 3);
    // ...but persistence does not carry it: a reloaded database starts
    // counting from zero.
    let json = db.to_json().unwrap();
    let reloaded = Database::from_json(&json).unwrap();
    assert_eq!(reloaded.metrics().queries(), 0);
    assert_eq!(reloaded.table_names(), db.table_names());
}

#[test]
fn folded_trace_follows_collapsed_stack_conventions() {
    let _g = LOCK.lock().unwrap();
    let cat = catalog();
    let f = parse("p(t) and not q(t)").expect("parses");
    let out = run(&cat, &f, QueryOpts::new().trace(true)).expect("query");
    let trace = out.trace.expect("tracing was on");
    let folded = trace.to_folded();
    assert!(!folded.is_empty(), "a traced query must yield stacks");
    let mut total = 0u64;
    for line in folded.lines() {
        let (stack, value) = line.rsplit_once(' ').expect("`frames value` shape");
        assert!(!stack.is_empty());
        for frame in stack.split(';') {
            assert!(!frame.is_empty(), "empty frame in {line:?}");
        }
        total += value.parse::<u64>().expect("numeric sample value");
    }
    // Self times sum back to (at most, under clock granularity) the
    // roots' wall time, and never to zero for a real evaluation.
    let root_nanos: u64 = trace.roots().map(|s| s.nanos).sum();
    assert!(total > 0);
    assert!(total <= root_nanos, "self times exceed the root wall time");
}

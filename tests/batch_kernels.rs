//! The columnar batch kernels behind `intersect_in` / `difference_in` /
//! `join_on_in`: bit-identity (results *and* counters) against the
//! retained row-at-a-time twins at 1/2/8 threads, agreement with the
//! naive unindexed references, and the global pairwise-outcome cache's
//! warm-run transparency.

use itd_core::{storage_stats, ExecContext, GenRelation};
use itd_workload::{random_relation, RelationSpec};
use proptest::prelude::*;

fn spec(tuples: usize, period: i64, data_arity: usize) -> RelationSpec {
    RelationSpec {
        tuples,
        temporal_arity: 2,
        period,
        data_arity,
        constraint_density: 0.5,
        bound_steps: 4,
    }
}

/// Every counter of every op except wall time (never deterministic) and
/// `intern_hits`: the kernels replace the per-invocation memo with the
/// process-wide outcome cache, whose hit totals are history-dependent
/// and surface through `storage_stats()` instead.
type Counters = Vec<[u64; 11]>;

fn run_counted<F>(threads: usize, op: F) -> (GenRelation, Counters)
where
    F: FnOnce(&ExecContext) -> GenRelation,
{
    let ctx = ExecContext::with_threads(threads);
    let out = op(&ctx);
    let counters = ctx
        .stats()
        .iter()
        .map(|(_, op)| {
            [
                op.calls,
                op.tuples_in,
                op.tuples_out,
                op.pairs,
                op.empties_pruned,
                op.index_probes,
                op.index_pruned,
                op.atoms_simplified,
                op.tuples_subsumed,
                op.coalesce_merges,
                op.max_period,
            ]
        })
        .collect();
    (out, counters)
}

type Op = fn(&GenRelation, &GenRelation, &ExecContext) -> GenRelation;

/// The three hot paths, each as (kernel, row path, unindexed reference).
fn op_triples() -> Vec<(&'static str, Op, Op, Op)> {
    vec![
        (
            "intersect",
            |x, y, ctx| x.intersect_in(y, ctx).unwrap(),
            |x, y, ctx| x.intersect_rowpath_in(y, ctx).unwrap(),
            |x, y, ctx| x.intersect_unindexed_in(y, ctx).unwrap(),
        ),
        (
            "difference",
            |x, y, ctx| x.difference_in(y, ctx).unwrap(),
            |x, y, ctx| x.difference_rowpath_in(y, ctx).unwrap(),
            |x, y, ctx| x.difference_unindexed_in(y, ctx).unwrap(),
        ),
        (
            "join",
            |x, y, ctx| x.join_on_in(y, &[(0, 0)], &[], ctx).unwrap(),
            |x, y, ctx| x.join_on_rowpath_in(y, &[(0, 0)], &[], ctx).unwrap(),
            |x, y, ctx| x.join_on_unindexed_in(y, &[(0, 0)], &[], ctx).unwrap(),
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Kernel ≡ row path, results and every counter (`intern_hits`
    /// excluded by construction of the snapshot), for all three ops at
    /// 1/2/8 threads — across the index gate (`n*m` from 4 to 81 spans
    /// `INDEX_MIN_PAIRS = 32`) and with data columns engaged.
    #[test]
    fn kernel_matches_rowpath_bit_for_bit(
        seed in 0u64..300,
        n in 2usize..10,
        data_arity in 0usize..3,
    ) {
        let a = random_relation(&spec(n, 6, data_arity), seed);
        let b = random_relation(&spec(n, 4, data_arity), seed.wrapping_add(1));
        for (name, kernel, rowpath, unindexed) in op_triples() {
            let (row_out, row_stats) = run_counted(1, |ctx| rowpath(&a, &b, ctx));
            let (naive_out, _) = run_counted(1, |ctx| unindexed(&a, &b, ctx));
            prop_assert_eq!(&naive_out, &row_out, "{} rowpath vs unindexed", name);
            for threads in [1usize, 2, 8] {
                let (out, stats) = run_counted(threads, |ctx| kernel(&a, &b, ctx));
                prop_assert_eq!(
                    &out, &row_out,
                    "{} kernel result diverged at {} threads", name, threads
                );
                prop_assert_eq!(
                    &stats, &row_stats,
                    "{} kernel counters diverged at {} threads", name, threads
                );
            }
        }
    }

    /// Self-intersection keeps the diagonal alive through the batch
    /// filter, so a repeat run must be answered from the global outcome
    /// cache — with results and counters identical to the first run.
    #[test]
    fn warm_outcome_cache_is_transparent(seed in 0u64..100) {
        let a = random_relation(&spec(8, 6, 1), seed);
        let b = a.clone();
        let (cold_out, cold_stats) = run_counted(1, |ctx| a.intersect_in(&b, ctx).unwrap());
        let before = storage_stats();
        let (warm_out, warm_stats) = run_counted(1, |ctx| a.intersect_in(&b, ctx).unwrap());
        let delta = storage_stats().delta_since(&before);
        prop_assert_eq!(&warm_out, &cold_out, "warm outcome cache changed the result");
        prop_assert_eq!(&warm_stats, &cold_stats, "warm outcome cache changed counters");
        // Every diagonal pair survives the filter (identical offsets and
        // data ids), was cached by the cold run, and must now hit.
        prop_assert!(
            delta.outcome_hits >= 8,
            "expected >= 8 outcome-cache hits on the warm run, got {} ({} misses)",
            delta.outcome_hits,
            delta.outcome_misses
        );
    }
}

/// The outcome cache only ever short-circuits derivations it has seen:
/// a fresh pair of relations (no shared temporal parts with earlier
/// runs in this process would be unusual, but misses are the general
/// case) records misses, never wrong outcomes.
#[test]
fn outcome_cache_counts_misses_then_hits() {
    let a = random_relation(&spec(12, 30, 0), 20_260_807);
    let b = random_relation(&spec(12, 30, 0), 20_260_808);
    let before = storage_stats();
    let (first, _) = run_counted(1, |ctx| a.intersect_in(&b, ctx).unwrap());
    let mid = storage_stats();
    let (second, _) = run_counted(1, |ctx| a.intersect_in(&b, ctx).unwrap());
    let after = storage_stats();
    assert_eq!(first, second);
    let d1 = mid.delta_since(&before);
    let d2 = after.delta_since(&mid);
    // Whatever survived the batch filter was derived (missed) once and
    // served from cache afterwards: the warm run adds no new misses
    // beyond what a racing test could contribute, and hits at least
    // what the cold run missed.
    assert!(
        d2.outcome_hits >= d1.outcome_misses,
        "warm run should hit every pair the cold run derived: {d1:?} then {d2:?}"
    );
}

//! Theorems 2.1 / 2.2 end-to-end: Presburger formulas, their lrp-relation
//! translations, and agreement with direct evaluation — including the
//! paper's own proof-case formulas.

use itd_presburger::{BinaryAtom, BinaryFormula, UnaryAtom, UnaryFormula};

/// All four unary basic-formula shapes, with the coefficient signs the
/// paper glosses over.
#[test]
fn unary_basic_formulas_paper_cases() {
    // Case 1: k·v = c with c/k ∈ Z and with c/k ∉ Z.
    for (k, c) in [(3, 9), (3, 10), (-3, 9), (1, 0), (5, -10)] {
        let f = UnaryFormula::atom(UnaryAtom::Eq { k, c });
        let r = f.to_relation().unwrap();
        for v in -30..30 {
            assert_eq!(r.contains(&[v], &[]), f.eval(v), "Eq k={k} c={c} v={v}");
        }
    }
    // Cases 2–3: strict comparisons with floor/ceil rounding.
    for (k, c) in [(2, 7), (2, -7), (-2, 7), (3, 0), (-1, 1)] {
        for mk in [
            |k, c| UnaryFormula::atom(UnaryAtom::Lt { k, c }),
            |k, c| UnaryFormula::atom(UnaryAtom::Gt { k, c }),
        ] {
            let f = mk(k, c);
            let r = f.to_relation().unwrap();
            for v in -30..30 {
                assert_eq!(r.contains(&[v], &[]), f.eval(v), "{f:?} v={v}");
            }
        }
    }
    // Case 4: k1·v ≡ c (mod k2) — the lrp-intersection construction.
    for (k1, k2, c) in [(3, 5, 2), (2, 4, 1), (2, 4, 2), (6, 9, 3), (4, 6, 2)] {
        let f = UnaryFormula::atom(UnaryAtom::ModEq { k1, k2, c });
        let r = f.to_relation().unwrap();
        for v in -30..30 {
            assert_eq!(
                r.contains(&[v], &[]),
                f.eval(v),
                "ModEq k1={k1} k2={k2} c={c} v={v}"
            );
        }
    }
}

/// Boolean closure of unary predicates runs through the real §3 algebra:
/// ∧ = intersection, ∨ = union, ¬ = Appendix A.6 complement.
#[test]
fn unary_boolean_closure_via_algebra() {
    let f = UnaryFormula::and(
        UnaryFormula::or(
            UnaryFormula::atom(UnaryAtom::ModEq { k1: 1, k2: 6, c: 1 }),
            UnaryFormula::atom(UnaryAtom::ModEq { k1: 1, k2: 6, c: 5 }),
        ),
        UnaryFormula::not(UnaryFormula::atom(UnaryAtom::Lt { k: 1, c: -20 })),
    );
    let r = f.to_relation().unwrap();
    for v in -40..40 {
        assert_eq!(r.contains(&[v], &[]), f.eval(v), "v = {v}");
    }
    // "units modulo 6 that are ≥ −20": −19 is 5 mod 6 → in; −25 → out.
    assert!(r.contains(&[-19], &[]));
    assert!(!r.contains(&[-25], &[]));
    assert!(r.contains(&[1_000_001], &[])); // 1000001 ≡ 5 (mod 6)
}

/// The binary proof cases of Theorem 2.2.
#[test]
fn binary_basic_formulas_paper_cases() {
    // k1·v1 = / < / > k2·v2 + c with assorted signs.
    let shapes: Vec<BinaryAtom> = vec![
        BinaryAtom::eq(2, 3, 1),
        BinaryAtom::eq(-2, 3, 0),
        BinaryAtom::lt(1, 2, -3).unwrap(),
        BinaryAtom::lt(-3, -2, 4).unwrap(),
        BinaryAtom::gt(4, 1, 2).unwrap(),
        BinaryAtom::gt(0, 5, 0).unwrap(),
        // k1·v1 ≡ k2·v2 + c (mod k3) — the residue-grid construction.
        BinaryAtom::mod_eq(2, 3, 4, 1),
        BinaryAtom::mod_eq(1, 1, 2, 0),
        BinaryAtom::mod_eq(6, 4, 3, 2),
    ];
    for atom in shapes {
        let f = BinaryFormula::atom(atom);
        let r = f.to_relation().unwrap();
        for v1 in -12..12 {
            for v2 in -12..12 {
                assert_eq!(
                    r.contains(v1, v2),
                    f.eval(v1, v2),
                    "{atom:?} at ({v1},{v2})"
                );
            }
        }
    }
}

/// Deep boolean nesting over binary atoms (negation pushed to atoms).
#[test]
fn binary_nested_negations() {
    let f = BinaryFormula::not(BinaryFormula::or(
        BinaryFormula::and(
            BinaryFormula::atom(BinaryAtom::lt(2, 1, 0).unwrap()),
            BinaryFormula::not(BinaryFormula::atom(BinaryAtom::mod_eq(1, 1, 3, 0))),
        ),
        BinaryFormula::not(BinaryFormula::atom(BinaryAtom::gt(1, -1, 2).unwrap())),
    ));
    let r = f.to_relation().unwrap();
    for v1 in -9..9 {
        for v2 in -9..9 {
            assert_eq!(r.contains(v1, v2), f.eval(v1, v2), "({v1},{v2})");
        }
    }
}

/// The unary fragment round-trips through the core algebra and stays
/// closed: intersecting two compiled predicates equals compiling the
/// conjunction.
#[test]
fn compilation_is_homomorphic() {
    let a = UnaryFormula::atom(UnaryAtom::ModEq { k1: 1, k2: 4, c: 1 });
    let b = UnaryFormula::atom(UnaryAtom::Gt { k: 2, c: 5 });
    let compiled_conj = UnaryFormula::and(a.clone(), b.clone())
        .to_relation()
        .unwrap();
    let conj_compiled = a
        .to_relation()
        .unwrap()
        .intersect(&b.to_relation().unwrap())
        .unwrap();
    for v in -20..40 {
        assert_eq!(
            compiled_conj.contains(&[v], &[]),
            conj_compiled.contains(&[v], &[]),
            "v = {v}"
        );
    }
}

/// Weak-lrp vs general-lrp boundary: non-unit binary comparisons do not
/// downgrade to restricted constraints; congruences do.
#[test]
fn restricted_versus_general_boundary() {
    let halfplane = BinaryFormula::atom(BinaryAtom::lt(2, 3, 0).unwrap());
    assert!(halfplane
        .to_relation()
        .unwrap()
        .to_core_relation()
        .unwrap()
        .is_none());
    let unit = BinaryFormula::atom(BinaryAtom::lt(1, 1, 5).unwrap());
    assert!(unit
        .to_relation()
        .unwrap()
        .to_core_relation()
        .unwrap()
        .is_some());
    let cong = BinaryFormula::atom(BinaryAtom::mod_eq(2, 3, 5, 1));
    let core = cong
        .to_relation()
        .unwrap()
        .to_core_relation()
        .unwrap()
        .expect("congruences are residue-pair unions");
    for v1 in -10..10 {
        for v2 in -10..10 {
            assert_eq!(
                core.contains(&[v1, v2], &[]),
                (2 * v1 - 3 * v2 - 1).rem_euclid(5) == 0,
                "({v1},{v2})"
            );
        }
    }
}

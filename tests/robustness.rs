//! Robustness: no panics on adversarial input; arithmetic overflow
//! surfaces as typed errors, never as wraparound or aborts.

use itd_core::{Atom, CoreError, GenRelation, GenTuple, Lrp, Schema};
use proptest::prelude::*;

proptest! {
    /// The query parser returns Ok or Err on arbitrary input — never
    /// panics.
    #[test]
    fn query_parser_total(src in "\\PC{0,60}") {
        let _ = itd_query::parse(&src);
    }

    /// Same for inputs biased toward the query grammar's alphabet.
    #[test]
    fn query_parser_total_on_grammarish_input(
        src in "[a-z0-9 ().;,+<>=!\"]{0,40}"
    ) {
        let _ = itd_query::parse(&src);
    }

    /// The TL parser is total too.
    #[test]
    fn tl_parser_total(src in "[a-zXYFGOHU!&|()<=0-9 -]{0,40}") {
        let _ = itd_tl::parse(&src);
    }

    /// REPL commands never panic the session.
    #[test]
    fn repl_total(lines in proptest::collection::vec("[a-z0-9 (),;]{0,30}", 1..5)) {
        let mut session = itd_db::repl::ReplSession::new();
        for line in lines {
            let _ = session.execute(&line);
        }
    }
}

#[test]
fn lcm_overflow_is_an_error() {
    // Two huge coprime-ish periods whose lcm exceeds i64.
    let p1 = 3_037_000_499i64; // ≈ √(i64::MAX)
    let p2 = 3_037_000_507i64;
    let t = GenTuple::unconstrained(
        vec![Lrp::new(0, p1).unwrap(), Lrp::new(1, p2).unwrap()],
        vec![],
    );
    match t.normalize() {
        Err(CoreError::Numth(itd_numth::NumthError::Overflow))
        | Err(CoreError::TooManyExtensions { .. }) => {}
        other => panic!("expected overflow/limit error, got {other:?}"),
    }
    // Emptiness takes the same guarded path.
    assert!(t.is_empty().is_err());
}

#[test]
fn refinement_limit_is_an_error_not_oom() {
    // lcm fits in i64 but the cross-product count exceeds the limit.
    let t = GenTuple::unconstrained(
        vec![
            Lrp::new(0, 1_000_003).unwrap(),
            Lrp::new(0, 1_000_033).unwrap(),
        ],
        vec![],
    );
    match t.normalize() {
        Err(CoreError::TooManyExtensions { .. }) => {}
        other => panic!("expected TooManyExtensions, got {other:?}"),
    }
}

#[test]
fn complement_limit_is_an_error() {
    let r = GenRelation::new(
        Schema::new(3, 0),
        vec![GenTuple::unconstrained(
            vec![
                Lrp::new(0, 1009).unwrap(),
                Lrp::new(0, 1009).unwrap(),
                Lrp::new(0, 1009).unwrap(),
            ],
            vec![],
        )],
    )
    .unwrap();
    match r.complement_temporal() {
        Err(CoreError::TooManyExtensions { period, arity, .. }) => {
            assert_eq!(period, 1009);
            assert_eq!(arity, 3);
        }
        other => panic!("expected TooManyExtensions, got {other:?}"),
    }
}

#[test]
fn extreme_offsets_stay_exact() {
    // Offsets near the i64 edges: membership and shifting behave, overflow
    // in shifting errors.
    let big = i64::MAX - 10;
    let t = GenTuple::unconstrained(vec![Lrp::point(big)], vec![]);
    assert!(t.contains(&[big], &[]));
    let r = GenRelation::new(Schema::new(1, 0), vec![t]).unwrap();
    assert!(r.shift_temporal(0, 5).is_ok());
    assert!(matches!(
        r.shift_temporal(0, 100),
        Err(CoreError::Numth(itd_numth::NumthError::Overflow))
    ));
}

#[test]
fn constraint_constant_extremes() {
    // Bounds near i64 extremes: closure arithmetic must error, not wrap.
    let mut sys = itd_constraint::ConstraintSystem::unconstrained(2);
    sys.add(Atom::le(0, i64::MAX - 1)).unwrap();
    // Combining a near-MAX upper bound with a near-MIN lower bound would
    // need a derived difference beyond i64: closure reports overflow at
    // whichever add makes it derivable.
    let second = sys.add(Atom::ge(1, i64::MIN + 1));
    let third = sys.add(Atom::diff_le(1, 0, 0));
    assert!(
        second.is_err() || third.is_err(),
        "an overflow error must surface instead of wrapping"
    );
}

#[test]
fn deep_query_nesting_does_not_stack_overflow() {
    // 200 nested negations parse and evaluate.
    let mut src = String::new();
    for _ in 0..200 {
        src.push_str("not (");
    }
    src.push_str("even(0)");
    for _ in 0..200 {
        src.push(')');
    }
    let mut cat = itd_query::MemoryCatalog::new();
    cat.insert(
        "even",
        GenRelation::new(
            Schema::new(1, 0),
            vec![GenTuple::unconstrained(
                vec![Lrp::new(0, 2).unwrap()],
                vec![],
            )],
        )
        .unwrap(),
    );
    let f = itd_query::parse(&src).unwrap();
    // even(0) under an even number of negations: true.
    assert!(itd_query::run(&cat, &f, itd_query::QueryOpts::new())
        .unwrap()
        .truth()
        .unwrap());
}

#[test]
fn materialize_handles_inverted_and_huge_windows_gracefully() {
    let r = GenRelation::new(
        Schema::new(1, 0),
        vec![GenTuple::unconstrained(
            vec![Lrp::new(0, 2).unwrap()],
            vec![],
        )],
    )
    .unwrap();
    assert!(r.materialize(10, -10).is_empty());
    assert_eq!(r.materialize(0, 0).len(), 1);
}

//! The optimizer's soundness contract, property-tested: for random
//! formulas over a periodic catalog, (1) each evaluation mode is
//! bit-identical at 1, 2, and 8 threads — results AND counters — and
//! (2) the optimized plan computes the same query as the unoptimized
//! plan (same columns, same denotation, same emptiness verdict).

use itd_core::{Atom, ExecContext, GenRelation, GenTuple, Lrp, Schema, Value};
use itd_query::{run, CmpOp, Formula, MemoryCatalog, QueryOpts, TemporalTerm};
use proptest::prelude::*;

fn lrp(c: i64, k: i64) -> Lrp {
    Lrp::new(c, k).unwrap()
}

/// Small-period relations so complements (∀, ¬) stay tractable at any
/// nesting the strategy produces.
fn catalog() -> MemoryCatalog {
    let mut cat = MemoryCatalog::new();
    cat.insert(
        "p",
        GenRelation::builder(Schema::new(1, 0))
            .push_row(GenTuple::unconstrained(vec![lrp(0, 2)], vec![]))
            .build()
            .unwrap(),
    );
    cat.insert(
        "q",
        GenRelation::builder(Schema::new(1, 0))
            .push_row(
                GenTuple::builder()
                    .lrps(vec![lrp(1, 3)])
                    .atoms([Atom::ge(0, -6)])
                    .build()
                    .unwrap(),
            )
            .push_row(GenTuple::unconstrained(vec![lrp(2, 6)], vec![]))
            .build()
            .unwrap(),
    );
    cat.insert(
        "r",
        GenRelation::builder(Schema::new(1, 1))
            .push_row(GenTuple::unconstrained(
                vec![lrp(0, 4)],
                vec![Value::str("a")],
            ))
            .push_row(GenTuple::unconstrained(
                vec![lrp(3, 4)],
                vec![Value::str("b")],
            ))
            .build()
            .unwrap(),
    );
    cat.insert("never", GenRelation::empty(Schema::new(1, 0)));
    cat
}

fn temporal_term() -> impl Strategy<Value = TemporalTerm> {
    prop_oneof![
        (-3i64..4).prop_map(TemporalTerm::Const),
        (prop_oneof![Just("t"), Just("u")], -2i64..3)
            .prop_map(|(v, s)| TemporalTerm::var_plus(v, s)),
    ]
}

fn leaf() -> impl Strategy<Value = Formula> {
    prop_oneof![
        Just(Formula::True),
        Just(Formula::False),
        (
            prop_oneof![Just("p"), Just("q"), Just("never")],
            temporal_term()
        )
            .prop_map(|(name, term)| Formula::Pred {
                name: name.to_string(),
                temporal: vec![term],
                data: vec![],
            }),
        (temporal_term(),).prop_map(|(term,)| Formula::Pred {
            name: "r".to_string(),
            temporal: vec![term],
            data: vec![itd_query::DataTerm::var("x")],
        }),
        (
            temporal_term(),
            prop_oneof![
                Just(CmpOp::Le),
                Just(CmpOp::Lt),
                Just(CmpOp::Ge),
                Just(CmpOp::Eq),
                Just(CmpOp::Ne)
            ],
            temporal_term()
        )
            .prop_map(|(left, op, right)| Formula::TempCmp { left, op, right }),
    ]
}

fn formula_strategy() -> impl Strategy<Value = Formula> {
    leaf().prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::or(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::implies(a, b)),
            inner.clone().prop_map(Formula::not),
            inner
                .clone()
                .prop_map(|b| Formula::exists("t", Formula::and(b, tether("t")))),
            inner
                .clone()
                .prop_map(|b| Formula::forall("u", Formula::implies(tether("u"), b))),
            inner.prop_map(|b| Formula::exists("x", b)),
        ]
    })
}

/// Keeps a quantified temporal variable inside a periodic relation so
/// universal quantification stays a small-grid complement.
fn tether(v: &str) -> Formula {
    Formula::Pred {
        name: "p".to_string(),
        temporal: vec![TemporalTerm::var(v)],
        data: vec![],
    }
}

/// Per-operator `(kind, tuples_in, tuples_out, pairs)` counter rows.
type CounterRows = Vec<(itd_core::OpKind, u64, u64, u64)>;

/// Evaluates `f` in the given mode; errors from oversized intermediate
/// relations (complement limits) discard the case.
fn eval(
    cat: &MemoryCatalog,
    f: &Formula,
    optimize: bool,
    threads: usize,
) -> Result<Option<(itd_query::QueryResult, CounterRows)>, TestCaseError> {
    let ctx = ExecContext::with_threads(threads);
    match run(cat, f, QueryOpts::new().ctx(&ctx).optimize(optimize)) {
        Ok(out) => {
            let counters = ctx
                .stats()
                .iter()
                .map(|(kind, op)| (kind, op.tuples_in, op.tuples_out, op.pairs))
                .collect();
            Ok(Some((out.result, counters)))
        }
        Err(itd_query::QueryError::Core(itd_core::CoreError::TooManyExtensions { .. })) => Ok(None),
        Err(itd_query::QueryError::SortConflict { .. }) => Ok(None),
        Err(other) => Err(TestCaseError::fail(format!("{other}"))),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Both modes are deterministic in the thread count: same relation
    /// (tuple-for-tuple) and same operator counters at 1, 2, 8 threads.
    #[test]
    fn each_mode_bit_identical_across_thread_counts(f in formula_strategy()) {
        let cat = catalog();
        for optimize in [false, true] {
            let Some(base) = eval(&cat, &f, optimize, 1)? else { return Ok(()) };
            for threads in [2usize, 8] {
                let Some(got) = eval(&cat, &f, optimize, threads)? else { return Ok(()) };
                prop_assert_eq!(
                    &got.0.relation, &base.0.relation,
                    "optimize={} at {} threads changed the result of {:?}",
                    optimize, threads, f
                );
                prop_assert_eq!(
                    &got.1, &base.1,
                    "optimize={} at {} threads changed the counters of {:?}",
                    optimize, threads, f
                );
            }
        }
    }

    /// The rewrites are sound: the optimized plan answers exactly the
    /// unoptimized query — same columns, same denotation on a window,
    /// same emptiness verdict.
    #[test]
    fn optimized_equals_unoptimized(f in formula_strategy()) {
        let cat = catalog();
        let Some((unopt, _)) = eval(&cat, &f, false, 1)? else { return Ok(()) };
        let Some((opt, _)) = eval(&cat, &f, true, 1)? else { return Ok(()) };
        prop_assert_eq!(&opt.temporal_vars, &unopt.temporal_vars);
        prop_assert_eq!(&opt.data_vars, &unopt.data_vars);
        prop_assert_eq!(
            opt.relation.denotes_empty().map_err(|e| TestCaseError::fail(format!("{e}")))?,
            unopt.relation.denotes_empty().map_err(|e| TestCaseError::fail(format!("{e}")))?,
            "emptiness diverged on {:?}", f
        );
        prop_assert_eq!(
            opt.relation.materialize(-24, 24),
            unopt.relation.materialize(-24, 24),
            "denotation diverged on {:?}", f
        );
    }
}

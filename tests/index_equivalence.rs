//! The residue-class index is a pure accelerator: every indexed operator
//! must produce *bit-identical* output (same tuples, same order) to its
//! naive all-pairs counterpart, at every thread count, and its probe
//! counters must partition the candidate-pair space exactly.

use itd_core::{ExecContext, GenRelation, GenTuple, Lrp, OpKind, Schema};
use itd_workload::{random_relation, RelationSpec};
use proptest::prelude::*;

fn lrp(c: i64, k: i64) -> Lrp {
    Lrp::new(c, k).unwrap()
}

fn spec(tuples: usize, temporal_arity: usize, period: i64, data_arity: usize) -> RelationSpec {
    RelationSpec {
        tuples,
        temporal_arity,
        period,
        data_arity,
        ..RelationSpec::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Indexed intersection == naive intersection, tuple for tuple, at
    /// 1, 2, and 8 threads. Periods vary per relation so the residue
    /// moduli exercise gcd refinement, and sizes straddle the
    /// `INDEX_MIN_PAIRS` threshold.
    #[test]
    fn intersect_indexed_matches_naive(
        seed1 in 0u64..500, seed2 in 500u64..1000,
        n1 in 2usize..10, n2 in 2usize..10,
        k1 in 1i64..13, k2 in 1i64..13,
        data in 0usize..2,
    ) {
        let r1 = random_relation(&spec(n1, 2, k1, data), seed1);
        let r2 = random_relation(&spec(n2, 2, k2, data), seed2);
        let naive = r1.intersect_unindexed_in(&r2, &ExecContext::serial()).unwrap();
        for threads in [1usize, 2, 8] {
            let ctx = ExecContext::with_threads(threads);
            let got = r1.intersect_in(&r2, &ctx).unwrap();
            prop_assert_eq!(&got, &naive, "threads = {}", threads);
            let op = *ctx.stats().op(OpKind::Intersect);
            // The probe counters partition the candidate space whenever
            // the index was consulted; both stay 0 when it was not.
            if op.index_probes + op.index_pruned > 0 {
                prop_assert_eq!(op.index_probes + op.index_pruned, op.pairs);
            }
            prop_assert_eq!(op.tuples_out + op.empties_pruned, op.pairs);
        }
    }

    /// Indexed difference == naive difference. The index only skips
    /// subtrahend tuples that are disjoint from the minuend tuple, which
    /// leaves the incremental fold untouched.
    #[test]
    fn difference_indexed_matches_naive(
        seed1 in 0u64..500, seed2 in 500u64..1000,
        n1 in 2usize..10, n2 in 2usize..10,
        k1 in 1i64..13, k2 in 1i64..13,
    ) {
        let r1 = random_relation(&spec(n1, 2, k1, 0), seed1);
        let r2 = random_relation(&spec(n2, 2, k2, 0), seed2);
        let naive = r1.difference_unindexed_in(&r2, &ExecContext::serial()).unwrap();
        for threads in [1usize, 2, 8] {
            let ctx = ExecContext::with_threads(threads);
            let got = r1.difference_in(&r2, &ctx).unwrap();
            prop_assert_eq!(&got, &naive, "threads = {}", threads);
        }
    }

    /// Indexed join == naive join on a shared temporal column (and the
    /// data column when present).
    #[test]
    fn join_indexed_matches_naive(
        seed1 in 0u64..500, seed2 in 500u64..1000,
        n1 in 2usize..10, n2 in 2usize..10,
        k1 in 1i64..13, k2 in 1i64..13,
        data in 0usize..2,
    ) {
        let r1 = random_relation(&spec(n1, 2, k1, data), seed1);
        let r2 = random_relation(&spec(n2, 2, k2, data), seed2);
        let tpairs = [(0usize, 1usize)];
        let dpairs: Vec<(usize, usize)> = if data > 0 { vec![(0, 0)] } else { vec![] };
        let naive = r1
            .join_on_unindexed_in(&r2, &tpairs, &dpairs, &ExecContext::serial())
            .unwrap();
        for threads in [1usize, 2, 8] {
            let ctx = ExecContext::with_threads(threads);
            let got = r1.join_on_in(&r2, &tpairs, &dpairs, &ctx).unwrap();
            prop_assert_eq!(&got, &naive, "threads = {}", threads);
            let op = *ctx.stats().op(OpKind::Join);
            if op.index_probes + op.index_pruned > 0 {
                prop_assert_eq!(op.index_probes + op.index_pruned, op.pairs);
            }
        }
    }

    /// Index counters are scheduling-independent: the same operation
    /// reports the same probes/skips at any thread count.
    #[test]
    fn index_counters_identical_across_thread_counts(
        seed1 in 0u64..500, seed2 in 500u64..1000,
        n1 in 4usize..10, n2 in 4usize..10,
        k1 in 1i64..13, k2 in 1i64..13,
    ) {
        let r1 = random_relation(&spec(n1, 2, k1, 0), seed1);
        let r2 = random_relation(&spec(n2, 2, k2, 0), seed2);
        let count = |threads: usize| {
            let ctx = ExecContext::with_threads(threads);
            r1.intersect_in(&r2, &ctx).unwrap();
            let op = *ctx.stats().op(OpKind::Intersect);
            (op.index_probes, op.index_pruned, op.pairs, op.empties_pruned)
        };
        let one = count(1);
        prop_assert_eq!(count(2), one);
        prop_assert_eq!(count(8), one);
    }
}

/// Exact counters on a paper-style example (the train schedules of §1:
/// departures repeating within the hour). R₁ holds eight hourly
/// schedules at offsets {0, 5, …, 35} past the hour, R₂ four at
/// {0, 15, 30, 45}; all share period 60, so the per-column modulus is 60
/// (60 = 2²·3·5 is 13-smooth and ≤ the cap) and residue buckets resolve
/// intersection membership exactly: only the three shared offsets
/// {0, 15, 30} are ever probed.
#[test]
fn intersect_counters_partition_pairs_exactly() {
    let sched = |offsets: &[i64]| {
        let mut b = GenRelation::builder(Schema::new(1, 0));
        for &c in offsets {
            b = b.push_row(GenTuple::unconstrained(vec![lrp(c, 60)], vec![]));
        }
        b.build().unwrap()
    };
    let r1 = sched(&[0, 5, 10, 15, 20, 25, 30, 35]);
    let r2 = sched(&[0, 15, 30, 45]);
    let ctx = ExecContext::serial();
    let out = r1.intersect_in(&r2, &ctx).unwrap();
    assert_eq!(out.tuple_count(), 3, "shared offsets 0, 15, 30");

    let op = *ctx.stats().op(OpKind::Intersect);
    assert_eq!(op.pairs, 32, "N₁·N₂ = 8·4 candidate pairs");
    assert_eq!(
        op.index_probes + op.index_pruned,
        op.pairs,
        "probed + pruned == n·m: the index partitions the pair space"
    );
    assert_eq!(op.index_probes, 3, "only residue-compatible pairs probed");
    assert_eq!(op.index_pruned, 29);
    assert!(
        op.index_pruned * 2 >= op.pairs,
        "the index prunes at least half the candidate pairs"
    );
    assert_eq!(
        op.tuples_out + op.empties_pruned,
        op.pairs,
        "skipped pairs still count as pruned empties"
    );

    // The naive path agrees bit for bit and reports no index activity.
    let nctx = ExecContext::serial();
    let naive = r1.intersect_unindexed_in(&r2, &nctx).unwrap();
    assert_eq!(naive, out);
    let nop = *nctx.stats().op(OpKind::Intersect);
    assert_eq!(nop.index_probes, 0);
    assert_eq!(nop.index_pruned, 0);
    assert_eq!(nop.tuples_out, op.tuples_out);
}

/// Below `INDEX_MIN_PAIRS` the indexed entry points stay on the naive
/// path: no probe counters move.
#[test]
fn small_inputs_skip_the_index() {
    let r1 = GenRelation::builder(Schema::new(1, 0))
        .push_row(GenTuple::unconstrained(vec![lrp(0, 6)], vec![]))
        .push_row(GenTuple::unconstrained(vec![lrp(3, 6)], vec![]))
        .build()
        .unwrap();
    let ctx = ExecContext::serial();
    r1.intersect_in(&r1, &ctx).unwrap();
    let op = *ctx.stats().op(OpKind::Intersect);
    assert_eq!(op.pairs, 4);
    assert_eq!(op.index_probes, 0);
    assert_eq!(op.index_pruned, 0);
}

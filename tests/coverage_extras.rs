//! Additional cross-crate coverage: multi-pair joins, shifted repeated
//! variables in queries, serde details, and API corners that the focused
//! suites do not reach.

use itd_core::{Atom, GenRelation, GenTuple, Lrp, Schema, Value};

fn lrp(c: i64, k: i64) -> Lrp {
    Lrp::new(c, k).unwrap()
}

#[test]
fn join_on_multiple_temporal_pairs() {
    // r(a, b), s(c, d): join on a = c AND b = d — effectively intersection
    // through a 4-column join.
    let r = GenRelation::new(
        Schema::new(2, 0),
        vec![GenTuple::builder()
            .lrps(vec![lrp(0, 2), lrp(1, 2)])
            .atoms([Atom::diff_le(0, 1, 5)])
            .build()
            .unwrap()],
    )
    .unwrap();
    let s = GenRelation::new(
        Schema::new(2, 0),
        vec![GenTuple::builder()
            .lrps(vec![lrp(0, 3), lrp(1, 3)])
            .atoms([Atom::ge(0, 0)])
            .build()
            .unwrap()],
    )
    .unwrap();
    let j = r.join_on(&s, &[(0, 0), (1, 1)], &[]).unwrap();
    for a in -6..12 {
        for b in -6..12 {
            let expect = r.contains(&[a, b], &[]) && s.contains(&[a, b], &[]);
            assert_eq!(j.contains(&[a, b, a, b], &[]), expect, "({a},{b})");
        }
    }
}

#[test]
fn join_on_mixed_temporal_and_data_pairs() {
    let mk = |k: i64, who: &str| {
        GenRelation::new(
            Schema::new(1, 1),
            vec![GenTuple::unconstrained(
                vec![lrp(0, k)],
                vec![Value::str(who)],
            )],
        )
        .unwrap()
    };
    let r = mk(2, "x").union(&mk(3, "y")).unwrap();
    let s = mk(4, "x").union(&mk(5, "y")).unwrap();
    let j = r.join_on(&s, &[(0, 0)], &[(0, 0)]).unwrap();
    // x-lane: multiples of lcm(2,4) = 4; y-lane: multiples of 15.
    assert!(j.contains(&[4, 4], &[Value::str("x"), Value::str("x")]));
    assert!(!j.contains(&[2, 2], &[Value::str("x"), Value::str("x")]));
    assert!(j.contains(&[15, 15], &[Value::str("y"), Value::str("y")]));
    // Cross-data pairs are filtered by the data join.
    assert!(!j.contains(&[0, 0], &[Value::str("x"), Value::str("y")]));
}

#[test]
fn query_shifted_repeated_variable() {
    use itd_query::{parse, run, MemoryCatalog, QueryOpts};
    let ask = |cat: &MemoryCatalog, src: &str| {
        run(cat, &parse(src).unwrap(), QueryOpts::new())
            .unwrap()
            .truth()
            .unwrap()
    };
    let mut cat = MemoryCatalog::new();
    // p(a, b) holds for b = a + 2 on the even grid.
    cat.insert(
        "p",
        GenRelation::new(
            Schema::new(2, 0),
            vec![GenTuple::builder()
                .lrps(vec![lrp(0, 2), lrp(0, 2)])
                .atoms([Atom::diff_eq(1, 0, 2)])
                .build()
                .unwrap()],
        )
        .unwrap(),
    );
    // p(t, t + 2): holds for every even t.
    assert!(ask(&cat, "exists t. p(t, t + 2)"));
    assert!(ask(&cat, "forall t. p(t, t + 2) or p(t + 1, t + 3)"));
    // p(t + 2, t) (reversed shift): never.
    assert!(!ask(&cat, "exists t. p(t + 2, t)"));
    // p(t, t): never (length-2 gap is mandatory).
    assert!(!ask(&cat, "exists t. p(t, t)"));
}

#[test]
fn tl_satisfiable_entry_point() {
    use itd_query::MemoryCatalog;
    use itd_tl::{satisfiable, Tl};
    let mut cat = MemoryCatalog::new();
    cat.insert(
        "burst",
        GenRelation::new(
            Schema::new(1, 0),
            vec![GenTuple::builder()
                .lrps(vec![lrp(0, 5)])
                .atoms([Atom::ge(0, 10)])
                .build()
                .unwrap()],
        )
        .unwrap(),
    );
    assert!(satisfiable(&cat, &Tl::prop("burst")).unwrap());
    assert!(satisfiable(&cat, &Tl::historically(Tl::not(Tl::prop("burst")))).unwrap());
    // Unsatisfiable: burst ∧ ¬burst.
    assert!(!satisfiable(
        &cat,
        &Tl::and(Tl::prop("burst"), Tl::not(Tl::prop("burst")))
    )
    .unwrap());
    // F ¬burst is valid (non-multiples of 5 exist after any point).
    assert!(itd_tl::valid(&cat, &Tl::eventually(Tl::not(Tl::prop("burst")))).unwrap());
}

#[test]
fn allen_select_agrees_with_holds_for_all_relations() {
    use itd_interval::{allen_select, ALL_RELATIONS};
    let windows = GenRelation::new(
        Schema::new(2, 0),
        vec![GenTuple::builder()
            .lrps(vec![lrp(0, 7), lrp(3, 7)])
            .atoms([Atom::diff_eq(1, 0, 3)])
            .build()
            .unwrap()],
    )
    .unwrap();
    let (b1, b2) = (10, 12);
    for rel in ALL_RELATIONS {
        let selected = allen_select(&windows, rel, b1, b2).unwrap();
        for a1 in (-7..29).step_by(7) {
            let a2 = a1 + 3;
            assert_eq!(
                selected.contains(&[a1, a2], &[]),
                rel.holds(a1, a2, b1, b2),
                "{rel} at ({a1},{a2}) vs ({b1},{b2})"
            );
        }
    }
}

#[test]
fn serde_value_and_schema_roundtrip() {
    let v = vec![Value::Int(-3), Value::str("α-β")];
    let json = serde_json::to_string(&v).unwrap();
    let back: Vec<Value> = serde_json::from_str(&json).unwrap();
    assert_eq!(v, back);
    let s = Schema::new(3, 2);
    let json = serde_json::to_string(&s).unwrap();
    let back: Schema = serde_json::from_str(&json).unwrap();
    assert_eq!(s, back);
}

#[test]
fn serde_relation_with_unsat_constraints() {
    // The unsat flag must survive serialization (it is semantic state).
    let t = GenTuple::builder()
        .lrps(vec![lrp(0, 2)])
        .atoms([Atom::le(0, 0), Atom::ge(0, 2)])
        .build()
        .unwrap();
    assert!(t.is_trivially_empty());
    let rel = GenRelation::new(Schema::new(1, 0), vec![t]).unwrap();
    let json = serde_json::to_string(&rel).unwrap();
    let back: GenRelation = serde_json::from_str(&json).unwrap();
    assert!(back.row(0).unwrap().to_tuple().is_trivially_empty());
    assert!(back.denotes_empty().unwrap());
}

#[test]
fn lin_congruence_negative_modulus() {
    use itd_numth::solve_lin_congruence;
    // Modulus sign must not matter.
    let pos = solve_lin_congruence(3, 2, 5).unwrap().unwrap();
    let neg = solve_lin_congruence(3, 2, -5).unwrap().unwrap();
    assert_eq!(
        (pos.residue(), pos.modulus()),
        (neg.residue(), neg.modulus())
    );
}

#[test]
fn next_occurrence_on_interval_table() {
    // "When is the next train after minute t?" via the db layer.
    let mut db = itd_db::Database::new();
    db.create_table("train", &["dep", "arr"], &[]).unwrap();
    db.table_mut("train")
        .unwrap()
        .insert(
            itd_db::TupleSpec::new()
                .lrp("dep", 2, 60)
                .lrp("arr", 80, 60)
                .diff_eq("dep", "arr", -78),
        )
        .unwrap();
    let rel = db.table("train").unwrap().relation();
    assert_eq!(rel.next_occurrence(0, 0).unwrap(), Some(2));
    assert_eq!(rel.next_occurrence(0, 3).unwrap(), Some(62));
    assert_eq!(rel.next_occurrence(0, 62).unwrap(), Some(62));
    assert_eq!(rel.next_occurrence(0, 1_000_000).unwrap(), Some(1_000_022));
}

#[test]
fn compact_after_union_of_refinements() {
    // Algebra producing refined output, tidied by compaction: complement of
    // odd numbers = evens, recovered as one tuple.
    let odds = GenRelation::new(
        Schema::new(1, 0),
        vec![GenTuple::unconstrained(vec![lrp(1, 2)], vec![])],
    )
    .unwrap();
    let evens = odds.complement_temporal().unwrap().compact().unwrap();
    assert_eq!(evens.tuple_count(), 1);
    assert_eq!(evens.row(0).unwrap().lrps()[0], lrp(0, 2));
}

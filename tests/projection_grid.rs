//! Figure 2 / Figure 3 / Theorem 3.1: real-valued projection is unsound on
//! lrp grids, and normalization repairs it exactly.

use itd_core::{Atom, ConstraintSystem, GenRelation, GenTuple, Lrp, Schema};

fn lrp(c: i64, k: i64) -> Lrp {
    Lrp::new(c, k).unwrap()
}

/// The paper's Figure 2 tuple.
fn figure_2_tuple() -> GenTuple {
    GenTuple::builder()
        .lrps(vec![lrp(3, 4), lrp(1, 8)])
        .atoms([
            Atom::diff_ge(0, 1, 0).unwrap(),
            Atom::diff_le(0, 1, 5),
            Atom::ge(1, 2),
        ])
        .build()
        .unwrap()
}

/// The *naive* projection the paper warns against: eliminate X2 with
/// real-valued (closure-based) reasoning directly on the unnormalized
/// constraints, keeping the original lrp 4n+3.
fn naive_projection_contains(x1: i64) -> bool {
    let cons = ConstraintSystem::from_atoms(
        2,
        &[
            Atom::diff_ge(0, 1, 0).unwrap(),
            Atom::diff_le(0, 1, 5),
            Atom::ge(1, 2),
        ],
    )
    .unwrap();
    let projected = cons.eliminate(1); // sound over R (and over free Z) only
    lrp(3, 4).contains(x1) && projected.satisfied_by(&[x1])
}

#[test]
fn naive_projection_overapproximates() {
    // The paper lists 3, 7, 15, 23 as false witnesses of the real
    // projection. (3 is actually excluded even naively by X1 ≥ X2 ≥ 2;
    // the others are the instructive ones.)
    for bogus in [7, 15, 23] {
        assert!(
            naive_projection_contains(bogus),
            "naive method should (wrongly) admit {bogus}"
        );
    }
}

#[test]
fn exact_projection_rejects_false_witnesses() {
    let rel = GenRelation::new(Schema::new(2, 0), vec![figure_2_tuple()]).unwrap();
    let p = rel.project(&[0], &[]).unwrap();
    for bogus in [3, 7, 15, 23] {
        assert!(!p.contains(&[bogus], &[]), "{bogus} has no witness");
        // Confirm by brute force that x2 really cannot exist.
        let witness = (-100..200).any(|x2| rel.contains(&[bogus, x2], &[]));
        assert!(!witness);
    }
}

#[test]
fn exact_projection_matches_brute_force_everywhere() {
    let rel = GenRelation::new(Schema::new(2, 0), vec![figure_2_tuple()]).unwrap();
    let p = rel.project(&[0], &[]).unwrap();
    for x1 in -40..80 {
        let brute = (-100..200).any(|x2| rel.contains(&[x1, x2], &[]));
        assert_eq!(p.contains(&[x1], &[]), brute, "x1 = {x1}");
    }
}

#[test]
fn figure_3_grid_alignment() {
    // Normalization step 5 "shifts the constraint lines to go through the
    // repeating points": after normalization all bounds are grid-aligned.
    let norm = figure_2_tuple().normalize().unwrap();
    assert_eq!(norm.len(), 1);
    let t = &norm[0];
    assert!(t.is_normal_form().unwrap());
    // X2 ≥ 2 became X2 ≥ 9 (the smallest grid point satisfying both the
    // bound and the equality chain).
    assert_eq!(t.constraints().lower(1), Some(9));
    // And X1 is pinned to X2 + 2 exactly.
    assert_eq!(t.constraints().diff_bound(0, 1), itd_core::Bound::Finite(2));
}

#[test]
fn projection_of_multi_tuple_relations() {
    // Projection distributes over tuples; mixed periods force per-tuple
    // normalization fan-out.
    let rel = GenRelation::new(
        Schema::new(2, 0),
        vec![
            figure_2_tuple(),
            GenTuple::builder()
                .lrps(vec![lrp(0, 6), lrp(0, 2)])
                .atoms([Atom::diff_eq(0, 1, -2), Atom::le(0, 30)])
                .build()
                .unwrap(),
        ],
    )
    .unwrap();
    let p = rel.project(&[1], &[]).unwrap();
    for x2 in -30..60 {
        let brute = (-100..150).any(|x1| rel.contains(&[x1, x2], &[]));
        assert_eq!(p.contains(&[x2], &[]), brute, "x2 = {x2}");
    }
}

#[test]
fn projecting_out_everything_is_emptiness() {
    let rel = GenRelation::new(Schema::new(2, 0), vec![figure_2_tuple()]).unwrap();
    let zero = rel.project(&[], &[]).unwrap();
    assert!(!zero.denotes_empty().unwrap());
    // An unsatisfiable-on-grid tuple projects to the empty 0-ary relation.
    let ghost = GenRelation::new(
        Schema::new(2, 0),
        vec![GenTuple::builder()
            .lrps(vec![lrp(0, 2), lrp(0, 2)])
            .atoms([Atom::diff_eq(0, 1, 3)])
            .build()
            .unwrap()],
    )
    .unwrap();
    assert!(ghost.project(&[], &[]).unwrap().denotes_empty().unwrap());
}

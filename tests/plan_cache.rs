//! The prepared-plan cache: warm `run()` calls reuse the parsed,
//! sort-checked, optimized plan (observable through
//! [`QueryOutput::plan_cached`] and [`itd_query::plan_cache_stats`]),
//! and every catalog mutation rotates the plan token so stale plans can
//! never be replayed against a changed schema.
//!
//! The cache is process-global and these tests share one binary with
//! other integration tests, so assertions use per-query `plan_cached`
//! flags and monotone `>=` deltas rather than exact global counts.

use itd_db::{Database, QueryOpts, TupleSpec};
use itd_query::{Catalog, MemoryCatalog};
use itd_workload::{random_relation, RelationSpec};

fn sample_db(table: &str) -> Database {
    let mut db = Database::new();
    db.create_table(table, &["dep", "arr"], &[]).unwrap();
    db.table_mut(table)
        .unwrap()
        .insert(TupleSpec::new().lrp("dep", 2, 5).lrp("arr", 4, 5))
        .unwrap();
    db
}

#[test]
fn warm_database_run_reuses_the_prepared_plan() {
    let db = sample_db("pc_trains");
    let src = "exists d. exists a. pc_trains(d, a)";

    let before = itd_query::plan_cache_stats();
    let cold = db.run(src, QueryOpts::new()).unwrap();
    let warm = db.run(src, QueryOpts::new()).unwrap();
    let after = itd_query::plan_cache_stats();

    assert!(!cold.plan_cached, "first run must prepare the plan");
    assert!(warm.plan_cached, "second run must be served from the cache");
    assert_eq!(cold.result.relation, warm.result.relation);
    assert!(after.hits > before.hits);
    assert!(after.misses > before.misses);
    assert!(after.insertions > before.insertions);
}

/// The key includes every knob that changes preparation, so flipping
/// `optimize`/`compact`/`trace` is a miss, not a wrong plan.
#[test]
fn query_knobs_key_separate_plans() {
    let db = sample_db("pc_knobs");
    let src = "exists d. exists a. pc_knobs(d, a)";

    let plain = db.run(src, QueryOpts::new()).unwrap();
    assert!(!plain.plan_cached);
    let unopt = db.run(src, QueryOpts::new().optimize(false)).unwrap();
    assert!(!unopt.plan_cached, "optimize=false keys a distinct plan");
    let warm = db.run(src, QueryOpts::new().optimize(false)).unwrap();
    assert!(warm.plan_cached);
    assert_eq!(plain.result.relation, unopt.result.relation);
    assert_eq!(unopt.result.relation, warm.result.relation);
}

#[test]
fn catalog_mutation_invalidates_cached_plans() {
    let mut db = sample_db("pc_bump");
    let src = "exists d. exists a. pc_bump(d, a)";

    let cold = db.run(src, QueryOpts::new()).unwrap();
    assert!(!cold.plan_cached);
    assert!(db.run(src, QueryOpts::new()).unwrap().plan_cached);

    let token = db.plan_token();
    let before = itd_query::plan_cache_stats();
    db.table_mut("pc_bump")
        .unwrap()
        .insert(TupleSpec::new().lrp("dep", 0, 7).lrp("arr", 1, 7))
        .unwrap();
    let after = itd_query::plan_cache_stats();
    assert_ne!(
        db.plan_token(),
        token,
        "mutation must rotate the plan token"
    );
    assert!(
        after.invalidations > before.invalidations,
        "the cached plan under the old token must be dropped"
    );

    let recold = db.run(src, QueryOpts::new()).unwrap();
    assert!(!recold.plan_cached, "post-mutation run must re-prepare");
    assert!(db.run(src, QueryOpts::new()).unwrap().plan_cached);
}

#[test]
fn create_and_drop_table_rotate_the_token() {
    let mut db = sample_db("pc_ddl");
    let t0 = db.plan_token();
    db.create_table("pc_ddl_extra", &["t"], &[]).unwrap();
    let t1 = db.plan_token();
    assert_ne!(t0, t1);
    db.drop_table("pc_ddl_extra").unwrap();
    let t2 = db.plan_token();
    assert_ne!(t1, t2);
    // A failing DDL statement leaves the token alone.
    assert!(db.drop_table("pc_ddl_extra").is_err());
    assert_eq!(db.plan_token(), t2);
}

#[test]
fn memory_catalog_runs_warm_and_invalidates_on_insert() {
    let spec = RelationSpec {
        tuples: 4,
        temporal_arity: 2,
        period: 6,
        data_arity: 0,
        constraint_density: 0.5,
        bound_steps: 4,
    };
    let mut cat = MemoryCatalog::default();
    cat.insert("pc_mem", random_relation(&spec, 7));
    let token = cat.plan_token().expect("MemoryCatalog opts into the cache");
    let src = "exists x. exists y. pc_mem(x, y)";

    let cold = itd_query::run_src(&cat, src, itd_query::QueryOpts::new()).unwrap();
    let warm = itd_query::run_src(&cat, src, itd_query::QueryOpts::new()).unwrap();
    assert!(!cold.plan_cached);
    assert!(warm.plan_cached);
    assert_eq!(cold.result.relation, warm.result.relation);

    // `run` on a parsed formula keys by its rendered text: repeated
    // calls with the same formula warm each other.
    let f = itd_query::parse(src).unwrap();
    let by_formula = itd_query::run(&cat, &f, itd_query::QueryOpts::new()).unwrap();
    assert_eq!(by_formula.result.relation, cold.result.relation);
    assert!(
        itd_query::run(&cat, &f, itd_query::QueryOpts::new())
            .unwrap()
            .plan_cached
    );

    cat.insert("pc_mem", random_relation(&spec, 8));
    assert_ne!(cat.plan_token(), Some(token));
    let recold = itd_query::run_src(&cat, src, itd_query::QueryOpts::new()).unwrap();
    assert!(!recold.plan_cached, "insert must invalidate cached plans");
}

//! Property-based integration tests: the §3 algebra obeys set-theoretic
//! laws, checked against the brute-force materialization oracle on finite
//! windows with randomized, seeded workloads.

use itd_core::{GenRelation, Schema};
use itd_workload::{random_relation, RelationSpec};

const WINDOW: (i64, i64) = (-18, 18);

fn spec(tuples: usize, seed_arity: usize, period: i64) -> RelationSpec {
    RelationSpec {
        tuples,
        temporal_arity: seed_arity,
        period,
        data_arity: 0,
        constraint_density: 0.5,
        bound_steps: 3,
    }
}

fn mat(r: &GenRelation) -> std::collections::BTreeSet<(Vec<i64>, Vec<itd_core::Value>)> {
    r.materialize(WINDOW.0, WINDOW.1)
}

/// Checks one seed triple for all the binary-op laws.
fn check_seed(seed: u64) {
    let s = spec(5, 2, 4);
    let a = random_relation(&s, seed);
    let b = random_relation(&s, seed.wrapping_add(1000));
    let (ma, mb) = (mat(&a), mat(&b));

    // Union = set union.
    let u = a.union(&b).unwrap();
    let expect: std::collections::BTreeSet<_> = ma.union(&mb).cloned().collect();
    assert_eq!(mat(&u), expect, "union seed {seed}");

    // Intersection = set intersection.
    let i = a.intersect(&b).unwrap();
    let expect: std::collections::BTreeSet<_> = ma.intersection(&mb).cloned().collect();
    assert_eq!(mat(&i), expect, "intersection seed {seed}");

    // Commutativity of ∪ and ∩ (semantically).
    assert_eq!(
        mat(&b.union(&a).unwrap()),
        mat(&u),
        "∪ commutes seed {seed}"
    );
    assert_eq!(
        mat(&b.intersect(&a).unwrap()),
        mat(&i),
        "∩ commutes seed {seed}"
    );

    // Difference = set difference; A − B ⊆ A; (A − B) ∩ B = ∅.
    let d = a.difference(&b).unwrap();
    let expect: std::collections::BTreeSet<_> = ma.difference(&mb).cloned().collect();
    assert_eq!(mat(&d), expect, "difference seed {seed}");
    let dd = d.intersect(&b).unwrap();
    assert!(mat(&dd).is_empty(), "(A−B)∩B seed {seed}");

    // A = (A − B) ∪ (A ∩ B).
    let rebuilt = d.union(&i).unwrap();
    assert_eq!(mat(&rebuilt), ma, "partition law seed {seed}");

    // Idempotence: A ∩ A = A, A ∪ A = A, A − A = ∅.
    assert_eq!(mat(&a.intersect(&a).unwrap()), ma, "∩ idempotent {seed}");
    assert_eq!(mat(&a.union(&a).unwrap()), ma, "∪ idempotent {seed}");
    assert!(
        mat(&a.difference(&a).unwrap()).is_empty(),
        "A−A empty {seed}"
    );
}

#[test]
fn binary_op_laws_across_seeds() {
    for seed in 0..8 {
        check_seed(seed);
    }
}

#[test]
fn distributivity_on_window() {
    let s = spec(4, 2, 3);
    let a = random_relation(&s, 11);
    let b = random_relation(&s, 22);
    let c = random_relation(&s, 33);
    // A ∩ (B ∪ C) = (A ∩ B) ∪ (A ∩ C)
    let lhs = a.intersect(&b.union(&c).unwrap()).unwrap();
    let rhs = a
        .intersect(&b)
        .unwrap()
        .union(&a.intersect(&c).unwrap())
        .unwrap();
    assert_eq!(mat(&lhs), mat(&rhs));
    // A − (B ∪ C) = (A − B) − C
    let lhs = a.difference(&b.union(&c).unwrap()).unwrap();
    let rhs = a.difference(&b).unwrap().difference(&c).unwrap();
    assert_eq!(mat(&lhs), mat(&rhs));
}

#[test]
fn complement_laws() {
    for seed in 0..6 {
        let s = spec(3, 1, 4);
        let a = random_relation(&s, seed);
        let comp = a.complement_temporal().unwrap();
        let ma = mat(&a);
        let mc = mat(&comp);
        // Partition of the window.
        for x in WINDOW.0..=WINDOW.1 {
            let key = (vec![x], vec![]);
            assert!(
                ma.contains(&key) != mc.contains(&key),
                "seed {seed}, x = {x}"
            );
        }
        // Double complement (De Morgan's fixed point).
        let back = comp.complement_temporal().unwrap();
        assert_eq!(mat(&back), ma, "double complement seed {seed}");
        // De Morgan: ¬(A ∪ B) = ¬A ∩ ¬B.
        let b = random_relation(&s, seed + 77);
        let lhs = a.union(&b).unwrap().complement_temporal().unwrap();
        let rhs = comp.intersect(&b.complement_temporal().unwrap()).unwrap();
        assert_eq!(mat(&lhs), mat(&rhs), "De Morgan seed {seed}");
    }
}

#[test]
fn projection_commutes_with_union() {
    for seed in 0..6 {
        let s = spec(4, 3, 3);
        let a = random_relation(&s, seed);
        let b = random_relation(&s, seed + 500);
        let lhs = a.union(&b).unwrap().project(&[0, 2], &[]).unwrap();
        let rhs = a
            .project(&[0, 2], &[])
            .unwrap()
            .union(&b.project(&[0, 2], &[]).unwrap())
            .unwrap();
        assert_eq!(mat(&lhs), mat(&rhs), "seed {seed}");
    }
}

#[test]
fn projection_is_exact_existential() {
    // ∃-semantics: x ∈ π₀(A) iff some y pairs with it. The eliminated
    // column's witness window is padded beyond the comparison window by
    // the largest constants in play (period 4 × bound_steps 3 + slack).
    for seed in 0..6 {
        let s = spec(5, 2, 4);
        let a = random_relation(&s, seed);
        let p = a.project(&[0], &[]).unwrap();
        for x in -10..=10 {
            let witness = (-80..=80).any(|y| a.contains(&[x, y], &[]));
            assert_eq!(p.contains(&[x], &[]), witness, "seed {seed}, x = {x}");
        }
    }
}

#[test]
fn cross_product_and_join_semantics() {
    let s1 = spec(3, 1, 3);
    let s2 = spec(3, 1, 4);
    for seed in 0..5 {
        let a = random_relation(&s1, seed);
        let b = random_relation(&s2, seed + 99);
        let cp = a.cross_product(&b).unwrap();
        for x in -8..8 {
            for y in -8..8 {
                assert_eq!(
                    cp.contains(&[x, y], &[]),
                    a.contains(&[x], &[]) && b.contains(&[y], &[]),
                    "seed {seed} ({x},{y})"
                );
            }
        }
        // Join on the single column = intersection seen through 2 columns.
        let j = a.join_on(&b, &[(0, 0)], &[]).unwrap();
        for x in -8..8 {
            assert_eq!(
                j.contains(&[x, x], &[]),
                a.contains(&[x], &[]) && b.contains(&[x], &[]),
                "seed {seed} x = {x}"
            );
            assert!(!j.contains(&[x, x + 1], &[]), "off-diagonal seed {seed}");
        }
    }
}

#[test]
fn emptiness_agrees_with_materialization() {
    // Thm 3.5's exact emptiness versus a wide-window scan. The generator
    // only makes nonempty tuples, so build edge cases by algebra.
    let s = spec(4, 2, 3);
    let a = random_relation(&s, 5);
    assert!(!a.denotes_empty().unwrap());
    let d = a.difference(&a).unwrap();
    assert!(d.denotes_empty().unwrap());
    assert!(GenRelation::empty(Schema::new(2, 0))
        .denotes_empty()
        .unwrap());
    let i = a.intersect(&a.complement_temporal().unwrap()).unwrap();
    assert!(i.denotes_empty().unwrap());
}

#[test]
fn simplify_preserves_semantics() {
    for seed in 0..6 {
        let s = spec(6, 2, 4);
        let a = random_relation(&s, seed);
        // Duplicate the relation against itself to create redundancy.
        let doubled = a.union(&a).unwrap();
        let simplified = doubled.simplify().unwrap();
        assert!(simplified.tuple_count() <= doubled.tuple_count());
        assert_eq!(mat(&simplified), mat(&a), "seed {seed}");
    }
}

#[test]
fn normalize_preserves_semantics_with_mixed_periods() {
    use itd_core::{Atom, GenTuple, Lrp};
    let t1 = GenTuple::builder()
        .lrps(vec![Lrp::new(1, 3).unwrap(), Lrp::new(0, 2).unwrap()])
        .atoms([Atom::diff_le(0, 1, 2)])
        .build()
        .unwrap();
    let t2 = GenTuple::builder()
        .lrps(vec![Lrp::new(0, 4).unwrap(), Lrp::point(6)])
        .atoms([Atom::ge(0, -6)])
        .build()
        .unwrap();
    let r = GenRelation::new(Schema::new(2, 0), vec![t1, t2]).unwrap();
    let n = r.normalize().unwrap();
    for row in n.rows() {
        let t = row.to_tuple();
        assert!(t.is_normal_form().unwrap(), "{t}");
    }
    assert_eq!(mat(&n), mat(&r));
}

//! Signed deltas meet compaction: applying a randomized stream of
//! `push`/`retract` operations to a [`GenRelation`] and then compacting
//! denotes exactly the set obtained by rebuilding the relation from the
//! surviving rows — and the compacted representation is bit-identical
//! at 1, 2 and 8 threads.
//!
//! This is the storage-level contract the incremental view maintenance
//! in `itd-query::views` leans on: a retraction removes every
//! structurally equal row and nothing else, so "the relation after a
//! delta stream" and "the relation built from the rows that survived
//! it" are the same object up to representation.

use itd_core::{Atom, ExecContext, GenRelation, GenTuple, Lrp, Schema};
use proptest::prelude::*;

/// One signed storage operation. Retractions target (by index) an
/// earlier insertion, so streams exercise duplicate rows, repeated
/// retractions of the same shape, and retractions of absent rows.
#[derive(Debug, Clone)]
struct Op {
    retract: bool,
    offset: u8,
    period_sel: u8,
    bound: u8,
    pick: u8,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..2, 0u8..12, 0u8..4, 0u8..4, 0u8..=255).prop_map(
        |(retract, offset, period_sel, bound, pick)| Op {
            retract: retract == 1,
            offset,
            period_sel,
            bound,
            pick,
        },
    )
}

/// Builds the (deterministic) generalized tuple an op denotes: one lrp
/// plus, for some ops, a lower bound — so compaction has both mergeable
/// unconstrained rows and constrained rows to reason about.
fn tuple_of(op: &Op) -> GenTuple {
    const PERIODS: [i64; 4] = [2, 3, 4, 6];
    let period = PERIODS[op.period_sel as usize];
    let l = Lrp::new(i64::from(op.offset) % period, period).expect("valid lrp");
    if op.bound == 0 {
        GenTuple::unconstrained(vec![l], vec![])
    } else {
        GenTuple::builder()
            .lrps(vec![l])
            .atoms([Atom::ge(0, i64::from(op.bound) * 3)])
            .build()
            .expect("valid tuple")
    }
}

/// Applies the stream to a live relation (via `push`/`retract`) while
/// bookkeeping the multiset of surviving rows in plain test code.
fn apply_stream(ops: &[Op]) -> (GenRelation, Vec<GenTuple>) {
    let schema = Schema::new(1, 0);
    let mut rel = GenRelation::empty(schema);
    let mut survivors: Vec<GenTuple> = Vec::new();
    let mut inserted: Vec<GenTuple> = Vec::new();
    for op in ops {
        if op.retract {
            let target = if inserted.is_empty() {
                tuple_of(op) // retract a shape that may never have existed
            } else {
                inserted[op.pick as usize % inserted.len()].clone()
            };
            let removed = rel.retract(&target).expect("schema");
            let before = survivors.len();
            survivors.retain(|t| t != &target);
            assert_eq!(
                removed,
                before - survivors.len(),
                "retract must remove exactly the structurally equal rows"
            );
        } else {
            let t = tuple_of(op);
            rel.push(t.clone()).expect("schema");
            inserted.push(t.clone());
            survivors.push(t);
        }
    }
    (rel, survivors)
}

fn assert_same_set(a: &GenRelation, b: &GenRelation, ctx: &ExecContext) {
    let ab = a.difference_in(b, ctx).unwrap();
    let ba = b.difference_in(a, ctx).unwrap();
    assert!(
        ab.denotes_empty().unwrap() && ba.denotes_empty().unwrap(),
        "delta-stream result and rebuilt relation denote different sets\n\
         streamed: {a:?}\nrebuilt: {b:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The satellite property: stream-then-compact denotes the same set
    /// as rebuild-from-survivors (compacted or not), and compaction of
    /// the streamed relation is bit-identical at 1, 2 and 8 threads.
    #[test]
    fn compacted_delta_stream_equals_rebuild(
        ops in proptest::collection::vec(op_strategy(), 0..20),
    ) {
        let (rel, survivors) = apply_stream(&ops);
        let rebuilt = GenRelation::new(Schema::new(1, 0), survivors).expect("schema");

        // Raw row lists are identical already: retract removes rows
        // in place without reordering the remainder.
        prop_assert_eq!(rel.tuple_count(), rebuilt.tuple_count());

        let serial = ExecContext::serial();
        assert_same_set(&rel, &rebuilt, &serial);

        let compacted = rel.compact_in(&serial).unwrap();
        assert_same_set(&compacted, &rebuilt, &serial);
        prop_assert!(compacted.tuple_count() <= rel.tuple_count());

        for threads in [2usize, 8] {
            let ctx = ExecContext::with_threads(threads);
            let parallel = rel.compact_in(&ctx).unwrap();
            prop_assert_eq!(
                &compacted,
                &parallel,
                "compaction diverged at {} threads",
                threads
            );
        }
    }
}

/// Duplicate rows: retracting once removes *all* structural copies, and
/// compaction of the remainder still matches a clean rebuild.
#[test]
fn retract_removes_every_structural_copy() {
    let schema = Schema::new(1, 0);
    let even = GenTuple::unconstrained(vec![Lrp::new(0, 2).unwrap()], vec![]);
    let odd = GenTuple::unconstrained(vec![Lrp::new(1, 2).unwrap()], vec![]);
    let mut rel = GenRelation::empty(schema);
    rel.push(even.clone()).unwrap();
    rel.push(odd.clone()).unwrap();
    rel.push(even.clone()).unwrap();
    assert_eq!(rel.retract(&even).unwrap(), 2);
    assert_eq!(rel.retract(&even).unwrap(), 0, "nothing left to remove");
    let rebuilt = GenRelation::new(schema, vec![odd]).unwrap();
    let ctx = ExecContext::serial();
    assert_same_set(&rel.compact_in(&ctx).unwrap(), &rebuilt, &ctx);
}

//! End-to-end query tests over a database, including the paper's
//! Example 4.1 in both outcomes and a data-complexity sanity check
//! (Theorem 4.1: the same query over growing databases keeps working and
//! answers consistently).

use itd_db::{Database, DbError, QueryOpts, TupleSpec};

/// `db.run` + closed-formula truth, the post-`QueryOpts` idiom for what
/// used to be `db.ask`.
fn ask(db: &Database, src: &str) -> itd_db::Result<bool> {
    db.run(src, QueryOpts::new())?
        .truth()
        .map_err(DbError::Query)
}

/// Builds the Table 1 database, optionally with a long task2 interval that
/// flips Example 4.1's answer machinery into the non-vacuous case.
fn robot_db(with_long_task2: bool) -> Database {
    let mut db = Database::new();
    db.create_table("perform", &["from", "to"], &["robot", "task"])
        .unwrap();
    let t = db.table_mut("perform").unwrap();
    t.insert(
        TupleSpec::new()
            .lrp("from", 2, 2)
            .lrp("to", 4, 2)
            .diff_eq("from", "to", -2)
            .ge("from", -1)
            .datum("robot", "robot1")
            .datum("task", "task1"),
    )
    .unwrap();
    t.insert(
        TupleSpec::new()
            .lrp("from", 6, 10)
            .lrp("to", 7, 10)
            .diff_eq("from", "to", -1)
            .ge("from", 10)
            .datum("robot", "robot2")
            .datum("task", "task1"),
    )
    .unwrap();
    t.insert(
        TupleSpec::new()
            .lrp("from", 0, 10)
            .lrp("to", 3, 10)
            .diff_eq("from", "to", -3)
            .datum("robot", "robot2")
            .datum("task", "task2"),
    )
    .unwrap();
    if with_long_task2 {
        // robot3 does task2 during [100, 107] once.
        t.insert(
            TupleSpec::new()
                .at("from", 100)
                .at("to", 107)
                .datum("robot", "robot3")
                .datum("task", "task2"),
        )
        .unwrap();
    }
    db
}

const EXAMPLE_4_1: &str = r#"
    exists x. exists y. exists t1. exists t2. forall t3. forall t4. forall z.
        (perform(t1, t2; x, "task2")
           and t1 <= t3 and t3 <= t4 and t4 <= t2 and t1 + 5 <= t2)
        implies not perform(t3, t4; y, z)
"#;

#[test]
fn example_4_1_vacuous_case() {
    // All task2 intervals have length 3 < 5: antecedent vacuous → true.
    let db = robot_db(false);
    assert!(ask(&db, EXAMPLE_4_1).unwrap());
}

#[test]
fn example_4_1_witnessed_case() {
    // robot3's [100, 107] has length 7 ≥ 5. During it, robot1 works (e.g.
    // [102, 104]), robot2 works [106, 107] and [100, 103] — but does any
    // SINGLE y avoid the whole interval? robot3 itself only has the one
    // interval [100, 107], and perform(t3, t4; robot3, task2) with
    // 100 ≤ t3 ≤ t4 ≤ 107 matches (t3, t4) = (100, 107) itself → robot3
    // is not a valid y. robot1 and robot2 both work inside. So with
    // x = robot3 the property fails; with x = robot2 the antecedent is
    // vacuous (all its task2 intervals are short) → property still true!
    let db = robot_db(true);
    assert!(ask(&db, EXAMPLE_4_1).unwrap());

    // Force x to robot3: now no y works — every robot performs something
    // inside [100, 107]. (Active-domain subtlety: y must be constrained to
    // actually BE a robot; otherwise y = "task1" satisfies the property
    // vacuously, since no interval has "task1" in the robot column.)
    // A second subtlety, in the paper's own formula: t1, t2 are
    // existential and the interval atom sits inside the implication, so
    // choosing a non-interval (t1, t2) makes the antecedent false and the
    // whole formula true. The intended reading asserts the interval
    // outside the implication:
    let pinned = r#"
        exists y. (exists a. exists b. exists w. perform(a, b; y, w))
          and exists t1. exists t2.
            perform(t1, t2; "robot3", "task2") and t1 + 5 <= t2
            and forall t3. forall t4. forall z.
              (t1 <= t3 and t3 <= t4 and t4 <= t2)
              implies not perform(t3, t4; y, z)
    "#;
    assert!(!ask(&db, pinned).unwrap());
    // Sanity for the vacuity explanation: with y unconstrained the formula
    // is true via a non-robot binding.
    let unconstrained_y = r#"
        exists y. exists t1. exists t2. forall t3. forall t4. forall z.
            (perform(t1, t2; "robot3", "task2")
               and t1 <= t3 and t3 <= t4 and t4 <= t2 and t1 + 5 <= t2)
            implies not perform(t3, t4; y, z)
    "#;
    assert!(ask(&db, unconstrained_y).unwrap());
}

#[test]
fn open_query_interval_containment() {
    let db = robot_db(false);
    // Which robots have an interval containing time 22?
    let r = db
        .run(
            "perform(a, b; who, task) and a <= 22 and 22 <= b",
            QueryOpts::new(),
        )
        .unwrap()
        .result;
    assert_eq!(r.temporal_vars, vec!["a", "b"]);
    assert_eq!(r.data_vars, vec!["who", "task"]);
    let rows = r.relation.materialize(15, 25);
    let whos: std::collections::BTreeSet<String> =
        rows.iter().map(|(_, d)| d[0].to_string()).collect();
    assert!(whos.contains("robot1"));
    assert!(whos.contains("robot2"));
}

#[test]
fn data_complexity_consistency() {
    // Theorem 4.1 flavor: a FIXED query evaluated over databases of
    // growing size must answer consistently (the new tuples don't affect
    // this query's truth).
    let q = r#"exists t1. exists t2. perform(t1, t2; "robot1", "task1") and t1 >= 1000"#;
    for extra in [0usize, 4, 16, 48] {
        let mut db = robot_db(false);
        let t = db.table_mut("perform").unwrap();
        for i in 0..extra {
            // Irrelevant decoy tuples: other robots, far-away periods.
            t.insert(
                TupleSpec::new()
                    .lrp("from", (i % 7) as i64, 14)
                    .lrp("to", (i % 7) as i64 + 1, 14)
                    .diff_eq("from", "to", -1)
                    .datum("robot", format!("decoy{i}"))
                    .datum("task", "task9"),
            )
            .unwrap();
        }
        assert!(ask(&db, q).unwrap(), "extra = {extra}");
    }
}

#[test]
fn quantifier_alternation_over_infinite_domain() {
    let db = robot_db(false);
    // ∀t ∃a,b: robot2 task2 interval starting at or after t (recurrence).
    assert!(ask(
        &db,
        r#"forall t. exists a. exists b. perform(a, b; "robot2", "task2") and t <= a"#
    )
    .unwrap());
    // ∃t ∀a,b: a time after all robot1 activity — false (periodic forever).
    assert!(!ask(
        &db,
        r#"exists t. forall a. forall b. perform(a, b; "robot1", "task1") implies b <= t"#
    )
    .unwrap());
    // But robot2's task1 activity has a start: ∃t before all of it.
    assert!(ask(
        &db,
        r#"exists t. forall a. forall b. perform(a, b; "robot2", "task1") implies t <= a"#
    )
    .unwrap());
}

#[test]
fn sort_errors_surface() {
    let db = robot_db(false);
    assert!(ask(&db, "nosuchtable(1, 2; x, y)").is_err());
    assert!(ask(&db, r#"perform(1; "robot1")"#).is_err()); // arity
    assert!(ask(&db, r#"exists t. perform(t, t; t, "task1")"#).is_err()); // t at both sorts
}

#[test]
fn parse_error_offsets() {
    let db = robot_db(false);
    let err = ask(&db, "perform(1, 2; ").unwrap_err();
    let text = err.to_string();
    assert!(text.contains("parse error"), "{text}");
}

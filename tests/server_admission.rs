//! Cost-based admission control and queue backpressure: over-budget
//! queries are rejected *before* execution with the optimizer's estimate
//! in the typed error, a saturated service rejects instead of buffering
//! without bound, and the admission counters always reconcile —
//! `admitted + rejected_over_budget + rejected_queue_full == requests`.

use std::time::Duration;

use itd_db::{Database, TupleSpec};
use itd_server::{Client, Server, ServerConfig, ServerError};

/// Two tables whose join estimate scales as `n * n` data pairs.
fn join_db(n: i64) -> Database {
    let mut db = Database::new();
    db.create_table("adm_a", &["t"], &["x"]).unwrap();
    db.create_table("adm_b", &["t"], &["y"]).unwrap();
    db.create_table("adm_even", &["t"], &[]).unwrap();
    for i in 0..n {
        db.table_mut("adm_a")
            .unwrap()
            .insert(TupleSpec::new().lrp("t", i % 4, 4).datum("x", i))
            .unwrap();
        db.table_mut("adm_b")
            .unwrap()
            .insert(TupleSpec::new().lrp("t", i % 4, 4).datum("y", i))
            .unwrap();
    }
    db.table_mut("adm_even")
        .unwrap()
        .insert(TupleSpec::new().lrp("t", 0, 2))
        .unwrap();
    db
}

const JOIN: &str = "adm_a(t; x) and adm_b(t; y)";

#[test]
fn over_budget_queries_are_rejected_with_the_estimate() {
    let server = Server::start(
        join_db(24),
        ServerConfig {
            budget_pairs: 10.0,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // Cheap scan: within budget, admitted, runs normally.
    let cheap = client.query("adm_even(t)").unwrap();
    assert!(cheap.est_pairs <= 10.0, "scan estimate {}", cheap.est_pairs);

    // Quadratic join: rejected pre-execution, estimate travels back.
    let err = client.query(JOIN).unwrap_err();
    match err {
        ServerError::OverBudget { est_pairs, budget } => {
            assert_eq!(budget, 10.0);
            assert!(est_pairs > budget, "estimate {est_pairs} over {budget}");
        }
        other => panic!("expected OverBudget, got {other:?}"),
    }
    let msg = err.to_string();
    assert!(msg.contains("admission rejected"), "{msg}");
    assert!(msg.contains("exceeds budget"), "{msg}");

    let snap = server.registry().snapshot();
    assert_eq!(snap.server_requests, 2);
    assert_eq!(snap.server_admitted, 1);
    assert_eq!(snap.server_rejected_over_budget, 1);
    assert_eq!(snap.server_rejected_queue_full, 0);
    server.shutdown();
}

#[test]
fn infinite_budget_admits_everything() {
    let server = Server::start(join_db(24), ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let res = client.query(JOIN).unwrap();
    assert!(res.est_pairs > 10.0, "the estimate still travels back");
    let snap = server.registry().snapshot();
    assert_eq!(snap.server_admitted, 1);
    assert_eq!(snap.server_rejected_over_budget, 0);
    server.shutdown();
}

#[test]
fn zero_capacity_rejects_every_submission() {
    let server = Server::start(
        join_db(4),
        ServerConfig {
            queue_capacity: 0,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    for _ in 0..3 {
        match client.query("adm_even(t)").unwrap_err() {
            ServerError::QueueFull { capacity } => assert_eq!(capacity, 0),
            other => panic!("expected QueueFull, got {other:?}"),
        }
    }
    let snap = server.registry().snapshot();
    assert_eq!(snap.server_requests, 3);
    assert_eq!(snap.server_rejected_queue_full, 3);
    assert_eq!(snap.server_admitted, 0);
    server.shutdown();
}

/// One attempt at observing live backpressure: a single worker chews on
/// a heavy join while a second client submits past the outstanding
/// bound. Timing-dependent (the heavy query could finish first on a
/// fast machine), hence the retry loop in the test below.
fn backpressure_attempt(n: i64) -> bool {
    let server = Server::start(
        join_db(n),
        ServerConfig {
            workers: 1,
            queue_capacity: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();
    let slow = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client.query(JOIN)
    });
    std::thread::sleep(Duration::from_millis(30));
    let mut probe = Client::connect(addr).unwrap();
    let mut saw_reject = false;
    for _ in 0..20 {
        match probe.query("adm_even(t)") {
            Err(ServerError::QueueFull { capacity }) => {
                assert_eq!(capacity, 1);
                saw_reject = true;
                break;
            }
            Ok(_) => std::thread::sleep(Duration::from_millis(2)),
            Err(other) => panic!("unexpected error while probing: {other:?}"),
        }
    }
    slow.join().unwrap().unwrap();

    let snap = server.registry().snapshot();
    assert_eq!(
        snap.server_admitted + snap.server_rejected_over_budget + snap.server_rejected_queue_full,
        snap.server_requests,
        "admission accounting must reconcile even under backpressure"
    );
    server.shutdown();
    saw_reject
}

#[test]
fn saturated_pool_rejects_instead_of_buffering() {
    // Escalate the join size until the worker is demonstrably busy long
    // enough for the probe to bounce off the outstanding bound.
    for n in [192, 384, 768] {
        if backpressure_attempt(n) {
            return;
        }
    }
    panic!("never observed QueueFull with a saturated single-worker pool");
}

#[test]
fn admission_counters_reconcile_under_concurrency() {
    let server = Server::start(
        join_db(24),
        ServerConfig {
            budget_pairs: 10.0,
            workers: 4,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();
    let threads: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for round in 0..10 {
                    if (i + round) % 2 == 0 {
                        client.query("adm_even(t)").unwrap();
                    } else {
                        let err = client.query(JOIN).unwrap_err();
                        assert!(matches!(err, ServerError::OverBudget { .. }));
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let snap = server.registry().snapshot();
    assert_eq!(snap.server_requests, 40);
    assert_eq!(snap.server_admitted, 20);
    assert_eq!(snap.server_rejected_over_budget, 20);
    assert_eq!(snap.server_rejected_queue_full, 0);
    server.shutdown();
}

//! Deadline-aware execution: expired deadlines surface as the typed
//! timeout error, cancellation never poisons the plan cache, the outcome
//! memos, or the metrics registry, the next identical query runs clean,
//! and the service's timeout accounting is invariant in the worker-pool
//! size.

use std::time::{Duration, Instant};

use itd_db::{CancelToken, Database, DbError, QueryOpts, TupleSpec};
use itd_query::QueryError;
use itd_server::{Client, Server, ServerConfig, ServerError};

/// A join heavy enough that cancellation has something to interrupt.
fn heavy_db(n: i64) -> Database {
    let mut db = Database::new();
    db.create_table("cx_a", &["t"], &["x"]).unwrap();
    db.create_table("cx_b", &["t"], &["y"]).unwrap();
    for i in 0..n {
        db.table_mut("cx_a")
            .unwrap()
            .insert(TupleSpec::new().lrp("t", i % 4, 4).datum("x", i))
            .unwrap();
        db.table_mut("cx_b")
            .unwrap()
            .insert(TupleSpec::new().lrp("t", i % 4, 4).datum("y", i))
            .unwrap();
    }
    db
}

const HEAVY: &str = "cx_a(t; x) and cx_b(t; y)";

fn is_cancelled(err: &DbError) -> bool {
    matches!(
        err,
        DbError::Query(QueryError::Core(itd_core::CoreError::Cancelled))
    )
}

#[test]
fn pre_cancelled_context_fails_identically_at_any_thread_count() {
    let db = heavy_db(24);
    for threads in [1usize, 2, 8] {
        let token = CancelToken::new();
        token.cancel();
        let ctx = itd_core::ExecContext::with_threads(threads).cancellable(token);
        let err = db.run(HEAVY, QueryOpts::new().ctx(&ctx)).unwrap_err();
        assert!(is_cancelled(&err), "threads={threads}: {err:?}");
        let stats = ctx.stats();
        assert_eq!(
            stats.total_pairs(),
            0,
            "threads={threads}: no operator work before the first check"
        );
    }
}

#[test]
fn cancellation_poisons_no_cache_and_publishes_no_metrics() {
    let db = heavy_db(24);
    let clean = db.run(HEAVY, QueryOpts::new()).unwrap();
    let expected = clean.result.relation.to_string();

    let registry_before = db.metrics_handle().snapshot();
    let plan_before = itd_query::plan_cache_stats();

    // Expired-deadline run: fails with the typed error, publishes
    // nothing to the registry (metrics observe completed queries only).
    let token = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
    let ctx = itd_core::ExecContext::with_threads(1).cancellable(token);
    let err = db.run(HEAVY, QueryOpts::new().ctx(&ctx)).unwrap_err();
    assert!(is_cancelled(&err), "{err:?}");

    let registry_after = db.metrics_handle().snapshot();
    assert_eq!(
        registry_after.queries, registry_before.queries,
        "a cancelled query must not be observed as completed"
    );
    let plan_after = itd_query::plan_cache_stats();
    assert_eq!(
        plan_after.insertions, plan_before.insertions,
        "the cancelled run reused the already-cached plan"
    );

    // The next identical query runs clean off the warm plan.
    let rerun = db.run(HEAVY, QueryOpts::new()).unwrap();
    assert!(rerun.plan_cached, "plan cache survived the cancellation");
    assert_eq!(rerun.result.relation.to_string(), expected, "bit-identical");
}

#[test]
fn mid_run_cancellation_is_interrupted_and_recoverable() {
    // Escalate until the deadline demonstrably interrupts the join
    // mid-run (a fixed size would be timing-fragile on fast machines).
    for n in [64, 128, 256, 512] {
        let db = heavy_db(n);
        let expected = db
            .run(HEAVY, QueryOpts::new())
            .unwrap()
            .result
            .relation
            .to_string();

        let token = CancelToken::after(Duration::from_millis(2));
        let ctx = itd_core::ExecContext::with_threads(1).cancellable(token);
        match db.run(HEAVY, QueryOpts::new().ctx(&ctx)) {
            Err(err) => {
                assert!(is_cancelled(&err), "{err:?}");
                // Partial work must not have corrupted anything: the
                // identical query still produces the identical answer.
                let rerun = db.run(HEAVY, QueryOpts::new()).unwrap();
                assert!(rerun.plan_cached);
                assert_eq!(rerun.result.relation.to_string(), expected);
                return;
            }
            Ok(out) => {
                // Finished inside 2ms: too small to interrupt. Verify
                // correctness anyway, then escalate.
                assert_eq!(out.result.relation.to_string(), expected);
            }
        }
    }
    panic!("even the largest join finished within the 2ms deadline");
}

#[test]
fn expired_request_deadline_times_out_and_next_query_is_clean() {
    let server = Server::start(heavy_db(24), ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let err = client.query_opts(HEAVY, Some(0), false).unwrap_err();
    assert!(matches!(err, ServerError::DeadlineExceeded), "{err:?}");
    assert!(err.to_string().contains("deadline"), "{err}");

    // Same query, no deadline: clean run off the cached plan, and the
    // rendering matches a direct run on the server's snapshot.
    let res = client.query(HEAVY).unwrap();
    assert!(res.cached, "the timeout did not poison the plan cache");
    let direct = server.snapshot().run(HEAVY, QueryOpts::new()).unwrap();
    assert_eq!(res.result, direct.result.relation.to_string());

    let snap = server.registry().snapshot();
    assert_eq!(snap.server_timeouts, 1);
    assert_eq!(snap.server_requests, 2);
    assert_eq!(
        snap.server_admitted, 2,
        "deadline rejections happen after admission, not instead of it"
    );
    server.shutdown();
}

#[test]
fn default_deadline_applies_when_requests_carry_none() {
    let server = Server::start(
        heavy_db(24),
        ServerConfig {
            default_deadline: Some(Duration::ZERO),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let err = client.query(HEAVY).unwrap_err();
    assert!(matches!(err, ServerError::DeadlineExceeded), "{err:?}");
    // A generous per-request deadline overrides the server default.
    let res = client.query_opts(HEAVY, Some(60_000), false).unwrap();
    assert!(!res.result.is_empty());
    server.shutdown();
}

#[test]
fn timeout_accounting_is_worker_invariant() {
    let mut snapshots = Vec::new();
    for workers in [1usize, 2, 8] {
        let server = Server::start(
            heavy_db(24),
            ServerConfig {
                workers,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        let mut renderings = Vec::new();
        for round in 0..3 {
            let err = client.query_opts(HEAVY, Some(0), false).unwrap_err();
            assert!(matches!(err, ServerError::DeadlineExceeded), "{err:?}");
            let res = client.query(HEAVY).unwrap();
            renderings.push((round, res.result));
        }
        let snap = server.registry().snapshot();
        snapshots.push((
            workers,
            snap.server_requests,
            snap.server_admitted,
            snap.server_timeouts,
            snap.server_rejected_over_budget,
            snap.server_rejected_queue_full,
            renderings,
        ));
        server.shutdown();
    }
    let (_, requests, admitted, timeouts, over, full, renderings) = snapshots[0].clone();
    assert_eq!((requests, admitted, timeouts, over, full), (6, 6, 3, 0, 0));
    for (workers, r, a, t, o, f, rend) in &snapshots[1..] {
        assert_eq!(
            (r, a, t, o, f),
            (&requests, &admitted, &timeouts, &over, &full),
            "workers={workers}: counters must be pool-size invariant"
        );
        assert_eq!(rend, &renderings, "workers={workers}: identical answers");
    }
}

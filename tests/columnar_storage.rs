//! The columnar interned store behind `GenRelation`: every construction
//! path must produce the same relation, every operator must stay
//! bit-identical (results *and* counters) across storage paths, thread
//! counts, and warm persistent indexes, snapshots must alias safely, and
//! the global interner invariants must hold.

use itd_core::{storage_stats, Atom, ExecContext, GenRelation, GenTuple, Lrp, Schema, Value};
use itd_workload::{random_relation, RelationSpec};
use proptest::prelude::*;

fn lrp(c: i64, k: i64) -> Lrp {
    Lrp::new(c, k).unwrap()
}

fn spec(tuples: usize, period: i64, data_arity: usize) -> RelationSpec {
    RelationSpec {
        tuples,
        temporal_arity: 2,
        period,
        data_arity,
        constraint_density: 0.5,
        bound_steps: 4,
    }
}

/// Rebuilds `rel` through every construction path: bulk `new`, the
/// builder's `push_row` append path, and incremental `push` onto an
/// empty relation (in-place), plus `push` onto a shared store (the
/// copy-on-write path).
fn rebuilt_paths(rel: &GenRelation) -> Vec<GenRelation> {
    let tuples: Vec<GenTuple> = rel.rows().map(|r| r.to_tuple()).collect();
    let bulk = GenRelation::new(rel.schema(), tuples.clone()).unwrap();
    let built = tuples
        .iter()
        .cloned()
        .fold(GenRelation::builder(rel.schema()), |b, t| b.push_row(t))
        .build()
        .unwrap();
    let mut pushed = GenRelation::empty(rel.schema());
    for t in &tuples {
        pushed.push(t.clone()).unwrap();
    }
    let mut cow = GenRelation::empty(rel.schema());
    let mut snapshots = Vec::new();
    for t in &tuples {
        snapshots.push(cow.clone()); // force the copy-on-write path
        cow.push(t.clone()).unwrap();
    }
    vec![bulk, built, pushed, cow]
}

/// Every counter of every op except wall time (which is never
/// deterministic across runs).
type Counters = Vec<[u64; 12]>;

/// Runs `op` under a fresh context and returns the result with the full
/// counter snapshot (timing excluded).
fn run_counted<F>(threads: usize, op: F) -> (GenRelation, Counters)
where
    F: FnOnce(&ExecContext) -> GenRelation,
{
    let ctx = ExecContext::with_threads(threads);
    let out = op(&ctx);
    let counters = ctx
        .stats()
        .iter()
        .map(|(_, op)| {
            [
                op.calls,
                op.tuples_in,
                op.tuples_out,
                op.pairs,
                op.empties_pruned,
                op.index_probes,
                op.index_pruned,
                op.atoms_simplified,
                op.tuples_subsumed,
                op.coalesce_merges,
                op.intern_hits,
                op.max_period,
            ]
        })
        .collect();
    (out, counters)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every construction path — bulk, builder, in-place append,
    /// copy-on-write append — yields the same relation, structurally and
    /// semantically.
    #[test]
    fn construction_paths_agree(seed in 0u64..500, n in 1usize..10) {
        let rel = random_relation(&spec(n, 6, 1), seed);
        for (i, other) in rebuilt_paths(&rel).into_iter().enumerate() {
            prop_assert_eq!(&other, &rel, "construction path {} diverged", i);
            prop_assert_eq!(
                other.materialize(-8, 8),
                rel.materialize(-8, 8),
                "construction path {} changed the denotation", i
            );
        }
    }

    /// Interned ids are canonical and deterministic: building the same
    /// rows twice produces identical part-id and value-id columns.
    #[test]
    fn interned_ids_are_deterministic(seed in 0u64..500, n in 1usize..10) {
        let a = random_relation(&spec(n, 6, 2), seed);
        let tuples: Vec<GenTuple> = a.rows().map(|r| r.to_tuple()).collect();
        let b = GenRelation::new(a.schema(), tuples).unwrap();
        prop_assert_eq!(a.columns().part_ids(), b.columns().part_ids());
        for c in 0..a.schema().data() {
            prop_assert_eq!(a.columns().data(c).ids(), b.columns().data(c).ids());
        }
    }

    /// Every operator is bit-identical — same output rows in the same
    /// order *and* the same exact counters — across storage construction
    /// paths and across 1/2/8 threads.
    #[test]
    fn ops_bit_identical_across_paths_and_threads(seed in 0u64..200, n in 2usize..9) {
        let a = random_relation(&spec(n, 6, 0), seed);
        let b = random_relation(&spec(n, 4, 0), seed.wrapping_add(1));
        let a_paths = rebuilt_paths(&a);
        let b_paths = rebuilt_paths(&b);
        type Op = fn(&GenRelation, &GenRelation, &ExecContext) -> GenRelation;
        let ops: Vec<(&str, Op)> = vec![
            ("union", |x, y, ctx| x.union_in(y, ctx).unwrap()),
            ("intersect", |x, y, ctx| x.intersect_in(y, ctx).unwrap()),
            ("difference", |x, y, ctx| x.difference_in(y, ctx).unwrap()),
            ("cross", |x, y, ctx| x.cross_product_in(y, ctx).unwrap()),
            ("join", |x, y, ctx| x.join_on_in(y, &[(0, 0)], &[], ctx).unwrap()),
            ("project", |x, _, ctx| x.project_in(&[1, 0], &[], ctx).unwrap()),
            ("select", |x, _, ctx| {
                x.select_temporal_in(Atom::ge(0, 2), ctx).unwrap()
            }),
            ("shift", |x, _, ctx| x.shift_temporal_in(0, 3, ctx).unwrap()),
            ("normalize", |x, _, ctx| x.normalize_in(ctx).unwrap()),
            ("compact", |x, _, ctx| x.compact_in(ctx).unwrap()),
        ];
        for (name, op) in ops {
            let (base_out, base_stats) = run_counted(1, |ctx| op(&a, &b, ctx));
            for threads in [1usize, 2, 8] {
                for (pi, (ap, bp)) in a_paths.iter().zip(&b_paths).enumerate() {
                    let (out, stats) = run_counted(threads, |ctx| op(ap, bp, ctx));
                    prop_assert_eq!(
                        &out, &base_out,
                        "{} diverged on path {} at {} threads", name, pi, threads
                    );
                    prop_assert_eq!(
                        &stats, &base_stats,
                        "{} counters diverged on path {} at {} threads", name, pi, threads
                    );
                }
            }
        }
    }

    /// A warm persistent index (reused from the store's cache) must not
    /// change results or counters relative to the first, cold call.
    #[test]
    fn warm_persistent_index_keeps_counters_identical(seed in 0u64..200) {
        let a = random_relation(&spec(8, 12, 0), seed);
        let b = random_relation(&spec(8, 12, 0), seed.wrapping_add(7));
        let (cold_out, cold_stats) = run_counted(1, |ctx| a.intersect_in(&b, ctx).unwrap());
        for _ in 0..3 {
            let (warm_out, warm_stats) = run_counted(1, |ctx| a.intersect_in(&b, ctx).unwrap());
            prop_assert_eq!(&warm_out, &cold_out);
            prop_assert_eq!(&warm_stats, &cold_stats);
        }
    }
}

/// `clone` is a snapshot: appending to the original afterwards must not be
/// visible through the clone (copy-on-write), and the clone stays equal to
/// a fresh copy of the original rows.
#[test]
fn arc_snapshot_aliasing() {
    let schema = Schema::new(1, 1);
    let row = |c: i64, v: &str| {
        GenTuple::builder()
            .lrp(lrp(c, 5))
            .datum(Value::from(v))
            .build()
            .unwrap()
    };
    let mut rel = GenRelation::new(schema, vec![row(0, "a"), row(1, "b")]).unwrap();
    let snapshot = rel.clone();
    let frozen = GenRelation::new(schema, vec![row(0, "a"), row(1, "b")]).unwrap();

    rel.push(row(2, "c")).unwrap();
    rel.push(row(3, "d")).unwrap();

    assert_eq!(snapshot.tuple_count(), 2, "snapshot must not see appends");
    assert_eq!(snapshot, frozen, "snapshot must keep the original rows");
    assert_eq!(rel.tuple_count(), 4);
    assert!(rel.contains(&[7], &[Value::from("c")]));
    assert!(!snapshot.contains(&[7], &[Value::from("c")]));
    assert_eq!(
        snapshot.materialize(-6, 6),
        frozen.materialize(-6, 6),
        "snapshot denotation unchanged"
    );
}

/// In-place append: with a sole owner, `push` keeps the same store
/// allocation (the `Arc` is not replaced wholesale each time), and the
/// row becomes visible through the view API.
#[test]
fn push_appends_through_view_api() {
    let mut rel = GenRelation::empty(Schema::new(2, 0));
    for i in 0..5 {
        rel.push(GenTuple::unconstrained(
            vec![lrp(i, 7), lrp(i + 1, 7)],
            vec![],
        ))
        .unwrap();
    }
    assert_eq!(rel.tuple_count(), 5);
    let cols = rel.columns();
    assert_eq!(cols.temporal(0).offsets(), &[0, 1, 2, 3, 4]);
    assert_eq!(cols.temporal(1).offsets(), &[1, 2, 3, 4, 5]);
    assert_eq!(cols.temporal(0).periods(), &[7; 5]);
    let last = rel.row(4).unwrap();
    assert_eq!(last.lrps(), &[lrp(4, 7), lrp(5, 7)]);
    assert!(rel.rows().all(|r| r.constraints().is_unconstrained()));
}

/// The global interner bookkeeping: `hits == lookups − distinct` for both
/// the value arena and the temporal-part arena, at any point in time, and
/// re-interning existing keys only produces hits.
#[test]
fn global_interner_invariant_holds() {
    // Do some interning work first so the arenas are non-trivial.
    let rel = random_relation(&spec(6, 6, 2), 42);
    let again = GenRelation::new(rel.schema(), rel.rows().map(|r| r.to_tuple()).collect()).unwrap();
    assert_eq!(rel, again);

    let stats = storage_stats();
    assert!(stats.value_lookups >= stats.value_hits);
    assert_eq!(
        stats.value_lookups - stats.value_hits,
        stats.value_distinct,
        "value arena: every miss creates exactly one distinct entry\n{stats}"
    );
    assert!(stats.part_lookups >= stats.part_hits);
    assert_eq!(
        stats.part_lookups - stats.part_hits,
        stats.part_distinct,
        "part arena: every miss creates exactly one distinct entry\n{stats}"
    );
}

/// Re-interning a relation's rows is pure hits: the distinct counts do
/// not move, while lookups and hits advance in lockstep.
#[test]
fn reinterning_is_pure_hits() {
    let rel = random_relation(&spec(5, 8, 1), 7);
    let tuples: Vec<GenTuple> = rel.rows().map(|r| r.to_tuple()).collect();
    // Warm: every part and value is already in the global arenas. Other
    // tests run concurrently, so only assert deltas on *our* keys via the
    // invariant, not absolute counts: distinct must not grow from re-use.
    let before = storage_stats();
    let rebuilt = GenRelation::new(rel.schema(), tuples).unwrap();
    let after = storage_stats();
    assert_eq!(rebuilt, rel);
    assert!(
        after.value_distinct >= before.value_distinct
            && after.part_distinct >= before.part_distinct,
        "distinct counts are monotone"
    );
    assert!(
        after.value_hits > before.value_hits || rel.schema().data() == 0,
        "re-interning known values must register hits"
    );
    assert!(
        after.part_hits > before.part_hits,
        "re-interning known parts must register hits"
    );
}

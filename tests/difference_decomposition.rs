//! Figure 1 / §3.3: tuple and relation difference, with seeded randomized
//! cross-checks of the decomposition `t1 − t2 = (t1 − t2*) ∪ (t̄2 ∩ t1)`.

use itd_core::{GenRelation, Value};
use itd_workload::{random_relation, RelationSpec};

const WINDOW: (i64, i64) = (-15, 15);

fn mat(r: &GenRelation) -> std::collections::BTreeSet<(Vec<i64>, Vec<Value>)> {
    r.materialize(WINDOW.0, WINDOW.1)
}

fn spec(arity: usize, period: i64, density: f64) -> RelationSpec {
    RelationSpec {
        tuples: 1,
        temporal_arity: arity,
        period,
        data_arity: 0,
        constraint_density: density,
        bound_steps: 3,
    }
}

/// The Figure 1 identity at the tuple level: difference of singleton
/// relations equals window set-difference, across many seeded shapes.
#[test]
fn single_tuple_difference_matches_sets() {
    for seed in 0..30 {
        // Vary periods so the lcm/residue machinery is exercised.
        let p1 = 2 + (seed % 4);
        let p2 = 2 + ((seed / 4) % 5);
        let a = random_relation(&spec(2, p1 as i64, 0.5), seed);
        let b = random_relation(&spec(2, p2 as i64, 0.5), seed + 1234);
        let d = a.difference(&b).unwrap();
        let expect: std::collections::BTreeSet<_> = mat(&a).difference(&mat(&b)).cloned().collect();
        assert_eq!(mat(&d), expect, "seed {seed} (p1={p1}, p2={p2})");
    }
}

/// Both parts of the decomposition are needed: build a case where the
/// subtrahend's free extension covers the minuend but its constraints do
/// not.
#[test]
fn constrained_subtrahend_exercises_both_parts() {
    use itd_core::{Atom, GenTuple, Lrp, Schema};
    let lrp = |c, k| Lrp::new(c, k).unwrap();
    // t1: all even pairs with X1 ≤ X2.
    let t1 = GenTuple::builder()
        .lrps(vec![lrp(0, 2), lrp(0, 2)])
        .atoms([Atom::diff_le(0, 1, 0)])
        .build()
        .unwrap();
    // t2: the sub-grid multiples of 4 on X1 (free-extension part) AND only
    // where X2 ≥ 4 (constraint part).
    let t2 = GenTuple::builder()
        .lrps(vec![lrp(0, 4), lrp(0, 2)])
        .atoms([Atom::ge(1, 4)])
        .build()
        .unwrap();
    let a = GenRelation::new(Schema::new(2, 0), vec![t1]).unwrap();
    let b = GenRelation::new(Schema::new(2, 0), vec![t2]).unwrap();
    let d = a.difference(&b).unwrap();
    // Survivors: X1 ≡ 2 (mod 4) — removed residue class complement — and
    // multiples of 4 with X2 < 4 — the negated-constraint part.
    assert!(d.contains(&[2, 2], &[])); // removed-class complement
    assert!(d.contains(&[-4, 2], &[])); // ≡ 0 (mod 4) but X2 = 2 < 4: part 2
    assert!(d.contains(&[0, 2], &[]));
    assert!(!d.contains(&[0, 4], &[])); // fully inside t2
    assert!(!d.contains(&[3, 5], &[])); // never in t1 (odd)
    let expect: std::collections::BTreeSet<_> = mat(&a).difference(&mat(&b)).cloned().collect();
    assert_eq!(mat(&d), expect);
}

/// Relation-level fold: subtracting several relations one tuple at a time
/// (§3.3.2) matches set semantics, and intermediate pruning keeps sizes
/// sane.
#[test]
fn multi_tuple_fold() {
    for seed in 0..10 {
        let a = random_relation(
            &RelationSpec {
                tuples: 4,
                ..spec(2, 4, 0.4)
            },
            seed,
        );
        let b = random_relation(
            &RelationSpec {
                tuples: 3,
                ..spec(2, 6, 0.4)
            },
            seed + 50,
        );
        let d = a.difference(&b).unwrap();
        let expect: std::collections::BTreeSet<_> = mat(&a).difference(&mat(&b)).cloned().collect();
        assert_eq!(mat(&d), expect, "seed {seed}");
        // A − B − B = A − B.
        let d2 = d.difference(&b).unwrap();
        assert_eq!(mat(&d2), mat(&d), "seed {seed}");
    }
}

/// Subtracting single points (Punctured case) composes with everything
/// else.
#[test]
fn point_subtraction_chains() {
    use itd_core::{GenTuple, Lrp, Schema};
    let evens = GenRelation::new(
        Schema::new(1, 0),
        vec![GenTuple::unconstrained(
            vec![Lrp::new(0, 2).unwrap()],
            vec![],
        )],
    )
    .unwrap();
    let mut holes = GenRelation::empty(Schema::new(1, 0));
    for p in [0, 4, 10] {
        holes
            .push(GenTuple::unconstrained(vec![Lrp::point(p)], vec![]))
            .unwrap();
    }
    let d = evens.difference(&holes).unwrap();
    for x in -12..14 {
        let expect = x % 2 == 0 && ![0, 4, 10].contains(&x);
        assert_eq!(d.contains(&[x], &[]), expect, "x = {x}");
    }
    // Punch the same holes again: no change.
    let d2 = d.difference(&holes).unwrap();
    assert_eq!(mat(&d2), mat(&d));
}

/// Difference with data attributes: tuples with different data are
/// untouched.
#[test]
fn data_attributes_partition_difference() {
    use itd_core::{GenTuple, Lrp, Schema};
    let mk =
        |who: &str| GenTuple::unconstrained(vec![Lrp::new(0, 2).unwrap()], vec![Value::str(who)]);
    let a = GenRelation::new(Schema::new(1, 1), vec![mk("x"), mk("y")]).unwrap();
    let b = GenRelation::new(Schema::new(1, 1), vec![mk("x")]).unwrap();
    let d = a.difference(&b).unwrap();
    assert!(!d.contains(&[2], &[Value::str("x")]));
    assert!(d.contains(&[2], &[Value::str("y")]));
}

//! Incrementally maintained views behind the `Txn`/`apply` mutation API:
//! randomized signed mutation streams keep every registered view
//! semantically identical to recomputing its query from scratch, with a
//! **bit-identical** maintained representation and identical maintenance
//! counters at 1, 2 and 8 threads; plus the `Txn` atomicity contract,
//! the view registry lifecycle, the stale-catalog fallback, and the
//! `itd_view_*` metrics counters.

use itd_core::{ExecContext, GenRelation, Value};
use itd_db::{Database, QueryOpts, TupleSpec, Txn, ViewId};
use proptest::prelude::*;

/// The views every scenario registers: a join, a negation, and a
/// projection — together they exercise the Scan, Conjoin, Negate and
/// ProjectOut delta rules end to end.
const VIEWS: &[(&str, &str)] = &[
    ("joined", "vs(t; k) and vr(t)"),
    ("lone", "vs(t; k) and not vr(t)"),
    ("anytime", "exists k. vs(t; k)"),
];

fn fresh_db() -> (Database, Vec<ViewId>) {
    let mut db = Database::new();
    db.create_table("vs", &["t"], &["k"]).unwrap();
    db.create_table("vr", &["t"], &[]).unwrap();
    // Seed rows so registration starts from non-empty caches.
    db.table_mut("vs")
        .unwrap()
        .insert(TupleSpec::new().lrp("t", 0, 3).datum("k", 1))
        .unwrap();
    db.table_mut("vr")
        .unwrap()
        .insert(TupleSpec::new().lrp("t", 0, 6))
        .unwrap();
    let ids = VIEWS
        .iter()
        .map(|(name, src)| db.register_view(name, *src).unwrap())
        .collect();
    (db, ids)
}

/// One randomized signed mutation. Retractions pick (by index) an
/// earlier insertion into the same table, so streams mix hits, misses
/// and duplicate-row round-trips.
#[derive(Debug, Clone)]
struct Op {
    retract: bool,
    table: bool, // false = vs, true = vr
    offset: u8,
    period_sel: u8,
    datum: u8,
    pick: u8,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..2, 0u8..2, 0u8..12, 0u8..5, 0u8..3, 0u8..=255).prop_map(
        |(retract, table, offset, period_sel, datum, pick)| Op {
            retract: retract == 1,
            table: table == 1,
            offset,
            period_sel,
            datum,
            pick,
        },
    )
}

fn spec_of(op: &Op) -> (&'static str, TupleSpec) {
    const PERIODS: [i64; 5] = [1, 2, 3, 4, 6];
    let period = PERIODS[op.period_sel as usize];
    let offset = i64::from(op.offset) % period;
    if op.table {
        ("vr", TupleSpec::new().lrp("t", offset, period))
    } else {
        (
            "vs",
            TupleSpec::new()
                .lrp("t", offset, period)
                .datum("k", i64::from(op.datum)),
        )
    }
}

/// Replays `ops` (chunked into multi-op transactions) against a fresh
/// database under `threads` threads, checking every view against a
/// from-scratch `run()` after each commit. Returns, per view, the final
/// maintained relation and its `(refreshes, full, delta_rows)` counters.
fn replay(ops: &[Op], threads: usize) -> Vec<(GenRelation, u64, u64, u64)> {
    let ctx = ExecContext::with_threads(threads);
    let (mut db, ids) = fresh_db();
    // Log of insert specs per table, so retractions can target rows that
    // really exist (as well as ones that never did).
    let mut log: Vec<(&'static str, TupleSpec)> = Vec::new();
    for chunk in ops.chunks(3) {
        let mut txn = Txn::new();
        for op in chunk {
            let (table, spec) = spec_of(op);
            if op.retract {
                let same_table: Vec<&TupleSpec> = log
                    .iter()
                    .filter(|(t, _)| *t == table)
                    .map(|(_, s)| s)
                    .collect();
                let spec = if same_table.is_empty() {
                    spec // retract a row that may not exist
                } else {
                    same_table[op.pick as usize % same_table.len()].clone()
                };
                txn = txn.retract(table, spec);
            } else {
                log.push((table, spec.clone()));
                txn = txn.insert(table, spec);
            }
        }
        db.apply_with(txn, &ctx).unwrap();
        for (id, (_, src)) in ids.iter().zip(VIEWS) {
            let snap = db.view(*id).unwrap();
            let rerun = db.run(*src, QueryOpts::new().ctx(&ctx)).unwrap();
            assert_same_set(&snap.relation, &rerun.result.relation, &ctx);
        }
    }
    ids.iter()
        .map(|id| {
            let info = db
                .views()
                .into_iter()
                .find(|v| v.id == *id)
                .expect("registered");
            let snap = db.view(*id).unwrap();
            (
                snap.relation.clone(),
                info.refreshes,
                info.full_refreshes,
                info.delta_rows,
            )
        })
        .collect()
}

fn assert_same_set(a: &GenRelation, b: &GenRelation, ctx: &ExecContext) {
    let ab = a.difference_in(b, ctx).unwrap();
    let ba = b.difference_in(a, ctx).unwrap();
    assert!(
        ab.denotes_empty().unwrap() && ba.denotes_empty().unwrap(),
        "maintained view and from-scratch run denote different sets\n\
         maintained: {a:?}\nrerun: {b:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The acceptance property: under randomized insert/retract streams
    /// every maintained view stays semantically identical to a full
    /// recomputation, and the maintained representation *and counters*
    /// are bit-identical at 1, 2 and 8 threads.
    #[test]
    fn maintained_views_match_recomputation_at_any_thread_count(
        ops in proptest::collection::vec(op_strategy(), 0..14),
    ) {
        let serial = replay(&ops, 1);
        for threads in [2usize, 8] {
            let parallel = replay(&ops, threads);
            prop_assert_eq!(serial.len(), parallel.len());
            for (s, p) in serial.iter().zip(&parallel) {
                prop_assert_eq!(&s.0, &p.0, "representation diverged at {} threads", threads);
                prop_assert_eq!(
                    (s.1, s.2, s.3),
                    (p.1, p.2, p.3),
                    "maintenance counters diverged at {} threads",
                    threads
                );
            }
        }
    }
}

#[test]
fn txn_validates_everything_before_mutating() {
    let (mut db, ids) = fresh_db();
    let token = db.plan_token();
    let before: Vec<_> = db.views().into_iter().map(|v| v.refreshes).collect();

    // Unknown table: the valid first op must not land.
    let err = db.apply(
        Txn::new()
            .insert("vs", TupleSpec::new().lrp("t", 1, 3).datum("k", 2))
            .insert("nosuch", TupleSpec::new().lrp("t", 0, 2)),
    );
    assert!(err.is_err());

    // Incomplete spec (missing datum for the data attribute).
    let err = db.apply(
        Txn::new()
            .insert("vs", TupleSpec::new().lrp("t", 1, 3).datum("k", 2))
            .insert("vs", TupleSpec::new().lrp("t", 2, 3)),
    );
    assert!(err.is_err());

    assert_eq!(db.plan_token(), token, "failed batches rotate nothing");
    assert!(!db
        .table("vs")
        .unwrap()
        .relation()
        .contains(&[1], &[Value::Int(2)]));
    let after: Vec<_> = db.views().into_iter().map(|v| v.refreshes).collect();
    assert_eq!(before, after, "failed batches refresh no views");
    drop(ids);
}

#[test]
fn empty_txn_is_a_noop() {
    let (mut db, _ids) = fresh_db();
    let token = db.plan_token();
    let summary = db.apply(Txn::new()).unwrap();
    assert_eq!(summary, itd_db::TxnSummary::default());
    assert_eq!(db.plan_token(), token);
}

#[test]
fn retract_of_absent_row_is_not_an_error() {
    let (mut db, _ids) = fresh_db();
    let summary = db
        .apply(Txn::new().retract("vr", TupleSpec::new().lrp("t", 5, 7)))
        .unwrap();
    assert_eq!(summary.retracted, 0);
    // Views are still refreshed (with empty deltas).
    assert_eq!(summary.views_refreshed, VIEWS.len());
    assert_eq!(summary.views_recomputed, 0);
}

#[test]
fn view_registry_lifecycle() {
    let (mut db, ids) = fresh_db();
    assert_eq!(db.views().len(), VIEWS.len());
    assert!(
        db.register_view("joined", "vr(t)").is_err(),
        "duplicate name"
    );
    assert!(db.register_view("bad", "nosuch(t)").is_err());

    let snap = db.view_named("joined").unwrap();
    assert_eq!(snap.name, "joined");
    assert_eq!(snap.temporal_vars, vec!["t".to_owned()]);
    assert_eq!(snap.data_vars, vec!["k".to_owned()]);
    assert!(snap.relation.contains(&[0], &[Value::Int(1)]));

    // Snapshots are cheap handles: an old Arc survives deregistration.
    assert!(db.deregister_view(ids[0]));
    assert!(!db.deregister_view(ids[0]), "second deregister is false");
    assert!(db.view(ids[0]).is_none());
    assert!(db.view_named("joined").is_none());
    assert_eq!(db.views().len(), VIEWS.len() - 1);
    assert_eq!(snap.name, "joined");

    // The freed name can be reused.
    let again = db.register_view("joined", "vr(t)").unwrap();
    assert_ne!(again, ids[0], "view ids are never reused");
}

#[test]
fn out_of_band_mutations_force_a_counted_recompute() {
    let (mut db, ids) = fresh_db();
    // Mutate behind the delta path: `table_mut` marks views stale.
    db.table_mut("vr")
        .unwrap()
        .insert(TupleSpec::new().lrp("t", 1, 6))
        .unwrap();

    let summary = db
        .apply(Txn::new().insert("vr", TupleSpec::new().lrp("t", 2, 6)))
        .unwrap();
    assert_eq!(summary.views_refreshed, VIEWS.len());
    assert_eq!(
        summary.views_recomputed,
        VIEWS.len(),
        "stale views must fall back to full recomputation"
    );

    // The recompute saw both the out-of-band and the applied row.
    let ctx = ExecContext::new();
    for (id, (_, src)) in ids.iter().zip(VIEWS) {
        let snap = db.view(*id).unwrap();
        let rerun = db.run(*src, QueryOpts::new().ctx(&ctx)).unwrap();
        assert_same_set(&snap.relation, &rerun.result.relation, &ctx);
    }

    // The next apply is incremental again.
    let summary = db
        .apply(Txn::new().retract("vr", TupleSpec::new().lrp("t", 2, 6)))
        .unwrap();
    assert_eq!(summary.views_recomputed, 0);
}

#[test]
fn metrics_count_view_maintenance() {
    let (mut db, ids) = fresh_db();
    let before = db.metrics().snapshot();
    assert_eq!(before.views_registered, VIEWS.len() as u64);
    // Registration evaluates each view once but is not a refresh.
    assert_eq!(before.view_refreshes, 0);

    db.apply(Txn::new().insert("vr", TupleSpec::new().lrp("t", 3, 6)))
        .unwrap();
    let after = db.metrics().snapshot();
    assert_eq!(
        after.view_refreshes,
        before.view_refreshes + VIEWS.len() as u64
    );
    assert_eq!(after.view_full_refreshes, before.view_full_refreshes);
    assert!(
        after.view_delta_rows > before.view_delta_rows,
        "the inserted row must be counted as a consumed delta row"
    );

    db.deregister_view(ids[0]);
    assert_eq!(
        db.metrics().snapshot().views_registered,
        VIEWS.len() as u64 - 1
    );

    let prom = db.metrics().snapshot().to_prometheus();
    for name in [
        "itd_view_refreshes_total",
        "itd_view_full_refreshes_total",
        "itd_view_delta_rows_total",
        "itd_views_registered",
    ] {
        assert!(prom.contains(name), "{name} missing from {prom}");
    }
}

#[test]
fn view_info_reports_the_query_and_counters() {
    let (mut db, _ids) = fresh_db();
    db.apply(Txn::new().insert("vs", TupleSpec::new().lrp("t", 2, 3).datum("k", 0)))
        .unwrap();
    let infos = db.views();
    let joined = infos.iter().find(|v| v.name == "joined").unwrap();
    // `query` is the parsed formula's rendering, not the source string.
    assert!(
        joined.query.contains("vs(t; k) and vr(t)"),
        "{}",
        joined.query
    );
    assert_eq!(joined.refreshes, 1);
    assert!(joined.tuples > 0);
}

/// Regression: a view registered while its base tables are still empty
/// must pick up later inserts. The optimizer's empty-scan short-circuit
/// is sound for the token-invalidated plan cache but not for a pinned
/// view plan — view preparation must keep the scan in the tree.
#[test]
fn view_registered_over_empty_table_sees_later_inserts() {
    let mut db = Database::new();
    db.create_table("ev", &["t"], &[]).unwrap();
    let id = db.register_view("wit", "ev(t) and t >= 0").unwrap();
    assert_eq!(db.view(id).unwrap().relation.tuple_count(), 0);

    let summary = db
        .apply(Txn::new().insert("ev", TupleSpec::new().lrp("t", 0, 2)))
        .unwrap();
    assert_eq!(summary.views_refreshed, 1);

    let snap = db.view(id).unwrap();
    assert!(snap.relation.contains(&[4], &[]));
    assert!(!snap.relation.contains(&[3], &[]));

    // Draining the table again keeps the pinned plan live: the next
    // insert is still seen.
    db.apply(Txn::new().retract("ev", TupleSpec::new().lrp("t", 0, 2)))
        .unwrap();
    assert_eq!(db.view(id).unwrap().relation.tuple_count(), 0);
    db.apply(Txn::new().insert("ev", TupleSpec::new().lrp("t", 1, 2)))
        .unwrap();
    assert!(db.view(id).unwrap().relation.contains(&[5], &[]));
}

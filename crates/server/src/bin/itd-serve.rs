//! Query-service daemon: loads (or creates) a database and serves it.
//!
//! ```text
//! itd-serve [--addr HOST:PORT] [--metrics HOST:PORT] [--workers N]
//!           [--queue N] [--budget PAIRS] [--deadline-ms MS]
//!           [--gather-us US] [FILE.json]
//! ```
//!
//! With `FILE.json` the database is loaded from the REPL's `\save`
//! format; without it an empty database is served (useful together with a
//! seed script piped through `itd-repl`).

use std::process::ExitCode;
use std::time::Duration;

use itd_db::{render_error_chain, Database};
use itd_server::{Server, ServerConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage: itd-serve [--addr HOST:PORT] [--metrics HOST:PORT] [--workers N] \
         [--queue N] [--budget PAIRS] [--deadline-ms MS] [--gather-us US] [FILE.json]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:7171".into(),
        metrics_addr: Some("127.0.0.1:7172".into()),
        ..ServerConfig::default()
    };
    let mut file: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| args.next().ok_or_else(|| what.to_owned());
        match arg.as_str() {
            "--addr" => match value("--addr") {
                Ok(v) => cfg.addr = v,
                Err(_) => return usage(),
            },
            "--metrics" => match value("--metrics") {
                Ok(v) => cfg.metrics_addr = Some(v),
                Err(_) => return usage(),
            },
            "--no-metrics" => cfg.metrics_addr = None,
            "--workers" => match value("--workers").map(|v| v.parse()) {
                Ok(Ok(n)) => cfg.workers = n,
                _ => return usage(),
            },
            "--queue" => match value("--queue").map(|v| v.parse()) {
                Ok(Ok(n)) => cfg.queue_capacity = n,
                _ => return usage(),
            },
            "--budget" => match value("--budget").map(|v| v.parse()) {
                Ok(Ok(n)) => cfg.budget_pairs = n,
                _ => return usage(),
            },
            "--deadline-ms" => match value("--deadline-ms").map(|v| v.parse()) {
                Ok(Ok(ms)) => cfg.default_deadline = Some(Duration::from_millis(ms)),
                _ => return usage(),
            },
            "--gather-us" => match value("--gather-us").map(|v| v.parse()) {
                Ok(Ok(us)) => cfg.batch_gather = Duration::from_micros(us),
                _ => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') && file.is_none() => file = Some(other.to_owned()),
            _ => return usage(),
        }
    }

    let db = match &file {
        Some(path) => match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| Database::from_json(&text).map_err(|e| render_error_chain(&e)))
        {
            Ok(db) => db,
            Err(e) => {
                eprintln!("error: cannot load {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Database::new(),
    };

    let server = match Server::start(db, cfg) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: {}", render_error_chain(&e));
            return ExitCode::FAILURE;
        }
    };
    eprintln!("itd-serve: queries on {}", server.addr());
    if let Some(addr) = server.metrics_addr() {
        eprintln!("itd-serve: metrics on http://{addr}/metrics");
    }
    // Serve until the process is killed.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

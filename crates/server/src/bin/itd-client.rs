//! Line-oriented client for the query service.
//!
//! ```text
//! itd-client [--addr HOST:PORT] [--deadline-ms MS] [--truth] [QUERY ...]
//! ```
//!
//! Queries given as arguments run in order; with none, lines are read
//! from stdin (one query per line). Output mirrors the REPL's `query`
//! command: the free-variable columns, then the rendered relation.

use std::io::BufRead;
use std::process::ExitCode;

use itd_db::render_error_chain;
use itd_server::Client;

fn usage() -> ExitCode {
    eprintln!("usage: itd-client [--addr HOST:PORT] [--deadline-ms MS] [--truth] [QUERY ...]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:7171".to_owned();
    let mut deadline_ms: Option<u64> = None;
    let mut truth = false;
    let mut queries: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(v) => addr = v,
                None => return usage(),
            },
            "--deadline-ms" => match args.next().map(|v| v.parse()) {
                Some(Ok(ms)) => deadline_ms = Some(ms),
                _ => return usage(),
            },
            "--truth" => truth = true,
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => queries.push(other.to_owned()),
            _ => return usage(),
        }
    }

    let mut client = match Client::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!(
                "error: cannot connect to {addr}: {}",
                render_error_chain(&e)
            );
            return ExitCode::FAILURE;
        }
    };

    let run = |client: &mut Client, src: &str| -> bool {
        match client.query_opts(src, deadline_ms, truth) {
            Ok(res) => {
                println!(
                    "free variables: temporal {:?}, data {:?}",
                    res.temporal_vars, res.data_vars
                );
                println!("{}", res.result);
                if let Some(t) = res.truth {
                    println!("truth: {t}");
                }
                true
            }
            Err(e) => {
                eprintln!("error: {}", render_error_chain(&e));
                false
            }
        }
    };

    let mut ok = true;
    if queries.is_empty() {
        for line in std::io::stdin().lock().lines() {
            let Ok(line) = line else { break };
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            ok &= run(&mut client, line);
        }
    } else {
        for q in &queries {
            ok &= run(&mut client, q);
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

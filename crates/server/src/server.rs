//! The query service: listener, sessions, shared-snapshot batching,
//! admission control, deadline-aware workers, and the metrics endpoint.
//!
//! # Architecture
//!
//! ```text
//! clients ──TCP──▶ session threads ──▶ bounded admission queue
//!                                          │ (reject-on-full)
//!                                          ▼
//!                                   dispatcher thread
//!                         drains the queue into ONE batch,
//!                         clones the shared Database ONCE
//!                         (O(1) Arc snapshot, shared registry)
//!                                          │
//!                          contiguous sub-batches, round-robin
//!                                          ▼
//!                                 bounded worker pool
//!                     estimate → admission check → run_batch →
//!                     per-response write-back to the session socket
//! ```
//!
//! Every query of a batch executes against the *same* immutable snapshot,
//! so heavy read traffic never contends with ingest: [`Server::apply`]
//! takes the write lock between batch snapshots, and a transaction
//! committed mid-batch is observed by the *next* batch, never half of the
//! current one. Admission control checks the optimizer's pre-execution
//! total-pairs estimate against [`ServerConfig::budget_pairs`]; deadlines
//! become a [`CancelToken`] in the per-query [`ExecContext`], checked at
//! chunk boundaries so a timed-out query stops burning its worker.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use itd_core::{CancelToken, CoreError, ExecContext, MetricsRegistry};
use itd_db::{Database, DbError, QueryOpts, Txn, TxnSummary};
use itd_query::QueryError;

use crate::error::ServerError;
use crate::wire::{self, Request, Response, WireResult};

/// Tuning knobs of the query service.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address of the query listener (`"127.0.0.1:0"` picks an
    /// ephemeral port; read it back from [`Server::addr`]).
    pub addr: String,
    /// Bind address of the plain-HTTP/1.0 `GET /metrics` + `GET /healthz`
    /// listener, or `None` to disable it.
    pub metrics_addr: Option<String>,
    /// Worker-pool size: how many queries execute concurrently.
    pub workers: usize,
    /// Admission bound on *outstanding* requests — queued plus executing.
    /// Submissions beyond it are rejected with [`ServerError::QueueFull`]
    /// (backpressure): counting in-flight work keeps the bound meaningful
    /// even though the dispatcher drains the queue eagerly.
    pub queue_capacity: usize,
    /// Admission budget on the cost model's pre-execution total-pairs
    /// estimate; `f64::INFINITY` disables the check.
    pub budget_pairs: f64,
    /// Group-commit-style gather window: once work arrives, how long the
    /// dispatcher lets further requests accumulate before draining the
    /// batch. `Duration::ZERO` (the default) drains immediately —
    /// lowest latency; a few hundred microseconds trades single-client
    /// latency for much larger shared-snapshot batches under load.
    pub batch_gather: Duration,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Option<Duration>,
    /// Thread budget of each query's [`ExecContext`]. The default of 1
    /// keeps workers independent — concurrency comes from the pool.
    pub query_threads: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            metrics_addr: None,
            workers: 4,
            queue_capacity: 1024,
            budget_pairs: f64::INFINITY,
            batch_gather: Duration::ZERO,
            default_deadline: None,
            query_threads: 1,
        }
    }
}

/// One queued request: source, deadline, and the session socket to write
/// the response back to.
struct Job {
    id: u64,
    src: String,
    deadline: Option<Instant>,
    truth: bool,
    out: Arc<Mutex<TcpStream>>,
}

/// A worker assignment: a contiguous sub-batch of jobs plus the shared
/// snapshot their batch resolved once.
struct SubBatch {
    snapshot: Arc<Database>,
    jobs: Vec<Job>,
}

struct Shared {
    db: RwLock<Database>,
    registry: Arc<MetricsRegistry>,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    /// Requests accepted but not yet responded to (queued + executing);
    /// incremented under the queue lock, decremented after the response
    /// is written. The admission bound checks this, not the queue length.
    outstanding: AtomicU64,
    cfg: ServerConfig,
    shutdown: AtomicBool,
}

/// A running query service over one shared [`Database`].
///
/// # Examples
/// ```no_run
/// use itd_db::{Database, TupleSpec};
/// use itd_server::{Client, Server, ServerConfig};
/// let mut db = Database::new();
/// db.create_table("even", &["t"], &[]).unwrap();
/// db.table_mut("even").unwrap().insert(TupleSpec::new().lrp("t", 0, 2)).unwrap();
/// let server = Server::start(db, ServerConfig::default()).unwrap();
/// let mut client = Client::connect(server.addr()).unwrap();
/// let answer = client.query("even(t)").unwrap();
/// assert_eq!(answer.temporal_vars, ["t"]);
/// server.shutdown();
/// ```
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the listeners, spawns the dispatcher, the worker pool, and
    /// (when configured) the metrics endpoint, and starts accepting
    /// connections.
    ///
    /// # Errors
    /// [`ServerError::Io`] when a bind fails.
    pub fn start(db: Database, cfg: ServerConfig) -> Result<Server, ServerError> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let metrics_listener = match &cfg.metrics_addr {
            Some(addr) => {
                let l = TcpListener::bind(addr)?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        let metrics_addr = metrics_listener
            .as_ref()
            .map(|l| l.local_addr())
            .transpose()?;

        let registry = db.metrics_handle();
        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            db: RwLock::new(db),
            registry,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            outstanding: AtomicU64::new(0),
            cfg,
            shutdown: AtomicBool::new(false),
        });

        let mut threads = Vec::new();
        // Rendezvous hand-off: a sub-batch transfers only when a worker is
        // ready for it, so when the pool saturates the dispatcher blocks,
        // the queue fills, and reject-on-full backpressure engages.
        let (tx, rx) = mpsc::sync_channel::<SubBatch>(0);
        let rx = Arc::new(Mutex::new(rx));
        for _ in 0..workers {
            let rx = Arc::clone(&rx);
            let shared2 = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || worker_loop(&shared2, &rx)));
        }
        {
            let shared2 = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || dispatcher_loop(&shared2, tx)));
        }
        {
            let shared2 = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || accept_loop(&shared2, &listener)));
        }
        if let Some(l) = metrics_listener {
            let shared2 = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || metrics_loop(&shared2, &l)));
        }
        Ok(Server {
            shared,
            addr,
            metrics_addr,
            threads,
        })
    }

    /// The query listener's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The metrics listener's bound address, when one is configured.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// The shared registry all service counters land in.
    pub fn registry(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.shared.registry)
    }

    /// Applies a transaction to the shared database. Takes the write
    /// lock, so it interleaves *between* batch snapshots: every in-flight
    /// batch keeps reading its own immutable snapshot, and the next batch
    /// observes the new state.
    ///
    /// # Errors
    /// [`ServerError::Query`] on validation failure (the batch then
    /// changed nothing).
    pub fn apply(&self, txn: Txn) -> Result<TxnSummary, ServerError> {
        let mut db = self.shared.db.write().expect("database lock poisoned");
        Ok(db.apply(txn)?)
    }

    /// An O(1)-ish snapshot of the current shared database state — the
    /// same clone a batch resolves, for out-of-band comparison.
    pub fn snapshot(&self) -> Database {
        self.shared
            .db
            .read()
            .expect("database lock poisoned")
            .clone()
    }

    /// Stops accepting work, drains the threads, and returns once every
    /// session, worker, and listener has exited.
    pub fn shutdown(self) {
        self.shared.shutdown.store(true, Relaxed);
        self.shared.queue_cv.notify_all();
        for t in self.threads {
            let _ = t.join();
        }
        // Reject anything that was still queued when the dispatcher left.
        let mut queue = self.shared.queue.lock().expect("queue poisoned");
        for job in queue.drain(..) {
            self.shared.registry.server_rejected_queue_full();
            respond_err(&job.out, job.id, &ServerError::Shutdown);
            self.shared.outstanding.fetch_sub(1, Relaxed);
        }
        self.shared.registry.server_queue_depth_set(0);
    }
}

/// Accepts query connections until shutdown; each gets a session thread.
fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    let mut sessions = Vec::new();
    while !shared.shutdown.load(Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared2 = Arc::clone(shared);
                sessions.push(std::thread::spawn(move || session_loop(&shared2, stream)));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
    for s in sessions {
        let _ = s.join();
    }
}

/// One connection: read newline-delimited JSON requests, submit them to
/// the admission queue, write back rejections immediately.
fn session_loop(shared: &Arc<Shared>, stream: TcpStream) {
    shared.registry.server_connection();
    let _ = stream.set_nodelay(true);
    // Bounded read timeout so idle sessions observe shutdown.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let out = Arc::new(Mutex::new(stream));
    let mut reader = BufReader::new(read_half);
    let mut line = String::new();
    while !shared.shutdown.load(Relaxed) {
        match reader.read_line(&mut line) {
            Ok(0) => break, // client closed
            Ok(_) => {
                handle_line(shared, &out, line.trim());
                line.clear();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Partial data (if any) stays in `line`; poll shutdown.
            }
            Err(_) => break,
        }
    }
}

fn handle_line(shared: &Arc<Shared>, out: &Arc<Mutex<TcpStream>>, line: &str) {
    if line.is_empty() {
        return;
    }
    let req = match wire::parse_request(line) {
        Ok(req) => req,
        Err(e) => {
            // Unparseable frames never reach admission; id 0 by protocol.
            respond_err(out, 0, &e);
            return;
        }
    };
    if let Err(e) = submit(shared, &req, out) {
        respond_err(out, req.id, &e);
    }
}

/// Admission: counts the submission, applies queue backpressure, wakes
/// the dispatcher. The budget check happens in the worker, where the
/// batch snapshot (and therefore the estimate) lives.
fn submit(
    shared: &Arc<Shared>,
    req: &Request,
    out: &Arc<Mutex<TcpStream>>,
) -> Result<(), ServerError> {
    shared.registry.server_request();
    if shared.shutdown.load(Relaxed) {
        shared.registry.server_rejected_queue_full();
        return Err(ServerError::Shutdown);
    }
    let deadline_ms = req.deadline_ms.map(Duration::from_millis);
    let deadline = deadline_ms
        .or(shared.cfg.default_deadline)
        .map(|d| Instant::now() + d);
    let job = Job {
        id: req.id,
        src: req.query.clone(),
        deadline,
        truth: req.truth,
        out: Arc::clone(out),
    };
    {
        let mut queue = shared.queue.lock().expect("queue poisoned");
        if shared.outstanding.load(Relaxed) >= shared.cfg.queue_capacity as u64 {
            shared.registry.server_rejected_queue_full();
            return Err(ServerError::QueueFull {
                capacity: shared.cfg.queue_capacity,
            });
        }
        shared.outstanding.fetch_add(1, Relaxed);
        queue.push_back(job);
        shared.registry.server_queue_depth_set(queue.len() as u64);
    }
    shared.queue_cv.notify_one();
    Ok(())
}

/// Shared-snapshot batching: drain every queued request into one batch,
/// resolve the catalog/plan-token/`Arc` relation snapshot ONCE (one
/// `Database::clone` under the read lock), and hand contiguous
/// sub-batches to the worker pool.
fn dispatcher_loop(shared: &Arc<Shared>, tx: mpsc::SyncSender<SubBatch>) {
    loop {
        let batch: Vec<Job> = {
            let mut queue = shared.queue.lock().expect("queue poisoned");
            while queue.is_empty() && !shared.shutdown.load(Relaxed) {
                let (q, _) = shared
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(100))
                    .expect("queue poisoned");
                queue = q;
            }
            if queue.is_empty() && shared.shutdown.load(Relaxed) {
                return; // dropping `tx` stops the workers
            }
            // Gather window: release the lock and let more requests
            // accumulate (a plain sleep, deliberately deaf to the
            // condvar) so the snapshot and wakeups amortize over a
            // larger batch under load.
            if !shared.cfg.batch_gather.is_zero() && !shared.shutdown.load(Relaxed) {
                drop(queue);
                std::thread::sleep(shared.cfg.batch_gather);
                queue = shared.queue.lock().expect("queue poisoned");
            }
            let drained = queue.drain(..).collect();
            shared.registry.server_queue_depth_set(0);
            drained
        };
        shared.registry.observe_server_batch(batch.len() as u64);
        let snapshot = Arc::new(shared.db.read().expect("database lock poisoned").clone());
        let per_worker = batch.len().div_ceil(shared.cfg.workers.max(1));
        let mut jobs = batch.into_iter();
        loop {
            let sub: Vec<Job> = jobs.by_ref().take(per_worker).collect();
            if sub.is_empty() {
                break;
            }
            if tx
                .send(SubBatch {
                    snapshot: Arc::clone(&snapshot),
                    jobs: sub,
                })
                .is_err()
            {
                return;
            }
        }
    }
}

/// Worker: admission-check each job of the sub-batch against the shared
/// snapshot, execute the admitted ones through the batched entry point,
/// and write every response back on its session socket.
fn worker_loop(shared: &Arc<Shared>, rx: &Mutex<mpsc::Receiver<SubBatch>>) {
    loop {
        let sub = {
            let rx = rx.lock().expect("worker channel poisoned");
            match rx.recv() {
                Ok(sub) => sub,
                Err(_) => return, // dispatcher gone: shutdown
            }
        };
        run_sub_batch(shared, &sub.snapshot, sub.jobs);
    }
}

fn run_sub_batch(shared: &Arc<Shared>, snapshot: &Database, jobs: Vec<Job>) {
    let registry = &shared.registry;
    let budget = shared.cfg.budget_pairs;
    // Pre-execution admission: the cost model's total-pairs estimate
    // against the budget. Estimation shares the prepared-plan cache with
    // execution, so an admitted query's preparation is never repeated.
    let mut admitted: Vec<Job> = Vec::with_capacity(jobs.len());
    for job in jobs {
        match snapshot.estimate(&job.src, QueryOpts::new()) {
            Err(e) => {
                // Not a budget/queue rejection: it was admitted and failed.
                registry.server_admitted();
                respond_err(&job.out, job.id, &ServerError::Query(e));
                shared.outstanding.fetch_sub(1, Relaxed);
            }
            Ok(est) if est > budget => {
                registry.server_rejected_over_budget();
                respond_err(
                    &job.out,
                    job.id,
                    &ServerError::OverBudget {
                        est_pairs: est,
                        budget,
                    },
                );
                shared.outstanding.fetch_sub(1, Relaxed);
            }
            Ok(_) => {
                registry.server_admitted();
                admitted.push(job);
            }
        }
    }
    if admitted.is_empty() {
        return;
    }
    // Deadline-aware contexts, one per admitted job, built before the
    // batched run so `opts_for` can borrow them.
    let ctxs: Vec<ExecContext> = admitted
        .iter()
        .map(|job| {
            let ctx = ExecContext::with_threads(shared.cfg.query_threads);
            match job.deadline {
                Some(deadline) => ctx.cancellable(CancelToken::with_deadline(deadline)),
                None => ctx,
            }
        })
        .collect();
    let srcs: Vec<&str> = admitted.iter().map(|j| j.src.as_str()).collect();
    let results = snapshot.run_batch(&srcs, |i| QueryOpts::new().ctx(&ctxs[i]));
    for ((job, ctx), result) in admitted.iter().zip(&ctxs).zip(results) {
        match result {
            Ok(output) => {
                let truth = if job.truth {
                    match output.truth_in(ctx) {
                        Ok(t) => Some(t),
                        Err(e) => {
                            respond_err(&job.out, job.id, &query_err(shared, DbError::Query(e)));
                            shared.outstanding.fetch_sub(1, Relaxed);
                            continue;
                        }
                    }
                } else {
                    None
                };
                let res = WireResult {
                    cached: output.plan_cached,
                    est_pairs: output.est_total_pairs,
                    temporal_vars: output.result.temporal_vars.clone(),
                    data_vars: output.result.data_vars.clone(),
                    result: output.result.relation.to_string(),
                    truth,
                };
                respond_ok(&job.out, job.id, res);
                shared.outstanding.fetch_sub(1, Relaxed);
            }
            Err(e) => {
                respond_err(&job.out, job.id, &query_err(shared, e));
                shared.outstanding.fetch_sub(1, Relaxed);
            }
        }
    }
}

/// Maps an engine failure to the service error, counting deadline
/// cancellations as typed timeouts.
fn query_err(shared: &Arc<Shared>, e: DbError) -> ServerError {
    if matches!(e, DbError::Query(QueryError::Core(CoreError::Cancelled))) {
        shared.registry.server_timeout();
        ServerError::DeadlineExceeded
    } else {
        ServerError::Query(e)
    }
}

fn respond_ok(out: &Arc<Mutex<TcpStream>>, id: u64, res: WireResult) {
    write_line(
        out,
        &wire::render_response(&Response {
            id,
            payload: Ok(res),
        }),
    );
}

fn respond_err(out: &Arc<Mutex<TcpStream>>, id: u64, err: &ServerError) {
    write_line(
        out,
        &wire::render_response(&Response {
            id,
            payload: Err(wire::error_payload(err)),
        }),
    );
}

/// Writes one frame; the per-line lock keeps concurrent workers' frames
/// from interleaving on a pipelined session.
fn write_line(out: &Arc<Mutex<TcpStream>>, line: &str) {
    let mut bytes = Vec::with_capacity(line.len() + 1);
    bytes.extend_from_slice(line.as_bytes());
    bytes.push(b'\n');
    let mut stream = out.lock().expect("session socket poisoned");
    let _ = stream.write_all(&bytes);
}

/// Plain-HTTP/1.0 endpoint: `GET /metrics` (Prometheus text exposition
/// from the shared registry) and `GET /healthz`.
fn metrics_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    while !shared.shutdown.load(Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => serve_http(shared, stream),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
}

fn serve_http(shared: &Arc<Shared>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut buf = [0u8; 1024];
    let mut request = Vec::new();
    // Read until the header terminator (HTTP/1.0: no body on GET).
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                request.extend_from_slice(&buf[..n]);
                if request.windows(4).any(|w| w == b"\r\n\r\n")
                    || request.windows(2).any(|w| w == b"\n\n")
                {
                    break;
                }
                if request.len() > 8192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let request_line = String::from_utf8_lossy(&request);
    let path = request_line
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .unwrap_or("");
    let (status, content_type, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4",
            shared.registry.snapshot().to_prometheus(),
        ),
        "/healthz" => ("200 OK", "text/plain", "ok\n".to_owned()),
        _ => ("404 Not Found", "text/plain", "not found\n".to_owned()),
    };
    let _ = write!(
        stream,
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
}

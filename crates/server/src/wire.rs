//! The newline-delimited JSON wire protocol.
//!
//! One request per line, one response per line, mirroring the engine's
//! existing `\stats json` / slow-log JSON conventions. Requests:
//!
//! ```json
//! {"id": 7, "query": "even(t)", "deadline_ms": 250, "truth": true}
//! ```
//!
//! `id` is echoed on the response (responses to pipelined requests may
//! arrive out of submission order); `deadline_ms` and `truth` are
//! optional. Success responses carry the free-variable columns and the
//! relation rendered exactly as [`Display`](std::fmt::Display) prints it —
//! the REPL's `query` output — so a wire result is bit-comparable to a
//! direct [`Database::run`](itd_db::Database::run):
//!
//! ```json
//! {"id": 7, "ok": true, "cached": true, "est_pairs": 4.0,
//!  "temporal_vars": ["t"], "data_vars": [], "result": "{ ⟨0+2n⟩ }",
//!  "truth": true}
//! ```
//!
//! Error responses carry the typed [`ServerError::kind`] tag plus the full
//! root-cause chain rendered by [`itd_db::render_error_chain`]:
//!
//! ```json
//! {"id": 7, "ok": false, "kind": "over_budget",
//!  "error": "admission rejected: ...", "est_pairs": 9216.0, "budget": 64.0}
//! ```

use serde::{de::DeError, Content, Deserialize, Serialize};

use crate::error::ServerError;

/// [`Content`] wrapper so the vendored serde stub's total JSON parser and
/// printer can carry dynamically shaped frames.
struct Json(Content);

impl Serialize for Json {
    fn to_content(&self) -> Content {
        self.0.clone()
    }
}

impl Deserialize for Json {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        Ok(Json(content.clone()))
    }
}

/// One parsed query request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Client-chosen correlation id, echoed on the response.
    pub id: u64,
    /// The query source text.
    pub query: String,
    /// Optional per-request deadline, in milliseconds from receipt.
    pub deadline_ms: Option<u64>,
    /// Whether to also compute the yes/no reading of the answer.
    pub truth: bool,
}

/// One response frame: the echoed id plus a success or error payload.
#[derive(Debug, Clone)]
pub struct Response {
    /// The request's correlation id (0 when the request was unparseable).
    pub id: u64,
    /// Success result or typed error.
    pub payload: Result<WireResult, WireError>,
}

/// The success payload of a response.
#[derive(Debug, Clone, PartialEq)]
pub struct WireResult {
    /// Whether the prepared-plan cache served this run.
    pub cached: bool,
    /// The pre-execution total-pairs estimate admission control checked.
    pub est_pairs: f64,
    /// Free temporal variables, in column order.
    pub temporal_vars: Vec<String>,
    /// Free data variables, in column order.
    pub data_vars: Vec<String>,
    /// The answer relation, rendered exactly as `Display` prints it.
    pub result: String,
    /// The yes/no reading, when the request asked for it.
    pub truth: Option<bool>,
}

/// The error payload of a response: the typed tag, the rendered
/// root-cause chain, and the admission numbers when relevant.
#[derive(Debug, Clone, PartialEq)]
pub struct WireError {
    /// Machine-readable tag ([`ServerError::kind`]).
    pub kind: String,
    /// Human-readable message: the full `source()` chain.
    pub message: String,
    /// The admission estimate, on `over_budget` errors.
    pub est_pairs: Option<f64>,
    /// The admission budget, on `over_budget` errors.
    pub budget: Option<f64>,
    /// The outstanding-request bound, on `queue_full` errors.
    pub capacity: Option<u64>,
}

impl WireError {
    /// Lifts the wire payload back into a typed [`ServerError`] on the
    /// client side, reconstructing the admission variants exactly.
    pub fn into_server_error(self) -> ServerError {
        match self.kind.as_str() {
            "over_budget" => ServerError::OverBudget {
                est_pairs: self.est_pairs.unwrap_or(f64::NAN),
                budget: self.budget.unwrap_or(f64::NAN),
            },
            "queue_full" => ServerError::QueueFull {
                capacity: self.capacity.unwrap_or(0) as usize,
            },
            "deadline" => ServerError::DeadlineExceeded,
            "shutdown" => ServerError::Shutdown,
            _ => ServerError::Remote {
                kind: self.kind,
                message: self.message,
            },
        }
    }
}

fn get<'c>(entries: &'c [(String, Content)], key: &str) -> Option<&'c Content> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn as_u64(c: &Content) -> Option<u64> {
    match c {
        Content::Int(v) if *v >= 0 => Some(*v as u64),
        Content::UInt(v) => Some(*v),
        _ => None,
    }
}

fn as_f64(c: &Content) -> Option<f64> {
    match c {
        Content::Int(v) => Some(*v as f64),
        Content::UInt(v) => Some(*v as f64),
        Content::Float(v) => Some(*v),
        _ => None,
    }
}

fn as_str(c: &Content) -> Option<&str> {
    match c {
        Content::Str(s) => Some(s),
        _ => None,
    }
}

fn as_bool(c: &Content) -> Option<bool> {
    match c {
        Content::Bool(b) => Some(*b),
        _ => None,
    }
}

fn string_seq(c: &Content) -> Option<Vec<String>> {
    match c {
        Content::Seq(items) => items
            .iter()
            .map(|i| as_str(i).map(str::to_owned))
            .collect::<Option<Vec<_>>>(),
        _ => None,
    }
}

/// Floats print as JSON numbers; keep integral estimates integral-looking
/// is unnecessary — `Content::Float` round-trips through the stub printer.
fn num(v: f64) -> Content {
    Content::Float(v)
}

/// Parses one request line.
///
/// # Errors
/// [`ServerError::Protocol`] on malformed JSON or a missing/ill-typed
/// required field.
pub fn parse_request(line: &str) -> Result<Request, ServerError> {
    let Json(content) =
        serde_json::from_str::<Json>(line).map_err(|e| ServerError::Protocol(e.to_string()))?;
    let entries = match &content {
        Content::Map(entries) => entries,
        other => {
            return Err(ServerError::Protocol(format!(
                "request must be an object, got {other:?}"
            )))
        }
    };
    let id = get(entries, "id")
        .and_then(as_u64)
        .ok_or_else(|| ServerError::Protocol("missing numeric `id`".into()))?;
    let query = get(entries, "query")
        .and_then(as_str)
        .ok_or_else(|| ServerError::Protocol("missing string `query`".into()))?
        .to_owned();
    let deadline_ms = match get(entries, "deadline_ms") {
        None | Some(Content::Null) => None,
        Some(c) => Some(as_u64(c).ok_or_else(|| {
            ServerError::Protocol("`deadline_ms` must be a non-negative integer".into())
        })?),
    };
    let truth = match get(entries, "truth") {
        None | Some(Content::Null) => false,
        Some(c) => {
            as_bool(c).ok_or_else(|| ServerError::Protocol("`truth` must be a boolean".into()))?
        }
    };
    Ok(Request {
        id,
        query,
        deadline_ms,
        truth,
    })
}

/// Renders one request as a single JSON line (no trailing newline).
pub fn render_request(req: &Request) -> String {
    let mut entries = vec![
        ("id".to_owned(), Content::UInt(req.id)),
        ("query".to_owned(), Content::Str(req.query.clone())),
    ];
    if let Some(ms) = req.deadline_ms {
        entries.push(("deadline_ms".to_owned(), Content::UInt(ms)));
    }
    if req.truth {
        entries.push(("truth".to_owned(), Content::Bool(true)));
    }
    serde_json::to_string(&Json(Content::Map(entries))).expect("content serialization is total")
}

/// Renders one response as a single JSON line (no trailing newline).
pub fn render_response(resp: &Response) -> String {
    let mut entries = vec![("id".to_owned(), Content::UInt(resp.id))];
    match &resp.payload {
        Ok(res) => {
            entries.push(("ok".to_owned(), Content::Bool(true)));
            entries.push(("cached".to_owned(), Content::Bool(res.cached)));
            entries.push(("est_pairs".to_owned(), num(res.est_pairs)));
            entries.push((
                "temporal_vars".to_owned(),
                Content::Seq(
                    res.temporal_vars
                        .iter()
                        .cloned()
                        .map(Content::Str)
                        .collect(),
                ),
            ));
            entries.push((
                "data_vars".to_owned(),
                Content::Seq(res.data_vars.iter().cloned().map(Content::Str).collect()),
            ));
            entries.push(("result".to_owned(), Content::Str(res.result.clone())));
            match res.truth {
                Some(t) => entries.push(("truth".to_owned(), Content::Bool(t))),
                None => entries.push(("truth".to_owned(), Content::Null)),
            }
        }
        Err(err) => {
            entries.push(("ok".to_owned(), Content::Bool(false)));
            entries.push(("kind".to_owned(), Content::Str(err.kind.clone())));
            entries.push(("error".to_owned(), Content::Str(err.message.clone())));
            if let Some(est) = err.est_pairs {
                entries.push(("est_pairs".to_owned(), num(est)));
            }
            if let Some(budget) = err.budget {
                entries.push(("budget".to_owned(), num(budget)));
            }
            if let Some(capacity) = err.capacity {
                entries.push(("capacity".to_owned(), Content::UInt(capacity)));
            }
        }
    }
    serde_json::to_string(&Json(Content::Map(entries))).expect("content serialization is total")
}

/// Parses one response line.
///
/// # Errors
/// [`ServerError::Protocol`] on malformed JSON or an ill-shaped frame.
pub fn parse_response(line: &str) -> Result<Response, ServerError> {
    let Json(content) =
        serde_json::from_str::<Json>(line).map_err(|e| ServerError::Protocol(e.to_string()))?;
    let entries = match &content {
        Content::Map(entries) => entries,
        other => {
            return Err(ServerError::Protocol(format!(
                "response must be an object, got {other:?}"
            )))
        }
    };
    let id = get(entries, "id")
        .and_then(as_u64)
        .ok_or_else(|| ServerError::Protocol("missing numeric `id`".into()))?;
    let ok = get(entries, "ok")
        .and_then(as_bool)
        .ok_or_else(|| ServerError::Protocol("missing boolean `ok`".into()))?;
    if ok {
        let missing = |what: &str| ServerError::Protocol(format!("missing `{what}`"));
        Ok(Response {
            id,
            payload: Ok(WireResult {
                cached: get(entries, "cached")
                    .and_then(as_bool)
                    .ok_or_else(|| missing("cached"))?,
                est_pairs: get(entries, "est_pairs")
                    .and_then(as_f64)
                    .ok_or_else(|| missing("est_pairs"))?,
                temporal_vars: get(entries, "temporal_vars")
                    .and_then(string_seq)
                    .ok_or_else(|| missing("temporal_vars"))?,
                data_vars: get(entries, "data_vars")
                    .and_then(string_seq)
                    .ok_or_else(|| missing("data_vars"))?,
                result: get(entries, "result")
                    .and_then(as_str)
                    .ok_or_else(|| missing("result"))?
                    .to_owned(),
                truth: get(entries, "truth").and_then(as_bool),
            }),
        })
    } else {
        Ok(Response {
            id,
            payload: Err(WireError {
                kind: get(entries, "kind")
                    .and_then(as_str)
                    .unwrap_or("unknown")
                    .to_owned(),
                message: get(entries, "error")
                    .and_then(as_str)
                    .unwrap_or_default()
                    .to_owned(),
                est_pairs: get(entries, "est_pairs").and_then(as_f64),
                budget: get(entries, "budget").and_then(as_f64),
                capacity: get(entries, "capacity").and_then(as_u64),
            }),
        })
    }
}

/// Builds the error payload for `err`: typed tag plus the rendered
/// root-cause chain ([`itd_db::render_error_chain`]), with the admission
/// numbers attached when the variant carries them.
pub fn error_payload(err: &ServerError) -> WireError {
    let (est_pairs, budget, capacity) = match err {
        ServerError::OverBudget { est_pairs, budget } => (Some(*est_pairs), Some(*budget), None),
        ServerError::QueueFull { capacity } => (None, None, Some(*capacity as u64)),
        _ => (None, None, None),
    };
    WireError {
        kind: err.kind().to_owned(),
        message: itd_db::render_error_chain(err),
        est_pairs,
        budget,
        capacity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let req = Request {
            id: 7,
            query: "even(t; x) and t >= \"0\"".into(),
            deadline_ms: Some(250),
            truth: true,
        };
        let parsed = parse_request(&render_request(&req)).unwrap();
        assert_eq!(parsed.id, 7);
        assert_eq!(parsed.query, req.query);
        assert_eq!(parsed.deadline_ms, Some(250));
        assert!(parsed.truth);

        let bare = parse_request(r#"{"id": 1, "query": "p(t)"}"#).unwrap();
        assert_eq!(bare.deadline_ms, None);
        assert!(!bare.truth);

        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"query": "p(t)"}"#).is_err());
        assert!(parse_request(r#"{"id": 1}"#).is_err());
        assert!(parse_request(r#"[1, 2]"#).is_err());
    }

    #[test]
    fn response_roundtrip_ok_and_err() {
        let ok = Response {
            id: 3,
            payload: Ok(WireResult {
                cached: true,
                est_pairs: 12.5,
                temporal_vars: vec!["t".into()],
                data_vars: vec!["x".into()],
                result: "{ ⟨0+2n⟩ }".into(),
                truth: Some(true),
            }),
        };
        let parsed = parse_response(&render_response(&ok)).unwrap();
        assert_eq!(parsed.id, 3);
        assert_eq!(parsed.payload.unwrap(), ok.payload.unwrap());

        let err = Response {
            id: 4,
            payload: Err(error_payload(&ServerError::OverBudget {
                est_pairs: 9216.0,
                budget: 64.0,
            })),
        };
        let parsed = parse_response(&render_response(&err)).unwrap();
        let wire_err = parsed.payload.unwrap_err();
        assert_eq!(wire_err.kind, "over_budget");
        assert_eq!(wire_err.est_pairs, Some(9216.0));
        assert_eq!(wire_err.budget, Some(64.0));
        assert!(wire_err.message.contains("9216"), "{}", wire_err.message);
        match wire_err.into_server_error() {
            ServerError::OverBudget { est_pairs, budget } => {
                assert_eq!(est_pairs, 9216.0);
                assert_eq!(budget, 64.0);
            }
            other => panic!("expected OverBudget, got {other:?}"),
        }
    }

    #[test]
    fn error_chain_is_rendered_not_debug() {
        let db_err = itd_db::Database::new()
            .run("p(", itd_db::QueryOpts::new())
            .unwrap_err();
        let payload = error_payload(&ServerError::Query(db_err));
        assert_eq!(payload.kind, "query");
        assert!(
            payload.message.contains("caused by:"),
            "root-cause chain missing: {}",
            payload.message
        );
        assert!(
            !payload.message.contains("Query("),
            "Debug formatting leaked: {}",
            payload.message
        );
    }
}

//! Blocking client for the query service's wire protocol.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::error::ServerError;
use crate::wire::{self, Request, WireResult};

/// A connected client. One request is in flight at a time ([`query`]
/// blocks for the response); open more clients for concurrency.
///
/// [`query`]: Client::query
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects to a running [`Server`](crate::Server).
    ///
    /// # Errors
    /// [`ServerError::Io`] when the connection fails.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ServerError> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client {
            reader,
            writer,
            next_id: 1,
        })
    }

    /// Runs one query with no deadline and no truth computation.
    ///
    /// # Errors
    /// Transport failures, protocol violations, and every typed
    /// service-side rejection ([`ServerError::OverBudget`],
    /// [`ServerError::QueueFull`], [`ServerError::DeadlineExceeded`],
    /// [`ServerError::Remote`] for engine errors).
    pub fn query(&mut self, src: impl Into<String>) -> Result<WireResult, ServerError> {
        self.query_opts(src, None, false)
    }

    /// Runs one query with an optional deadline (milliseconds) and an
    /// optional yes/no computation of the answer.
    ///
    /// # Errors
    /// See [`Client::query`].
    pub fn query_opts(
        &mut self,
        src: impl Into<String>,
        deadline_ms: Option<u64>,
        truth: bool,
    ) -> Result<WireResult, ServerError> {
        let id = self.next_id;
        self.next_id += 1;
        let req = Request {
            id,
            query: src.into(),
            deadline_ms,
            truth,
        };
        let mut line = wire::render_request(&req);
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        let mut resp_line = String::new();
        let n = self.reader.read_line(&mut resp_line)?;
        if n == 0 {
            return Err(ServerError::Protocol(
                "connection closed mid-request".into(),
            ));
        }
        let resp = wire::parse_response(resp_line.trim())?;
        if resp.id != id {
            return Err(ServerError::Protocol(format!(
                "response id {} does not match request id {id}",
                resp.id
            )));
        }
        match resp.payload {
            Ok(result) => Ok(result),
            Err(err) => Err(err.into_server_error()),
        }
    }
}

//! Concurrent query service over one shared temporal [`Database`]: the
//! "heavy traffic" half of the paper's motivation (§1 imagines millions
//! of users querying an infinite temporal database).
//!
//! The service is a hand-rolled `std::net::TcpListener` front end — the
//! build is fully offline, so there is no tonic/axum; frames are
//! newline-delimited JSON mirroring the engine's `\stats json`
//! conventions (see [`wire`]) — with three engine-level performance
//! mechanisms behind it:
//!
//! * **shared-snapshot batching** — concurrently arriving queries are
//!   drained into a batch whose catalog/plan-token/`Arc` relation
//!   snapshot is resolved once ([`Database`] clones are O(1)-ish `Arc`
//!   snapshots); every query of the batch reads the same immutable state
//!   while [`Server::apply`] transactions interleave *between* batches;
//! * **cost-based admission control** — the optimizer's closed-form
//!   total-pairs estimate (the paper's Table 2 operation counts, computed
//!   by the PR 4 cost model *before* execution) is checked against a
//!   configurable budget; over-budget queries are rejected with a typed
//!   error carrying the estimate, and a bounded queue applies
//!   reject-on-full backpressure;
//! * **deadline-aware execution** — per-request deadlines become a
//!   [`CancelToken`](itd_core::CancelToken) in the query's
//!   `ExecContext`, polled at the chunk boundaries of the parallel
//!   executor, so a timed-out query stops burning its worker without
//!   poisoning any cache (plans are logical; outcome memos are
//!   always-correct; metrics observe completed queries only).
//!
//! A second plain-HTTP/1.0 listener serves `GET /metrics` (the registry's
//! Prometheus text) and `GET /healthz`.
//!
//! [`Database`]: itd_db::Database

mod client;
mod error;
mod server;
pub mod wire;

pub use client::Client;
pub use error::ServerError;
pub use server::{Server, ServerConfig};

/// Result alias for service operations.
pub type Result<T> = std::result::Result<T, ServerError>;

//! Typed errors of the query service, with `source()` chains like
//! `itd-db`'s.
//!
//! Wire-protocol error responses render the full root-cause chain via
//! [`itd_db::render_error_chain`] — never `Debug` formatting — so a client
//! sees `parse error at offset 3` under a `query failed` head instead of a
//! struct dump. Each variant also carries a stable machine-readable
//! [`kind`](ServerError::kind) tag for the wire.

use std::fmt;
use std::io;

use itd_db::DbError;

/// Everything the query service can fail with, end to end: transport,
/// framing, admission, deadlines, and the engine itself.
#[derive(Debug)]
pub enum ServerError {
    /// Socket-level failure (bind, accept, read, write).
    Io(io::Error),
    /// A frame that could not be parsed as a request (or, client-side, a
    /// response), with what was wrong.
    Protocol(String),
    /// Admission control rejected the query: the cost model's
    /// pre-execution total-pairs estimate exceeded the configured budget.
    OverBudget {
        /// The whole-plan total-pairs estimate the optimizer produced.
        est_pairs: f64,
        /// The configured admission budget it exceeded.
        budget: f64,
    },
    /// The bounded admission queue was full — backpressure, try again.
    QueueFull {
        /// The configured queue capacity that was hit.
        capacity: usize,
    },
    /// The per-request deadline expired; execution was cancelled
    /// cooperatively at a chunk boundary.
    DeadlineExceeded,
    /// The engine failed to evaluate the query (parse, sort, algebra).
    Query(DbError),
    /// Client-side view of a server-reported failure that has no richer
    /// local representation (`kind` is the server's tag).
    Remote {
        /// The server's machine-readable error tag.
        kind: String,
        /// The server's rendered error chain.
        message: String,
    },
    /// The service is shutting down and no longer accepts work.
    Shutdown,
}

impl ServerError {
    /// Stable machine-readable tag carried in wire error responses.
    pub fn kind(&self) -> &str {
        match self {
            ServerError::Io(_) => "io",
            ServerError::Protocol(_) => "protocol",
            ServerError::OverBudget { .. } => "over_budget",
            ServerError::QueueFull { .. } => "queue_full",
            ServerError::DeadlineExceeded => "deadline",
            ServerError::Query(_) => "query",
            ServerError::Remote { kind, .. } => kind,
            ServerError::Shutdown => "shutdown",
        }
    }

    /// The admission estimate attached to this error, if any.
    pub fn est_pairs(&self) -> Option<f64> {
        match self {
            ServerError::OverBudget { est_pairs, .. } => Some(*est_pairs),
            _ => None,
        }
    }
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Io(_) => f.write_str("transport failure"),
            ServerError::Protocol(what) => write!(f, "protocol error: {what}"),
            ServerError::OverBudget { est_pairs, budget } => write!(
                f,
                "admission rejected: estimated {est_pairs:.0} candidate pairs \
                 exceeds budget {budget:.0}"
            ),
            ServerError::QueueFull { capacity } => {
                write!(f, "admission queue full (capacity {capacity}); try again")
            }
            ServerError::DeadlineExceeded => f.write_str("deadline exceeded"),
            ServerError::Query(_) => f.write_str("query failed"),
            ServerError::Remote { message, .. } => f.write_str(message),
            ServerError::Shutdown => f.write_str("service shutting down"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Io(e) => Some(e),
            ServerError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ServerError {
    fn from(e: io::Error) -> Self {
        ServerError::Io(e)
    }
}

impl From<DbError> for ServerError {
    fn from(e: DbError) -> Self {
        ServerError::Query(e)
    }
}

//! Text syntax for temporal-logic formulas.
//!
//! ```text
//! formula := implies
//! implies := or ("->" implies)?
//! or      := and ("|" and)*
//! and     := unary ("&" unary)*
//! unary   := "!" unary
//!          | "X" unary | "Y" unary
//!          | "F" ["<=" int] unary | "G" ["<=" int] unary
//!          | "O" unary | "H" unary
//!          | "(" formula ["U" formula] ")"
//!          | ident
//! ```
//!
//! `U` is written inside parentheses: `(p U q)`. Examples:
//! `G (green -> X yellow)`, `F<=2 green`, `G F green`, `(!red U yellow)`.

use crate::Tl;

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TlParseError {
    /// Human-readable message.
    pub message: String,
    /// Byte offset of the offending token.
    pub offset: usize,
}

impl std::fmt::Display for TlParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TL parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for TlParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(u32),
    LParen,
    RParen,
    Not,
    And,
    Or,
    Arrow,
    LeBound, // "<="
    Eof,
}

fn tokenize(src: &str) -> Result<Vec<(Tok, usize)>, TlParseError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b'(' => {
                out.push((Tok::LParen, i));
                i += 1;
            }
            b')' => {
                out.push((Tok::RParen, i));
                i += 1;
            }
            b'!' => {
                out.push((Tok::Not, i));
                i += 1;
            }
            b'&' => {
                out.push((Tok::And, i));
                i += 1;
            }
            b'|' => {
                out.push((Tok::Or, i));
                i += 1;
            }
            b'-' if bytes.get(i + 1) == Some(&b'>') => {
                out.push((Tok::Arrow, i));
                i += 2;
            }
            b'<' if bytes.get(i + 1) == Some(&b'=') => {
                out.push((Tok::LeBound, i));
                i += 2;
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let v: u32 = src[start..i].parse().map_err(|_| TlParseError {
                    message: "bound out of range".into(),
                    offset: start,
                })?;
                out.push((Tok::Int(v), start));
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push((Tok::Ident(src[start..i].to_owned()), start));
            }
            other => {
                return Err(TlParseError {
                    message: format!("unexpected character `{}`", other as char),
                    offset: i,
                })
            }
        }
    }
    out.push((Tok::Eof, src.len()));
    Ok(out)
}

struct P {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl P {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn offset(&self) -> usize {
        self.toks[self.pos].1
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> TlParseError {
        TlParseError {
            message: message.into(),
            offset: self.offset(),
        }
    }

    fn formula(&mut self) -> Result<Tl, TlParseError> {
        let lhs = self.or()?;
        if *self.peek() == Tok::Arrow {
            self.bump();
            let rhs = self.formula()?;
            return Ok(Tl::implies(lhs, rhs));
        }
        Ok(lhs)
    }

    fn or(&mut self) -> Result<Tl, TlParseError> {
        let mut lhs = self.and()?;
        while *self.peek() == Tok::Or {
            self.bump();
            lhs = Tl::or(lhs, self.and()?);
        }
        Ok(lhs)
    }

    fn and(&mut self) -> Result<Tl, TlParseError> {
        let mut lhs = self.unary()?;
        while *self.peek() == Tok::And {
            self.bump();
            lhs = Tl::and(lhs, self.unary()?);
        }
        Ok(lhs)
    }

    fn bound(&mut self) -> Result<Option<u32>, TlParseError> {
        if *self.peek() != Tok::LeBound {
            return Ok(None);
        }
        self.bump();
        match self.bump() {
            Tok::Int(d) => Ok(Some(d)),
            _ => Err(self.err("expected integer bound after `<=`")),
        }
    }

    fn unary(&mut self) -> Result<Tl, TlParseError> {
        match self.peek().clone() {
            Tok::Not => {
                self.bump();
                Ok(Tl::not(self.unary()?))
            }
            Tok::LParen => {
                self.bump();
                let lhs = self.formula()?;
                // Optional infix U inside parentheses.
                let out = if matches!(self.peek(), Tok::Ident(w) if w == "U") {
                    self.bump();
                    let rhs = self.formula()?;
                    Tl::until(lhs, rhs)
                } else {
                    lhs
                };
                if self.bump() != Tok::RParen {
                    self.pos -= 1;
                    return Err(self.err("expected `)`"));
                }
                Ok(out)
            }
            Tok::Ident(word) => {
                self.bump();
                match word.as_str() {
                    "X" => Ok(Tl::next(self.unary()?)),
                    "Y" => Ok(Tl::prev(self.unary()?)),
                    "O" => Ok(Tl::once(self.unary()?)),
                    "H" => Ok(Tl::historically(self.unary()?)),
                    "F" => match self.bound()? {
                        Some(d) => Ok(Tl::eventually_within(d, self.unary()?)),
                        None => Ok(Tl::eventually(self.unary()?)),
                    },
                    "G" => match self.bound()? {
                        Some(d) => Ok(Tl::always_within(d, self.unary()?)),
                        None => Ok(Tl::always(self.unary()?)),
                    },
                    "U" => Err(self.err("`U` is infix: write `(p U q)`")),
                    _ => Ok(Tl::prop(word)),
                }
            }
            _ => Err(self.err("expected a formula")),
        }
    }
}

/// Parses a temporal-logic formula from text.
///
/// # Examples
/// ```
/// let f = itd_tl::parse("G (green -> X yellow)").unwrap();
/// assert_eq!(
///     f,
///     itd_tl::Tl::always(itd_tl::Tl::implies(
///         itd_tl::Tl::prop("green"),
///         itd_tl::Tl::next(itd_tl::Tl::prop("yellow")),
///     )),
/// );
/// ```
///
/// # Errors
/// [`TlParseError`] with a byte offset.
pub fn parse(src: &str) -> Result<Tl, TlParseError> {
    let toks = tokenize(src)?;
    let mut p = P { toks, pos: 0 };
    let f = p.formula()?;
    if *p.peek() != Tok::Eof {
        return Err(p.err("trailing input"));
    }
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_operators() {
        assert_eq!(parse("p").unwrap(), Tl::prop("p"));
        assert_eq!(parse("!p").unwrap(), Tl::not(Tl::prop("p")));
        assert_eq!(parse("X p").unwrap(), Tl::next(Tl::prop("p")));
        assert_eq!(parse("Y p").unwrap(), Tl::prev(Tl::prop("p")));
        assert_eq!(parse("F p").unwrap(), Tl::eventually(Tl::prop("p")));
        assert_eq!(parse("G p").unwrap(), Tl::always(Tl::prop("p")));
        assert_eq!(parse("O p").unwrap(), Tl::once(Tl::prop("p")));
        assert_eq!(parse("H p").unwrap(), Tl::historically(Tl::prop("p")));
        assert_eq!(
            parse("F<=3 p").unwrap(),
            Tl::eventually_within(3, Tl::prop("p"))
        );
        assert_eq!(
            parse("G<=2 p").unwrap(),
            Tl::always_within(2, Tl::prop("p"))
        );
        assert_eq!(
            parse("(p U q)").unwrap(),
            Tl::until(Tl::prop("p"), Tl::prop("q"))
        );
    }

    #[test]
    fn precedence() {
        assert_eq!(
            parse("p & q | r").unwrap(),
            Tl::or(Tl::and(Tl::prop("p"), Tl::prop("q")), Tl::prop("r"))
        );
        assert_eq!(
            parse("p -> q -> r").unwrap(),
            Tl::implies(Tl::prop("p"), Tl::implies(Tl::prop("q"), Tl::prop("r")))
        );
        assert_eq!(
            parse("G p -> q").unwrap(),
            Tl::implies(Tl::always(Tl::prop("p")), Tl::prop("q"))
        );
        assert_eq!(
            parse("G (p -> q)").unwrap(),
            Tl::always(Tl::implies(Tl::prop("p"), Tl::prop("q")))
        );
    }

    #[test]
    fn nested_modalities() {
        assert_eq!(
            parse("G F p").unwrap(),
            Tl::always(Tl::eventually(Tl::prop("p")))
        );
        assert_eq!(
            parse("! (p U !q)").unwrap(),
            Tl::not(Tl::until(Tl::prop("p"), Tl::not(Tl::prop("q"))))
        );
        assert_eq!(
            parse("X X X p").unwrap(),
            Tl::next(Tl::next(Tl::next(Tl::prop("p"))))
        );
    }

    #[test]
    fn errors() {
        assert!(parse("").is_err());
        assert!(parse("(p").is_err());
        assert!(parse("p q").is_err());
        assert!(parse("F<= p").is_err());
        assert!(parse("U p").is_err());
        assert!(parse("p $").is_err());
        let e = parse("p @").unwrap_err();
        assert_eq!(e.offset, 2);
        assert!(e.to_string().contains("byte 2"));
    }

    #[test]
    fn parse_then_evaluate() {
        use itd_core::{GenRelation, GenTuple, Lrp, Schema};
        use itd_query::MemoryCatalog;
        let mut cat = MemoryCatalog::new();
        for (name, offset) in [("green", 0), ("yellow", 1), ("red", 2)] {
            cat.insert(
                name,
                GenRelation::new(
                    Schema::new(1, 0),
                    vec![GenTuple::unconstrained(
                        vec![Lrp::new(offset, 3).unwrap()],
                        vec![],
                    )],
                )
                .unwrap(),
            );
        }
        let f = parse("G (green -> X yellow)").unwrap();
        assert!(crate::valid(&cat, &f).unwrap());
        let f = parse("G (green -> X red)").unwrap();
        assert!(!crate::valid(&cat, &f).unwrap());
        let f = parse("(!red U yellow)").unwrap();
        assert!(crate::holds_at(&cat, &f, 0).unwrap());
    }
}

//! Linear temporal logic over infinite temporal databases.
//!
//! The paper's introduction takes from concurrent-program verification the
//! concern with infinite, repeating behaviors and observes that
//! *"model-checking is essentially a form of query evaluation on a special
//! type of database"*. This crate makes that remark executable: a
//! point-based LTL dialect (with both unbounded and metric/bounded
//! operators) is compiled to the two-sorted first-order language of §4 and
//! evaluated by the generalized-relation algebra — so `G F p` really
//! quantifies over all of `Z`, not over a finite unrolling.
//!
//! Propositions are unary (temporal arity 1, data arity 0) predicates of a
//! [`itd_query::Catalog`]; time is `Z` (bi-infinite, like the paper's
//! model). Operators:
//!
//! | syntax | semantics at `t` |
//! |---|---|
//! | `Prop(p)` | `p(t)` |
//! | `X φ` | `φ` at `t + 1` |
//! | `F φ` / `G φ` | ∃/∀ `t' ≥ t`: `φ(t')` |
//! | `F_within(d, φ)` / `G_within(d, φ)` | ∃/∀ `t' ∈ [t, t+d]` |
//! | `U(φ, ψ)` | ∃ `t' ≥ t`: `ψ(t')` ∧ ∀ `s ∈ [t, t'−1]`: `φ(s)` |
//! | `P φ` (previously), `O φ` (once), `H φ` (historically) | past mirrors |
//!
//! Entry points: [`Tl::compile`] (to an open formula with one free time
//! variable), [`holds_at`], [`valid`] (all `t`), [`satisfiable`]
//! (some `t`).

mod parse;

pub use parse::{parse, TlParseError};

use itd_query::{Catalog, CmpOp, Formula, QueryError, TemporalTerm};

/// A temporal-logic formula over named unary propositions.
///
/// # Examples
/// ```
/// use itd_core::{GenRelation, GenTuple, Lrp, Schema};
/// use itd_query::MemoryCatalog;
/// use itd_tl::{valid, Tl};
///
/// let mut cat = MemoryCatalog::new();
/// cat.insert("tick", GenRelation::new(
///     Schema::new(1, 0),
///     vec![GenTuple::unconstrained(vec![Lrp::new(0, 4).unwrap()], vec![])],
/// ).unwrap());
/// // Ticks recur forever: G F tick — over all of Z, not a finite prefix.
/// assert!(valid(&cat, &Tl::always(Tl::eventually(Tl::prop("tick")))).unwrap());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tl {
    /// Atomic proposition `p(t)`.
    Prop(String),
    /// Negation.
    Not(Box<Tl>),
    /// Conjunction.
    And(Box<Tl>, Box<Tl>),
    /// Disjunction.
    Or(Box<Tl>, Box<Tl>),
    /// Implication.
    Implies(Box<Tl>, Box<Tl>),
    /// Next: `φ` at `t + 1`.
    Next(Box<Tl>),
    /// Previously: `φ` at `t − 1`.
    Prev(Box<Tl>),
    /// Eventually (`F φ`): at some `t' ≥ t`.
    Eventually(Box<Tl>),
    /// Always (`G φ`): at every `t' ≥ t`.
    Always(Box<Tl>),
    /// Once (`O φ`): at some `t' ≤ t`.
    Once(Box<Tl>),
    /// Historically (`H φ`): at every `t' ≤ t`.
    Historically(Box<Tl>),
    /// Bounded eventually: at some `t' ∈ [t, t + d]`.
    EventuallyWithin(u32, Box<Tl>),
    /// Bounded always: at every `t' ∈ [t, t + d]`.
    AlwaysWithin(u32, Box<Tl>),
    /// Until: `φ U ψ`.
    Until(Box<Tl>, Box<Tl>),
}

impl Tl {
    /// Atomic proposition.
    pub fn prop(name: impl Into<String>) -> Tl {
        Tl::Prop(name.into())
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Tl) -> Tl {
        Tl::Not(Box::new(f))
    }

    /// Conjunction.
    pub fn and(a: Tl, b: Tl) -> Tl {
        Tl::And(Box::new(a), Box::new(b))
    }

    /// Disjunction.
    pub fn or(a: Tl, b: Tl) -> Tl {
        Tl::Or(Box::new(a), Box::new(b))
    }

    /// Implication.
    pub fn implies(a: Tl, b: Tl) -> Tl {
        Tl::Implies(Box::new(a), Box::new(b))
    }

    /// `X φ`.
    pub fn next(f: Tl) -> Tl {
        Tl::Next(Box::new(f))
    }

    /// `Y φ` (previous instant).
    pub fn prev(f: Tl) -> Tl {
        Tl::Prev(Box::new(f))
    }

    /// `F φ`.
    pub fn eventually(f: Tl) -> Tl {
        Tl::Eventually(Box::new(f))
    }

    /// `G φ`.
    pub fn always(f: Tl) -> Tl {
        Tl::Always(Box::new(f))
    }

    /// `O φ` (once, in the past).
    pub fn once(f: Tl) -> Tl {
        Tl::Once(Box::new(f))
    }

    /// `H φ` (historically).
    pub fn historically(f: Tl) -> Tl {
        Tl::Historically(Box::new(f))
    }

    /// `F_{≤d} φ`.
    pub fn eventually_within(d: u32, f: Tl) -> Tl {
        Tl::EventuallyWithin(d, Box::new(f))
    }

    /// `G_{≤d} φ`.
    pub fn always_within(d: u32, f: Tl) -> Tl {
        Tl::AlwaysWithin(d, Box::new(f))
    }

    /// `φ U ψ`.
    pub fn until(a: Tl, b: Tl) -> Tl {
        Tl::Until(Box::new(a), Box::new(b))
    }

    /// Compiles to a first-order formula with the single free temporal
    /// variable `var`.
    ///
    /// Quantified time variables are generated fresh (`var`, `var_1`,
    /// `var_1_1`, …) so nesting cannot capture.
    pub fn compile(&self, var: &str) -> Formula {
        let mut counter = 0usize;
        self.compile_inner(var, &mut counter)
    }

    fn compile_inner(&self, t: &str, counter: &mut usize) -> Formula {
        let fresh = |counter: &mut usize| {
            *counter += 1;
            format!("{t}_{counter}")
        };
        let var = |name: &str| TemporalTerm::var(name);
        let cmp = |l: TemporalTerm, op: CmpOp, r: TemporalTerm| Formula::TempCmp {
            left: l,
            op,
            right: r,
        };
        match self {
            Tl::Prop(p) => Formula::Pred {
                name: p.clone(),
                temporal: vec![var(t)],
                data: vec![],
            },
            Tl::Not(f) => Formula::not(f.compile_inner(t, counter)),
            Tl::And(a, b) => Formula::and(a.compile_inner(t, counter), b.compile_inner(t, counter)),
            Tl::Or(a, b) => Formula::or(a.compile_inner(t, counter), b.compile_inner(t, counter)),
            Tl::Implies(a, b) => {
                Formula::implies(a.compile_inner(t, counter), b.compile_inner(t, counter))
            }
            Tl::Next(f) | Tl::Prev(f) => {
                // φ at t ± 1:  ∃u. u = t ± 1 ∧ φ(u)
                let delta = if matches!(self, Tl::Next(_)) { 1 } else { -1 };
                let u = fresh(counter);
                Formula::exists(
                    u.clone(),
                    Formula::and(
                        cmp(var(&u), CmpOp::Eq, TemporalTerm::var_plus(t, delta)),
                        f.compile_inner(&u, counter),
                    ),
                )
            }
            Tl::Eventually(f) | Tl::Once(f) => {
                let future = matches!(self, Tl::Eventually(_));
                let u = fresh(counter);
                let order = if future { CmpOp::Le } else { CmpOp::Ge };
                Formula::exists(
                    u.clone(),
                    Formula::and(cmp(var(t), order, var(&u)), f.compile_inner(&u, counter)),
                )
            }
            Tl::Always(f) | Tl::Historically(f) => {
                let future = matches!(self, Tl::Always(_));
                let u = fresh(counter);
                let order = if future { CmpOp::Le } else { CmpOp::Ge };
                Formula::forall(
                    u.clone(),
                    Formula::implies(cmp(var(t), order, var(&u)), f.compile_inner(&u, counter)),
                )
            }
            Tl::EventuallyWithin(d, f) => {
                let u = fresh(counter);
                Formula::exists(
                    u.clone(),
                    Formula::and(
                        Formula::and(
                            cmp(var(t), CmpOp::Le, var(&u)),
                            cmp(var(&u), CmpOp::Le, TemporalTerm::var_plus(t, i64::from(*d))),
                        ),
                        f.compile_inner(&u, counter),
                    ),
                )
            }
            Tl::AlwaysWithin(d, f) => {
                let u = fresh(counter);
                Formula::forall(
                    u.clone(),
                    Formula::implies(
                        Formula::and(
                            cmp(var(t), CmpOp::Le, var(&u)),
                            cmp(var(&u), CmpOp::Le, TemporalTerm::var_plus(t, i64::from(*d))),
                        ),
                        f.compile_inner(&u, counter),
                    ),
                )
            }
            Tl::Until(a, b) => {
                // ∃u ≥ t: ψ(u) ∧ ∀s: t ≤ s < u → φ(s)
                let u = fresh(counter);
                let s = fresh(counter);
                Formula::exists(
                    u.clone(),
                    Formula::and(
                        Formula::and(
                            cmp(var(t), CmpOp::Le, var(&u)),
                            b.compile_inner(&u, counter),
                        ),
                        Formula::forall(
                            s.clone(),
                            Formula::implies(
                                Formula::and(
                                    cmp(var(t), CmpOp::Le, var(&s)),
                                    cmp(var(&s), CmpOp::Lt, var(&u)),
                                ),
                                a.compile_inner(&s, counter),
                            ),
                        ),
                    ),
                )
            }
        }
    }
}

/// Does the formula hold at the given time point?
///
/// # Errors
/// Unknown propositions, arity mismatches, algebra failures.
pub fn holds_at(catalog: &impl Catalog, f: &Tl, t: i64) -> Result<bool, QueryError> {
    let body = f.compile("t0");
    let closed = Formula::exists(
        "t0",
        Formula::and(
            Formula::TempCmp {
                left: TemporalTerm::var("t0"),
                op: CmpOp::Eq,
                right: TemporalTerm::Const(t),
            },
            body,
        ),
    );
    truth(catalog, &closed)
}

/// Is the formula true at *every* time point (validity over `Z`)?
///
/// # Errors
/// See [`holds_at`].
pub fn valid(catalog: &impl Catalog, f: &Tl) -> Result<bool, QueryError> {
    let closed = Formula::forall("t0", f.compile("t0"));
    truth(catalog, &closed)
}

/// Is the formula true at *some* time point?
///
/// # Errors
/// See [`holds_at`].
pub fn satisfiable(catalog: &impl Catalog, f: &Tl) -> Result<bool, QueryError> {
    let closed = Formula::exists("t0", f.compile("t0"));
    truth(catalog, &closed)
}

/// Evaluates a closed compiled formula through the unified query entry
/// point (the optimizer stays on — TL compilation produces deep
/// conjunction chains that benefit from the rewrites).
fn truth(catalog: &impl Catalog, closed: &Formula) -> Result<bool, QueryError> {
    itd_query::run(catalog, closed, itd_query::QueryOpts::new())?.truth()
}

#[cfg(test)]
mod tests {
    use super::*;
    use itd_core::{GenRelation, GenTuple, Lrp, Schema};
    use itd_query::MemoryCatalog;

    fn unary(period: i64, offset: i64) -> GenRelation {
        GenRelation::new(
            Schema::new(1, 0),
            vec![GenTuple::unconstrained(
                vec![Lrp::new(offset, period).unwrap()],
                vec![],
            )],
        )
        .unwrap()
    }

    /// green at 3k, yellow at 3k+1, red at 3k+2 — a periodic traffic light.
    fn light() -> MemoryCatalog {
        let mut cat = MemoryCatalog::new();
        cat.insert("green", unary(3, 0));
        cat.insert("yellow", unary(3, 1));
        cat.insert("red", unary(3, 2));
        cat
    }

    #[test]
    fn atomic_and_boolean() {
        let cat = light();
        assert!(holds_at(&cat, &Tl::prop("green"), 0).unwrap());
        assert!(holds_at(&cat, &Tl::prop("green"), 3_000_000).unwrap());
        assert!(!holds_at(&cat, &Tl::prop("green"), 1).unwrap());
        assert!(holds_at(&cat, &Tl::or(Tl::prop("green"), Tl::prop("yellow")), 1).unwrap());
        assert!(!holds_at(&cat, &Tl::and(Tl::prop("green"), Tl::prop("yellow")), 1).unwrap());
    }

    #[test]
    fn next_and_prev() {
        let cat = light();
        // green → X yellow, everywhere.
        assert!(valid(
            &cat,
            &Tl::implies(Tl::prop("green"), Tl::next(Tl::prop("yellow")))
        )
        .unwrap());
        // green → X red is wrong.
        assert!(!valid(
            &cat,
            &Tl::implies(Tl::prop("green"), Tl::next(Tl::prop("red")))
        )
        .unwrap());
        // yellow → Y green.
        assert!(valid(
            &cat,
            &Tl::implies(Tl::prop("yellow"), Tl::prev(Tl::prop("green")))
        )
        .unwrap());
    }

    #[test]
    fn unbounded_future_and_past() {
        let cat = light();
        // GF green: from every point, green recurs.
        assert!(valid(&cat, &Tl::eventually(Tl::prop("green"))).unwrap());
        // G green is false; F green true at any point.
        assert!(!valid(&cat, &Tl::prop("green")).unwrap());
        assert!(holds_at(&cat, &Tl::eventually(Tl::prop("green")), 17).unwrap());
        // O green (once in the past) also always true on Z.
        assert!(valid(&cat, &Tl::once(Tl::prop("green"))).unwrap());
        // H (green ∨ yellow ∨ red) — the phases cover all time.
        let any = Tl::or(
            Tl::prop("green"),
            Tl::or(Tl::prop("yellow"), Tl::prop("red")),
        );
        assert!(valid(&cat, &Tl::historically(any.clone())).unwrap());
        assert!(valid(&cat, &Tl::always(any)).unwrap());
    }

    #[test]
    fn bounded_operators() {
        let cat = light();
        // Within any window of length 2 starting anywhere, some phase is
        // green... false (period 3, window 3 needed).
        assert!(!valid(&cat, &Tl::eventually_within(1, Tl::prop("green"))).unwrap());
        assert!(valid(&cat, &Tl::eventually_within(2, Tl::prop("green"))).unwrap());
        // G_{≤1} of (not yellow) at a red point: red then green — true.
        assert!(holds_at(&cat, &Tl::always_within(1, Tl::not(Tl::prop("yellow"))), 2).unwrap());
        assert!(!holds_at(&cat, &Tl::always_within(2, Tl::not(Tl::prop("yellow"))), 2).unwrap());
    }

    #[test]
    fn until() {
        let cat = light();
        // At a green point: ¬red U yellow (yellow arrives at +1 with no red
        // before).
        assert!(holds_at(
            &cat,
            &Tl::until(Tl::not(Tl::prop("red")), Tl::prop("yellow")),
            0
        )
        .unwrap());
        // At a yellow point: green U red is false (current instant is not
        // green and red needs one yellow step first... actually U requires
        // φ at every s in [t, t'): s = t itself is yellow, not green —
        // unless t' = t, but red(t) is false at yellow).
        assert!(!holds_at(&cat, &Tl::until(Tl::prop("green"), Tl::prop("red")), 1).unwrap());
        // ψ now satisfies U immediately regardless of φ.
        assert!(holds_at(&cat, &Tl::until(Tl::prop("red"), Tl::prop("yellow")), 1).unwrap());
    }

    #[test]
    fn classic_equivalences_on_this_model() {
        let cat = light();
        let p = Tl::prop("green");
        // ¬F¬p ≡ Gp.
        let lhs = Tl::not(Tl::eventually(Tl::not(p.clone())));
        let rhs = Tl::always(p.clone());
        for t in [-4, 0, 5] {
            assert_eq!(
                holds_at(&cat, &lhs, t).unwrap(),
                holds_at(&cat, &rhs, t).unwrap(),
                "t = {t}"
            );
        }
        // true U p ≡ F p.
        let tru = Tl::or(p.clone(), Tl::not(p.clone()));
        let lhs = Tl::until(tru, p.clone());
        let rhs = Tl::eventually(p);
        for t in [-2, 1, 2] {
            assert_eq!(
                holds_at(&cat, &lhs, t).unwrap(),
                holds_at(&cat, &rhs, t).unwrap(),
                "t = {t}"
            );
        }
    }

    #[test]
    fn bounded_agrees_with_window_semantics() {
        // Brute-force oracle for bounded operators on the light model.
        let cat = light();
        let is_green = |t: i64| t.rem_euclid(3) == 0;
        for t in -5..5 {
            for d in 0..4u32 {
                let expect_f = (t..=t + i64::from(d)).any(is_green);
                let expect_g = (t..=t + i64::from(d)).all(is_green);
                assert_eq!(
                    holds_at(&cat, &Tl::eventually_within(d, Tl::prop("green")), t).unwrap(),
                    expect_f,
                    "F≤{d} at {t}"
                );
                assert_eq!(
                    holds_at(&cat, &Tl::always_within(d, Tl::prop("green")), t).unwrap(),
                    expect_g,
                    "G≤{d} at {t}"
                );
            }
        }
    }

    #[test]
    fn unknown_prop_errors() {
        let cat = light();
        assert!(holds_at(&cat, &Tl::prop("nosuch"), 0).is_err());
    }
}

//! The 3-SAT ↔ complement-nonemptiness reduction of Theorem 3.6.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use itd_core::{Atom, GenRelation, GenTuple, Lrp, Schema};

/// A literal: variable index plus polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lit {
    /// Variable index (0-based).
    pub var: usize,
    /// `true` for the positive literal `uᵢ`, `false` for `¬uᵢ`.
    pub positive: bool,
}

/// A 3-CNF formula.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cnf {
    /// Number of variables (`m` — becomes the temporal arity).
    pub num_vars: usize,
    /// Clauses of exactly three literals (`l` — becomes the tuple count).
    pub clauses: Vec<[Lit; 3]>,
}

impl Cnf {
    /// Evaluates under an assignment.
    ///
    /// # Panics
    /// If the assignment is shorter than `num_vars`.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        assert!(assignment.len() >= self.num_vars);
        self.clauses
            .iter()
            .all(|clause| clause.iter().any(|lit| assignment[lit.var] == lit.positive))
    }

    /// The Theorem 3.6 reduction: a purely temporal generalized relation
    /// `r` with one column per variable and one tuple per clause, such that
    /// `¬r` is nonempty iff the formula is satisfiable.
    ///
    /// Truth encoding: `uᵢ` is true iff `Xᵢ ≥ 0`. Each clause contributes
    /// the tuple whose constraints are the **negations** of its literals
    /// (`Xᵢ < 0` for a positive literal, `Xᵢ ≥ 0` for a negative one), so
    /// `r` covers exactly the assignments falsifying some clause.
    ///
    /// # Panics
    /// On arithmetic overflow (impossible: all constants are 0/−1).
    pub fn to_relation(&self) -> GenRelation {
        let schema = Schema::new(self.num_vars, 0);
        let mut rel = GenRelation::empty(schema);
        for clause in &self.clauses {
            let mut atoms = Vec::with_capacity(3);
            for lit in clause {
                atoms.push(if lit.positive {
                    Atom::le(lit.var, -1) // Xᵢ < 0
                } else {
                    Atom::ge(lit.var, 0)
                });
            }
            let lrps = vec![Lrp::all(); self.num_vars];
            let tuple = GenTuple::builder()
                .lrps(lrps)
                .atoms(atoms.iter().copied())
                .build()
                .expect("small constants");
            rel.push(tuple).expect("schema matches");
        }
        rel
    }
}

/// Exhaustive SAT check (the oracle the reduction is validated against).
/// Returns a satisfying assignment if one exists.
pub fn brute_force_sat(cnf: &Cnf) -> Option<Vec<bool>> {
    assert!(cnf.num_vars < 26, "brute force limited to small instances");
    let n = cnf.num_vars;
    for bits in 0u64..(1 << n) {
        let assignment: Vec<bool> = (0..n).map(|i| bits & (1 << i) != 0).collect();
        if cnf.eval(&assignment) {
            return Some(assignment);
        }
    }
    None
}

/// Solves 3-SAT through the paper's machinery: build the reduction
/// relation, take its complement (Appendix A.6), and check nonemptiness
/// (Theorem 3.5). A witness tuple of the complement is decoded back into a
/// satisfying assignment.
///
/// # Examples
/// ```
/// use itd_workload::{random_3cnf, solve_via_complement};
/// let cnf = random_3cnf(4, 10, 7);
/// if let Some(assignment) = solve_via_complement(&cnf).unwrap() {
///     assert!(cnf.eval(&assignment));
/// }
/// ```
///
/// # Errors
/// Arithmetic/limit failures from the complement computation.
pub fn solve_via_complement(cnf: &Cnf) -> itd_core::Result<Option<Vec<bool>>> {
    let r = cnf.to_relation();
    let complement = r.complement_temporal()?;
    for row in complement.rows() {
        let tuple = row.to_tuple();
        if tuple.is_empty()? {
            continue;
        }
        // A concrete point of the tuple gives the assignment.
        let (_, _, grid) = itd_core::grid_view(&tuple.normalize()?[0])?;
        let Some(point) = grid.solution().map_err(itd_core::CoreError::Numth)? else {
            continue;
        };
        // Grid coordinates equal the actual values here (period 1,
        // offsets 0): uᵢ = (Xᵢ >= 0).
        let assignment: Vec<bool> = point.iter().map(|&x| x >= 0).collect();
        debug_assert!(cnf.eval(&assignment));
        return Ok(Some(assignment));
    }
    Ok(None)
}

/// Deterministic random 3-CNF with distinct variables per clause.
///
/// # Panics
/// If `num_vars < 3`.
pub fn random_3cnf(num_vars: usize, num_clauses: usize, seed: u64) -> Cnf {
    assert!(num_vars >= 3, "need at least 3 variables");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut clauses = Vec::with_capacity(num_clauses);
    for _ in 0..num_clauses {
        let mut vars = [0usize; 3];
        vars[0] = rng.gen_range(0..num_vars);
        loop {
            vars[1] = rng.gen_range(0..num_vars);
            if vars[1] != vars[0] {
                break;
            }
        }
        loop {
            vars[2] = rng.gen_range(0..num_vars);
            if vars[2] != vars[0] && vars[2] != vars[1] {
                break;
            }
        }
        let clause = [
            Lit {
                var: vars[0],
                positive: rng.gen_bool(0.5),
            },
            Lit {
                var: vars[1],
                positive: rng.gen_bool(0.5),
            },
            Lit {
                var: vars[2],
                positive: rng.gen_bool(0.5),
            },
        ];
        clauses.push(clause);
    }
    Cnf { num_vars, clauses }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(var: usize, positive: bool) -> Lit {
        Lit { var, positive }
    }

    #[test]
    fn eval_cnf() {
        // (u0 ∨ ¬u1 ∨ u2)
        let cnf = Cnf {
            num_vars: 3,
            clauses: vec![[lit(0, true), lit(1, false), lit(2, true)]],
        };
        assert!(cnf.eval(&[true, true, false]));
        assert!(cnf.eval(&[false, false, false]));
        assert!(!cnf.eval(&[false, true, false]));
    }

    #[test]
    fn reduction_relation_covers_falsifying_assignments() {
        let cnf = Cnf {
            num_vars: 3,
            clauses: vec![[lit(0, true), lit(1, true), lit(2, true)]],
        };
        let r = cnf.to_relation();
        // The only falsifying assignments have all three negative.
        assert!(r.contains(&[-1, -5, -2], &[]));
        assert!(!r.contains(&[0, -5, -2], &[]));
    }

    #[test]
    fn satisfiable_instance() {
        let cnf = Cnf {
            num_vars: 3,
            clauses: vec![
                [lit(0, true), lit(1, true), lit(2, true)],
                [lit(0, false), lit(1, false), lit(2, false)],
            ],
        };
        let sol = solve_via_complement(&cnf).unwrap().expect("satisfiable");
        assert!(cnf.eval(&sol));
        assert!(brute_force_sat(&cnf).is_some());
    }

    #[test]
    fn unsatisfiable_instance() {
        // All 8 sign patterns over 3 variables: unsatisfiable.
        let mut clauses = Vec::new();
        for bits in 0..8u8 {
            clauses.push([
                lit(0, bits & 1 != 0),
                lit(1, bits & 2 != 0),
                lit(2, bits & 4 != 0),
            ]);
        }
        let cnf = Cnf {
            num_vars: 3,
            clauses,
        };
        assert!(brute_force_sat(&cnf).is_none());
        assert!(solve_via_complement(&cnf).unwrap().is_none());
    }

    #[test]
    fn random_instances_agree_with_brute_force() {
        for seed in 0..12 {
            let cnf = random_3cnf(4, 10, seed);
            let expected = brute_force_sat(&cnf).is_some();
            let got = solve_via_complement(&cnf).unwrap();
            assert_eq!(got.is_some(), expected, "seed {seed}: {cnf:?}");
            if let Some(sol) = got {
                assert!(cnf.eval(&sol), "seed {seed}");
            }
        }
    }

    #[test]
    fn random_3cnf_is_deterministic_and_wellformed() {
        let a = random_3cnf(5, 7, 3);
        let b = random_3cnf(5, 7, 3);
        assert_eq!(a, b);
        assert_eq!(a.clauses.len(), 7);
        for clause in &a.clauses {
            assert!(clause[0].var != clause[1].var);
            assert!(clause[0].var != clause[2].var);
            assert!(clause[1].var != clause[2].var);
            for l in clause {
                assert!(l.var < 5);
            }
        }
    }
}

//! Seeded generation of normalized generalized relations.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use itd_core::{Atom, ConstraintSystem, GenRelation, GenTuple, Lrp, Schema, Value};

/// Parameters of a generated relation.
#[derive(Debug, Clone, Copy)]
pub struct RelationSpec {
    /// Number of generalized tuples (`N` in the paper's analysis).
    pub tuples: usize,
    /// Temporal arity (`m`).
    pub temporal_arity: usize,
    /// Common period of all lrps (`k`); the relation is generated in
    /// normal form at this period.
    pub period: i64,
    /// Data arity; data values are drawn from a small string alphabet.
    pub data_arity: usize,
    /// Probability that any given ordered attribute pair gets a difference
    /// constraint, and that an attribute gets bounds.
    pub constraint_density: f64,
    /// Magnitude bound (in grid steps) for constraint constants.
    pub bound_steps: i64,
}

impl Default for RelationSpec {
    fn default() -> Self {
        RelationSpec {
            tuples: 16,
            temporal_arity: 2,
            period: 6,
            data_arity: 0,
            constraint_density: 0.4,
            bound_steps: 8,
        }
    }
}

/// Generates a normalized relation deterministically from a seed.
///
/// Every tuple's lrps share `spec.period`; constraints are built in grid
/// coordinates (so they are grid-aligned by construction) and mapped back
/// through `from_grid`, producing tuples that satisfy
/// [`GenTuple::is_normal_form`]. Unsatisfiable draws are discarded and
/// redrawn, so the relation has exactly `spec.tuples` nonempty tuples.
///
/// # Panics
/// If the spec is degenerate (`period <= 0`) or arithmetic overflows —
/// generation parameters are caller-controlled test inputs.
pub fn random_relation(spec: &RelationSpec, seed: u64) -> GenRelation {
    assert!(spec.period > 0, "period must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = Schema::new(spec.temporal_arity, spec.data_arity);
    let mut rel = GenRelation::empty(schema);
    let alphabet = ["a", "b", "c", "d"];
    while rel.tuple_count() < spec.tuples {
        let lrps: Vec<Lrp> = (0..spec.temporal_arity)
            .map(|_| Lrp::new(rng.gen_range(0..spec.period), spec.period).expect("period > 0"))
            .collect();
        let anchors: Vec<i64> = lrps.iter().map(Lrp::offset).collect();

        // Random grid constraints.
        let mut grid = ConstraintSystem::unconstrained(spec.temporal_arity);
        let mut overflow = false;
        for i in 0..spec.temporal_arity {
            for j in 0..spec.temporal_arity {
                if i != j && rng.gen_bool(spec.constraint_density) {
                    let a = rng.gen_range(0..=spec.bound_steps);
                    if grid.add(Atom::diff_le(i, j, a)).is_err() {
                        overflow = true;
                    }
                }
            }
            if rng.gen_bool(spec.constraint_density) {
                let lo = rng.gen_range(-spec.bound_steps..=0);
                let hi = rng.gen_range(0..=spec.bound_steps);
                if grid.add(Atom::ge(i, lo)).is_err() || grid.add(Atom::le(i, hi)).is_err() {
                    overflow = true;
                }
            }
        }
        if overflow || !grid.is_satisfiable() {
            continue;
        }
        let cons = grid
            .from_grid(&anchors, spec.period)
            .expect("grid bounds are small");

        let data: Vec<Value> = (0..spec.data_arity)
            .map(|_| Value::str(alphabet[rng.gen_range(0..alphabet.len())]))
            .collect();
        let tuple = GenTuple::builder()
            .lrps(lrps)
            .constraints(cons)
            .data(data)
            .build()
            .expect("arities match");
        rel.push(tuple).expect("schema matches");
    }
    rel
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_by_seed() {
        let spec = RelationSpec::default();
        let a = random_relation(&spec, 7);
        let b = random_relation(&spec, 7);
        let c = random_relation(&spec, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn respects_spec() {
        let spec = RelationSpec {
            tuples: 9,
            temporal_arity: 3,
            period: 4,
            data_arity: 2,
            ..RelationSpec::default()
        };
        let r = random_relation(&spec, 1);
        assert_eq!(r.tuple_count(), 9);
        assert_eq!(r.schema(), Schema::new(3, 2));
        for t in r.rows() {
            for l in t.lrps() {
                assert_eq!(l.period(), 4);
            }
            assert!(t.constraints().is_satisfiable());
        }
    }

    #[test]
    fn tuples_are_normal_form_and_nonempty() {
        let spec = RelationSpec {
            tuples: 12,
            temporal_arity: 2,
            period: 5,
            constraint_density: 0.7,
            ..RelationSpec::default()
        };
        let r = random_relation(&spec, 99);
        for row in r.rows() {
            let t = row.to_tuple();
            assert!(t.is_normal_form().unwrap(), "{t}");
            assert!(!t.is_empty().unwrap(), "{t}");
        }
    }

    #[test]
    fn zero_density_gives_unconstrained() {
        let spec = RelationSpec {
            tuples: 3,
            constraint_density: 0.0,
            ..RelationSpec::default()
        };
        let r = random_relation(&spec, 5);
        for t in r.rows() {
            assert!(t.constraints().is_unconstrained());
        }
    }
}

//! Workload generation for the benchmark harness and the stress tests.
//!
//! Two halves:
//!
//! * [`gen`] — deterministic, seeded generators of normalized generalized
//!   relations with controlled parameters (`N` tuples, `m` temporal
//!   attributes, period `k`, constraint density). These drive the Table 2 /
//!   Table 3 scaling benchmarks: the paper's complexity results are stated
//!   for normalized databases, so the generator emits tuples already in
//!   normal form (grid-aligned constraints via
//!   [`itd_constraint::ConstraintSystem::from_grid`]).
//! * [`satred`] — the 3-SAT machinery of Theorem 3.6: random 3-CNF
//!   instances, a brute-force SAT oracle, the reduction of a formula to a
//!   generalized relation whose **complement is nonempty iff the formula is
//!   satisfiable**, and a solver that runs the reduction through the actual
//!   complement machinery (Appendix A.6) and extracts a satisfying
//!   assignment from a witness tuple.

pub mod gen;
pub mod satred;

pub use gen::{random_relation, RelationSpec};
pub use satred::{brute_force_sat, random_3cnf, solve_via_complement, Cnf, Lit};

//! Relation complement / negation (Appendix A.6).

use std::collections::HashMap;

use itd_constraint::ConstraintSystem;
use itd_lrp::Lrp;

use crate::error::CoreError;
use crate::exec::{ExecContext, OpKind};
use crate::tuple::GenTuple;
use crate::Result;

/// Default ceiling on the `k^m` free extensions the complement may
/// enumerate.
pub const DEFAULT_COMPLEMENT_LIMIT: u64 = 1 << 22;

/// Complement of a purely temporal set of tuples within `Z^m`:
/// `[n₁, …, n_m] − r` in the paper's notation.
///
/// Algorithm (Appendix A.6):
/// 1. normalize every tuple and refine all of them to the database-wide
///    period `k` (lcm of all tuple periods);
/// 2. group tuples by **free extension** (their vector of residues mod `k`);
/// 3. for each of the `k^m` possible free extensions: if no tuple has it,
///    emit it unconstrained; otherwise negate the disjunction of the
///    attached constraint systems — incrementally, converting
///    `∧ᵢ (∨ⱼ ¬aᵢⱼ)` to DNF one conjunct at a time and reducing after every
///    step (keeping only the strongest constraint of each type is exactly
///    what the DBM closure does), which keeps each intermediate within the
///    `(N+1)^{m(m+1)}` bound of Theorem A.1.
///
/// The `k^m` enumeration is the intrinsic exponential of general-complexity
/// negation (Table 2); `limit` guards against accidental blow-ups.
///
/// # Errors
/// [`CoreError::TooManyExtensions`] when `k^m > limit`; arithmetic errors
/// otherwise.
///
/// # Panics
/// If tuples disagree on schema or have data attributes (the relation layer
/// checks this).
pub fn complement_tuples(
    tuples: &[GenTuple],
    temporal_arity: usize,
    limit: u64,
) -> Result<Vec<GenTuple>> {
    complement_tuples_in(tuples, temporal_arity, limit, &ExecContext::serial())
}

/// [`complement_tuples`] under an execution context: the `k^m` extension
/// enumeration is split into contiguous index ranges fanned over the
/// context's threads (outputs concatenated in range order, so the result
/// is identical at any thread count), and the context's
/// [`OpKind::Complement`] counters record the period, the extensions
/// enumerated, the grid-empty disjuncts pruned, and — via the probe
/// counters — how many extensions hit a stored residue group versus
/// bypassed the negation machinery entirely.
///
/// # Errors
/// See [`complement_tuples`].
///
/// # Panics
/// See [`complement_tuples`].
pub fn complement_tuples_in(
    tuples: &[GenTuple],
    temporal_arity: usize,
    limit: u64,
    ctx: &ExecContext,
) -> Result<Vec<GenTuple>> {
    let m = temporal_arity;
    let counters = ctx.op(OpKind::Complement);
    // 0-ary relations: the space is a single empty tuple.
    if m == 0 {
        let nonempty = tuples.iter().any(|t| t.constraints().is_satisfiable());
        return Ok(if nonempty {
            vec![]
        } else {
            vec![GenTuple::unconstrained(vec![], vec![])]
        });
    }

    // Step 1: normalize and find the database period.
    let mut normal: Vec<GenTuple> = Vec::new();
    for t in tuples {
        assert!(
            t.data().is_empty(),
            "complement requires purely temporal tuples"
        );
        assert_eq!(t.lrps().len(), m, "schema mismatch in complement");
        normal.extend(t.normalize()?);
    }
    let k = Lrp::common_period(normal.iter().flat_map(|t| t.lrps().iter()))?;
    // Routed through the context so a traced run attributes the period to
    // the enclosing complement span (fetch_max cannot be delta-attributed).
    ctx.record_period(OpKind::Complement, k);

    let extensions = (k as u64).checked_pow(m as u32).unwrap_or(u64::MAX);
    if extensions > limit {
        return Err(CoreError::TooManyExtensions {
            period: k,
            arity: m,
            limit,
        });
    }
    counters.add_pairs(extensions);

    // Refine every normal tuple to the global period and group by residues.
    let mut groups: HashMap<Vec<i64>, Vec<ConstraintSystem>> = HashMap::new();
    for t in &normal {
        for refined in refine_tuple_to(t, k)? {
            let residues: Vec<i64> = refined.lrps().iter().map(Lrp::offset).collect();
            groups
                .entry(residues)
                .or_default()
                .push(refined.constraints().clone());
        }
    }

    // Step 3: enumerate all k^m residue vectors. A linear index in
    // [0, k^m) maps to one vector (big-endian base-k digits), which lets a
    // contiguous index range be handed to each worker.
    let worker = |range: std::ops::Range<u64>| -> Result<Vec<GenTuple>> {
        let mut out = Vec::new();
        for i in range {
            let residues = residue_digits(i, k, m);
            let lrps: Vec<Lrp> = residues
                .iter()
                .map(|&r| Lrp::new(r, k).expect("k > 0"))
                .collect();
            match groups.get(&residues) {
                // The residue-vector grouping is itself an index: a missed
                // extension skips the negation machinery entirely.
                None => {
                    counters.add_index_pruned(1);
                    out.push(GenTuple::unconstrained(lrps, vec![]));
                }
                Some(systems) => {
                    counters.add_probes(1);
                    for d in negate_disjunction(systems, m)? {
                        let t = GenTuple::from_parts(lrps.clone(), d, vec![])?;
                        // Prune grid-empty disjuncts (misaligned bounds).
                        if !t.is_empty()? {
                            out.push(t);
                        } else {
                            counters.add_pruned(1);
                        }
                    }
                }
            }
        }
        Ok(out)
    };

    let workers = (ctx.threads() as u64).min(extensions);
    if workers <= 1 {
        return worker(0..extensions);
    }
    let chunk = extensions.div_ceil(workers);
    let per_chunk: Vec<Result<Vec<GenTuple>>> = std::thread::scope(|scope| {
        let worker = &worker;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let range = (w * chunk).min(extensions)..((w + 1) * chunk).min(extensions);
                scope.spawn(move || worker(range))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("complement worker panicked"))
            .collect()
    });
    let mut out = Vec::new();
    for r in per_chunk {
        out.extend(r?);
    }
    Ok(out)
}

/// The `i`-th residue vector of `[0, k)^m` in mixed-radix order (the last
/// coordinate varies fastest).
fn residue_digits(i: u64, k: i64, m: usize) -> Vec<i64> {
    let mut residues = vec![0i64; m];
    let mut rem = i;
    for pos in (0..m).rev() {
        residues[pos] = (rem % k as u64) as i64;
        rem /= k as u64;
    }
    residues
}

/// Refines a normal tuple so all its lrps have period exactly `k`
/// (points become period-`k` classes pinned by an equality, which
/// normalization has already recorded in the constraints).
fn refine_tuple_to(t: &GenTuple, k: i64) -> Result<Vec<GenTuple>> {
    let mut choices: Vec<Vec<Lrp>> = Vec::with_capacity(t.lrps().len());
    for l in t.lrps() {
        if l.is_point() {
            // The augmented constraints pin Xi = c; represent the free
            // extension as the residue class of c.
            choices.push(vec![Lrp::new(l.offset(), k)?]);
        } else if l.period() == k {
            choices.push(vec![*l]);
        } else {
            choices.push(l.refine_to_period(k)?);
        }
    }
    // For points we must also make the pin explicit in the constraints so
    // the complement excludes only the pinned residue members.
    let mut cons = t.constraints().clone();
    for (i, l) in t.lrps().iter().enumerate() {
        if l.is_point() {
            cons.add(itd_constraint::Atom::eq(i, l.offset()))?;
        }
    }

    let mut out = Vec::new();
    let mut idx = vec![0usize; choices.len()];
    loop {
        let lrps: Vec<Lrp> = idx.iter().zip(&choices).map(|(&i, c)| c[i]).collect();
        out.push(GenTuple::from_parts(lrps, cons.clone(), vec![])?);
        let mut pos = choices.len();
        loop {
            if pos == 0 {
                return Ok(out);
            }
            pos -= 1;
            idx[pos] += 1;
            if idx[pos] < choices[pos].len() {
                break;
            }
            idx[pos] = 0;
        }
    }
}

/// `¬(C₁ ∨ … ∨ C_N)` as a reduced list of conjunctive systems.
fn negate_disjunction(systems: &[ConstraintSystem], arity: usize) -> Result<Vec<ConstraintSystem>> {
    let mut disjuncts = vec![ConstraintSystem::unconstrained(arity)];
    for c in systems {
        let Some(neg_atoms) = c.negation()? else {
            continue; // c unsatisfiable: covers nothing, negation is ⊤
        };
        let mut next: Vec<ConstraintSystem> = Vec::new();
        for d in &disjuncts {
            for atom in &neg_atoms {
                let mut nd = d.clone();
                nd.add(*atom)?;
                if !nd.is_satisfiable() {
                    continue;
                }
                // Reduction: drop duplicates and entailed disjuncts.
                if next.iter().any(|kept| nd.entails(kept)) {
                    continue;
                }
                next.retain(|kept| !kept.entails(&nd));
                next.push(nd);
            }
        }
        disjuncts = next;
        if disjuncts.is_empty() {
            break;
        }
    }
    Ok(disjuncts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::materialize_tuples;
    use itd_constraint::Atom;
    use proptest::prelude::*;

    fn lrp(c: i64, k: i64) -> Lrp {
        Lrp::new(c, k).unwrap()
    }

    /// Compare `complement` with brute-force set complement on a window.
    fn check_window(tuples: &[GenTuple], m: usize, lo: i64, hi: i64) {
        let comp = complement_tuples(tuples, m, DEFAULT_COMPLEMENT_LIMIT).unwrap();
        let inside = materialize_tuples(tuples, lo, hi);
        let comp_set = materialize_tuples(&comp, lo, hi);
        // Every point in the window is in exactly one of the two.
        let mut point = vec![lo; m];
        loop {
            let key = (point.clone(), vec![]);
            let in_r = inside.contains(&key);
            let in_c = comp_set.contains(&key);
            assert!(in_r != in_c, "point {point:?}: in_r={in_r} in_c={in_c}");
            let mut pos = m;
            loop {
                if pos == 0 {
                    return;
                }
                pos -= 1;
                point[pos] += 1;
                if point[pos] <= hi {
                    break;
                }
                point[pos] = lo;
            }
        }
    }

    #[test]
    fn complement_of_empty_is_everything() {
        let comp = complement_tuples(&[], 1, 1000).unwrap();
        assert_eq!(comp.len(), 1);
        assert!(comp[0].contains(&[12345], &[]));
        assert!(comp[0].contains(&[-999], &[]));
    }

    #[test]
    fn complement_of_residue_class() {
        // ¬(even) = odd
        let r = vec![GenTuple::unconstrained(vec![lrp(0, 2)], vec![])];
        check_window(&r, 1, -10, 10);
    }

    #[test]
    fn complement_of_bounded_piece() {
        // ¬(even ∧ X ≥ 0) = odd ∪ (even ∧ X < 0)
        let r = vec![GenTuple::builder()
            .lrps(vec![lrp(0, 2)])
            .atoms([Atom::ge(0, 0)])
            .build()
            .unwrap()];
        check_window(&r, 1, -10, 10);
    }

    #[test]
    fn complement_of_union() {
        let r = vec![
            GenTuple::builder()
                .lrps(vec![lrp(0, 3)])
                .atoms([Atom::ge(0, 0)])
                .build()
                .unwrap(),
            GenTuple::builder()
                .lrps(vec![lrp(1, 3)])
                .atoms([Atom::le(0, 6)])
                .build()
                .unwrap(),
        ];
        check_window(&r, 1, -10, 12);
    }

    #[test]
    fn complement_two_dimensional() {
        let r = vec![GenTuple::builder()
            .lrps(vec![lrp(0, 2), lrp(1, 2)])
            .atoms([Atom::diff_le(0, 1, 0)])
            .build()
            .unwrap()];
        check_window(&r, 2, -5, 6);
    }

    #[test]
    fn complement_with_points() {
        let r = vec![GenTuple::unconstrained(vec![Lrp::point(4)], vec![])];
        check_window(&r, 1, -6, 10);
    }

    #[test]
    fn double_complement_is_identity_on_window() {
        let r = vec![GenTuple::builder()
            .lrps(vec![lrp(1, 4)])
            .atoms([Atom::ge(0, -3)])
            .build()
            .unwrap()];
        let c1 = complement_tuples(&r, 1, 10_000).unwrap();
        let c2 = complement_tuples(&c1, 1, 10_000).unwrap();
        let original = materialize_tuples(&r, -15, 15);
        let roundtrip = materialize_tuples(&c2, -15, 15);
        assert_eq!(original, roundtrip);
    }

    #[test]
    fn zero_arity() {
        let full = complement_tuples(&[], 0, 10).unwrap();
        assert_eq!(full.len(), 1);
        let empty = complement_tuples(&[GenTuple::unconstrained(vec![], vec![])], 0, 10).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn limit_guard() {
        let r = vec![GenTuple::unconstrained(
            vec![lrp(0, 30), lrp(0, 30), lrp(0, 30), lrp(0, 30)],
            vec![],
        )];
        let err = complement_tuples(&r, 4, 1000).unwrap_err();
        assert!(matches!(err, CoreError::TooManyExtensions { .. }));
    }

    #[test]
    fn theorem_a1_size_bound() {
        // Negating N single-extension tuples yields at most
        // (N+1)^(m(m+1)) tuples (Theorem A.1). All tuples share the free
        // extension Z^m so the bound applies directly.
        for (m, n) in [(1usize, 4usize), (2, 3), (2, 5)] {
            let mut tuples = Vec::new();
            for i in 0..n {
                let mut atoms = vec![Atom::ge(0, i as i64 * 3 - 4)];
                if m > 1 {
                    atoms.push(Atom::diff_le(0, 1, i as i64 - 2));
                }
                tuples.push(
                    GenTuple::builder()
                        .lrps(vec![Lrp::all(); m])
                        .atoms(atoms.iter().copied())
                        .build()
                        .unwrap(),
                );
            }
            let comp = complement_tuples(&tuples, m, 1 << 20).unwrap();
            let bound = ((n + 1) as u64).pow((m * (m + 1)) as u32);
            assert!(
                (comp.len() as u64) <= bound,
                "m={m}, N={n}: {} > bound {bound}",
                comp.len()
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_complement_partitions_space(
            c1 in 0i64..3, k1 in 1i64..4,
            a in -4i64..4,
            c2 in 0i64..3, k2 in 1i64..4,
            b in -4i64..4,
            x in -10i64..10,
        ) {
            let r = vec![
                GenTuple::builder().lrps(vec![lrp(c1, k1)]).atoms([Atom::ge(0, a)]).build().unwrap(),
                GenTuple::builder().lrps(vec![lrp(c2, k2)]).atoms([Atom::le(0, b)]).build().unwrap(),
            ];
            let comp = complement_tuples(&r, 1, 100_000).unwrap();
            let in_r = r.iter().any(|t| t.contains(&[x], &[]));
            let in_c = comp.iter().any(|t| t.contains(&[x], &[]));
            prop_assert!(in_r != in_c, "x = {}", x);
        }
    }
}

//! Cross product (§3.6) and join (§3.7) at the tuple level.

use crate::tuple::GenTuple;
use crate::Result;

/// Cross product of two tuples: concatenated lrps and data, constraints
/// embedded side by side (§3.6).
///
/// # Errors
/// Arithmetic overflow in constraint closure.
pub fn cross_product_tuples(t1: &GenTuple, t2: &GenTuple) -> Result<GenTuple> {
    let (m1, m2) = (t1.lrps().len(), t2.lrps().len());
    let mut lrps = Vec::with_capacity(m1 + m2);
    lrps.extend_from_slice(t1.lrps());
    lrps.extend_from_slice(t2.lrps());
    let mut data = Vec::with_capacity(t1.data().len() + t2.data().len());
    data.extend_from_slice(t1.data());
    data.extend_from_slice(t2.data());

    let left_map: Vec<usize> = (0..m1).collect();
    let right_map: Vec<usize> = (m1..m1 + m2).collect();
    let cons = t1
        .constraints()
        .embed(m1 + m2, &left_map)
        .conjoin(&t2.constraints().embed(m1 + m2, &right_map))?;
    GenTuple::from_parts(lrps, cons, data)
}

/// Equi-join of two tuples on the given attribute pairs (§3.7).
///
/// `temporal_pairs` lists `(i, j)` meaning attribute `i` of `t1` must equal
/// attribute `j` of `t2`; `data_pairs` likewise for data attributes. The
/// result keeps **all** columns of both tuples (the joined temporal columns
/// are intersected lrps constrained equal, exactly the paper's "intersection
/// of the common columns"); project afterwards to drop duplicates.
///
/// Returns `None` if the join is syntactically empty.
///
/// # Errors
/// Arithmetic overflow.
///
/// # Panics
/// If a pair index is out of range.
pub fn join_tuples(
    t1: &GenTuple,
    t2: &GenTuple,
    temporal_pairs: &[(usize, usize)],
    data_pairs: &[(usize, usize)],
) -> Result<Option<GenTuple>> {
    for &(i, j) in data_pairs {
        if t1.data()[i] != t2.data()[j] {
            return Ok(None);
        }
    }
    let m1 = t1.lrps().len();
    let mut combined = cross_product_tuples(t1, t2)?;
    // Equality on joined temporal columns: refine both lrps to their
    // intersection and pin them equal.
    for &(i, j) in temporal_pairs {
        assert!(i < m1, "left join attribute out of range");
        let jr = m1 + j;
        assert!(
            jr < combined.lrps().len(),
            "right join attribute out of range"
        );
        let (mut lrps, mut cons, data) = combined.into_parts();
        let meet = match lrps[i].intersect(&lrps[jr])? {
            Some(l) => l,
            None => return Ok(None),
        };
        lrps[i] = meet;
        lrps[jr] = meet;
        cons.add(itd_constraint::Atom::diff_eq(i, jr, 0))?;
        if !cons.is_satisfiable() {
            return Ok(None);
        }
        combined = GenTuple::from_parts(lrps, cons, data)?;
    }
    Ok(Some(combined))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use itd_constraint::Atom;
    use itd_lrp::Lrp;

    fn lrp(c: i64, k: i64) -> Lrp {
        Lrp::new(c, k).unwrap()
    }

    #[test]
    fn cross_product_concatenates() {
        let t1 = GenTuple::builder()
            .lrps(vec![lrp(0, 2)])
            .atoms([Atom::ge(0, 4)])
            .data(vec![Value::str("a")])
            .build()
            .unwrap();
        let t2 = GenTuple::builder()
            .lrps(vec![lrp(1, 3), Lrp::point(9)])
            .atoms([Atom::diff_le(0, 1, 0)])
            .data(vec![Value::Int(7)])
            .build()
            .unwrap();
        let c = cross_product_tuples(&t1, &t2).unwrap();
        assert_eq!(c.schema(), crate::Schema::new(3, 2));
        assert_eq!(c.lrps(), &[lrp(0, 2), lrp(1, 3), Lrp::point(9)]);
        assert_eq!(c.data(), &[Value::str("a"), Value::Int(7)]);
        // t1's bound applies to column 0, t2's difference to columns 1, 2.
        assert!(c.contains(&[4, 7, 9], &[Value::str("a"), Value::Int(7)]));
        assert!(!c.contains(&[2, 7, 9], &[Value::str("a"), Value::Int(7)])); // X1 >= 4 fails
        assert!(!c.contains(&[4, 10, 9], &[Value::str("a"), Value::Int(7)])); // X2 <= X3 fails
    }

    #[test]
    fn cross_product_membership_is_product_semantics() {
        let t1 = GenTuple::builder()
            .lrps(vec![lrp(0, 2)])
            .atoms([Atom::ge(0, 0)])
            .build()
            .unwrap();
        let t2 = GenTuple::builder()
            .lrps(vec![lrp(1, 2)])
            .atoms([Atom::le(0, 9)])
            .build()
            .unwrap();
        let c = cross_product_tuples(&t1, &t2).unwrap();
        for x in -4..14 {
            for y in -4..14 {
                let expect = t1.contains(&[x], &[]) && t2.contains(&[y], &[]);
                assert_eq!(c.contains(&[x, y], &[]), expect, "({x},{y})");
            }
        }
    }

    #[test]
    fn join_pins_columns_equal() {
        // Join intervals sharing an endpoint: (X1, X2) ⋈ (Y1, Y2) on X2 = Y1
        // — the paper's interval-concatenation example (footnote 2).
        let t1 = GenTuple::builder()
            .lrps(vec![lrp(0, 10), lrp(2, 10)])
            .atoms([Atom::diff_eq(1, 0, 2)])
            .build()
            .unwrap();
        let t2 = GenTuple::builder()
            .lrps(vec![lrp(2, 5), lrp(4, 5)])
            .atoms([Atom::diff_eq(1, 0, 2)])
            .build()
            .unwrap();
        let j = join_tuples(&t1, &t2, &[(1, 0)], &[]).unwrap().unwrap();
        assert_eq!(j.schema().temporal(), 4);
        // Joined columns carry the intersected lrp 2 + 10n.
        assert_eq!(j.lrps()[1], lrp(2, 10));
        assert_eq!(j.lrps()[2], lrp(2, 10));
        assert!(j.contains(&[0, 2, 2, 4], &[]));
        assert!(j.contains(&[10, 12, 12, 14], &[]));
        assert!(!j.contains(&[0, 2, 7, 9], &[])); // X2 ≠ Y1
    }

    #[test]
    fn join_on_disjoint_lrps_is_empty() {
        let t1 = GenTuple::unconstrained(vec![lrp(0, 2)], vec![]);
        let t2 = GenTuple::unconstrained(vec![lrp(1, 2)], vec![]);
        assert!(join_tuples(&t1, &t2, &[(0, 0)], &[]).unwrap().is_none());
    }

    #[test]
    fn join_on_data_filters() {
        let t1 = GenTuple::unconstrained(vec![lrp(0, 2)], vec![Value::str("x")]);
        let t2 = GenTuple::unconstrained(vec![lrp(0, 3)], vec![Value::str("x")]);
        let t3 = GenTuple::unconstrained(vec![lrp(0, 3)], vec![Value::str("y")]);
        assert!(join_tuples(&t1, &t2, &[], &[(0, 0)]).unwrap().is_some());
        assert!(join_tuples(&t1, &t3, &[], &[(0, 0)]).unwrap().is_none());
    }

    #[test]
    fn join_semantics_on_window() {
        let t1 = GenTuple::builder()
            .lrps(vec![lrp(0, 3), lrp(1, 3)])
            .atoms([Atom::diff_le(0, 1, 0)])
            .build()
            .unwrap();
        let t2 = GenTuple::builder()
            .lrps(vec![lrp(1, 2)])
            .atoms([Atom::ge(0, 3)])
            .build()
            .unwrap();
        let j = join_tuples(&t1, &t2, &[(1, 0)], &[]).unwrap();
        for x in 0..14 {
            for y in 0..14 {
                for z in 0..14 {
                    let expect = t1.contains(&[x, y], &[]) && t2.contains(&[z], &[]) && y == z;
                    let got = j
                        .as_ref()
                        .map(|t| t.contains(&[x, y, z], &[]))
                        .unwrap_or(false);
                    assert_eq!(expect, got, "({x},{y},{z})");
                }
            }
        }
    }
}

//! Projection (§3.4) — the operation that makes normalization necessary.

use itd_constraint::Atom;

use crate::tuple::GenTuple;
use crate::Result;

/// Union-find over temporal columns, linked by difference atoms.
struct Components {
    parent: Vec<usize>,
}

impl Components {
    fn new(n: usize) -> Self {
        Components {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// The columns that must be normalized to eliminate `dropped` exactly: the
/// union of the constraint-graph components (over a minimal generating
/// atom set — the closed matrix would over-couple) that touch a dropped
/// column.
///
/// This is the paper's §3.4 remark — "only column i and columns sharing a
/// constraint with column i have to be normalized" — extended transitively.
fn columns_needing_normalization(t: &GenTuple, dropped: &[usize]) -> Result<Vec<usize>> {
    let m = t.lrps().len();
    let mut uf = Components::new(m);
    for atom in t.constraints().reduced_atoms()? {
        if let Atom::DiffLe { i, j, .. } | Atom::DiffEq { i, j, .. } = atom {
            uf.union(i, j);
        }
    }
    let mut needed = vec![false; m];
    for &d in dropped {
        let root = uf.find(d);
        for (c, flag) in needed.iter_mut().enumerate() {
            if uf.find(c) == root {
                *flag = true;
            }
        }
    }
    Ok((0..m).filter(|&c| needed[c]).collect())
}

/// Projects a tuple onto the given temporal and data columns (in the listed
/// order, which may permute).
///
/// Per §3.4, naive variable elimination over the reals is **unsound** on lrp
/// grids (Figure 2: real projection of `[4n₁+3, 8n₂+1]` with
/// `X₁ ≥ X₂ ∧ X₁ ≤ X₂+5 ∧ X₂ ≥ 2` contains 3, 7, 15, … which have no
/// witnesses). So: normalize first (Theorem 3.2), then eliminate in grid
/// coordinates, where closure-based elimination is exact (Theorem 3.1).
///
/// Following the paper's own §3.4 remark, normalization is **partial**:
/// only the constraint-graph component(s) of the eliminated columns are
/// refined; unrelated columns pass through untouched. This bounds the
/// `Π k/kᵢ` fan-out to the columns that actually need it. Use
/// [`project_tuple_full`] to force whole-tuple normalization (the ablation
/// benchmark compares the two).
///
/// One input tuple can project to several output tuples (one per normal
/// form component).
///
/// # Errors
/// Arithmetic overflow during normalization.
///
/// # Panics
/// If an index is out of range or repeated.
pub fn project_tuple(
    t: &GenTuple,
    temporal_keep: &[usize],
    data_keep: &[usize],
) -> Result<Vec<GenTuple>> {
    let m = t.lrps().len();
    let dropped: Vec<usize> = (0..m).filter(|c| !temporal_keep.contains(c)).collect();
    let hot = columns_needing_normalization(t, &dropped)?;
    if hot.len() == m {
        return project_tuple_full(t, temporal_keep, data_keep);
    }

    let data: Vec<_> = data_keep.iter().map(|&i| t.data()[i].clone()).collect();
    // Split kept columns into the hot component(s) and the cold rest.
    let hot_kept: Vec<usize> = temporal_keep
        .iter()
        .copied()
        .filter(|c| hot.contains(c))
        .collect();
    let cold_kept: Vec<usize> = temporal_keep
        .iter()
        .copied()
        .filter(|c| !hot.contains(c))
        .collect();

    // Mini-tuple over the hot columns; project it with full normalization.
    let mini = GenTuple::from_parts(
        hot.iter().map(|&c| t.lrps()[c]).collect(),
        t.constraints().project_onto(&hot),
        vec![],
    )?;
    let mini_keep: Vec<usize> = hot_kept
        .iter()
        .map(|&c| hot.iter().position(|&h| h == c).expect("hot_kept ⊆ hot"))
        .collect();
    let minis = project_tuple_full(&mini, &mini_keep, &[])?;

    // Cold part: kept untouched (no elimination there, so no grid issue).
    let cold_cons = t.constraints().project_onto(&cold_kept);

    // Output positions of each part within `temporal_keep` order.
    let out_arity = temporal_keep.len();
    let hot_positions: Vec<usize> = (0..out_arity)
        .filter(|&p| hot.contains(&temporal_keep[p]))
        .collect();
    let cold_positions: Vec<usize> = (0..out_arity)
        .filter(|&p| !hot.contains(&temporal_keep[p]))
        .collect();

    let mut out = Vec::new();
    for mt in minis {
        let mut lrps = Vec::with_capacity(out_arity);
        let mut hot_cursor = 0usize;
        for &col in temporal_keep {
            if hot.contains(&col) {
                lrps.push(mt.lrps()[hot_cursor]);
                hot_cursor += 1;
            } else {
                lrps.push(t.lrps()[col]);
            }
        }
        let cons = mt
            .constraints()
            .embed(out_arity, &hot_positions)
            .conjoin(&cold_cons.embed(out_arity, &cold_positions))?;
        out.push(GenTuple::from_parts(lrps, cons, data.clone())?);
    }
    Ok(out)
}

/// Projection with **whole-tuple** normalization — the unoptimized §3.4
/// algorithm. Semantically identical to [`project_tuple`]; kept public for
/// the partial-normalization ablation.
///
/// # Errors
/// Arithmetic overflow during normalization.
///
/// # Panics
/// If an index is out of range or repeated.
pub fn project_tuple_full(
    t: &GenTuple,
    temporal_keep: &[usize],
    data_keep: &[usize],
) -> Result<Vec<GenTuple>> {
    let data: Vec<_> = data_keep.iter().map(|&i| t.data()[i].clone()).collect();
    let mut out = Vec::new();
    for nt in t.normalize()? {
        let (k, anchors, grid) = crate::normalize::grid_view(&nt)?;
        let projected_grid = grid.project_onto(temporal_keep);
        let kept_anchors: Vec<i64> = temporal_keep.iter().map(|&i| anchors[i]).collect();
        let cons = projected_grid.from_grid(&kept_anchors, k)?;
        let lrps: Vec<_> = temporal_keep.iter().map(|&i| nt.lrps()[i]).collect();
        out.push(GenTuple::from_parts(lrps, cons, data.clone())?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::materialize_tuples;
    use crate::value::Value;
    use itd_constraint::Atom;
    use itd_lrp::Lrp;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    fn lrp(c: i64, k: i64) -> Lrp {
        Lrp::new(c, k).unwrap()
    }

    #[test]
    fn paper_figure_2_projection_is_exact() {
        // Figure 2 / Example 3.2: projecting out X2 must give 8n+3 with
        // X1 ≥ 11 — NOT the naive real projection (4n+3 with X1 ≥ 2-ish),
        // whose extra points 3, 7, 15, 23… have no witnesses.
        let t = GenTuple::builder()
            .lrps(vec![lrp(3, 4), lrp(1, 8)])
            .atoms([
                Atom::diff_ge(0, 1, 0).unwrap(),
                Atom::diff_le(0, 1, 5),
                Atom::ge(1, 2),
            ])
            .build()
            .unwrap();
        let p = project_tuple(&t, &[0], &[]).unwrap();
        assert_eq!(p.len(), 1, "{p:?}");
        assert_eq!(p[0].lrps()[0], lrp(3, 8));
        assert_eq!(p[0].constraints().lower(0), Some(11));
        // The false witnesses of the naive method are excluded:
        for bogus in [3, 7, 15, 23] {
            assert!(!p[0].contains(&[bogus], &[]), "{bogus} wrongly included");
        }
        // And the real ones are present: 11, 19, 27, …
        for real in [11, 19, 27, 35] {
            assert!(p[0].contains(&[real], &[]), "{real} missing");
        }
    }

    #[test]
    fn projection_matches_brute_force() {
        let t = GenTuple::builder()
            .lrps(vec![lrp(3, 4), lrp(1, 8)])
            .atoms([
                Atom::diff_ge(0, 1, 0).unwrap(),
                Atom::diff_le(0, 1, 5),
                Atom::ge(1, 2),
            ])
            .build()
            .unwrap();
        let p = project_tuple(&t, &[0], &[]).unwrap();
        // Brute force: x1 appears iff some x2 in a wide window pairs with it.
        let wide = materialize_tuples(&[t], -50, 120);
        let expect: BTreeSet<i64> = wide.iter().map(|(ts, _)| ts[0]).collect();
        for x1 in -20..60 {
            let symbolic = p.iter().any(|pt| pt.contains(&[x1], &[]));
            // Only compare where the wide window is authoritative.
            let brute = expect.contains(&x1);
            assert_eq!(symbolic, brute, "x1 = {x1}");
        }
    }

    #[test]
    fn projection_keeps_and_permutes_columns() {
        let t = GenTuple::builder()
            .lrps(vec![lrp(0, 2), lrp(1, 2), Lrp::point(5)])
            .atoms([Atom::diff_le(0, 1, 0)])
            .data(vec![Value::str("a"), Value::Int(1)])
            .build()
            .unwrap();
        let p = project_tuple(&t, &[2, 0], &[1]).unwrap();
        assert!(!p.is_empty());
        for pt in &p {
            assert_eq!(pt.schema(), crate::Schema::new(2, 1));
            assert!(pt.lrps()[0].is_point());
            assert_eq!(pt.data(), &[Value::Int(1)]);
        }
    }

    #[test]
    fn project_to_nothing_checks_emptiness() {
        // Projecting all columns away leaves the 0-ary tuple iff nonempty.
        let t = GenTuple::builder()
            .lrps(vec![lrp(0, 2)])
            .atoms([Atom::ge(0, 100)])
            .build()
            .unwrap();
        let p = project_tuple(&t, &[], &[]).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].schema(), crate::Schema::new(0, 0));
        // Unsatisfiable tuple projects to nothing.
        let t = GenTuple::builder()
            .lrps(vec![lrp(0, 2), lrp(0, 2)])
            .atoms([Atom::diff_eq(0, 1, 1)])
            .build()
            .unwrap();
        assert!(project_tuple(&t, &[], &[]).unwrap().is_empty());
    }

    #[test]
    fn partial_normalization_matches_full() {
        // Column 2 (period 7) is unrelated to the eliminated column 1:
        // the partial path must not refine it.
        let t = GenTuple::builder()
            .lrps(vec![lrp(3, 4), lrp(1, 8), lrp(2, 7)])
            .atoms([
                Atom::diff_ge(0, 1, 0).unwrap(),
                Atom::diff_le(0, 1, 5),
                Atom::ge(1, 2),
                Atom::le(2, 100),
            ])
            .build()
            .unwrap();
        let partial = project_tuple(&t, &[0, 2], &[]).unwrap();
        let full = project_tuple_full(&t, &[0, 2], &[]).unwrap();
        // The unrelated column keeps its original period in the partial
        // result (no fan-out through lcm(8,7) = 56).
        assert!(partial.iter().all(|pt| pt.lrps()[1].period() == 7));
        assert!(partial.len() <= full.len());
        for x in -10..60 {
            for z in -10..60 {
                let a = partial.iter().any(|pt| pt.contains(&[x, z], &[]));
                let b = full.iter().any(|pt| pt.contains(&[x, z], &[]));
                assert_eq!(a, b, "({x},{z})");
            }
        }
    }

    #[test]
    fn partial_pure_permutation_keeps_everything() {
        // No column dropped: projection is a permutation; nothing is
        // normalized at all.
        let t = GenTuple::builder()
            .lrps(vec![lrp(1, 6), lrp(0, 10)])
            .atoms([Atom::diff_le(0, 1, 3)])
            .build()
            .unwrap();
        let p = project_tuple(&t, &[1, 0], &[]).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].lrps(), &[lrp(0, 10), lrp(1, 6)]);
        for x in -12..12 {
            for y in -12..12 {
                assert_eq!(
                    p[0].contains(&[y, x], &[]),
                    t.contains(&[x, y], &[]),
                    "({x},{y})"
                );
            }
        }
    }

    proptest! {
        #[test]
        fn prop_partial_equals_full(
            k1 in 1i64..5, k2 in 1i64..5, k3 in 1i64..5,
            a in -4i64..4, lob in -4i64..4, hib in 0i64..6,
        ) {
            // Constraint couples columns 0 and 1; column 2 is independent.
            let t = GenTuple::builder().lrps(vec![lrp(0, k1), lrp(1, k2), lrp(2, k3)]).atoms([Atom::diff_le(0, 1, a), Atom::ge(0, lob), Atom::le(2, hib)]).build().unwrap();
            let partial = project_tuple(&t, &[0, 2], &[]).unwrap();
            let full = project_tuple_full(&t, &[0, 2], &[]).unwrap();
            for x in -8i64..8 {
                for z in -8i64..8 {
                    let pa = partial.iter().any(|pt| pt.contains(&[x, z], &[]));
                    let fa = full.iter().any(|pt| pt.contains(&[x, z], &[]));
                    prop_assert_eq!(pa, fa, "({}, {})", x, z);
                }
            }
        }

        /// Projection agrees with brute-force ∃-elimination on a window.
        /// The window for the eliminated variable is padded so that any
        /// witness for an x1 in the comparison range is visible.
        #[test]
        fn prop_projection_exact(
            c1 in 0i64..4, k1 in 1i64..5,
            c2 in 0i64..4, k2 in 1i64..5,
            a in -5i64..5,
            b in -5i64..5,
            lob in -5i64..5,
        ) {
            let t = GenTuple::builder().lrps(vec![lrp(c1, k1), lrp(c2, k2)]).atoms([
                    Atom::diff_ge(0, 1, a).unwrap(),
                    Atom::diff_le(0, 1, b),
                    Atom::ge(1, lob),
                ]).build().unwrap();
            let p = project_tuple(&t, &[0], &[]).unwrap();
            for x1 in -12i64..12 {
                let symbolic = p.iter().any(|pt| pt.contains(&[x1], &[]));
                // witness range: x2 within |a|,|b| ≤ 5 of x1, or bounded by lob
                let brute = (-40..=40).any(|x2| t.contains(&[x1, x2], &[]));
                prop_assert_eq!(symbolic, brute, "x1 = {}", x1);
            }
        }
    }
}

//! Tuple difference (§3.3.3, Figure 1).

use itd_constraint::Atom;
use itd_lrp::{Lrp, LrpDiff};

use crate::tuple::GenTuple;
use crate::Result;

/// Difference of two generalized tuples, per the paper's decomposition
/// (Figure 1):
///
/// ```text
/// t1 − t2 = (t1 − t2*) ∪ (t̄2 ∩ t1)
/// ```
///
/// where `t2*` is the free extension of `t2` (its lrps without constraints)
/// and `t̄2 = t2* − t2` is the part of the free extension excluded by `t2`'s
/// constraints.
///
/// * `t1 − t2*` removes whole residue classes: for each column `i`, keep the
///   pieces of `l1ᵢ − l2ᵢ` (§3.3.1) with the other columns and `t1`'s
///   constraints unchanged. A removed *single point* inside an infinite
///   column (the [`LrpDiff::Punctured`] case) is expressed by splitting into
///   `Xᵢ ≤ p−1` and `Xᵢ ≥ p+1` — the paper's own negated-constraint device.
/// * `t̄2 ∩ t1` adds, for each negated atom `d` of `t2`'s constraints, the
///   tuple with columnwise-intersected lrps and constraints `C1 ∧ d`
///   (disjunctions are eliminated by splitting, as prescribed).
///
/// The result may contain syntactically nonempty but grid-empty tuples;
/// relation-level difference prunes them.
///
/// # Errors
/// Arithmetic overflow in lrp subtraction / constraint negation.
///
/// # Panics
/// If the schemas differ.
pub fn difference_tuples(t1: &GenTuple, t2: &GenTuple) -> Result<Vec<GenTuple>> {
    assert_eq!(t1.schema(), t2.schema(), "schema mismatch in difference");
    // Different data values ⇒ disjoint denotations.
    if t1.data() != t2.data() {
        return Ok(vec![t1.clone()]);
    }
    if !t2.constraints().is_satisfiable() {
        return Ok(vec![t1.clone()]); // t2 is empty
    }
    // Columnwise intersections; any empty column ⇒ t1 ∩ t2* = ∅ ⇒ t1 − t2 = t1.
    let mut meets: Vec<Lrp> = Vec::with_capacity(t1.lrps().len());
    for (a, b) in t1.lrps().iter().zip(t2.lrps()) {
        match a.intersect(b)? {
            Some(l) => meets.push(l),
            None => return Ok(vec![t1.clone()]),
        }
    }

    let mut out = Vec::new();

    // Part 1: t1 − t2* — per column, the removed residue classes / points.
    for (i, (l1, meet)) in t1.lrps().iter().zip(&meets).enumerate() {
        match l1.subtract(meet)? {
            LrpDiff::Empty => {}
            LrpDiff::Unchanged => unreachable!("meet is a nonempty subset of l1"),
            LrpDiff::Classes(classes) => {
                for c in classes {
                    let mut lrps = t1.lrps().to_vec();
                    lrps[i] = c;
                    out.push(GenTuple::from_parts(
                        lrps,
                        t1.constraints().clone(),
                        t1.data().to_vec(),
                    )?);
                }
            }
            LrpDiff::Punctured(p) => {
                for atom in [
                    Atom::lt(i, p).ok_or(itd_numth::NumthError::Overflow)?,
                    Atom::gt(i, p).ok_or(itd_numth::NumthError::Overflow)?,
                ] {
                    let mut cons = t1.constraints().clone();
                    cons.add(atom)?;
                    if cons.is_satisfiable() {
                        out.push(GenTuple::from_parts(
                            t1.lrps().to_vec(),
                            cons,
                            t1.data().to_vec(),
                        )?);
                    }
                }
            }
        }
    }

    // Part 2: t̄2 ∩ t1 — the intersected free extension restricted to the
    // negation of t2's constraints (one tuple per negated atom).
    if let Some(disjuncts) = t2.constraints().negation()? {
        for d in disjuncts {
            let mut cons = t1.constraints().clone();
            cons.add(d)?;
            if cons.is_satisfiable() {
                out.push(GenTuple::from_parts(
                    meets.clone(),
                    cons,
                    t1.data().to_vec(),
                )?);
            }
        }
    }
    // negation() == None would mean t2's constraints are unsatisfiable,
    // which was handled above.

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::materialize_tuples;
    use crate::value::Value;
    use proptest::prelude::*;

    fn lrp(c: i64, k: i64) -> Lrp {
        Lrp::new(c, k).unwrap()
    }

    /// Window check: does the symbolic difference match set difference?
    fn check_window(t1: &GenTuple, t2: &GenTuple, lo: i64, hi: i64) {
        let diff = difference_tuples(t1, t2).unwrap();
        let a = materialize_tuples(std::slice::from_ref(t1), lo, hi);
        let b = materialize_tuples(std::slice::from_ref(t2), lo, hi);
        let expect: Vec<_> = a.difference(&b).cloned().collect();
        let got = materialize_tuples(&diff, lo, hi);
        let got: Vec<_> = got.into_iter().collect();
        assert_eq!(expect, got, "t1 = {t1}, t2 = {t2}");
    }

    #[test]
    fn residue_class_removal() {
        // (2n) − (6n + 4) = {6n, 6n + 2}
        let t1 = GenTuple::unconstrained(vec![lrp(0, 2)], vec![]);
        let t2 = GenTuple::unconstrained(vec![lrp(4, 6)], vec![]);
        check_window(&t1, &t2, -20, 20);
    }

    #[test]
    fn constrained_subtrahend_leaves_complement_part() {
        // Remove only the positive part of the same lrp.
        let t1 = GenTuple::unconstrained(vec![lrp(0, 2)], vec![]);
        let t2 = GenTuple::builder()
            .lrps(vec![lrp(0, 2)])
            .atoms([Atom::ge(0, 0)])
            .build()
            .unwrap();
        check_window(&t1, &t2, -20, 20);
        let diff = difference_tuples(&t1, &t2).unwrap();
        // Expect exactly the negative evens.
        assert!(diff.iter().any(|t| t.contains(&[-2], &[])));
        assert!(!diff.iter().any(|t| t.contains(&[0], &[])));
    }

    #[test]
    fn puncture_single_point() {
        let t1 = GenTuple::unconstrained(vec![lrp(1, 2)], vec![]);
        let t2 = GenTuple::unconstrained(vec![Lrp::point(5)], vec![]);
        check_window(&t1, &t2, -10, 15);
    }

    #[test]
    fn disjoint_subtrahend_is_noop() {
        let t1 = GenTuple::unconstrained(vec![lrp(0, 2)], vec![]);
        let t2 = GenTuple::unconstrained(vec![lrp(1, 2)], vec![]);
        let diff = difference_tuples(&t1, &t2).unwrap();
        assert_eq!(diff, vec![t1.clone()]);
    }

    #[test]
    fn identical_tuples_cancel() {
        let t = GenTuple::builder()
            .lrps(vec![lrp(0, 3)])
            .atoms([Atom::ge(0, 0)])
            .build()
            .unwrap();
        let diff = difference_tuples(&t, &t).unwrap();
        let got = materialize_tuples(&diff, -30, 30);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn different_data_is_noop() {
        let t1 = GenTuple::unconstrained(vec![lrp(0, 2)], vec![Value::str("a")]);
        let t2 = GenTuple::unconstrained(vec![lrp(0, 2)], vec![Value::str("b")]);
        assert_eq!(difference_tuples(&t1, &t2).unwrap(), vec![t1.clone()]);
    }

    #[test]
    fn empty_subtrahend_is_noop() {
        let t1 = GenTuple::unconstrained(vec![lrp(0, 2)], vec![]);
        let t2 = GenTuple::builder()
            .lrps(vec![lrp(0, 2)])
            .atoms([Atom::le(0, 0), Atom::ge(0, 2)])
            .build()
            .unwrap();
        assert_eq!(difference_tuples(&t1, &t2).unwrap(), vec![t1.clone()]);
    }

    #[test]
    fn two_dimensional_figure_1_shape() {
        // A constrained t2 inside t1's free extension: both parts of the
        // decomposition contribute.
        let t1 = GenTuple::builder()
            .lrps(vec![lrp(0, 2), lrp(0, 2)])
            .atoms([Atom::ge(0, -10)])
            .build()
            .unwrap();
        let t2 = GenTuple::builder()
            .lrps(vec![lrp(0, 4), lrp(0, 2)])
            .atoms([Atom::diff_le(0, 1, 0), Atom::ge(1, 0)])
            .build()
            .unwrap();
        check_window(&t1, &t2, -8, 12);
    }

    proptest! {
        #[test]
        fn prop_difference_matches_set_semantics(
            c1 in 0i64..4, k1 in 1i64..5,
            c2 in 0i64..4, k2 in 1i64..5,
            lo1 in -6i64..6,
            hi2 in -6i64..6,
        ) {
            let t1 = GenTuple::builder().lrps(vec![lrp(c1, k1)]).atoms([Atom::ge(0, lo1)]).build().unwrap();
            let t2 = GenTuple::builder().lrps(vec![lrp(c2, k2)]).atoms([Atom::le(0, hi2)]).build().unwrap();
            let diff = difference_tuples(&t1, &t2).unwrap();
            for x in -25i64..25 {
                let expect = t1.contains(&[x], &[]) && !t2.contains(&[x], &[]);
                let got = diff.iter().any(|t| t.contains(&[x], &[]));
                prop_assert_eq!(expect, got, "x = {}", x);
            }
        }

        #[test]
        fn prop_difference_2d(
            k1 in 1i64..4, k2 in 1i64..4,
            a in -4i64..4,
            b in -4i64..4,
        ) {
            let t1 = GenTuple::builder().lrps(vec![lrp(0, k1), lrp(1, k2)]).atoms([Atom::diff_le(0, 1, 3)]).build().unwrap();
            let t2 = GenTuple::builder().lrps(vec![lrp(0, 2), lrp(1, 2)]).atoms([Atom::diff_le(0, 1, a), Atom::ge(0, b)]).build().unwrap();
            let diff = difference_tuples(&t1, &t2).unwrap();
            for x in -8i64..8 {
                for y in -8i64..8 {
                    let expect = t1.contains(&[x, y], &[]) && !t2.contains(&[x, y], &[]);
                    let got = diff.iter().any(|t| t.contains(&[x, y], &[]));
                    prop_assert_eq!(expect, got, "({}, {})", x, y);
                }
            }
        }
    }
}

//! Tuple-level implementations of the relational algebra (§3).
//!
//! Relation-level operations in [`crate::GenRelation`] are thin folds over
//! these: e.g. intersection of relations is the union of pairwise tuple
//! intersections (§3.2.2), difference is the left fold of tuple differences
//! (§3.3.2), and complement iterates the free-extension construction of
//! Appendix A.6.

mod complement;
mod difference;
mod intersect;
mod product;
mod project;

pub use complement::{complement_tuples, complement_tuples_in, DEFAULT_COMPLEMENT_LIMIT};
pub use difference::difference_tuples;
pub use intersect::intersect_tuples;
pub use product::{cross_product_tuples, join_tuples};
pub use project::{project_tuple, project_tuple_full};

//! Tuple intersection (§3.2.2).

use crate::tuple::GenTuple;
use crate::Result;

/// Intersection of two generalized tuples of the same schema.
///
/// Following the paper: intersect the lrps column by column (§3.2.1's
/// extended-Euclid construction) and take the union (conjunction) of the
/// two constraint systems. Data columns intersect as sets of single points:
/// nonempty only when equal.
///
/// Returns `None` when the intersection is syntactically empty (disjoint
/// lrps, unequal data, or contradictory constraints). A `Some` result can
/// still be semantically empty on the grid; callers that need exactness
/// follow up with [`GenTuple::is_empty`].
///
/// # Errors
/// Arithmetic overflow in lrp intersection or constraint closure.
///
/// # Panics
/// If the schemas differ.
pub fn intersect_tuples(t1: &GenTuple, t2: &GenTuple) -> Result<Option<GenTuple>> {
    assert_eq!(t1.schema(), t2.schema(), "schema mismatch in intersection");
    if t1.data() != t2.data() {
        return Ok(None);
    }
    let mut lrps = Vec::with_capacity(t1.lrps().len());
    for (a, b) in t1.lrps().iter().zip(t2.lrps()) {
        match a.intersect(b)? {
            Some(l) => lrps.push(l),
            None => return Ok(None),
        }
    }
    let cons = t1.constraints().conjoin(t2.constraints())?;
    if !cons.is_satisfiable() {
        return Ok(None);
    }
    Ok(Some(GenTuple::from_parts(lrps, cons, t1.data().to_vec())?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use itd_constraint::Atom;
    use itd_lrp::Lrp;

    fn lrp(c: i64, k: i64) -> Lrp {
        Lrp::new(c, k).unwrap()
    }

    #[test]
    fn paper_example_3_1() {
        // [2n1+1, 3n2−4] ∧ X1 ≤ X2 ∧ 3 ≤ X1
        //   ∩ [5n3, 5n4+2] ∧ X1 = X2 − 2
        // = [10n+5, 15n'+2] ∧ X1 ≤ X2 ∧ 3 ≤ X1 ∧ X1 = X2 − 2
        let t1 = GenTuple::builder()
            .lrps(vec![lrp(1, 2), lrp(-4, 3)])
            .atoms([Atom::diff_le(0, 1, 0), Atom::ge(0, 3)])
            .build()
            .unwrap();
        let t2 = GenTuple::builder()
            .lrps(vec![lrp(0, 5), lrp(2, 5)])
            .atoms([Atom::diff_eq(0, 1, -2)])
            .build()
            .unwrap();
        let i = intersect_tuples(&t1, &t2).unwrap().unwrap();
        assert_eq!(i.lrps()[0], lrp(5, 10));
        assert_eq!(i.lrps()[1], lrp(2, 15));
        // Constraints: X1 = X2 − 2 (closure merges it with X1 ≤ X2) and X1 ≥ 3.
        assert_eq!(
            i.constraints().diff_bound(0, 1),
            itd_constraint::Bound::Finite(-2)
        );
        assert_eq!(i.constraints().lower(0), Some(3));
    }

    #[test]
    fn intersection_matches_membership() {
        let t1 = GenTuple::builder()
            .lrps(vec![lrp(1, 2), lrp(0, 3)])
            .atoms([Atom::ge(0, 0)])
            .build()
            .unwrap();
        let t2 = GenTuple::builder()
            .lrps(vec![lrp(1, 4), lrp(0, 2)])
            .atoms([Atom::diff_le(0, 1, 10)])
            .build()
            .unwrap();
        let i = intersect_tuples(&t1, &t2).unwrap();
        for x in -10..25 {
            for y in -10..25 {
                let both = t1.contains(&[x, y], &[]) && t2.contains(&[x, y], &[]);
                let got = i
                    .as_ref()
                    .map(|t| t.contains(&[x, y], &[]))
                    .unwrap_or(false);
                assert_eq!(both, got, "({x},{y})");
            }
        }
    }

    #[test]
    fn disjoint_lrps_give_none() {
        let t1 = GenTuple::unconstrained(vec![lrp(0, 2)], vec![]);
        let t2 = GenTuple::unconstrained(vec![lrp(1, 2)], vec![]);
        assert!(intersect_tuples(&t1, &t2).unwrap().is_none());
    }

    #[test]
    fn mismatched_data_gives_none() {
        let t1 = GenTuple::unconstrained(vec![lrp(0, 2)], vec![Value::str("a")]);
        let t2 = GenTuple::unconstrained(vec![lrp(0, 2)], vec![Value::str("b")]);
        assert!(intersect_tuples(&t1, &t2).unwrap().is_none());
        let t3 = GenTuple::unconstrained(vec![lrp(0, 2)], vec![Value::str("a")]);
        assert!(intersect_tuples(&t1, &t3).unwrap().is_some());
    }

    #[test]
    fn contradictory_constraints_give_none() {
        let t1 = GenTuple::builder()
            .lrps(vec![lrp(0, 2)])
            .atoms([Atom::ge(0, 10)])
            .build()
            .unwrap();
        let t2 = GenTuple::builder()
            .lrps(vec![lrp(0, 2)])
            .atoms([Atom::le(0, 5)])
            .build()
            .unwrap();
        assert!(intersect_tuples(&t1, &t2).unwrap().is_none());
    }
}

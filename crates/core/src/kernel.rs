//! Columnar batch kernels for the pairwise algebra hot paths.
//!
//! The row-at-a-time operator loops (`relation.rs`) materialize both
//! operands as `GenTuple` slices and run the full per-pair derivation —
//! or a per-invocation memo — on every candidate pair. The kernels here
//! instead work straight off the store's flat columns:
//!
//! 1. **Probe** candidates through the persistent residue index exactly
//!    like the row path (same gates, same `index_probes`/`index_pruned`
//!    counters), feeding the index the probe row's `(offset, period)`
//!    pairs and interned [`ValueId`]s — no row materialization.
//! 2. **Batch pre-filter** every candidate pair over the contiguous
//!    `t_offsets`/`t_periods` arrays and `ValueId` columns: a pair dies
//!    when some relevant data column's ids differ (ids are canonical, so
//!    this is exact data inequality) or some relevant temporal column
//!    fails the gcd-congruence solvability test
//!    `o₁ ≡ o₂ (mod gcd(k₁, k₂))` (§3.2.1) — **exactly** the condition
//!    under which [`Lrp::intersect`](itd_lrp::Lrp::intersect) is empty,
//!    so a rejected pair is precisely a pair the row path would have
//!    derived to nothing. The rejection is pure integer arithmetic over
//!    slices: no locks, no allocation, no `GenTuple`/`RowRef`.
//! 3. **Derive survivors** through the process-wide pairwise outcome
//!    cache (`crate::store`): the two temporal parts are globally
//!    hash-consed, so `(part, part, op)` outcomes survive across
//!    operator calls *and* queries. Misses fall into the existing
//!    per-pair derivation (`crate::ops`).
//!
//! # Counter parity and determinism
//!
//! Each kernel reproduces its row path's counter flow bit for bit:
//! `pairs`, `empties_pruned`, `index_probes` and `index_pruned` are
//! incremented at the same program points with the same values, so the
//! invariants (`probes + index_pruned == pairs` per indexed outer row,
//! prune budgets) are preserved, and chunked execution over row indices
//! splits exactly like chunking the row slice
//! ([`run_chunked_range`](crate::exec)) — results and counters are
//! identical at any thread count. The single deliberate exception is
//! `intern_hits`: the kernels replace the per-invocation memo with the
//! global outcome cache, whose hit totals are process-history dependent,
//! so they are reported through [`storage_stats`](crate::store) (and the
//! Prometheus gauges) instead of the per-op counters, and the kernels
//! leave `intern_hits` at zero.
//!
//! For the difference fold, a batch-rejected subtrahend `t2` is
//! columnwise disjoint from `t1` (or differs in data); every fold member
//! is a columnwise subset of `t1` carrying `t1`'s data, so the entire
//! step is a no-op: the row path would add `acc.len()` pairs, pass every
//! member through unchanged, and prune nothing. The kernel adds the same
//! `acc.len()` pairs and skips the derivation. The fold-initial member
//! `t1` itself is the one member that might be grid-empty (a no-op step
//! still prunes it); both arms handle it explicitly below.

use std::sync::Arc;

use itd_numth::gcd;

use crate::exec::{self, ExecContext, OpTimer};
use crate::index::{RelationIndex, INDEX_MIN_PAIRS};
use crate::intern::{Interner, INTERN_MIN_PAIRS};
use crate::ops;
use crate::store::{
    outcome_cache_empty, outcome_cache_pair, outcome_cached_empty, outcome_cached_pair, PairOpKey,
    RelStore, TemporalPartId, ValueId,
};
use crate::tuple::GenTuple;
use crate::Result;

/// Is the columnwise meet of `c1 + k1·Z` and `c2 + k2·Z` empty?
///
/// Exact (§3.2.1 solvability): for `g = gcd(k1, k2) > 0` the meet is
/// nonempty iff `c1 ≡ c2 (mod g)`; `gcd(0, k) = k` makes a point's
/// offset binding, and two points meet iff equal (`g = 0`). The offset
/// difference is widened to `i128` so extreme offsets cannot overflow.
#[inline]
fn lrp_disjoint(o1: i64, k1: i64, o2: i64, k2: i64) -> bool {
    let g = gcd(k1, k2);
    if g == 0 {
        return o1 != o2;
    }
    (o1 as i128 - o2 as i128).rem_euclid(g as i128) != 0
}

/// The batched residue pre-filter over one candidate pair `(i, j)`:
/// `true` when the pair is provably dead — some paired data column's ids
/// differ, or some paired temporal column is congruence-disjoint.
///
/// `tpairs`/`dpairs` name (left column, right column) pairs; intersect
/// and difference pass the identity pairing over all columns.
#[inline]
fn pair_rejected(
    left: &RelStore,
    right: &RelStore,
    i: usize,
    j: usize,
    tpairs: &[(usize, usize)],
    dpairs: &[(usize, usize)],
) -> bool {
    for &(dc1, dc2) in dpairs {
        if left.data_columns()[dc1][i] != right.data_columns()[dc2][j] {
            return true;
        }
    }
    for &(tc1, tc2) in tpairs {
        if lrp_disjoint(
            left.t_offsets(tc1)[i],
            left.t_periods(tc1)[i],
            right.t_offsets(tc2)[j],
            right.t_periods(tc2)[j],
        ) {
            return true;
        }
    }
    false
}

/// One row rebuilt from its hash-consed part and resolved data — the
/// only materialization the kernels do, and only for batch survivors
/// (never through the store's `OnceLock` row cache).
fn row_tuple(store: &RelStore, row: usize) -> GenTuple {
    GenTuple::from_part(Arc::clone(store.part(row)), store.resolve_row_data(row))
}

/// The probe arguments of row `i` for [`RelationIndex::probe_cols`]:
/// per-column `(offset, period)` pairs and interned data ids.
fn probe_args(
    store: &RelStore,
    row: usize,
    tcols: &[usize],
    dcols: &[usize],
) -> (Vec<(i64, i64)>, Vec<ValueId>) {
    let lrps = tcols
        .iter()
        .map(|&c| (store.t_offsets(c)[row], store.t_periods(c)[row]))
        .collect();
    let ids = dcols
        .iter()
        .map(|&c| store.data_columns()[c][row])
        .collect();
    (lrps, ids)
}

/// Grid-emptiness of an interned part through the global verdict cache.
fn part_is_empty(id: TemporalPartId, t: &GenTuple) -> Result<bool> {
    if let Some(empty) = outcome_cached_empty(id) {
        return Ok(empty);
    }
    let empty = t.is_empty()?;
    outcome_cache_empty(id, empty);
    Ok(empty)
}

/// The persistent index over `right`, under the row path's exact gates:
/// pair count at [`INDEX_MIN_PAIRS`] and a discriminating key.
fn gated_index(
    right: &RelStore,
    pairs: usize,
    allow: bool,
    tcols: &[usize],
    dcols: &[usize],
) -> Option<Arc<RelationIndex>> {
    (allow && pairs >= INDEX_MIN_PAIRS)
        .then(|| right.index_for(tcols, dcols))
        .filter(|idx| idx.is_discriminating())
}

/// Batched intersection: returns the output tuples of
/// `left ∩ right` with the row path's exact counter flow.
pub(crate) fn intersect(
    left: &RelStore,
    right: &RelStore,
    ctx: &ExecContext,
    timer: &OpTimer<'_>,
) -> Result<Vec<GenTuple>> {
    let (n, m) = (left.len(), right.len());
    timer.add_in(n + m);
    timer.add_pairs(n as u64 * m as u64);
    let schema = left.schema();
    let tcols: Vec<usize> = (0..schema.temporal()).collect();
    let dcols: Vec<usize> = (0..schema.data()).collect();
    let tpairs: Vec<(usize, usize)> = tcols.iter().map(|&c| (c, c)).collect();
    let dpairs: Vec<(usize, usize)> = dcols.iter().map(|&c| (c, c)).collect();
    let index = gated_index(right, n * m, true, &tcols, &dcols);
    let use_cache = n * m >= INTERN_MIN_PAIRS;
    exec::run_chunked_range(ctx, n, |i| {
        let mut out = Vec::new();
        // The left row is rebuilt at most once per outer row, and only
        // if some candidate survives the batch filter.
        let mut t1: Option<GenTuple> = None;
        let mut visit = |j: usize, out: &mut Vec<GenTuple>| -> Result<()> {
            if pair_rejected(left, right, i, j, &tpairs, &dpairs) {
                // Exactly the pairs the row path derives to `None`.
                timer.add_pruned(1);
                return Ok(());
            }
            let t1 = t1.get_or_insert_with(|| row_tuple(left, i));
            let key = (left.part_ids()[i], right.part_ids()[j]);
            if use_cache {
                if let Some(outcome) = outcome_cached_pair(key.0, key.1, &PairOpKey::Intersect) {
                    match outcome {
                        Some(part) => out.push(GenTuple::from_part(part, t1.data().to_vec())),
                        None => timer.add_pruned(1),
                    }
                    return Ok(());
                }
            }
            // Data ids matched, so the values are equal: reuse `t1`'s
            // resolved data for the right side instead of resolving it.
            let t2 = GenTuple::from_part(Arc::clone(right.part(j)), t1.data().to_vec());
            let res = ops::intersect_tuples(t1, &t2)?;
            if use_cache {
                outcome_cache_pair(
                    key.0,
                    key.1,
                    PairOpKey::Intersect,
                    res.as_ref().map(|t| Arc::clone(t.part_arc())),
                );
            }
            match res {
                Some(t) => out.push(t),
                None => timer.add_pruned(1),
            }
            Ok(())
        };
        match &index {
            Some(idx) => {
                let (lrps, ids) = probe_args(left, i, &tcols, &dcols);
                let cands = idx.probe_cols(&ids, &lrps);
                let skipped = (m - cands.len()) as u64;
                timer.add_probes(cands.len() as u64);
                timer.add_index_pruned(skipped);
                timer.add_pruned(skipped);
                for &j in &cands {
                    visit(j, &mut out)?;
                }
            }
            None => {
                for j in 0..m {
                    visit(j, &mut out)?;
                }
            }
        }
        Ok(out)
    })
}

/// Batched equi-join on the given column pairs: returns the output
/// tuples with the row path's exact counter flow. Pair validation is the
/// caller's job (`relation.rs` checks before dispatching).
pub(crate) fn join_on(
    left: &RelStore,
    right: &RelStore,
    temporal_pairs: &[(usize, usize)],
    data_pairs: &[(usize, usize)],
    ctx: &ExecContext,
    timer: &OpTimer<'_>,
) -> Result<Vec<GenTuple>> {
    let (n, m) = (left.len(), right.len());
    timer.add_in(n + m);
    timer.add_pairs(n as u64 * m as u64);
    let left_t: Vec<usize> = temporal_pairs.iter().map(|&(i, _)| i).collect();
    let right_t: Vec<usize> = temporal_pairs.iter().map(|&(_, j)| j).collect();
    let left_d: Vec<usize> = data_pairs.iter().map(|&(i, _)| i).collect();
    let right_d: Vec<usize> = data_pairs.iter().map(|&(_, j)| j).collect();
    let index = gated_index(right, n * m, true, &right_t, &right_d);
    let use_cache = n * m >= INTERN_MIN_PAIRS;
    // With the join columns fixed for the whole invocation, the temporal
    // outcome of a pair depends only on the two parts and the temporal
    // pairing; the output data is always the concatenation.
    let op_key = PairOpKey::Join(temporal_pairs.to_vec().into_boxed_slice());
    // Right-side data is shared by every outer row: resolve each right
    // row once up front (ids only; the row cache is never populated).
    let rdata: Vec<Vec<crate::Value>> = (0..m).map(|j| right.resolve_row_data(j)).collect();
    exec::run_chunked_range(ctx, n, |i| {
        let mut out = Vec::new();
        let mut t1: Option<GenTuple> = None;
        let mut visit = |j: usize, out: &mut Vec<GenTuple>| -> Result<()> {
            if pair_rejected(left, right, i, j, temporal_pairs, data_pairs) {
                timer.add_pruned(1);
                return Ok(());
            }
            let t1 = t1.get_or_insert_with(|| row_tuple(left, i));
            let key = (left.part_ids()[i], right.part_ids()[j]);
            if use_cache {
                if let Some(outcome) = outcome_cached_pair(key.0, key.1, &op_key) {
                    match outcome {
                        Some(part) => {
                            let mut data = t1.data().to_vec();
                            data.extend_from_slice(&rdata[j]);
                            out.push(GenTuple::from_part(part, data));
                        }
                        None => timer.add_pruned(1),
                    }
                    return Ok(());
                }
            }
            let t2 = GenTuple::from_part(Arc::clone(right.part(j)), rdata[j].clone());
            let res = ops::join_tuples(t1, &t2, temporal_pairs, data_pairs)?;
            if use_cache {
                outcome_cache_pair(
                    key.0,
                    key.1,
                    op_key.clone(),
                    res.as_ref().map(|t| Arc::clone(t.part_arc())),
                );
            }
            match res {
                Some(t) => out.push(t),
                None => timer.add_pruned(1),
            }
            Ok(())
        };
        match &index {
            Some(idx) => {
                let (lrps, ids) = probe_args(left, i, &left_t, &left_d);
                let cands = idx.probe_cols(&ids, &lrps);
                let skipped = (m - cands.len()) as u64;
                timer.add_probes(cands.len() as u64);
                timer.add_index_pruned(skipped);
                timer.add_pruned(skipped);
                for &j in &cands {
                    visit(j, &mut out)?;
                }
            }
            None => {
                for j in 0..m {
                    visit(j, &mut out)?;
                }
            }
        }
        Ok(out)
    })
}

/// Batched difference fold: returns the output tuples with the row
/// path's exact counter flow (see the module docs for why skipping a
/// batch-rejected subtrahend is counter-neutral).
pub(crate) fn difference(
    left: &RelStore,
    right: &RelStore,
    ctx: &ExecContext,
    timer: &OpTimer<'_>,
) -> Result<Vec<GenTuple>> {
    let (n, m) = (left.len(), right.len());
    timer.add_in(n + m);
    let schema = left.schema();
    let tcols: Vec<usize> = (0..schema.temporal()).collect();
    let dcols: Vec<usize> = (0..schema.data()).collect();
    let tpairs: Vec<(usize, usize)> = tcols.iter().map(|&c| (c, c)).collect();
    let dpairs: Vec<(usize, usize)> = dcols.iter().map(|&c| (c, c)).collect();
    let index = gated_index(right, n * m, true, &tcols, &dcols);
    // Fold intermediates are ephemeral (never interned globally), so
    // their emptiness verdicts go through a per-invocation memo, exactly
    // like the row path — but without feeding `intern_hits`. The
    // fold-initial parts are interned, so those verdicts use the global
    // cache (`part_is_empty`).
    let interner = (n * m >= INTERN_MIN_PAIRS).then(Interner::new);
    let member_is_empty = |t: &GenTuple| -> Result<bool> {
        let Some(int) = &interner else {
            return t.is_empty();
        };
        let id = int.intern(t.lrps(), t.constraints());
        if let Some(empty) = int.cached_empty(id) {
            return Ok(empty);
        }
        let empty = t.is_empty()?;
        int.cache_empty(id, empty);
        Ok(empty)
    };
    exec::run_chunked_range(ctx, n, |i| {
        let t1 = row_tuple(left, i);
        // One fold step, identical to the row path: subtract `t2` from
        // every member, prune grid-empty results, deduplicate.
        let step = |acc: Vec<GenTuple>, t2: &GenTuple| -> Result<Vec<GenTuple>> {
            let mut next = Vec::new();
            for t in &acc {
                timer.add_pairs(1);
                next.extend(ops::difference_tuples(t, t2)?);
            }
            let candidates = next.len();
            let mut pruned: Vec<GenTuple> = Vec::with_capacity(next.len());
            for t in next {
                if !member_is_empty(&t)? && !pruned.contains(&t) {
                    pruned.push(t);
                }
            }
            timer.add_pruned((candidates - pruned.len()) as u64);
            Ok(pruned)
        };
        // Rebuild a subtrahend only when a step actually runs; data ids
        // matched, so `t1`'s resolved data doubles for the right side.
        let subtrahend =
            |j: usize| GenTuple::from_part(Arc::clone(right.part(j)), t1.data().to_vec());
        match &index {
            Some(idx) => {
                let (lrps, ids) = probe_args(left, i, &tcols, &dcols);
                let cands = idx.probe_cols(&ids, &lrps);
                timer.add_probes(cands.len() as u64);
                timer.add_index_pruned((m - cands.len()) as u64);
                // Replicates the row path's indexed arm: a grid-empty
                // `t1` is dropped upfront (`right` is nonempty whenever
                // the index gate passed).
                if part_is_empty(left.part_ids()[i], &t1)? {
                    timer.add_pruned(1);
                    return Ok(vec![]);
                }
                let mut acc = vec![t1.clone()];
                for &j in &cands {
                    if pair_rejected(left, right, i, j, &tpairs, &dpairs) {
                        // No-op step: every member would pass through
                        // unchanged and survive the prune (members are
                        // prune-survivors, hence non-grid-empty).
                        timer.add_pairs(acc.len() as u64);
                        continue;
                    }
                    acc = step(acc, &subtrahend(j))?;
                    if acc.is_empty() {
                        break;
                    }
                }
                Ok(acc)
            }
            None => {
                // Unindexed arm: the batch filter may only skip steps
                // whose members are known non-grid-empty. That holds
                // after any executed step (members are prune-survivors)
                // — and from the start iff `t1` itself is non-empty.
                // For a grid-empty `t1` the row path's first step prunes
                // it no matter what `t2` is; run that first step
                // literally to reproduce its exact pair/prune counts.
                let mut literal_first = m > 0 && part_is_empty(left.part_ids()[i], &t1)?;
                let mut acc = vec![t1.clone()];
                for j in 0..m {
                    if literal_first {
                        // Grid-empty initial member: execute the step
                        // verbatim, with the subtrahend's own data (the
                        // filter has not vouched for equality). It
                        // prunes every member, so the loop ends here.
                        acc = step(acc, &row_tuple(right, j))?;
                        literal_first = false;
                    } else if pair_rejected(left, right, i, j, &tpairs, &dpairs) {
                        timer.add_pairs(acc.len() as u64);
                        continue;
                    } else {
                        acc = step(acc, &subtrahend(j))?;
                    }
                    if acc.is_empty() {
                        break;
                    }
                }
                Ok(acc)
            }
        }
    })
}

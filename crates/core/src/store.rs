//! Columnar, interned relation storage.
//!
//! A [`GenRelation`](crate::GenRelation) no longer owns a `Vec<GenTuple>`
//! of independent rows; it holds an [`Arc`] to a [`RelStore`], which keeps
//! the relation column-major:
//!
//! * **temporal columns** as flat `(offset, period)` arrays (one pair of
//!   `Vec<i64>` per temporal attribute) next to the per-row hash-consed
//!   [`TemporalPart`] ids;
//! * **data columns** as flat [`ValueId`] arrays — `NonZeroU32` ids into a
//!   process-wide [`Value`] arena, so `Option<ValueId>` is pointer-free
//!   and equal values compare as integers;
//! * the PR 3 residue-bucket [`RelationIndex`] **persistently**, keyed by
//!   the column sets it was built over: an index is built at most once per
//!   relation/column-set, reused across operator calls, extended in place
//!   on append when the moduli survive, and invalidated precisely (only
//!   the appends that change a column's modulus drop it).
//!
//! Both arenas are global hash-consing interners in the style of
//! `crate::intern` (mutex around a `Vec` arena plus reverse map). They
//! are append-only and process-wide, which is exactly what makes
//! `O(1)` snapshots safe: a cloned relation shares the store `Arc`, and
//! ids never dangle or get reused. [`storage_stats`] surfaces the arena
//! sizes, hit rates and index reuse counts (the REPL's `\storage`
//! command); per arena the determinism invariant
//! `hits == lookups − distinct` holds at every snapshot.
//!
//! Row-oriented access stays available through the [`Rows`] cursor /
//! [`RowRef`] view API and a lazily materialized row cache (`OnceLock`),
//! which the deprecated `tuples()` shim also reads — materialization
//! happens at most once per store, not per call.

use std::collections::HashMap;
use std::fmt;
use std::num::NonZeroU32;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use itd_constraint::ConstraintSystem;
use itd_lrp::Lrp;

use crate::index::RelationIndex;
use crate::schema::Schema;
use crate::tuple::{GenTuple, TemporalPart};
use crate::value::Value;

/// Id of a data [`Value`] in the process-wide value arena.
///
/// Ids are dense, start at the arena's first insertion and are never
/// reused, so two ids are equal **iff** the values they intern are equal —
/// columns can be compared, hashed and deduplicated without touching the
/// arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(NonZeroU32);

impl ValueId {
    fn from_index(index: usize) -> ValueId {
        let raw = u32::try_from(index + 1).expect("value arena exceeds u32 ids");
        ValueId(NonZeroU32::new(raw).expect("index + 1 is nonzero"))
    }

    fn index(self) -> usize {
        self.0.get() as usize - 1
    }

    /// The raw nonzero id (stable within the process, for diagnostics).
    pub fn get(self) -> u32 {
        self.0.get()
    }
}

/// Id of a hash-consed temporal part (lrp vector + constraint system) in
/// the process-wide part arena. Same id ⟺ equal part.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TemporalPartId(NonZeroU32);

impl TemporalPartId {
    fn from_index(index: usize) -> TemporalPartId {
        let raw = u32::try_from(index + 1).expect("part arena exceeds u32 ids");
        TemporalPartId(NonZeroU32::new(raw).expect("index + 1 is nonzero"))
    }

    fn index(self) -> usize {
        self.0.get() as usize - 1
    }

    /// The raw nonzero id (stable within the process, for diagnostics).
    pub fn get(self) -> u32 {
        self.0.get()
    }
}

/// One hash-consing arena: canonical entries plus the reverse map and the
/// lookup/hit tally read by [`storage_stats`].
struct ArenaInner<T> {
    arena: Vec<T>,
    ids: HashMap<T, u32>,
    lookups: u64,
    hits: u64,
    /// Estimated bytes of distinct interned payload (see
    /// [`StorageStats::value_bytes`] / [`StorageStats::part_bytes`]).
    bytes: u64,
}

impl<T> ArenaInner<T> {
    fn new() -> Self {
        ArenaInner {
            arena: Vec::new(),
            ids: HashMap::new(),
            lookups: 0,
            hits: 0,
            bytes: 0,
        }
    }
}

static VALUES: OnceLock<Mutex<ArenaInner<Value>>> = OnceLock::new();
static PARTS: OnceLock<Mutex<ArenaInner<Arc<TemporalPart>>>> = OnceLock::new();
static INDEX_BUILDS: AtomicU64 = AtomicU64::new(0);
static INDEX_REUSES: AtomicU64 = AtomicU64::new(0);
static OUTCOME_HITS: AtomicU64 = AtomicU64::new(0);
static OUTCOME_MISSES: AtomicU64 = AtomicU64::new(0);
static OUTCOME_EVICTIONS: AtomicU64 = AtomicU64::new(0);

/// Default entry bound of the global [pairwise outcome cache]
/// (`outcome_cached_pair`): pair outcomes plus emptiness verdicts
/// together never exceed the configured capacity.
pub const OUTCOME_CACHE_CAP: usize = 1 << 16;

/// The algebra operation a cached pairwise outcome belongs to.
///
/// `Intersect` meets columns positionally; `Join` carries the exact
/// temporal column pairing, because the same two parts joined on
/// different column pairs produce different (and differently shaped)
/// results.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum PairOpKey {
    Intersect,
    Join(Box<[(usize, usize)]>),
}

/// The global pairwise-outcome cache: because temporal parts are
/// hash-consed process-wide, `(id, id, op)` keys survive across operator
/// calls *and* queries — a pair derived once is never derived again
/// until evicted.
struct OutcomeInner {
    /// `(left part, right part, op) →` derived result part (`None` =
    /// the pair is provably empty / prunable).
    pairs: HashMap<(TemporalPartId, TemporalPartId, PairOpKey), Option<Arc<TemporalPart>>>,
    /// Per-part grid-emptiness verdicts (difference fold pre-checks).
    empties: HashMap<TemporalPartId, bool>,
    /// Entry bound; reaching it triggers a full generational clear.
    cap: usize,
}

static OUTCOMES: OnceLock<Mutex<OutcomeInner>> = OnceLock::new();

fn outcomes() -> &'static Mutex<OutcomeInner> {
    OUTCOMES.get_or_init(|| {
        Mutex::new(OutcomeInner {
            pairs: HashMap::new(),
            empties: HashMap::new(),
            cap: OUTCOME_CACHE_CAP,
        })
    })
}

/// Looks up a cached pairwise outcome. The outer `Option` is the cache
/// verdict (`None` = miss); the inner one is the derivation's result
/// (`None` = the pair derives to nothing).
pub(crate) fn outcome_cached_pair(
    left: TemporalPartId,
    right: TemporalPartId,
    op: &PairOpKey,
) -> Option<Option<Arc<TemporalPart>>> {
    let inner = outcomes().lock().expect("outcome cache poisoned");
    match inner.pairs.get(&(left, right, op.clone())) {
        Some(outcome) => {
            OUTCOME_HITS.fetch_add(1, Ordering::Relaxed);
            Some(outcome.clone())
        }
        None => {
            OUTCOME_MISSES.fetch_add(1, Ordering::Relaxed);
            None
        }
    }
}

/// Records a derived pairwise outcome, evicting (full clear) at
/// capacity. Both sides of a race insert the same pure-function result,
/// so whichever write wins, later hits observe an identical value.
pub(crate) fn outcome_cache_pair(
    left: TemporalPartId,
    right: TemporalPartId,
    op: PairOpKey,
    outcome: Option<Arc<TemporalPart>>,
) {
    let mut inner = outcomes().lock().expect("outcome cache poisoned");
    evict_if_full(&mut inner);
    inner.pairs.insert((left, right, op), outcome);
}

/// Cached grid-emptiness verdict for one interned part, if known.
pub(crate) fn outcome_cached_empty(id: TemporalPartId) -> Option<bool> {
    let inner = outcomes().lock().expect("outcome cache poisoned");
    match inner.empties.get(&id) {
        Some(&empty) => {
            OUTCOME_HITS.fetch_add(1, Ordering::Relaxed);
            Some(empty)
        }
        None => {
            OUTCOME_MISSES.fetch_add(1, Ordering::Relaxed);
            None
        }
    }
}

/// Records a grid-emptiness verdict for one interned part.
pub(crate) fn outcome_cache_empty(id: TemporalPartId, empty: bool) {
    let mut inner = outcomes().lock().expect("outcome cache poisoned");
    evict_if_full(&mut inner);
    inner.empties.insert(id, empty);
}

/// Generational eviction: when the combined entry count reaches the
/// cap, drop everything and count the casualties. A full clear (rather
/// than LRU) keeps lookups lock-cheap and is deterministic in the
/// number of evicted entries for a fixed insertion sequence.
fn evict_if_full(inner: &mut OutcomeInner) {
    if inner.pairs.len() + inner.empties.len() >= inner.cap {
        let dropped = (inner.pairs.len() + inner.empties.len()) as u64;
        OUTCOME_EVICTIONS.fetch_add(dropped, Ordering::Relaxed);
        inner.pairs.clear();
        inner.empties.clear();
    }
}

/// Current entry count of the global outcome cache (pairs + emptiness
/// verdicts).
pub fn outcome_cache_len() -> usize {
    let inner = outcomes().lock().expect("outcome cache poisoned");
    inner.pairs.len() + inner.empties.len()
}

/// Rebounds the global outcome cache, returning the previous cap.
/// Shrinking below the current size triggers eviction on the next
/// insert, not immediately. Intended for tests and benchmarks; the
/// cache is semantically transparent, so a racing query only loses
/// hits, never correctness.
pub fn outcome_cache_set_cap(cap: usize) -> usize {
    let mut inner = outcomes().lock().expect("outcome cache poisoned");
    std::mem::replace(&mut inner.cap, cap.max(1))
}

fn values() -> &'static Mutex<ArenaInner<Value>> {
    VALUES.get_or_init(|| Mutex::new(ArenaInner::new()))
}

fn parts() -> &'static Mutex<ArenaInner<Arc<TemporalPart>>> {
    PARTS.get_or_init(|| Mutex::new(ArenaInner::new()))
}

/// Estimated payload bytes of one interned value: the inline enum plus
/// any owned string bytes.
fn value_payload_bytes(v: &Value) -> u64 {
    let owned = match v {
        Value::Str(s) => s.len(),
        _ => 0,
    };
    (std::mem::size_of::<Value>() + owned) as u64
}

/// Estimated payload bytes of one interned temporal part: the struct, its
/// lrp vector, and the `(arity + 1)²` difference-bound matrix.
fn part_payload_bytes(part: &TemporalPart) -> u64 {
    let dim = part.cons.arity() + 1;
    (std::mem::size_of::<TemporalPart>()
        + part.lrps.len() * std::mem::size_of::<Lrp>()
        + dim * dim * std::mem::size_of::<itd_constraint::Bound>()) as u64
}

/// Interns one value, returning its canonical id.
fn intern_value(inner: &mut ArenaInner<Value>, v: &Value) -> ValueId {
    inner.lookups += 1;
    if let Some(&raw) = inner.ids.get(v) {
        inner.hits += 1;
        return ValueId(NonZeroU32::new(raw).expect("stored ids are nonzero"));
    }
    let id = ValueId::from_index(inner.arena.len());
    inner.bytes += value_payload_bytes(v);
    inner.arena.push(v.clone());
    inner.ids.insert(v.clone(), id.get());
    id
}

/// Interns one temporal part, returning its id and the canonical shared
/// allocation (so callers can drop their copy and alias the arena's).
fn intern_part(
    inner: &mut ArenaInner<Arc<TemporalPart>>,
    part: &Arc<TemporalPart>,
) -> (TemporalPartId, Arc<TemporalPart>) {
    inner.lookups += 1;
    if let Some(&raw) = inner.ids.get(part) {
        inner.hits += 1;
        let id = TemporalPartId(NonZeroU32::new(raw).expect("stored ids are nonzero"));
        return (id, Arc::clone(&inner.arena[id.index()]));
    }
    let id = TemporalPartId::from_index(inner.arena.len());
    inner.bytes += part_payload_bytes(part);
    inner.arena.push(Arc::clone(part));
    inner.ids.insert(Arc::clone(part), id.get());
    (id, Arc::clone(part))
}

/// Resolves a [`ValueId`] back to its value (a clone of the arena entry).
///
/// # Panics
/// If the id did not come from this process's arena.
pub fn resolve_value(id: ValueId) -> Value {
    let inner = values().lock().expect("value arena poisoned");
    inner.arena[id.index()].clone()
}

/// Interns `v` into the global value arena (used by index builds over
/// raw tuple slices; store construction interns in bulk under one lock).
pub(crate) fn intern_value_global(v: &Value) -> ValueId {
    let mut inner = values().lock().expect("value arena poisoned");
    intern_value(&mut inner, v)
}

/// Non-inserting probe: the id of `v` if it has ever been interned.
pub(crate) fn lookup_value(v: &Value) -> Option<ValueId> {
    let inner = values().lock().expect("value arena poisoned");
    inner
        .ids
        .get(v)
        .map(|&raw| ValueId(NonZeroU32::new(raw).expect("stored ids are nonzero")))
}

/// A consistent snapshot of the global storage counters.
///
/// Per arena, `lookups − hits == distinct` at any snapshot — misses and
/// insertions happen under one lock, so the interner is deterministic in
/// the same sense as `crate::intern`: totals depend only on the multiset
/// of interned keys, never on thread scheduling.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageStats {
    /// Value-arena lookups (interning attempts) so far.
    pub value_lookups: u64,
    /// Value-arena lookups that found an existing entry.
    pub value_hits: u64,
    /// Distinct values interned.
    pub value_distinct: u64,
    /// Estimated bytes of distinct value payload (inline enum + owned
    /// string bytes).
    pub value_bytes: u64,
    /// Part-arena lookups (interning attempts) so far.
    pub part_lookups: u64,
    /// Part-arena lookups that found an existing entry.
    pub part_hits: u64,
    /// Distinct temporal parts interned.
    pub part_distinct: u64,
    /// Estimated bytes of distinct part payload (struct + lrp vector +
    /// difference-bound matrix).
    pub part_bytes: u64,
    /// Residue indexes built from scratch on some relation store.
    pub index_builds: u64,
    /// Operator calls served by an already-built persistent index.
    pub index_reuses: u64,
    /// Global pairwise-outcome cache lookups that found an entry.
    pub outcome_hits: u64,
    /// Global pairwise-outcome cache lookups that missed.
    pub outcome_misses: u64,
    /// Entries dropped by outcome-cache capacity eviction.
    pub outcome_evictions: u64,
}

impl StorageStats {
    /// `self − before`, field by field (saturating). The per-arena
    /// invariant `lookups − hits == distinct` survives subtraction of an
    /// earlier snapshot because every counter is monotone.
    pub fn delta_since(&self, before: &StorageStats) -> StorageStats {
        StorageStats {
            value_lookups: self.value_lookups.saturating_sub(before.value_lookups),
            value_hits: self.value_hits.saturating_sub(before.value_hits),
            value_distinct: self.value_distinct.saturating_sub(before.value_distinct),
            value_bytes: self.value_bytes.saturating_sub(before.value_bytes),
            part_lookups: self.part_lookups.saturating_sub(before.part_lookups),
            part_hits: self.part_hits.saturating_sub(before.part_hits),
            part_distinct: self.part_distinct.saturating_sub(before.part_distinct),
            part_bytes: self.part_bytes.saturating_sub(before.part_bytes),
            index_builds: self.index_builds.saturating_sub(before.index_builds),
            index_reuses: self.index_reuses.saturating_sub(before.index_reuses),
            outcome_hits: self.outcome_hits.saturating_sub(before.outcome_hits),
            outcome_misses: self.outcome_misses.saturating_sub(before.outcome_misses),
            outcome_evictions: self
                .outcome_evictions
                .saturating_sub(before.outcome_evictions),
        }
    }
}

/// Baseline subtracted from every [`storage_stats`] read; set by
/// [`storage_stats_reset`]. `None` (the default) means raw process
/// totals.
static STATS_BASELINE: Mutex<Option<StorageStats>> = Mutex::new(None);

/// Reads the raw process-lifetime counters, ignoring any baseline.
fn raw_storage_stats() -> StorageStats {
    let (value_lookups, value_hits, value_distinct, value_bytes) = {
        let inner = values().lock().expect("value arena poisoned");
        (
            inner.lookups,
            inner.hits,
            inner.arena.len() as u64,
            inner.bytes,
        )
    };
    let (part_lookups, part_hits, part_distinct, part_bytes) = {
        let inner = parts().lock().expect("part arena poisoned");
        (
            inner.lookups,
            inner.hits,
            inner.arena.len() as u64,
            inner.bytes,
        )
    };
    StorageStats {
        value_lookups,
        value_hits,
        value_distinct,
        value_bytes,
        part_lookups,
        part_hits,
        part_distinct,
        part_bytes,
        index_builds: INDEX_BUILDS.load(Ordering::Relaxed),
        index_reuses: INDEX_REUSES.load(Ordering::Relaxed),
        outcome_hits: OUTCOME_HITS.load(Ordering::Relaxed),
        outcome_misses: OUTCOME_MISSES.load(Ordering::Relaxed),
        outcome_evictions: OUTCOME_EVICTIONS.load(Ordering::Relaxed),
    }
}

/// Reads the global storage counters. Each arena is snapshotted under its
/// own lock, so the per-arena invariant `lookups − hits == distinct`
/// holds even while other threads keep interning.
///
/// After [`storage_stats_reset`], the counters are *deltas* since the
/// reset (the arenas themselves are untouched — only the zero point
/// moves).
pub fn storage_stats() -> StorageStats {
    let raw = raw_storage_stats();
    match *STATS_BASELINE.lock().expect("stats baseline poisoned") {
        Some(base) => raw.delta_since(&base),
        None => raw,
    }
}

/// Re-zeros [`storage_stats`] at the current counter values, so tests and
/// bench sections can measure per-window deltas instead of
/// process-lifetime totals.
///
/// The interning arenas themselves are deliberately **not** cleared —
/// outstanding [`ValueId`]s/[`TemporalPartId`]s must never dangle — so
/// this is measurement-only. Intended for tests and benchmarks; resetting
/// while concurrent queries run simply moves their deltas' zero point.
pub fn storage_stats_reset() {
    let raw = raw_storage_stats();
    *STATS_BASELINE.lock().expect("stats baseline poisoned") = Some(raw);
}

impl fmt::Display for StorageStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "value arena: {} distinct / {} lookups ({} hits, ~{} bytes)",
            self.value_distinct, self.value_lookups, self.value_hits, self.value_bytes
        )?;
        writeln!(
            f,
            "part arena:  {} distinct / {} lookups ({} hits, ~{} bytes)",
            self.part_distinct, self.part_lookups, self.part_hits, self.part_bytes
        )?;
        writeln!(
            f,
            "indexes:     {} built, {} reused",
            self.index_builds, self.index_reuses
        )?;
        write!(
            f,
            "outcomes:    {} hits, {} misses, {} evicted",
            self.outcome_hits, self.outcome_misses, self.outcome_evictions
        )
    }
}

/// Cache key for a persistent index: the temporal and data column sets it
/// was built over.
type IndexKey = (Vec<usize>, Vec<usize>);

/// The columnar backing store of one relation. Immutable once shared
/// (relations append through `Arc::get_mut` or copy-on-write).
pub(crate) struct RelStore {
    schema: Schema,
    /// Per-row id of the hash-consed temporal part.
    part_ids: Vec<TemporalPartId>,
    /// Per-row canonical part allocation (parallel to `part_ids`).
    parts: Vec<Arc<TemporalPart>>,
    /// Per temporal column: each row's lrp offset.
    t_offsets: Vec<Vec<i64>>,
    /// Per temporal column: each row's lrp period (`0` for points).
    t_periods: Vec<Vec<i64>>,
    /// Per data column: each row's interned value id.
    data: Vec<Vec<ValueId>>,
    /// Lazily materialized row view (what `rows_slice` / the deprecated
    /// `tuples()` shim hand out).
    rows: OnceLock<Vec<GenTuple>>,
    /// Persistent residue indexes by column set.
    indexes: Mutex<HashMap<IndexKey, Arc<RelationIndex>>>,
}

impl fmt::Debug for RelStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RelStore")
            .field("schema", &self.schema)
            .field("len", &self.part_ids.len())
            .field("rows_cached", &self.rows.get().is_some())
            .finish()
    }
}

impl RelStore {
    /// An empty store of the given schema (row cache pre-filled: there is
    /// nothing to materialize).
    pub(crate) fn empty(schema: Schema) -> RelStore {
        RelStore::from_tuples(schema, Vec::new())
    }

    /// Builds a store from already-schema-checked tuples. The input rows
    /// are canonicalized against the global arenas and kept as the row
    /// cache, so constructing from tuples costs no extra materialization.
    pub(crate) fn from_tuples(schema: Schema, mut tuples: Vec<GenTuple>) -> RelStore {
        debug_assert!(tuples.iter().all(|t| t.schema() == schema));
        let n = tuples.len();
        let mut part_ids = Vec::with_capacity(n);
        let mut canonical = Vec::with_capacity(n);
        {
            let mut inner = parts().lock().expect("part arena poisoned");
            for t in &tuples {
                let (id, part) = intern_part(&mut inner, t.part_arc());
                part_ids.push(id);
                canonical.push(part);
            }
        }
        for (t, part) in tuples.iter_mut().zip(&canonical) {
            t.canonicalize_part(Arc::clone(part));
        }
        let mut t_offsets = vec![Vec::with_capacity(n); schema.temporal()];
        let mut t_periods = vec![Vec::with_capacity(n); schema.temporal()];
        for t in &tuples {
            for (c, l) in t.lrps().iter().enumerate() {
                t_offsets[c].push(l.offset());
                t_periods[c].push(l.period());
            }
        }
        let mut data = vec![Vec::with_capacity(n); schema.data()];
        if schema.data() > 0 {
            let mut inner = values().lock().expect("value arena poisoned");
            for t in &tuples {
                for (c, v) in t.data().iter().enumerate() {
                    data[c].push(intern_value(&mut inner, v));
                }
            }
        }
        let rows = OnceLock::new();
        let _ = rows.set(tuples);
        RelStore {
            schema,
            part_ids,
            parts: canonical,
            t_offsets,
            t_periods,
            data,
            rows,
            indexes: Mutex::new(HashMap::new()),
        }
    }

    /// Concatenation of two stores of one schema (union): pure id and
    /// `Arc` copies, no re-hashing. Indexes start empty; the row cache is
    /// carried over only when both inputs had already materialized.
    pub(crate) fn concat(a: &RelStore, b: &RelStore) -> RelStore {
        debug_assert_eq!(a.schema, b.schema);
        let cat = |x: &[TemporalPartId], y: &[TemporalPartId]| {
            let mut v = Vec::with_capacity(x.len() + y.len());
            v.extend_from_slice(x);
            v.extend_from_slice(y);
            v
        };
        let mut parts = Vec::with_capacity(a.parts.len() + b.parts.len());
        parts.extend(a.parts.iter().cloned());
        parts.extend(b.parts.iter().cloned());
        let zip_cols = |x: &[Vec<i64>], y: &[Vec<i64>]| {
            x.iter()
                .zip(y)
                .map(|(xa, xb)| {
                    let mut col = Vec::with_capacity(xa.len() + xb.len());
                    col.extend_from_slice(xa);
                    col.extend_from_slice(xb);
                    col
                })
                .collect()
        };
        let data = a
            .data
            .iter()
            .zip(&b.data)
            .map(|(xa, xb)| {
                let mut col = Vec::with_capacity(xa.len() + xb.len());
                col.extend_from_slice(xa);
                col.extend_from_slice(xb);
                col
            })
            .collect();
        let rows = OnceLock::new();
        if let (Some(ra), Some(rb)) = (a.rows.get(), b.rows.get()) {
            let mut v = Vec::with_capacity(ra.len() + rb.len());
            v.extend(ra.iter().cloned());
            v.extend(rb.iter().cloned());
            let _ = rows.set(v);
        }
        RelStore {
            schema: a.schema,
            part_ids: cat(&a.part_ids, &b.part_ids),
            parts,
            t_offsets: zip_cols(&a.t_offsets, &b.t_offsets),
            t_periods: zip_cols(&a.t_periods, &b.t_periods),
            data,
            rows,
            indexes: Mutex::new(HashMap::new()),
        }
    }

    /// A positional row subset (data selection): columns are copied entry
    /// by entry, nothing is re-interned.
    pub(crate) fn select(&self, keep: &[usize]) -> RelStore {
        let pick_ids = keep.iter().map(|&i| self.part_ids[i]).collect();
        let parts = keep.iter().map(|&i| Arc::clone(&self.parts[i])).collect();
        let pick_i64 = |cols: &[Vec<i64>]| {
            cols.iter()
                .map(|col| keep.iter().map(|&i| col[i]).collect())
                .collect()
        };
        let data = self
            .data
            .iter()
            .map(|col| keep.iter().map(|&i| col[i]).collect())
            .collect();
        let rows = OnceLock::new();
        if let Some(all) = self.rows.get() {
            let _ = rows.set(keep.iter().map(|&i| all[i].clone()).collect());
        }
        RelStore {
            schema: self.schema,
            part_ids: pick_ids,
            parts,
            t_offsets: pick_i64(&self.t_offsets),
            t_periods: pick_i64(&self.t_periods),
            data,
            rows,
            indexes: Mutex::new(HashMap::new()),
        }
    }

    /// A deep copy used by copy-on-write append: columns are cloned, the
    /// cached indexes are carried over as shared `Arc`s (the append will
    /// clone-on-extend them).
    pub(crate) fn cloned(&self) -> RelStore {
        let rows = OnceLock::new();
        if let Some(all) = self.rows.get() {
            let _ = rows.set(all.clone());
        }
        let indexes = self.indexes.lock().expect("index cache poisoned").clone();
        RelStore {
            schema: self.schema,
            part_ids: self.part_ids.clone(),
            parts: self.parts.clone(),
            t_offsets: self.t_offsets.clone(),
            t_periods: self.t_periods.clone(),
            data: self.data.clone(),
            rows,
            indexes: Mutex::new(indexes),
        }
    }

    /// Appends one schema-checked row. Cached indexes are extended in
    /// place when the new row preserves their moduli and dropped (precise
    /// invalidation) when it does not; the row cache is extended only if
    /// already materialized.
    pub(crate) fn push_row(&mut self, mut t: GenTuple) {
        debug_assert_eq!(t.schema(), self.schema);
        let (id, part) = {
            let mut inner = parts().lock().expect("part arena poisoned");
            intern_part(&mut inner, t.part_arc())
        };
        t.canonicalize_part(Arc::clone(&part));
        self.part_ids.push(id);
        self.parts.push(part);
        for (c, l) in t.lrps().iter().enumerate() {
            self.t_offsets[c].push(l.offset());
            self.t_periods[c].push(l.period());
        }
        if self.schema.data() > 0 {
            let mut inner = values().lock().expect("value arena poisoned");
            for (c, v) in t.data().iter().enumerate() {
                self.data[c].push(intern_value(&mut inner, v));
            }
        }
        let pos = self.part_ids.len() - 1;
        let indexes = self.indexes.get_mut().expect("index cache poisoned");
        indexes.retain(|_, idx| Arc::make_mut(idx).try_insert(&t, pos));
        if let Some(rows) = self.rows.get_mut() {
            rows.push(t);
        }
    }

    pub(crate) fn schema(&self) -> Schema {
        self.schema
    }

    pub(crate) fn len(&self) -> usize {
        self.part_ids.len()
    }

    pub(crate) fn part_ids(&self) -> &[TemporalPartId] {
        &self.part_ids
    }

    pub(crate) fn part(&self, row: usize) -> &Arc<TemporalPart> {
        &self.parts[row]
    }

    pub(crate) fn data_columns(&self) -> &[Vec<ValueId>] {
        &self.data
    }

    pub(crate) fn t_offsets(&self, col: usize) -> &[i64] {
        &self.t_offsets[col]
    }

    pub(crate) fn t_periods(&self, col: usize) -> &[i64] {
        &self.t_periods[col]
    }

    /// Resolves one row's data values from the arena **without**
    /// materializing the row cache (an already-materialized cache is
    /// reused, never created).
    pub(crate) fn resolve_row_data(&self, row: usize) -> Vec<Value> {
        if self.schema.data() == 0 {
            return Vec::new();
        }
        if let Some(rows) = self.rows.get() {
            return rows[row].data().to_vec();
        }
        let inner = values().lock().expect("value arena poisoned");
        self.data
            .iter()
            .map(|col| inner.arena[col[row].index()].clone())
            .collect()
    }

    /// The materialized row view; built at most once per store.
    pub(crate) fn rows_vec(&self) -> &[GenTuple] {
        self.rows.get_or_init(|| {
            let resolved: Vec<Vec<Value>> = if self.schema.data() > 0 {
                let inner = values().lock().expect("value arena poisoned");
                (0..self.len())
                    .map(|i| {
                        self.data
                            .iter()
                            .map(|col| inner.arena[col[i].index()].clone())
                            .collect()
                    })
                    .collect()
            } else {
                vec![Vec::new(); self.len()]
            };
            self.parts
                .iter()
                .zip(resolved)
                .map(|(part, data)| GenTuple::from_part(Arc::clone(part), data))
                .collect()
        })
    }

    /// The persistent residue index over the given column sets: built on
    /// first use, shared (and counted as a reuse) afterwards.
    pub(crate) fn index_for(
        &self,
        temporal_cols: &[usize],
        data_cols: &[usize],
    ) -> Arc<RelationIndex> {
        let key = (temporal_cols.to_vec(), data_cols.to_vec());
        if let Some(idx) = self.indexes.lock().expect("index cache poisoned").get(&key) {
            INDEX_REUSES.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(idx);
        }
        // Build outside the cache lock, straight from the flat columns —
        // indexing needs only offsets, periods and value ids, so it must
        // not force-populate the row cache.
        let built = Arc::new(RelationIndex::build_from_store(
            self,
            temporal_cols,
            data_cols,
        ));
        let mut cache = self.indexes.lock().expect("index cache poisoned");
        if let Some(idx) = cache.get(&key) {
            INDEX_REUSES.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(idx);
        }
        INDEX_BUILDS.fetch_add(1, Ordering::Relaxed);
        cache.insert(key, Arc::clone(&built));
        built
    }
}

/// A cursor over the rows of a relation; yields [`RowRef`] views.
///
/// Obtained from [`GenRelation::rows`](crate::GenRelation::rows).
#[derive(Clone)]
pub struct Rows<'a> {
    store: &'a RelStore,
    front: usize,
    back: usize,
}

impl<'a> Rows<'a> {
    pub(crate) fn new(store: &'a RelStore) -> Rows<'a> {
        Rows {
            store,
            front: 0,
            back: store.len(),
        }
    }
}

impl fmt::Debug for Rows<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Rows")
            .field("remaining", &(self.back - self.front))
            .finish()
    }
}

impl<'a> Iterator for Rows<'a> {
    type Item = RowRef<'a>;

    fn next(&mut self) -> Option<RowRef<'a>> {
        if self.front >= self.back {
            return None;
        }
        let row = RowRef {
            store: self.store,
            idx: self.front,
        };
        self.front += 1;
        Some(row)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.back - self.front;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Rows<'_> {}

impl<'a> DoubleEndedIterator for Rows<'a> {
    fn next_back(&mut self) -> Option<RowRef<'a>> {
        if self.front >= self.back {
            return None;
        }
        self.back -= 1;
        Some(RowRef {
            store: self.store,
            idx: self.back,
        })
    }
}

/// A zero-copy view of one row of a relation.
///
/// Temporal access ([`RowRef::lrps`], [`RowRef::constraints`]) borrows the
/// hash-consed part directly; data access by id ([`RowRef::value_id`]) is
/// columnar, while [`RowRef::data`] materializes the store's row cache on
/// first use and borrows from it.
#[derive(Clone, Copy)]
pub struct RowRef<'a> {
    store: &'a RelStore,
    idx: usize,
}

impl fmt::Debug for RowRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RowRef").field("idx", &self.idx).finish()
    }
}

impl<'a> RowRef<'a> {
    pub(crate) fn new(store: &'a RelStore, idx: usize) -> RowRef<'a> {
        RowRef { store, idx }
    }

    /// The row's position in the relation.
    pub fn index(&self) -> usize {
        self.idx
    }

    /// The row's schema.
    pub fn schema(&self) -> Schema {
        self.store.schema()
    }

    /// Temporal attribute values (borrowed from the hash-consed part).
    pub fn lrps(&self) -> &'a [Lrp] {
        &self.store.part(self.idx).lrps
    }

    /// The constraint system (borrowed from the hash-consed part).
    pub fn constraints(&self) -> &'a ConstraintSystem {
        &self.store.part(self.idx).cons
    }

    /// The id of the row's temporal part in the global arena.
    pub fn part_id(&self) -> TemporalPartId {
        self.store.part_ids()[self.idx]
    }

    /// The interned id of the value in data column `col`.
    ///
    /// # Panics
    /// If `col` is out of range.
    pub fn value_id(&self, col: usize) -> ValueId {
        self.store.data_columns()[col][self.idx]
    }

    /// The value in data column `col`, resolved from the arena.
    ///
    /// # Panics
    /// If `col` is out of range.
    pub fn datum(&self, col: usize) -> Value {
        resolve_value(self.value_id(col))
    }

    /// All data values of the row (borrowed from the lazily materialized
    /// row cache).
    pub fn data(&self) -> &'a [Value] {
        self.store.rows_vec()[self.idx].data()
    }

    /// The row as an owned [`GenTuple`] (shares the temporal part).
    pub fn to_tuple(&self) -> GenTuple {
        self.store.rows_vec()[self.idx].clone()
    }

    /// Does this row denote the concrete tuple `(times, data)`?
    ///
    /// Columnar: data equality is settled on interned ids (a value never
    /// interned anywhere cannot match), so only matching rows touch the
    /// temporal arithmetic.
    ///
    /// # Panics
    /// If `times.len()` differs from the temporal arity.
    pub fn contains(&self, times: &[i64], data: &[Value]) -> bool {
        assert_eq!(
            times.len(),
            self.store.schema().temporal(),
            "temporal arity mismatch"
        );
        if data.len() != self.store.schema().data() {
            return false;
        }
        for (col, v) in data.iter().enumerate() {
            match lookup_value(v) {
                Some(id) if id == self.value_id(col) => {}
                _ => return false,
            }
        }
        self.lrps().iter().zip(times).all(|(l, &x)| l.contains(x))
            && self.constraints().satisfied_by(times)
    }
}

/// Typed columnar access to a relation's storage.
///
/// Obtained from [`GenRelation::columns`](crate::GenRelation::columns).
#[derive(Clone, Copy)]
pub struct Columns<'a> {
    store: &'a RelStore,
}

impl fmt::Debug for Columns<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Columns")
            .field("schema", &self.store.schema())
            .field("rows", &self.store.len())
            .finish()
    }
}

impl<'a> Columns<'a> {
    pub(crate) fn new(store: &'a RelStore) -> Columns<'a> {
        Columns { store }
    }

    /// Number of rows in every column.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.store.len() == 0
    }

    /// The relation's schema.
    pub fn schema(&self) -> Schema {
        self.store.schema()
    }

    /// Temporal column `col` as flat offset/period slices.
    ///
    /// # Panics
    /// If `col` is out of range.
    pub fn temporal(&self, col: usize) -> TemporalColumn<'a> {
        TemporalColumn {
            offsets: self.store.t_offsets(col),
            periods: self.store.t_periods(col),
        }
    }

    /// Data column `col` as a flat slice of interned ids.
    ///
    /// # Panics
    /// If `col` is out of range.
    pub fn data(&self, col: usize) -> DataColumn<'a> {
        DataColumn {
            ids: &self.store.data_columns()[col],
        }
    }

    /// Per-row temporal part ids.
    pub fn part_ids(&self) -> &'a [TemporalPartId] {
        self.store.part_ids()
    }
}

/// One temporal column: each row's lrp as a flat `(offset, period)` pair,
/// period `0` marking a point.
#[derive(Debug, Clone, Copy)]
pub struct TemporalColumn<'a> {
    offsets: &'a [i64],
    periods: &'a [i64],
}

impl<'a> TemporalColumn<'a> {
    /// Each row's lrp offset.
    pub fn offsets(&self) -> &'a [i64] {
        self.offsets
    }

    /// Each row's lrp period (`0` for points).
    pub fn periods(&self) -> &'a [i64] {
        self.periods
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }
}

/// One data column: each row's value as an interned [`ValueId`].
#[derive(Debug, Clone, Copy)]
pub struct DataColumn<'a> {
    ids: &'a [ValueId],
}

impl<'a> DataColumn<'a> {
    /// Each row's interned value id.
    pub fn ids(&self) -> &'a [ValueId] {
        self.ids
    }

    /// The id at `row`.
    ///
    /// # Panics
    /// If `row` is out of range.
    pub fn id(&self, row: usize) -> ValueId {
        self.ids[row]
    }

    /// The value at `row`, resolved from the arena.
    ///
    /// # Panics
    /// If `row` is out of range.
    pub fn resolve(&self, row: usize) -> Value {
        resolve_value(self.ids[row])
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itd_lrp::Lrp;

    fn lrp(c: i64, k: i64) -> Lrp {
        Lrp::new(c, k).unwrap()
    }

    #[test]
    fn interned_ids_are_canonical() {
        let a = GenTuple::unconstrained(vec![lrp(0, 2)], vec![Value::str("store-test-a")]);
        let b = GenTuple::unconstrained(vec![lrp(0, 2)], vec![Value::str("store-test-a")]);
        let s1 = RelStore::from_tuples(Schema::new(1, 1), vec![a]);
        let s2 = RelStore::from_tuples(Schema::new(1, 1), vec![b]);
        assert_eq!(s1.part_ids(), s2.part_ids());
        assert_eq!(s1.data_columns(), s2.data_columns());
        // Canonicalization: both stores alias one part allocation.
        assert!(Arc::ptr_eq(s1.part(0), s2.part(0)));
        assert_eq!(
            resolve_value(s1.data_columns()[0][0]),
            Value::str("store-test-a")
        );
    }

    #[test]
    fn stats_invariant_holds() {
        // Intern through a store, then check the global invariant; other
        // tests may intern concurrently, but the snapshot is taken under
        // the arena locks, so the equality is exact at that instant.
        let t = GenTuple::unconstrained(vec![lrp(1, 3)], vec![Value::Int(41_417)]);
        let _s = RelStore::from_tuples(Schema::new(1, 1), vec![t.clone(), t]);
        let stats = storage_stats();
        assert_eq!(stats.value_lookups - stats.value_hits, stats.value_distinct);
        assert_eq!(stats.part_lookups - stats.part_hits, stats.part_distinct);
    }

    #[test]
    fn lookup_value_never_inserts() {
        let missing = Value::str("store-test-never-interned-sentinel");
        let before = storage_stats().value_distinct;
        assert_eq!(lookup_value(&missing), None);
        assert_eq!(storage_stats().value_distinct, before);
    }

    #[test]
    fn push_row_keeps_columns_in_sync() {
        let mut s = RelStore::empty(Schema::new(2, 1));
        for i in 0..5 {
            s.push_row(GenTuple::unconstrained(
                vec![lrp(i, 6), Lrp::point(i)],
                vec![Value::Int(i)],
            ));
        }
        assert_eq!(s.len(), 5);
        assert_eq!(s.t_offsets(0), &[0, 1, 2, 3, 4]);
        assert_eq!(s.t_periods(0), &[6, 6, 6, 6, 6]);
        assert_eq!(s.t_periods(1), &[0, 0, 0, 0, 0]);
        let rows = s.rows_vec();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[3].data(), &[Value::Int(3)]);
    }

    #[test]
    fn outcome_cache_evicts_at_cap() {
        // Shrink the global cap for the duration of the test; the cache
        // is semantically transparent, so concurrently running tests
        // only lose hits while the cap is small.
        let tuples: Vec<GenTuple> = (0..12)
            .map(|i| GenTuple::unconstrained(vec![lrp(i, 17)], vec![]))
            .collect();
        let s = RelStore::from_tuples(Schema::new(1, 0), tuples);
        let old_cap = outcome_cache_set_cap(4);
        let before = raw_storage_stats().outcome_evictions;
        for &id in s.part_ids() {
            outcome_cache_empty(id, false);
        }
        let after = raw_storage_stats().outcome_evictions;
        assert!(
            after - before >= 8,
            "12 inserts into a cap-4 cache must evict at least twice (got {})",
            after - before
        );
        assert!(outcome_cache_len() <= 4);
        outcome_cache_set_cap(old_cap);
    }

    #[test]
    fn outcome_cache_round_trips_pair_outcomes() {
        let t1 = GenTuple::unconstrained(vec![lrp(3, 9)], vec![]);
        let t2 = GenTuple::unconstrained(vec![lrp(5, 9)], vec![]);
        let s = RelStore::from_tuples(Schema::new(1, 0), vec![t1.clone(), t2]);
        let (a, b) = (s.part_ids()[0], s.part_ids()[1]);
        let hits0 = raw_storage_stats().outcome_hits;
        outcome_cache_pair(a, b, PairOpKey::Intersect, Some(Arc::clone(s.part(0))));
        let got = outcome_cached_pair(a, b, &PairOpKey::Intersect)
            .expect("just-inserted outcome must hit");
        assert_eq!(got.as_deref(), Some(&**s.part(0)));
        assert!(raw_storage_stats().outcome_hits > hits0);
        // A different op key is a distinct outcome.
        let join_key = PairOpKey::Join(vec![(0, 0)].into_boxed_slice());
        assert_eq!(outcome_cached_pair(a, b, &join_key), None);
    }

    #[test]
    fn index_is_built_once_and_reused() {
        let tuples: Vec<GenTuple> = (0..16)
            .map(|i| GenTuple::unconstrained(vec![lrp(i % 4, 4)], vec![]))
            .collect();
        let s = RelStore::from_tuples(Schema::new(1, 0), tuples);
        let before = storage_stats();
        let i1 = s.index_for(&[0], &[]);
        let i2 = s.index_for(&[0], &[]);
        assert!(Arc::ptr_eq(&i1, &i2));
        let after = storage_stats();
        assert_eq!(after.index_builds - before.index_builds, 1);
        assert!(after.index_reuses > before.index_reuses);
    }
}

//! Hash-consing of temporal tuple parts for one operator invocation.
//!
//! Pairwise operators (`intersect_in`, `join_on_in`, `difference_in`)
//! repeat the same temporal work many times: normalization and
//! complement systematically emit tuples that differ only in their data
//! columns or repeat the very same `(lrps, constraints)` pair, so the
//! quadratic pair loop keeps re-deriving identical lrp intersections and
//! constraint conjunctions. An [`Interner`] canonicalizes each distinct
//! temporal part to a small integer id, counts the duplicates it absorbs
//! (the `intern_hits` counter), and memoizes pairwise temporal outcomes
//! keyed by id pairs so each distinct combination is computed once.
//!
//! # Determinism
//!
//! The interner is shared across worker threads behind a [`Mutex`]. Which
//! worker happens to insert a key first is scheduling-dependent, but the
//! *totals* are not: over an operator invocation,
//! `hits == lookups − distinct keys`, and both terms depend only on the
//! input relations. The memo table is only used for computations that
//! record no execution counters of their own (the caller records pairs /
//! pruning per pair exactly as before), so sharing cached outcomes never
//! changes any other counter. That keeps every counter bit-identical at
//! 1, 2 and 8 threads.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use itd_constraint::ConstraintSystem;
use itd_lrp::Lrp;

/// The temporal part of a generalized tuple: its lrp vector and its
/// constraint system, with the data columns stripped.
pub(crate) type TemporalParts = (Vec<Lrp>, ConstraintSystem);

/// Id assigned to one distinct temporal part within one interner.
pub(crate) type TemporalId = u32;

/// Minimum pair count (`|left| * |right|`) before a pairwise operator
/// bothers to intern: below this the arena bookkeeping costs more than
/// the duplicate work it absorbs. Mirrors the index gate
/// [`crate::index::INDEX_MIN_PAIRS`].
pub(crate) const INTERN_MIN_PAIRS: usize = 32;

#[derive(Debug, Default)]
struct InternerInner {
    /// Canonical temporal parts, indexed by id.
    arena: Vec<Arc<TemporalParts>>,
    /// Reverse map from parts to id.
    ids: HashMap<TemporalParts, TemporalId>,
    /// Memoized pairwise temporal outcomes. `None` means the combination
    /// is empty / unsatisfiable; `Some` holds the shared result parts.
    pairs: HashMap<(TemporalId, TemporalId), Option<Arc<TemporalParts>>>,
    /// Memoized per-part emptiness (denotation has no solutions).
    empties: HashMap<TemporalId, bool>,
}

/// A per-operation hash-consing arena for temporal tuple parts.
///
/// Created fresh for each operator invocation (so ids and hit counts
/// never depend on what ran before) and shared by reference across the
/// invocation's worker threads.
#[derive(Debug, Default)]
pub(crate) struct Interner {
    inner: Mutex<InternerInner>,
    hits: AtomicU64,
}

impl Interner {
    pub(crate) fn new() -> Interner {
        Interner::default()
    }

    /// Canonicalizes a temporal part, returning its id. A part seen
    /// before counts as one hit and shares the existing allocation.
    pub(crate) fn intern(&self, lrps: &[Lrp], cons: &ConstraintSystem) -> TemporalId {
        let key: TemporalParts = (lrps.to_vec(), cons.clone());
        let mut inner = self.inner.lock().expect("interner poisoned");
        if let Some(&id) = inner.ids.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return id;
        }
        let id = inner.arena.len() as TemporalId;
        inner.arena.push(Arc::new(key.clone()));
        inner.ids.insert(key, id);
        id
    }

    /// The canonical shared allocation for an interned id.
    #[cfg(test)]
    pub(crate) fn parts(&self, id: TemporalId) -> Arc<TemporalParts> {
        let inner = self.inner.lock().expect("interner poisoned");
        Arc::clone(&inner.arena[id as usize])
    }

    /// Looks up the memoized outcome for an id pair. A present entry
    /// counts as one hit.
    #[allow(clippy::type_complexity)]
    pub(crate) fn cached_pair(
        &self,
        a: TemporalId,
        b: TemporalId,
    ) -> Option<Option<Arc<TemporalParts>>> {
        let inner = self.inner.lock().expect("interner poisoned");
        let found = inner.pairs.get(&(a, b)).cloned();
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Records the outcome for an id pair (`None` = empty combination).
    pub(crate) fn cache_pair(&self, a: TemporalId, b: TemporalId, outcome: Option<TemporalParts>) {
        let mut inner = self.inner.lock().expect("interner poisoned");
        inner.pairs.entry((a, b)).or_insert(outcome.map(Arc::new));
    }

    /// Looks up the memoized emptiness verdict for an id. A present entry
    /// counts as one hit.
    pub(crate) fn cached_empty(&self, id: TemporalId) -> Option<bool> {
        let inner = self.inner.lock().expect("interner poisoned");
        let found = inner.empties.get(&id).copied();
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Records the emptiness verdict for an id.
    pub(crate) fn cache_empty(&self, id: TemporalId, empty: bool) {
        let mut inner = self.inner.lock().expect("interner poisoned");
        inner.empties.entry(id).or_insert(empty);
    }

    /// Total duplicates absorbed so far (interned parts seen before plus
    /// memoized pair lookups that hit).
    pub(crate) fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itd_constraint::Atom;

    fn lrp(c: i64, k: i64) -> Lrp {
        Lrp::new(c, k).unwrap()
    }

    #[test]
    fn duplicate_parts_share_one_id_and_count_hits() {
        let int = Interner::new();
        let cons = ConstraintSystem::from_atoms(1, &[Atom::ge(0, 0)]).unwrap();
        let a = int.intern(&[lrp(1, 3)], &cons);
        let b = int.intern(&[lrp(1, 3)], &cons);
        let c = int.intern(&[lrp(2, 3)], &cons);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(int.hits(), 1);
        assert!(Arc::ptr_eq(&int.parts(a), &int.parts(b)));
    }

    #[test]
    fn pair_memo_hits_only_after_insert() {
        let int = Interner::new();
        let cons = ConstraintSystem::unconstrained(1);
        let a = int.intern(&[lrp(0, 2)], &cons);
        let b = int.intern(&[lrp(1, 2)], &cons);
        assert_eq!(int.cached_pair(a, b), None);
        int.cache_pair(a, b, None);
        assert_eq!(int.cached_pair(a, b), Some(None));
        int.cache_pair(b, a, Some((vec![lrp(1, 2)], cons.clone())));
        let hit = int.cached_pair(b, a).expect("cached");
        assert_eq!(hit.as_deref(), Some(&(vec![lrp(1, 2)], cons)));
        // one hit per successful lookup, none for the miss
        assert_eq!(int.hits(), 2);
    }

    #[test]
    fn emptiness_memo_hits_only_after_insert() {
        let int = Interner::new();
        let id = int.intern(&[lrp(0, 3)], &ConstraintSystem::unconstrained(1));
        assert_eq!(int.cached_empty(id), None);
        int.cache_empty(id, false);
        assert_eq!(int.cached_empty(id), Some(false));
        assert_eq!(int.hits(), 1);
    }

    #[test]
    fn hits_equal_lookups_minus_distinct_regardless_of_order() {
        let parts: Vec<TemporalParts> = (0..4)
            .map(|i| (vec![lrp(i % 2, 2)], ConstraintSystem::unconstrained(1)))
            .collect();
        // Same multiset of lookups in two different orders.
        let mut rev = parts.clone();
        rev.reverse();
        for seq in [parts, rev] {
            let int = Interner::new();
            for (lrps, cons) in &seq {
                int.intern(lrps, cons);
            }
            assert_eq!(int.hits(), 4 - 2);
        }
    }
}

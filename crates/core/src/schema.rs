//! Relation schemas: temporal arity × data arity.

use std::fmt;

/// The shape of a generalized relation: `temporal` lrp-valued attributes
/// followed by `data` attributes over the generic sort.
///
/// The paper's interval predicates have temporal arity 2, but the algebra
/// needs arbitrary arities for intermediate results (e.g. concatenating two
/// intervals passes through temporal arity 3 before projecting the shared
/// endpoint away — footnote 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Schema {
    temporal: usize,
    data: usize,
}

impl Schema {
    /// A schema with `temporal` lrp attributes and `data` data attributes.
    pub fn new(temporal: usize, data: usize) -> Schema {
        Schema { temporal, data }
    }

    /// Number of temporal attributes.
    #[inline]
    pub fn temporal(&self) -> usize {
        self.temporal
    }

    /// Number of data attributes.
    #[inline]
    pub fn data(&self) -> usize {
        self.data
    }

    /// Is this a purely temporal schema (`data == 0`)?
    #[inline]
    pub fn is_purely_temporal(&self) -> bool {
        self.data == 0
    }

    /// The schema of a cross product / join result with `self` on the left.
    pub fn concat(&self, right: &Schema) -> Schema {
        Schema {
            temporal: self.temporal + right.temporal,
            data: self.data + right.data,
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(temporal: {}, data: {})", self.temporal, self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let s = Schema::new(2, 3);
        assert_eq!(s.temporal(), 2);
        assert_eq!(s.data(), 3);
        assert!(!s.is_purely_temporal());
        assert!(Schema::new(1, 0).is_purely_temporal());
    }

    #[test]
    fn concat_adds_arities() {
        assert_eq!(
            Schema::new(2, 1).concat(&Schema::new(1, 2)),
            Schema::new(3, 3)
        );
    }

    #[test]
    fn display() {
        assert_eq!(Schema::new(2, 1).to_string(), "(temporal: 2, data: 1)");
    }
}

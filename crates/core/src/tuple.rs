//! Generalized tuples (Definition 2.2).

use std::fmt;
use std::sync::Arc;

use itd_constraint::{Atom, ConstraintSystem};
use itd_lrp::Lrp;

use crate::error::CoreError;
use crate::schema::Schema;
use crate::value::Value;
use crate::Result;

/// The temporal part of a generalized tuple — its lrp vector plus its
/// constraint system — shared behind an [`Arc`].
///
/// Cloning a tuple (and, transitively, snapshotting a relation) bumps a
/// reference count instead of copying the temporal payload, and the global
/// store (`crate::store`) hash-conses these parts so equal parts share
/// one allocation across relations.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct TemporalPart {
    pub(crate) lrps: Vec<Lrp>,
    pub(crate) cons: ConstraintSystem,
}

/// A generalized tuple: lrp values for the temporal attributes, concrete
/// values for the data attributes, and a conjunction of restricted
/// constraints over the temporal attributes.
///
/// Denotes the set of concrete tuples
/// `{(x₁..x_k, d₁..d_l) | xᵢ ∈ lrpᵢ, constraints(x₁..x_k)}` —
/// one concrete tuple per admissible combination of lrp elements
/// (Example 2.2 of the paper).
///
/// # Examples
/// ```
/// use itd_core::{Atom, GenTuple, Lrp};
/// // Example 2.2: [1, 1+2n] ∧ X2 ≥ 0 denotes {[1,1], [1,3], [1,5], …}.
/// let t = GenTuple::builder()
///     .point(1)
///     .lrp(Lrp::new(1, 2).unwrap())
///     .atom(Atom::ge(1, 0))
///     .build()
///     .unwrap();
/// assert!(t.contains(&[1, 5], &[]));
/// assert!(!t.contains(&[1, -1], &[]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenTuple {
    part: Arc<TemporalPart>,
    data: Vec<Value>,
}

impl GenTuple {
    /// Starts building a tuple; see [`GenTupleBuilder`].
    pub fn builder() -> GenTupleBuilder {
        GenTupleBuilder::default()
    }

    /// Builds a generalized tuple from its three components.
    ///
    /// # Errors
    /// [`CoreError::SchemaMismatch`] if the constraint system's arity does
    /// not equal the number of lrps.
    #[cfg(feature = "legacy-api")]
    #[deprecated(
        since = "0.2.0",
        note = "use `GenTuple::builder()` with `.constraints(..)`"
    )]
    pub fn new(lrps: Vec<Lrp>, cons: ConstraintSystem, data: Vec<Value>) -> Result<GenTuple> {
        GenTuple::from_parts(lrps, cons, data)
    }

    /// Builds a tuple from its three components (the internal, non-builder
    /// path used by the algebra, which produces constraint systems
    /// wholesale).
    ///
    /// # Errors
    /// [`CoreError::SchemaMismatch`] if the constraint system's arity does
    /// not equal the number of lrps.
    pub(crate) fn from_parts(
        lrps: Vec<Lrp>,
        cons: ConstraintSystem,
        data: Vec<Value>,
    ) -> Result<GenTuple> {
        if cons.arity() != lrps.len() {
            return Err(CoreError::SchemaMismatch {
                expected: Schema::new(lrps.len(), data.len()),
                found: Schema::new(cons.arity(), data.len()),
            });
        }
        Ok(GenTuple {
            part: Arc::new(TemporalPart { lrps, cons }),
            data,
        })
    }

    /// Builds a tuple around an existing (typically hash-consed) temporal
    /// part. The caller guarantees arity consistency.
    pub(crate) fn from_part(part: Arc<TemporalPart>, data: Vec<Value>) -> GenTuple {
        debug_assert_eq!(part.cons.arity(), part.lrps.len());
        GenTuple { part, data }
    }

    /// The shared temporal part (store-internal accessor).
    pub(crate) fn part_arc(&self) -> &Arc<TemporalPart> {
        &self.part
    }

    /// Swaps the temporal part for a canonical (hash-consed) allocation
    /// holding the same value.
    pub(crate) fn canonicalize_part(&mut self, part: Arc<TemporalPart>) {
        debug_assert_eq!(*self.part, *part);
        self.part = part;
    }

    /// A tuple with unconstrained temporal attributes.
    pub fn unconstrained(lrps: Vec<Lrp>, data: Vec<Value>) -> GenTuple {
        let cons = ConstraintSystem::unconstrained(lrps.len());
        GenTuple {
            part: Arc::new(TemporalPart { lrps, cons }),
            data,
        }
    }

    /// Convenience constructor from atoms.
    ///
    /// # Errors
    /// Propagates constraint-closure arithmetic failures.
    #[cfg(feature = "legacy-api")]
    #[deprecated(since = "0.2.0", note = "use `GenTuple::builder()` with `.atom(..)`")]
    pub fn with_atoms(lrps: Vec<Lrp>, atoms: &[Atom], data: Vec<Value>) -> Result<GenTuple> {
        let cons = ConstraintSystem::from_atoms(lrps.len(), atoms)?;
        GenTuple::from_parts(lrps, cons, data)
    }

    /// The schema of this tuple.
    pub fn schema(&self) -> Schema {
        Schema::new(self.part.lrps.len(), self.data.len())
    }

    /// Temporal attribute values.
    pub fn lrps(&self) -> &[Lrp] {
        &self.part.lrps
    }

    /// The constraint system (always in closed canonical form).
    pub fn constraints(&self) -> &ConstraintSystem {
        &self.part.cons
    }

    /// Data attribute values.
    pub fn data(&self) -> &[Value] {
        &self.data
    }

    /// The *free extension* `t*` (Definition 3.1): this tuple without its
    /// constraints.
    pub fn free_extension(&self) -> GenTuple {
        GenTuple::unconstrained(self.part.lrps.clone(), self.data.clone())
    }

    /// Does the tuple denote the concrete tuple `(times, data)`?
    ///
    /// # Panics
    /// If `times.len()` differs from the temporal arity.
    pub fn contains(&self, times: &[i64], data: &[Value]) -> bool {
        assert_eq!(times.len(), self.part.lrps.len(), "temporal arity mismatch");
        if data != self.data.as_slice() {
            return false;
        }
        self.part
            .lrps
            .iter()
            .zip(times)
            .all(|(l, &x)| l.contains(x))
            && self.part.cons.satisfied_by(times)
    }

    /// Purely temporal membership (requires data arity 0 on the tuple only
    /// when the caller passes no data).
    pub fn contains_times(&self, times: &[i64]) -> bool {
        self.contains(times, &self.data.clone())
    }

    /// Quick *syntactic* emptiness check: unsatisfiable constraints.
    ///
    /// This is sound but not complete — a satisfiable constraint system can
    /// still have no solution *on the lrp grid* (the Figure 2 phenomenon);
    /// use [`GenTuple::is_empty`] for the exact test.
    pub fn is_trivially_empty(&self) -> bool {
        !self.part.cons.is_satisfiable()
    }

    /// Exact emptiness over the grid: normalizes and checks the grid
    /// systems (Theorem 3.5 route).
    ///
    /// # Errors
    /// Arithmetic overflow during normalization.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(!crate::normalize::is_nonempty(self)?)
    }

    /// Replaces the constraint system (used by selection).
    pub(crate) fn with_constraints(&self, cons: ConstraintSystem) -> GenTuple {
        debug_assert_eq!(cons.arity(), self.part.lrps.len());
        GenTuple {
            part: Arc::new(TemporalPart {
                lrps: self.part.lrps.clone(),
                cons,
            }),
            data: self.data.clone(),
        }
    }

    /// Internal accessor for sibling modules.
    pub(crate) fn into_parts(self) -> (Vec<Lrp>, ConstraintSystem, Vec<Value>) {
        match Arc::try_unwrap(self.part) {
            Ok(part) => (part.lrps, part.cons, self.data),
            Err(part) => (part.lrps.clone(), part.cons.clone(), self.data),
        }
    }

    /// Is the tuple in normal form (Definition 3.2)?
    ///
    /// All infinite lrps must share a single period `k`, and every finite
    /// constraint bound must be *grid-aligned*: re-rounding it onto the grid
    /// (the `to_grid`/`from_grid` round trip) must leave the system
    /// unchanged.
    pub fn is_normal_form(&self) -> Result<bool> {
        crate::normalize::is_normal_form(self)
    }

    /// Normalization (Theorem 3.2): an equivalent set of tuples in normal
    /// form. Empty result ⟺ the tuple denotes the empty set.
    ///
    /// # Errors
    /// Arithmetic overflow while computing the common period (`lcm` of the
    /// lrp periods can be large, Appendix A.1).
    pub fn normalize(&self) -> Result<Vec<GenTuple>> {
        crate::normalize::normalize(self)
    }
}

/// Incremental, named-step constructor for [`GenTuple`].
///
/// Temporal attributes are appended with [`GenTupleBuilder::lrp`] /
/// [`GenTupleBuilder::point`], constraint atoms with
/// [`GenTupleBuilder::atom`], and data attributes with
/// [`GenTupleBuilder::datum`]; [`GenTupleBuilder::build`] validates
/// everything at once. Reads like the paper's tuple notation:
///
/// ```
/// use itd_core::{Atom, GenTuple, Lrp};
/// // Example 2.2: [1, 1+2n] ∧ X2 ≥ 0.
/// let t = GenTuple::builder()
///     .point(1)
///     .lrp(Lrp::new(1, 2)?)
///     .atom(Atom::ge(1, 0))
///     .build()?;
/// assert!(t.contains(&[1, 5], &[]));
/// # Ok::<(), itd_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct GenTupleBuilder {
    lrps: Vec<Lrp>,
    atoms: Vec<Atom>,
    cons: Option<ConstraintSystem>,
    data: Vec<Value>,
}

impl GenTupleBuilder {
    /// Appends one temporal attribute.
    #[must_use]
    pub fn lrp(mut self, lrp: Lrp) -> GenTupleBuilder {
        self.lrps.push(lrp);
        self
    }

    /// Appends many temporal attributes.
    #[must_use]
    pub fn lrps(mut self, lrps: impl IntoIterator<Item = Lrp>) -> GenTupleBuilder {
        self.lrps.extend(lrps);
        self
    }

    /// Appends a point attribute (`Lrp::point(c)`).
    #[must_use]
    pub fn point(mut self, c: i64) -> GenTupleBuilder {
        self.lrps.push(Lrp::point(c));
        self
    }

    /// Adds one constraint atom.
    #[must_use]
    pub fn atom(mut self, atom: Atom) -> GenTupleBuilder {
        self.atoms.push(atom);
        self
    }

    /// Adds many constraint atoms.
    #[must_use]
    pub fn atoms(mut self, atoms: impl IntoIterator<Item = Atom>) -> GenTupleBuilder {
        self.atoms.extend(atoms);
        self
    }

    /// Uses a whole [`ConstraintSystem`] as the base (atoms added before or
    /// after are conjoined onto it). Its arity must match the final number
    /// of temporal attributes.
    #[must_use]
    pub fn constraints(mut self, cons: ConstraintSystem) -> GenTupleBuilder {
        self.cons = Some(cons);
        self
    }

    /// Appends one data attribute.
    #[must_use]
    pub fn datum(mut self, value: impl Into<Value>) -> GenTupleBuilder {
        self.data.push(value.into());
        self
    }

    /// Appends many data attributes.
    #[must_use]
    pub fn data(mut self, data: impl IntoIterator<Item = Value>) -> GenTupleBuilder {
        self.data.extend(data);
        self
    }

    /// Validates and builds the tuple.
    ///
    /// # Errors
    /// [`CoreError::SchemaMismatch`] if an explicit constraint system's
    /// arity disagrees with the temporal attributes; constraint-closure
    /// arithmetic failures from the added atoms.
    pub fn build(self) -> Result<GenTuple> {
        let mut cons = match self.cons {
            Some(cons) => {
                if cons.arity() != self.lrps.len() {
                    return Err(CoreError::SchemaMismatch {
                        expected: Schema::new(self.lrps.len(), self.data.len()),
                        found: Schema::new(cons.arity(), self.data.len()),
                    });
                }
                cons
            }
            None => ConstraintSystem::unconstrained(self.lrps.len()),
        };
        for atom in &self.atoms {
            if atom.max_var() >= self.lrps.len() {
                return Err(CoreError::AttributeOutOfRange {
                    index: atom.max_var(),
                    arity: self.lrps.len(),
                });
            }
            cons.add(*atom)?;
        }
        GenTuple::from_parts(self.lrps, cons, self.data)
    }
}

impl fmt::Display for GenTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("[")?;
        for (i, l) in self.part.lrps.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{l}")?;
        }
        for d in &self.data {
            write!(f, "; {d}")?;
        }
        f.write_str("]")?;
        if !self.part.cons.is_unconstrained() {
            write!(f, " where {}", self.part.cons)?;
        }
        Ok(())
    }
}

/// Serde keeps the pre-columnar on-disk shape `{lrps, cons, data}` so
/// files written before the `Arc`-shared representation stay readable,
/// and validates arity on the way in (the old derive accepted
/// inconsistent tuples silently).
#[cfg(feature = "serde")]
mod tuple_serde {
    use super::GenTuple;
    use serde::{de, Content, Deserialize, Serialize};

    impl Serialize for GenTuple {
        fn to_content(&self) -> Content {
            Content::Map(vec![
                (
                    "lrps".to_string(),
                    Content::Seq(self.lrps().iter().map(Serialize::to_content).collect()),
                ),
                ("cons".to_string(), self.constraints().to_content()),
                (
                    "data".to_string(),
                    Content::Seq(self.data().iter().map(Serialize::to_content).collect()),
                ),
            ])
        }
    }

    impl Deserialize for GenTuple {
        fn from_content(content: &Content) -> Result<Self, de::DeError> {
            let entries = de::as_struct_map(content, "GenTuple")?;
            let lrps = de::field(entries, "lrps", "GenTuple")?;
            let cons = de::field(entries, "cons", "GenTuple")?;
            let data = de::field(entries, "data", "GenTuple")?;
            GenTuple::from_parts(lrps, cons, data).map_err(|e| de::DeError::msg(e.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lrp(c: i64, k: i64) -> Lrp {
        Lrp::new(c, k).unwrap()
    }

    #[test]
    #[cfg(feature = "legacy-api")]
    #[allow(deprecated)]
    fn deprecated_constructors_agree_with_builder() {
        // The 0.1 positional constructors remain as shims; they must build
        // exactly what the builder builds.
        let built = GenTuple::builder()
            .lrps(vec![lrp(0, 2), lrp(1, 4)])
            .atoms([Atom::ge(0, 3), Atom::diff_le(0, 1, 5)])
            .datum(Value::Int(7))
            .build()
            .unwrap();
        let legacy = GenTuple::with_atoms(
            vec![lrp(0, 2), lrp(1, 4)],
            &[Atom::ge(0, 3), Atom::diff_le(0, 1, 5)],
            vec![Value::Int(7)],
        )
        .unwrap();
        assert_eq!(built, legacy);
        let from_new = GenTuple::new(
            legacy.lrps().to_vec(),
            legacy.constraints().clone(),
            legacy.data().to_vec(),
        )
        .unwrap();
        assert_eq!(built, from_new);
        // Arity mismatches fail identically through both paths.
        assert!(GenTuple::with_atoms(vec![], &[], vec![Value::Int(1)]).is_ok());
        assert!(GenTuple::builder().atom(Atom::ge(2, 0)).build().is_err());
    }

    #[test]
    fn example_2_2_first_tuple() {
        // [1, 1+2n] ∧ X2 >= 0 denotes {[1,1], [1,3], [1,5], …}
        let t = GenTuple::builder()
            .lrps(vec![Lrp::point(1), lrp(1, 2)])
            .atoms([Atom::ge(1, 0)])
            .build()
            .unwrap();
        assert!(t.contains(&[1, 1], &[]));
        assert!(t.contains(&[1, 3], &[]));
        assert!(t.contains(&[1, 5], &[]));
        assert!(!t.contains(&[1, -1], &[]));
        assert!(!t.contains(&[1, 2], &[]));
        assert!(!t.contains(&[2, 3], &[]));
    }

    #[test]
    fn example_2_2_second_tuple() {
        // [3+2n1, 5+2n2] ∧ X1 = X2 − 2 denotes {…, [3,5], [5,7], [7,9], …}
        let t = GenTuple::builder()
            .lrps(vec![lrp(3, 2), lrp(5, 2)])
            .atoms([Atom::diff_eq(0, 1, -2)])
            .build()
            .unwrap();
        assert!(t.contains(&[3, 5], &[]));
        assert!(t.contains(&[5, 7], &[]));
        assert!(t.contains(&[1, 3], &[]));
        assert!(!t.contains(&[3, 7], &[]));
        assert!(!t.contains(&[3, 4], &[]));
    }

    #[test]
    fn data_attributes_must_match() {
        let t = GenTuple::unconstrained(vec![lrp(0, 2)], vec![Value::str("r1")]);
        assert!(t.contains(&[4], &[Value::str("r1")]));
        assert!(!t.contains(&[4], &[Value::str("r2")]));
        assert!(!t.contains(&[3], &[Value::str("r1")]));
    }

    #[test]
    fn constructor_validates_arity() {
        let cons = ConstraintSystem::unconstrained(3);
        let err = GenTuple::from_parts(vec![lrp(0, 2)], cons, vec![]).unwrap_err();
        assert!(matches!(err, CoreError::SchemaMismatch { .. }));
    }

    #[test]
    fn free_extension_drops_constraints() {
        let t = GenTuple::builder()
            .lrps(vec![lrp(0, 2)])
            .atoms([Atom::ge(0, 10)])
            .build()
            .unwrap();
        let free = t.free_extension();
        assert!(free.constraints().is_unconstrained());
        assert!(free.contains(&[0], &[]));
        assert!(!t.contains(&[0], &[]));
    }

    #[test]
    fn trivial_emptiness() {
        let t = GenTuple::builder()
            .lrps(vec![lrp(0, 2)])
            .atoms([Atom::ge(0, 10), Atom::le(0, 5)])
            .build()
            .unwrap();
        assert!(t.is_trivially_empty());
        assert!(t.is_empty().unwrap());
    }

    #[test]
    fn grid_emptiness_not_caught_trivially() {
        // X1 = X2 + 1 with both attributes even: satisfiable over Z,
        // empty on the grid.
        let t = GenTuple::builder()
            .lrps(vec![lrp(0, 2), lrp(0, 2)])
            .atoms([Atom::diff_eq(0, 1, 1)])
            .build()
            .unwrap();
        assert!(!t.is_trivially_empty());
        assert!(t.is_empty().unwrap());
    }

    #[test]
    fn display_is_paper_like() {
        let t = GenTuple::builder()
            .lrps(vec![lrp(2, 2), lrp(4, 2)])
            .atoms([Atom::diff_eq(0, 1, -2)])
            .data(vec![Value::str("robot1"), Value::str("task1")])
            .build()
            .unwrap();
        let text = t.to_string();
        assert!(text.contains("2n"), "{text}");
        assert!(text.contains("robot1"), "{text}");
        assert!(text.contains("where"), "{text}");
        // Unconstrained tuples omit the where-clause.
        let t = GenTuple::unconstrained(vec![Lrp::point(3)], vec![]);
        assert_eq!(t.to_string(), "[3]");
    }
}

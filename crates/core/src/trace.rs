//! Span-tree tracing of algebra execution.
//!
//! A [`TraceSink`] attached to an [`ExecContext`](crate::ExecContext) (via
//! [`ExecContext::traced`](crate::ExecContext::traced)) records one
//! [`Span`] per relation-level operator invocation — kind, tuples in/out,
//! candidate pairs, pruned tuples, simplified atoms, the largest common
//! period seen, and wall time — arranged as a tree: a span opened while
//! another is still open becomes its child. Higher layers (the query
//! evaluator) can interleave their own *node* spans via
//! [`ExecContext::node_span`](crate::ExecContext::node_span), so an
//! EXPLAIN ANALYZE tree shows each plan node with the operator calls it
//! issued underneath.
//!
//! # Determinism
//!
//! Span ids are assigned from a context-local counter in *begin order*.
//! Every span begins on the thread driving the evaluation (parallelism
//! lives *inside* an operator, behind [`std::thread::scope`], which joins
//! before the operator returns), so the tree shape and ids are identical
//! at any thread budget — only the recorded wall times differ. Strip them
//! with [`Trace::without_timing`] to compare traces across runs.
//!
//! # Exactness
//!
//! Per-span operator counters are *deltas* of the context's aggregate
//! counters between span begin and end. Same-kind operator spans never
//! nest (an operator does not re-enter itself), so
//! [`Trace::op_totals`] reproduces the context's
//! [`StatsSnapshot`] exactly — including wall time, which is measured
//! once per call and written to both.

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::exec::{OpKind, OpSnapshot, StatsSnapshot};

/// What a span stands for: an algebra operator call, or a node label
/// supplied by a higher layer (a query plan node, a REPL phase, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpanLabel {
    /// One relation-level `*_in` operator invocation.
    Op(OpKind),
    /// A caller-labelled region (see
    /// [`ExecContext::node_span`](crate::ExecContext::node_span)).
    Node(String),
}

impl SpanLabel {
    /// Display name: the operator's stable name, or the node label.
    pub fn name(&self) -> &str {
        match self {
            SpanLabel::Op(kind) => kind.name(),
            SpanLabel::Node(label) => label,
        }
    }

    /// Whether this is an operator span.
    pub fn is_op(&self) -> bool {
        matches!(self, SpanLabel::Op(_))
    }
}

/// One recorded region of work. Ids are dense: span `i` is `spans()[i]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Deterministic id (begin order, starting at 0).
    pub id: u64,
    /// Id of the innermost span still open when this one began.
    pub parent: Option<u64>,
    /// Number of ancestors (roots have depth 0).
    pub depth: u32,
    /// Operator kind or node label.
    pub label: SpanLabel,
    /// Stable id of the query-plan node this span executes, if the caller
    /// supplied one (see
    /// [`ExecContext::plan_span`](crate::ExecContext::plan_span)). Lets
    /// EXPLAIN ANALYZE join plan and trace by id instead of by label text.
    pub plan_node: Option<u64>,
    /// Generalized tuples consumed during this span (operator spans only).
    pub tuples_in: u64,
    /// Generalized tuples produced.
    pub tuples_out: u64,
    /// Candidate pairs / refinement combinations examined.
    pub pairs: u64,
    /// Candidates dropped as empty or unsatisfiable.
    pub empties_pruned: u64,
    /// Candidate pairs examined after residue-index filtering.
    pub index_probes: u64,
    /// Candidate pairs skipped outright by the residue index.
    pub index_pruned: u64,
    /// Constraint atoms rewritten.
    pub atoms_simplified: u64,
    /// Tuples dropped by compaction as subsumed by another tuple.
    pub tuples_subsumed: u64,
    /// Tuples eliminated by coalescing residue-class groups.
    pub coalesce_merges: u64,
    /// Duplicate temporal parts absorbed by hash-consing.
    pub intern_hits: u64,
    /// Largest common period `k` encountered inside the span.
    pub max_period: u64,
    /// Begin time, nanoseconds since the sink was created.
    pub start_nanos: u64,
    /// Wall time, in nanoseconds (0 until the span ends).
    pub nanos: u64,
}

impl Span {
    /// Wall time as a [`Duration`].
    pub fn wall_time(&self) -> Duration {
        Duration::from_nanos(self.nanos)
    }
}

#[derive(Debug, Default)]
struct SinkInner {
    /// Open spans, outermost first.
    stack: Vec<u64>,
    spans: Vec<Span>,
}

/// Collects spans for one [`ExecContext`](crate::ExecContext).
///
/// Created by [`ExecContext::traced`](crate::ExecContext::traced); read
/// back as a [`Trace`] via
/// [`ExecContext::take_trace`](crate::ExecContext::take_trace). All
/// methods are internal — operators and the query layer drive the sink
/// through the context.
#[derive(Debug)]
pub struct TraceSink {
    epoch: Instant,
    inner: Mutex<SinkInner>,
}

impl TraceSink {
    pub(crate) fn new() -> TraceSink {
        TraceSink {
            epoch: Instant::now(),
            inner: Mutex::new(SinkInner::default()),
        }
    }

    /// Opens a span under the innermost open span; returns its id.
    pub(crate) fn begin(&self, label: SpanLabel, plan_node: Option<u64>) -> u64 {
        let start_nanos = self.epoch.elapsed().as_nanos() as u64;
        let mut inner = self.inner.lock().expect("trace sink poisoned");
        let id = inner.spans.len() as u64;
        let parent = inner.stack.last().copied();
        let depth = inner.stack.len() as u32;
        inner.stack.push(id);
        inner.spans.push(Span {
            id,
            parent,
            depth,
            label,
            plan_node,
            tuples_in: 0,
            tuples_out: 0,
            pairs: 0,
            empties_pruned: 0,
            index_probes: 0,
            index_pruned: 0,
            atoms_simplified: 0,
            tuples_subsumed: 0,
            coalesce_merges: 0,
            intern_hits: 0,
            max_period: 0,
            start_nanos,
            nanos: 0,
        });
        id
    }

    /// Closes span `id`, applying `fill` to write its final counters.
    pub(crate) fn end(&self, id: u64, fill: impl FnOnce(&mut Span)) {
        let mut inner = self.inner.lock().expect("trace sink poisoned");
        inner.stack.retain(|open| *open != id);
        if let Some(span) = inner.spans.get_mut(id as usize) {
            fill(span);
        }
    }

    /// Mutates an open span in place (e.g. a node span's output count).
    pub(crate) fn update(&self, id: u64, f: impl FnOnce(&mut Span)) {
        let mut inner = self.inner.lock().expect("trace sink poisoned");
        if let Some(span) = inner.spans.get_mut(id as usize) {
            f(span);
        }
    }

    /// Records a common period `k` against the innermost open span of
    /// `kind`. Periods are observed mid-operator (sometimes from worker
    /// threads), and `max` does not survive the begin/end delta trick, so
    /// they are routed here directly.
    pub(crate) fn record_period(&self, kind: OpKind, k: i64) {
        let mut inner = self.inner.lock().expect("trace sink poisoned");
        let open = inner
            .stack
            .iter()
            .rev()
            .copied()
            .find(|id| inner.spans[*id as usize].label == SpanLabel::Op(kind));
        if let Some(id) = open {
            let span = &mut inner.spans[id as usize];
            span.max_period = span.max_period.max(k.max(0) as u64);
        }
    }

    /// Drains the recorded spans (ids stay dense and start at 0 again for
    /// spans recorded afterwards).
    pub(crate) fn take(&self) -> Trace {
        let mut inner = self.inner.lock().expect("trace sink poisoned");
        inner.stack.clear();
        Trace {
            spans: std::mem::take(&mut inner.spans),
        }
    }
}

/// RAII guard for a caller-labelled span; see
/// [`ExecContext::node_span`](crate::ExecContext::node_span).
///
/// The span opens when the guard is created and closes when it drops. On
/// an untraced context the guard is inert.
#[derive(Debug)]
pub struct NodeSpan<'a> {
    sink: Option<(&'a TraceSink, u64)>,
    start: Instant,
}

impl<'a> NodeSpan<'a> {
    pub(crate) fn new(
        sink: Option<&'a TraceSink>,
        label: impl FnOnce() -> String,
        plan_node: Option<u64>,
    ) -> NodeSpan<'a> {
        NodeSpan {
            sink: sink.map(|s| (s, s.begin(SpanLabel::Node(label()), plan_node))),
            start: Instant::now(),
        }
    }

    /// Records how many tuples this region produced.
    pub fn set_tuples_out(&self, n: u64) {
        if let Some((sink, id)) = self.sink {
            sink.update(id, |span| span.tuples_out = n);
        }
    }
}

impl Drop for NodeSpan<'_> {
    fn drop(&mut self) {
        if let Some((sink, id)) = self.sink.take() {
            let nanos = self.start.elapsed().as_nanos() as u64;
            sink.end(id, |span| span.nanos = nanos);
        }
    }
}

/// An immutable span tree drained from a [`TraceSink`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    spans: Vec<Span>,
}

impl Trace {
    /// All spans in begin order; `spans()[i].id == i`.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Top-level spans (no parent), in begin order.
    pub fn roots(&self) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(|s| s.parent.is_none())
    }

    /// Direct children of span `id`, in begin order.
    pub fn children(&self, id: u64) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.parent == Some(id))
    }

    /// The first span recorded for plan node `id` (see
    /// [`ExecContext::plan_span`](crate::ExecContext::plan_span)), if any.
    pub fn span_for_plan_node(&self, id: u64) -> Option<&Span> {
        self.spans.iter().find(|s| s.plan_node == Some(id))
    }

    /// Sums the operator counters attributed to plan node `id`: every
    /// operator span whose *nearest* enclosing node span carries that plan
    /// id. Work issued by a node's children is charged to the children,
    /// not rolled up — this is the "actual" column of EXPLAIN ANALYZE.
    pub fn op_totals_for_plan_node(&self, id: u64) -> StatsSnapshot {
        let mut ops = [OpSnapshot::default(); OpKind::ALL.len()];
        for span in &self.spans {
            let SpanLabel::Op(kind) = span.label else {
                continue;
            };
            // Climb to the nearest ancestor that is a node span.
            let mut at = span.parent;
            let owner = loop {
                match at {
                    Some(p) => {
                        let parent = &self.spans[p as usize];
                        if parent.label.is_op() {
                            at = parent.parent;
                        } else {
                            break Some(parent);
                        }
                    }
                    None => break None,
                }
            };
            if owner.and_then(|s| s.plan_node) == Some(id) {
                let op = &mut ops[kind.index()];
                op.calls += 1;
                op.tuples_in += span.tuples_in;
                op.tuples_out += span.tuples_out;
                op.pairs += span.pairs;
                op.empties_pruned += span.empties_pruned;
                op.index_probes += span.index_probes;
                op.index_pruned += span.index_pruned;
                op.atoms_simplified += span.atoms_simplified;
                op.tuples_subsumed += span.tuples_subsumed;
                op.coalesce_merges += span.coalesce_merges;
                op.intern_hits += span.intern_hits;
                op.max_period = op.max_period.max(span.max_period);
                op.nanos += span.nanos;
            }
        }
        StatsSnapshot { ops }
    }

    /// A copy with `start_nanos`/`nanos` zeroed on every span — the
    /// timing-independent tree shape, suitable for equality comparison
    /// across runs and thread counts.
    pub fn without_timing(&self) -> Trace {
        Trace {
            spans: self
                .spans
                .iter()
                .map(|s| Span {
                    start_nanos: 0,
                    nanos: 0,
                    ..s.clone()
                })
                .collect(),
        }
    }

    /// Sums the operator spans back into a [`StatsSnapshot`].
    ///
    /// For a trace drained from a fresh context this equals the context's
    /// own aggregate [`stats`](crate::ExecContext::stats) exactly, wall
    /// time included — the acceptance check that no operator work escapes
    /// the span tree. Node spans contribute nothing.
    pub fn op_totals(&self) -> StatsSnapshot {
        let mut ops = [OpSnapshot::default(); OpKind::ALL.len()];
        for span in &self.spans {
            if let SpanLabel::Op(kind) = span.label {
                let op = &mut ops[kind.index()];
                op.calls += 1;
                op.tuples_in += span.tuples_in;
                op.tuples_out += span.tuples_out;
                op.pairs += span.pairs;
                op.empties_pruned += span.empties_pruned;
                op.index_probes += span.index_probes;
                op.index_pruned += span.index_pruned;
                op.atoms_simplified += span.atoms_simplified;
                op.tuples_subsumed += span.tuples_subsumed;
                op.coalesce_merges += span.coalesce_merges;
                op.intern_hits += span.intern_hits;
                op.max_period = op.max_period.max(span.max_period);
                op.nanos += span.nanos;
            }
        }
        StatsSnapshot { ops }
    }

    /// Folds the span tree into flamegraph *collapsed stack* lines — one
    /// `frame;frame;frame self_nanos` line per distinct root-to-span
    /// path with nonzero self time, merged and sorted lexicographically
    /// (the format `inferno` / `flamegraph.pl` consume).
    ///
    /// Self time is a span's wall time minus its direct children's, so
    /// the lines sum back to the roots' total wall time. Frame names are
    /// the span labels with `;` (the stack separator) and newlines
    /// replaced; spaces are legal because the sample value follows the
    /// *last* space.
    pub fn to_folded(&self) -> String {
        fn frame(span: &Span) -> String {
            span.label
                .name()
                .chars()
                .map(|c| match c {
                    ';' => ':',
                    '\n' | '\r' => ' ',
                    c => c,
                })
                .collect()
        }
        let mut stacks: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
        for span in &self.spans {
            let children: u64 = self.children(span.id).map(|c| c.nanos).sum();
            let self_nanos = span.nanos.saturating_sub(children);
            if self_nanos == 0 {
                continue;
            }
            let mut frames = vec![frame(span)];
            let mut at = span.parent;
            while let Some(p) = at {
                let parent = &self.spans[p as usize];
                frames.push(frame(parent));
                at = parent.parent;
            }
            frames.reverse();
            *stacks.entry(frames.join(";")).or_insert(0) += self_nanos;
        }
        let mut out = String::new();
        for (stack, nanos) in stacks {
            out.push_str(&stack);
            out.push(' ');
            out.push_str(&nanos.to_string());
            out.push('\n');
        }
        out
    }

    /// Renders the span tree as indented text (the `\trace` REPL view and
    /// the EXPLAIN ANALYZE annotation).
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        let roots: Vec<&Span> = self.roots().collect();
        for (i, root) in roots.iter().enumerate() {
            self.render_node(&mut out, root, "", i + 1 == roots.len(), true);
        }
        out
    }

    fn render_node(&self, out: &mut String, span: &Span, prefix: &str, last: bool, root: bool) {
        let (branch, next_prefix) = if root {
            ("", String::new())
        } else if last {
            ("└─ ", format!("{prefix}   "))
        } else {
            ("├─ ", format!("{prefix}│  "))
        };
        out.push_str(prefix);
        out.push_str(branch);
        out.push_str(&describe(span));
        out.push('\n');
        let children: Vec<&Span> = self.children(span.id).collect();
        for (i, child) in children.iter().enumerate() {
            self.render_node(out, child, &next_prefix, i + 1 == children.len(), false);
        }
    }

    /// Exports one JSON object per span, newline-separated (`.jsonl`).
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for span in &self.spans {
            span_json(&mut out, span);
            out.push('\n');
        }
        out
    }

    /// Exports the Chrome trace-event format (a JSON array of complete
    /// `"ph": "X"` events, timestamps in microseconds) — loadable in
    /// Perfetto or `chrome://tracing`.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("[");
        for (i, span) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n  {\"name\":");
            escape_json(span.label.name(), &mut out);
            out.push_str(&format!(
                ",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":1,\
                 \"args\":{{\"id\":{},\"parent\":{},\"plan_node\":{},\"tuples_in\":{},\
                 \"tuples_out\":{},\
                 \"pairs\":{},\"empties_pruned\":{},\"index_probes\":{},\"index_pruned\":{},\
                 \"atoms_simplified\":{},\"tuples_subsumed\":{},\"coalesce_merges\":{},\
                 \"intern_hits\":{},\"max_period\":{}}}}}",
                if span.label.is_op() { "op" } else { "node" },
                span.start_nanos as f64 / 1_000.0,
                span.nanos as f64 / 1_000.0,
                span.id,
                span.parent.map_or("null".into(), |p| p.to_string()),
                span.plan_node.map_or("null".into(), |p| p.to_string()),
                span.tuples_in,
                span.tuples_out,
                span.pairs,
                span.empties_pruned,
                span.index_probes,
                span.index_pruned,
                span.atoms_simplified,
                span.tuples_subsumed,
                span.coalesce_merges,
                span.intern_hits,
                span.max_period,
            ));
        }
        out.push_str("\n]\n");
        out
    }
}

/// One-line description of a span for the tree rendering.
fn describe(span: &Span) -> String {
    let mut line = match &span.label {
        SpanLabel::Op(kind) => format!(
            "{}: in={} out={}",
            kind.name(),
            span.tuples_in,
            span.tuples_out
        ),
        SpanLabel::Node(label) => format!("{label} → {} tuple(s)", span.tuples_out),
    };
    if span.pairs > 0 {
        line.push_str(&format!(" pairs={}", span.pairs));
    }
    if span.empties_pruned > 0 {
        line.push_str(&format!(" pruned={}", span.empties_pruned));
    }
    if span.index_probes > 0 || span.index_pruned > 0 {
        line.push_str(&format!(
            " probes={} skipped={}",
            span.index_probes, span.index_pruned
        ));
    }
    if span.atoms_simplified > 0 {
        line.push_str(&format!(" atoms={}", span.atoms_simplified));
    }
    if span.tuples_subsumed > 0 {
        line.push_str(&format!(" subsumed={}", span.tuples_subsumed));
    }
    if span.coalesce_merges > 0 {
        line.push_str(&format!(" merged={}", span.coalesce_merges));
    }
    if span.intern_hits > 0 {
        line.push_str(&format!(" interned={}", span.intern_hits));
    }
    if span.max_period > 0 {
        line.push_str(&format!(" k={}", span.max_period));
    }
    line.push_str(&format!(" [{:.1?}]", span.wall_time()));
    line
}

fn span_json(out: &mut String, span: &Span) {
    out.push_str(&format!("{{\"id\":{},\"parent\":", span.id));
    match span.parent {
        Some(p) => out.push_str(&p.to_string()),
        None => out.push_str("null"),
    }
    out.push_str(&format!(
        ",\"depth\":{},\"kind\":\"{}\",\"plan_node\":{},\"name\":",
        span.depth,
        if span.label.is_op() { "op" } else { "node" },
        span.plan_node.map_or("null".to_string(), |p| p.to_string()),
    ));
    escape_json(span.label.name(), out);
    out.push_str(&format!(
        ",\"tuples_in\":{},\"tuples_out\":{},\"pairs\":{},\"empties_pruned\":{},\
         \"index_probes\":{},\"index_pruned\":{},\"atoms_simplified\":{},\
         \"tuples_subsumed\":{},\"coalesce_merges\":{},\"intern_hits\":{},\"max_period\":{},\
         \"start_ns\":{},\"dur_ns\":{}}}",
        span.tuples_in,
        span.tuples_out,
        span.pairs,
        span.empties_pruned,
        span.index_probes,
        span.index_pruned,
        span.atoms_simplified,
        span.tuples_subsumed,
        span.coalesce_merges,
        span.intern_hits,
        span.max_period,
        span.start_nanos,
        span.nanos,
    ));
}

/// Writes `s` as a JSON string literal (quotes included).
pub(crate) fn escape_json(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_tree())
    }
}

impl StatsSnapshot {
    /// Renders the counters in the Prometheus text exposition format
    /// (`\metrics` in the REPL). Counter metrics are suffixed `_total`;
    /// `max_period` is exposed as a gauge. Every operator kind is emitted
    /// for every metric so scrape series stay stable.
    pub fn to_prometheus(&self) -> String {
        type Metric = (&'static str, &'static str, fn(&OpSnapshot) -> u64);
        let mut out = String::new();
        let counters: [Metric; 11] = [
            ("calls", "Algebra operator invocations.", |o| o.calls),
            ("tuples_in", "Generalized tuples consumed.", |o| o.tuples_in),
            ("tuples_out", "Generalized tuples produced.", |o| {
                o.tuples_out
            }),
            ("pairs", "Candidate tuple pairs examined.", |o| o.pairs),
            ("empties_pruned", "Candidates dropped as empty.", |o| {
                o.empties_pruned
            }),
            (
                "index_probes",
                "Candidate pairs probed after index filtering.",
                |o| o.index_probes,
            ),
            (
                "index_pruned",
                "Candidate pairs skipped by the residue index.",
                |o| o.index_pruned,
            ),
            ("atoms_simplified", "Constraint atoms rewritten.", |o| {
                o.atoms_simplified
            }),
            (
                "tuples_subsumed",
                "Tuples dropped by compaction as subsumed.",
                |o| o.tuples_subsumed,
            ),
            (
                "coalesce_merges",
                "Tuples eliminated by coalescing residue classes.",
                |o| o.coalesce_merges,
            ),
            (
                "intern_hits",
                "Duplicate temporal parts absorbed by hash-consing.",
                |o| o.intern_hits,
            ),
        ];
        for (metric, help, get) in counters {
            out.push_str(&format!("# HELP itd_op_{metric}_total {help}\n"));
            out.push_str(&format!("# TYPE itd_op_{metric}_total counter\n"));
            for (kind, op) in self.iter() {
                out.push_str(&format!(
                    "itd_op_{metric}_total{{op=\"{}\"}} {}\n",
                    kind.name(),
                    get(op)
                ));
            }
        }
        out.push_str("# HELP itd_op_max_period Largest common period k encountered.\n");
        out.push_str("# TYPE itd_op_max_period gauge\n");
        for (kind, op) in self.iter() {
            out.push_str(&format!(
                "itd_op_max_period{{op=\"{}\"}} {}\n",
                kind.name(),
                op.max_period
            ));
        }
        out.push_str("# HELP itd_op_wall_seconds_total Accumulated operator wall time.\n");
        out.push_str("# TYPE itd_op_wall_seconds_total counter\n");
        for (kind, op) in self.iter() {
            out.push_str(&format!(
                "itd_op_wall_seconds_total{{op=\"{}\"}} {:.9}\n",
                kind.name(),
                op.nanos as f64 / 1e9
            ));
        }
        out
    }

    /// Serializes every counter as one JSON object (`\stats json` in the
    /// REPL).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"ops\":{");
        for (i, (kind, op)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"calls\":{},\"tuples_in\":{},\"tuples_out\":{},\"pairs\":{},\
                 \"empties_pruned\":{},\"index_probes\":{},\"index_pruned\":{},\
                 \"atoms_simplified\":{},\"tuples_subsumed\":{},\"coalesce_merges\":{},\
                 \"intern_hits\":{},\"max_period\":{},\"nanos\":{}}}",
                kind.name(),
                op.calls,
                op.tuples_in,
                op.tuples_out,
                op.pairs,
                op.empties_pruned,
                op.index_probes,
                op.index_pruned,
                op.atoms_simplified,
                op.tuples_subsumed,
                op.coalesce_merges,
                op.intern_hits,
                op.max_period,
                op.nanos,
            ));
        }
        out.push_str(&format!(
            "}},\"total_calls\":{},\"total_wall_ns\":{}}}",
            self.total_calls(),
            self.total_wall_time().as_nanos(),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let sink = TraceSink::new();
        let root = sink.begin(SpanLabel::Node("and \"x\"".into()), Some(7));
        let a = sink.begin(SpanLabel::Op(OpKind::Join), None);
        sink.record_period(OpKind::Join, 6);
        sink.end(a, |s| {
            s.tuples_in = 4;
            s.tuples_out = 2;
            s.pairs = 4;
            s.nanos = 1_500;
        });
        let b = sink.begin(SpanLabel::Op(OpKind::Project), None);
        sink.end(b, |s| {
            s.tuples_in = 2;
            s.tuples_out = 2;
            s.nanos = 500;
        });
        sink.update(root, |s| s.tuples_out = 2);
        sink.end(root, |s| s.nanos = 3_000);
        sink.take()
    }

    #[test]
    fn tree_shape_and_ids() {
        let t = sample();
        assert_eq!(t.len(), 3);
        assert_eq!(t.roots().count(), 1);
        assert_eq!(t.spans()[0].label, SpanLabel::Node("and \"x\"".into()));
        assert_eq!(t.spans()[1].parent, Some(0));
        assert_eq!(t.spans()[2].parent, Some(0));
        assert_eq!(t.spans()[1].depth, 1);
        assert_eq!(t.children(0).count(), 2);
        assert_eq!(t.spans()[1].max_period, 6);
    }

    #[test]
    fn op_totals_sum_operator_spans() {
        let t = sample();
        let totals = t.op_totals();
        assert_eq!(totals.op(OpKind::Join).calls, 1);
        assert_eq!(totals.op(OpKind::Join).pairs, 4);
        assert_eq!(totals.op(OpKind::Join).max_period, 6);
        assert_eq!(totals.op(OpKind::Project).tuples_out, 2);
        // Node spans do not contribute.
        assert_eq!(totals.total_calls(), 2);
        assert_eq!(totals.total_wall_time(), Duration::from_nanos(2_000));
    }

    #[test]
    fn without_timing_is_stable() {
        let a = sample().without_timing();
        let b = sample().without_timing();
        assert_eq!(a, b);
        assert!(a.spans().iter().all(|s| s.nanos == 0 && s.start_nanos == 0));
    }

    #[test]
    fn render_tree_shows_counters() {
        let text = sample().render_tree();
        assert!(text.contains("and \"x\" → 2 tuple(s)"), "{text}");
        assert!(text.contains("├─ join: in=4 out=2 pairs=4 k=6"), "{text}");
        assert!(text.contains("└─ project: in=2 out=2"), "{text}");
    }

    #[test]
    fn json_lines_escape_and_shape() {
        let text = sample().to_json_lines();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"name\":\"and \\\"x\\\"\""), "{text}");
        assert!(lines[0].contains("\"parent\":null"), "{text}");
        assert!(lines[1].contains("\"kind\":\"op\""), "{text}");
        assert!(lines[1].contains("\"max_period\":6"), "{text}");
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn chrome_trace_is_a_json_array_of_complete_events() {
        let text = sample().to_chrome_trace();
        assert!(text.trim_start().starts_with('['), "{text}");
        assert!(text.trim_end().ends_with(']'), "{text}");
        assert_eq!(text.matches("\"ph\":\"X\"").count(), 3);
        assert!(text.contains("\"ts\":"), "{text}");
        assert!(text.contains("\"dur\":1.500"), "{text}");
    }

    #[test]
    fn prometheus_text_format() {
        let stats = sample().op_totals();
        let text = stats.to_prometheus();
        assert!(text.contains("# TYPE itd_op_calls_total counter"), "{text}");
        assert!(text.contains("itd_op_calls_total{op=\"join\"} 1"), "{text}");
        assert!(text.contains("itd_op_max_period{op=\"join\"} 6"), "{text}");
        assert!(
            text.contains("itd_op_calls_total{op=\"union\"} 0"),
            "series must be stable even at zero: {text}"
        );
    }

    #[test]
    fn stats_json_includes_every_op() {
        let stats = sample().op_totals();
        let text = stats.to_json();
        assert!(text.starts_with('{') && text.ends_with('}'), "{text}");
        assert!(text.contains("\"join\":{\"calls\":1"), "{text}");
        assert!(text.contains("\"total_calls\":2"), "{text}");
        for kind in OpKind::ALL {
            assert!(text.contains(&format!("\"{}\":", kind.name())), "{text}");
        }
    }

    #[test]
    fn compaction_counters_render_and_export() {
        let sink = TraceSink::new();
        let a = sink.begin(SpanLabel::Op(OpKind::Compact), None);
        sink.end(a, |s| {
            s.tuples_in = 10;
            s.tuples_out = 6;
            s.tuples_subsumed = 3;
            s.coalesce_merges = 1;
            s.nanos = 700;
        });
        let b = sink.begin(SpanLabel::Op(OpKind::Intersect), None);
        sink.end(b, |s| {
            s.pairs = 9;
            s.intern_hits = 5;
            s.nanos = 300;
        });
        let t = sink.take();
        let text = t.render_tree();
        assert!(
            text.contains("compact: in=10 out=6 subsumed=3 merged=1"),
            "{text}"
        );
        assert!(text.contains("interned=5"), "{text}");
        let totals = t.op_totals();
        assert_eq!(totals.op(OpKind::Compact).tuples_subsumed, 3);
        assert_eq!(totals.op(OpKind::Compact).coalesce_merges, 1);
        assert_eq!(totals.op(OpKind::Intersect).intern_hits, 5);
        let prom = totals.to_prometheus();
        assert!(
            prom.contains("itd_op_tuples_subsumed_total{op=\"compact\"} 3"),
            "{prom}"
        );
        assert!(
            prom.contains("itd_op_intern_hits_total{op=\"intersect\"} 5"),
            "{prom}"
        );
        let json = totals.to_json();
        assert!(json.contains("\"coalesce_merges\":1"), "{json}");
        let jsonl = t.to_json_lines();
        assert!(jsonl.contains("\"tuples_subsumed\":3"), "{jsonl}");
        let chrome = t.to_chrome_trace();
        assert!(chrome.contains("\"intern_hits\":5"), "{chrome}");
    }

    #[test]
    fn record_period_targets_innermost_open_span_of_kind() {
        let sink = TraceSink::new();
        let outer = sink.begin(SpanLabel::Op(OpKind::Normalize), None);
        let inner = sink.begin(SpanLabel::Op(OpKind::Select), None);
        // Recorded against the open Normalize span even though Select is
        // innermost overall.
        sink.record_period(OpKind::Normalize, 12);
        // No open Complement span: silently dropped.
        sink.record_period(OpKind::Complement, 99);
        sink.end(inner, |_| {});
        sink.end(outer, |_| {});
        let t = sink.take();
        assert_eq!(t.spans()[0].max_period, 12);
        assert_eq!(t.spans()[1].max_period, 0);
    }
}

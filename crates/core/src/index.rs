//! Residue-class indexing for the binary algebra operators.
//!
//! # Why residues prune pairs
//!
//! Every binary operator of the algebra (§3.2–§3.5) examines `O(n·m)`
//! candidate tuple pairs, but most pairs are doomed before any arithmetic
//! runs:
//!
//! * two infinite lrps `c1 + k1·n` and `c2 + k2·n` intersect **only if**
//!   `c1 ≡ c2 (mod gcd(k1, k2))` (§3.2.1 — the solvability condition of
//!   the linear congruence). For any modulus `g` dividing both periods,
//!   `g | gcd(k1, k2)`, so *equal residues mod `g` are a necessary
//!   condition* for intersection. A point (`k = 0`) behaves as
//!   `gcd(0, k) = k`: its value's residue is binding mod anything;
//! * generalized tuples with unequal data columns never intersect, join,
//!   or interact under difference at all.
//!
//! A [`RelationIndex`] buckets the tuples of one operand by (a) the
//! interned [`ValueId`]s of the relevant data columns and (b) a
//! per-temporal-column residue signature `offset mod mᵢ`, where `mᵢ` is a
//! *small-prime-power smooth* divisor (capped at [`MAX_MODULUS`]) of the
//! gcd of the column's nonzero periods. Since `mᵢ` divides every indexed
//! period, every indexed tuple has a well-defined residue — there is no
//! wildcard bucket — and a probe tuple with period `k` is compatible
//! exactly with the residues congruent to its own modulo
//! `dᵢ = gcd(mᵢ, k)` (with `dᵢ = mᵢ` for probe points).
//!
//! Pruning on interned data ids is **exact**, not merely sound: two ids
//! are equal iff the values are (the arena hash-conses process-wide), so
//! a data mismatch prunes with no collision leak-through. A probe value
//! that was never interned anywhere cannot equal any stored value, so
//! the probe returns no candidates for it.
//!
//! # Determinism
//!
//! [`RelationIndex::probe`] returns candidate positions **sorted
//! ascending**, so an outer loop that replaces "all inner tuples" with
//! "probed inner tuples" visits survivors in exactly the naive inner-loop
//! order; combined with the chunk-order concatenation of
//! [`run_chunked`](crate::exec), indexed results are bit-identical to the
//! naive pairwise path at any thread count.

use std::collections::HashMap;

use itd_numth::gcd;

use crate::store::{intern_value_global, lookup_value, RelStore, ValueId};
use crate::tuple::GenTuple;

/// Cap on a column's index modulus (and thus on the residue fan-out of a
/// single column).
pub const MAX_MODULUS: i64 = 64;

/// Binary operators consult the index only when the naive pair count
/// reaches this threshold; below it the build cost outweighs the pruning.
pub const INDEX_MIN_PAIRS: usize = 32;

/// The largest divisor of `g` of the form `2^a·3^b·5^c·7^d·11^e·13^f` that
/// fits under [`MAX_MODULUS`], chosen greedily smallest-prime-first (`1`
/// when `g` has no small prime factors). Shared with the compaction
/// pass's residue pre-filter ([`crate::compact`]).
pub(crate) fn smooth_cap(g: i64) -> i64 {
    debug_assert!(g > 0);
    let mut m = 1i64;
    let mut rest = g;
    for p in [2i64, 3, 5, 7, 11, 13] {
        while rest % p == 0 && m * p <= MAX_MODULUS {
            m *= p;
            rest /= p;
        }
    }
    m
}

/// Interned ids of the build-side data key (inserting: stored values
/// become part of the arena, which store-backed rows already are).
fn intern_data_key<'a>(values: impl Iterator<Item = &'a crate::Value>) -> Vec<ValueId> {
    values.map(intern_value_global).collect()
}

/// Interned ids of a probe-side data key; `None` as soon as one value
/// was never interned (it then cannot equal any stored value).
fn lookup_data_key<'a>(values: impl Iterator<Item = &'a crate::Value>) -> Option<Vec<ValueId>> {
    values.map(lookup_value).collect()
}

/// A residue-signature + data-hash bucket index over one relation operand.
///
/// Since the columnar storage refactor, relation stores keep these
/// indexes **persistently** (one per column set, see `crate::store`):
/// built at most once, reused by every operator call over the same
/// operand, and maintained incrementally on append via
/// `RelationIndex::try_insert`. [`INDEX_MIN_PAIRS`] still gates *use*,
/// so small inputs keep the naive path and the counters stay identical to
/// the per-call-build era.
#[derive(Debug, Clone)]
pub struct RelationIndex {
    /// Temporal columns of the indexed side participating in the key.
    temporal_cols: Vec<usize>,
    /// Data columns of the indexed side participating in the key.
    data_cols: Vec<usize>,
    /// Per-`temporal_cols` modulus `mᵢ ≥ 1`; divides every nonzero period
    /// occurring in that column.
    moduli: Vec<i64>,
    /// Per-`temporal_cols` exact gcd of the nonzero periods seen so far
    /// (`0` while the column has held only points / no tuples). Tracked so
    /// appends can prove the modulus unchanged — `moduli` alone is lossy.
    gcds: Vec<i64>,
    /// `(data value ids, per-column residues) → ascending tuple positions`.
    buckets: HashMap<(Vec<ValueId>, Vec<i64>), Vec<usize>>,
    /// Number of indexed tuples.
    len: usize,
}

impl RelationIndex {
    /// Indexes `tuples` on the given temporal and data columns.
    ///
    /// The column modulus is the gcd of the column's nonzero periods,
    /// reduced to its capped smooth part; a column holding only points
    /// keys directly on `offset mod MAX_MODULUS` (a point's residue is
    /// binding modulo anything).
    pub fn build(tuples: &[GenTuple], temporal_cols: &[usize], data_cols: &[usize]) -> Self {
        let gcds: Vec<i64> = temporal_cols
            .iter()
            .map(|&c| {
                tuples
                    .iter()
                    .fold(0i64, |acc, t| gcd(acc, t.lrps()[c].period()))
            })
            .collect();
        let moduli: Vec<i64> = gcds
            .iter()
            .map(|&g| if g == 0 { MAX_MODULUS } else { smooth_cap(g) })
            .collect();
        let mut buckets: HashMap<(Vec<ValueId>, Vec<i64>), Vec<usize>> = HashMap::new();
        for (pos, t) in tuples.iter().enumerate() {
            let residues: Vec<i64> = temporal_cols
                .iter()
                .zip(&moduli)
                .map(|(&c, &m)| t.lrps()[c].offset().rem_euclid(m))
                .collect();
            let key = intern_data_key(data_cols.iter().map(|&c| &t.data()[c]));
            buckets.entry((key, residues)).or_default().push(pos);
        }
        RelationIndex {
            temporal_cols: temporal_cols.to_vec(),
            data_cols: data_cols.to_vec(),
            moduli,
            gcds,
            buckets,
            len: tuples.len(),
        }
    }

    /// Columnar twin of [`RelationIndex::build`]: indexes a store
    /// straight from its flat `(offset, period)` and [`ValueId`] columns,
    /// without materializing (or force-populating) the row cache. The
    /// result is field-for-field identical to `build` over the store's
    /// rows — offsets, periods and data ids are the same numbers either
    /// way.
    pub(crate) fn build_from_store(
        store: &RelStore,
        temporal_cols: &[usize],
        data_cols: &[usize],
    ) -> Self {
        let n = store.len();
        let gcds: Vec<i64> = temporal_cols
            .iter()
            .map(|&c| store.t_periods(c).iter().fold(0i64, |acc, &k| gcd(acc, k)))
            .collect();
        let moduli: Vec<i64> = gcds
            .iter()
            .map(|&g| if g == 0 { MAX_MODULUS } else { smooth_cap(g) })
            .collect();
        let mut buckets: HashMap<(Vec<ValueId>, Vec<i64>), Vec<usize>> = HashMap::new();
        let data = store.data_columns();
        // `pos` strides several parallel column arrays at once; an
        // iterator over any single one of them would not be clearer.
        #[allow(clippy::needless_range_loop)]
        for pos in 0..n {
            let residues: Vec<i64> = temporal_cols
                .iter()
                .zip(&moduli)
                .map(|(&c, &m)| store.t_offsets(c)[pos].rem_euclid(m))
                .collect();
            let key: Vec<ValueId> = data_cols.iter().map(|&c| data[c][pos]).collect();
            buckets.entry((key, residues)).or_default().push(pos);
        }
        RelationIndex {
            temporal_cols: temporal_cols.to_vec(),
            data_cols: data_cols.to_vec(),
            moduli,
            gcds,
            buckets,
            len: n,
        }
    }

    /// Incrementally indexes one appended tuple at position `pos`
    /// (`pos == len`). Returns `false` — leaving the index unusable, the
    /// caller must drop it — when the new tuple's periods change some
    /// column's modulus; in that case only a rebuild can produce an index
    /// equivalent to a fresh [`RelationIndex::build`] over the extended
    /// relation.
    ///
    /// When it returns `true`, the index is **exactly** the one `build`
    /// would produce over the extended tuple slice: the moduli are
    /// unchanged (so every existing residue is still correct), the new
    /// position lands at the tail of its bucket (positions are appended in
    /// ascending order), and the per-column gcd is refolded.
    pub(crate) fn try_insert(&mut self, t: &GenTuple, pos: usize) -> bool {
        debug_assert_eq!(pos, self.len);
        let mut new_gcds = Vec::with_capacity(self.gcds.len());
        for (i, &c) in self.temporal_cols.iter().enumerate() {
            let g = gcd(self.gcds[i], t.lrps()[c].period());
            let m = if g == 0 { MAX_MODULUS } else { smooth_cap(g) };
            if m != self.moduli[i] {
                return false;
            }
            new_gcds.push(g);
        }
        self.gcds = new_gcds;
        let residues: Vec<i64> = self
            .temporal_cols
            .iter()
            .zip(&self.moduli)
            .map(|(&c, &m)| t.lrps()[c].offset().rem_euclid(m))
            .collect();
        let key = intern_data_key(self.data_cols.iter().map(|&c| &t.data()[c]));
        self.buckets.entry((key, residues)).or_default().push(pos);
        self.len += 1;
        true
    }

    /// Number of indexed tuples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the index can prune anything at all (some data column keyed
    /// or some modulus above 1). A non-discriminating index would probe
    /// every tuple; callers fall back to the naive loop instead.
    pub fn is_discriminating(&self) -> bool {
        !self.data_cols.is_empty() || self.moduli.iter().any(|&m| m > 1)
    }

    /// The residue moduli, parallel to the temporal columns the index was
    /// built on. A modulus of 1 means the column cannot discriminate; the
    /// query planner reads these to estimate join selectivity.
    pub fn moduli(&self) -> &[i64] {
        &self.moduli
    }

    /// Positions (ascending) of the indexed tuples not provably disjoint
    /// from `probe`. `probe_temporal` / `probe_data` name the probe-side
    /// columns parallel to the build-side columns (identical for
    /// intersection and difference; the left sides of the join's column
    /// pairs for join).
    ///
    /// Soundness: a position is omitted only if some data id differs
    /// (data unequal — ids are exact) or some column residue violates the
    /// necessary congruence `r1 ≡ r2 (mod gcd(mᵢ, k_probe))`.
    pub fn probe(
        &self,
        probe: &GenTuple,
        probe_temporal: &[usize],
        probe_data: &[usize],
    ) -> Vec<usize> {
        debug_assert_eq!(probe_temporal.len(), self.temporal_cols.len());
        debug_assert_eq!(probe_data.len(), self.data_cols.len());
        let Some(key) = lookup_data_key(probe_data.iter().map(|&c| &probe.data()[c])) else {
            // Some probe value was never interned: it differs from every
            // stored value, so no candidate can survive.
            return Vec::new();
        };
        let lrps: Vec<(i64, i64)> = probe_temporal
            .iter()
            .map(|&c| {
                let l = &probe.lrps()[c];
                (l.offset(), l.period())
            })
            .collect();
        self.probe_cols(&key, &lrps)
    }

    /// Columnar twin of [`RelationIndex::probe`]: the probe row is given
    /// as per-column `(offset, period)` pairs (period `0` = point,
    /// parallel to the build-side temporal columns) and already-interned
    /// data ids (parallel to the build-side data columns).
    pub(crate) fn probe_cols(&self, data_key: &[ValueId], lrps: &[(i64, i64)]) -> Vec<usize> {
        debug_assert_eq!(lrps.len(), self.temporal_cols.len());
        debug_assert_eq!(data_key.len(), self.data_cols.len());
        // Per column: the probe's binding modulus dᵢ and residue class.
        let mut d = Vec::with_capacity(self.moduli.len());
        let mut r = Vec::with_capacity(self.moduli.len());
        let mut combinations: u128 = 1;
        for (&(offset, period), &m) in lrps.iter().zip(&self.moduli) {
            let di = if period == 0 { m } else { gcd(m, period) };
            d.push(di);
            r.push(offset.rem_euclid(di));
            combinations *= (m / di) as u128;
        }
        let mut out = if combinations <= self.buckets.len() as u128 {
            self.probe_enumerate(data_key, &r, &d)
        } else {
            self.probe_scan(data_key, &r, &d)
        };
        out.sort_unstable();
        out
    }

    /// Few compatible keys: enumerate them (mixed-radix counter over the
    /// per-column residue choices `rᵢ + t·dᵢ`, `t < mᵢ/dᵢ`) and look each
    /// one up.
    fn probe_enumerate(&self, data_key: &[ValueId], r: &[i64], d: &[i64]) -> Vec<usize> {
        let cols = self.moduli.len();
        let mut out = Vec::new();
        let mut choice = vec![0i64; cols];
        let mut key_res = vec![0i64; cols];
        loop {
            for i in 0..cols {
                key_res[i] = r[i] + choice[i] * d[i];
            }
            if let Some(positions) = self.buckets.get(&(data_key.to_vec(), key_res.clone())) {
                out.extend_from_slice(positions);
            }
            let mut i = cols;
            loop {
                if i == 0 {
                    return out;
                }
                i -= 1;
                choice[i] += 1;
                if choice[i] < self.moduli[i] / d[i] {
                    break;
                }
                choice[i] = 0;
            }
        }
    }

    /// More compatible keys than buckets: scan every bucket with a
    /// per-bucket compatibility check instead.
    fn probe_scan(&self, data_key: &[ValueId], r: &[i64], d: &[i64]) -> Vec<usize> {
        let mut out = Vec::new();
        for ((bkey, res), positions) in &self.buckets {
            if bkey == data_key
                && res
                    .iter()
                    .zip(d)
                    .zip(r)
                    .all(|((&br, &di), &ri)| br % di == ri)
            {
                out.extend_from_slice(positions);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::intersect_tuples;
    use crate::Value;
    use itd_constraint::Atom;
    use itd_lrp::Lrp;

    fn lrp(c: i64, k: i64) -> Lrp {
        Lrp::new(c, k).unwrap()
    }

    fn tup(lrps: Vec<Lrp>) -> GenTuple {
        GenTuple::unconstrained(lrps, vec![])
    }

    #[test]
    fn smooth_cap_divides_and_respects_cap() {
        assert_eq!(smooth_cap(6), 6);
        assert_eq!(smooth_cap(64), 64);
        assert_eq!(smooth_cap(128), 64);
        assert_eq!(smooth_cap(97), 1); // prime above every small factor
        assert_eq!(smooth_cap(60), 60);
        assert_eq!(smooth_cap(1), 1);
        for g in 1..500 {
            let m = smooth_cap(g);
            assert!((1..=MAX_MODULUS).contains(&m) && g % m == 0, "g={g} m={m}");
        }
    }

    #[test]
    fn probe_never_misses_an_intersecting_pair() {
        // Exhaustive over small residue grids: every pair the naive loop
        // would keep must appear among the probed candidates.
        let mut inner = Vec::new();
        for c in 0..6 {
            inner.push(tup(vec![lrp(c, 6)]));
        }
        inner.push(tup(vec![Lrp::point(3)]));
        inner.push(tup(vec![lrp(5, 12)]));
        let idx = RelationIndex::build(&inner, &[0], &[]);
        assert!(idx.is_discriminating());
        let mut probes = Vec::new();
        for k in [0i64, 1, 2, 3, 4, 6, 9, 10] {
            let span = if k == 0 { 7 } else { k };
            for c in 0..span {
                probes.push(tup(vec![if k == 0 { Lrp::point(c) } else { lrp(c, k) }]));
            }
        }
        for p in &probes {
            let cands = idx.probe(p, &[0], &[]);
            assert!(cands.windows(2).all(|w| w[0] < w[1]), "sorted, no dups");
            for (pos, t) in inner.iter().enumerate() {
                let meets = intersect_tuples(p, t).unwrap().is_some();
                if meets {
                    assert!(
                        cands.contains(&pos),
                        "index dropped a live pair: probe {p} vs {t}"
                    );
                }
            }
        }
    }

    #[test]
    fn data_ids_separate_buckets() {
        let mk = |v: i64| {
            GenTuple::builder()
                .lrps(vec![Lrp::all()])
                .data(vec![Value::Int(v)])
                .build()
                .unwrap()
        };
        let tuples: Vec<GenTuple> = (0..8).map(mk).collect();
        let idx = RelationIndex::build(&tuples, &[0], &[0]);
        assert!(idx.is_discriminating());
        for v in 0..8 {
            let cands = idx.probe(&mk(v), &[0], &[0]);
            assert_eq!(cands, vec![v as usize], "equal data must survive");
        }
    }

    #[test]
    fn all_point_column_keys_on_value() {
        let tuples: Vec<GenTuple> = (0..10).map(|v| tup(vec![Lrp::point(v)])).collect();
        let idx = RelationIndex::build(&tuples, &[0], &[]);
        assert!(idx.is_discriminating());
        // A point probe is compatible only with points sharing its residue
        // mod MAX_MODULUS — here, just itself.
        let cands = idx.probe(&tup(vec![Lrp::point(4)]), &[0], &[]);
        assert_eq!(cands, vec![4]);
        // An infinite probe keeps exactly the residue-compatible points.
        let cands = idx.probe(&tup(vec![lrp(1, 4)]), &[0], &[]);
        assert_eq!(cands, vec![1, 5, 9]);
    }

    #[test]
    fn mixed_period_column_falls_back_to_gcd() {
        // Periods 6 and 9 → gcd 3: classes mod 3 discriminate.
        let tuples = vec![
            tup(vec![lrp(0, 6)]),
            tup(vec![lrp(1, 6)]),
            tup(vec![lrp(2, 9)]),
            tup(vec![lrp(5, 9)]),
        ];
        let idx = RelationIndex::build(&tuples, &[0], &[]);
        let cands = idx.probe(&tup(vec![lrp(2, 3)]), &[0], &[]);
        // Residue 2 mod 3: 2+9n and 5+9n qualify; 0+6n and 1+6n cannot.
        assert_eq!(cands, vec![2, 3]);
    }

    #[test]
    fn non_discriminating_when_gcd_is_one() {
        let tuples = vec![tup(vec![lrp(0, 2)]), tup(vec![lrp(0, 3)])];
        let idx = RelationIndex::build(&tuples, &[0], &[]);
        // gcd(2, 3) = 1 and no data columns: nothing to prune on.
        assert!(!idx.is_discriminating());
        let cands = idx.probe(&tup(vec![lrp(0, 5)]), &[0], &[]);
        assert_eq!(cands, vec![0, 1]);
    }

    #[test]
    fn try_insert_matches_fresh_build() {
        let mut tuples: Vec<GenTuple> = (0..6).map(|i| tup(vec![lrp(i, 12)])).collect();
        let mut idx = RelationIndex::build(&tuples, &[0], &[]);
        // Period 24 keeps gcd 12 → the modulus survives, and the extended
        // index must equal a fresh build field for field.
        for i in 6..10 {
            let t = tup(vec![lrp(i, 24)]);
            assert!(idx.try_insert(&t, tuples.len()));
            tuples.push(t);
            let fresh = RelationIndex::build(&tuples, &[0], &[]);
            assert_eq!(idx.moduli, fresh.moduli);
            assert_eq!(idx.gcds, fresh.gcds);
            assert_eq!(idx.len, fresh.len);
            assert_eq!(idx.buckets, fresh.buckets);
        }
        // Period 5 drops the gcd to 1 → modulus change → rejected.
        assert!(!idx.try_insert(&tup(vec![lrp(0, 5)]), tuples.len()));
    }

    #[test]
    fn columnar_build_matches_row_build() {
        let tuples: Vec<GenTuple> = (0..12)
            .map(|i| {
                GenTuple::builder()
                    .lrps(vec![lrp(i % 6, 6), Lrp::point(i)])
                    .data(vec![Value::Int(i % 3)])
                    .build()
                    .unwrap()
            })
            .collect();
        let store = RelStore::from_tuples(crate::Schema::new(2, 1), tuples.clone());
        let from_rows = RelationIndex::build(&tuples, &[0, 1], &[0]);
        let from_cols = RelationIndex::build_from_store(&store, &[0, 1], &[0]);
        assert_eq!(from_rows.moduli, from_cols.moduli);
        assert_eq!(from_rows.gcds, from_cols.gcds);
        assert_eq!(from_rows.len, from_cols.len);
        assert_eq!(from_rows.buckets, from_cols.buckets);
        // probe_cols with the store's own ids matches row-level probe.
        for (pos, t) in tuples.iter().enumerate() {
            let ids: Vec<ValueId> = vec![store.data_columns()[0][pos]];
            let lrps: Vec<(i64, i64)> = t.lrps().iter().map(|l| (l.offset(), l.period())).collect();
            assert_eq!(
                from_cols.probe_cols(&ids, &lrps),
                from_rows.probe(t, &[0, 1], &[0])
            );
        }
    }

    #[test]
    fn constraints_do_not_affect_bucketing() {
        // The index keys on lrps and data only; constraints are checked by
        // the full operator on the surviving pairs.
        let a = GenTuple::builder()
            .lrps(vec![lrp(0, 4)])
            .atoms([Atom::ge(0, 100)])
            .build()
            .unwrap();
        let idx = RelationIndex::build(&[a], &[0], &[]);
        let cands = idx.probe(&tup(vec![lrp(0, 4)]), &[0], &[]);
        assert_eq!(cands, vec![0]);
    }
}

//! Instrumented, optionally parallel execution of the algebra.
//!
//! An [`ExecContext`] carries two things through the relation-level
//! operators ([`GenRelation::intersect_in`] and friends):
//!
//! * a **thread budget** — the embarrassingly-parallel pairwise tuple work
//!   of intersection, difference, product, join, projection and
//!   normalization is fanned out over [`std::thread::scope`] workers.
//!   Work is split into *contiguous chunks of the outer tuple index
//!   space* and the per-chunk outputs are concatenated in chunk order, so
//!   the result is **bit-identical at any thread count** (and identical
//!   to the serial path);
//! * **per-operator counters** ([`OpStats`]) — tuples in/out, candidate
//!   pairs examined, empty tuples pruned, constraint atoms rewritten,
//!   the largest common period encountered, and wall time. A cheap,
//!   clonable [`StatsSnapshot`] can be taken at any moment; the query
//!   layer surfaces it as `QueryResult::stats` and the REPL as `\stats`.
//!
//! The pre-existing operator methods (`intersect`, `difference`, …) are
//! thin wrappers over the `*_in` variants with a fresh serial context, so
//! their behavior is unchanged.
//!
//! [`GenRelation::intersect_in`]: crate::GenRelation::intersect_in

use std::fmt;
use std::ops::Deref;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crate::trace::{NodeSpan, SpanLabel, Trace, TraceSink};
use crate::Result;

/// The relation-level operators distinguished by [`OpStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Union (§3.1).
    Union,
    /// Intersection (§3.2), including the bucketed variant.
    Intersect,
    /// Difference (§3.3).
    Difference,
    /// Complement within `Z^m` (Appendix A.6).
    Complement,
    /// Cross product (§3.6).
    Product,
    /// Equi-join (§3.7).
    Join,
    /// Projection (§3.4).
    Project,
    /// Temporal / data selection (§3.5).
    Select,
    /// Column translation for successor terms.
    Shift,
    /// Normalization (Theorem 3.2).
    Normalize,
    /// Adaptive intermediate compaction (subsumption pruning plus
    /// residue-class coalescing between plan nodes).
    Compact,
    /// Incremental refresh of a registered materialized view (signed-delta
    /// propagation through its cached plan outputs).
    ViewRefresh,
}

impl OpKind {
    /// Every operator kind, in display order.
    pub const ALL: [OpKind; 12] = [
        OpKind::Union,
        OpKind::Intersect,
        OpKind::Difference,
        OpKind::Complement,
        OpKind::Product,
        OpKind::Join,
        OpKind::Project,
        OpKind::Select,
        OpKind::Shift,
        OpKind::Normalize,
        OpKind::Compact,
        OpKind::ViewRefresh,
    ];

    /// Stable lower-case name (used by the REPL and bench reports).
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Union => "union",
            OpKind::Intersect => "intersect",
            OpKind::Difference => "difference",
            OpKind::Complement => "complement",
            OpKind::Product => "product",
            OpKind::Join => "join",
            OpKind::Project => "project",
            OpKind::Select => "select",
            OpKind::Shift => "shift",
            OpKind::Normalize => "normalize",
            OpKind::Compact => "compact",
            OpKind::ViewRefresh => "view_refresh",
        }
    }

    pub(crate) fn index(self) -> usize {
        OpKind::ALL
            .iter()
            .position(|k| *k == self)
            .expect("OpKind::ALL is exhaustive")
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Live (atomic) counters for one operator kind.
///
/// All updates are `Relaxed`: the counters are monotone tallies with no
/// ordering relationship to the data they describe, and readers only see
/// them through [`OpStats::snapshot`] after the operators have returned.
#[derive(Debug, Default)]
pub struct OpCounters {
    calls: AtomicU64,
    tuples_in: AtomicU64,
    tuples_out: AtomicU64,
    pairs: AtomicU64,
    empties_pruned: AtomicU64,
    index_probes: AtomicU64,
    index_pruned: AtomicU64,
    atoms_simplified: AtomicU64,
    tuples_subsumed: AtomicU64,
    coalesce_merges: AtomicU64,
    intern_hits: AtomicU64,
    max_period: AtomicU64,
    nanos: AtomicU64,
}

impl OpCounters {
    pub(crate) fn add_in(&self, n: usize) {
        self.tuples_in.fetch_add(n as u64, Relaxed);
    }

    pub(crate) fn add_out(&self, n: usize) {
        self.tuples_out.fetch_add(n as u64, Relaxed);
    }

    pub(crate) fn add_pairs(&self, n: u64) {
        self.pairs.fetch_add(n, Relaxed);
    }

    pub(crate) fn add_pruned(&self, n: u64) {
        self.empties_pruned.fetch_add(n, Relaxed);
    }

    pub(crate) fn add_probes(&self, n: u64) {
        self.index_probes.fetch_add(n, Relaxed);
    }

    pub(crate) fn add_index_pruned(&self, n: u64) {
        self.index_pruned.fetch_add(n, Relaxed);
    }

    pub(crate) fn add_atoms(&self, n: u64) {
        self.atoms_simplified.fetch_add(n, Relaxed);
    }

    pub(crate) fn add_subsumed(&self, n: u64) {
        self.tuples_subsumed.fetch_add(n, Relaxed);
    }

    pub(crate) fn add_merges(&self, n: u64) {
        self.coalesce_merges.fetch_add(n, Relaxed);
    }

    pub(crate) fn add_intern_hits(&self, n: u64) {
        self.intern_hits.fetch_add(n, Relaxed);
    }

    pub(crate) fn record_period(&self, k: i64) {
        self.max_period.fetch_max(k.max(0) as u64, Relaxed);
    }

    fn snapshot(&self) -> OpSnapshot {
        OpSnapshot {
            calls: self.calls.load(Relaxed),
            tuples_in: self.tuples_in.load(Relaxed),
            tuples_out: self.tuples_out.load(Relaxed),
            pairs: self.pairs.load(Relaxed),
            empties_pruned: self.empties_pruned.load(Relaxed),
            index_probes: self.index_probes.load(Relaxed),
            index_pruned: self.index_pruned.load(Relaxed),
            atoms_simplified: self.atoms_simplified.load(Relaxed),
            tuples_subsumed: self.tuples_subsumed.load(Relaxed),
            coalesce_merges: self.coalesce_merges.load(Relaxed),
            intern_hits: self.intern_hits.load(Relaxed),
            max_period: self.max_period.load(Relaxed),
            nanos: self.nanos.load(Relaxed),
        }
    }

    fn reset(&self) {
        self.calls.store(0, Relaxed);
        self.tuples_in.store(0, Relaxed);
        self.tuples_out.store(0, Relaxed);
        self.pairs.store(0, Relaxed);
        self.empties_pruned.store(0, Relaxed);
        self.index_probes.store(0, Relaxed);
        self.index_pruned.store(0, Relaxed);
        self.atoms_simplified.store(0, Relaxed);
        self.tuples_subsumed.store(0, Relaxed);
        self.coalesce_merges.store(0, Relaxed);
        self.intern_hits.store(0, Relaxed);
        self.max_period.store(0, Relaxed);
        self.nanos.store(0, Relaxed);
    }
}

/// Per-operator counters for a whole context; see [`OpCounters`].
#[derive(Debug, Default)]
pub struct OpStats {
    ops: [OpCounters; OpKind::ALL.len()],
}

impl OpStats {
    pub(crate) fn op(&self, kind: OpKind) -> &OpCounters {
        &self.ops[kind.index()]
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            ops: OpKind::ALL.map(|k| self.op(k).snapshot()),
        }
    }

    /// Zeroes every counter.
    pub fn reset(&self) {
        for c in &self.ops {
            c.reset();
        }
    }
}

/// Plain-data copy of one operator's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpSnapshot {
    /// Operator invocations.
    pub calls: u64,
    /// Generalized tuples consumed (both operands).
    pub tuples_in: u64,
    /// Generalized tuples produced.
    pub tuples_out: u64,
    /// Candidate tuple pairs / refinement combinations examined.
    pub pairs: u64,
    /// Candidates dropped as empty or unsatisfiable (including pairs the
    /// residue index proved empty without examining them).
    pub empties_pruned: u64,
    /// Candidate pairs actually examined after residue-index filtering
    /// (zero when the operator ran without an index).
    pub index_probes: u64,
    /// Candidate pairs skipped by the residue index (data-hash or residue
    /// incompatibility); `index_probes + index_pruned == pairs` whenever an
    /// index was consulted.
    pub index_pruned: u64,
    /// Constraint atoms rewritten (added, conjoined, or grid-rounded).
    pub atoms_simplified: u64,
    /// Tuples dropped by compaction because another tuple's denotation
    /// contains theirs; `tuples_subsumed + coalesce_merges + tuples_out ==
    /// tuples_in` for every compact call.
    pub tuples_subsumed: u64,
    /// Tuples eliminated by coalescing complete residue-class groups into
    /// one coarser tuple (a group of `s` tuples contributes `s − 1`).
    pub coalesce_merges: u64,
    /// Duplicate temporal parts absorbed by hash-consing (repeated
    /// `(lrps, constraints)` pairs plus memoized pairwise outcomes).
    pub intern_hits: u64,
    /// Largest common period `k` encountered.
    pub max_period: u64,
    /// Accumulated wall time, in nanoseconds.
    pub nanos: u64,
}

impl OpSnapshot {
    /// Accumulated wall time.
    pub fn wall_time(&self) -> Duration {
        Duration::from_nanos(self.nanos)
    }

    /// Whether the operator was never invoked.
    pub fn is_zero(&self) -> bool {
        self.calls == 0
    }
}

/// Plain-data copy of a context's [`OpStats`], cheap to clone and safe to
/// hold after the context is gone.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub(crate) ops: [OpSnapshot; OpKind::ALL.len()],
}

impl StatsSnapshot {
    /// The counters of one operator.
    pub fn op(&self, kind: OpKind) -> &OpSnapshot {
        &self.ops[kind.index()]
    }

    /// Iterates over `(kind, counters)` in display order.
    pub fn iter(&self) -> impl Iterator<Item = (OpKind, &OpSnapshot)> {
        OpKind::ALL.iter().map(move |k| (*k, self.op(*k)))
    }

    /// Total operator invocations across all kinds.
    pub fn total_calls(&self) -> u64 {
        self.ops.iter().map(|o| o.calls).sum()
    }

    /// Total wall time across all kinds.
    pub fn total_wall_time(&self) -> Duration {
        Duration::from_nanos(self.ops.iter().map(|o| o.nanos).sum())
    }

    /// Total candidate pairs / refinement combinations examined across
    /// all kinds — the optimizer's figure of merit.
    pub fn total_pairs(&self) -> u64 {
        self.ops.iter().map(|o| o.pairs).sum()
    }

    /// Whether no operator was invoked at all.
    pub fn is_zero(&self) -> bool {
        self.total_calls() == 0
    }

    /// Adds every counter of `other` into `self` (`max_period` takes the
    /// maximum); used to aggregate across evaluations.
    pub fn merge(&mut self, other: &StatsSnapshot) {
        for (mine, theirs) in self.ops.iter_mut().zip(&other.ops) {
            mine.calls += theirs.calls;
            mine.tuples_in += theirs.tuples_in;
            mine.tuples_out += theirs.tuples_out;
            mine.pairs += theirs.pairs;
            mine.empties_pruned += theirs.empties_pruned;
            mine.index_probes += theirs.index_probes;
            mine.index_pruned += theirs.index_pruned;
            mine.atoms_simplified += theirs.atoms_simplified;
            mine.tuples_subsumed += theirs.tuples_subsumed;
            mine.coalesce_merges += theirs.coalesce_merges;
            mine.intern_hits += theirs.intern_hits;
            mine.max_period = mine.max_period.max(theirs.max_period);
            mine.nanos += theirs.nanos;
        }
    }

    /// The counters this snapshot added on top of `before` (saturating,
    /// field by field) — what one evaluation contributed to a shared
    /// context. `max_period` keeps `self`'s value: maxima do not
    /// difference.
    pub fn delta_since(&self, before: &StatsSnapshot) -> StatsSnapshot {
        let mut out = self.clone();
        for (mine, prior) in out.ops.iter_mut().zip(&before.ops) {
            mine.calls = mine.calls.saturating_sub(prior.calls);
            mine.tuples_in = mine.tuples_in.saturating_sub(prior.tuples_in);
            mine.tuples_out = mine.tuples_out.saturating_sub(prior.tuples_out);
            mine.pairs = mine.pairs.saturating_sub(prior.pairs);
            mine.empties_pruned = mine.empties_pruned.saturating_sub(prior.empties_pruned);
            mine.index_probes = mine.index_probes.saturating_sub(prior.index_probes);
            mine.index_pruned = mine.index_pruned.saturating_sub(prior.index_pruned);
            mine.atoms_simplified = mine.atoms_simplified.saturating_sub(prior.atoms_simplified);
            mine.tuples_subsumed = mine.tuples_subsumed.saturating_sub(prior.tuples_subsumed);
            mine.coalesce_merges = mine.coalesce_merges.saturating_sub(prior.coalesce_merges);
            mine.intern_hits = mine.intern_hits.saturating_sub(prior.intern_hits);
            mine.nanos = mine.nanos.saturating_sub(prior.nanos);
        }
        out
    }

    /// A copy with every wall-time field zeroed — the only counters that
    /// vary run to run — for replay-determinism comparisons.
    pub fn without_timing(&self) -> StatsSnapshot {
        let mut out = self.clone();
        for op in out.ops.iter_mut() {
            op.nanos = 0;
        }
        out
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return writeln!(f, "no algebra operations recorded");
        }
        writeln!(
            f,
            "{:<12} {:>6} {:>9} {:>9} {:>9} {:>8} {:>9} {:>9} {:>7} {:>9} {:>7} {:>9} {:>7} {:>12}",
            "op",
            "calls",
            "in",
            "out",
            "pairs",
            "pruned",
            "probes",
            "skipped",
            "atoms",
            "subsumed",
            "merged",
            "interned",
            "max_k",
            "time"
        )?;
        for (kind, op) in self.iter() {
            if op.is_zero() {
                continue;
            }
            writeln!(
                f,
                "{:<12} {:>6} {:>9} {:>9} {:>9} {:>8} {:>9} {:>9} {:>7} {:>9} {:>7} {:>9} {:>7} {:>12}",
                kind.name(),
                op.calls,
                op.tuples_in,
                op.tuples_out,
                op.pairs,
                op.empties_pruned,
                op.index_probes,
                op.index_pruned,
                op.atoms_simplified,
                op.tuples_subsumed,
                op.coalesce_merges,
                op.intern_hits,
                op.max_period,
                format!("{:.1?}", op.wall_time()),
            )?;
        }
        write!(
            f,
            "{:<12} {:>6} {:>106} {:>12}",
            "total",
            self.total_calls(),
            "",
            format!("{:.1?}", self.total_wall_time()),
        )
    }
}

/// Times one operator invocation; counts the call on construction and the
/// elapsed wall time on drop. Dereferences to the operator's counters.
///
/// When the context is traced, the timer also owns a [`Span`]: per-span
/// counters are computed on drop as the *delta* of the shared counters
/// between construction and drop (exact because same-kind operators never
/// nest and worker threads join before the operator returns), and the
/// elapsed wall time is measured once and written to both the shared
/// counters and the span.
///
/// [`Span`]: crate::trace::Span
pub(crate) struct OpTimer<'a> {
    counters: &'a OpCounters,
    kind: OpKind,
    span: Option<(&'a TraceSink, u64, OpSnapshot)>,
    start: Instant,
}

impl OpTimer<'_> {
    /// Records a common period `k` into the shared counters and, when
    /// traced, the timer's span. Shadows [`OpCounters::record_period`]
    /// behind the `Deref` so period reports are never lost to the delta
    /// trick (`fetch_max` deltas do not compose).
    pub(crate) fn record_period(&self, k: i64) {
        self.counters.record_period(k);
        if let Some((sink, _, _)) = &self.span {
            sink.record_period(self.kind, k);
        }
    }
}

impl Deref for OpTimer<'_> {
    type Target = OpCounters;

    fn deref(&self) -> &OpCounters {
        self.counters
    }
}

impl Drop for OpTimer<'_> {
    fn drop(&mut self) {
        let nanos = self.start.elapsed().as_nanos() as u64;
        self.counters.nanos.fetch_add(nanos, Relaxed);
        if let Some((sink, id, before)) = self.span.take() {
            let after = self.counters.snapshot();
            sink.end(id, |span| {
                span.tuples_in = after.tuples_in.saturating_sub(before.tuples_in);
                span.tuples_out = after.tuples_out.saturating_sub(before.tuples_out);
                span.pairs = after.pairs.saturating_sub(before.pairs);
                span.empties_pruned = after.empties_pruned.saturating_sub(before.empties_pruned);
                span.index_probes = after.index_probes.saturating_sub(before.index_probes);
                span.index_pruned = after.index_pruned.saturating_sub(before.index_pruned);
                span.atoms_simplified = after
                    .atoms_simplified
                    .saturating_sub(before.atoms_simplified);
                span.tuples_subsumed = after.tuples_subsumed.saturating_sub(before.tuples_subsumed);
                span.coalesce_merges = after.coalesce_merges.saturating_sub(before.coalesce_merges);
                span.intern_hits = after.intern_hits.saturating_sub(before.intern_hits);
                span.nanos = nanos;
            });
        }
    }
}

/// Cooperative cancellation token, checked at chunk boundaries of the
/// parallel executor.
///
/// A token is either triggered explicitly ([`CancelToken::cancel`]) or
/// implicitly by an attached deadline. Deadline expiry is latched into the
/// atomic flag on first observation, so repeated [`is_cancelled`] polls
/// after expiry cost one relaxed load, not a clock read.
///
/// Cancellation is *cooperative*: work already in flight finishes its
/// current item, the executor returns [`CoreError::Cancelled`], and no
/// partial results are published (the algebra only hands back fully
/// constructed relations).
///
/// # Examples
/// ```
/// use itd_core::CancelToken;
/// let token = CancelToken::new();
/// assert!(!token.is_cancelled());
/// token.cancel();
/// assert!(token.is_cancelled());
/// ```
///
/// [`is_cancelled`]: CancelToken::is_cancelled
/// [`CoreError::Cancelled`]: crate::CoreError::Cancelled
#[derive(Debug, Default)]
pub struct CancelToken {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that only cancels when [`cancel`](CancelToken::cancel) is
    /// called.
    pub fn new() -> Arc<CancelToken> {
        Arc::new(CancelToken {
            cancelled: AtomicBool::new(false),
            deadline: None,
        })
    }

    /// A token that additionally cancels once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> Arc<CancelToken> {
        Arc::new(CancelToken {
            cancelled: AtomicBool::new(false),
            deadline: Some(deadline),
        })
    }

    /// A token that cancels `timeout` from now.
    pub fn after(timeout: Duration) -> Arc<CancelToken> {
        CancelToken::with_deadline(Instant::now() + timeout)
    }

    /// Triggers the token; all subsequent polls observe cancellation.
    pub fn cancel(&self) {
        self.cancelled.store(true, Relaxed);
    }

    /// Whether the token has been triggered or its deadline has passed.
    pub fn is_cancelled(&self) -> bool {
        if self.cancelled.load(Relaxed) {
            return true;
        }
        match self.deadline {
            Some(deadline) if Instant::now() >= deadline => {
                self.cancelled.store(true, Relaxed);
                true
            }
            _ => false,
        }
    }

    /// The attached deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }
}

/// Execution context: a thread budget plus live per-operator statistics.
///
/// Contexts are cheap to create; the query evaluator makes one per
/// top-level evaluation and reads the counters back afterwards.
///
/// # Examples
/// ```
/// use itd_core::{ExecContext, GenRelation, GenTuple, Lrp, OpKind, Schema};
/// let evens = GenRelation::builder(Schema::new(1, 0))
///     .push_row(GenTuple::builder().lrp(Lrp::new(0, 2)?).build()?)
///     .build()?;
/// let fives = GenRelation::builder(Schema::new(1, 0))
///     .push_row(GenTuple::builder().lrp(Lrp::new(0, 5)?).build()?)
///     .build()?;
/// let ctx = ExecContext::with_threads(2);
/// let tens = evens.intersect_in(&fives, &ctx)?;
/// assert!(tens.contains(&[10], &[]));
/// let stats = ctx.stats();
/// assert_eq!(stats.op(OpKind::Intersect).calls, 1);
/// assert_eq!(stats.op(OpKind::Intersect).pairs, 1);
/// # Ok::<(), itd_core::CoreError>(())
/// ```
#[derive(Debug)]
pub struct ExecContext {
    threads: usize,
    stats: OpStats,
    trace: Option<TraceSink>,
    cancel: Option<Arc<CancelToken>>,
}

impl Default for ExecContext {
    fn default() -> ExecContext {
        ExecContext::new()
    }
}

impl ExecContext {
    /// A context sized to the machine: `available_parallelism`, capped at 8
    /// (the pairwise loops stop scaling long before that on typical
    /// relation sizes).
    pub fn new() -> ExecContext {
        let threads = thread::available_parallelism().map_or(1, |n| n.get());
        ExecContext::with_threads(threads.min(8))
    }

    /// A single-threaded context (the behavior of the plain operator
    /// methods).
    pub fn serial() -> ExecContext {
        ExecContext::with_threads(1)
    }

    /// A context with an explicit thread budget (`0` is treated as `1`).
    /// Results do not depend on the budget — only wall time does.
    pub fn with_threads(threads: usize) -> ExecContext {
        ExecContext {
            threads: threads.max(1),
            stats: OpStats::default(),
            trace: None,
            cancel: None,
        }
    }

    /// Attaches a [`CancelToken`]: the parallel executor polls it at chunk
    /// boundaries (once per item) and aborts the evaluation with
    /// [`CoreError::Cancelled`] when it trips. Used by the query service to
    /// enforce per-request deadlines without poisoning caches — the abort
    /// happens before any result is published.
    ///
    /// # Examples
    /// ```
    /// use itd_core::{CancelToken, ExecContext};
    /// let token = CancelToken::new();
    /// let ctx = ExecContext::serial().cancellable(token.clone());
    /// assert!(ctx.check_cancelled().is_ok());
    /// token.cancel();
    /// assert!(ctx.check_cancelled().is_err());
    /// ```
    ///
    /// [`CoreError::Cancelled`]: crate::CoreError::Cancelled
    pub fn cancellable(mut self, token: Arc<CancelToken>) -> ExecContext {
        self.cancel = Some(token);
        self
    }

    /// The attached cancellation token, if any.
    pub fn cancel_token(&self) -> Option<&Arc<CancelToken>> {
        self.cancel.as_ref()
    }

    /// Errs with [`CoreError::Cancelled`] if the attached token (if any)
    /// has tripped. Cheap when no token is attached.
    ///
    /// [`CoreError::Cancelled`]: crate::CoreError::Cancelled
    pub fn check_cancelled(&self) -> Result<()> {
        match &self.cancel {
            Some(token) if token.is_cancelled() => Err(crate::CoreError::Cancelled),
            _ => Ok(()),
        }
    }

    /// Attaches a [`TraceSink`]: every operator invocation is recorded as
    /// a [`Span`](crate::trace::Span) until the trace is drained with
    /// [`take_trace`](ExecContext::take_trace).
    ///
    /// Span ids come from a context-local counter in begin order, so the
    /// recorded tree is identical at any thread budget (see the
    /// [`trace`](crate::trace) module docs).
    ///
    /// # Examples
    /// ```
    /// use itd_core::{ExecContext, GenRelation, GenTuple, Lrp, Schema};
    /// let evens = GenRelation::builder(Schema::new(1, 0))
    ///     .push_row(GenTuple::builder().lrp(Lrp::new(0, 2)?).build()?)
    ///     .build()?;
    /// let ctx = ExecContext::serial().traced();
    /// let _ = evens.intersect_in(&evens, &ctx)?;
    /// let trace = ctx.take_trace().expect("tracing is on");
    /// assert_eq!(trace.len(), 1);
    /// assert_eq!(trace.op_totals(), ctx.stats());
    /// # Ok::<(), itd_core::CoreError>(())
    /// ```
    pub fn traced(mut self) -> ExecContext {
        self.trace = Some(TraceSink::new());
        self
    }

    /// Whether a trace sink is attached.
    pub fn is_traced(&self) -> bool {
        self.trace.is_some()
    }

    /// Drains the recorded spans, or `None` if the context is untraced.
    /// The sink stays attached and continues recording (with fresh span
    /// ids), so one traced context can serve many queries.
    pub fn take_trace(&self) -> Option<Trace> {
        self.trace.as_ref().map(TraceSink::take)
    }

    /// Opens a caller-labelled span (a query plan node, say) that closes
    /// when the returned guard drops; operator spans begun in between
    /// become its children. On an untraced context the guard is inert and
    /// `label` is never called.
    pub fn node_span(&self, label: impl FnOnce() -> String) -> NodeSpan<'_> {
        NodeSpan::new(self.trace.as_ref(), label, None)
    }

    /// Like [`node_span`](ExecContext::node_span), but stamps the span
    /// with the stable id of the query-plan node it executes, so EXPLAIN
    /// ANALYZE can join plan and trace by id instead of by label text.
    pub fn plan_span(&self, plan_node: u64, label: impl FnOnce() -> String) -> NodeSpan<'_> {
        NodeSpan::new(self.trace.as_ref(), label, Some(plan_node))
    }

    /// The thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// A point-in-time copy of the per-operator counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Zeroes the counters (the thread budget is unchanged).
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    pub(crate) fn op(&self, kind: OpKind) -> &OpCounters {
        self.stats.op(kind)
    }

    /// Records a common period against `kind`'s shared counters and, when
    /// traced, against the innermost open span of that kind. For call
    /// sites that hold the context rather than an [`OpTimer`] (the
    /// complement worker loop).
    pub(crate) fn record_period(&self, kind: OpKind, k: i64) {
        self.stats.op(kind).record_period(k);
        if let Some(sink) = &self.trace {
            sink.record_period(kind, k);
        }
    }

    /// Opens a [`OpKind::ViewRefresh`] timing scope: one registered-view
    /// maintenance pass. The guard counts the call on construction and the
    /// elapsed wall time on drop (into a span too, when traced); the caller
    /// reports the delta rows consumed and the result rows produced.
    pub fn view_refresh_scope(&self) -> ViewRefreshScope<'_> {
        ViewRefreshScope {
            timer: self.timed(OpKind::ViewRefresh),
        }
    }

    pub(crate) fn timed(&self, kind: OpKind) -> OpTimer<'_> {
        let counters = self.stats.op(kind);
        counters.calls.fetch_add(1, Relaxed);
        let span = self.trace.as_ref().map(|sink| {
            (
                sink,
                sink.begin(SpanLabel::Op(kind), None),
                counters.snapshot(),
            )
        });
        OpTimer {
            counters,
            kind,
            span,
            start: Instant::now(),
        }
    }
}

/// Public guard over one [`OpKind::ViewRefresh`] invocation, handed out by
/// [`ExecContext::view_refresh_scope`] so crates outside the core can time
/// view maintenance through the same counter/span machinery as the algebra
/// operators without exposing the internal per-op timer.
pub struct ViewRefreshScope<'a> {
    timer: OpTimer<'a>,
}

impl ViewRefreshScope<'_> {
    /// Counts signed delta rows consumed by this refresh.
    pub fn add_delta_rows(&self, n: usize) {
        self.timer.add_in(n);
    }

    /// Counts result rows the refreshed view now holds.
    pub fn add_result_rows(&self, n: usize) {
        self.timer.add_out(n);
    }
}

/// Applies `f` to every item, concatenating the outputs **in item order**,
/// fanning the work over up to `threads` scoped workers.
///
/// Determinism: items are split into contiguous chunks, each worker
/// processes its chunk left to right, and chunk outputs are concatenated
/// in chunk order — exactly the serial output, at any thread count. On
/// failure the reported error is the one a serial run would hit first
/// (first failing item of the first failing chunk; earlier chunks hold
/// earlier items, and within its chunk a worker stops at its first error).
/// [`run_chunked`] over the row indices `0..n`: chunk boundaries depend
/// only on the length and thread count, so a columnar caller that never
/// materializes rows splits work (and concatenates outputs) exactly like
/// a row-slice caller of the same length — the bit-identity argument
/// carries over unchanged.
pub(crate) fn run_chunked_range<U, F>(ctx: &ExecContext, n: usize, f: F) -> Result<Vec<U>>
where
    U: Send,
    F: Fn(usize) -> Result<Vec<U>> + Sync,
{
    let indices: Vec<usize> = (0..n).collect();
    run_chunked(ctx, &indices, |&i| f(i))
}

pub(crate) fn run_chunked<T, U, F>(ctx: &ExecContext, items: &[T], f: F) -> Result<Vec<U>>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> Result<Vec<U>> + Sync,
{
    let cancel = ctx.cancel.as_deref();
    let check = |token: Option<&CancelToken>| -> Result<()> {
        match token {
            Some(t) if t.is_cancelled() => Err(crate::CoreError::Cancelled),
            _ => Ok(()),
        }
    };
    let workers = ctx.threads.min(items.len());
    if workers <= 1 {
        let mut out = Vec::new();
        for item in items {
            check(cancel)?;
            out.extend(f(item)?);
        }
        return Ok(out);
    }
    let chunk_len = items.len().div_ceil(workers);
    let f = &f;
    let check = &check;
    let per_chunk: Vec<Result<Vec<U>>> = thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .map(|chunk| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    for item in chunk {
                        check(cancel)?;
                        out.extend(f(item)?);
                    }
                    Ok(out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("algebra worker panicked"))
            .collect()
    });
    let mut out = Vec::new();
    for r in per_chunk {
        out.extend(r?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunked_matches_serial_order_at_any_thread_count() {
        let items: Vec<i64> = (0..103).collect();
        let f = |x: &i64| Ok(vec![*x * 2, *x * 2 + 1]);
        let serial = run_chunked(&ExecContext::serial(), &items, f).unwrap();
        for threads in [2, 3, 8, 200] {
            let ctx = ExecContext::with_threads(threads);
            assert_eq!(run_chunked(&ctx, &items, f).unwrap(), serial);
        }
        assert_eq!(serial.len(), 206);
        assert!(serial.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn chunked_reports_first_error() {
        let items: Vec<i64> = (0..40).collect();
        let f = |x: &i64| {
            if *x >= 17 {
                Err(crate::CoreError::Numth(itd_numth::NumthError::Overflow))
            } else {
                Ok(vec![*x])
            }
        };
        for threads in [1, 4, 64] {
            let ctx = ExecContext::with_threads(threads);
            let err = run_chunked(&ctx, &items, f).unwrap_err();
            assert!(matches!(err, crate::CoreError::Numth(_)));
        }
    }

    #[test]
    fn pre_cancelled_token_aborts_at_any_thread_count() {
        let items: Vec<i64> = (0..50).collect();
        let f = |x: &i64| Ok(vec![*x]);
        for threads in [1, 2, 8] {
            let token = CancelToken::new();
            token.cancel();
            let ctx = ExecContext::with_threads(threads).cancellable(token);
            let err = run_chunked(&ctx, &items, f).unwrap_err();
            assert_eq!(err, crate::CoreError::Cancelled);
        }
    }

    #[test]
    fn mid_run_cancellation_stops_the_loop() {
        use std::sync::atomic::AtomicUsize;
        let items: Vec<i64> = (0..1000).collect();
        let token = CancelToken::new();
        let seen = AtomicUsize::new(0);
        let trip = token.clone();
        let f = move |x: &i64| {
            seen.fetch_add(1, Relaxed);
            if *x == 3 {
                trip.cancel();
            }
            Ok(vec![*x])
        };
        let ctx = ExecContext::serial().cancellable(token);
        let err = run_chunked(&ctx, &items, f).unwrap_err();
        assert_eq!(err, crate::CoreError::Cancelled);
    }

    #[test]
    fn deadline_token_latches_expiry() {
        let token = CancelToken::after(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        assert!(token.is_cancelled());
        assert!(token.is_cancelled(), "latched after first observation");
        assert!(token.deadline().is_some());
        let far = CancelToken::after(Duration::from_secs(3600));
        assert!(!far.is_cancelled());
        let ctx = ExecContext::serial();
        assert!(ctx.cancel_token().is_none());
        assert!(ctx.check_cancelled().is_ok());
    }

    #[test]
    fn snapshot_merge_and_display() {
        let ctx = ExecContext::with_threads(3);
        assert_eq!(ctx.threads(), 3);
        {
            let t = ctx.timed(OpKind::Intersect);
            t.add_in(4);
            t.add_out(2);
            t.add_pairs(4);
            t.add_pruned(2);
            t.add_intern_hits(3);
            t.record_period(6);
        }
        {
            let t = ctx.timed(OpKind::Compact);
            t.add_in(8);
            t.add_out(5);
            t.add_subsumed(2);
            t.add_merges(1);
        }
        let mut snap = ctx.stats();
        assert_eq!(snap.op(OpKind::Intersect).calls, 1);
        assert_eq!(snap.op(OpKind::Intersect).tuples_in, 4);
        assert_eq!(snap.op(OpKind::Intersect).max_period, 6);
        assert_eq!(snap.op(OpKind::Intersect).intern_hits, 3);
        assert_eq!(snap.op(OpKind::Compact).tuples_subsumed, 2);
        assert_eq!(snap.op(OpKind::Compact).coalesce_merges, 1);
        assert!(!snap.is_zero());
        snap.merge(&ctx.stats());
        assert_eq!(snap.op(OpKind::Intersect).calls, 2);
        assert_eq!(snap.op(OpKind::Intersect).max_period, 6);
        assert_eq!(snap.op(OpKind::Compact).tuples_subsumed, 4);
        assert_eq!(snap.op(OpKind::Compact).intern_hits, 0);
        let text = snap.to_string();
        assert!(text.contains("intersect"), "{text}");
        assert!(text.contains("total"), "{text}");
        ctx.reset_stats();
        assert!(ctx.stats().is_zero());
        assert!(ctx.stats().to_string().contains("no algebra"));
    }

    #[test]
    fn thread_budget_is_clamped() {
        assert_eq!(ExecContext::with_threads(0).threads(), 1);
        assert!(ExecContext::new().threads() >= 1);
        assert_eq!(ExecContext::serial().threads(), 1);
    }
}

//! Finite-window materialization: the brute-force semantics oracle.

use std::collections::BTreeSet;

use crate::tuple::GenTuple;
use crate::value::Value;

/// A concrete (non-generalized) tuple: integer time points plus data.
pub type ConcreteTuple = (Vec<i64>, Vec<Value>);

/// Enumerates every concrete tuple denoted by `t` whose temporal values all
/// lie in `[lo, hi]`.
///
/// Cost is `O(Π windowᵢ)` — exponential in the temporal arity. This is a
/// test/inspection oracle, not a query path; the symbolic algebra exists
/// precisely so that this never needs to run on real workloads.
pub(crate) fn materialize_tuple(t: &GenTuple, lo: i64, hi: i64) -> Vec<ConcreteTuple> {
    if !t.constraints().is_satisfiable() {
        return vec![];
    }
    let columns: Vec<Vec<i64>> = t.lrps().iter().map(|l| l.in_window(lo, hi)).collect();
    if columns.iter().any(Vec::is_empty) && !columns.is_empty() {
        return vec![];
    }
    let mut out = Vec::new();
    let mut idx = vec![0usize; columns.len()];
    let mut times = vec![0i64; columns.len()];
    loop {
        for (slot, (&i, col)) in times.iter_mut().zip(idx.iter().zip(&columns)) {
            *slot = col[i];
        }
        if t.constraints().satisfied_by(&times) {
            out.push((times.clone(), t.data().to_vec()));
        }
        let mut pos = columns.len();
        loop {
            if pos == 0 {
                return out;
            }
            pos -= 1;
            idx[pos] += 1;
            if idx[pos] < columns[pos].len() {
                break;
            }
            idx[pos] = 0;
        }
    }
}

/// Materializes a set of tuples into a deduplicated, ordered set.
pub(crate) fn materialize_tuples(tuples: &[GenTuple], lo: i64, hi: i64) -> BTreeSet<ConcreteTuple> {
    let mut out = BTreeSet::new();
    for t in tuples {
        out.extend(materialize_tuple(t, lo, hi));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use itd_constraint::Atom;
    use itd_lrp::Lrp;

    fn lrp(c: i64, k: i64) -> Lrp {
        Lrp::new(c, k).unwrap()
    }

    #[test]
    fn materializes_example_2_2() {
        let t = GenTuple::builder()
            .lrps(vec![Lrp::point(1), lrp(1, 2)])
            .atoms([Atom::ge(1, 0)])
            .build()
            .unwrap();
        let m = materialize_tuple(&t, 0, 7);
        assert_eq!(
            m,
            vec![
                (vec![1, 1], vec![]),
                (vec![1, 3], vec![]),
                (vec![1, 5], vec![]),
                (vec![1, 7], vec![]),
            ]
        );
    }

    #[test]
    fn zero_arity_tuple_materializes_once() {
        let t = GenTuple::unconstrained(vec![], vec![Value::Int(5)]);
        let m = materialize_tuple(&t, 0, 10);
        assert_eq!(m, vec![(vec![], vec![Value::Int(5)])]);
    }

    #[test]
    fn unsat_materializes_empty() {
        let t = GenTuple::builder()
            .lrps(vec![lrp(0, 2)])
            .atoms([Atom::le(0, 1), Atom::ge(0, 3)])
            .build()
            .unwrap();
        assert!(materialize_tuple(&t, -10, 10).is_empty());
    }

    #[test]
    fn empty_column_window() {
        let t = GenTuple::unconstrained(vec![Lrp::point(100), lrp(0, 2)], vec![]);
        assert!(materialize_tuple(&t, 0, 10).is_empty());
    }

    #[test]
    fn dedup_across_tuples() {
        let a = GenTuple::unconstrained(vec![lrp(0, 2)], vec![]);
        let b = GenTuple::unconstrained(vec![lrp(0, 4)], vec![]);
        let m = materialize_tuples(&[a, b], 0, 8);
        let times: Vec<i64> = m.into_iter().map(|(t, _)| t[0]).collect();
        assert_eq!(times, vec![0, 2, 4, 6, 8]);
    }
}

//! Normal form and the normalization algorithm (Definition 3.2,
//! Theorem 3.2).
//!
//! A tuple is *in normal form* when one period `k` governs every infinite
//! lrp and all constraint constants are aligned with the attribute offsets
//! modulo `k`. On a normal-form tuple, real-valued (Fourier–Motzkin /
//! DBM-closure) projection is exact over the lrp grid — Theorem 3.1; the
//! tests reproduce Figure 2's counterexample showing it is *not* exact
//! without normalization.
//!
//! Normalization follows the paper's five steps:
//! 1. refine every infinite lrp to the common period `k = lcm(kᵢ)`
//!    (Lemma 3.1, [`itd_lrp::Lrp::refine_to_period`]);
//! 2. take the cross product of the refined classes, copying constraints;
//! 3. substitute the lrp anchors into the constraints (here: the
//!    [`ConstraintSystem::to_grid`] transform);
//! 4. drop combinations with unsatisfiable residue equations (the grid
//!    system detects them as negative cycles);
//! 5. round remaining constants onto the grid (`to_grid`'s floor division,
//!    mapped back by [`ConstraintSystem::from_grid`]).

use itd_constraint::{Atom, ConstraintSystem};
use itd_lrp::Lrp;

use crate::error::CoreError;
use crate::tuple::GenTuple;
use crate::Result;

/// Default ceiling on the number of tuples normalization may produce
/// (`Π k/kᵢ` can explode when periods are unrelated — Appendix A.1).
pub const DEFAULT_NORMALIZE_LIMIT: u64 = 1 << 20;

/// If all infinite lrps share one period, returns it (`1` when every
/// attribute is a point); otherwise `None`.
pub(crate) fn single_period(lrps: &[Lrp]) -> Option<i64> {
    let mut k = None;
    for l in lrps {
        if l.is_point() {
            continue;
        }
        match k {
            None => k = Some(l.period()),
            Some(p) if p == l.period() => {}
            Some(_) => return None,
        }
    }
    Some(k.unwrap_or(1))
}

/// Anchor of each attribute: the canonical offset for an infinite lrp, the
/// value itself for a point.
fn anchors(lrps: &[Lrp]) -> Vec<i64> {
    lrps.iter().map(Lrp::offset).collect()
}

/// The tuple's constraints augmented with `Xi = c` for each point attribute
/// (pinning the grid coordinate of constants so that grid reasoning sees
/// them).
fn augmented_cons(t: &GenTuple) -> Result<ConstraintSystem> {
    let mut cons = t.constraints().clone();
    for (i, l) in t.lrps().iter().enumerate() {
        if l.is_point() {
            cons.add(Atom::eq(i, l.offset()))?;
        }
    }
    Ok(cons)
}

/// Grid view of a single-period tuple: the common period `k`, the anchor of
/// each attribute, and the constraint system over the grid coordinates
/// `nᵢ` (where `Xᵢ = anchorᵢ + k·nᵢ`; point attributes are pinned to
/// `nᵢ = 0`).
///
/// The grid system reasons over *free* integer variables, so DBM closure,
/// satisfiability, and elimination are all exact on it — this is the form
/// in which projection, difference, and emptiness are computed.
///
/// # Errors
/// [`CoreError::NotSinglePeriod`] if the tuple mixes different periods
/// (normalize first); arithmetic errors from the grid transform.
pub fn grid_view(t: &GenTuple) -> Result<(i64, Vec<i64>, ConstraintSystem)> {
    let Some(k) = single_period(t.lrps()) else {
        return Err(CoreError::NotSinglePeriod);
    };
    let anchors = anchors(t.lrps());
    let grid = grid_system(t, &anchors, k)?;
    Ok((k, anchors, grid))
}

/// Builds the grid system given precomputed anchors and period.
pub(crate) fn grid_system(t: &GenTuple, anchors: &[i64], k: i64) -> Result<ConstraintSystem> {
    let aug = augmented_cons(t)?;
    Ok(aug.to_grid(anchors, k)?)
}

/// Is the tuple in normal form? See [`GenTuple::is_normal_form`].
pub(crate) fn is_normal_form(t: &GenTuple) -> Result<bool> {
    if !t.constraints().is_satisfiable() {
        return Ok(false);
    }
    let Some(k) = single_period(t.lrps()) else {
        return Ok(false);
    };
    let anchors = anchors(t.lrps());
    let aug = augmented_cons(t)?;
    let grid = aug.to_grid(&anchors, k)?;
    if !grid.is_satisfiable() {
        return Ok(false);
    }
    let back = grid.from_grid(&anchors, k)?;
    Ok(back == aug)
}

/// Theorem 3.2 normalization with the default output-size limit.
pub(crate) fn normalize(t: &GenTuple) -> Result<Vec<GenTuple>> {
    normalize_with_limit(t, DEFAULT_NORMALIZE_LIMIT)
}

/// Exact emptiness with early exit: enumerates refined residue
/// combinations lazily and stops at the first satisfiable grid system.
///
/// Equivalent to `!normalize(t)?.is_empty()` but without materializing the
/// cross-product — on nonempty tuples (the common case in difference and
/// query pipelines) this usually returns after the first combination.
pub(crate) fn is_nonempty(t: &GenTuple) -> Result<bool> {
    if !t.constraints().is_satisfiable() {
        return Ok(false);
    }
    let k = Lrp::common_period(t.lrps().iter())?;
    let mut choices: Vec<Vec<Lrp>> = Vec::with_capacity(t.lrps().len());
    for l in t.lrps() {
        choices.push(if l.is_point() {
            vec![*l]
        } else {
            l.refine_to_period(k)?
        });
    }
    if choices.is_empty() {
        // 0-ary tuple: nonempty iff constraints satisfiable (checked).
        return Ok(true);
    }
    let aug = {
        let mut cons = t.constraints().clone();
        for (i, l) in t.lrps().iter().enumerate() {
            if l.is_point() {
                cons.add(Atom::eq(i, l.offset()))?;
            }
        }
        cons
    };
    let mut idx = vec![0usize; choices.len()];
    loop {
        let anchors: Vec<i64> = idx
            .iter()
            .zip(&choices)
            .map(|(&i, c)| c[i].offset())
            .collect();
        if aug.to_grid(&anchors, k)?.is_satisfiable() {
            return Ok(true);
        }
        let mut pos = choices.len();
        loop {
            if pos == 0 {
                return Ok(false);
            }
            pos -= 1;
            idx[pos] += 1;
            if idx[pos] < choices[pos].len() {
                break;
            }
            idx[pos] = 0;
        }
    }
}

/// What one tuple's normalization did, for the executor's counters.
#[derive(Debug, Clone, Copy)]
pub(crate) struct NormalizeReport {
    /// The common period `k` the tuple was refined to.
    pub period: i64,
    /// Refined residue combinations enumerated (`Π k/kᵢ`).
    pub combos: u64,
    /// Combinations dropped as grid-unsatisfiable (step 4).
    pub dropped: u64,
}

/// Theorem 3.2 normalization with an explicit ceiling on the number of
/// refined combinations.
///
/// # Errors
/// [`CoreError::TooManyExtensions`] when `Π k/kᵢ > limit`;
/// arithmetic errors from `lcm`/grid transforms.
pub(crate) fn normalize_with_limit(t: &GenTuple, limit: u64) -> Result<Vec<GenTuple>> {
    normalize_with_limit_report(t, limit).map(|(out, _)| out)
}

/// [`normalize_with_limit`] plus a [`NormalizeReport`] of what it did.
pub(crate) fn normalize_with_limit_report(
    t: &GenTuple,
    limit: u64,
) -> Result<(Vec<GenTuple>, NormalizeReport)> {
    if !t.constraints().is_satisfiable() {
        return Ok((
            vec![],
            NormalizeReport {
                period: 1,
                combos: 0,
                dropped: 0,
            },
        ));
    }
    // Step 0: common period k (lcm of the nonzero periods).
    let k = Lrp::common_period(t.lrps().iter())?;

    // Step 1 (Lemma 3.1): per-attribute refined classes. The combination
    // ceiling is enforced on the *ratios* k/kᵢ before any refinement vector
    // is materialized — with coprime periods the lcm (and hence a single
    // ratio) can approach i64::MAX, so allocating first would abort long
    // before the guard fired.
    let mut combos: u64 = 1;
    for l in t.lrps() {
        if l.is_point() {
            continue;
        }
        let ratio = (k / l.period()) as u64;
        combos = combos.saturating_mul(ratio);
        if combos > limit {
            return Err(CoreError::TooManyExtensions {
                period: k,
                arity: t.lrps().len(),
                limit,
            });
        }
    }
    let mut choices: Vec<Vec<Lrp>> = Vec::with_capacity(t.lrps().len());
    for l in t.lrps() {
        choices.push(if l.is_point() {
            vec![*l]
        } else {
            l.refine_to_period(k)?
        });
    }

    // Steps 2–5: cross product; per combination transform constraints to
    // the grid, discard unsatisfiable residues, and round back.
    let mut out = Vec::new();
    let mut idx = vec![0usize; choices.len()];
    loop {
        let lrps: Vec<Lrp> = idx.iter().zip(&choices).map(|(&i, c)| c[i]).collect();
        let candidate = GenTuple::from_parts(lrps, t.constraints().clone(), t.data().to_vec())?;
        let anchors_v = anchors(candidate.lrps());
        let grid = grid_system(&candidate, &anchors_v, k)?;
        if grid.is_satisfiable() {
            let aligned = grid.from_grid(&anchors_v, k)?;
            out.push(candidate.with_constraints(aligned));
        }

        // Advance the mixed-radix counter.
        let mut pos = choices.len();
        loop {
            if pos == 0 {
                let dropped = combos - out.len() as u64;
                return Ok((
                    out,
                    NormalizeReport {
                        period: k,
                        combos,
                        dropped,
                    },
                ));
            }
            pos -= 1;
            idx[pos] += 1;
            if idx[pos] < choices[pos].len() {
                break;
            }
            idx[pos] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itd_constraint::Atom;
    use proptest::prelude::*;

    fn lrp(c: i64, k: i64) -> Lrp {
        Lrp::new(c, k).unwrap()
    }

    /// Brute-force window membership of a tuple.
    fn member(t: &GenTuple, xs: &[i64]) -> bool {
        t.contains(xs, t.data())
    }

    #[test]
    fn single_period_detection() {
        assert_eq!(single_period(&[lrp(1, 4), lrp(3, 4)]), Some(4));
        assert_eq!(single_period(&[lrp(1, 4), lrp(3, 8)]), None);
        assert_eq!(single_period(&[Lrp::point(5)]), Some(1));
        assert_eq!(single_period(&[]), Some(1));
        assert_eq!(single_period(&[Lrp::point(5), lrp(0, 6)]), Some(6));
    }

    #[test]
    fn paper_example_3_2_normalization() {
        // [4n1+3, 8n2+1] ∧ X1 ≥ X2 ∧ X1 ≤ X2+5 ∧ X2 ≥ 2
        let t = GenTuple::builder()
            .lrps(vec![lrp(3, 4), lrp(1, 8)])
            .atoms([
                Atom::diff_ge(0, 1, 0).unwrap(),
                Atom::diff_le(0, 1, 5),
                Atom::ge(1, 2),
            ])
            .build()
            .unwrap();
        let norm = t.normalize().unwrap();
        // The paper's Example 3.2 table lists two normalized tuples, but its
        // second ([8n1+7, 8n2+1] with X1 ≥ X2 + 6 ∧ X1 ≤ X2 − 2) is
        // contradictory — the rounded constraints cannot both hold — so our
        // step-4 satisfiability filter drops it. Only the first survives:
        //   [8n1+3, 8n2+1]  X1 = X2 + 2 ∧ X2 ≥ 9
        assert_eq!(norm.len(), 1, "{norm:?}");
        let first = &norm[0];
        assert!(first.is_normal_form().unwrap(), "{first}");
        assert_eq!(first.lrps()[0], lrp(3, 8));
        assert_eq!(first.lrps()[1], lrp(1, 8));
        assert_eq!(first.constraints().lower(1), Some(9));
        assert_eq!(
            first.constraints().diff_bound(0, 1),
            itd_constraint::Bound::Finite(2)
        );
        assert_eq!(
            first.constraints().diff_bound(1, 0),
            itd_constraint::Bound::Finite(-2)
        );
    }

    #[test]
    fn normalization_preserves_semantics_on_window() {
        let t = GenTuple::builder()
            .lrps(vec![lrp(3, 4), lrp(1, 8)])
            .atoms([
                Atom::diff_ge(0, 1, 0).unwrap(),
                Atom::diff_le(0, 1, 5),
                Atom::ge(1, 2),
            ])
            .build()
            .unwrap();
        let norm = t.normalize().unwrap();
        for x1 in -10..40 {
            for x2 in -10..40 {
                let original = member(&t, &[x1, x2]);
                let normalized = norm.iter().any(|nt| member(nt, &[x1, x2]));
                assert_eq!(original, normalized, "({x1},{x2})");
            }
        }
    }

    #[test]
    fn unsat_tuple_normalizes_to_nothing() {
        let t = GenTuple::builder()
            .lrps(vec![lrp(0, 2)])
            .atoms([Atom::ge(0, 5), Atom::le(0, 0)])
            .build()
            .unwrap();
        assert!(t.normalize().unwrap().is_empty());
    }

    #[test]
    fn grid_empty_residue_dropped() {
        // X1 = X2 + 1 over two even lrps: no residue combination works.
        let t = GenTuple::builder()
            .lrps(vec![lrp(0, 2), lrp(0, 2)])
            .atoms([Atom::diff_eq(0, 1, 1)])
            .build()
            .unwrap();
        assert!(t.normalize().unwrap().is_empty());
    }

    #[test]
    fn points_are_preserved() {
        let t = GenTuple::builder()
            .lrps(vec![Lrp::point(7), lrp(1, 3)])
            .atoms([Atom::diff_ge(1, 0, 0).unwrap()])
            .build()
            .unwrap();
        let norm = t.normalize().unwrap();
        assert_eq!(norm.len(), 1);
        assert!(norm[0].lrps()[0].is_point());
        assert!(norm[0].is_normal_form().unwrap());
        for x2 in 0..20 {
            assert_eq!(member(&t, &[7, x2]), member(&norm[0], &[7, x2]), "{x2}");
        }
    }

    #[test]
    fn limit_guard_triggers() {
        // Periods 3, 5, 7, 11 → lcm 1155; Π k/kᵢ = 385·231·165·105 ≫ 1000.
        let t = GenTuple::unconstrained(vec![lrp(0, 3), lrp(0, 5), lrp(0, 7), lrp(0, 11)], vec![]);
        let err = normalize_with_limit(&t, 1000).unwrap_err();
        assert!(matches!(err, CoreError::TooManyExtensions { .. }));
    }

    #[test]
    fn huge_coprime_periods_fail_fast_without_allocating() {
        // lcm(2³¹, 2³¹−1) ≈ 4.6·10¹⁸: refining either attribute would
        // materialize a ~2-billion-element vector, so the guard must fire
        // on the k/kᵢ ratios alone, before any refinement is built.
        let t = GenTuple::unconstrained(vec![lrp(0, 1 << 31), lrp(0, (1 << 31) - 1)], vec![]);
        let err = normalize_with_limit(&t, DEFAULT_NORMALIZE_LIMIT).unwrap_err();
        assert!(matches!(err, CoreError::TooManyExtensions { .. }));
        // And an overflowing lcm itself is a typed error, not a panic.
        let t = GenTuple::unconstrained(vec![lrp(0, i64::MAX - 1), lrp(0, i64::MAX - 2)], vec![]);
        assert!(t.normalize().is_err());
    }

    #[test]
    fn grid_view_requires_single_period() {
        let t = GenTuple::unconstrained(vec![lrp(0, 2), lrp(0, 3)], vec![]);
        assert!(matches!(grid_view(&t), Err(CoreError::NotSinglePeriod)));
        let t = GenTuple::unconstrained(vec![lrp(0, 6), lrp(1, 6)], vec![]);
        let (k, anchors, grid) = grid_view(&t).unwrap();
        assert_eq!(k, 6);
        assert_eq!(anchors, vec![0, 1]);
        assert!(grid.is_unconstrained());
    }

    #[test]
    fn normal_form_detection() {
        // Already normal: same periods, aligned constraint.
        let t = GenTuple::builder()
            .lrps(vec![lrp(3, 8), lrp(1, 8)])
            .atoms([Atom::diff_eq(0, 1, 2)])
            .build()
            .unwrap();
        assert!(t.is_normal_form().unwrap());
        // Misaligned bound: X1 ≤ X2 + 5 over the same grid is not aligned
        // (5 is not ≡ 3−1 mod 8).
        let t = GenTuple::builder()
            .lrps(vec![lrp(3, 8), lrp(1, 8)])
            .atoms([Atom::diff_le(0, 1, 5)])
            .build()
            .unwrap();
        assert!(!t.is_normal_form().unwrap());
        // Mixed periods are never normal.
        let t = GenTuple::unconstrained(vec![lrp(0, 2), lrp(0, 4)], vec![]);
        assert!(!t.is_normal_form().unwrap());
    }

    #[test]
    fn normalize_count_matches_paper_formula() {
        // Appendix A.1: each tuple becomes Π (k / kᵢ) tuples (before
        // unsatisfiable residues are dropped).
        let t = GenTuple::unconstrained(vec![lrp(0, 2), lrp(1, 3)], vec![]);
        let norm = t.normalize().unwrap();
        // k = 6 → 3 · 2 = 6 combinations, all satisfiable (no constraints).
        assert_eq!(norm.len(), 6);
        for nt in &norm {
            assert!(nt.is_normal_form().unwrap());
        }
    }

    proptest! {
        #[test]
        fn prop_normalization_preserves_membership(
            c1 in 0i64..6, k1 in 1i64..5,
            c2 in 0i64..6, k2 in 1i64..5,
            a in -6i64..6,
            lob in -6i64..6,
            x1 in -25i64..25, x2 in -25i64..25,
        ) {
            let t = GenTuple::builder().lrps(vec![lrp(c1, k1), lrp(c2, k2)]).atoms([Atom::diff_le(0, 1, a), Atom::ge(1, lob)]).build().unwrap();
            let norm = t.normalize().unwrap();
            let original = member(&t, &[x1, x2]);
            let via_norm = norm.iter().any(|nt| member(nt, &[x1, x2]));
            prop_assert_eq!(original, via_norm);
            for nt in &norm {
                prop_assert!(nt.is_normal_form().unwrap(), "{} not normal", nt);
            }
        }
    }
}

//! Adaptive intermediate compaction: subsumption pruning plus residue
//! coalescing, the representation-minimization pass run *between* plan
//! nodes.
//!
//! The paper's complexity bounds (§3.8) are stated in `N`, the number of
//! generalized tuples, yet the algebra lets `N` balloon between
//! operators: normalization and complement refine one tuple into `k/kᵢ`
//! residue classes, difference splits tuples around punctured points, and
//! every redundant tuple is carried into the next quadratic operator.
//! [`GenRelation::compact_in`](crate::GenRelation::compact_in) shrinks an
//! intermediate relation without changing its denotation, in three
//! sub-steps:
//!
//! 1. tuples with an unsatisfiable constraint system are dropped;
//! 2. **subsumption pruning**: a tuple whose denotation is certainly
//!    contained in another's (same data, columnwise lrp inclusion,
//!    constraint entailment — the sound check of
//!    [`GenRelation::simplify`](crate::GenRelation::simplify)) is
//!    dropped. Candidates are pre-filtered by data columns and by a
//!    per-column residue signature `offset mod m` (with `m` the capped
//!    smooth divisor of the column's period gcd, exactly as in
//!    [`crate::index`]): if `big ⊇ small` then `m` divides `big`'s
//!    period, so the offsets are congruent mod `m` — tuples in different
//!    buckets cannot subsume each other in either direction, and the
//!    quadratic check runs only inside (typically tiny) buckets;
//! 3. **coalescing** ([`crate::minimize`]): complete residue-class groups
//!    `c, c+g, …, c+(k/g−1)·g` are merged back into the coarser tuple
//!    `c + g·n` — the inverse of Lemma 3.1 — and the survivors are
//!    subsumption-pruned once more (a coarser class may now cover tuples
//!    the first pass kept).
//!
//! The pass is deliberately serial: it is near-linear thanks to the
//! bucketing, and a serial pass is trivially bit-identical at any thread
//! budget. Per call, `tuples_subsumed + coalesce_merges + tuples_out ==
//! tuples_in` — the counter invariant the bench report asserts.

use std::collections::HashMap;

use itd_numth::gcd;

use crate::index::{smooth_cap, MAX_MODULUS};
use crate::relation::{tuple_subsumes, GenRelation};
use crate::tuple::GenTuple;
use crate::value::Value;
use crate::Result;

/// What one compaction pass removed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct CompactReport {
    /// Tuples dropped as unsatisfiable or subsumed by another tuple.
    pub subsumed: u64,
    /// Tuples eliminated by coalescing (group size minus one per merge).
    pub merges: u64,
}

/// Compacts `rel` without changing its denotation; returns the smaller
/// relation and the removal tally. `report.subsumed + report.merges +
/// result.tuple_count() == rel.tuple_count()` always holds.
pub(crate) fn compact_relation(rel: &GenRelation) -> Result<(GenRelation, CompactReport)> {
    let mut report = CompactReport::default();
    if rel.tuple_count() <= 1 {
        return Ok((rel.clone(), report));
    }
    let kept = subsume(rel.rows_slice(), &mut report.subsumed);
    let pruned = GenRelation::new(rel.schema(), kept)?;

    let coalesced = crate::minimize::coalesce(&pruned)?;
    report.merges = (pruned.tuple_count() - coalesced.tuple_count()) as u64;
    if report.merges == 0 {
        // Nothing merged: the first subsumption pass already reached a
        // fixpoint, so a second pass would keep everything.
        return Ok((pruned, report));
    }

    let kept = subsume(coalesced.rows_slice(), &mut report.subsumed);
    let out = GenRelation::new(rel.schema(), kept)?;
    Ok((out, report))
}

/// Bucket key: data columns plus per-temporal-column residue signature.
type BucketKey = (Vec<Value>, Vec<i64>);

/// One subsumption pass. Keeps input order; `removed` is incremented by
/// the number of dropped tuples.
fn subsume(tuples: &[GenTuple], removed: &mut u64) -> Vec<GenTuple> {
    let temporal = tuples.first().map_or(0, |t| t.lrps().len());
    // Per-column modulus: the capped smooth part of the gcd of the
    // column's nonzero periods (`gcd(0, k) = k` makes points transparent;
    // an all-points column keys on `offset mod MAX_MODULUS`).
    let moduli: Vec<i64> = (0..temporal)
        .map(|c| {
            let g = tuples
                .iter()
                .fold(0i64, |acc, t| gcd(acc, t.lrps()[c].period()));
            if g == 0 {
                MAX_MODULUS
            } else {
                smooth_cap(g)
            }
        })
        .collect();
    // `big ⊇ small` forces equal data and, per column, offsets congruent
    // mod `big`'s period — hence mod `m` (which divides every period in
    // the column). Differing keys therefore rule out subsumption in both
    // directions, so the quadratic check stays inside buckets.
    let mut buckets: HashMap<BucketKey, Vec<usize>> = HashMap::new();
    let mut drop: Vec<bool> = vec![false; tuples.len()];
    for (i, t) in tuples.iter().enumerate() {
        if !t.constraints().is_satisfiable() {
            drop[i] = true;
            continue;
        }
        let residues: Vec<i64> = t
            .lrps()
            .iter()
            .zip(&moduli)
            .map(|(l, &m)| l.offset().rem_euclid(m))
            .collect();
        buckets
            .entry((t.data().to_vec(), residues))
            .or_default()
            .push(i);
    }
    for members in buckets.values() {
        for &i in members {
            let t = &tuples[i];
            let subsumed = members.iter().any(|&j| {
                if i == j || drop[j] {
                    return false;
                }
                let other = &tuples[j];
                // Break ties so mutually-subsuming duplicates keep one
                // copy (same tie-break as `GenRelation::simplify`).
                let tie_break = j < i;
                (tie_break || !tuple_subsumes(t, other)) && tuple_subsumes(other, t)
            });
            if subsumed {
                // Transitivity keeps this sound under eager marking: if
                // `i` falls to cover `j`, anything `i` covers is also
                // covered by `j` (with a consistent tie-break), and the
                // least member of a duplicate class can never fall.
                drop[i] = true;
            }
        }
    }
    let mut kept = Vec::with_capacity(tuples.len());
    for (i, t) in tuples.iter().enumerate() {
        if drop[i] {
            *removed += 1;
        } else {
            kept.push(t.clone());
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use itd_constraint::Atom;
    use itd_lrp::Lrp;

    fn lrp(c: i64, k: i64) -> Lrp {
        Lrp::new(c, k).unwrap()
    }

    fn rel(tuples: Vec<GenTuple>) -> GenRelation {
        GenRelation::new(Schema::new(1, 0), tuples).unwrap()
    }

    #[test]
    fn invariant_holds_and_denotation_is_preserved() {
        // Mix: a subsumed refinement, a full residue group, an unsat tuple.
        let r = rel(vec![
            GenTuple::unconstrained(vec![lrp(0, 4)], vec![]), // ⊆ evens
            GenTuple::unconstrained(vec![lrp(0, 2)], vec![]),
            GenTuple::unconstrained(vec![lrp(1, 2)], vec![]), // with evens: all Z... after coalesce
            GenTuple::builder()
                .lrps(vec![lrp(1, 4)])
                .atoms([Atom::le(0, 0), Atom::ge(0, 5)])
                .build()
                .unwrap(), // unsatisfiable
        ]);
        let (c, rep) = compact_relation(&r).unwrap();
        assert_eq!(
            rep.subsumed + rep.merges + c.tuple_count() as u64,
            r.tuple_count() as u64
        );
        assert_eq!(c.materialize(-12, 12), r.materialize(-12, 12));
        // evens+odds coalesce to Z; the refinement and the unsat tuple go.
        assert_eq!(c.tuple_count(), 1);
        assert_eq!(c.rows_slice()[0].lrps()[0], Lrp::all());
    }

    #[test]
    fn coarser_class_from_coalescing_subsumes_leftovers() {
        // 1+12n, 7+12n coalesce to 1+6n, which then subsumes 7+24n — a
        // drop only the second subsumption pass can see.
        let r = rel(vec![
            GenTuple::unconstrained(vec![lrp(1, 12)], vec![]),
            GenTuple::unconstrained(vec![lrp(7, 12)], vec![]),
            GenTuple::unconstrained(vec![lrp(7, 24)], vec![]),
        ]);
        let (c, rep) = compact_relation(&r).unwrap();
        assert_eq!(c.tuple_count(), 1);
        assert_eq!(c.rows_slice()[0].lrps()[0], lrp(1, 6));
        assert_eq!(rep.merges, 1);
        assert_eq!(rep.subsumed, 1);
        assert_eq!(c.materialize(-40, 40), r.materialize(-40, 40));
    }

    #[test]
    fn incomparable_tuples_survive() {
        let r = rel(vec![
            GenTuple::unconstrained(vec![lrp(0, 4)], vec![]),
            GenTuple::unconstrained(vec![lrp(1, 6)], vec![]),
        ]);
        let (c, rep) = compact_relation(&r).unwrap();
        assert_eq!(c.tuple_count(), 2);
        assert_eq!(rep, CompactReport::default());
        assert_eq!(c.rows_slice(), r.rows_slice());
    }

    #[test]
    fn data_columns_block_subsumption() {
        let r = GenRelation::new(
            Schema::new(1, 1),
            vec![
                GenTuple::unconstrained(vec![lrp(0, 4)], vec![Value::str("a")]),
                GenTuple::unconstrained(vec![lrp(0, 2)], vec![Value::str("b")]),
            ],
        )
        .unwrap();
        let (c, rep) = compact_relation(&r).unwrap();
        assert_eq!(c.tuple_count(), 2);
        assert_eq!(rep.subsumed, 0);
    }

    #[test]
    fn duplicates_keep_exactly_one_copy() {
        let t = GenTuple::builder()
            .lrps(vec![lrp(2, 6)])
            .atoms([Atom::ge(0, -3)])
            .build()
            .unwrap();
        let r = rel(vec![t.clone(), t.clone(), t]);
        let (c, rep) = compact_relation(&r).unwrap();
        assert_eq!(c.tuple_count(), 1);
        assert_eq!(rep.subsumed, 2);
    }

    #[test]
    fn points_are_subsumed_by_their_class() {
        let r = rel(vec![
            GenTuple::unconstrained(vec![Lrp::point(6)], vec![]),
            GenTuple::unconstrained(vec![lrp(0, 2)], vec![]),
        ]);
        let (c, rep) = compact_relation(&r).unwrap();
        assert_eq!(c.tuple_count(), 1);
        assert_eq!(rep.subsumed, 1);
        assert_eq!(c.rows_slice()[0].lrps()[0], lrp(0, 2));
    }

    #[test]
    fn complement_output_shrinks_substantially() {
        // Complement of a sparse constrained relation: many redundant
        // unconstrained extensions; compaction folds them back.
        let r = rel(vec![GenTuple::builder()
            .lrps(vec![lrp(0, 6)])
            .atoms([Atom::ge(0, 0)])
            .build()
            .unwrap()]);
        let comp = r.complement_temporal().unwrap();
        let (c, rep) = compact_relation(&comp).unwrap();
        assert!(
            c.tuple_count() < comp.tuple_count(),
            "{} < {}",
            c.tuple_count(),
            comp.tuple_count()
        );
        assert_eq!(
            rep.subsumed + rep.merges + c.tuple_count() as u64,
            comp.tuple_count() as u64
        );
        assert_eq!(c.materialize(-24, 24), comp.materialize(-24, 24));
    }

    #[test]
    fn empty_and_singleton_are_untouched() {
        let empty = GenRelation::empty(Schema::new(1, 0));
        let (c, rep) = compact_relation(&empty).unwrap();
        assert!(c.has_no_tuples());
        assert_eq!(rep, CompactReport::default());
        let one = rel(vec![GenTuple::unconstrained(vec![lrp(3, 5)], vec![])]);
        let (c, rep) = compact_relation(&one).unwrap();
        assert_eq!(c.rows_slice(), one.rows_slice());
        assert_eq!(rep, CompactReport::default());
    }
}

//! Generalized relations (Definition 2.3) and the relation-level algebra.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use itd_constraint::Atom;

use crate::enumerate::{materialize_tuples, ConcreteTuple};
use crate::error::CoreError;
use crate::exec::{self, ExecContext, OpKind};
use crate::index::RelationIndex;
use crate::intern::{Interner, TemporalId, INTERN_MIN_PAIRS};
use crate::ops;
use crate::schema::Schema;
use crate::store::{Columns, RelStore, RowRef, Rows};
use crate::tuple::GenTuple;
use crate::value::Value;
use crate::Result;

/// A finite set of generalized tuples of one schema — the finite
/// representation of a (usually infinite) set of concrete tuples.
///
/// # Examples
/// ```
/// use itd_core::{Atom, GenRelation, GenTuple, Lrp, Schema};
/// // "Every 10 ticks, a 3-tick task runs": one tuple, infinitely many facts.
/// let task = GenTuple::builder()
///     .lrp(Lrp::new(0, 10).unwrap())
///     .lrp(Lrp::new(3, 10).unwrap())
///     .atom(Atom::diff_eq(1, 0, 3))
///     .build()
///     .unwrap();
/// let rel = GenRelation::builder(Schema::new(2, 0)).push_row(task).build().unwrap();
/// assert!(rel.contains(&[1_000_000, 1_000_003], &[]));
/// // The full algebra is closed: complement, intersect, project, …
/// let busy_starts = rel.project(&[0], &[]).unwrap();
/// assert!(busy_starts.contains(&[50], &[]));
/// assert!(!busy_starts.contains(&[51], &[]));
/// let idle = busy_starts.complement_temporal().unwrap();
/// assert!(idle.contains(&[51], &[]));
/// ```
///
/// # Storage and snapshots
///
/// Relations are `Arc`-backed views of a columnar, interned
/// columnar store: [`GenRelation::clone`] is `O(1)` and shares
/// storage with the original (copy-on-write on
/// [`GenRelation::push`]), residue indexes persist on the store across
/// operator calls, and row access goes through the [`GenRelation::rows`] /
/// [`GenRelation::columns`] view API.
#[derive(Debug, Clone)]
pub struct GenRelation {
    schema: Schema,
    store: Arc<RelStore>,
}

impl PartialEq for GenRelation {
    fn eq(&self, other: &GenRelation) -> bool {
        if self.schema != other.schema {
            return false;
        }
        if Arc::ptr_eq(&self.store, &other.store) {
            return true;
        }
        // Interned ids are canonical: equal id sequences ⟺ equal rows
        // (order-sensitive, like the old derived `Vec<GenTuple>` equality).
        self.store.part_ids() == other.store.part_ids()
            && self.store.data_columns() == other.store.data_columns()
    }
}

impl Eq for GenRelation {}

impl GenRelation {
    /// Starts building a relation of the given schema; see
    /// [`RelationBuilder`].
    pub fn builder(schema: Schema) -> RelationBuilder {
        RelationBuilder {
            schema,
            rows: Vec::new(),
        }
    }

    /// The empty relation of the given schema.
    pub fn empty(schema: Schema) -> GenRelation {
        GenRelation {
            schema,
            store: Arc::new(RelStore::empty(schema)),
        }
    }

    /// Builds a relation from rows.
    ///
    /// # Errors
    /// [`CoreError::SchemaMismatch`] if a tuple disagrees with `schema`.
    pub fn new(schema: Schema, tuples: Vec<GenTuple>) -> Result<GenRelation> {
        for t in &tuples {
            if t.schema() != schema {
                return Err(CoreError::SchemaMismatch {
                    expected: schema,
                    found: t.schema(),
                });
            }
        }
        Ok(GenRelation::from_vec(schema, tuples))
    }

    /// Internal constructor for operator outputs: every tuple is already
    /// known to match the schema.
    pub(crate) fn from_vec(schema: Schema, tuples: Vec<GenTuple>) -> GenRelation {
        GenRelation {
            schema,
            store: Arc::new(RelStore::from_tuples(schema, tuples)),
        }
    }

    /// The full space `Z^temporal × (any data)` is not representable with
    /// data attributes; for purely temporal schemas this returns the
    /// relation denoting all of `Z^temporal`.
    ///
    /// # Errors
    /// [`CoreError::ComplementHasData`] for schemas with data attributes.
    pub fn full_temporal(schema: Schema) -> Result<GenRelation> {
        if !schema.is_purely_temporal() {
            return Err(CoreError::ComplementHasData);
        }
        let lrps = vec![itd_lrp::Lrp::all(); schema.temporal()];
        Ok(GenRelation::from_vec(
            schema,
            vec![GenTuple::unconstrained(lrps, vec![])],
        ))
    }

    /// The schema.
    #[must_use]
    pub fn schema(&self) -> Schema {
        self.schema
    }

    /// The generalized tuples as a materialized row slice.
    ///
    /// Deprecated: rows are materialized (once per store) to satisfy this
    /// borrow. Iterate [`GenRelation::rows`] or read
    /// [`GenRelation::columns`] instead.
    #[cfg(feature = "legacy-api")]
    #[deprecated(
        since = "0.6.0",
        note = "use the `rows()` cursor / `row(i)` views or the typed `columns()` accessors"
    )]
    #[must_use]
    pub fn tuples(&self) -> &[GenTuple] {
        self.rows_slice()
    }

    /// The materialized row view — internal equivalent of the deprecated
    /// `tuples()`, shared by the row-oriented operator loops.
    pub(crate) fn rows_slice(&self) -> &[GenTuple] {
        self.store.rows_vec()
    }

    /// Cursor iteration over the rows as [`RowRef`] views.
    pub fn rows(&self) -> Rows<'_> {
        Rows::new(&self.store)
    }

    /// The row at `idx`, if in range.
    #[must_use]
    pub fn row(&self, idx: usize) -> Option<RowRef<'_>> {
        (idx < self.store.len()).then(|| RowRef::new(&self.store, idx))
    }

    /// Typed access to the columnar storage (flat temporal offset/period
    /// slices, interned data id slices).
    pub fn columns(&self) -> Columns<'_> {
        Columns::new(&self.store)
    }

    /// The persistent residue index of this relation over the given
    /// column sets: built on first use, cached on the store, reused by
    /// every later call (including the algebra's own indexed paths) and
    /// maintained across [`GenRelation::push`] appends.
    pub fn residue_index(
        &self,
        temporal_cols: &[usize],
        data_cols: &[usize],
    ) -> Arc<RelationIndex> {
        self.store.index_for(temporal_cols, data_cols)
    }

    /// Number of generalized tuples (the paper's `N`).
    ///
    /// This counts the *representation*, not the denotation — a relation
    /// with many tuples can still denote the empty set
    /// ([`GenRelation::denotes_empty`]) and one tuple usually denotes
    /// infinitely many facts.
    #[must_use]
    pub fn tuple_count(&self) -> usize {
        self.store.len()
    }

    /// Deprecated name of [`GenRelation::tuple_count`].
    #[cfg(feature = "legacy-api")]
    #[deprecated(since = "0.2.0", note = "renamed to `tuple_count`")]
    #[allow(clippy::len_without_is_empty)] // emptiness is semantic (Thm 3.5), see has_no_tuples
    pub fn len(&self) -> usize {
        self.tuple_count()
    }

    /// Is the representation empty (no tuples at all)?
    ///
    /// Note: a relation with tuples can still *denote* the empty set; that
    /// exact test is [`GenRelation::denotes_empty`].
    #[must_use]
    pub fn has_no_tuples(&self) -> bool {
        self.store.len() == 0
    }

    /// Adds one tuple — the unified append path.
    ///
    /// Appends in place when this relation is the sole owner of its store;
    /// when snapshots share the store, the columns are copied first
    /// (copy-on-write), so existing clones never observe the append.
    /// Either way, cached residue indexes are extended incrementally when
    /// the new row preserves their moduli and precisely invalidated when
    /// it does not.
    ///
    /// # Errors
    /// [`CoreError::SchemaMismatch`] on schema disagreement.
    pub fn push(&mut self, t: GenTuple) -> Result<()> {
        if t.schema() != self.schema {
            return Err(CoreError::SchemaMismatch {
                expected: self.schema,
                found: t.schema(),
            });
        }
        match Arc::get_mut(&mut self.store) {
            Some(store) => store.push_row(t),
            None => {
                let mut store = self.store.cloned();
                store.push_row(t);
                self.store = Arc::new(store);
            }
        }
        Ok(())
    }

    /// Removes every row structurally equal to `t` — the signed counterpart
    /// of [`GenRelation::push`] used by delta mutation. Returns how many
    /// rows were removed (0 when `t` is absent: retraction of a missing
    /// row is a no-op, not an error).
    ///
    /// Equality is representational (same lrp vector, constraint system,
    /// and data values), matching how deltas are produced: a retract names
    /// the exact generalized tuple that was inserted, never a denotation.
    /// Surviving rows keep their positional order and the store is rebuilt
    /// as a positional subset, so clones sharing the old store never
    /// observe the removal.
    ///
    /// # Errors
    /// [`CoreError::SchemaMismatch`] on schema disagreement.
    pub fn retract(&mut self, t: &GenTuple) -> Result<usize> {
        if t.schema() != self.schema {
            return Err(CoreError::SchemaMismatch {
                expected: self.schema,
                found: t.schema(),
            });
        }
        let rows = self.rows_slice();
        let keep: Vec<usize> = (0..rows.len()).filter(|&i| &rows[i] != t).collect();
        let removed = rows.len() - keep.len();
        if removed > 0 {
            self.store = Arc::new(self.store.select(&keep));
        }
        Ok(removed)
    }

    /// Membership of a concrete tuple (columnar: data columns are compared
    /// as interned ids before any temporal arithmetic runs).
    #[must_use]
    pub fn contains(&self, times: &[i64], data: &[Value]) -> bool {
        self.rows().any(|r| r.contains(times, data))
    }

    /// Exact emptiness (Theorem 3.5): does the relation denote no tuple?
    ///
    /// # Errors
    /// Arithmetic overflow during normalization.
    pub fn denotes_empty(&self) -> Result<bool> {
        for t in self.rows_slice() {
            if !t.is_empty()? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Deprecated name of [`GenRelation::denotes_empty`].
    ///
    /// # Errors
    /// See [`GenRelation::denotes_empty`].
    #[cfg(feature = "legacy-api")]
    #[deprecated(since = "0.2.0", note = "renamed to `denotes_empty`")]
    pub fn is_empty(&self) -> Result<bool> {
        self.denotes_empty()
    }

    /// Union (§3.1): merge the tuple sets.
    ///
    /// # Errors
    /// [`CoreError::SchemaMismatch`].
    pub fn union(&self, other: &GenRelation) -> Result<GenRelation> {
        self.union_in(other, &ExecContext::serial())
    }

    /// [`GenRelation::union`] under an execution context (instrumentation
    /// only — union is a concatenation and never worth fanning out).
    ///
    /// # Errors
    /// [`CoreError::SchemaMismatch`].
    pub fn union_in(&self, other: &GenRelation, ctx: &ExecContext) -> Result<GenRelation> {
        self.check_schema(other)?;
        let timer = ctx.timed(OpKind::Union);
        timer.add_in(self.store.len() + other.store.len());
        // Columnar concatenation: id and Arc copies, no re-hashing.
        let store = RelStore::concat(&self.store, &other.store);
        timer.add_out(store.len());
        Ok(GenRelation {
            schema: self.schema,
            store: Arc::new(store),
        })
    }

    /// Intersection (§3.2): union of pairwise tuple intersections.
    ///
    /// # Errors
    /// [`CoreError::SchemaMismatch`]; arithmetic failures.
    pub fn intersect(&self, other: &GenRelation) -> Result<GenRelation> {
        self.intersect_in(other, &ExecContext::serial())
    }

    /// [`GenRelation::intersect`] under an execution context, served by
    /// the columnar batch kernel (`crate::kernel`): candidate pairs are
    /// probed through the persistent residue index exactly like the row
    /// path, then batch-filtered by gcd-congruence and data-id equality
    /// straight off the flat columns — only survivors materialize rows
    /// and derive, through the process-wide pairwise outcome cache. The
    /// result, and every [`OpKind::Intersect`] counter except
    /// `intern_hits` (reported via [`storage_stats`](crate::storage_stats)
    /// instead), is bit-identical to
    /// [`GenRelation::intersect_rowpath_in`] and
    /// [`GenRelation::intersect_unindexed_in`] at any thread count.
    ///
    /// # Errors
    /// [`CoreError::SchemaMismatch`]; arithmetic failures.
    pub fn intersect_in(&self, other: &GenRelation, ctx: &ExecContext) -> Result<GenRelation> {
        self.check_schema(other)?;
        let timer = ctx.timed(OpKind::Intersect);
        let tuples = crate::kernel::intersect(&self.store, &other.store, ctx, &timer)?;
        timer.add_out(tuples.len());
        Ok(GenRelation::from_vec(self.schema, tuples))
    }

    /// [`GenRelation::intersect_in`] on the retained row-at-a-time
    /// indexed path (materialized `GenTuple` loops with the
    /// per-invocation memo) — kept as the kernel's comparison twin for
    /// tests and the bench report's kernel-vs-row-path section.
    ///
    /// # Errors
    /// [`CoreError::SchemaMismatch`]; arithmetic failures.
    pub fn intersect_rowpath_in(
        &self,
        other: &GenRelation,
        ctx: &ExecContext,
    ) -> Result<GenRelation> {
        self.intersect_impl(other, ctx, true)
    }

    /// [`GenRelation::intersect_in`] forced down the naive all-pairs path:
    /// the reference implementation the indexed paths must match bit for
    /// bit (used by tests and the bench report's ablations).
    ///
    /// # Errors
    /// [`CoreError::SchemaMismatch`]; arithmetic failures.
    pub fn intersect_unindexed_in(
        &self,
        other: &GenRelation,
        ctx: &ExecContext,
    ) -> Result<GenRelation> {
        self.intersect_impl(other, ctx, false)
    }

    fn intersect_impl(
        &self,
        other: &GenRelation,
        ctx: &ExecContext,
        allow_index: bool,
    ) -> Result<GenRelation> {
        self.check_schema(other)?;
        let timer = ctx.timed(OpKind::Intersect);
        let lt = self.rows_slice();
        let rt = other.rows_slice();
        timer.add_in(lt.len() + rt.len());
        timer.add_pairs(lt.len() as u64 * rt.len() as u64);
        let tcols: Vec<usize> = (0..self.schema.temporal()).collect();
        let dcols: Vec<usize> = (0..self.schema.data()).collect();
        // The pair-count gate and the discrimination check are unchanged;
        // only the build is served from `other`'s persistent index cache.
        let index = (allow_index && lt.len() * rt.len() >= crate::index::INDEX_MIN_PAIRS)
            .then(|| other.residue_index(&tcols, &dcols))
            .filter(|idx| idx.is_discriminating());
        // Hash-cons temporal parts so each distinct combination is derived
        // once; outcomes are shared allocations, and the caller-recorded
        // counters (pairs / pruned / probes) are untouched — see
        // [`crate::intern`] for the determinism argument.
        let interner = (lt.len() * rt.len() >= INTERN_MIN_PAIRS).then(Interner::new);
        let other_ids: Vec<TemporalId> = match &interner {
            Some(int) => rt
                .iter()
                .map(|t| int.intern(t.lrps(), t.constraints()))
                .collect(),
            None => Vec::new(),
        };
        let tuples = exec::run_chunked(ctx, lt, |t1| {
            let mut out = Vec::new();
            let id1 = interner
                .as_ref()
                .map(|int| int.intern(t1.lrps(), t1.constraints()));
            let visit = |j: usize, out: &mut Vec<GenTuple>| -> Result<()> {
                let t2 = &rt[j];
                let res = match (&interner, id1) {
                    (Some(int), Some(id1)) => {
                        intersect_tuples_interned(t1, t2, int, id1, other_ids[j])?
                    }
                    _ => ops::intersect_tuples(t1, t2)?,
                };
                match res {
                    Some(t) => out.push(t),
                    None => timer.add_pruned(1),
                }
                Ok(())
            };
            match &index {
                Some(idx) => {
                    let cands = idx.probe(t1, &tcols, &dcols);
                    let skipped = (rt.len() - cands.len()) as u64;
                    timer.add_probes(cands.len() as u64);
                    timer.add_index_pruned(skipped);
                    // Index-skipped pairs are provably empty intersections.
                    timer.add_pruned(skipped);
                    for &j in &cands {
                        visit(j, &mut out)?;
                    }
                }
                None => {
                    for j in 0..rt.len() {
                        visit(j, &mut out)?;
                    }
                }
            }
            Ok(out)
        })?;
        if let Some(int) = &interner {
            timer.add_intern_hits(int.hits());
        }
        timer.add_out(tuples.len());
        Ok(GenRelation::from_vec(self.schema, tuples))
    }

    /// Intersection with residue bucketing — the Appendix A.3 observation
    /// made operational.
    ///
    /// When both relations are normalized at one common period `k`, two
    /// tuples can only intersect if they have the **same free extension**
    /// (offset vector) and equal data; grouping `self`'s tuples by that key
    /// reduces the candidate pairs from `N²` to `N²/k^m` for
    /// well-distributed data. Falls back to the naive pairwise
    /// [`GenRelation::intersect`] when the periods are not uniform.
    ///
    /// # Errors
    /// Same as [`GenRelation::intersect`].
    pub fn intersect_bucketed(&self, other: &GenRelation) -> Result<GenRelation> {
        self.intersect_bucketed_in(other, &ExecContext::serial())
    }

    /// [`GenRelation::intersect_bucketed`] under an execution context
    /// (instrumented as [`OpKind::Intersect`]; the bucketed candidate scan
    /// itself stays serial — it is already subquadratic).
    ///
    /// The group-by key is read straight off the columnar storage — flat
    /// offset slices and interned data ids (canonical: equal ids ⟺ equal
    /// values) — so neither side materializes its row cache.
    ///
    /// # Errors
    /// Same as [`GenRelation::intersect`].
    pub fn intersect_bucketed_in(
        &self,
        other: &GenRelation,
        ctx: &ExecContext,
    ) -> Result<GenRelation> {
        self.check_schema(other)?;
        let Some(k) = self
            .uniform_period()
            .filter(|k| other.uniform_period() == Some(*k))
        else {
            return self.intersect_in(other, ctx);
        };
        debug_assert!(k > 0);
        let timer = ctx.timed(OpKind::Intersect);
        let (n, m) = (self.store.len(), other.store.len());
        timer.add_in(n + m);
        timer.record_period(k);
        let tcols = self.schema.temporal();
        let row_key = |store: &RelStore, i: usize| -> (Vec<i64>, Vec<crate::store::ValueId>) {
            (
                (0..tcols).map(|c| store.t_offsets(c)[i]).collect(),
                store.data_columns().iter().map(|col| col[i]).collect(),
            )
        };
        let mut buckets: std::collections::HashMap<_, Vec<usize>> =
            std::collections::HashMap::new();
        for i in 0..n {
            buckets.entry(row_key(&self.store, i)).or_default().push(i);
        }
        let mut tuples = Vec::new();
        for j in 0..m {
            let Some(candidates) = buckets.get(&row_key(&other.store, j)) else {
                continue;
            };
            let rpart = other.store.part(j);
            let rdata = other.store.resolve_row_data(j);
            for &i in candidates {
                // Same period and offsets: the lrps coincide, so only the
                // constraints need conjoining.
                timer.add_pairs(1);
                let cons = self.store.part(i).cons.conjoin(&rpart.cons)?;
                if cons.is_satisfiable() {
                    tuples.push(GenTuple::from_parts(
                        rpart.lrps.clone(),
                        cons,
                        rdata.clone(),
                    )?);
                } else {
                    timer.add_pruned(1);
                }
            }
        }
        timer.add_out(tuples.len());
        Ok(GenRelation::from_vec(self.schema, tuples))
    }

    /// The single period shared by every lrp of every tuple, if any
    /// (`None` when mixed, when some attribute is a point, or when the
    /// relation has no temporal attributes to key on).
    ///
    /// Reads the flat period columns directly — no row materialization.
    pub fn uniform_period(&self) -> Option<i64> {
        if self.schema.temporal() == 0 {
            return None;
        }
        let cols = self.columns();
        let mut period = None;
        for c in 0..self.schema.temporal() {
            for &p in cols.temporal(c).periods() {
                if p == 0 {
                    return None; // a point disqualifies
                }
                match period {
                    None => period = Some(p),
                    Some(q) if q == p => {}
                    Some(_) => return None,
                }
            }
        }
        period
    }

    /// Difference (§3.3): fold of tuple differences,
    /// `r1 − r2 = ∪ᵢ ((t1ᵢ − t21) − … − t2m)`.
    ///
    /// Grid-empty intermediate tuples are pruned after every step — the
    /// "suppress redundant tuples at each intersection" device that keeps
    /// fixed-schema difference polynomial (Appendix A.7).
    ///
    /// # Errors
    /// [`CoreError::SchemaMismatch`]; arithmetic failures.
    pub fn difference(&self, other: &GenRelation) -> Result<GenRelation> {
        self.difference_in(other, &ExecContext::serial())
    }

    /// [`GenRelation::difference`] under an execution context, served by
    /// the columnar batch kernel (`crate::kernel`): per fold, the
    /// subtrahends are probed through the persistent residue index and
    /// batch-filtered over the flat columns (a rejected `t2` is columnwise
    /// disjoint from `t1` or differs in data, so its step is a provable
    /// no-op), with rows materialized only when a step actually runs. The
    /// result, and every [`OpKind::Difference`] counter except
    /// `intern_hits`, is bit-identical to
    /// [`GenRelation::difference_rowpath_in`] and
    /// [`GenRelation::difference_unindexed_in`] at any thread count.
    ///
    /// # Errors
    /// [`CoreError::SchemaMismatch`]; arithmetic failures.
    pub fn difference_in(&self, other: &GenRelation, ctx: &ExecContext) -> Result<GenRelation> {
        self.check_schema(other)?;
        let timer = ctx.timed(OpKind::Difference);
        let tuples = crate::kernel::difference(&self.store, &other.store, ctx, &timer)?;
        timer.add_out(tuples.len());
        Ok(GenRelation::from_vec(self.schema, tuples))
    }

    /// [`GenRelation::difference_in`] on the retained row-at-a-time
    /// indexed path — the kernel's comparison twin for tests and the
    /// bench report.
    ///
    /// # Errors
    /// [`CoreError::SchemaMismatch`]; arithmetic failures.
    pub fn difference_rowpath_in(
        &self,
        other: &GenRelation,
        ctx: &ExecContext,
    ) -> Result<GenRelation> {
        self.difference_impl(other, ctx, true)
    }

    /// [`GenRelation::difference_in`] forced down the naive
    /// all-subtrahends path — the reference the indexed paths must match
    /// bit for bit.
    ///
    /// # Errors
    /// [`CoreError::SchemaMismatch`]; arithmetic failures.
    pub fn difference_unindexed_in(
        &self,
        other: &GenRelation,
        ctx: &ExecContext,
    ) -> Result<GenRelation> {
        self.difference_impl(other, ctx, false)
    }

    fn difference_impl(
        &self,
        other: &GenRelation,
        ctx: &ExecContext,
        allow_index: bool,
    ) -> Result<GenRelation> {
        self.check_schema(other)?;
        let timer = ctx.timed(OpKind::Difference);
        let lt = self.rows_slice();
        let rt = other.rows_slice();
        timer.add_in(lt.len() + rt.len());
        let tcols: Vec<usize> = (0..self.schema.temporal()).collect();
        let dcols: Vec<usize> = (0..self.schema.data()).collect();
        let index = (allow_index && lt.len() * rt.len() >= crate::index::INDEX_MIN_PAIRS)
            .then(|| other.residue_index(&tcols, &dcols))
            .filter(|idx| idx.is_discriminating());
        // The fold re-derives emptiness (a normalization) for the many
        // intermediate tuples that share one temporal part; memoize the
        // verdict per hash-consed part. Purely a cache: the pairs/pruned
        // counters and the pruning flow are untouched.
        let interner = (lt.len() * rt.len() >= INTERN_MIN_PAIRS).then(Interner::new);
        let tuples = exec::run_chunked(ctx, lt, |t1| {
            // One fold step: subtract `t2` from every member, then prune
            // grid-empty results and deduplicate to bound the blow-up.
            let step = |acc: Vec<GenTuple>, t2: &GenTuple| -> Result<Vec<GenTuple>> {
                let mut next = Vec::new();
                for t in &acc {
                    timer.add_pairs(1);
                    next.extend(ops::difference_tuples(t, t2)?);
                }
                let candidates = next.len();
                let mut pruned: Vec<GenTuple> = Vec::with_capacity(next.len());
                for t in next {
                    if !tuple_is_empty_interned(&t, interner.as_ref())? && !pruned.contains(&t) {
                        pruned.push(t);
                    }
                }
                timer.add_pruned((candidates - pruned.len()) as u64);
                Ok(pruned)
            };
            match &index {
                Some(idx) => {
                    let cands = idx.probe(t1, &tcols, &dcols);
                    timer.add_probes(cands.len() as u64);
                    timer.add_index_pruned((rt.len() - cands.len()) as u64);
                    // Every fold member keeps `t1`'s data and columnwise
                    // subsets of `t1`'s lrps, so an index-skipped `t2`
                    // (disjoint from `t1`) leaves the whole fold unchanged
                    // — except that the naive path's first prune step also
                    // drops a grid-empty `t1`. Replicate that upfront
                    // (`other` is nonempty whenever the index is built).
                    if tuple_is_empty_interned(t1, interner.as_ref())? {
                        timer.add_pruned(1);
                        return Ok(vec![]);
                    }
                    let mut acc = vec![t1.clone()];
                    for &j in &cands {
                        acc = step(acc, &rt[j])?;
                        if acc.is_empty() {
                            break;
                        }
                    }
                    Ok(acc)
                }
                None => {
                    let mut acc = vec![t1.clone()];
                    for t2 in rt {
                        acc = step(acc, t2)?;
                        if acc.is_empty() {
                            break;
                        }
                    }
                    Ok(acc)
                }
            }
        })?;
        if let Some(int) = &interner {
            timer.add_intern_hits(int.hits());
        }
        timer.add_out(tuples.len());
        Ok(GenRelation::from_vec(self.schema, tuples))
    }

    /// Projection (§3.4) onto the listed temporal and data columns
    /// (order given; may permute).
    ///
    /// # Errors
    /// [`CoreError::AttributeOutOfRange`]; arithmetic failures.
    pub fn project(&self, temporal_keep: &[usize], data_keep: &[usize]) -> Result<GenRelation> {
        self.project_in(temporal_keep, data_keep, &ExecContext::serial())
    }

    /// [`GenRelation::project`] under an execution context: per-tuple
    /// projection (which normalizes internally and is the costly part) is
    /// fanned over the context's threads; [`OpKind::Project`] counters are
    /// updated.
    ///
    /// # Errors
    /// [`CoreError::AttributeOutOfRange`]; arithmetic failures.
    pub fn project_in(
        &self,
        temporal_keep: &[usize],
        data_keep: &[usize],
        ctx: &ExecContext,
    ) -> Result<GenRelation> {
        for &i in temporal_keep {
            if i >= self.schema.temporal() {
                return Err(CoreError::AttributeOutOfRange {
                    index: i,
                    arity: self.schema.temporal(),
                });
            }
        }
        for &i in data_keep {
            if i >= self.schema.data() {
                return Err(CoreError::AttributeOutOfRange {
                    index: i,
                    arity: self.schema.data(),
                });
            }
        }
        let timer = ctx.timed(OpKind::Project);
        let lt = self.rows_slice();
        timer.add_in(lt.len());
        let tuples =
            exec::run_chunked(ctx, lt, |t| ops::project_tuple(t, temporal_keep, data_keep))?;
        timer.add_out(tuples.len());
        Ok(GenRelation::from_vec(
            Schema::new(temporal_keep.len(), data_keep.len()),
            tuples,
        ))
    }

    /// Temporal selection (§3.5): adds the constraint atom to every tuple.
    ///
    /// # Errors
    /// [`CoreError::AttributeOutOfRange`]; arithmetic failures.
    pub fn select_temporal(&self, atom: Atom) -> Result<GenRelation> {
        self.select_temporal_in(atom, &ExecContext::serial())
    }

    /// [`GenRelation::select_temporal`] under an execution context
    /// ([`OpKind::Select`]: one atom conjoined per tuple, contradictory
    /// tuples pruned).
    ///
    /// # Errors
    /// [`CoreError::AttributeOutOfRange`]; arithmetic failures.
    pub fn select_temporal_in(&self, atom: Atom, ctx: &ExecContext) -> Result<GenRelation> {
        if atom.max_var() >= self.schema.temporal() {
            return Err(CoreError::AttributeOutOfRange {
                index: atom.max_var(),
                arity: self.schema.temporal(),
            });
        }
        let timer = ctx.timed(OpKind::Select);
        let lt = self.rows_slice();
        timer.add_in(lt.len());
        let tuples = exec::run_chunked(ctx, lt, |t| {
            let mut cons = t.constraints().clone();
            cons.add(atom)?;
            timer.add_atoms(1);
            if cons.is_satisfiable() {
                Ok(vec![t.with_constraints(cons)])
            } else {
                timer.add_pruned(1);
                Ok(vec![])
            }
        })?;
        timer.add_out(tuples.len());
        Ok(GenRelation::from_vec(self.schema, tuples))
    }

    /// Data selection: keeps the tuples whose data vector satisfies the
    /// predicate (data attributes are concrete, so this is classical
    /// relational selection).
    pub fn select_data(&self, pred: impl Fn(&[Value]) -> bool) -> GenRelation {
        self.select_data_in(pred, &ExecContext::serial())
    }

    /// [`GenRelation::select_data`] under an execution context
    /// (instrumentation only — the predicate need not be thread-safe).
    pub fn select_data_in(
        &self,
        pred: impl Fn(&[Value]) -> bool,
        ctx: &ExecContext,
    ) -> GenRelation {
        let timer = ctx.timed(OpKind::Select);
        let lt = self.rows_slice();
        timer.add_in(lt.len());
        let keep: Vec<usize> = lt
            .iter()
            .enumerate()
            .filter(|(_, t)| pred(t.data()))
            .map(|(i, _)| i)
            .collect();
        timer.add_pruned((lt.len() - keep.len()) as u64);
        timer.add_out(keep.len());
        // Positional column copy: the surviving rows keep their interned
        // ids, nothing is re-hashed.
        GenRelation {
            schema: self.schema,
            store: Arc::new(self.store.select(&keep)),
        }
    }

    /// Cross product (§3.6).
    ///
    /// # Errors
    /// Arithmetic failures.
    pub fn cross_product(&self, other: &GenRelation) -> Result<GenRelation> {
        self.cross_product_in(other, &ExecContext::serial())
    }

    /// [`GenRelation::cross_product`] under an execution context: pairwise
    /// tuple products fanned over the context's threads
    /// ([`OpKind::Product`]).
    ///
    /// # Errors
    /// Arithmetic failures.
    pub fn cross_product_in(&self, other: &GenRelation, ctx: &ExecContext) -> Result<GenRelation> {
        let timer = ctx.timed(OpKind::Product);
        let lt = self.rows_slice();
        let rt = other.rows_slice();
        timer.add_in(lt.len() + rt.len());
        timer.add_pairs(lt.len() as u64 * rt.len() as u64);
        let tuples = exec::run_chunked(ctx, lt, |t1| {
            let mut out = Vec::with_capacity(rt.len());
            for t2 in rt {
                out.push(ops::cross_product_tuples(t1, t2)?);
            }
            Ok(out)
        })?;
        timer.add_out(tuples.len());
        Ok(GenRelation::from_vec(
            self.schema.concat(&other.schema),
            tuples,
        ))
    }

    /// Equi-join (§3.7) on the listed temporal / data attribute pairs.
    ///
    /// Keeps all columns of both sides (joined temporal columns are pinned
    /// equal); project afterwards to drop duplicates — the paper's "common
    /// column" join is `join_on(...)` followed by such a projection.
    ///
    /// # Errors
    /// [`CoreError::AttributeOutOfRange`]; arithmetic failures.
    pub fn join_on(
        &self,
        other: &GenRelation,
        temporal_pairs: &[(usize, usize)],
        data_pairs: &[(usize, usize)],
    ) -> Result<GenRelation> {
        self.join_on_in(other, temporal_pairs, data_pairs, &ExecContext::serial())
    }

    /// [`GenRelation::join_on`] under an execution context, served by the
    /// columnar batch kernel (`crate::kernel`): `other` is
    /// residue-indexed on the *right* columns of the join pairs, each
    /// left row probes with its *left* columns, and candidates are
    /// batch-filtered by gcd-congruence / data-id equality on exactly the
    /// paired columns before any row materializes. The result, and every
    /// [`OpKind::Join`] counter except `intern_hits`, is bit-identical to
    /// [`GenRelation::join_on_rowpath_in`] and
    /// [`GenRelation::join_on_unindexed_in`] at any thread count.
    ///
    /// # Errors
    /// [`CoreError::AttributeOutOfRange`]; arithmetic failures.
    pub fn join_on_in(
        &self,
        other: &GenRelation,
        temporal_pairs: &[(usize, usize)],
        data_pairs: &[(usize, usize)],
        ctx: &ExecContext,
    ) -> Result<GenRelation> {
        self.check_join_pairs(other, temporal_pairs, data_pairs)?;
        let timer = ctx.timed(OpKind::Join);
        let tuples = crate::kernel::join_on(
            &self.store,
            &other.store,
            temporal_pairs,
            data_pairs,
            ctx,
            &timer,
        )?;
        timer.add_out(tuples.len());
        Ok(GenRelation::from_vec(
            self.schema.concat(&other.schema),
            tuples,
        ))
    }

    /// [`GenRelation::join_on_in`] on the retained row-at-a-time indexed
    /// path — the kernel's comparison twin for tests and the bench
    /// report.
    ///
    /// # Errors
    /// [`CoreError::AttributeOutOfRange`]; arithmetic failures.
    pub fn join_on_rowpath_in(
        &self,
        other: &GenRelation,
        temporal_pairs: &[(usize, usize)],
        data_pairs: &[(usize, usize)],
        ctx: &ExecContext,
    ) -> Result<GenRelation> {
        self.join_on_impl(other, temporal_pairs, data_pairs, ctx, true)
    }

    /// [`GenRelation::join_on_in`] forced down the naive all-pairs path —
    /// the reference the indexed paths must match bit for bit.
    ///
    /// # Errors
    /// [`CoreError::AttributeOutOfRange`]; arithmetic failures.
    pub fn join_on_unindexed_in(
        &self,
        other: &GenRelation,
        temporal_pairs: &[(usize, usize)],
        data_pairs: &[(usize, usize)],
        ctx: &ExecContext,
    ) -> Result<GenRelation> {
        self.join_on_impl(other, temporal_pairs, data_pairs, ctx, false)
    }

    /// Validates join pair indices against both schemas — shared by the
    /// kernel and row-path entry points.
    fn check_join_pairs(
        &self,
        other: &GenRelation,
        temporal_pairs: &[(usize, usize)],
        data_pairs: &[(usize, usize)],
    ) -> Result<()> {
        for &(i, j) in temporal_pairs {
            if i >= self.schema.temporal() || j >= other.schema.temporal() {
                return Err(CoreError::AttributeOutOfRange {
                    index: i.max(j),
                    arity: self.schema.temporal().min(other.schema.temporal()),
                });
            }
        }
        for &(i, j) in data_pairs {
            if i >= self.schema.data() || j >= other.schema.data() {
                return Err(CoreError::AttributeOutOfRange {
                    index: i.max(j),
                    arity: self.schema.data().min(other.schema.data()),
                });
            }
        }
        Ok(())
    }

    fn join_on_impl(
        &self,
        other: &GenRelation,
        temporal_pairs: &[(usize, usize)],
        data_pairs: &[(usize, usize)],
        ctx: &ExecContext,
        allow_index: bool,
    ) -> Result<GenRelation> {
        self.check_join_pairs(other, temporal_pairs, data_pairs)?;
        let timer = ctx.timed(OpKind::Join);
        let lt = self.rows_slice();
        let rt = other.rows_slice();
        timer.add_in(lt.len() + rt.len());
        timer.add_pairs(lt.len() as u64 * rt.len() as u64);
        // Index `other` on the right columns of each join pair; probe with
        // the matching left columns of `t1`.
        let left_t: Vec<usize> = temporal_pairs.iter().map(|&(i, _)| i).collect();
        let right_t: Vec<usize> = temporal_pairs.iter().map(|&(_, j)| j).collect();
        let left_d: Vec<usize> = data_pairs.iter().map(|&(i, _)| i).collect();
        let right_d: Vec<usize> = data_pairs.iter().map(|&(_, j)| j).collect();
        let index = (allow_index && lt.len() * rt.len() >= crate::index::INDEX_MIN_PAIRS)
            .then(|| other.residue_index(&right_t, &right_d))
            .filter(|idx| idx.is_discriminating());
        // Hash-cons temporal parts: with the join columns fixed, the
        // temporal outcome of a pair depends only on the two temporal
        // parts, and the output data is always the concatenation.
        let interner = (lt.len() * rt.len() >= INTERN_MIN_PAIRS).then(Interner::new);
        let other_ids: Vec<TemporalId> = match &interner {
            Some(int) => rt
                .iter()
                .map(|t| int.intern(t.lrps(), t.constraints()))
                .collect(),
            None => Vec::new(),
        };
        let tuples = exec::run_chunked(ctx, lt, |t1| {
            let mut out = Vec::new();
            let id1 = interner
                .as_ref()
                .map(|int| int.intern(t1.lrps(), t1.constraints()));
            let visit = |j: usize, out: &mut Vec<GenTuple>| -> Result<()> {
                let t2 = &rt[j];
                let res = match (&interner, id1) {
                    (Some(int), Some(id1)) => join_tuples_interned(
                        t1,
                        t2,
                        temporal_pairs,
                        data_pairs,
                        int,
                        id1,
                        other_ids[j],
                    )?,
                    _ => ops::join_tuples(t1, t2, temporal_pairs, data_pairs)?,
                };
                match res {
                    Some(t) => out.push(t),
                    None => timer.add_pruned(1),
                }
                Ok(())
            };
            match &index {
                Some(idx) => {
                    let cands = idx.probe(t1, &left_t, &left_d);
                    let skipped = (rt.len() - cands.len()) as u64;
                    timer.add_probes(cands.len() as u64);
                    timer.add_index_pruned(skipped);
                    // Skipped pairs fail a joined-column meet: empty joins.
                    timer.add_pruned(skipped);
                    for &j in &cands {
                        visit(j, &mut out)?;
                    }
                }
                None => {
                    for j in 0..rt.len() {
                        visit(j, &mut out)?;
                    }
                }
            }
            Ok(out)
        })?;
        if let Some(int) = &interner {
            timer.add_intern_hits(int.hits());
        }
        timer.add_out(tuples.len());
        Ok(GenRelation::from_vec(
            self.schema.concat(&other.schema),
            tuples,
        ))
    }

    /// Complement within `Z^temporal` (Appendix A.6), purely temporal
    /// schemas only, with the default extension limit.
    ///
    /// # Errors
    /// [`CoreError::ComplementHasData`]; [`CoreError::TooManyExtensions`].
    pub fn complement_temporal(&self) -> Result<GenRelation> {
        self.complement_temporal_with_limit(ops::DEFAULT_COMPLEMENT_LIMIT)
    }

    /// Complement with an explicit `k^m` ceiling.
    ///
    /// # Errors
    /// See [`GenRelation::complement_temporal`].
    pub fn complement_temporal_with_limit(&self, limit: u64) -> Result<GenRelation> {
        self.complement_temporal_with_limit_in(limit, &ExecContext::serial())
    }

    /// [`GenRelation::complement_temporal`] under an execution context
    /// (default limit); see
    /// [`GenRelation::complement_temporal_with_limit_in`].
    ///
    /// # Errors
    /// See [`GenRelation::complement_temporal`].
    pub fn complement_temporal_in(&self, ctx: &ExecContext) -> Result<GenRelation> {
        self.complement_temporal_with_limit_in(ops::DEFAULT_COMPLEMENT_LIMIT, ctx)
    }

    /// Complement under an execution context: the `k^m` free-extension
    /// enumeration is fanned over the context's threads (see
    /// [`ops::complement_tuples_in`]) and [`OpKind::Complement`] counters
    /// record the database period and pruned disjuncts.
    ///
    /// # Errors
    /// See [`GenRelation::complement_temporal`].
    pub fn complement_temporal_with_limit_in(
        &self,
        limit: u64,
        ctx: &ExecContext,
    ) -> Result<GenRelation> {
        if !self.schema.is_purely_temporal() {
            return Err(CoreError::ComplementHasData);
        }
        let timer = ctx.timed(OpKind::Complement);
        let lt = self.rows_slice();
        timer.add_in(lt.len());
        let tuples = ops::complement_tuples_in(lt, self.schema.temporal(), limit, ctx)?;
        timer.add_out(tuples.len());
        Ok(GenRelation::from_vec(self.schema, tuples))
    }

    /// Translates one temporal column: the result denotes
    /// `{(…, xᵢ + delta, …) | (…, xᵢ, …) ∈ self}`.
    ///
    /// Used by the query layer to interpret successor terms `t + c`.
    ///
    /// # Errors
    /// [`CoreError::AttributeOutOfRange`]; arithmetic overflow.
    pub fn shift_temporal(&self, col: usize, delta: i64) -> Result<GenRelation> {
        self.shift_temporal_in(col, delta, &ExecContext::serial())
    }

    /// [`GenRelation::shift_temporal`] under an execution context
    /// ([`OpKind::Shift`]).
    ///
    /// # Errors
    /// [`CoreError::AttributeOutOfRange`]; arithmetic overflow.
    pub fn shift_temporal_in(
        &self,
        col: usize,
        delta: i64,
        ctx: &ExecContext,
    ) -> Result<GenRelation> {
        if col >= self.schema.temporal() {
            return Err(CoreError::AttributeOutOfRange {
                index: col,
                arity: self.schema.temporal(),
            });
        }
        let timer = ctx.timed(OpKind::Shift);
        let lt = self.rows_slice();
        timer.add_in(lt.len());
        let tuples = exec::run_chunked(ctx, lt, |t| {
            let mut lrps = t.lrps().to_vec();
            lrps[col] = lrps[col].shift(delta)?;
            let cons = t.constraints().shift_var(col, delta)?;
            Ok(vec![GenTuple::from_parts(lrps, cons, t.data().to_vec())?])
        })?;
        timer.add_out(tuples.len());
        Ok(GenRelation::from_vec(self.schema, tuples))
    }

    /// Normalizes every tuple (Theorem 3.2); the result denotes the same
    /// set with every tuple in normal form.
    ///
    /// # Errors
    /// Arithmetic failures; the per-tuple refinement limit.
    pub fn normalize(&self) -> Result<GenRelation> {
        self.normalize_in(&ExecContext::serial())
    }

    /// [`GenRelation::normalize`] under an execution context: per-tuple
    /// normalization (refinement cross product and grid transforms) is
    /// fanned over the context's threads. The [`OpKind::Normalize`]
    /// counters record the refinement combinations examined (`pairs`, the
    /// paper's `Π k/kᵢ`), grid-unsatisfiable combinations dropped
    /// (`empties_pruned`), constraint atoms of rewritten tuples
    /// (`atoms_simplified`), and the largest common period (`max_period`).
    ///
    /// # Errors
    /// Arithmetic failures; the per-tuple refinement limit.
    pub fn normalize_in(&self, ctx: &ExecContext) -> Result<GenRelation> {
        let timer = ctx.timed(OpKind::Normalize);
        let lt = self.rows_slice();
        timer.add_in(lt.len());
        let tuples = exec::run_chunked(ctx, lt, |t| {
            let (out, report) = crate::normalize::normalize_with_limit_report(
                t,
                crate::normalize::DEFAULT_NORMALIZE_LIMIT,
            )?;
            timer.record_period(report.period);
            timer.add_pairs(report.combos);
            timer.add_pruned(report.dropped);
            let unchanged = out.len() == 1 && out[0] == *t;
            if !unchanged {
                timer.add_atoms(t.constraints().atoms().len() as u64);
            }
            Ok(out)
        })?;
        timer.add_out(tuples.len());
        Ok(GenRelation::from_vec(self.schema, tuples))
    }

    /// Coalesces complete groups of residue classes into coarser tuples
    /// (the inverse of Lemma 3.1's refinement), across all columns, to a
    /// fixpoint. The result denotes the same set with at most as many
    /// tuples; normalization and complement outputs typically shrink by
    /// their full refinement factor.
    ///
    /// # Errors
    /// Arithmetic failures while rebuilding lrps.
    #[cfg(feature = "legacy-api")]
    #[deprecated(
        since = "0.2.0",
        note = "use `compact` / `compact_in`, the counted compaction entry \
                point (subsumption pruning plus coalescing)"
    )]
    pub fn coalesce(&self) -> Result<GenRelation> {
        crate::minimize::coalesce(self)
    }

    /// Adaptive compaction: drops unsatisfiable and subsumed tuples, then
    /// coalesces complete residue-class groups back into coarser tuples
    /// (the `compact` module). The result denotes the same set with at
    /// most as many tuples; the pass is near-linear thanks to a residue
    /// pre-filter and is what the query executor runs between plan nodes.
    ///
    /// # Errors
    /// Arithmetic failures while rebuilding lrps.
    pub fn compact(&self) -> Result<GenRelation> {
        self.compact_in(&ExecContext::serial())
    }

    /// [`GenRelation::compact`] under an execution context: the pass is
    /// deliberately serial (it is near-linear, and a serial pass is
    /// trivially bit-identical at any thread count); the
    /// [`OpKind::Compact`] counters record tuples dropped as subsumed and
    /// eliminated by coalescing, with
    /// `tuples_subsumed + coalesce_merges + tuples_out == tuples_in`
    /// per call.
    ///
    /// # Errors
    /// Arithmetic failures while rebuilding lrps.
    pub fn compact_in(&self, ctx: &ExecContext) -> Result<GenRelation> {
        let timer = ctx.timed(OpKind::Compact);
        timer.add_in(self.store.len());
        let (out, report) = crate::compact::compact_relation(self)?;
        timer.add_subsumed(report.subsumed);
        timer.add_merges(report.merges);
        timer.add_out(out.tuple_count());
        Ok(out)
    }

    /// Removes semantically empty tuples and tuples subsumed by another
    /// tuple (sound, incomplete subsumption: columnwise lrp inclusion plus
    /// constraint entailment). §3.1 leaves redundancy elimination open; this
    /// is the practical part of it.
    ///
    /// # Errors
    /// Arithmetic failures during emptiness checks.
    pub fn simplify(&self) -> Result<GenRelation> {
        let lt = self.rows_slice();
        let mut kept: Vec<GenTuple> = Vec::with_capacity(lt.len());
        for t in lt {
            if !t.is_empty()? {
                kept.push(t.clone());
            }
        }
        let mut out: Vec<GenTuple> = Vec::with_capacity(kept.len());
        for (i, t) in kept.iter().enumerate() {
            let subsumed = kept.iter().enumerate().any(|(j, other)| {
                if i == j {
                    return false;
                }
                // Break ties so mutually-subsuming duplicates keep one copy.
                let tie_break = j < i;
                (tie_break || !tuple_subsumes(t, other)) && tuple_subsumes(other, t)
            });
            if !subsumed {
                out.push(t.clone());
            }
        }
        Ok(GenRelation::from_vec(self.schema, out))
    }

    /// The minimum value taken by temporal column `col` over the whole
    /// denotation: `Some(v)` if the column is bounded below and nonempty,
    /// `None` if the relation is empty on that column or unbounded below.
    ///
    /// Computed symbolically: per normalized tuple, the column's smallest
    /// grid point satisfying the (exact) grid bounds.
    ///
    /// # Errors
    /// [`CoreError::AttributeOutOfRange`]; arithmetic failures.
    pub fn min_temporal(&self, col: usize) -> Result<Option<i64>> {
        self.extremum(col, true)
    }

    /// The maximum value of temporal column `col`, if bounded above; see
    /// [`GenRelation::min_temporal`].
    ///
    /// # Errors
    /// [`CoreError::AttributeOutOfRange`]; arithmetic failures.
    pub fn max_temporal(&self, col: usize) -> Result<Option<i64>> {
        self.extremum(col, false)
    }

    fn extremum(&self, col: usize, minimum: bool) -> Result<Option<i64>> {
        if col >= self.schema.temporal() {
            return Err(CoreError::AttributeOutOfRange {
                index: col,
                arity: self.schema.temporal(),
            });
        }
        let overflow = || CoreError::Numth(itd_numth::NumthError::Overflow);
        // Project onto the column first (exact), then read per-tuple grid
        // bounds.
        let projected = self.project(&[col], &[])?;
        let mut best: Option<i64> = None;
        for t in projected.rows_slice() {
            if t.is_empty()? {
                continue;
            }
            for nt in t.normalize()? {
                let (k, anchors, grid) = crate::normalize::grid_view(&nt)?;
                if !grid.is_satisfiable() {
                    continue;
                }
                let n = if minimum {
                    match grid.lower(0) {
                        Some(n) => n,
                        None => return Ok(None), // unbounded below
                    }
                } else {
                    match grid.upper(0).finite() {
                        Some(n) => n,
                        None => return Ok(None), // unbounded above
                    }
                };
                let value = anchors[0]
                    .checked_add(k.checked_mul(n).ok_or_else(overflow)?)
                    .ok_or_else(overflow)?;
                best = Some(match best {
                    None => value,
                    Some(b) if minimum => b.min(value),
                    Some(b) => b.max(value),
                });
            }
        }
        Ok(best)
    }

    /// The smallest value of temporal column `col` that is `>= bound` — the
    /// "next occurrence" query for periodic data.
    ///
    /// Returns `None` when no such value exists (empty relation, or the
    /// whole column lies below `bound`).
    ///
    /// # Errors
    /// [`CoreError::AttributeOutOfRange`]; arithmetic failures.
    pub fn next_occurrence(&self, col: usize, bound: i64) -> Result<Option<i64>> {
        self.select_temporal(Atom::ge(col, bound))?
            .min_temporal(col)
    }

    /// Brute-force materialization of every concrete tuple whose temporal
    /// values all lie in `[lo, hi]` — the semantics oracle.
    pub fn materialize(&self, lo: i64, hi: i64) -> BTreeSet<ConcreteTuple> {
        materialize_tuples(self.rows_slice(), lo, hi)
    }

    fn check_schema(&self, other: &GenRelation) -> Result<()> {
        if self.schema != other.schema {
            return Err(CoreError::SchemaMismatch {
                expected: self.schema,
                found: other.schema,
            });
        }
        Ok(())
    }
}

/// Sound subsumption check: is `small ⊆ big` certain?
pub(crate) fn tuple_subsumes(big: &GenTuple, small: &GenTuple) -> bool {
    small.data() == big.data()
        && small
            .lrps()
            .iter()
            .zip(big.lrps())
            .all(|(s, b)| b.includes(s))
        && small.constraints().entails(big.constraints())
}

/// [`ops::intersect_tuples`] through the pair memo. The data-mismatch case
/// is settled before consulting the memo, so the memoized outcome is a
/// pure function of the two temporal parts; on a hit the shared parts are
/// recombined with `t1`'s data (equal to `t2`'s here).
fn intersect_tuples_interned(
    t1: &GenTuple,
    t2: &GenTuple,
    int: &Interner,
    id1: TemporalId,
    id2: TemporalId,
) -> Result<Option<GenTuple>> {
    if t1.data() != t2.data() {
        return Ok(None);
    }
    if let Some(cached) = int.cached_pair(id1, id2) {
        return match cached {
            Some(parts) => Ok(Some(GenTuple::from_parts(
                parts.0.clone(),
                parts.1.clone(),
                t1.data().to_vec(),
            )?)),
            None => Ok(None),
        };
    }
    let result = ops::intersect_tuples(t1, t2)?;
    int.cache_pair(
        id1,
        id2,
        result
            .as_ref()
            .map(|t| (t.lrps().to_vec(), t.constraints().clone())),
    );
    Ok(result)
}

/// [`ops::join_tuples`] through the pair memo. With the join columns fixed
/// for the whole invocation, the temporal outcome depends only on the two
/// temporal parts (the data-pair mismatch case is settled first, exactly
/// as [`ops::join_tuples`] does), and the output data is always the
/// concatenation of the inputs'.
fn join_tuples_interned(
    t1: &GenTuple,
    t2: &GenTuple,
    temporal_pairs: &[(usize, usize)],
    data_pairs: &[(usize, usize)],
    int: &Interner,
    id1: TemporalId,
    id2: TemporalId,
) -> Result<Option<GenTuple>> {
    for &(i, j) in data_pairs {
        if t1.data()[i] != t2.data()[j] {
            return Ok(None);
        }
    }
    if let Some(cached) = int.cached_pair(id1, id2) {
        return match cached {
            Some(parts) => {
                let mut data = t1.data().to_vec();
                data.extend_from_slice(t2.data());
                Ok(Some(GenTuple::from_parts(
                    parts.0.clone(),
                    parts.1.clone(),
                    data,
                )?))
            }
            None => Ok(None),
        };
    }
    let result = ops::join_tuples(t1, t2, temporal_pairs, data_pairs)?;
    int.cache_pair(
        id1,
        id2,
        result
            .as_ref()
            .map(|t| (t.lrps().to_vec(), t.constraints().clone())),
    );
    Ok(result)
}

/// [`GenTuple::is_empty`] through the per-part emptiness memo (emptiness
/// depends only on the temporal part; data columns are irrelevant).
fn tuple_is_empty_interned(t: &GenTuple, int: Option<&Interner>) -> Result<bool> {
    let Some(int) = int else {
        return t.is_empty();
    };
    let id = int.intern(t.lrps(), t.constraints());
    if let Some(empty) = int.cached_empty(id) {
        return Ok(empty);
    }
    let empty = t.is_empty()?;
    int.cache_empty(id, empty);
    Ok(empty)
}

/// Incremental constructor for [`GenRelation`], obtained from
/// [`GenRelation::builder`] — the unified append path of the columnar
/// storage API.
///
/// Rows are accumulated with [`push_row`](RelationBuilder::push_row) /
/// [`push_rows`](RelationBuilder::push_rows); the schema check for every
/// accumulated row happens once in [`build`](RelationBuilder::build),
/// which interns all temporal parts and data values in one pass.
///
/// ```
/// use itd_core::{GenRelation, GenTuple, Schema};
/// use itd_lrp::Lrp;
///
/// let r = GenRelation::builder(Schema::new(1, 0))
///     .push_row(
///         GenTuple::builder()
///             .lrp(Lrp::new(0, 2).unwrap())
///             .build()
///             .unwrap(),
///     )
///     .build()
///     .unwrap();
/// assert_eq!(r.tuple_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct RelationBuilder {
    pub(crate) schema: Schema,
    pub(crate) rows: Vec<GenTuple>,
}

impl RelationBuilder {
    /// Appends one row.
    #[must_use]
    pub fn push_row(mut self, t: GenTuple) -> Self {
        self.rows.push(t);
        self
    }

    /// Appends every row from an iterator.
    #[must_use]
    pub fn push_rows(mut self, ts: impl IntoIterator<Item = GenTuple>) -> Self {
        self.rows.extend(ts);
        self
    }

    /// Appends one tuple.
    #[cfg(feature = "legacy-api")]
    #[deprecated(since = "0.6.0", note = "use `push_row`")]
    #[must_use]
    pub fn tuple(self, t: GenTuple) -> Self {
        self.push_row(t)
    }

    /// Appends every tuple from an iterator.
    #[cfg(feature = "legacy-api")]
    #[deprecated(since = "0.6.0", note = "use `push_rows`")]
    #[must_use]
    pub fn tuples(self, ts: impl IntoIterator<Item = GenTuple>) -> Self {
        self.push_rows(ts)
    }

    /// Finishes the relation, verifying that every row matches the schema.
    ///
    /// # Errors
    /// [`CoreError::SchemaMismatch`] if any row disagrees with the schema.
    pub fn build(self) -> Result<GenRelation> {
        GenRelation::new(self.schema, self.rows)
    }
}

/// Former name of [`RelationBuilder`].
#[cfg(feature = "legacy-api")]
#[deprecated(since = "0.6.0", note = "renamed to `RelationBuilder`")]
pub type GenRelationBuilder = RelationBuilder;

/// Columnar serde for [`GenRelation`]: the distinct temporal parts and
/// data values are written once as local id tables, rows as id arrays —
/// mirroring the in-memory interned layout. Deserialization also accepts
/// the legacy row-oriented `{schema, tuples}` format, so files written
/// before the columnar storage stay readable.
#[cfg(feature = "serde")]
mod relation_serde {
    use std::collections::HashMap;

    use serde::{de, Content, Deserialize, Serialize};

    use super::GenRelation;
    use crate::schema::Schema;
    use crate::store;
    use crate::tuple::GenTuple;
    use crate::value::Value;
    use itd_constraint::ConstraintSystem;
    use itd_lrp::Lrp;

    /// One distinct temporal part in the file's local id table.
    #[derive(Serialize, Deserialize)]
    struct PartRepr {
        lrps: Vec<Lrp>,
        cons: ConstraintSystem,
    }

    /// The columnar file format: id tables written once, rows and data
    /// columns as local-id arrays.
    #[derive(Serialize, Deserialize)]
    struct ColumnarRepr {
        schema: Schema,
        parts: Vec<PartRepr>,
        values: Vec<Value>,
        rows: Vec<u32>,
        data: Vec<Vec<u32>>,
    }

    impl Serialize for GenRelation {
        fn to_content(&self) -> Content {
            // Local-id tables in first-seen order: global interned ids are
            // canonical within the process but not across files, so the
            // written ids are file-local and deterministic.
            let mut part_local: HashMap<store::TemporalPartId, u32> = HashMap::new();
            let mut parts: Vec<PartRepr> = Vec::new();
            let mut rows = Vec::with_capacity(self.store.len());
            for (row, &pid) in self.store.part_ids().iter().enumerate() {
                let local = *part_local.entry(pid).or_insert_with(|| {
                    let part = self.store.part(row);
                    parts.push(PartRepr {
                        lrps: part.lrps.clone(),
                        cons: part.cons.clone(),
                    });
                    (parts.len() - 1) as u32
                });
                rows.push(local);
            }
            let mut value_local: HashMap<store::ValueId, u32> = HashMap::new();
            let mut values: Vec<Value> = Vec::new();
            let data = self
                .store
                .data_columns()
                .iter()
                .map(|col| {
                    col.iter()
                        .map(|&vid| {
                            *value_local.entry(vid).or_insert_with(|| {
                                values.push(store::resolve_value(vid));
                                (values.len() - 1) as u32
                            })
                        })
                        .collect()
                })
                .collect();
            ColumnarRepr {
                schema: self.schema,
                parts,
                values,
                rows,
                data,
            }
            .to_content()
        }
    }

    impl Deserialize for GenRelation {
        fn from_content(content: &Content) -> Result<GenRelation, de::DeError> {
            let entries = de::as_struct_map(content, "GenRelation")?;
            if entries.iter().any(|(k, _)| k == "tuples") {
                // Legacy row-oriented format: `{schema, tuples}`.
                let schema: Schema = de::field(entries, "schema", "GenRelation")?;
                let tuples: Vec<GenTuple> = de::field(entries, "tuples", "GenRelation")?;
                return GenRelation::new(schema, tuples)
                    .map_err(|e| de::DeError::msg(e.to_string()));
            }
            let ColumnarRepr {
                schema,
                parts,
                values,
                rows,
                data,
            } = ColumnarRepr::from_content(content)?;
            if data.len() != schema.data() {
                return Err(de::DeError::msg(format!(
                    "GenRelation: expected {} data columns, found {}",
                    schema.data(),
                    data.len()
                )));
            }
            for col in &data {
                if col.len() != rows.len() {
                    return Err(de::DeError::msg(format!(
                        "GenRelation: data column has {} rows, expected {}",
                        col.len(),
                        rows.len()
                    )));
                }
            }
            let mut tuples = Vec::with_capacity(rows.len());
            for (row, &local) in rows.iter().enumerate() {
                let part = parts.get(local as usize).ok_or_else(|| {
                    de::DeError::msg(format!("GenRelation: part id {local} out of range"))
                })?;
                let mut row_data = Vec::with_capacity(data.len());
                for col in &data {
                    let vid = col[row];
                    let v = values.get(vid as usize).ok_or_else(|| {
                        de::DeError::msg(format!("GenRelation: value id {vid} out of range"))
                    })?;
                    row_data.push(v.clone());
                }
                tuples.push(
                    GenTuple::from_parts(part.lrps.clone(), part.cons.clone(), row_data)
                        .map_err(|e| de::DeError::msg(e.to_string()))?,
                );
            }
            GenRelation::new(schema, tuples).map_err(|e| de::DeError::msg(e.to_string()))
        }
    }
}

impl fmt::Display for GenRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "relation {} with {} tuple(s):",
            self.schema,
            self.tuple_count()
        )?;
        for t in self.rows_slice() {
            writeln!(f, "  {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itd_lrp::Lrp;

    fn lrp(c: i64, k: i64) -> Lrp {
        Lrp::new(c, k).unwrap()
    }

    fn rel1(tuples: Vec<GenTuple>) -> GenRelation {
        GenRelation::new(Schema::new(1, 0), tuples).unwrap()
    }

    #[test]
    fn schema_checked_on_build_and_push() {
        let t = GenTuple::unconstrained(vec![lrp(0, 2)], vec![]);
        let err = GenRelation::new(Schema::new(2, 0), vec![t.clone()]).unwrap_err();
        assert!(matches!(err, CoreError::SchemaMismatch { .. }));
        let mut r = GenRelation::empty(Schema::new(1, 0));
        r.push(t).unwrap();
        assert_eq!(r.tuple_count(), 1);
        let bad = GenTuple::unconstrained(vec![], vec![Value::Int(1)]);
        assert!(r.push(bad).is_err());
    }

    #[test]
    fn union_merges() {
        let a = rel1(vec![GenTuple::unconstrained(vec![lrp(0, 2)], vec![])]);
        let b = rel1(vec![GenTuple::unconstrained(vec![lrp(1, 2)], vec![])]);
        let u = a.union(&b).unwrap();
        assert_eq!(u.tuple_count(), 2);
        assert!(u.contains(&[0], &[]));
        assert!(u.contains(&[1], &[]));
        // Everything is covered: union of evens and odds.
        let m = u.materialize(-5, 5);
        assert_eq!(m.len(), 11);
    }

    #[test]
    fn intersect_pairs() {
        let a = rel1(vec![
            GenTuple::unconstrained(vec![lrp(0, 2)], vec![]),
            GenTuple::unconstrained(vec![lrp(0, 3)], vec![]),
        ]);
        let b = rel1(vec![GenTuple::unconstrained(vec![lrp(0, 5)], vec![])]);
        let i = a.intersect(&b).unwrap();
        // evens ∩ 5Z = 10Z; 3Z ∩ 5Z = 15Z
        assert!(i.contains(&[10], &[]));
        assert!(i.contains(&[15], &[]));
        assert!(i.contains(&[30], &[]));
        assert!(!i.contains(&[5], &[]));
        assert!(!i.contains(&[6], &[]));
    }

    #[test]
    fn bucketed_intersection_agrees_with_naive() {
        // Uniform-period relations: the bucketed path is taken.
        let mk = |offsets: &[(i64, i64)], lo: i64| {
            let tuples = offsets
                .iter()
                .map(|&(o1, o2)| {
                    GenTuple::builder()
                        .lrps(vec![lrp(o1, 4), lrp(o2, 4)])
                        .atoms([Atom::ge(0, lo)])
                        .build()
                        .unwrap()
                })
                .collect();
            GenRelation::new(Schema::new(2, 0), tuples).unwrap()
        };
        let a = mk(&[(0, 1), (2, 3), (1, 1)], -5);
        let b = mk(&[(0, 1), (1, 1), (3, 2)], 0);
        assert_eq!(a.uniform_period(), Some(4));
        let naive = a.intersect(&b).unwrap();
        let bucketed = a.intersect_bucketed(&b).unwrap();
        assert_eq!(naive.materialize(-20, 20), bucketed.materialize(-20, 20));
        // Mixed periods: silently falls back.
        let mixed = GenRelation::new(
            Schema::new(2, 0),
            vec![GenTuple::unconstrained(vec![lrp(0, 2), lrp(0, 6)], vec![])],
        )
        .unwrap();
        assert_eq!(mixed.uniform_period(), None);
        let via_fallback = mixed.intersect_bucketed(&a).unwrap();
        let naive = mixed.intersect(&a).unwrap();
        assert_eq!(
            via_fallback.materialize(-20, 20),
            naive.materialize(-20, 20)
        );
    }

    #[test]
    fn uniform_period_edge_cases() {
        // Points disqualify.
        let r = GenRelation::new(
            Schema::new(1, 0),
            vec![GenTuple::unconstrained(vec![Lrp::point(3)], vec![])],
        )
        .unwrap();
        assert_eq!(r.uniform_period(), None);
        // 0 temporal attributes: nothing to key on.
        let r = GenRelation::empty(Schema::new(0, 1));
        assert_eq!(r.uniform_period(), None);
        // Empty relation with temporal attributes: vacuously uniform but
        // unknown period.
        let r = GenRelation::empty(Schema::new(1, 0));
        assert_eq!(r.uniform_period(), None);
    }

    #[test]
    fn difference_fold() {
        // Z − evens − (3Z+1) on a window.
        let z = rel1(vec![GenTuple::unconstrained(vec![Lrp::all()], vec![])]);
        let evens = rel1(vec![GenTuple::unconstrained(vec![lrp(0, 2)], vec![])]);
        let threes = rel1(vec![GenTuple::unconstrained(vec![lrp(1, 3)], vec![])]);
        let d = z.difference(&evens).unwrap().difference(&threes).unwrap();
        for x in -20i64..20 {
            let expect = x % 2 != 0 && (x - 1).rem_euclid(3) != 0;
            assert_eq!(d.contains(&[x], &[]), expect, "x = {x}");
        }
    }

    #[test]
    fn emptiness_thm_3_5() {
        assert!(GenRelation::empty(Schema::new(1, 0))
            .denotes_empty()
            .unwrap());
        let nonempty = rel1(vec![GenTuple::unconstrained(vec![lrp(0, 2)], vec![])]);
        assert!(!nonempty.denotes_empty().unwrap());
        // A relation whose only tuple is grid-empty.
        let ghost = GenRelation::new(
            Schema::new(2, 0),
            vec![GenTuple::builder()
                .lrps(vec![lrp(0, 2), lrp(0, 2)])
                .atoms([Atom::diff_eq(0, 1, 1)])
                .build()
                .unwrap()],
        )
        .unwrap();
        assert!(ghost.denotes_empty().unwrap());
    }

    #[test]
    fn select_temporal_prunes_contradictions() {
        let r = rel1(vec![
            GenTuple::builder()
                .lrps(vec![lrp(0, 2)])
                .atoms([Atom::ge(0, 10)])
                .build()
                .unwrap(),
            GenTuple::builder()
                .lrps(vec![lrp(1, 2)])
                .atoms([Atom::le(0, 5)])
                .build()
                .unwrap(),
        ]);
        let s = r.select_temporal(Atom::ge(0, 8)).unwrap();
        assert_eq!(s.tuple_count(), 1);
        assert!(s.contains(&[10], &[]));
        assert!(!s.contains(&[3], &[]));
    }

    #[test]
    fn select_data_filters() {
        let r = GenRelation::new(
            Schema::new(1, 1),
            vec![
                GenTuple::unconstrained(vec![lrp(0, 2)], vec![Value::str("a")]),
                GenTuple::unconstrained(vec![lrp(1, 2)], vec![Value::str("b")]),
            ],
        )
        .unwrap();
        let s = r.select_data(|d| d[0] == Value::str("a"));
        assert_eq!(s.tuple_count(), 1);
        assert!(s.contains(&[0], &[Value::str("a")]));
    }

    #[test]
    fn complement_requires_temporal_only() {
        let r = GenRelation::new(
            Schema::new(1, 1),
            vec![GenTuple::unconstrained(
                vec![lrp(0, 2)],
                vec![Value::Int(1)],
            )],
        )
        .unwrap();
        assert!(matches!(
            r.complement_temporal(),
            Err(CoreError::ComplementHasData)
        ));
    }

    #[test]
    fn simplify_drops_empty_and_subsumed() {
        let r = rel1(vec![
            // Subsumed by the third tuple (refined class of evens).
            GenTuple::unconstrained(vec![lrp(0, 4)], vec![]),
            // Grid-empty.
            GenTuple::builder()
                .lrps(vec![lrp(0, 2)])
                .atoms([Atom::le(0, 0), Atom::ge(0, 1)])
                .build()
                .unwrap(),
            GenTuple::unconstrained(vec![lrp(0, 2)], vec![]),
        ]);
        let s = r.simplify().unwrap();
        assert_eq!(s.tuple_count(), 1);
        assert_eq!(s.rows_slice()[0].lrps()[0], lrp(0, 2));
    }

    #[test]
    fn simplify_keeps_one_of_equal_duplicates() {
        let t = GenTuple::unconstrained(vec![lrp(0, 2)], vec![]);
        let r = rel1(vec![t.clone(), t]);
        let s = r.simplify().unwrap();
        assert_eq!(s.tuple_count(), 1);
    }

    #[test]
    fn shift_temporal_translates() {
        let r = GenRelation::new(
            Schema::new(2, 0),
            vec![GenTuple::builder()
                .lrps(vec![lrp(0, 3), lrp(1, 3)])
                .atoms([Atom::diff_le(0, 1, 0), Atom::ge(0, 0)])
                .build()
                .unwrap()],
        )
        .unwrap();
        let s = r.shift_temporal(0, 5).unwrap();
        for x in -10i64..20 {
            for y in -10i64..20 {
                assert_eq!(
                    s.contains(&[x, y], &[]),
                    r.contains(&[x - 5, y], &[]),
                    "({x},{y})"
                );
            }
        }
        assert!(r.shift_temporal(2, 1).is_err());
    }

    #[test]
    fn full_temporal_covers_everything() {
        let full = GenRelation::full_temporal(Schema::new(2, 0)).unwrap();
        assert!(full.contains(&[123, -456], &[]));
        assert!(GenRelation::full_temporal(Schema::new(1, 1)).is_err());
    }

    #[test]
    fn extrema_and_next_occurrence() {
        // Column: {3 + 12n | n ≥ 0} ∪ {5} → min 3 (select gives 3, 15, …).
        let r = GenRelation::new(
            Schema::new(1, 0),
            vec![
                GenTuple::builder()
                    .lrps(vec![lrp(3, 12)])
                    .atoms([Atom::ge(0, 0)])
                    .build()
                    .unwrap(),
                GenTuple::unconstrained(vec![Lrp::point(5)], vec![]),
            ],
        )
        .unwrap();
        assert_eq!(r.min_temporal(0).unwrap(), Some(3));
        assert_eq!(r.max_temporal(0).unwrap(), None); // unbounded above
        assert_eq!(r.next_occurrence(0, 4).unwrap(), Some(5));
        assert_eq!(r.next_occurrence(0, 6).unwrap(), Some(15));
        assert_eq!(r.next_occurrence(0, 15).unwrap(), Some(15));
        assert_eq!(r.next_occurrence(0, 16).unwrap(), Some(27));
        // Empty relation: no occurrence.
        let empty = GenRelation::empty(Schema::new(1, 0));
        assert_eq!(empty.min_temporal(0).unwrap(), None);
        assert_eq!(empty.next_occurrence(0, 0).unwrap(), None);
        // Bounded above.
        let r = GenRelation::new(
            Schema::new(1, 0),
            vec![GenTuple::builder()
                .lrps(vec![lrp(1, 4)])
                .atoms([Atom::le(0, 20), Atom::ge(0, -7)])
                .build()
                .unwrap()],
        )
        .unwrap();
        assert_eq!(r.min_temporal(0).unwrap(), Some(-7));
        assert_eq!(r.max_temporal(0).unwrap(), Some(17)); // 17 ≡ 1 (mod 4), ≤ 20
                                                          // Out of range.
        assert!(r.min_temporal(1).is_err());
    }

    #[test]
    fn extrema_respect_cross_column_constraints() {
        // X0 ∈ 2n, X1 ∈ 2n, X0 = X1 − 4, X1 ≥ 10 ⟹ min X0 = 6.
        let r = GenRelation::new(
            Schema::new(2, 0),
            vec![GenTuple::builder()
                .lrps(vec![lrp(0, 2), lrp(0, 2)])
                .atoms([Atom::diff_eq(0, 1, -4), Atom::ge(1, 10)])
                .build()
                .unwrap()],
        )
        .unwrap();
        assert_eq!(r.min_temporal(0).unwrap(), Some(6));
        assert_eq!(r.min_temporal(1).unwrap(), Some(10));
    }

    #[test]
    fn display_lists_tuples() {
        let r = rel1(vec![GenTuple::unconstrained(vec![lrp(0, 2)], vec![])]);
        let text = r.to_string();
        assert!(text.contains("1 tuple"), "{text}");
        assert!(text.contains("2n"), "{text}");
    }
}

//! Error type of the core relation layer.

use std::fmt;

use itd_numth::NumthError;

use crate::schema::Schema;

/// Errors from generalized-relation construction and algebra.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// Arithmetic failure in the underlying number theory (overflow, …).
    Numth(NumthError),
    /// Two relations (or a tuple and a relation) disagree on schema.
    SchemaMismatch {
        /// Schema expected by the operation.
        expected: Schema,
        /// Schema actually found.
        found: Schema,
    },
    /// An attribute index was out of range for the schema.
    AttributeOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of attributes of that kind.
        arity: usize,
    },
    /// A complement/normalization would enumerate more than the configured
    /// number of free extensions (`k^m` blow-up guard, Appendix A.6).
    TooManyExtensions {
        /// The common period `k`.
        period: i64,
        /// Temporal arity `m`.
        arity: usize,
        /// The configured ceiling that was exceeded.
        limit: u64,
    },
    /// A grid view was requested for a tuple whose infinite lrps do not
    /// share a single period — normalize first.
    NotSinglePeriod,
    /// Complement of a relation with data attributes was requested;
    /// only purely temporal relations have a representable complement
    /// (the data domain is unbounded). Use active-domain complement at the
    /// query layer instead.
    ComplementHasData,
    /// Execution was cancelled cooperatively (deadline expired or the
    /// caller's [`crate::CancelToken`] was triggered). The operation stopped
    /// at a chunk boundary; no partial results were published.
    Cancelled,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Numth(e) => write!(f, "arithmetic failure: {e}"),
            CoreError::SchemaMismatch { expected, found } => {
                write!(f, "schema mismatch: expected {expected}, found {found}")
            }
            CoreError::AttributeOutOfRange { index, arity } => {
                write!(f, "attribute {index} out of range (arity {arity})")
            }
            CoreError::TooManyExtensions {
                period,
                arity,
                limit,
            } => write!(
                f,
                "complement would enumerate {period}^{arity} free extensions (limit {limit})"
            ),
            CoreError::NotSinglePeriod => {
                f.write_str("tuple is not single-period; normalize before grid operations")
            }
            CoreError::ComplementHasData => {
                f.write_str("complement is only defined for purely temporal relations")
            }
            CoreError::Cancelled => f.write_str("execution cancelled (deadline exceeded)"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Numth(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NumthError> for CoreError {
    fn from(e: NumthError) -> Self {
        CoreError::Numth(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::SchemaMismatch {
            expected: Schema::new(2, 1),
            found: Schema::new(1, 1),
        };
        let text = e.to_string();
        assert!(text.contains("schema mismatch"), "{text}");
        assert!(CoreError::ComplementHasData
            .to_string()
            .contains("temporal"));
        assert!(CoreError::Numth(NumthError::Overflow)
            .to_string()
            .contains("overflow"));
        assert!(CoreError::AttributeOutOfRange { index: 5, arity: 2 }
            .to_string()
            .contains('5'));
        let e = CoreError::TooManyExtensions {
            period: 30,
            arity: 4,
            limit: 100_000,
        };
        assert!(e.to_string().contains("30^4"), "{e}");
    }

    #[test]
    fn numth_conversion_and_source() {
        use std::error::Error as _;
        let e: CoreError = NumthError::Overflow.into();
        assert!(e.source().is_some());
        assert!(CoreError::ComplementHasData.source().is_none());
    }
}

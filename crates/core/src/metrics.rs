//! Process-global metrics: cross-query aggregation of what [`crate::trace`]
//! only captures per query.
//!
//! A [`MetricsRegistry`] is a lock-cheap sink that a query driver feeds one
//! [`QueryObservation`] per finished query. It maintains:
//!
//! * **Latency histograms** — fixed power-of-two log buckets (no
//!   dependencies, no allocation on the record path) for per-query wall
//!   time, candidate pairs, and peak live rows, plus one wall-time
//!   histogram per [`OpKind`]. Percentiles (p50/p90/p99) come out of the
//!   bucket boundaries, so they are deterministic on synthetic inputs.
//! * **Counter totals** — a running [`StatsSnapshot`] that is, by
//!   construction, the exact sum of every observed query's per-op
//!   counters (asserted in the integration tests).
//! * **Resource gauges** — tuples allocated, process-wide peak live rows,
//!   and (at snapshot time) the interner/arena and CRT-cache gauges from
//!   [`storage_stats`] and [`itd_lrp::crt_cache_stats`].
//! * **A bounded slow-query log** — the [`SLOW_LOG_CAP`] worst queries by
//!   wall time *and* by candidate pairs, each entry carrying the rendered
//!   plan, the per-op counters, and the query's [`QueryResourceReport`];
//!   exportable as JSON lines.
//!
//! [`MetricsRegistry::snapshot`] freezes everything into a
//! [`RegistrySnapshot`], which renders to the Prometheus text exposition
//! format (subsuming the per-query [`StatsSnapshot::to_prometheus`]
//! exporter), a `\top`-style summary, slow-log tables, and ASCII
//! histograms.
//!
//! The record path takes no lock for histograms and counters (relaxed
//! atomics) and two short mutexes (totals merge, slow-log insert) per
//! query — not per operator — so concurrent queries contend only once per
//! query.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;
use std::time::Duration;

use itd_lrp::CrtCacheStats;

use crate::exec::{OpKind, StatsSnapshot};
use crate::store::{storage_stats, StorageStats};
use crate::trace::escape_json;

/// Number of histogram buckets. Bucket `0` holds the value `0`; bucket
/// `i ∈ [1, 64]` holds values in `[2^(i−1), 2^i)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Entries retained per slow-query ranking (by wall time and by pairs).
pub const SLOW_LOG_CAP: usize = 8;

/// The bucket index of `v` under the power-of-two scheme.
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i`: `2^i − 1` (saturating at the top).
fn bucket_le(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A lock-free histogram over `u64` values with fixed power-of-two
/// buckets. Recording is two relaxed `fetch_add`s; snapshots are plain
/// data.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Counts one observation of `v`.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
    }

    /// A plain-data copy of the current bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Relaxed)),
            sum: self.sum.load(Relaxed),
        }
    }
}

/// Plain-data copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observation count per bucket (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Sum of all recorded values.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The inclusive upper bound of the bucket holding the `q`-quantile
    /// observation (`q ∈ (0, 1]`); `0` on an empty histogram. Because the
    /// result is a bucket boundary, it is an upper bound on the true
    /// quantile that is exact for values on bucket edges and
    /// deterministic for any input sequence.
    pub fn percentile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_le(i);
            }
        }
        bucket_le(HISTOGRAM_BUCKETS - 1)
    }

    /// Index of the highest nonzero bucket, if any.
    fn max_bucket(&self) -> Option<usize> {
        (0..HISTOGRAM_BUCKETS).rev().find(|&i| self.buckets[i] > 0)
    }
}

/// Per-query resource accounting, attached to every
/// [`QueryOutput`](../../itd_query/struct.QueryOutput.html) and to slow-log
/// entries.
///
/// The storage/cache fields are *deltas* over the query's execution window
/// against the process-global counters, captured by a
/// [`ResourceCollector`]. They are exact when one query runs at a time;
/// under concurrency they attribute whatever the window saw. The CRT
/// fields see only the driver thread's thread-local cache (worker-thread
/// hits stay on their threads).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryResourceReport {
    /// Largest sum of live intermediate result rows at any point of the
    /// plan walk (inputs excluded).
    pub peak_live_rows: u64,
    /// Generalized tuples produced across all operators (`Σ tuples_out`).
    pub tuples_allocated: u64,
    /// Duplicate temporal parts absorbed by the operator-level interner.
    pub intern_hits: u64,
    /// Value-arena interning attempts during the query.
    pub value_lookups: u64,
    /// Value-arena attempts answered by an existing entry.
    pub value_hits: u64,
    /// Part-arena interning attempts during the query.
    pub part_lookups: u64,
    /// Part-arena attempts answered by an existing entry.
    pub part_hits: u64,
    /// Estimated bytes of fresh arena payload interned by the query.
    pub arena_bytes: u64,
    /// Residue indexes built from scratch during the query.
    pub index_builds: u64,
    /// Operator calls served by an already-built persistent index.
    pub index_reuses: u64,
    /// CRT-cache hits on the driver thread.
    pub crt_hits: u64,
    /// CRT-cache misses on the driver thread.
    pub crt_misses: u64,
}

fn rate(hits: u64, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

impl QueryResourceReport {
    /// Value-arena hit rate in `[0, 1]` (`0` when nothing was interned).
    pub fn value_hit_rate(&self) -> f64 {
        rate(self.value_hits, self.value_lookups)
    }

    /// Part-arena hit rate in `[0, 1]`.
    pub fn part_hit_rate(&self) -> f64 {
        rate(self.part_hits, self.part_lookups)
    }

    /// CRT-cache hit rate in `[0, 1]` (driver thread only).
    pub fn crt_hit_rate(&self) -> f64 {
        rate(self.crt_hits, self.crt_hits + self.crt_misses)
    }

    /// Fraction of index demands served by a persistent index.
    pub fn index_reuse_rate(&self) -> f64 {
        rate(self.index_reuses, self.index_builds + self.index_reuses)
    }

    /// Scrubs every field that depends on process history or shared
    /// caches (arena/index/CRT deltas), keeping only the replay-
    /// deterministic core: `peak_live_rows`, `tuples_allocated`, and
    /// `intern_hits`. The slow-log determinism tests compare scrubbed
    /// reports.
    pub fn without_timing(&self) -> QueryResourceReport {
        QueryResourceReport {
            peak_live_rows: self.peak_live_rows,
            tuples_allocated: self.tuples_allocated,
            intern_hits: self.intern_hits,
            ..QueryResourceReport::default()
        }
    }

    fn json_fields(&self, out: &mut String) {
        let _ = write!(
            out,
            "\"peak_live_rows\":{},\"tuples_allocated\":{},\"intern_hits\":{},\
             \"value_lookups\":{},\"value_hits\":{},\"part_lookups\":{},\"part_hits\":{},\
             \"arena_bytes\":{},\"index_builds\":{},\"index_reuses\":{},\
             \"crt_hits\":{},\"crt_misses\":{}",
            self.peak_live_rows,
            self.tuples_allocated,
            self.intern_hits,
            self.value_lookups,
            self.value_hits,
            self.part_lookups,
            self.part_hits,
            self.arena_bytes,
            self.index_builds,
            self.index_reuses,
            self.crt_hits,
            self.crt_misses,
        );
    }
}

/// Captures the global storage and CRT-cache counters at query start so
/// [`ResourceCollector::finish`] can report the query's *deltas*.
#[derive(Debug, Clone, Copy)]
pub struct ResourceCollector {
    storage: StorageStats,
    crt: CrtCacheStats,
}

impl ResourceCollector {
    /// Snapshots the global counters; call before executing the plan.
    pub fn start() -> ResourceCollector {
        ResourceCollector {
            storage: storage_stats(),
            crt: itd_lrp::crt_cache_stats(),
        }
    }

    /// Builds the report from the post-execution counters: storage and
    /// CRT fields are deltas against [`ResourceCollector::start`];
    /// `tuples_allocated` and `intern_hits` come out of the query's own
    /// per-op counter delta `stats`.
    pub fn finish(self, peak_live_rows: u64, stats: &StatsSnapshot) -> QueryResourceReport {
        let s = storage_stats();
        let c = itd_lrp::crt_cache_stats();
        let before_bytes = self.storage.value_bytes + self.storage.part_bytes;
        QueryResourceReport {
            peak_live_rows,
            tuples_allocated: stats.iter().map(|(_, o)| o.tuples_out).sum(),
            intern_hits: stats.iter().map(|(_, o)| o.intern_hits).sum(),
            value_lookups: s.value_lookups.saturating_sub(self.storage.value_lookups),
            value_hits: s.value_hits.saturating_sub(self.storage.value_hits),
            part_lookups: s.part_lookups.saturating_sub(self.storage.part_lookups),
            part_hits: s.part_hits.saturating_sub(self.storage.part_hits),
            arena_bytes: (s.value_bytes + s.part_bytes).saturating_sub(before_bytes),
            index_builds: s.index_builds.saturating_sub(self.storage.index_builds),
            index_reuses: s.index_reuses.saturating_sub(self.storage.index_reuses),
            crt_hits: c.hits.saturating_sub(self.crt.hits),
            crt_misses: c.misses.saturating_sub(self.crt.misses),
        }
    }
}

/// Everything the driver reports about one finished query.
pub struct QueryObservation<'a> {
    /// Renders `(query text, plan)`. Called at most once, and only when
    /// the observation actually enters the slow-query log — the common
    /// case (an unremarkable query against a full log) never pays for
    /// string rendering.
    pub render: &'a dyn Fn() -> (String, String),
    /// End-to-end wall time of the evaluation, in nanoseconds.
    pub wall_nanos: u64,
    /// The query's per-op counter delta (exactly what its own execution
    /// added to the context).
    pub stats: &'a StatsSnapshot,
    /// The query's resource report.
    pub resources: &'a QueryResourceReport,
}

/// One retained slow-query log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowQueryEntry {
    /// Observation order (0-based; ties in the rankings break by it).
    pub seq: u64,
    /// The query text.
    pub query: String,
    /// The rendered plan.
    pub plan: String,
    /// End-to-end wall time, in nanoseconds.
    pub wall_nanos: u64,
    /// Total candidate pairs examined.
    pub pairs: u64,
    /// The query's per-op counters.
    pub stats: StatsSnapshot,
    /// The query's resource report.
    pub resources: QueryResourceReport,
}

impl SlowQueryEntry {
    /// Scrubs wall time and process-history fields so replayed workloads
    /// compare equal (`seq`, `pairs`, counters, and the deterministic
    /// resource core survive).
    pub fn without_timing(&self) -> SlowQueryEntry {
        let mut stats = self.stats.clone();
        for op in stats.ops.iter_mut() {
            op.nanos = 0;
        }
        SlowQueryEntry {
            seq: self.seq,
            query: self.query.clone(),
            plan: self.plan.clone(),
            wall_nanos: 0,
            pairs: self.pairs,
            stats,
            resources: self.resources.without_timing(),
        }
    }

    fn to_json_line(&self) -> String {
        let mut out = String::from("{\"seq\":");
        let _ = write!(out, "{}", self.seq);
        out.push_str(",\"query\":");
        escape_json(&self.query, &mut out);
        out.push_str(",\"plan\":");
        escape_json(&self.plan, &mut out);
        let _ = write!(
            out,
            ",\"wall_nanos\":{},\"pairs\":{},",
            self.wall_nanos, self.pairs
        );
        self.resources.json_fields(&mut out);
        out.push_str(",\"stats\":");
        out.push_str(&self.stats.to_json());
        out.push('}');
        out
    }
}

/// The two bounded worst-query rankings.
#[derive(Debug, Default)]
struct SlowLog {
    seq: u64,
    by_time: Vec<SlowQueryEntry>,
    by_pairs: Vec<SlowQueryEntry>,
}

impl SlowLog {
    fn insert(&mut self, obs: &QueryObservation<'_>, resources: &QueryResourceReport) {
        let seq = self.seq;
        self.seq += 1;
        let wall_nanos = obs.wall_nanos;
        let pairs = obs.stats.total_pairs();
        // Admission check before rendering: a full ranking admits only a
        // strictly worse entry (ties break toward the older seq, which the
        // newcomer always loses), so equality means "would be truncated".
        let by_time_ok = self.by_time.len() < SLOW_LOG_CAP
            || self
                .by_time
                .last()
                .is_some_and(|e| wall_nanos > e.wall_nanos);
        let by_pairs_ok = self.by_pairs.len() < SLOW_LOG_CAP
            || self.by_pairs.last().is_some_and(|e| pairs > e.pairs);
        if !by_time_ok && !by_pairs_ok {
            return;
        }
        let (query, plan) = (obs.render)();
        let entry = SlowQueryEntry {
            seq,
            query,
            plan,
            wall_nanos,
            pairs,
            stats: obs.stats.clone(),
            resources: *resources,
        };
        if by_time_ok {
            self.by_time.push(entry.clone());
            self.by_time
                .sort_by(|a, b| b.wall_nanos.cmp(&a.wall_nanos).then(a.seq.cmp(&b.seq)));
            self.by_time.truncate(SLOW_LOG_CAP);
        }
        if by_pairs_ok {
            self.by_pairs.push(entry);
            self.by_pairs
                .sort_by(|a, b| b.pairs.cmp(&a.pairs).then(a.seq.cmp(&b.seq)));
            self.by_pairs.truncate(SLOW_LOG_CAP);
        }
    }
}

/// Process-global, lock-cheap cross-query metrics sink. Shareable by
/// reference (all interior mutability); `Database` wraps one in an `Arc`.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    queries: AtomicU64,
    query_wall: Histogram,
    query_pairs: Histogram,
    query_rows: Histogram,
    op_wall: [Histogram; OpKind::ALL.len()],
    totals: Mutex<StatsSnapshot>,
    tuples_allocated: AtomicU64,
    peak_rows: AtomicU64,
    slow: Mutex<SlowLog>,
    view_refreshes: AtomicU64,
    view_full_refreshes: AtomicU64,
    view_delta_rows: AtomicU64,
    views_registered: AtomicU64,
    server_connections: AtomicU64,
    server_requests: AtomicU64,
    server_admitted: AtomicU64,
    server_rejected_over_budget: AtomicU64,
    server_rejected_queue_full: AtomicU64,
    server_timeouts: AtomicU64,
    server_batches: AtomicU64,
    server_batch_queries: AtomicU64,
    server_queue_depth: AtomicU64,
    server_queue_depth_max: AtomicU64,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Records one finished query. Histograms and gauges use relaxed
    /// atomics; the totals merge and slow-log insert each take one short
    /// lock.
    ///
    /// Per-op wall-time histograms record one observation per op kind the
    /// query actually invoked (`calls > 0`), so observation *counts* are
    /// thread-count invariant even though the recorded times are not.
    pub fn observe_query(&self, obs: QueryObservation<'_>) {
        self.queries.fetch_add(1, Relaxed);
        self.query_wall.record(obs.wall_nanos);
        self.query_pairs.record(obs.stats.total_pairs());
        self.query_rows.record(obs.resources.peak_live_rows);
        for (kind, op) in obs.stats.iter() {
            if op.calls > 0 {
                self.op_wall[kind.index()].record(op.nanos);
            }
        }
        self.tuples_allocated
            .fetch_add(obs.resources.tuples_allocated, Relaxed);
        self.peak_rows
            .fetch_max(obs.resources.peak_live_rows, Relaxed);
        self.totals
            .lock()
            .expect("metrics totals poisoned")
            .merge(obs.stats);
        let resources = *obs.resources;
        self.slow
            .lock()
            .expect("slow log poisoned")
            .insert(&obs, &resources);
    }

    /// Number of queries observed so far.
    pub fn queries(&self) -> u64 {
        self.queries.load(Relaxed)
    }

    /// Records one finished refresh of a registered view: whether it fell
    /// back to a full recomputation, how many signed delta rows it
    /// consumed, and the operator counters the maintenance pass ran up
    /// (merged into the cross-query totals exactly like a query's).
    pub fn observe_view_refresh(&self, full: bool, delta_rows: u64, stats: &StatsSnapshot) {
        self.view_refreshes.fetch_add(1, Relaxed);
        if full {
            self.view_full_refreshes.fetch_add(1, Relaxed);
        }
        self.view_delta_rows.fetch_add(delta_rows, Relaxed);
        for (kind, op) in stats.iter() {
            if op.calls > 0 {
                self.op_wall[kind.index()].record(op.nanos);
            }
        }
        self.totals
            .lock()
            .expect("metrics totals poisoned")
            .merge(stats);
    }

    /// Counts one accepted query-service connection.
    pub fn server_connection(&self) {
        self.server_connections.fetch_add(1, Relaxed);
    }

    /// Counts one query request submitted to the service (before
    /// admission). The admission invariant `admitted + rejected_over_budget
    /// + rejected_queue_full == requests` holds at every quiescent point.
    pub fn server_request(&self) {
        self.server_requests.fetch_add(1, Relaxed);
    }

    /// Counts one request admitted past the cost budget.
    pub fn server_admitted(&self) {
        self.server_admitted.fetch_add(1, Relaxed);
    }

    /// Counts one request rejected because its pre-execution total-pairs
    /// estimate exceeded the admission budget.
    pub fn server_rejected_over_budget(&self) {
        self.server_rejected_over_budget.fetch_add(1, Relaxed);
    }

    /// Counts one request rejected because the bounded admission queue was
    /// full (backpressure).
    pub fn server_rejected_queue_full(&self) {
        self.server_rejected_queue_full.fetch_add(1, Relaxed);
    }

    /// Counts one admitted request cancelled by its deadline.
    pub fn server_timeout(&self) {
        self.server_timeouts.fetch_add(1, Relaxed);
    }

    /// Records one dispatched batch of `queries` requests sharing a single
    /// database snapshot.
    pub fn observe_server_batch(&self, queries: u64) {
        self.server_batches.fetch_add(1, Relaxed);
        self.server_batch_queries.fetch_add(queries, Relaxed);
    }

    /// Publishes the current admission-queue depth (and raises the
    /// high-water mark).
    pub fn server_queue_depth_set(&self, depth: u64) {
        self.server_queue_depth.store(depth, Relaxed);
        self.server_queue_depth_max.fetch_max(depth, Relaxed);
    }

    /// Adjusts the registered-view gauge on register (`+1`) / deregister
    /// (`-1`).
    pub fn views_registered_add(&self, delta: i64) {
        if delta >= 0 {
            self.views_registered.fetch_add(delta as u64, Relaxed);
        } else {
            self.views_registered.fetch_sub((-delta) as u64, Relaxed);
        }
    }

    /// Freezes the registry (plus the current global storage and CRT
    /// gauges) into a plain-data snapshot.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let slow = self.slow.lock().expect("slow log poisoned");
        RegistrySnapshot {
            queries: self.queries.load(Relaxed),
            query_wall: self.query_wall.snapshot(),
            query_pairs: self.query_pairs.snapshot(),
            query_rows: self.query_rows.snapshot(),
            op_wall: OpKind::ALL
                .iter()
                .map(|k| (*k, self.op_wall[k.index()].snapshot()))
                .collect(),
            totals: self.totals.lock().expect("metrics totals poisoned").clone(),
            tuples_allocated: self.tuples_allocated.load(Relaxed),
            peak_rows: self.peak_rows.load(Relaxed),
            slow_by_time: slow.by_time.clone(),
            slow_by_pairs: slow.by_pairs.clone(),
            storage: storage_stats(),
            crt: itd_lrp::crt_cache_stats(),
            view_refreshes: self.view_refreshes.load(Relaxed),
            view_full_refreshes: self.view_full_refreshes.load(Relaxed),
            view_delta_rows: self.view_delta_rows.load(Relaxed),
            views_registered: self.views_registered.load(Relaxed),
            server_connections: self.server_connections.load(Relaxed),
            server_requests: self.server_requests.load(Relaxed),
            server_admitted: self.server_admitted.load(Relaxed),
            server_rejected_over_budget: self.server_rejected_over_budget.load(Relaxed),
            server_rejected_queue_full: self.server_rejected_queue_full.load(Relaxed),
            server_timeouts: self.server_timeouts.load(Relaxed),
            server_batches: self.server_batches.load(Relaxed),
            server_batch_queries: self.server_batch_queries.load(Relaxed),
            server_queue_depth: self.server_queue_depth.load(Relaxed),
            server_queue_depth_max: self.server_queue_depth_max.load(Relaxed),
        }
    }
}

/// Plain-data freeze of a [`MetricsRegistry`], plus the storage and CRT
/// gauges read at snapshot time.
#[derive(Debug, Clone)]
pub struct RegistrySnapshot {
    /// Queries observed.
    pub queries: u64,
    /// Per-query wall-time histogram (nanoseconds).
    pub query_wall: HistogramSnapshot,
    /// Per-query candidate-pair histogram.
    pub query_pairs: HistogramSnapshot,
    /// Per-query peak-live-row histogram.
    pub query_rows: HistogramSnapshot,
    /// Per-op wall-time histograms in display order (nanoseconds; one
    /// observation per query that invoked the op).
    pub op_wall: Vec<(OpKind, HistogramSnapshot)>,
    /// Exact sum of every observed query's per-op counters.
    pub totals: StatsSnapshot,
    /// Total tuples allocated across observed queries.
    pub tuples_allocated: u64,
    /// Largest single-query peak of live intermediate rows.
    pub peak_rows: u64,
    /// Worst queries by wall time, worst first.
    pub slow_by_time: Vec<SlowQueryEntry>,
    /// Worst queries by candidate pairs, worst first.
    pub slow_by_pairs: Vec<SlowQueryEntry>,
    /// Global storage gauges at snapshot time.
    pub storage: StorageStats,
    /// Driver-thread CRT-cache gauges at snapshot time.
    pub crt: CrtCacheStats,
    /// Registered-view refreshes observed (incremental and full).
    pub view_refreshes: u64,
    /// Refreshes that fell back to full recomputation.
    pub view_full_refreshes: u64,
    /// Signed delta rows consumed by view refreshes.
    pub view_delta_rows: u64,
    /// Views currently registered across databases sharing this registry.
    pub views_registered: u64,
    /// Query-service connections accepted.
    pub server_connections: u64,
    /// Query-service requests submitted (before admission).
    pub server_requests: u64,
    /// Requests admitted past the cost budget.
    pub server_admitted: u64,
    /// Requests rejected for exceeding the admission budget.
    pub server_rejected_over_budget: u64,
    /// Requests rejected because the bounded queue was full.
    pub server_rejected_queue_full: u64,
    /// Admitted requests cancelled by their deadline.
    pub server_timeouts: u64,
    /// Batches dispatched against a shared snapshot.
    pub server_batches: u64,
    /// Requests carried by those batches.
    pub server_batch_queries: u64,
    /// Admission-queue depth at snapshot time.
    pub server_queue_depth: u64,
    /// High-water mark of the admission-queue depth.
    pub server_queue_depth_max: u64,
}

fn fmt_nanos(n: u64) -> String {
    format!("{:.1?}", Duration::from_nanos(n))
}

/// Appends one Prometheus classic histogram (cumulative `_bucket{le=}`
/// series, `_sum`, `_count`). `scale` divides both the `le` boundaries and
/// the sum (use `1e9` to render nanosecond buckets in seconds, `1.0` for
/// dimensionless values).
fn prom_histogram(out: &mut String, name: &str, help: &str, h: &HistogramSnapshot, scale: f64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    let last = h.max_bucket().unwrap_or(0);
    let mut cumulative = 0u64;
    for i in 0..=last {
        cumulative += h.buckets[i];
        let le = bucket_le(i);
        if scale == 1.0 {
            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        } else {
            let _ = writeln!(
                out,
                "{name}_bucket{{le=\"{:.9}\"}} {cumulative}",
                le as f64 / scale
            );
        }
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
    if scale == 1.0 {
        let _ = writeln!(out, "{name}_sum {}", h.sum);
    } else {
        let _ = writeln!(out, "{name}_sum {:.9}", h.sum as f64 / scale);
    }
    let _ = writeln!(out, "{name}_count {}", h.count());
}

fn prom_scalar(out: &mut String, name: &str, kind: &str, help: &str, value: u64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
    let _ = writeln!(out, "{name} {value}");
}

impl RegistrySnapshot {
    /// Renders the whole snapshot in the Prometheus text exposition
    /// format: the per-op counter families of
    /// [`StatsSnapshot::to_prometheus`] (now fed by cross-query totals),
    /// the query-level histograms, per-op latency percentile gauges, and
    /// the storage/CRT gauges.
    pub fn to_prometheus(&self) -> String {
        let mut out = self.totals.to_prometheus();
        prom_scalar(
            &mut out,
            "itd_queries_total",
            "counter",
            "Queries observed by the metrics registry.",
            self.queries,
        );
        prom_histogram(
            &mut out,
            "itd_query_wall_seconds",
            "Per-query end-to-end wall time.",
            &self.query_wall,
            1e9,
        );
        prom_histogram(
            &mut out,
            "itd_query_pairs",
            "Per-query candidate tuple pairs examined.",
            &self.query_pairs,
            1.0,
        );
        prom_histogram(
            &mut out,
            "itd_query_rows",
            "Per-query peak live intermediate rows.",
            &self.query_rows,
            1.0,
        );
        for (p, q) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99)] {
            let name = format!("itd_op_wall_{p}_seconds");
            let _ = writeln!(
                out,
                "# HELP {name} Per-op wall-time {p} across observed queries."
            );
            let _ = writeln!(out, "# TYPE {name} gauge");
            for (kind, h) in &self.op_wall {
                if h.count() == 0 {
                    continue;
                }
                let _ = writeln!(
                    out,
                    "{name}{{op=\"{}\"}} {:.9}",
                    kind.name(),
                    h.percentile(q) as f64 / 1e9
                );
            }
        }
        prom_scalar(
            &mut out,
            "itd_query_tuples_allocated_total",
            "counter",
            "Generalized tuples produced across observed queries.",
            self.tuples_allocated,
        );
        prom_scalar(
            &mut out,
            "itd_query_peak_live_rows",
            "gauge",
            "Largest single-query peak of live intermediate rows.",
            self.peak_rows,
        );
        let _ = writeln!(
            out,
            "# HELP itd_slow_log_entries Entries retained per slow-query ranking."
        );
        let _ = writeln!(out, "# TYPE itd_slow_log_entries gauge");
        let _ = writeln!(
            out,
            "itd_slow_log_entries{{rank=\"time\"}} {}",
            self.slow_by_time.len()
        );
        let _ = writeln!(
            out,
            "itd_slow_log_entries{{rank=\"pairs\"}} {}",
            self.slow_by_pairs.len()
        );
        for (name, help, v) in [
            (
                "itd_storage_value_lookups_total",
                "Value-arena interning attempts.",
                self.storage.value_lookups,
            ),
            (
                "itd_storage_value_hits_total",
                "Value-arena attempts answered by an existing entry.",
                self.storage.value_hits,
            ),
            (
                "itd_storage_part_lookups_total",
                "Part-arena interning attempts.",
                self.storage.part_lookups,
            ),
            (
                "itd_storage_part_hits_total",
                "Part-arena attempts answered by an existing entry.",
                self.storage.part_hits,
            ),
            (
                "itd_storage_index_builds_total",
                "Residue indexes built from scratch.",
                self.storage.index_builds,
            ),
            (
                "itd_storage_index_reuses_total",
                "Operator calls served by a persistent index.",
                self.storage.index_reuses,
            ),
            (
                "itd_outcome_cache_hits_total",
                "Pairwise-outcome cache lookups answered by a cached outcome.",
                self.storage.outcome_hits,
            ),
            (
                "itd_outcome_cache_misses_total",
                "Pairwise-outcome cache lookups that fell through to derivation.",
                self.storage.outcome_misses,
            ),
            (
                "itd_outcome_cache_evictions_total",
                "Pairwise-outcome cache entries dropped by the capacity bound.",
                self.storage.outcome_evictions,
            ),
            (
                "itd_crt_cache_hits_total",
                "CRT-cache hits on the snapshotting thread.",
                self.crt.hits,
            ),
            (
                "itd_crt_cache_misses_total",
                "CRT-cache misses on the snapshotting thread.",
                self.crt.misses,
            ),
            (
                "itd_view_refreshes_total",
                "Registered-view refreshes observed (incremental and full).",
                self.view_refreshes,
            ),
            (
                "itd_view_full_refreshes_total",
                "View refreshes that fell back to full recomputation.",
                self.view_full_refreshes,
            ),
            (
                "itd_view_delta_rows_total",
                "Signed delta rows consumed by view refreshes.",
                self.view_delta_rows,
            ),
            (
                "itd_server_connections_total",
                "Query-service connections accepted.",
                self.server_connections,
            ),
            (
                "itd_server_requests_total",
                "Query-service requests submitted (before admission).",
                self.server_requests,
            ),
            (
                "itd_server_admitted_total",
                "Requests admitted past the cost budget.",
                self.server_admitted,
            ),
            (
                "itd_server_rejected_over_budget_total",
                "Requests rejected for exceeding the admission budget.",
                self.server_rejected_over_budget,
            ),
            (
                "itd_server_rejected_queue_full_total",
                "Requests rejected because the bounded queue was full.",
                self.server_rejected_queue_full,
            ),
            (
                "itd_server_timeouts_total",
                "Admitted requests cancelled by their deadline.",
                self.server_timeouts,
            ),
            (
                "itd_server_batches_total",
                "Batches dispatched against a shared snapshot.",
                self.server_batches,
            ),
            (
                "itd_server_batch_queries_total",
                "Requests carried by shared-snapshot batches.",
                self.server_batch_queries,
            ),
        ] {
            prom_scalar(&mut out, name, "counter", help, v);
        }
        for (name, help, v) in [
            (
                "itd_storage_value_distinct",
                "Distinct values interned.",
                self.storage.value_distinct,
            ),
            (
                "itd_storage_part_distinct",
                "Distinct temporal parts interned.",
                self.storage.part_distinct,
            ),
            (
                "itd_storage_arena_bytes",
                "Estimated bytes of interned arena payload.",
                self.storage.value_bytes + self.storage.part_bytes,
            ),
            (
                "itd_views_registered",
                "Views currently registered.",
                self.views_registered,
            ),
            (
                "itd_server_queue_depth",
                "Admission-queue depth at snapshot time.",
                self.server_queue_depth,
            ),
            (
                "itd_server_queue_depth_max",
                "High-water mark of the admission-queue depth.",
                self.server_queue_depth_max,
            ),
        ] {
            prom_scalar(&mut out, name, "gauge", help, v);
        }
        out
    }

    /// A `\top`-style summary: query count, latency/pairs/rows
    /// percentiles, resource gauges, and the per-op wall-time percentile
    /// table.
    pub fn render_top(&self) -> String {
        let mut out = String::new();
        if self.queries == 0 {
            return "no queries observed".into();
        }
        let _ = writeln!(out, "{} queries observed", self.queries);
        for (label, h, time) in [
            ("wall time", &self.query_wall, true),
            ("pairs", &self.query_pairs, false),
            ("peak rows", &self.query_rows, false),
        ] {
            let render = |v: u64| {
                if time {
                    format!("{:>10}", fmt_nanos(v))
                } else {
                    format!("{v:>10}")
                }
            };
            let _ = writeln!(
                out,
                "{label:<10} p50 ≤ {}   p90 ≤ {}   p99 ≤ {}",
                render(h.percentile(0.50)),
                render(h.percentile(0.90)),
                render(h.percentile(0.99)),
            );
        }
        let _ = writeln!(
            out,
            "tuples allocated: {}; process peak live rows: {}",
            self.tuples_allocated, self.peak_rows
        );
        let _ = writeln!(out, "\nper-op wall time (one observation per querying op):");
        let _ = writeln!(
            out,
            "{:<12} {:>8} {:>12} {:>12} {:>12}",
            "op", "queries", "p50 ≤", "p90 ≤", "p99 ≤"
        );
        for (kind, h) in &self.op_wall {
            if h.count() == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{:<12} {:>8} {:>12} {:>12} {:>12}",
                kind.name(),
                h.count(),
                fmt_nanos(h.percentile(0.50)),
                fmt_nanos(h.percentile(0.90)),
                fmt_nanos(h.percentile(0.99)),
            );
        }
        let _ = write!(out, "\ncumulative op counters:\n{}", self.totals);
        out
    }

    /// Renders both slow-query rankings as tables (worst first).
    pub fn render_slowlog(&self) -> String {
        if self.slow_by_time.is_empty() {
            return "slow-query log is empty".into();
        }
        let mut out = String::new();
        for (title, entries) in [
            ("worst by wall time", &self.slow_by_time),
            ("worst by pairs", &self.slow_by_pairs),
        ] {
            let _ = writeln!(out, "{title}:");
            let _ = writeln!(
                out,
                "{:<4} {:>12} {:>10} {:>10} {:>10}  query",
                "#", "wall", "pairs", "rows", "tuples"
            );
            for (i, e) in entries.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "{:<4} {:>12} {:>10} {:>10} {:>10}  {}",
                    i + 1,
                    fmt_nanos(e.wall_nanos),
                    e.pairs,
                    e.resources.peak_live_rows,
                    e.resources.tuples_allocated,
                    e.query,
                );
            }
            let _ = writeln!(out);
        }
        out.pop();
        out
    }

    /// Exports both slow-query rankings as JSON lines (one object per
    /// entry, tagged with its ranking).
    pub fn slow_json_lines(&self) -> String {
        let mut out = String::new();
        for (rank, entries) in [("time", &self.slow_by_time), ("pairs", &self.slow_by_pairs)] {
            for e in entries.iter() {
                let line = e.to_json_line();
                // Tag the ranking without reserializing the entry.
                let _ = writeln!(
                    out,
                    "{{\"rank\":\"{rank}\",{}",
                    line.strip_prefix('{').unwrap_or(&line)
                );
            }
        }
        out
    }

    /// ASCII rendering of the three query-level histograms.
    pub fn render_histograms(&self) -> String {
        let mut out = String::new();
        for (label, h, time) in [
            ("query wall time", &self.query_wall, true),
            ("query pairs", &self.query_pairs, false),
            ("query peak rows", &self.query_rows, false),
        ] {
            let _ = writeln!(out, "{label} ({} observations):", h.count());
            let Some(last) = h.max_bucket() else {
                let _ = writeln!(out, "  (empty)\n");
                continue;
            };
            let peak = h.buckets.iter().copied().max().unwrap_or(1).max(1);
            for i in 0..=last {
                let c = h.buckets[i];
                if c == 0 {
                    continue;
                }
                let bound = if time {
                    fmt_nanos(bucket_le(i))
                } else {
                    bucket_le(i).to_string()
                };
                let bar = "#".repeat(((c * 40).div_ceil(peak)) as usize);
                let _ = writeln!(out, "  ≤ {bound:>10} {c:>8} {bar}");
            }
            let _ = writeln!(out);
        }
        out.pop();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_scheme_is_power_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_le(0), 0);
        assert_eq!(bucket_le(1), 1);
        assert_eq!(bucket_le(2), 3);
        assert_eq!(bucket_le(10), 1023);
        assert_eq!(bucket_le(64), u64::MAX);
        // Every value lands in the bucket whose bounds contain it.
        for v in [0u64, 1, 2, 3, 7, 8, 100, 1 << 40, u64::MAX] {
            let b = bucket_of(v);
            assert!(v <= bucket_le(b));
            if b > 0 {
                assert!(v > bucket_le(b - 1));
            }
        }
    }

    #[test]
    fn percentiles_are_exact_on_synthetic_input() {
        let h = Histogram::default();
        for v in [1u64, 2, 3, 4] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 4);
        assert_eq!(s.sum, 10);
        // Ranks: p50 → rank 2 → value 2 → bucket le 3; p99 → rank 4 →
        // value 4 → bucket le 7.
        assert_eq!(s.percentile(0.50), 3);
        assert_eq!(s.percentile(0.99), 7);
        assert_eq!(s.percentile(1.0), 7);
        assert_eq!(HistogramSnapshot::default().percentile(0.5), 0);
        // Monotone in q.
        assert!(s.percentile(0.5) <= s.percentile(0.9));
        assert!(s.percentile(0.9) <= s.percentile(0.99));
    }

    fn fake_stats(calls: u64, pairs: u64, out: u64) -> StatsSnapshot {
        let mut s = StatsSnapshot::default();
        s.ops[OpKind::Join.index()].calls = calls;
        s.ops[OpKind::Join.index()].pairs = pairs;
        s.ops[OpKind::Join.index()].tuples_out = out;
        s.ops[OpKind::Join.index()].nanos = 17;
        s
    }

    fn observe(reg: &MetricsRegistry, name: &str, wall: u64, pairs: u64, rows: u64) {
        let stats = fake_stats(1, pairs, rows);
        let resources = QueryResourceReport {
            peak_live_rows: rows,
            tuples_allocated: rows,
            ..QueryResourceReport::default()
        };
        let render = || (name.to_owned(), format!("plan of {name}"));
        reg.observe_query(QueryObservation {
            render: &render,
            wall_nanos: wall,
            stats: &stats,
            resources: &resources,
        });
    }

    #[test]
    fn registry_totals_are_exact_sums() {
        let reg = MetricsRegistry::new();
        observe(&reg, "a", 100, 7, 3);
        observe(&reg, "b", 50, 11, 9);
        let snap = reg.snapshot();
        assert_eq!(snap.queries, 2);
        assert_eq!(snap.totals.op(OpKind::Join).calls, 2);
        assert_eq!(snap.totals.op(OpKind::Join).pairs, 18);
        assert_eq!(snap.totals.total_pairs(), 18);
        assert_eq!(snap.tuples_allocated, 12);
        assert_eq!(snap.peak_rows, 9);
        assert_eq!(snap.query_pairs.count(), 2);
        // One per-op observation per query that invoked the op.
        let join = snap
            .op_wall
            .iter()
            .find(|(k, _)| *k == OpKind::Join)
            .map(|(_, h)| h)
            .unwrap();
        assert_eq!(join.count(), 2);
        let select = snap
            .op_wall
            .iter()
            .find(|(k, _)| *k == OpKind::Select)
            .map(|(_, h)| h)
            .unwrap();
        assert_eq!(select.count(), 0);
    }

    #[test]
    fn slow_log_ranks_and_truncates() {
        let reg = MetricsRegistry::new();
        for i in 0..(SLOW_LOG_CAP as u64 + 4) {
            // Wall time descending, pairs ascending: the two rankings must
            // disagree about which queries to keep.
            observe(&reg, &format!("q{i}"), 1000 - i, i, 1);
        }
        let snap = reg.snapshot();
        assert_eq!(snap.slow_by_time.len(), SLOW_LOG_CAP);
        assert_eq!(snap.slow_by_pairs.len(), SLOW_LOG_CAP);
        // Worst-by-time keeps the earliest (slowest) queries, worst first.
        assert_eq!(snap.slow_by_time[0].query, "q0");
        assert!(snap
            .slow_by_time
            .windows(2)
            .all(|w| w[0].wall_nanos >= w[1].wall_nanos));
        // Worst-by-pairs keeps the latest queries, worst first.
        assert_eq!(snap.slow_by_pairs[0].query, "q11");
        assert!(snap
            .slow_by_pairs
            .windows(2)
            .all(|w| w[0].pairs >= w[1].pairs));
    }

    #[test]
    fn without_timing_scrubs_nondeterminism() {
        let reg = MetricsRegistry::new();
        observe(&reg, "a", 123, 7, 3);
        let snap = reg.snapshot();
        let e = snap.slow_by_time[0].without_timing();
        assert_eq!(e.wall_nanos, 0);
        assert_eq!(e.stats.total_wall_time(), Duration::ZERO);
        assert_eq!(e.pairs, 7);
        assert_eq!(e.resources.peak_live_rows, 3);
        let r = QueryResourceReport {
            peak_live_rows: 5,
            tuples_allocated: 6,
            intern_hits: 7,
            value_lookups: 100,
            crt_hits: 3,
            arena_bytes: 4096,
            ..QueryResourceReport::default()
        };
        let scrubbed = r.without_timing();
        assert_eq!(scrubbed.peak_live_rows, 5);
        assert_eq!(scrubbed.tuples_allocated, 6);
        assert_eq!(scrubbed.intern_hits, 7);
        assert_eq!(scrubbed.value_lookups, 0);
        assert_eq!(scrubbed.crt_hits, 0);
        assert_eq!(scrubbed.arena_bytes, 0);
    }

    #[test]
    fn prometheus_rendering_is_well_formed() {
        let reg = MetricsRegistry::new();
        observe(&reg, "a", 100, 7, 3);
        observe(&reg, "b", 50, 11, 9);
        let text = reg.snapshot().to_prometheus();
        let mut names = std::collections::BTreeSet::new();
        let mut typed = std::collections::BTreeSet::new();
        for line in text.lines() {
            assert!(!line.is_empty(), "no blank lines in exposition output");
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split(' ');
                let name = it.next().unwrap();
                let kind = it.next().unwrap();
                assert!(
                    ["counter", "gauge", "histogram"].contains(&kind),
                    "unknown metric type {kind}"
                );
                typed.insert(name.to_string());
                continue;
            }
            if line.starts_with("# HELP ") {
                continue;
            }
            // Sample line: name{labels} value
            let (series, value) = line.rsplit_once(' ').expect("sample has a value");
            assert!(
                value.parse::<f64>().is_ok(),
                "unparseable sample value {value:?} in {line:?}"
            );
            let name = series.split('{').next().unwrap();
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad metric name {name:?}"
            );
            let family = name
                .trim_end_matches("_bucket")
                .trim_end_matches("_sum")
                .trim_end_matches("_count");
            names.insert(family.to_string());
        }
        // Every sample belongs to a declared family.
        for n in &names {
            assert!(typed.contains(n), "series {n} missing # TYPE declaration");
        }
        // The headline families are present.
        for expected in [
            "itd_op_pairs_total",
            "itd_queries_total",
            "itd_query_wall_seconds",
            "itd_query_pairs",
            "itd_op_wall_p99_seconds",
            "itd_storage_value_lookups_total",
            "itd_outcome_cache_hits_total",
        ] {
            assert!(typed.contains(expected), "missing family {expected}");
        }
        // Histogram buckets are cumulative and end at +Inf == _count.
        let buckets: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("itd_query_pairs_bucket"))
            .map(|l| l.rsplit_once(' ').unwrap().1.parse().unwrap())
            .collect();
        assert!(buckets.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*buckets.last().unwrap(), 2);
    }

    #[test]
    fn renderings_cover_observed_queries() {
        let reg = MetricsRegistry::new();
        observe(&reg, "p(t) and q(t)", 100, 7, 3);
        let snap = reg.snapshot();
        assert!(snap.render_top().contains("1 queries observed"));
        assert!(snap.render_slowlog().contains("p(t) and q(t)"));
        assert!(snap.render_histograms().contains("query wall time"));
        let json = snap.slow_json_lines();
        assert_eq!(json.lines().count(), 2, "one line per ranking");
        assert!(json.contains("\"rank\":\"time\""));
        assert!(json.contains("\"query\":\"p(t) and q(t)\""));
        let empty = MetricsRegistry::new().snapshot();
        assert_eq!(empty.render_top(), "no queries observed");
        assert_eq!(empty.render_slowlog(), "slow-query log is empty");
    }
}

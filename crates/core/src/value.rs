//! Nontemporal data values (the set `D` of Definition 2.2).

use std::fmt;

/// A value of the generic (nontemporal) sort.
///
/// The paper leaves the data domain `D` abstract; integers and strings
/// cover the examples (robot names, task ids, train types) and everything
/// the query layer needs. `Value` is totally ordered so relations can be
/// kept sorted and deduplicated.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Value {
    /// An integer datum.
    Int(i64),
    /// A string datum.
    Str(String),
}

impl Value {
    /// Convenience constructor for string data.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// The integer inside, if any.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Str(_) => None,
        }
    }

    /// The string inside, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Int(_) => None,
            Value::Str(s) => Some(s),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3), Value::Int(3));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(String::from("y")), Value::str("y"));
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_str(), None);
        assert_eq!(Value::str("a").as_str(), Some("a"));
        assert_eq!(Value::str("a").as_int(), None);
    }

    #[test]
    fn ordering_is_total() {
        let mut vs = vec![
            Value::str("b"),
            Value::Int(2),
            Value::str("a"),
            Value::Int(1),
        ];
        vs.sort();
        assert_eq!(
            vs,
            vec![
                Value::Int(1),
                Value::Int(2),
                Value::str("a"),
                Value::str("b")
            ]
        );
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::str("robot1").to_string(), "robot1");
    }
}

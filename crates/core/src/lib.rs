//! Generalized temporal relations — the core data model and relational
//! algebra of *Handling Infinite Temporal Data* (Kabanza, Stevenne, Wolper,
//! PODS 1990).
//!
//! # The model
//!
//! A [`GenTuple`] (Definition 2.2) assigns to each of `k` temporal
//! attributes a linear repeating point (an [`itd_lrp::Lrp`], i.e. a set
//! `{c + kn | n ∈ Z}`), to each of `l` data attributes a concrete
//! [`Value`], and attaches a conjunction of restricted constraints
//! (an [`itd_constraint::ConstraintSystem`]) on the temporal attributes.
//! It denotes the — generally infinite — set of ordinary tuples obtained by
//! picking one element from every lrp such that the constraints hold.
//!
//! A [`GenRelation`] (Definition 2.3) is a finite set of generalized tuples
//! of the same [`Schema`]; its denotation is the union of its tuples'.
//!
//! # The algebra
//!
//! Every operation of relational algebra is closed on generalized relations
//! (§3 of the paper) and implemented here:
//!
//! | paper §  | operation                  | entry point                         |
//! |----------|----------------------------|-------------------------------------|
//! | 3.1      | union                      | [`GenRelation::union`]              |
//! | 3.2      | intersection               | [`GenRelation::intersect`]          |
//! | 3.3      | difference                 | [`GenRelation::difference`]         |
//! | 3.4      | projection                 | [`GenRelation::project`]            |
//! | 3.5      | selection                  | [`GenRelation::select_temporal`], [`GenRelation::select_data`] |
//! | 3.6      | cross product              | [`GenRelation::cross_product`]      |
//! | 3.7      | join                       | [`GenRelation::join_on`]            |
//! | A.6      | complement (temporal)      | [`GenRelation::complement_temporal`]|
//! | Thm 3.5  | nonemptiness               | [`GenRelation::denotes_empty`]      |
//!
//! Projection, difference, emptiness and complement rely on **normal form**
//! (Definition 3.2): all lrps of a tuple share one period `k` and all
//! constraint constants are congruent to the attribute offsets modulo `k`.
//! [`GenTuple::normalize`] implements the five-step algorithm of
//! Theorem 3.2; Figure 2's counterexample — where real-valued projection is
//! wrong on the integer grid — is covered in this crate's tests.
//!
//! # Finite-window oracle
//!
//! [`GenRelation::materialize`] enumerates the concrete tuples whose
//! temporal values fall in a finite window. It is deliberately brute-force:
//! tests and benchmarks use it as an independent semantics oracle against
//! which every symbolic operation is checked.
//!
//! # Columnar storage
//!
//! Relations are `Arc`-backed snapshots over a columnar, globally interned
//! store: cloning is `O(1)`, rows are read through the [`GenRelation::rows`]
//! cursor or typed [`GenRelation::columns`] slices, and residue indexes
//! persist on the store across operator calls. See [`storage_stats`] for
//! the process-wide arena and index-reuse counters.

mod compact;
mod enumerate;
mod error;
mod intern;
mod kernel;
mod minimize;
mod normalize;
mod relation;
mod schema;
mod store;
mod tuple;
mod value;

pub mod exec;
pub mod index;
pub mod metrics;
pub mod ops;
pub mod trace;

pub use enumerate::ConcreteTuple;
pub use error::CoreError;
pub use exec::ViewRefreshScope;
pub use exec::{CancelToken, ExecContext, OpKind, OpSnapshot, StatsSnapshot};
pub use index::RelationIndex;
pub use metrics::{
    Histogram, HistogramSnapshot, MetricsRegistry, QueryObservation, QueryResourceReport,
    RegistrySnapshot, ResourceCollector, SlowQueryEntry,
};
pub use normalize::grid_view;
#[cfg(feature = "legacy-api")]
#[allow(deprecated)]
pub use relation::GenRelationBuilder;
pub use relation::{GenRelation, RelationBuilder};
pub use schema::Schema;
pub use store::{
    outcome_cache_len, outcome_cache_set_cap, resolve_value, storage_stats, storage_stats_reset,
    Columns, DataColumn, RowRef, Rows, StorageStats, TemporalColumn, TemporalPartId, ValueId,
    OUTCOME_CACHE_CAP,
};
pub use trace::{NodeSpan, Span, SpanLabel, Trace};
pub use tuple::{GenTuple, GenTupleBuilder};
pub use value::Value;

// Re-export the building blocks so that downstream crates only need
// `itd-core` for most tasks.
pub use itd_constraint::{Atom, Bound, ConstraintSystem};
pub use itd_lrp::Lrp;

/// Result alias for core operations.
pub type Result<T> = std::result::Result<T, CoreError>;

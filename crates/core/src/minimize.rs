//! Relation minimization: coalescing refined residue classes.
//!
//! The paper's union "would in practice also eliminate the redundancies
//! that might appear" (§3.1) but leaves the problem open. Two practical
//! pieces are implemented in this crate:
//!
//! * subsumption pruning, in [`crate::GenRelation::simplify`];
//! * **coalescing** (this module): the inverse of Lemma 3.1 — when a group
//!   of tuples is identical except for one temporal column whose lrps are
//!   *all* the residue classes `c, c+g, …, c+(k/g−1)·g` of a coarser lrp
//!   `c + g·n`, the group is replaced by the single coarser tuple.
//!   Normalization and complement systematically produce such groups, so
//!   coalescing after them often shrinks relations by the full `k/kᵢ`
//!   refinement factor.

use std::collections::BTreeMap;

use itd_lrp::Lrp;

use crate::relation::GenRelation;
use crate::tuple::GenTuple;
use crate::Result;

/// Positive divisors of `k`, ascending, by trial division up to `√k`
/// (each small divisor `d` pairs with the large divisor `k/d`).
fn divisors(k: i64) -> Vec<i64> {
    debug_assert!(k > 0);
    let mut small = Vec::new();
    let mut large = Vec::new();
    let mut d = 1;
    while d * d <= k {
        if k % d == 0 {
            small.push(d);
            if d * d != k {
                large.push(k / d);
            }
        }
        d += 1;
    }
    small.extend(large.into_iter().rev());
    small
}

/// One coalescing pass over one column; returns `true` if anything merged.
fn coalesce_column(tuples: &mut Vec<GenTuple>, col: usize) -> Result<bool> {
    // Group by everything except the lrp at `col`.
    type Key = (
        Vec<Lrp>,
        itd_constraint::ConstraintSystem,
        Vec<crate::Value>,
    );
    /// Offset, period and tuple index of one group member.
    type Member = (i64, i64, usize);
    let mut groups: BTreeMap<Key, Vec<Member>> = BTreeMap::new();
    for (idx, t) in tuples.iter().enumerate() {
        let l = t.lrps()[col];
        if l.is_point() {
            continue;
        }
        let mut rest = t.lrps().to_vec();
        rest.remove(col);
        let key: Key = (rest, t.constraints().clone(), t.data().to_vec());
        groups
            .entry(key)
            .or_default()
            .push((l.offset(), l.period(), idx));
    }

    let mut to_remove: Vec<usize> = Vec::new();
    let mut to_add: Vec<GenTuple> = Vec::new();
    for (_, members) in groups {
        // Only merge among members with one common period.
        let mut by_period: BTreeMap<i64, Vec<(i64, usize)>> = BTreeMap::new();
        for (offset, period, idx) in members {
            by_period.entry(period).or_default().push((offset, idx));
        }
        for (k, offs) in by_period {
            let mut available: BTreeMap<i64, usize> =
                offs.iter().map(|&(o, idx)| (o, idx)).collect();
            for g in divisors(k) {
                if g == k {
                    break; // no coarsening left
                }
                let classes = k / g;
                for c in 0..g {
                    let wanted: Vec<i64> = (0..classes).map(|j| c + j * g).collect();
                    if wanted.iter().all(|o| available.contains_key(o)) {
                        let mut removed_idxs = Vec::with_capacity(wanted.len());
                        for o in &wanted {
                            removed_idxs.push(available.remove(o).expect("checked"));
                        }
                        // Build the coarser tuple from the first member.
                        let template = &tuples[removed_idxs[0]];
                        let mut lrps = template.lrps().to_vec();
                        lrps[col] = Lrp::new(c, g)?;
                        to_add.push(GenTuple::from_parts(
                            lrps,
                            template.constraints().clone(),
                            template.data().to_vec(),
                        )?);
                        to_remove.extend(removed_idxs);
                    }
                }
            }
        }
    }
    if to_remove.is_empty() {
        return Ok(false);
    }
    to_remove.sort_unstable();
    for idx in to_remove.into_iter().rev() {
        tuples.remove(idx);
    }
    tuples.extend(to_add);
    Ok(true)
}

/// Coalesces complete groups of residue classes into coarser tuples, across
/// all columns, to a fixpoint. Returns a semantically equal relation with
/// at most as many tuples.
pub(crate) fn coalesce(rel: &GenRelation) -> Result<GenRelation> {
    let mut tuples = rel.rows_slice().to_vec();
    let cols = rel.schema().temporal();
    loop {
        let mut changed = false;
        for col in 0..cols {
            changed |= coalesce_column(&mut tuples, col)?;
        }
        if !changed {
            break;
        }
    }
    GenRelation::new(rel.schema(), tuples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use itd_constraint::Atom;

    fn lrp(c: i64, k: i64) -> Lrp {
        Lrp::new(c, k).unwrap()
    }

    #[test]
    fn divisors_ascending_and_complete() {
        assert_eq!(divisors(1), vec![1]);
        assert_eq!(divisors(12), vec![1, 2, 3, 4, 6, 12]);
        assert_eq!(divisors(36), vec![1, 2, 3, 4, 6, 9, 12, 18, 36]);
        assert_eq!(divisors(97), vec![1, 97]); // prime
        for k in 1..=200 {
            let fast = divisors(k);
            let naive: Vec<i64> = (1..=k).filter(|d| k % d == 0).collect();
            assert_eq!(fast, naive, "k = {k}");
        }
    }

    #[test]
    fn refine_then_coalesce_roundtrips() {
        let original = GenTuple::builder()
            .lrps(vec![lrp(1, 3)])
            .atoms([Atom::ge(0, 0)])
            .build()
            .unwrap();
        // Refine to period 12 (Lemma 3.1) → 4 tuples.
        let refined: Vec<GenTuple> = lrp(1, 3)
            .refine_to_period(12)
            .unwrap()
            .into_iter()
            .map(|l| {
                GenTuple::builder()
                    .lrps(vec![l])
                    .atoms([Atom::ge(0, 0)])
                    .build()
                    .unwrap()
            })
            .collect();
        let rel = GenRelation::new(Schema::new(1, 0), refined).unwrap();
        let coalesced = coalesce(&rel).unwrap();
        assert_eq!(coalesced.tuple_count(), 1);
        assert_eq!(coalesced.rows_slice()[0], original);
    }

    #[test]
    fn partial_groups_do_not_merge() {
        // Only 3 of the 4 period-12 classes of 1+3n: no merge possible to
        // period 3, but 1+12n and 7+12n merge to 1+6n.
        let rel = GenRelation::new(
            Schema::new(1, 0),
            vec![
                GenTuple::unconstrained(vec![lrp(1, 12)], vec![]),
                GenTuple::unconstrained(vec![lrp(4, 12)], vec![]),
                GenTuple::unconstrained(vec![lrp(7, 12)], vec![]),
            ],
        )
        .unwrap();
        let c = coalesce(&rel).unwrap();
        assert_eq!(c.tuple_count(), 2);
        assert_eq!(c.materialize(-30, 30), rel.materialize(-30, 30));
        assert!(c.rows_slice().iter().any(|t| t.lrps()[0] == lrp(1, 6)));
        assert!(c.rows_slice().iter().any(|t| t.lrps()[0] == lrp(4, 12)));
    }

    #[test]
    fn different_constraints_block_merging() {
        let rel = GenRelation::new(
            Schema::new(1, 0),
            vec![
                GenTuple::builder()
                    .lrps(vec![lrp(0, 2)])
                    .atoms([Atom::ge(0, 0)])
                    .build()
                    .unwrap(),
                GenTuple::builder()
                    .lrps(vec![lrp(1, 2)])
                    .atoms([Atom::ge(0, 5)])
                    .build()
                    .unwrap(),
            ],
        )
        .unwrap();
        let c = coalesce(&rel).unwrap();
        assert_eq!(c.tuple_count(), 2);
    }

    #[test]
    fn multi_column_fixpoint() {
        // 2-column: refine column 0 of [2n, 3n+1] into period 4, column 1
        // into period 6 — coalescing must undo both, across passes.
        let mut tuples = Vec::new();
        for l0 in lrp(0, 2).refine_to_period(4).unwrap() {
            for l1 in lrp(1, 3).refine_to_period(6).unwrap() {
                tuples.push(GenTuple::unconstrained(vec![l0, l1], vec![]));
            }
        }
        let rel = GenRelation::new(Schema::new(2, 0), tuples).unwrap();
        assert_eq!(rel.tuple_count(), 4);
        let c = coalesce(&rel).unwrap();
        assert_eq!(c.tuple_count(), 1);
        assert_eq!(c.rows_slice()[0].lrps(), &[lrp(0, 2), lrp(1, 3)]);
    }

    #[test]
    fn full_cover_collapses_to_z() {
        // All residues mod 3 → 1 + 1·n = Z.
        let rel = GenRelation::new(
            Schema::new(1, 0),
            vec![
                GenTuple::unconstrained(vec![lrp(0, 3)], vec![]),
                GenTuple::unconstrained(vec![lrp(1, 3)], vec![]),
                GenTuple::unconstrained(vec![lrp(2, 3)], vec![]),
            ],
        )
        .unwrap();
        let c = coalesce(&rel).unwrap();
        assert_eq!(c.tuple_count(), 1);
        assert_eq!(c.rows_slice()[0].lrps()[0], Lrp::all());
    }

    #[test]
    fn complement_output_shrinks() {
        // Complement of a sparse relation produces many unconstrained
        // extensions; coalescing collapses them.
        let r = GenRelation::new(
            Schema::new(1, 0),
            vec![GenTuple::builder()
                .lrps(vec![lrp(0, 6)])
                .atoms([Atom::ge(0, 0)])
                .build()
                .unwrap()],
        )
        .unwrap();
        let comp = r.complement_temporal().unwrap();
        let c = coalesce(&comp).unwrap();
        assert!(
            c.tuple_count() < comp.tuple_count(),
            "{} < {}",
            c.tuple_count(),
            comp.tuple_count()
        );
        assert_eq!(c.materialize(-20, 20), comp.materialize(-20, 20));
    }

    #[test]
    fn points_and_data_untouched() {
        let rel = GenRelation::new(
            Schema::new(1, 1),
            vec![
                GenTuple::unconstrained(vec![Lrp::point(3)], vec![crate::Value::str("a")]),
                GenTuple::unconstrained(vec![lrp(0, 2)], vec![crate::Value::str("a")]),
                GenTuple::unconstrained(vec![lrp(1, 2)], vec![crate::Value::str("b")]),
            ],
        )
        .unwrap();
        let c = coalesce(&rel).unwrap();
        assert_eq!(c.tuple_count(), 3); // data values differ; the point is skipped
    }
}

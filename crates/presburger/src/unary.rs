//! Unary Presburger predicates (Theorem 2.1).

use itd_core::{GenRelation, GenTuple, Lrp, Schema};
use itd_numth::{div_ceil, div_floor, solve_lin_congruence};

use crate::Result;

/// A basic unary Presburger formula over one integer variable `v`
/// (the four shapes of the proof of Theorem 2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryAtom {
    /// `k·v = c`
    Eq {
        /// Coefficient `k`.
        k: i64,
        /// Constant `c`.
        c: i64,
    },
    /// `k·v < c`
    Lt {
        /// Coefficient `k`.
        k: i64,
        /// Constant `c`.
        c: i64,
    },
    /// `k·v > c`
    Gt {
        /// Coefficient `k`.
        k: i64,
        /// Constant `c`.
        c: i64,
    },
    /// `k1·v ≡ c (mod k2)`
    ModEq {
        /// Coefficient `k1`.
        k1: i64,
        /// Modulus `k2` (nonzero).
        k2: i64,
        /// Constant `c`.
        c: i64,
    },
}

impl UnaryAtom {
    /// Direct evaluation at `v`.
    pub fn eval(&self, v: i64) -> bool {
        match *self {
            UnaryAtom::Eq { k, c } => k as i128 * v as i128 == c as i128,
            UnaryAtom::Lt { k, c } => (k as i128 * v as i128) < c as i128,
            UnaryAtom::Gt { k, c } => (k as i128 * v as i128) > c as i128,
            UnaryAtom::ModEq { k1, k2, c } => {
                if k2 == 0 {
                    k1 as i128 * v as i128 == c as i128
                } else {
                    (k1 as i128 * v as i128 - c as i128).rem_euclid(k2.unsigned_abs() as i128) == 0
                }
            }
        }
    }

    /// The Theorem 2.1 translation of one basic formula to a generalized
    /// relation with one temporal attribute and restricted constraints.
    ///
    /// # Errors
    /// Arithmetic overflow.
    pub fn to_relation(&self) -> Result<GenRelation> {
        let schema = Schema::new(1, 0);
        let mut rel = GenRelation::empty(schema);
        match *self {
            // Case 1: k·v = c — the point c/k when integral, else empty.
            UnaryAtom::Eq { k, c } => {
                if k == 0 {
                    if c == 0 {
                        rel.push(GenTuple::unconstrained(vec![Lrp::all()], vec![]))?;
                    }
                } else if c % k == 0 {
                    rel.push(GenTuple::unconstrained(vec![Lrp::point(c / k)], vec![]))?;
                }
            }
            // Case 2: k·v < c ⇔ k·v ≤ c − 1 ⇔ v ≤ ⌊(c−1)/k⌋ (k > 0)
            //                                  v ≥ ⌈(c−1)/k⌉ (k < 0).
            UnaryAtom::Lt { k, c } => {
                let c1 = c.checked_sub(1).ok_or(itd_numth::NumthError::Overflow)?;
                match k.cmp(&0) {
                    std::cmp::Ordering::Greater => rel.push(
                        GenTuple::builder()
                            .lrps(vec![Lrp::all()])
                            .atoms([itd_core::Atom::le(0, div_floor(c1, k)?)])
                            .build()?,
                    )?,
                    std::cmp::Ordering::Less => rel.push(
                        GenTuple::builder()
                            .lrps(vec![Lrp::all()])
                            .atoms([itd_core::Atom::ge(0, div_ceil(c1, k)?)])
                            .build()?,
                    )?,
                    std::cmp::Ordering::Equal => {
                        if 0 < c {
                            rel.push(GenTuple::unconstrained(vec![Lrp::all()], vec![]))?;
                        }
                    }
                }
            }
            // Case 3: symmetric.
            UnaryAtom::Gt { k, c } => {
                let c1 = c.checked_add(1).ok_or(itd_numth::NumthError::Overflow)?;
                match k.cmp(&0) {
                    std::cmp::Ordering::Greater => rel.push(
                        GenTuple::builder()
                            .lrps(vec![Lrp::all()])
                            .atoms([itd_core::Atom::ge(0, div_ceil(c1, k)?)])
                            .build()?,
                    )?,
                    std::cmp::Ordering::Less => rel.push(
                        GenTuple::builder()
                            .lrps(vec![Lrp::all()])
                            .atoms([itd_core::Atom::le(0, div_floor(c1, k)?)])
                            .build()?,
                    )?,
                    std::cmp::Ordering::Equal => {
                        if 0 > c {
                            rel.push(GenTuple::unconstrained(vec![Lrp::all()], vec![]))?;
                        }
                    }
                }
            }
            // Case 4: k1·v ≡ c (mod k2) — a single lrp (the paper's lrp
            // intersection argument, realized as a linear congruence).
            UnaryAtom::ModEq { k1, k2, c } => {
                if k2 == 0 {
                    return UnaryAtom::Eq { k: k1, c }.to_relation();
                }
                if let Some(cong) = solve_lin_congruence(k1, c, k2)? {
                    let lrp = if cong.modulus() == 1 {
                        Lrp::all()
                    } else {
                        Lrp::new(cong.residue(), cong.modulus())?
                    };
                    rel.push(GenTuple::unconstrained(vec![lrp], vec![]))?;
                }
            }
        }
        Ok(rel)
    }
}

/// A quantifier-free unary Presburger formula: boolean combinations of
/// [`UnaryAtom`]s.
///
/// # Examples
/// ```
/// use itd_presburger::{UnaryAtom, UnaryFormula};
/// // "multiples of 3 that are not multiples of 6"
/// let f = UnaryFormula::and(
///     UnaryFormula::atom(UnaryAtom::ModEq { k1: 1, k2: 3, c: 0 }),
///     UnaryFormula::not(UnaryFormula::atom(UnaryAtom::ModEq { k1: 1, k2: 6, c: 0 })),
/// );
/// let rel = f.to_relation().unwrap(); // Theorem 2.1, constructively
/// assert!(rel.contains(&[9], &[]) && !rel.contains(&[12], &[]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnaryFormula {
    /// A basic formula.
    Atom(UnaryAtom),
    /// Negation.
    Not(Box<UnaryFormula>),
    /// Conjunction.
    And(Box<UnaryFormula>, Box<UnaryFormula>),
    /// Disjunction.
    Or(Box<UnaryFormula>, Box<UnaryFormula>),
}

impl UnaryFormula {
    /// Wraps an atom.
    pub fn atom(a: UnaryAtom) -> UnaryFormula {
        UnaryFormula::Atom(a)
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: UnaryFormula) -> UnaryFormula {
        UnaryFormula::Not(Box::new(f))
    }

    /// Conjunction.
    pub fn and(a: UnaryFormula, b: UnaryFormula) -> UnaryFormula {
        UnaryFormula::And(Box::new(a), Box::new(b))
    }

    /// Disjunction.
    pub fn or(a: UnaryFormula, b: UnaryFormula) -> UnaryFormula {
        UnaryFormula::Or(Box::new(a), Box::new(b))
    }

    /// Direct evaluation at `v` (the oracle the translation is tested
    /// against).
    pub fn eval(&self, v: i64) -> bool {
        match self {
            UnaryFormula::Atom(a) => a.eval(v),
            UnaryFormula::Not(f) => !f.eval(v),
            UnaryFormula::And(a, b) => a.eval(v) && b.eval(v),
            UnaryFormula::Or(a, b) => a.eval(v) || b.eval(v),
        }
    }

    /// Theorem 2.1, constructive direction: the equivalent generalized
    /// relation, built through the core algebra (∨ → union, ∧ →
    /// intersection, ¬ → complement).
    ///
    /// # Errors
    /// Arithmetic overflow; complement extension limits for enormous
    /// moduli.
    pub fn to_relation(&self) -> Result<GenRelation> {
        match self {
            UnaryFormula::Atom(a) => a.to_relation(),
            UnaryFormula::Not(f) => f.to_relation()?.complement_temporal(),
            UnaryFormula::And(a, b) => a.to_relation()?.intersect(&b.to_relation()?),
            UnaryFormula::Or(a, b) => a.to_relation()?.union(&b.to_relation()?),
        }
    }

    /// Decides `∃v. φ(v)` — satisfiability over `Z` — by compiling to a
    /// generalized relation and checking nonemptiness (Theorem 3.5). A
    /// complete decision procedure for the quantifier-free unary fragment.
    ///
    /// # Errors
    /// Arithmetic overflow; complement extension limits.
    pub fn satisfiable(&self) -> Result<bool> {
        Ok(!self.to_relation()?.denotes_empty()?)
    }

    /// Decides `∀v. φ(v)` — validity over `Z` — as unsatisfiability of the
    /// negation.
    ///
    /// # Errors
    /// See [`UnaryFormula::satisfiable`].
    pub fn valid(&self) -> Result<bool> {
        Ok(!UnaryFormula::not(self.clone()).satisfiable()?)
    }

    /// Decides whether two formulas denote the same subset of `Z`
    /// (emptiness of the symmetric difference, computed with the actual
    /// §3.3 difference operation).
    ///
    /// # Errors
    /// See [`UnaryFormula::satisfiable`].
    pub fn equivalent(&self, other: &UnaryFormula) -> Result<bool> {
        let a = self.to_relation()?;
        let b = other.to_relation()?;
        Ok(a.difference(&b)?.denotes_empty()? && b.difference(&a)?.denotes_empty()?)
    }

    /// Produces a witness `v` with `φ(v)`, if one exists.
    ///
    /// # Errors
    /// See [`UnaryFormula::satisfiable`].
    pub fn witness(&self) -> Result<Option<i64>> {
        let rel = self.to_relation()?;
        for row in rel.rows() {
            let t = row.to_tuple();
            if t.is_empty()? {
                continue;
            }
            for nt in t.normalize()? {
                let (k, anchors, grid) = itd_core::grid_view(&nt)?;
                if let Some(sol) = grid.solution().map_err(itd_core::CoreError::Numth)? {
                    let v = anchors[0] + k * sol[0];
                    debug_assert!(self.eval(v));
                    return Ok(Some(v));
                }
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn check(f: &UnaryFormula, lo: i64, hi: i64) {
        let rel = f.to_relation().unwrap();
        for v in lo..=hi {
            assert_eq!(
                rel.contains(&[v], &[]),
                f.eval(v),
                "{f:?} disagrees at v = {v}"
            );
        }
    }

    #[test]
    fn atom_eq() {
        check(&UnaryFormula::atom(UnaryAtom::Eq { k: 3, c: 9 }), -20, 20);
        check(&UnaryFormula::atom(UnaryAtom::Eq { k: 3, c: 10 }), -20, 20); // empty
        check(&UnaryFormula::atom(UnaryAtom::Eq { k: -2, c: 6 }), -20, 20);
        check(&UnaryFormula::atom(UnaryAtom::Eq { k: 0, c: 0 }), -20, 20); // full
        check(&UnaryFormula::atom(UnaryAtom::Eq { k: 0, c: 5 }), -20, 20); // empty
    }

    #[test]
    fn atom_lt_gt_with_signs() {
        for k in [-3, -1, 1, 2, 3] {
            for c in [-7, -1, 0, 1, 7] {
                check(&UnaryFormula::atom(UnaryAtom::Lt { k, c }), -30, 30);
                check(&UnaryFormula::atom(UnaryAtom::Gt { k, c }), -30, 30);
            }
        }
        check(&UnaryFormula::atom(UnaryAtom::Lt { k: 0, c: 5 }), -5, 5); // full
        check(&UnaryFormula::atom(UnaryAtom::Lt { k: 0, c: -5 }), -5, 5); // empty
        check(&UnaryFormula::atom(UnaryAtom::Gt { k: 0, c: -5 }), -5, 5); // full
    }

    #[test]
    fn atom_modeq() {
        // 2v ≡ 1 (mod 4): no solution (gcd 2 ∤ 1).
        check(
            &UnaryFormula::atom(UnaryAtom::ModEq { k1: 2, k2: 4, c: 1 }),
            -20,
            20,
        );
        // 2v ≡ 2 (mod 4): v odd.
        check(
            &UnaryFormula::atom(UnaryAtom::ModEq { k1: 2, k2: 4, c: 2 }),
            -20,
            20,
        );
        // 3v ≡ 2 (mod 5): v ≡ 4 (mod 5).
        check(
            &UnaryFormula::atom(UnaryAtom::ModEq { k1: 3, k2: 5, c: 2 }),
            -20,
            20,
        );
        // modulus 0 falls back to equality.
        check(
            &UnaryFormula::atom(UnaryAtom::ModEq { k1: 3, k2: 0, c: 9 }),
            -20,
            20,
        );
        // every v: 1·v ≡ 0 (mod 1).
        check(
            &UnaryFormula::atom(UnaryAtom::ModEq { k1: 1, k2: 1, c: 0 }),
            -20,
            20,
        );
    }

    #[test]
    fn boolean_combinations_via_algebra() {
        // (v ≡ 0 mod 2) ∧ ¬(v ≡ 0 mod 3) ∨ v > 10
        let f = UnaryFormula::or(
            UnaryFormula::and(
                UnaryFormula::atom(UnaryAtom::ModEq { k1: 1, k2: 2, c: 0 }),
                UnaryFormula::not(UnaryFormula::atom(UnaryAtom::ModEq { k1: 1, k2: 3, c: 0 })),
            ),
            UnaryFormula::atom(UnaryAtom::Gt { k: 1, c: 10 }),
        );
        check(&f, -30, 30);
    }

    #[test]
    fn double_negation() {
        let f = UnaryFormula::not(UnaryFormula::not(UnaryFormula::atom(UnaryAtom::ModEq {
            k1: 1,
            k2: 3,
            c: 1,
        })));
        check(&f, -15, 15);
    }

    #[test]
    fn negated_bound() {
        let f = UnaryFormula::not(UnaryFormula::atom(UnaryAtom::Lt { k: 2, c: 7 }));
        check(&f, -15, 15);
    }

    #[test]
    fn decision_procedures() {
        // 2v = 7 is unsatisfiable; 2v = 8 has witness 4.
        let f = UnaryFormula::atom(UnaryAtom::Eq { k: 2, c: 7 });
        assert!(!f.satisfiable().unwrap());
        assert_eq!(f.witness().unwrap(), None);
        let f = UnaryFormula::atom(UnaryAtom::Eq { k: 2, c: 8 });
        assert_eq!(f.witness().unwrap(), Some(4));
        // v ≡ 0 (2) ∨ v ≡ 1 (2) is valid; v ≡ 0 (2) is not.
        let even = UnaryFormula::atom(UnaryAtom::ModEq { k1: 1, k2: 2, c: 0 });
        let odd = UnaryFormula::atom(UnaryAtom::ModEq { k1: 1, k2: 2, c: 1 });
        assert!(UnaryFormula::or(even.clone(), odd.clone()).valid().unwrap());
        assert!(!even.valid().unwrap());
        // ¬odd ≡ even.
        assert!(UnaryFormula::not(odd.clone()).equivalent(&even).unwrap());
        assert!(!odd.equivalent(&even).unwrap());
        // De Morgan as an equivalence over Z.
        let lt = UnaryFormula::atom(UnaryAtom::Lt { k: 1, c: 5 });
        let lhs = UnaryFormula::not(UnaryFormula::and(even.clone(), lt.clone()));
        let rhs = UnaryFormula::or(UnaryFormula::not(even), UnaryFormula::not(lt));
        assert!(lhs.equivalent(&rhs).unwrap());
    }

    proptest! {
        #[test]
        fn prop_witness_satisfies(f in formula_strategy()) {
            match f.witness().unwrap() {
                Some(v) => prop_assert!(f.eval(v), "{:?} at witness {}", f, v),
                None => {
                    // No witness: no value in a generous window satisfies.
                    for v in -60i64..60 {
                        prop_assert!(!f.eval(v), "{:?} claimed unsat but holds at {}", f, v);
                    }
                }
            }
        }
    }

    fn atom_strategy() -> impl Strategy<Value = UnaryAtom> {
        prop_oneof![
            (-5i64..5, -10i64..10).prop_map(|(k, c)| UnaryAtom::Eq { k, c }),
            (-5i64..5, -10i64..10).prop_map(|(k, c)| UnaryAtom::Lt { k, c }),
            (-5i64..5, -10i64..10).prop_map(|(k, c)| UnaryAtom::Gt { k, c }),
            (-5i64..5, 1i64..7, -10i64..10).prop_map(|(k1, k2, c)| UnaryAtom::ModEq { k1, k2, c }),
        ]
    }

    fn formula_strategy() -> impl Strategy<Value = UnaryFormula> {
        let leaf = atom_strategy().prop_map(UnaryFormula::Atom);
        leaf.prop_recursive(3, 8, 2, |inner| {
            prop_oneof![
                inner.clone().prop_map(UnaryFormula::not),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| UnaryFormula::and(a, b)),
                (inner.clone(), inner).prop_map(|(a, b)| UnaryFormula::or(a, b)),
            ]
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_translation_agrees_with_eval(f in formula_strategy(), v in -25i64..25) {
            let rel = f.to_relation().unwrap();
            prop_assert_eq!(rel.contains(&[v], &[]), f.eval(v), "{:?} at {}", f, v);
        }
    }
}

//! Presburger-definable predicates and their lrp representations — the
//! expressiveness results of §2.2.
//!
//! The paper measures the expressive power of generalized relations against
//! Presburger arithmetic:
//!
//! * **Theorem 2.1** — a *unary* predicate over `Z` is weak-lrp definable
//!   (restricted constraints) iff it is Presburger definable. The
//!   quantifier-free unary fragment is boolean combinations of the basic
//!   formulas `k·v = c`, `k·v < c`, `k·v > c`, `k₁·v ≡ c (mod k₂)`.
//! * **Theorem 2.2** — a *binary* predicate is lrp definable (general
//!   constraints) iff it is Presburger definable; basic formulas are
//!   `k₁·v₁ REL k₂·v₂ + c` and `k₁·v₁ ≡ k₂·v₂ + c (mod k₃)`.
//!
//! [`UnaryFormula::to_relation`] is the constructive direction of
//! Theorem 2.1: it produces a one-temporal-column [`itd_core::GenRelation`]
//! and routes boolean connectives through the actual core algebra (union,
//! intersection, complement), so these tests double as an end-to-end
//! exercise of §3. [`BinaryFormula::to_relation`] implements Theorem 2.2
//! with [`BinaryRelation`], whose tuples may carry general
//! (arbitrary-coefficient) constraints; negation is pushed to atoms (NNF),
//! where every negated basic formula is again a disjunction of basic
//! formulas.
//!
//! Every constructor is paired with a direct evaluator
//! ([`UnaryFormula::eval`], [`BinaryFormula::eval`]); the test suites check
//! the two against each other point by point.

mod binary;
mod unary;

pub use binary::{BinaryAtom, BinaryFormula, BinaryRelation, BinaryTuple};
pub use unary::{UnaryAtom, UnaryFormula};

pub use itd_core::CoreError;

/// Result alias (errors come from the core algebra).
pub type Result<T> = itd_core::Result<T>;

//! Binary Presburger predicates (Theorem 2.2).

use itd_constraint::{GeneralAtom, GeneralSystem, Rel};
use itd_core::{GenRelation, GenTuple, Lrp, Schema};
use itd_numth::mod_euclid;

use crate::Result;

/// A basic binary Presburger formula over variables `v1, v2`
/// (the shapes in the proof of Theorem 2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryAtom {
    /// `k1·v1 REL k2·v2 + c` with `REL ∈ {<, =, >}` expressed as
    /// the non-strict `Rel` after the usual ±1 adjustment.
    Cmp {
        /// Coefficient of `v1`.
        k1: i64,
        /// Relation (`Le` encodes `<` after `c − 1`, etc. — use the
        /// constructors).
        rel: Rel,
        /// Coefficient of `v2`.
        k2: i64,
        /// Constant.
        c: i64,
    },
    /// `k1·v1 ≡ k2·v2 + c (mod k3)`, `k3 > 0`.
    ModEq {
        /// Coefficient of `v1`.
        k1: i64,
        /// Coefficient of `v2`.
        k2: i64,
        /// Modulus.
        k3: i64,
        /// Constant.
        c: i64,
    },
}

impl BinaryAtom {
    /// `k1·v1 = k2·v2 + c`.
    pub fn eq(k1: i64, k2: i64, c: i64) -> BinaryAtom {
        BinaryAtom::Cmp {
            k1,
            rel: Rel::Eq,
            k2,
            c,
        }
    }

    /// `k1·v1 < k2·v2 + c`, stored as `≤ c − 1`.
    ///
    /// Returns `None` on overflow of the adjustment.
    pub fn lt(k1: i64, k2: i64, c: i64) -> Option<BinaryAtom> {
        Some(BinaryAtom::Cmp {
            k1,
            rel: Rel::Le,
            k2,
            c: c.checked_sub(1)?,
        })
    }

    /// `k1·v1 > k2·v2 + c`, stored as `≥ c + 1`.
    ///
    /// Returns `None` on overflow of the adjustment.
    pub fn gt(k1: i64, k2: i64, c: i64) -> Option<BinaryAtom> {
        Some(BinaryAtom::Cmp {
            k1,
            rel: Rel::Ge,
            k2,
            c: c.checked_add(1)?,
        })
    }

    /// `k1·v1 ≡ k2·v2 + c (mod k3)`.
    ///
    /// # Panics
    /// If `k3 <= 0`.
    pub fn mod_eq(k1: i64, k2: i64, k3: i64, c: i64) -> BinaryAtom {
        assert!(k3 > 0, "modulus must be positive");
        BinaryAtom::ModEq { k1, k2, k3, c }
    }

    /// Direct evaluation at `(v1, v2)`.
    pub fn eval(&self, v1: i64, v2: i64) -> bool {
        match *self {
            BinaryAtom::Cmp { k1, rel, k2, c } => {
                let lhs = k1 as i128 * v1 as i128;
                let rhs = k2 as i128 * v2 as i128 + c as i128;
                match rel {
                    Rel::Le => lhs <= rhs,
                    Rel::Eq => lhs == rhs,
                    Rel::Ge => lhs >= rhs,
                }
            }
            BinaryAtom::ModEq { k1, k2, k3, c } => {
                let lhs = k1 as i128 * v1 as i128;
                let rhs = k2 as i128 * v2 as i128 + c as i128;
                (lhs - rhs).rem_euclid(k3 as i128) == 0
            }
        }
    }

    /// Negation as a disjunction of basic atoms (kept basic so that boolean
    /// closure never needs general-constraint complement machinery).
    pub fn negate(&self) -> Vec<BinaryAtom> {
        match *self {
            BinaryAtom::Cmp { k1, rel, k2, c } => match rel {
                // ¬(≤ c) = ≥ c+1
                Rel::Le => vec![BinaryAtom::Cmp {
                    k1,
                    rel: Rel::Ge,
                    k2,
                    c: c + 1,
                }],
                Rel::Ge => vec![BinaryAtom::Cmp {
                    k1,
                    rel: Rel::Le,
                    k2,
                    c: c - 1,
                }],
                Rel::Eq => vec![
                    BinaryAtom::Cmp {
                        k1,
                        rel: Rel::Le,
                        k2,
                        c: c - 1,
                    },
                    BinaryAtom::Cmp {
                        k1,
                        rel: Rel::Ge,
                        k2,
                        c: c + 1,
                    },
                ],
            },
            // ¬(≡ c mod k3) = ∨_{d ≠ c mod k3} (≡ d mod k3)
            BinaryAtom::ModEq { k1, k2, k3, c } => {
                let c0 = mod_euclid(c, k3).expect("k3 > 0");
                (0..k3)
                    .filter(|&d| d != c0)
                    .map(|d| BinaryAtom::ModEq { k1, k2, k3, c: d })
                    .collect()
            }
        }
    }

    /// Theorem 2.2 translation of one basic formula.
    ///
    /// * Comparisons become a single tuple `[n1, n2]` carrying the general
    ///   constraint verbatim (the paper's construction).
    /// * `k1·v1 ≡ k2·v2 + c (mod k3)` becomes a union of unconstrained
    ///   residue-pair tuples: since `k1·v1 mod k3` depends only on
    ///   `v1 mod k3`, the predicate is the union over residue pairs
    ///   `(r1, r2) ∈ [0,k3)²` with `k1·r1 ≡ k2·r2 + c (mod k3)` of
    ///   `lrp(r1, k3) × lrp(r2, k3)` — an equivalent (and purely
    ///   restricted-constraint) form of the paper's shifted-grid
    ///   construction.
    ///
    /// # Errors
    /// Arithmetic overflow.
    pub fn to_relation(&self) -> Result<BinaryRelation> {
        match *self {
            BinaryAtom::Cmp { k1, rel, k2, c } => Ok(BinaryRelation {
                tuples: vec![BinaryTuple {
                    l1: Lrp::all(),
                    l2: Lrp::all(),
                    cons: GeneralSystem::from_atoms(vec![GeneralAtom::binary(
                        k1, 0, rel, k2, 1, c,
                    )]),
                }],
            }),
            BinaryAtom::ModEq { k1, k2, k3, c } => {
                let mut tuples = Vec::new();
                for r1 in 0..k3 {
                    for r2 in 0..k3 {
                        let lhs = (k1 as i128 * r1 as i128).rem_euclid(k3 as i128);
                        let rhs = (k2 as i128 * r2 as i128 + c as i128).rem_euclid(k3 as i128);
                        if lhs == rhs {
                            tuples.push(BinaryTuple {
                                l1: Lrp::new(r1, k3)?,
                                l2: Lrp::new(r2, k3)?,
                                cons: GeneralSystem::new(),
                            });
                        }
                    }
                }
                Ok(BinaryRelation { tuples })
            }
        }
    }
}

/// A generalized tuple with two temporal attributes and *general*
/// constraints — the representation Theorem 2.2 needs (restricted
/// constraints cannot express `k1·v1 ≤ k2·v2 + c` for non-unit
/// coefficients).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinaryTuple {
    /// First attribute's lrp.
    pub l1: Lrp,
    /// Second attribute's lrp.
    pub l2: Lrp,
    /// Conjunction of general constraints.
    pub cons: GeneralSystem,
}

impl BinaryTuple {
    /// Membership of the pair.
    pub fn contains(&self, v1: i64, v2: i64) -> bool {
        self.l1.contains(v1) && self.l2.contains(v2) && self.cons.satisfied_by(&[v1, v2])
    }
}

/// A binary generalized relation with general constraints: finite union of
/// [`BinaryTuple`]s (Definition 2.3 with general constraints).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BinaryRelation {
    /// The tuples.
    pub tuples: Vec<BinaryTuple>,
}

impl BinaryRelation {
    /// The empty relation.
    pub fn empty() -> BinaryRelation {
        BinaryRelation::default()
    }

    /// Membership of the pair.
    pub fn contains(&self, v1: i64, v2: i64) -> bool {
        self.tuples.iter().any(|t| t.contains(v1, v2))
    }

    /// Union: merge tuple sets (§3.1).
    pub fn union(&self, other: &BinaryRelation) -> BinaryRelation {
        let mut tuples = self.tuples.clone();
        tuples.extend_from_slice(&other.tuples);
        BinaryRelation { tuples }
    }

    /// Intersection: pairwise lrp intersection plus constraint union
    /// (§3.2 generalized to general constraints).
    ///
    /// # Errors
    /// Arithmetic overflow in lrp intersection.
    pub fn intersect(&self, other: &BinaryRelation) -> Result<BinaryRelation> {
        let mut tuples = Vec::new();
        for a in &self.tuples {
            for b in &other.tuples {
                let (Some(l1), Some(l2)) = (a.l1.intersect(&b.l1)?, a.l2.intersect(&b.l2)?) else {
                    continue;
                };
                let mut cons = a.cons.clone();
                for atom in b.cons.atoms() {
                    cons.push(*atom);
                }
                tuples.push(BinaryTuple { l1, l2, cons });
            }
        }
        Ok(BinaryRelation { tuples })
    }

    /// Downgrades to a core [`GenRelation`] when every constraint is
    /// restricted (unit coefficients); `None` otherwise.
    ///
    /// # Errors
    /// Constraint-closure arithmetic.
    pub fn to_core_relation(&self) -> Result<Option<GenRelation>> {
        let mut rel = GenRelation::empty(Schema::new(2, 0));
        for t in &self.tuples {
            let Some(atoms) = t.cons.as_restricted() else {
                return Ok(None);
            };
            rel.push(
                GenTuple::builder()
                    .lrps(vec![t.l1, t.l2])
                    .atoms(atoms.iter().copied())
                    .build()?,
            )?;
        }
        Ok(Some(rel))
    }
}

/// A quantifier-free binary Presburger formula.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinaryFormula {
    /// A basic formula.
    Atom(BinaryAtom),
    /// Negation.
    Not(Box<BinaryFormula>),
    /// Conjunction.
    And(Box<BinaryFormula>, Box<BinaryFormula>),
    /// Disjunction.
    Or(Box<BinaryFormula>, Box<BinaryFormula>),
}

impl BinaryFormula {
    /// Wraps an atom.
    pub fn atom(a: BinaryAtom) -> BinaryFormula {
        BinaryFormula::Atom(a)
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: BinaryFormula) -> BinaryFormula {
        BinaryFormula::Not(Box::new(f))
    }

    /// Conjunction.
    pub fn and(a: BinaryFormula, b: BinaryFormula) -> BinaryFormula {
        BinaryFormula::And(Box::new(a), Box::new(b))
    }

    /// Disjunction.
    pub fn or(a: BinaryFormula, b: BinaryFormula) -> BinaryFormula {
        BinaryFormula::Or(Box::new(a), Box::new(b))
    }

    /// Direct evaluation.
    pub fn eval(&self, v1: i64, v2: i64) -> bool {
        match self {
            BinaryFormula::Atom(a) => a.eval(v1, v2),
            BinaryFormula::Not(f) => !f.eval(v1, v2),
            BinaryFormula::And(a, b) => a.eval(v1, v2) && b.eval(v1, v2),
            BinaryFormula::Or(a, b) => a.eval(v1, v2) || b.eval(v1, v2),
        }
    }

    /// Theorem 2.2, constructive direction: negations are pushed to atoms
    /// (every negated basic formula is a disjunction of basic formulas),
    /// then ∨ → union and ∧ → intersection.
    ///
    /// # Errors
    /// Arithmetic overflow.
    pub fn to_relation(&self) -> Result<BinaryRelation> {
        self.translate(false)
    }

    fn translate(&self, negated: bool) -> Result<BinaryRelation> {
        match self {
            BinaryFormula::Atom(a) => {
                if negated {
                    let mut rel = BinaryRelation::empty();
                    for na in a.negate() {
                        rel = rel.union(&na.to_relation()?);
                    }
                    Ok(rel)
                } else {
                    a.to_relation()
                }
            }
            BinaryFormula::Not(f) => f.translate(!negated),
            BinaryFormula::And(a, b) => {
                if negated {
                    Ok(a.translate(true)?.union(&b.translate(true)?))
                } else {
                    a.translate(false)?.intersect(&b.translate(false)?)
                }
            }
            BinaryFormula::Or(a, b) => {
                if negated {
                    a.translate(true)?.intersect(&b.translate(true)?)
                } else {
                    Ok(a.translate(false)?.union(&b.translate(false)?))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn check(f: &BinaryFormula, lo: i64, hi: i64) {
        let rel = f.to_relation().unwrap();
        for v1 in lo..=hi {
            for v2 in lo..=hi {
                assert_eq!(
                    rel.contains(v1, v2),
                    f.eval(v1, v2),
                    "{f:?} disagrees at ({v1},{v2})"
                );
            }
        }
    }

    #[test]
    fn comparison_atoms() {
        check(&BinaryFormula::atom(BinaryAtom::eq(2, 3, 1)), -10, 10);
        check(
            &BinaryFormula::atom(BinaryAtom::lt(2, 3, 1).unwrap()),
            -10,
            10,
        );
        check(
            &BinaryFormula::atom(BinaryAtom::gt(-2, 3, 1).unwrap()),
            -10,
            10,
        );
        check(&BinaryFormula::atom(BinaryAtom::eq(1, 1, -2)), -10, 10);
    }

    #[test]
    fn mod_eq_atom() {
        // v1 ≡ v2 + 1 (mod 3)
        check(&BinaryFormula::atom(BinaryAtom::mod_eq(1, 1, 3, 1)), -9, 9);
        // 2·v1 ≡ 3·v2 (mod 4)
        check(&BinaryFormula::atom(BinaryAtom::mod_eq(2, 3, 4, 0)), -9, 9);
        // coefficient multiples: 2·v1 ≡ 2·v2 + 1 (mod 2) — never.
        check(&BinaryFormula::atom(BinaryAtom::mod_eq(2, 2, 2, 1)), -6, 6);
    }

    #[test]
    fn negation_of_each_atom_shape() {
        for atom in [
            BinaryAtom::eq(2, 3, 1),
            BinaryAtom::lt(2, -3, 4).unwrap(),
            BinaryAtom::gt(1, 1, 0).unwrap(),
            BinaryAtom::mod_eq(1, 2, 3, 2),
        ] {
            check(&BinaryFormula::not(BinaryFormula::atom(atom)), -8, 8);
        }
    }

    #[test]
    fn boolean_closure() {
        // (2v1 ≤ 3v2) ∧ ¬(v1 ≡ v2 mod 2) ∨ (v1 = v2 + 5)
        let f = BinaryFormula::or(
            BinaryFormula::and(
                BinaryFormula::atom(BinaryAtom::Cmp {
                    k1: 2,
                    rel: Rel::Le,
                    k2: 3,
                    c: 0,
                }),
                BinaryFormula::not(BinaryFormula::atom(BinaryAtom::mod_eq(1, 1, 2, 0))),
            ),
            BinaryFormula::atom(BinaryAtom::eq(1, 1, 5)),
        );
        check(&f, -8, 8);
    }

    #[test]
    fn de_morgan_on_translation() {
        // ¬(A ∧ B) behaves as ¬A ∨ ¬B through the NNF path.
        let a = BinaryFormula::atom(BinaryAtom::lt(1, 2, 0).unwrap());
        let b = BinaryFormula::atom(BinaryAtom::mod_eq(1, 0, 2, 0));
        let lhs = BinaryFormula::not(BinaryFormula::and(a.clone(), b.clone()));
        let rhs = BinaryFormula::or(BinaryFormula::not(a), BinaryFormula::not(b));
        let (rl, rr) = (lhs.to_relation().unwrap(), rhs.to_relation().unwrap());
        for v1 in -6..6 {
            for v2 in -6..6 {
                assert_eq!(rl.contains(v1, v2), rr.contains(v1, v2), "({v1},{v2})");
            }
        }
    }

    #[test]
    fn downgrade_to_core_when_unit_coefficients() {
        let f = BinaryFormula::and(
            BinaryFormula::atom(BinaryAtom::Cmp {
                k1: 1,
                rel: Rel::Le,
                k2: 1,
                c: 3,
            }),
            BinaryFormula::atom(BinaryAtom::mod_eq(1, 1, 2, 0)),
        );
        let rel = f.to_relation().unwrap();
        let core = rel.to_core_relation().unwrap().expect("unit coefficients");
        for v1 in -6..6 {
            for v2 in -6..6 {
                assert_eq!(core.contains(&[v1, v2], &[]), f.eval(v1, v2), "({v1},{v2})");
            }
        }
        // Non-unit coefficients do not downgrade.
        let f = BinaryFormula::atom(BinaryAtom::eq(2, 3, 0));
        assert!(f
            .to_relation()
            .unwrap()
            .to_core_relation()
            .unwrap()
            .is_none());
    }

    fn atom_strategy() -> impl Strategy<Value = BinaryAtom> {
        prop_oneof![
            (-4i64..4, -4i64..4, -6i64..6).prop_map(|(k1, k2, c)| BinaryAtom::eq(k1, k2, c)),
            (-4i64..4, -4i64..4, -6i64..6)
                .prop_map(|(k1, k2, c)| BinaryAtom::lt(k1, k2, c).unwrap()),
            (-4i64..4, -4i64..4, -6i64..6)
                .prop_map(|(k1, k2, c)| BinaryAtom::gt(k1, k2, c).unwrap()),
            (-4i64..4, -4i64..4, 1i64..5, -6i64..6)
                .prop_map(|(k1, k2, k3, c)| BinaryAtom::mod_eq(k1, k2, k3, c)),
        ]
    }

    fn formula_strategy() -> impl Strategy<Value = BinaryFormula> {
        let leaf = atom_strategy().prop_map(BinaryFormula::Atom);
        leaf.prop_recursive(3, 6, 2, |inner| {
            prop_oneof![
                inner.clone().prop_map(BinaryFormula::not),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| BinaryFormula::and(a, b)),
                (inner.clone(), inner).prop_map(|(a, b)| BinaryFormula::or(a, b)),
            ]
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_translation_agrees_with_eval(
            f in formula_strategy(),
            v1 in -10i64..10,
            v2 in -10i64..10,
        ) {
            let rel = f.to_relation().unwrap();
            prop_assert_eq!(rel.contains(v1, v2), f.eval(v1, v2), "{:?} at ({},{})", f, v1, v2);
        }
    }
}

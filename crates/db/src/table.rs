//! Named tables and the tuple-specification builder.

use itd_core::{Atom, GenRelation, GenTuple, Lrp, Schema, Value};
use serde::{Deserialize, Serialize};

use crate::error::DbError;
use crate::Result;

/// A named generalized relation: attribute names plus the relation itself.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    name: String,
    temporal_names: Vec<String>,
    data_names: Vec<String>,
    relation: GenRelation,
}

impl Table {
    pub(crate) fn new(
        name: impl Into<String>,
        temporal_names: &[&str],
        data_names: &[&str],
    ) -> Result<Table> {
        let name = name.into();
        let mut seen = std::collections::BTreeSet::new();
        for n in temporal_names.iter().chain(data_names) {
            if !seen.insert(*n) {
                return Err(DbError::DuplicateAttribute((*n).to_owned()));
            }
        }
        let schema = Schema::new(temporal_names.len(), data_names.len());
        Ok(Table {
            name,
            temporal_names: temporal_names.iter().map(|s| (*s).to_owned()).collect(),
            data_names: data_names.iter().map(|s| (*s).to_owned()).collect(),
            relation: GenRelation::empty(schema),
        })
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Temporal attribute names, in column order.
    pub fn temporal_names(&self) -> &[String] {
        &self.temporal_names
    }

    /// Data attribute names, in column order.
    pub fn data_names(&self) -> &[String] {
        &self.data_names
    }

    /// The underlying generalized relation.
    pub fn relation(&self) -> &GenRelation {
        &self.relation
    }

    /// Replaces the underlying relation (schema must match).
    ///
    /// # Errors
    /// [`DbError::Core`] with a schema mismatch otherwise.
    pub fn set_relation(&mut self, rel: GenRelation) -> Result<()> {
        if rel.schema() != self.relation.schema() {
            return Err(DbError::Core(itd_core::CoreError::SchemaMismatch {
                expected: self.relation.schema(),
                found: rel.schema(),
            }));
        }
        self.relation = rel;
        Ok(())
    }

    /// Column index of a temporal attribute.
    ///
    /// # Errors
    /// [`DbError::UnknownAttribute`].
    pub fn col(&self, name: &str) -> Result<usize> {
        self.temporal_names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| DbError::UnknownAttribute {
                table: self.name.clone(),
                attribute: name.to_owned(),
            })
    }

    /// Column index of a data attribute.
    ///
    /// # Errors
    /// [`DbError::UnknownAttribute`].
    pub fn data_col(&self, name: &str) -> Result<usize> {
        self.data_names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| DbError::UnknownAttribute {
                table: self.name.clone(),
                attribute: name.to_owned(),
            })
    }

    /// Inserts a tuple described by a [`TupleSpec`].
    ///
    /// # Errors
    /// [`DbError::IncompleteTuple`] if the spec does not assign every
    /// attribute exactly once; [`DbError::UnknownAttribute`] for stray
    /// names; algebra errors from constraint closure.
    pub fn insert(&mut self, spec: TupleSpec) -> Result<()> {
        let tuple = spec.build(self)?;
        self.relation.push(tuple).map_err(DbError::Core)
    }

    /// Inserts a raw generalized tuple (schema-checked).
    ///
    /// # Errors
    /// [`DbError::Core`] on schema mismatch.
    pub fn insert_tuple(&mut self, tuple: GenTuple) -> Result<()> {
        self.relation.push(tuple).map_err(DbError::Core)
    }

    /// Removes every row structurally equal to `tuple`, returning how
    /// many were removed (0 when none matched — not an error). The
    /// *denoted* points may of course survive in other rows.
    ///
    /// # Errors
    /// [`DbError::Core`] on schema mismatch.
    pub fn retract_tuple(&mut self, tuple: &GenTuple) -> Result<usize> {
        self.relation.retract(tuple).map_err(DbError::Core)
    }

    /// Number of generalized tuples.
    pub fn len(&self) -> usize {
        self.relation.tuple_count()
    }

    /// Is the table free of tuples?
    pub fn is_empty(&self) -> bool {
        self.relation.has_no_tuples()
    }
}

/// Builder for one generalized tuple with named attributes.
///
/// Every temporal attribute must receive exactly one value
/// ([`TupleSpec::lrp`] or [`TupleSpec::at`]) and every data attribute one
/// [`TupleSpec::datum`]; constraints are optional.
#[derive(Debug, Clone, Default)]
pub struct TupleSpec {
    lrps: Vec<(String, Lrp)>,
    atoms: Vec<NamedAtom>,
    data: Vec<(String, Value)>,
}

#[derive(Debug, Clone)]
enum NamedAtom {
    DiffLe(String, String, i64),
    DiffEq(String, String, i64),
    Le(String, i64),
    Ge(String, i64),
    Eq(String, i64),
}

impl TupleSpec {
    /// An empty spec.
    pub fn new() -> TupleSpec {
        TupleSpec::default()
    }

    /// Assigns the lrp `offset + period·n` to a temporal attribute.
    pub fn lrp(mut self, attr: &str, offset: i64, period: i64) -> TupleSpec {
        let l = Lrp::new(offset, period).expect("lrp parameters in range");
        self.lrps.push((attr.to_owned(), l));
        self
    }

    /// Assigns a single time point to a temporal attribute.
    pub fn at(mut self, attr: &str, value: i64) -> TupleSpec {
        self.lrps.push((attr.to_owned(), Lrp::point(value)));
        self
    }

    /// Constraint `attr_i <= attr_j + a`.
    pub fn diff_le(mut self, i: &str, j: &str, a: i64) -> TupleSpec {
        self.atoms
            .push(NamedAtom::DiffLe(i.to_owned(), j.to_owned(), a));
        self
    }

    /// Constraint `attr_i = attr_j + a`.
    pub fn diff_eq(mut self, i: &str, j: &str, a: i64) -> TupleSpec {
        self.atoms
            .push(NamedAtom::DiffEq(i.to_owned(), j.to_owned(), a));
        self
    }

    /// Constraint `attr <= a`.
    pub fn le(mut self, attr: &str, a: i64) -> TupleSpec {
        self.atoms.push(NamedAtom::Le(attr.to_owned(), a));
        self
    }

    /// Constraint `attr >= a`.
    pub fn ge(mut self, attr: &str, a: i64) -> TupleSpec {
        self.atoms.push(NamedAtom::Ge(attr.to_owned(), a));
        self
    }

    /// Constraint `attr = a`.
    pub fn eq(mut self, attr: &str, a: i64) -> TupleSpec {
        self.atoms.push(NamedAtom::Eq(attr.to_owned(), a));
        self
    }

    /// Assigns a data attribute.
    pub fn datum(mut self, attr: &str, value: impl Into<Value>) -> TupleSpec {
        self.data.push((attr.to_owned(), value.into()));
        self
    }

    pub(crate) fn build(self, table: &Table) -> Result<GenTuple> {
        // Temporal values, one per column.
        let mut lrps: Vec<Option<Lrp>> = vec![None; table.temporal_names().len()];
        for (name, l) in &self.lrps {
            let i = table.col(name)?;
            if lrps[i].is_some() {
                return Err(DbError::IncompleteTuple {
                    detail: format!("temporal attribute `{name}` assigned twice"),
                });
            }
            lrps[i] = Some(*l);
        }
        let lrps: Vec<Lrp> = lrps
            .into_iter()
            .enumerate()
            .map(|(i, l)| {
                l.ok_or_else(|| DbError::IncompleteTuple {
                    detail: format!("temporal attribute `{}` missing", table.temporal_names()[i]),
                })
            })
            .collect::<Result<_>>()?;

        // Data values.
        let mut data: Vec<Option<Value>> = vec![None; table.data_names().len()];
        for (name, v) in &self.data {
            let i = table.data_col(name)?;
            if data[i].is_some() {
                return Err(DbError::IncompleteTuple {
                    detail: format!("data attribute `{name}` assigned twice"),
                });
            }
            data[i] = Some(v.clone());
        }
        let data: Vec<Value> = data
            .into_iter()
            .enumerate()
            .map(|(i, v)| {
                v.ok_or_else(|| DbError::IncompleteTuple {
                    detail: format!("data attribute `{}` missing", table.data_names()[i]),
                })
            })
            .collect::<Result<_>>()?;

        // Constraints.
        let mut atoms = Vec::with_capacity(self.atoms.len());
        for a in &self.atoms {
            atoms.push(match a {
                NamedAtom::DiffLe(i, j, a) => Atom::diff_le(table.col(i)?, table.col(j)?, *a),
                NamedAtom::DiffEq(i, j, a) => Atom::diff_eq(table.col(i)?, table.col(j)?, *a),
                NamedAtom::Le(i, a) => Atom::le(table.col(i)?, *a),
                NamedAtom::Ge(i, a) => Atom::ge(table.col(i)?, *a),
                NamedAtom::Eq(i, a) => Atom::eq(table.col(i)?, *a),
            });
        }
        GenTuple::builder()
            .lrps(lrps)
            .atoms(atoms.iter().copied())
            .data(data)
            .build()
            .map_err(DbError::Core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        Table::new("robot", &["from", "to"], &["name", "task"]).unwrap()
    }

    #[test]
    fn insert_table_1_first_row() {
        // Table 1: Robot 1, Task 1: [2+2n, 4+2n], X1 = X2 − 2 ∧ X1 ≥ −1.
        let mut t = table();
        t.insert(
            TupleSpec::new()
                .lrp("from", 2, 2)
                .lrp("to", 4, 2)
                .diff_eq("from", "to", -2)
                .ge("from", -1)
                .datum("name", "robot1")
                .datum("task", "task1"),
        )
        .unwrap();
        assert_eq!(t.len(), 1);
        let r = t.relation();
        assert!(r.contains(&[2, 4], &[Value::str("robot1"), Value::str("task1")]));
        assert!(r.contains(&[4, 6], &[Value::str("robot1"), Value::str("task1")]));
        assert!(!r.contains(&[-4, -2], &[Value::str("robot1"), Value::str("task1")]));
        assert!(!r.contains(&[2, 6], &[Value::str("robot1"), Value::str("task1")]));
    }

    #[test]
    fn missing_and_double_assignments_rejected() {
        let mut t = table();
        let err = t
            .insert(TupleSpec::new().lrp("from", 0, 2).datum("name", "x"))
            .unwrap_err();
        assert!(matches!(err, DbError::IncompleteTuple { .. }), "{err}");
        let err = t
            .insert(
                TupleSpec::new()
                    .lrp("from", 0, 2)
                    .lrp("from", 1, 2)
                    .lrp("to", 0, 2)
                    .datum("name", "x")
                    .datum("task", "y"),
            )
            .unwrap_err();
        assert!(matches!(err, DbError::IncompleteTuple { .. }), "{err}");
    }

    #[test]
    fn unknown_attribute_rejected() {
        let mut t = table();
        let err = t
            .insert(
                TupleSpec::new()
                    .lrp("nope", 0, 2)
                    .lrp("to", 0, 2)
                    .datum("name", "x")
                    .datum("task", "y"),
            )
            .unwrap_err();
        assert!(matches!(err, DbError::UnknownAttribute { .. }), "{err}");
        assert!(t.col("nope").is_err());
        assert!(t.data_col("nope").is_err());
        assert_eq!(t.col("to").unwrap(), 1);
        assert_eq!(t.data_col("task").unwrap(), 1);
    }

    #[test]
    fn duplicate_schema_names_rejected() {
        assert!(matches!(
            Table::new("x", &["a", "a"], &[]),
            Err(DbError::DuplicateAttribute(_))
        ));
        assert!(matches!(
            Table::new("x", &["a"], &["a"]),
            Err(DbError::DuplicateAttribute(_))
        ));
    }

    #[test]
    fn point_values_via_at() {
        let mut t = Table::new("ev", &["when"], &[]).unwrap();
        t.insert(TupleSpec::new().at("when", 42)).unwrap();
        assert!(t.relation().contains(&[42], &[]));
        assert!(!t.relation().contains(&[43], &[]));
    }

    #[test]
    fn set_relation_checks_schema() {
        let mut t = table();
        assert!(t
            .set_relation(GenRelation::empty(Schema::new(1, 0)))
            .is_err());
        assert!(t
            .set_relation(GenRelation::empty(Schema::new(2, 2)))
            .is_ok());
        assert!(t.is_empty());
    }
}

//! Database-facade errors.

use std::fmt;

use itd_core::CoreError;
use itd_query::QueryError;

/// Errors from the database facade.
#[derive(Debug)]
pub enum DbError {
    /// Core algebra failure.
    Core(CoreError),
    /// Query parsing/evaluation failure.
    Query(QueryError),
    /// A table name was not found.
    UnknownTable(String),
    /// A table with this name already exists.
    DuplicateTable(String),
    /// An attribute name was not found in the table.
    UnknownAttribute {
        /// Table name.
        table: String,
        /// Attribute name.
        attribute: String,
    },
    /// Duplicate attribute name in a schema definition.
    DuplicateAttribute(String),
    /// A registered view name was not found.
    UnknownView(String),
    /// A registered view with this name already exists.
    DuplicateView(String),
    /// A tuple specification does not cover the schema exactly.
    IncompleteTuple {
        /// What is missing or extra.
        detail: String,
    },
    /// Serialization/deserialization failure.
    Serde {
        /// Human-readable description of what failed.
        message: String,
        /// The underlying I/O or codec error, when one exists — kept so
        /// [`std::error::Error::source`] chains to the root cause.
        source: Option<Box<dyn std::error::Error + Send + Sync + 'static>>,
    },
}

impl DbError {
    /// A serialization error with no distinct underlying cause.
    pub fn serde(message: impl Into<String>) -> DbError {
        DbError::Serde {
            message: message.into(),
            source: None,
        }
    }

    /// A serialization error wrapping the error that caused it.
    pub fn serde_caused_by(
        message: impl Into<String>,
        source: impl std::error::Error + Send + Sync + 'static,
    ) -> DbError {
        DbError::Serde {
            message: message.into(),
            source: Some(Box::new(source)),
        }
    }
}

/// Renders an error followed by its full `source()` chain, one
/// `caused by:` line per link — what the REPL binary prints so the root
/// cause of a wrapped failure is visible.
pub fn render_error_chain(err: &dyn std::error::Error) -> String {
    let mut out = format!("{err}");
    let mut cur = err.source();
    while let Some(cause) = cur {
        out.push_str(&format!("\n  caused by: {cause}"));
        cur = cause.source();
    }
    out
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Core(e) => write!(f, "algebra error: {e}"),
            DbError::Query(e) => write!(f, "query error: {e}"),
            DbError::UnknownTable(name) => write!(f, "unknown table `{name}`"),
            DbError::DuplicateTable(name) => write!(f, "table `{name}` already exists"),
            DbError::UnknownAttribute { table, attribute } => {
                write!(f, "table `{table}` has no attribute `{attribute}`")
            }
            DbError::DuplicateAttribute(name) => {
                write!(f, "duplicate attribute name `{name}`")
            }
            DbError::UnknownView(name) => write!(f, "unknown view `{name}`"),
            DbError::DuplicateView(name) => {
                write!(f, "view `{name}` is already registered")
            }
            DbError::IncompleteTuple { detail } => write!(f, "incomplete tuple: {detail}"),
            DbError::Serde { message, .. } => write!(f, "serialization error: {message}"),
        }
    }
}

impl std::error::Error for DbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DbError::Core(e) => Some(e),
            DbError::Query(e) => Some(e),
            DbError::Serde {
                source: Some(e), ..
            } => Some(e.as_ref()),
            _ => None,
        }
    }
}

impl From<CoreError> for DbError {
    fn from(e: CoreError) -> Self {
        DbError::Core(e)
    }
}

impl From<QueryError> for DbError {
    fn from(e: QueryError) -> Self {
        DbError::Query(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(DbError::UnknownTable("t".into())
            .to_string()
            .contains("`t`"));
        assert!(DbError::DuplicateTable("t".into())
            .to_string()
            .contains("already exists"));
        assert!(DbError::UnknownAttribute {
            table: "a".into(),
            attribute: "b".into()
        }
        .to_string()
        .contains("`b`"));
        assert!(DbError::IncompleteTuple {
            detail: "missing x".into()
        }
        .to_string()
        .contains("missing x"));
        assert!(DbError::serde("bad").to_string().contains("bad"));
        assert!(DbError::DuplicateAttribute("z".into())
            .to_string()
            .contains("`z`"));
    }

    #[test]
    fn serde_errors_chain_to_their_cause() {
        use std::error::Error;
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "no such file");
        let err = DbError::serde_caused_by("cannot read /nope.json", io);
        assert!(err.to_string().contains("cannot read /nope.json"));
        let cause = err.source().expect("source preserved");
        assert!(cause.to_string().contains("no such file"));
        let chain = render_error_chain(&err);
        assert!(chain.contains("caused by: no such file"), "{chain}");
    }

    #[test]
    fn query_errors_chain_to_the_core_cause() {
        // DbError::Query must expose QueryError's own source chain, so a
        // REPL user sees the algebra-level root cause.
        let q = QueryError::UnknownPredicate("nosuch".into());
        let err = DbError::Query(q);
        let chain = render_error_chain(&err);
        assert!(chain.contains("caused by:"), "{chain}");
        assert!(chain.contains("nosuch"), "{chain}");
    }
}

//! Database-facade errors.

use std::fmt;

use itd_core::CoreError;
use itd_query::QueryError;

/// Errors from the database facade.
#[derive(Debug)]
pub enum DbError {
    /// Core algebra failure.
    Core(CoreError),
    /// Query parsing/evaluation failure.
    Query(QueryError),
    /// A table name was not found.
    UnknownTable(String),
    /// A table with this name already exists.
    DuplicateTable(String),
    /// An attribute name was not found in the table.
    UnknownAttribute {
        /// Table name.
        table: String,
        /// Attribute name.
        attribute: String,
    },
    /// Duplicate attribute name in a schema definition.
    DuplicateAttribute(String),
    /// A tuple specification does not cover the schema exactly.
    IncompleteTuple {
        /// What is missing or extra.
        detail: String,
    },
    /// Serialization/deserialization failure.
    Serde(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Core(e) => write!(f, "algebra error: {e}"),
            DbError::Query(e) => write!(f, "query error: {e}"),
            DbError::UnknownTable(name) => write!(f, "unknown table `{name}`"),
            DbError::DuplicateTable(name) => write!(f, "table `{name}` already exists"),
            DbError::UnknownAttribute { table, attribute } => {
                write!(f, "table `{table}` has no attribute `{attribute}`")
            }
            DbError::DuplicateAttribute(name) => {
                write!(f, "duplicate attribute name `{name}`")
            }
            DbError::IncompleteTuple { detail } => write!(f, "incomplete tuple: {detail}"),
            DbError::Serde(msg) => write!(f, "serialization error: {msg}"),
        }
    }
}

impl std::error::Error for DbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DbError::Core(e) => Some(e),
            DbError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for DbError {
    fn from(e: CoreError) -> Self {
        DbError::Core(e)
    }
}

impl From<QueryError> for DbError {
    fn from(e: QueryError) -> Self {
        DbError::Query(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(DbError::UnknownTable("t".into())
            .to_string()
            .contains("`t`"));
        assert!(DbError::DuplicateTable("t".into())
            .to_string()
            .contains("already exists"));
        assert!(DbError::UnknownAttribute {
            table: "a".into(),
            attribute: "b".into()
        }
        .to_string()
        .contains("`b`"));
        assert!(DbError::IncompleteTuple {
            detail: "missing x".into()
        }
        .to_string()
        .contains("missing x"));
        assert!(DbError::Serde("bad".into()).to_string().contains("bad"));
        assert!(DbError::DuplicateAttribute("z".into())
            .to_string()
            .contains("`z`"));
    }
}

//! Atomic signed mutations: the [`Txn`] builder.
//!
//! A `Txn` describes a batch of inserts and retracts across any number of
//! tables. [`Database::apply`](crate::Database::apply) validates the whole
//! batch first (unknown tables, schema mismatches, incomplete specs fail
//! before anything changes), then applies it — retractions before
//! insertions — rotates the plan token once, and incrementally refreshes
//! every registered view with the batch's signed deltas.
//!
//! ```
//! use itd_db::{Database, Txn, TupleSpec};
//! let mut db = Database::new();
//! db.create_table("even", &["t"], &[]).unwrap();
//! let summary = db
//!     .apply(Txn::new().insert("even", TupleSpec::new().lrp("t", 0, 2)))
//!     .unwrap();
//! assert_eq!(summary.inserted, 1);
//! ```

use itd_core::GenTuple;

use crate::table::TupleSpec;

/// One signed change: which table, which direction, which row.
#[derive(Debug, Clone)]
pub(crate) struct TxnOp {
    pub(crate) table: String,
    pub(crate) retract: bool,
    pub(crate) row: RowSpec,
}

/// A row given either by the named-attribute builder or as a raw tuple.
#[derive(Debug, Clone)]
pub(crate) enum RowSpec {
    Spec(TupleSpec),
    Tuple(GenTuple),
}

/// A batch of signed mutations, applied atomically by
/// [`Database::apply`](crate::Database::apply).
///
/// Builder-style: each call moves and returns the transaction. Within one
/// transaction all retractions are applied before all insertions, so
/// retract-then-insert of the same row is a replace and the insertions
/// are always rows of the post-transaction tables.
#[derive(Debug, Clone, Default)]
pub struct Txn {
    pub(crate) ops: Vec<TxnOp>,
}

impl Txn {
    /// An empty transaction (applying it is a no-op).
    pub fn new() -> Txn {
        Txn::default()
    }

    /// Adds an insertion described by a [`TupleSpec`].
    pub fn insert(mut self, table: &str, spec: TupleSpec) -> Txn {
        self.ops.push(TxnOp {
            table: table.to_owned(),
            retract: false,
            row: RowSpec::Spec(spec),
        });
        self
    }

    /// Adds an insertion of a raw generalized tuple.
    pub fn insert_tuple(mut self, table: &str, tuple: GenTuple) -> Txn {
        self.ops.push(TxnOp {
            table: table.to_owned(),
            retract: false,
            row: RowSpec::Tuple(tuple),
        });
        self
    }

    /// Adds a retraction: every row structurally equal to the described
    /// tuple is removed (removing zero rows is not an error).
    pub fn retract(mut self, table: &str, spec: TupleSpec) -> Txn {
        self.ops.push(TxnOp {
            table: table.to_owned(),
            retract: true,
            row: RowSpec::Spec(spec),
        });
        self
    }

    /// Adds a retraction of a raw generalized tuple.
    pub fn retract_tuple(mut self, table: &str, tuple: GenTuple) -> Txn {
        self.ops.push(TxnOp {
            table: table.to_owned(),
            retract: true,
            row: RowSpec::Tuple(tuple),
        });
        self
    }

    /// Number of signed changes in the batch.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when the batch holds no changes.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// What one [`Database::apply`](crate::Database::apply) did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxnSummary {
    /// Rows appended across all tables.
    pub inserted: usize,
    /// Rows removed across all tables (every structural match counts).
    pub retracted: usize,
    /// Registered views brought up to date.
    pub views_refreshed: usize,
    /// Of those, views that fell back to a full recomputation (active
    /// domain changed, or the catalog had mutated outside the delta
    /// path since the last refresh).
    pub views_recomputed: usize,
}

//! The command layer of the `itd-repl` binary, exposed as a library so it
//! can be unit-tested without a terminal.

use itd_core::{ExecContext, StatsSnapshot, Value};

use crate::table::TupleSpec;
use crate::{Database, DbError, Result};

/// A stateful REPL session: a database plus command dispatch.
#[derive(Debug, Default)]
pub struct ReplSession {
    db: Database,
    stats: StatsSnapshot,
}

impl ReplSession {
    /// A fresh session with an empty database.
    pub fn new() -> ReplSession {
        ReplSession::default()
    }

    /// The underlying database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Operator statistics accumulated over every query-evaluating command
    /// (`ask`, `query`, `view`) since the session started or since
    /// `\stats reset`.
    pub fn stats(&self) -> &StatsSnapshot {
        &self.stats
    }

    /// Runs a query-evaluating closure under a fresh [`ExecContext`] and
    /// folds its counters into the session totals.
    fn tracked<T>(&mut self, run: impl FnOnce(&Database, &ExecContext) -> Result<T>) -> Result<T> {
        let ctx = ExecContext::new();
        let out = run(&self.db, &ctx);
        self.stats.merge(&ctx.stats());
        out
    }

    /// Executes one command line. Returns `Ok(Some(output))` for a normal
    /// command, `Ok(None)` for `quit`.
    ///
    /// # Errors
    /// [`DbError`] for any malformed command or failed operation; the
    /// session stays usable.
    pub fn execute(&mut self, line: &str) -> Result<Option<String>> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(Some(String::new()));
        }
        let (cmd, rest) = match line.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r.trim()),
            None => (line, ""),
        };
        match cmd {
            "quit" | "exit" => Ok(None),
            "help" => Ok(Some(HELP.to_owned())),
            "tables" => Ok(Some(self.db.table_names().join("\n"))),
            "create" => self.create(rest).map(Some),
            "insert" => self.insert(rest).map(Some),
            "show" => Ok(Some(self.db.table(rest)?.render())),
            "timeline" => {
                let mut parts = rest.split_whitespace();
                let (name, lo, hi) = (
                    parts.next().unwrap_or(""),
                    parts.next().and_then(|w| w.parse().ok()).unwrap_or(0i64),
                    parts.next().and_then(|w| w.parse().ok()).unwrap_or(40i64),
                );
                Ok(Some(self.db.table(name)?.timeline(lo, hi)))
            }
            "ask" => {
                let truth = self.tracked(|db, ctx| db.query_bool_with(rest, ctx))?;
                Ok(Some(format!("{truth}")))
            }
            "view" => {
                let (name, src) = rest
                    .split_once('=')
                    .ok_or_else(|| DbError::IncompleteTuple {
                        detail: "expected `view name = <query>`".into(),
                    })?;
                let ctx = ExecContext::new();
                let out = {
                    let table = self
                        .db
                        .materialize_view_with(name.trim(), src.trim(), &ctx)?;
                    format!(
                        "view `{}` materialized with {} generalized tuple(s)",
                        table.name(),
                        table.len()
                    )
                };
                self.stats.merge(&ctx.stats());
                Ok(Some(out))
            }
            "query" => self.query(rest).map(Some),
            "\\stats" | "stats" => {
                if rest == "reset" {
                    self.stats = StatsSnapshot::default();
                    Ok(Some("statistics reset".to_owned()))
                } else {
                    Ok(Some(format!("{}", self.stats)))
                }
            }
            "save" => {
                self.db.save(rest)?;
                Ok(Some(format!("saved to {rest}")))
            }
            "load" => {
                self.db = Database::load(rest)?;
                Ok(Some(format!(
                    "loaded {} table(s)",
                    self.db.table_names().len()
                )))
            }
            other => Err(DbError::IncompleteTuple {
                detail: format!("unknown command `{other}` (try `help`)"),
            }),
        }
    }

    /// `create name(t1, t2; d1, d2)` — data part optional.
    fn create(&mut self, rest: &str) -> Result<String> {
        let bad = |detail: &str| DbError::IncompleteTuple {
            detail: detail.to_owned(),
        };
        let (name, args) = rest
            .split_once('(')
            .ok_or_else(|| bad("expected `create name(attrs...)`"))?;
        let args = args
            .strip_suffix(')')
            .ok_or_else(|| bad("missing closing `)`"))?;
        let (temporal_part, data_part) = match args.split_once(';') {
            Some((t, d)) => (t, d),
            None => (args, ""),
        };
        let split = |s: &str| -> Vec<String> {
            s.split(',')
                .map(str::trim)
                .filter(|a| !a.is_empty())
                .map(str::to_owned)
                .collect()
        };
        let temporal = split(temporal_part);
        let data = split(data_part);
        let tref: Vec<&str> = temporal.iter().map(String::as_str).collect();
        let dref: Vec<&str> = data.iter().map(String::as_str).collect();
        self.db.create_table(name.trim(), &tref, &dref)?;
        Ok(format!(
            "created `{}` with {} temporal and {} data attribute(s)",
            name.trim(),
            temporal.len(),
            data.len()
        ))
    }

    /// `insert table clause, clause, ...` where each clause is one of
    /// `lrp attr offset period`, `at attr value`, `le attr c`, `ge attr c`,
    /// `eq attr c`, `diffle a b c`, `eq a b c` (difference equality), or
    /// `datum attr value`.
    fn insert(&mut self, rest: &str) -> Result<String> {
        let bad = |detail: String| DbError::IncompleteTuple { detail };
        let (table_name, clauses) = rest
            .split_once(char::is_whitespace)
            .ok_or_else(|| bad("expected `insert table clauses...`".into()))?;
        let mut spec = TupleSpec::new();
        for clause in clauses.split(',') {
            let words: Vec<&str> = clause.split_whitespace().collect();
            let int = |w: &str| -> Result<i64> {
                w.parse()
                    .map_err(|_| bad(format!("`{w}` is not an integer")))
            };
            spec = match words.as_slice() {
                ["lrp", attr, offset, period] => spec.lrp(attr, int(offset)?, int(period)?),
                ["at", attr, value] => spec.at(attr, int(value)?),
                ["le", attr, c] => spec.le(attr, int(c)?),
                ["ge", attr, c] => spec.ge(attr, int(c)?),
                ["eq", attr, c] => spec.eq(attr, int(c)?),
                ["diffle", a, b, c] => spec.diff_le(a, b, int(c)?),
                ["eq", a, b, c] => spec.diff_eq(a, b, int(c)?),
                ["datum", attr, value] => match value.parse::<i64>() {
                    Ok(v) => spec.datum(attr, v),
                    Err(_) => spec.datum(attr, Value::str(*value)),
                },
                other => {
                    return Err(bad(format!("unrecognized clause {other:?}")));
                }
            };
        }
        self.db.table_mut(table_name)?.insert(spec)?;
        Ok(format!("inserted into `{table_name}`"))
    }

    /// `query <formula>` — prints the symbolic answer relation.
    fn query(&mut self, src: &str) -> Result<String> {
        let result = self.tracked(|db, ctx| db.query_with(src, ctx))?;
        let mut out = String::new();
        out.push_str(&format!(
            "free variables: temporal {:?}, data {:?}\n",
            result.temporal_vars, result.data_vars
        ));
        out.push_str(&format!("{}", result.relation));
        Ok(out)
    }
}

const HELP: &str = "\
commands:
  create name(t1, t2; d1)        define a table (data attrs after `;`)
  insert table clause, ...       clauses: lrp attr off period | at attr v |
                                 le/ge/eq attr c | diffle a b c | eq a b c |
                                 datum attr value
  show table                     render a table paper-style
  timeline table [lo hi]         ASCII occupancy timeline of a window
  tables                         list tables
  ask <formula>                  yes/no query (first-order syntax)
  view name = <formula>          materialize an open query as a table
  query <formula>                open query; prints the answer relation
  \\stats [reset]                 per-operator execution counters of every
                                 query so far (or reset them)
  save <path> / load <path>      JSON persistence
  quit";

#[cfg(test)]
mod tests {
    use super::*;

    fn run(session: &mut ReplSession, line: &str) -> String {
        session
            .execute(line)
            .unwrap_or_else(|e| panic!("`{line}` failed: {e}"))
            .expect("not a quit")
    }

    #[test]
    fn end_to_end_session() {
        let mut s = ReplSession::new();
        run(&mut s, "create train(dep, arr; kind)");
        run(
            &mut s,
            "insert train lrp dep 2 60, lrp arr 80 60, eq dep arr -78, datum kind slow",
        );
        assert_eq!(run(&mut s, r#"ask exists a. train(62, a; "slow")"#), "true");
        assert_eq!(run(&mut s, r#"ask train(63, 141; "slow")"#), "false");
        let shown = run(&mut s, "show train");
        assert!(shown.contains("dep"), "{shown}");
        assert_eq!(run(&mut s, "tables"), "train");
        let q = run(&mut s, "query train(d, a; k) and d >= 0");
        assert!(q.contains("temporal [\"d\", \"a\"]"), "{q}");
        assert!(s.execute("quit").unwrap().is_none());
    }

    #[test]
    fn views_in_repl() {
        let mut s = ReplSession::new();
        run(&mut s, "create ev(t)");
        run(&mut s, "insert ev lrp t 0 2");
        let msg = run(&mut s, "view pos = ev(t) and t >= 0");
        assert!(msg.contains("view `pos`"), "{msg}");
        assert_eq!(run(&mut s, "ask pos(4)"), "true");
        assert_eq!(run(&mut s, "ask pos(-4)"), "false");
        assert!(s.execute("view broken").is_err());
    }

    #[test]
    fn integer_data_and_points() {
        let mut s = ReplSession::new();
        run(&mut s, "create ev(t; n)");
        run(&mut s, "insert ev at t 5, datum n 42");
        assert_eq!(run(&mut s, "ask ev(5; 42)"), "true");
        assert_eq!(run(&mut s, "ask ev(6; 42)"), "false");
    }

    #[test]
    fn errors_are_recoverable() {
        let mut s = ReplSession::new();
        assert!(s.execute("bogus command").is_err());
        assert!(s.execute("create broken").is_err());
        assert!(s.execute("insert nosuch lrp t 0 1").is_err());
        assert!(s.execute("show nosuch").is_err());
        assert!(s.execute("ask nonsense(((").is_err());
        // Still usable afterwards.
        run(&mut s, "create ok(t)");
        run(&mut s, "insert ok lrp t 0 2");
        assert_eq!(run(&mut s, "ask ok(4)"), "true");
    }

    #[test]
    fn comments_blank_lines_and_help() {
        let mut s = ReplSession::new();
        assert_eq!(run(&mut s, ""), "");
        assert_eq!(run(&mut s, "# a comment"), "");
        assert!(run(&mut s, "help").contains("commands"));
    }

    #[test]
    fn stats_command_reports_and_resets() {
        let mut s = ReplSession::new();
        assert!(run(&mut s, "\\stats").contains("no algebra operations"));
        run(&mut s, "create ev(t)");
        run(&mut s, "insert ev lrp t 0 2");
        assert_eq!(run(&mut s, "ask ev(4) and ev(6)"), "true");
        let report = run(&mut s, "\\stats");
        assert!(report.contains("join"), "{report}");
        assert!(report.contains("project"), "{report}");
        assert!(s.stats().total_calls() > 0);
        // Both spellings work, and reset clears the counters.
        assert_eq!(run(&mut s, "stats"), report);
        run(&mut s, "\\stats reset");
        assert!(run(&mut s, "\\stats").contains("no algebra operations"));
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join("itd_repl_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("session.json");
        let path_str = path.to_str().unwrap().to_owned();
        let mut s = ReplSession::new();
        run(&mut s, "create ev(t)");
        run(&mut s, "insert ev lrp t 1 3");
        run(&mut s, &format!("save {path_str}"));
        let mut s2 = ReplSession::new();
        let msg = run(&mut s2, &format!("load {path_str}"));
        assert!(msg.contains("1 table"), "{msg}");
        assert_eq!(run(&mut s2, "ask ev(4)"), "true");
        std::fs::remove_file(&path).ok();
    }
}

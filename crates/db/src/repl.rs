//! The command layer of the `itd-repl` binary, exposed as a library so it
//! can be unit-tested without a terminal.

use itd_core::{ExecContext, StatsSnapshot, Trace, Value};
use itd_query::QueryOpts;

use crate::table::TupleSpec;
use crate::txn::Txn;
use crate::{Database, DbError, Result};

/// A stateful REPL session: a database plus command dispatch.
#[derive(Debug)]
pub struct ReplSession {
    db: Database,
    stats: StatsSnapshot,
    tracing: bool,
    optimize: bool,
    compact: bool,
    last_trace: Option<Trace>,
}

impl Default for ReplSession {
    fn default() -> ReplSession {
        ReplSession {
            db: Database::default(),
            stats: StatsSnapshot::default(),
            tracing: false,
            optimize: true,
            compact: true,
            last_trace: None,
        }
    }
}

impl ReplSession {
    /// A fresh session with an empty database.
    pub fn new() -> ReplSession {
        ReplSession::default()
    }

    /// The underlying database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Operator statistics accumulated over every query-evaluating command
    /// (`ask`, `query`, `view`) since the session started or since
    /// `\stats reset`.
    pub fn stats(&self) -> &StatsSnapshot {
        &self.stats
    }

    /// Whether `\trace on` is in effect.
    pub fn tracing(&self) -> bool {
        self.tracing
    }

    /// Whether the cost-guided plan optimizer is in effect (`\optimize
    /// on`, the default).
    pub fn optimizing(&self) -> bool {
        self.optimize
    }

    /// Whether adaptive intermediate compaction is in effect (`\compact
    /// on`, the default).
    pub fn compacting(&self) -> bool {
        self.compact
    }

    /// The span tree recorded by the most recent query-evaluating command
    /// while tracing was on (or by `\explain analyze`).
    pub fn last_trace(&self) -> Option<&Trace> {
        self.last_trace.as_ref()
    }

    /// Query options reflecting the session toggles (`\optimize`,
    /// `\compact`); callers chain `.ctx(...)` / `.trace(...)` on top.
    fn opts(&self) -> QueryOpts<'static> {
        QueryOpts::new()
            .optimize(self.optimize)
            .compact(self.compact)
    }

    /// A fresh per-command context, traced when `\trace on` is in effect.
    fn fresh_ctx(&self) -> ExecContext {
        if self.tracing {
            ExecContext::new().traced()
        } else {
            ExecContext::new()
        }
    }

    /// Folds a finished command context into the session: counters into
    /// the running totals, and the recorded span tree (if tracing) into
    /// `last_trace`.
    fn absorb(&mut self, ctx: &ExecContext) {
        self.stats.merge(&ctx.stats());
        if let Some(trace) = ctx.take_trace() {
            self.last_trace = Some(trace);
        }
    }

    /// Runs a query-evaluating closure under a fresh [`ExecContext`] and
    /// folds its counters into the session totals.
    fn tracked<T>(&mut self, run: impl FnOnce(&Database, &ExecContext) -> Result<T>) -> Result<T> {
        let ctx = self.fresh_ctx();
        let out = run(&self.db, &ctx);
        self.absorb(&ctx);
        out
    }

    /// Executes one command line. Returns `Ok(Some(output))` for a normal
    /// command, `Ok(None)` for `quit`.
    ///
    /// # Errors
    /// [`DbError`] for any malformed command or failed operation; the
    /// session stays usable.
    pub fn execute(&mut self, line: &str) -> Result<Option<String>> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(Some(String::new()));
        }
        let (cmd, rest) = match line.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r.trim()),
            None => (line, ""),
        };
        match cmd {
            "quit" | "exit" => Ok(None),
            "help" => Ok(Some(HELP.to_owned())),
            "tables" => Ok(Some(self.db.table_names().join("\n"))),
            "create" => self.create(rest).map(Some),
            "insert" => self.mutate(rest, false).map(Some),
            "retract" => self.mutate(rest, true).map(Some),
            "show" => Ok(Some(self.db.table(rest)?.render())),
            "timeline" => {
                let mut parts = rest.split_whitespace();
                let (name, lo, hi) = (
                    parts.next().unwrap_or(""),
                    parts.next().and_then(|w| w.parse().ok()).unwrap_or(0i64),
                    parts.next().and_then(|w| w.parse().ok()).unwrap_or(40i64),
                );
                Ok(Some(self.db.table(name)?.timeline(lo, hi)))
            }
            "ask" => {
                let opts = self.opts();
                let truth = self.tracked(|db, ctx| {
                    db.run(rest, opts.ctx(ctx))?
                        .truth_in(ctx)
                        .map_err(DbError::Query)
                })?;
                Ok(Some(format!("{truth}")))
            }
            "view" => {
                let (name, src) = rest
                    .split_once('=')
                    .ok_or_else(|| DbError::IncompleteTuple {
                        detail: "expected `view name = <query>`".into(),
                    })?;
                let ctx = self.fresh_ctx();
                let out = {
                    let table = self.db.materialize_view_opts(
                        name.trim(),
                        src.trim(),
                        self.opts().ctx(&ctx),
                    )?;
                    format!(
                        "view `{}` materialized with {} generalized tuple(s)",
                        table.name(),
                        table.len()
                    )
                };
                self.absorb(&ctx);
                Ok(Some(out))
            }
            "query" => self.query(rest).map(Some),
            "\\explain" | "explain" => self.explain(rest).map(Some),
            "\\optimize" | "optimize" => self.optimize_cmd(rest).map(Some),
            "\\compact" | "compact" => self.compact_cmd(rest).map(Some),
            "\\trace" | "trace" => self.trace(rest).map(Some),
            "\\flame" | "flame" => self.flame(rest).map(Some),
            "\\metrics" | "metrics" => Ok(Some(self.db.metrics().snapshot().to_prometheus())),
            "\\top" | "top" => Ok(Some(self.db.metrics().snapshot().render_top())),
            "\\slowlog" | "slowlog" => {
                let snap = self.db.metrics().snapshot();
                match rest {
                    "json" => Ok(Some(snap.slow_json_lines())),
                    "" => Ok(Some(snap.render_slowlog())),
                    other => Err(DbError::IncompleteTuple {
                        detail: format!("unrecognized `\\slowlog` argument `{other}` (try `help`)"),
                    }),
                }
            }
            "\\histo" | "histo" => Ok(Some(self.db.metrics().snapshot().render_histograms())),
            "\\storage" | "storage" => Ok(Some(itd_core::storage_stats().to_string())),
            "\\plancache" | "plancache" => {
                let stats = itd_query::plan_cache_stats();
                Ok(Some(format!(
                    "plan cache: {} prepared plan(s) retained (cap {})\n\
                     lookups:       {} ({} hits, {} misses)\n\
                     insertions:    {}\n\
                     evictions:     {}\n\
                     invalidations: {}\n\
                     bypasses:      {} (runs without a plan token)\n\
                     db plan token: {}",
                    itd_query::plan_cache_len(),
                    itd_query::PLAN_CACHE_CAP,
                    stats.lookups,
                    stats.hits,
                    stats.misses,
                    stats.insertions,
                    stats.evictions,
                    stats.invalidations,
                    stats.bypasses,
                    self.db.plan_token(),
                )))
            }
            "\\views" | "views" => Ok(Some(self.views())),
            "\\subscribe" | "subscribe" => self.subscribe(rest).map(Some),
            "\\unsubscribe" | "unsubscribe" => self.unsubscribe(rest).map(Some),
            "\\stats" | "stats" => match rest {
                "reset" => {
                    self.stats = StatsSnapshot::default();
                    Ok(Some("statistics reset".to_owned()))
                }
                "json" => Ok(Some(self.stats.to_json())),
                _ => Ok(Some(format!("{}", self.stats))),
            },
            "save" => {
                self.db.save(rest)?;
                Ok(Some(format!("saved to {rest}")))
            }
            "load" => {
                self.db = Database::load(rest)?;
                Ok(Some(format!(
                    "loaded {} table(s)",
                    self.db.table_names().len()
                )))
            }
            other => Err(DbError::IncompleteTuple {
                detail: format!("unknown command `{other}` (try `help`)"),
            }),
        }
    }

    /// `create name(t1, t2; d1, d2)` — data part optional.
    fn create(&mut self, rest: &str) -> Result<String> {
        let bad = |detail: &str| DbError::IncompleteTuple {
            detail: detail.to_owned(),
        };
        let (name, args) = rest
            .split_once('(')
            .ok_or_else(|| bad("expected `create name(attrs...)`"))?;
        let args = args
            .strip_suffix(')')
            .ok_or_else(|| bad("missing closing `)`"))?;
        let (temporal_part, data_part) = match args.split_once(';') {
            Some((t, d)) => (t, d),
            None => (args, ""),
        };
        let split = |s: &str| -> Vec<String> {
            s.split(',')
                .map(str::trim)
                .filter(|a| !a.is_empty())
                .map(str::to_owned)
                .collect()
        };
        let temporal = split(temporal_part);
        let data = split(data_part);
        let tref: Vec<&str> = temporal.iter().map(String::as_str).collect();
        let dref: Vec<&str> = data.iter().map(String::as_str).collect();
        self.db.create_table(name.trim(), &tref, &dref)?;
        Ok(format!(
            "created `{}` with {} temporal and {} data attribute(s)",
            name.trim(),
            temporal.len(),
            data.len()
        ))
    }

    /// `insert table clause, clause, ...` / `retract table clause, ...`
    /// where each clause is one of `lrp attr offset period`,
    /// `at attr value`, `le attr c`, `ge attr c`, `eq attr c`,
    /// `diffle a b c`, `eq a b c` (difference equality), or
    /// `datum attr value`. Both go through [`Database::apply`], so
    /// registered views (`\subscribe`) are refreshed incrementally.
    fn mutate(&mut self, rest: &str, retract: bool) -> Result<String> {
        let verb = if retract { "retract" } else { "insert" };
        let (table_name, clauses) =
            rest.split_once(char::is_whitespace)
                .ok_or_else(|| DbError::IncompleteTuple {
                    detail: format!("expected `{verb} table clauses...`"),
                })?;
        let spec = Self::parse_spec(clauses)?;
        let txn = if retract {
            Txn::new().retract(table_name, spec)
        } else {
            Txn::new().insert(table_name, spec)
        };
        let ctx = self.fresh_ctx();
        let summary = self.db.apply_with(txn, &ctx);
        self.absorb(&ctx);
        let summary = summary?;
        let mut out = if retract {
            format!("retracted {} row(s) from `{table_name}`", summary.retracted)
        } else {
            format!("inserted into `{table_name}`")
        };
        if summary.views_refreshed > 0 {
            out.push_str(&format!(
                " ({} view(s) refreshed, {} recomputed)",
                summary.views_refreshed, summary.views_recomputed
            ));
        }
        Ok(out)
    }

    /// Parses the comma-separated clause list shared by `insert` and
    /// `retract` into a [`TupleSpec`].
    fn parse_spec(clauses: &str) -> Result<TupleSpec> {
        let bad = |detail: String| DbError::IncompleteTuple { detail };
        let mut spec = TupleSpec::new();
        for clause in clauses.split(',') {
            let words: Vec<&str> = clause.split_whitespace().collect();
            let int = |w: &str| -> Result<i64> {
                w.parse()
                    .map_err(|_| bad(format!("`{w}` is not an integer")))
            };
            spec = match words.as_slice() {
                ["lrp", attr, offset, period] => spec.lrp(attr, int(offset)?, int(period)?),
                ["at", attr, value] => spec.at(attr, int(value)?),
                ["le", attr, c] => spec.le(attr, int(c)?),
                ["ge", attr, c] => spec.ge(attr, int(c)?),
                ["eq", attr, c] => spec.eq(attr, int(c)?),
                ["diffle", a, b, c] => spec.diff_le(a, b, int(c)?),
                ["eq", a, b, c] => spec.diff_eq(a, b, int(c)?),
                ["datum", attr, value] => match value.parse::<i64>() {
                    Ok(v) => spec.datum(attr, v),
                    Err(_) => spec.datum(attr, Value::str(*value)),
                },
                other => {
                    return Err(bad(format!("unrecognized clause {other:?}")));
                }
            };
        }
        Ok(spec)
    }

    /// `\views` — lists registered (incrementally maintained) views with
    /// their maintenance counters.
    fn views(&self) -> String {
        let infos = self.db.views();
        if infos.is_empty() {
            return "no views registered (`\\subscribe name = <query>`)".to_owned();
        }
        let mut out = String::from("registered views:");
        for v in infos {
            out.push_str(&format!(
                "\n  {}: {} generalized tuple(s), {} refresh(es) ({} full), {} delta row(s)\n      {}",
                v.name, v.tuples, v.refreshes, v.full_refreshes, v.delta_rows, v.query
            ));
        }
        out
    }

    /// `\subscribe name = <query>` — registers an incrementally
    /// maintained view; `insert`/`retract` keep it up to date.
    fn subscribe(&mut self, rest: &str) -> Result<String> {
        let (name, src) = rest
            .split_once('=')
            .ok_or_else(|| DbError::IncompleteTuple {
                detail: "expected `\\subscribe name = <query>`".into(),
            })?;
        let ctx = self.fresh_ctx();
        let out = self
            .db
            .register_view_opts(name.trim(), src.trim(), self.opts().ctx(&ctx))
            .map(|_| {
                let snap = self.db.view_named(name.trim()).expect("just registered");
                format!(
                    "subscribed `{}` with {} generalized tuple(s); `insert`/`retract` maintain it",
                    snap.name,
                    snap.relation.tuple_count()
                )
            });
        self.absorb(&ctx);
        out
    }

    /// `\unsubscribe name` — deregisters a view.
    fn unsubscribe(&mut self, rest: &str) -> Result<String> {
        let name = rest.trim();
        let id = self
            .db
            .views()
            .into_iter()
            .find(|v| v.name == name)
            .ok_or_else(|| DbError::UnknownView(name.to_owned()))?
            .id;
        self.db.deregister_view(id);
        Ok(format!("unsubscribed `{name}`"))
    }

    /// `query <formula>` — prints the symbolic answer relation.
    fn query(&mut self, src: &str) -> Result<String> {
        let opts = self.opts();
        let result = self.tracked(|db, ctx| db.run(src, opts.ctx(ctx)).map(|o| o.result))?;
        let mut out = String::new();
        out.push_str(&format!(
            "free variables: temporal {:?}, data {:?}\n",
            result.temporal_vars, result.data_vars
        ));
        out.push_str(&format!("{}", result.relation));
        Ok(out)
    }

    /// `\explain <formula>` — prints the compiled algebra plan (plus the
    /// optimizer's rewrite of it, when `\optimize on`) without executing
    /// anything; `\explain analyze <formula>` additionally runs the query
    /// with tracing and lines each plan node's cost estimate up with the
    /// rows/pairs its spans actually recorded.
    fn explain(&mut self, rest: &str) -> Result<String> {
        if let Some(src) = rest.strip_prefix("analyze ") {
            let ctx = ExecContext::new().traced();
            let out = self.db.run(src.trim(), self.opts().ctx(&ctx).trace(true))?;
            self.stats.merge(&ctx.stats());
            let trace = out.trace.unwrap_or_default();
            let mut text = out.plan.render_analyze(&trace);
            if !out.plan.rewrites().is_empty() {
                text.push_str(&format!("rewrites: {}\n", out.plan.rewrites().join(", ")));
            }
            text.push_str(&format!(
                "\nanswer: {} generalized tuple(s)\n\n{}",
                out.result.relation.tuple_count(),
                trace.render_tree(),
            ));
            self.last_trace = Some(trace);
            return Ok(text);
        }
        if self.optimize {
            Ok(self.db.explain_opt_with(rest, self.compact)?.render())
        } else {
            Ok(self.db.explain(rest)?.render())
        }
    }

    /// `\optimize [on|off]` — toggles the cost-guided plan rewriter for
    /// `ask`/`query`/`view`/`\explain`; bare `\optimize` shows the state.
    fn optimize_cmd(&mut self, rest: &str) -> Result<String> {
        match rest.trim() {
            "" => Ok(format!(
                "optimizer is {}",
                if self.optimize { "on" } else { "off" }
            )),
            "on" => {
                self.optimize = true;
                Ok("optimizer on — queries run through the cost-guided plan rewriter".to_owned())
            }
            "off" => {
                self.optimize = false;
                Ok("optimizer off — queries execute the direct lowering of the formula".to_owned())
            }
            other => Err(DbError::IncompleteTuple {
                detail: format!("unrecognized `\\optimize` argument `{other}` (try `help`)"),
            }),
        }
    }

    /// `\compact [on|off]` — toggles adaptive intermediate compaction
    /// (subsumption pruning + coalescing between plan nodes) for
    /// `ask`/`query`/`view`/`\explain`; bare `\compact` shows the state.
    fn compact_cmd(&mut self, rest: &str) -> Result<String> {
        match rest.trim() {
            "" => Ok(format!(
                "compaction is {}",
                if self.compact { "on" } else { "off" }
            )),
            "on" => {
                self.compact = true;
                Ok(
                    "compaction on — intermediate relations are subsumption-pruned and \
                    coalesced before quadratic consumers"
                        .to_owned(),
                )
            }
            "off" => {
                self.compact = false;
                Ok("compaction off — intermediate relations flow through unreduced".to_owned())
            }
            other => Err(DbError::IncompleteTuple {
                detail: format!("unrecognized `\\compact` argument `{other}` (try `help`)"),
            }),
        }
    }

    /// `\trace [on|off|json|chrome <path>]` — toggles span recording for
    /// query commands, shows the last recorded tree, or exports it.
    fn trace(&mut self, rest: &str) -> Result<String> {
        let no_trace = || DbError::IncompleteTuple {
            detail: "no trace recorded yet (`\\trace on`, then run a query)".into(),
        };
        let words: Vec<&str> = rest.split_whitespace().collect();
        match words.as_slice() {
            [] => {
                let mut out = format!("tracing is {}", if self.tracing { "on" } else { "off" });
                match &self.last_trace {
                    Some(trace) => {
                        out.push_str(&format!("; last trace ({} span(s)):\n", trace.len()));
                        out.push_str(&trace.render_tree());
                    }
                    None => out.push_str("; no trace recorded yet"),
                }
                Ok(out)
            }
            ["on"] => {
                self.tracing = true;
                Ok("tracing on — query commands now record span trees (`\\trace` shows the last one)".to_owned())
            }
            ["off"] => {
                self.tracing = false;
                Ok("tracing off".to_owned())
            }
            ["json"] => Ok(self
                .last_trace
                .as_ref()
                .ok_or_else(no_trace)?
                .to_json_lines()),
            ["chrome", path] => {
                let trace = self.last_trace.as_ref().ok_or_else(no_trace)?;
                std::fs::write(path, trace.to_chrome_trace())
                    .map_err(|e| DbError::serde_caused_by(format!("cannot write {path}"), e))?;
                Ok(format!(
                    "wrote {} span(s) to {path} (load in Perfetto or chrome://tracing)",
                    trace.len()
                ))
            }
            other => Err(DbError::IncompleteTuple {
                detail: format!("unrecognized `\\trace` arguments {other:?} (try `help`)"),
            }),
        }
    }

    /// `\flame <path>` — folds the last recorded trace into flamegraph
    /// collapsed-stack lines and writes them to `path` (feed the file to
    /// `inferno-flamegraph` or `flamegraph.pl`).
    fn flame(&mut self, rest: &str) -> Result<String> {
        let path = rest.trim();
        if path.is_empty() {
            return Err(DbError::IncompleteTuple {
                detail: "expected `\\flame <path>`".into(),
            });
        }
        let trace = self
            .last_trace
            .as_ref()
            .ok_or_else(|| DbError::IncompleteTuple {
                detail: "no trace recorded yet (`\\trace on`, then run a query)".into(),
            })?;
        let folded = trace.to_folded();
        let lines = folded.lines().count();
        std::fs::write(path, folded)
            .map_err(|e| DbError::serde_caused_by(format!("cannot write {path}"), e))?;
        Ok(format!(
            "wrote {lines} collapsed stack(s) to {path} (render with inferno-flamegraph or flamegraph.pl)"
        ))
    }
}

const HELP: &str = "\
commands:
  create name(t1, t2; d1)        define a table (data attrs after `;`)
  insert table clause, ...       clauses: lrp attr off period | at attr v |
                                 le/ge/eq attr c | diffle a b c | eq a b c |
                                 datum attr value
  retract table clause, ...      remove every row structurally equal to the
                                 described tuple (same clauses as insert)
  show table                     render a table paper-style
  timeline table [lo hi]         ASCII occupancy timeline of a window
  tables                         list tables
  ask <formula>                  yes/no query (first-order syntax)
  view name = <formula>          materialize an open query as a table
  query <formula>                open query; prints the answer relation
  \\subscribe name = <formula>    register an incrementally maintained view;
                                 insert/retract keep it up to date
  \\unsubscribe name              deregister a maintained view
  \\views                         list maintained views with refresh counters
  \\explain <formula>             print the compiled algebra plan (no execution);
                                 with \\optimize on, also its rewritten form
  \\explain analyze <formula>     execute with tracing; per-node estimated vs
                                 actual rows/pairs, plus the span tree
  \\optimize [on|off]             cost-guided plan rewriting for queries
                                 (default on; bare \\optimize shows the state)
  \\compact [on|off]              adaptive compaction of intermediate results
                                 (default on; bare \\compact shows the state)
  \\trace [on|off]                record span trees for query commands;
                                 bare \\trace shows the last recorded tree
  \\trace json                    export the last trace as JSON lines
  \\trace chrome <path>           export it in Chrome trace-event format
  \\flame <path>                  export the last trace as flamegraph
                                 collapsed stacks (inferno / flamegraph.pl)
  \\metrics                       Prometheus text rendering of the database's
                                 cross-query metrics registry
  \\top                           registry summary: latency/pairs/rows
                                 percentiles and per-op wall-time table
  \\slowlog [json]                worst queries by wall time and by pairs
                                 (bounded log; `json` exports JSON lines)
  \\histo                         ASCII latency/pairs/rows histograms
  \\storage                       global columnar-store statistics (value and
                                 temporal-part interner arenas, residue-index
                                 builds vs cache reuses, pairwise-outcome cache)
  \\plancache                     prepared-plan cache counters (hits skip
                                 parse + sortcheck + optimize) and this
                                 database's plan token
  \\stats [reset|json]            per-operator execution counters of every
                                 query so far (reset them, or dump as JSON)
  save <path> / load <path>      JSON persistence
  quit";

#[cfg(test)]
mod tests {
    use super::*;

    fn run(session: &mut ReplSession, line: &str) -> String {
        session
            .execute(line)
            .unwrap_or_else(|e| panic!("`{line}` failed: {e}"))
            .expect("not a quit")
    }

    #[test]
    fn end_to_end_session() {
        let mut s = ReplSession::new();
        run(&mut s, "create train(dep, arr; kind)");
        run(
            &mut s,
            "insert train lrp dep 2 60, lrp arr 80 60, eq dep arr -78, datum kind slow",
        );
        assert_eq!(run(&mut s, r#"ask exists a. train(62, a; "slow")"#), "true");
        assert_eq!(run(&mut s, r#"ask train(63, 141; "slow")"#), "false");
        let shown = run(&mut s, "show train");
        assert!(shown.contains("dep"), "{shown}");
        assert_eq!(run(&mut s, "tables"), "train");
        let q = run(&mut s, "query train(d, a; k) and d >= 0");
        assert!(q.contains("temporal [\"d\", \"a\"]"), "{q}");
        assert!(s.execute("quit").unwrap().is_none());
    }

    #[test]
    fn plancache_view_reports_counters_and_rotates_token() {
        let mut s = ReplSession::new();
        run(&mut s, "create ev(t)");
        run(&mut s, "insert ev lrp t 0 2");
        let token = |out: &str| {
            out.lines()
                .find_map(|l| l.strip_prefix("db plan token: "))
                .expect("token line")
                .parse::<u64>()
                .expect("token number")
        };
        let before = run(&mut s, "\\plancache");
        assert!(before.contains("plan cache:"), "{before}");
        assert!(before.contains("invalidations:"), "{before}");
        // Mutating the schema rotates the database's plan token.
        run(&mut s, "create other(t)");
        let after = run(&mut s, "\\plancache");
        assert_ne!(token(&before), token(&after));
    }

    #[test]
    fn views_in_repl() {
        let mut s = ReplSession::new();
        run(&mut s, "create ev(t)");
        run(&mut s, "insert ev lrp t 0 2");
        let msg = run(&mut s, "view pos = ev(t) and t >= 0");
        assert!(msg.contains("view `pos`"), "{msg}");
        assert_eq!(run(&mut s, "ask pos(4)"), "true");
        assert_eq!(run(&mut s, "ask pos(-4)"), "false");
        assert!(s.execute("view broken").is_err());
    }

    #[test]
    fn subscriptions_follow_inserts_and_retracts() {
        let mut s = ReplSession::new();
        run(&mut s, "create ev(t)");
        run(&mut s, "insert ev lrp t 0 2");
        assert_eq!(
            run(&mut s, "\\views"),
            "no views registered (`\\subscribe name = <query>`)"
        );
        let sub = run(&mut s, "\\subscribe pos = ev(t) and t >= 0");
        assert!(sub.contains("subscribed `pos`"), "{sub}");
        let tuples = |s: &ReplSession| {
            s.database()
                .view_named("pos")
                .expect("registered")
                .relation
                .tuple_count()
        };
        assert_eq!(tuples(&s), 1);
        // Mutations route through the delta path and refresh the view.
        let ins = run(&mut s, "insert ev lrp t 1 2");
        assert!(ins.contains("1 view(s) refreshed"), "{ins}");
        assert_eq!(tuples(&s), 2);
        let ret = run(&mut s, "retract ev lrp t 1 2");
        assert!(ret.contains("retracted 1 row(s) from `ev`"), "{ret}");
        assert!(ret.contains("1 view(s) refreshed"), "{ret}");
        assert_eq!(tuples(&s), 1);
        let listing = run(&mut s, "\\views");
        assert!(listing.contains("pos:"), "{listing}");
        assert!(listing.contains("refresh(es)"), "{listing}");
        run(&mut s, "\\unsubscribe pos");
        assert!(s.execute("\\unsubscribe pos").is_err());
        assert!(s.execute("\\subscribe broken").is_err());
    }

    #[test]
    fn plancache_reports_bypasses() {
        let mut s = ReplSession::new();
        run(&mut s, "create ev(t)");
        run(&mut s, "insert ev lrp t 0 2");
        run(&mut s, "ask ev(4)");
        let out = run(&mut s, "\\plancache");
        assert!(out.contains("bypasses:"), "{out}");
    }

    #[test]
    fn integer_data_and_points() {
        let mut s = ReplSession::new();
        run(&mut s, "create ev(t; n)");
        run(&mut s, "insert ev at t 5, datum n 42");
        assert_eq!(run(&mut s, "ask ev(5; 42)"), "true");
        assert_eq!(run(&mut s, "ask ev(6; 42)"), "false");
    }

    #[test]
    fn errors_are_recoverable() {
        let mut s = ReplSession::new();
        assert!(s.execute("bogus command").is_err());
        assert!(s.execute("create broken").is_err());
        assert!(s.execute("insert nosuch lrp t 0 1").is_err());
        assert!(s.execute("show nosuch").is_err());
        assert!(s.execute("ask nonsense(((").is_err());
        // Still usable afterwards.
        run(&mut s, "create ok(t)");
        run(&mut s, "insert ok lrp t 0 2");
        assert_eq!(run(&mut s, "ask ok(4)"), "true");
    }

    #[test]
    fn storage_command_reports_arena_stats() {
        let mut s = ReplSession::new();
        run(&mut s, "create ev(t; n)");
        run(&mut s, "insert ev lrp t 0 2, datum n 42");
        let out = run(&mut s, "\\storage");
        assert!(out.contains("value arena:"), "{out}");
        assert!(out.contains("part arena:"), "{out}");
        assert!(out.contains("indexes:"), "{out}");
        assert!(run(&mut s, "help").contains("\\storage"));
    }

    #[test]
    fn comments_blank_lines_and_help() {
        let mut s = ReplSession::new();
        assert_eq!(run(&mut s, ""), "");
        assert_eq!(run(&mut s, "# a comment"), "");
        assert!(run(&mut s, "help").contains("commands"));
    }

    #[test]
    fn stats_command_reports_and_resets() {
        let mut s = ReplSession::new();
        assert!(run(&mut s, "\\stats").contains("no algebra operations"));
        run(&mut s, "create ev(t)");
        run(&mut s, "insert ev lrp t 0 2");
        assert_eq!(run(&mut s, "ask ev(4) and ev(6)"), "true");
        let report = run(&mut s, "\\stats");
        assert!(report.contains("join"), "{report}");
        assert!(report.contains("project"), "{report}");
        assert!(s.stats().total_calls() > 0);
        // Both spellings work, and reset clears the counters.
        assert_eq!(run(&mut s, "stats"), report);
        run(&mut s, "\\stats reset");
        assert!(run(&mut s, "\\stats").contains("no algebra operations"));
    }

    #[test]
    fn explain_prints_plan_without_executing() {
        let mut s = ReplSession::new();
        run(&mut s, "create ev(t)");
        run(&mut s, "insert ev lrp t 0 2");
        let plan = run(&mut s, "\\explain ev(t) and not ev(t + 1)");
        assert!(plan.contains("join on t"), "{plan}");
        assert!(plan.contains("difference from Z^1"), "{plan}");
        // Nothing ran: the session counters are untouched.
        assert!(s.stats().is_zero());
        // Both spellings; errors surface like `query` errors would.
        assert_eq!(run(&mut s, "explain ev(t)"), run(&mut s, "\\explain ev(t)"));
        assert!(s.execute("\\explain nosuch(t)").is_err());
    }

    #[test]
    fn explain_analyze_runs_and_shows_spans() {
        let mut s = ReplSession::new();
        run(&mut s, "create ev(t)");
        run(&mut s, "insert ev lrp t 0 2");
        let out = run(&mut s, "\\explain analyze ev(t) and ev(t + 2)");
        assert!(out.contains("and ⟨t⟩"), "{out}");
        assert!(out.contains("answer: "), "{out}");
        assert!(out.contains("join: in="), "{out}");
        // The run is folded into \stats and the trace is kept.
        assert!(s.stats().total_calls() > 0);
        assert!(s.last_trace().is_some());
    }

    #[test]
    fn compact_toggle_shapes_explained_plan() {
        let mut s = ReplSession::new();
        assert!(s.compacting());
        assert!(run(&mut s, "\\compact").contains("compaction is on"));
        run(&mut s, "create ev(t)");
        // Eight periodic tuples put the scan estimate over the compaction
        // threshold, so the conjunction's inputs get compact nodes.
        for i in 0..8 {
            run(&mut s, &format!("insert ev lrp t {i} 8"));
        }
        let plan = run(&mut s, "\\explain ev(t) and ev(t)");
        assert!(plan.contains("compact"), "{plan}");
        let msg = run(&mut s, "\\compact off");
        assert!(msg.contains("compaction off"), "{msg}");
        assert!(!s.compacting());
        let plan = run(&mut s, "\\explain ev(t) and ev(t)");
        assert!(!plan.contains("compact"), "{plan}");
        // Queries still answer identically with compaction off.
        assert_eq!(run(&mut s, "ask ev(4) and ev(12)"), "true");
        run(&mut s, "\\compact on");
        assert_eq!(run(&mut s, "ask ev(4) and ev(12)"), "true");
        // Both spellings work; bad arguments are recoverable errors.
        assert!(run(&mut s, "compact").contains("compaction is on"));
        assert!(s.execute("\\compact sideways").is_err());
        assert_eq!(run(&mut s, "ask ev(4)"), "true");
    }

    #[test]
    fn trace_toggle_and_exports() {
        let mut s = ReplSession::new();
        run(&mut s, "create ev(t)");
        run(&mut s, "insert ev lrp t 0 2");
        // Nothing recorded yet: exports fail, status says so.
        assert!(run(&mut s, "\\trace").contains("no trace recorded"));
        assert!(s.execute("\\trace json").is_err());
        assert!(s.execute("\\trace bogus args").is_err());
        run(&mut s, "\\trace on");
        assert!(s.tracing());
        assert_eq!(run(&mut s, "ask ev(4)"), "true");
        let shown = run(&mut s, "\\trace");
        assert!(shown.contains("tracing is on"), "{shown}");
        assert!(shown.contains("ev(4)"), "{shown}");
        let json = run(&mut s, "\\trace json");
        assert!(json.lines().count() > 1, "{json}");
        assert!(json.lines().all(|l| l.starts_with('{')), "{json}");
        let path = std::env::temp_dir().join("itd_repl_trace_test.json");
        let path_str = path.to_str().unwrap().to_owned();
        let msg = run(&mut s, &format!("\\trace chrome {path_str}"));
        assert!(msg.contains("Perfetto"), "{msg}");
        let written = std::fs::read_to_string(&path).unwrap();
        assert!(written.trim_start().starts_with('['), "{written}");
        assert!(written.contains("\"ph\":\"X\""), "{written}");
        std::fs::remove_file(&path).ok();
        run(&mut s, "\\trace off");
        assert!(!s.tracing());
    }

    #[test]
    fn metrics_and_stats_json() {
        let mut s = ReplSession::new();
        run(&mut s, "create ev(t)");
        run(&mut s, "insert ev lrp t 0 2");
        run(&mut s, "ask ev(4)");
        let metrics = run(&mut s, "\\metrics");
        assert!(
            metrics.contains("# TYPE itd_op_calls_total counter"),
            "{metrics}"
        );
        assert!(
            metrics.contains("itd_op_calls_total{op=\"select\"}"),
            "{metrics}"
        );
        let json = run(&mut s, "\\stats json");
        assert!(
            json.starts_with('{') && json.contains("\"total_calls\":"),
            "{json}"
        );
        // `metrics` spelling without the backslash also works.
        assert_eq!(run(&mut s, "metrics"), metrics);
        // Registry-level families appear too (the rendering subsumes the
        // per-query exporter).
        assert!(
            metrics.contains("# TYPE itd_queries_total counter"),
            "{metrics}"
        );
        assert!(
            metrics.contains("# TYPE itd_query_wall_seconds histogram"),
            "{metrics}"
        );
    }

    #[test]
    fn registry_commands_and_flame() {
        let mut s = ReplSession::new();
        run(&mut s, "create ev(t)");
        run(&mut s, "insert ev lrp t 0 2");
        run(&mut s, "ask ev(4)");
        run(&mut s, "query ev(t) and t >= 0");
        let top = run(&mut s, "\\top");
        assert!(top.contains("queries observed"), "{top}");
        assert!(top.contains("wall time"), "{top}");
        let slow = run(&mut s, "\\slowlog");
        assert!(slow.contains("worst by wall time"), "{slow}");
        assert!(slow.contains("worst by pairs"), "{slow}");
        assert!(slow.contains("ev"), "{slow}");
        let json = run(&mut s, "\\slowlog json");
        assert!(json.lines().all(|l| l.starts_with("{\"rank\":")), "{json}");
        let histo = run(&mut s, "\\histo");
        assert!(histo.contains("query wall time"), "{histo}");
        assert!(s.execute("\\slowlog nope").is_err());

        // `\flame` needs a recorded trace first.
        assert!(s.execute("\\flame out.folded").is_err());
        assert!(s.execute("\\flame").is_err());
        run(&mut s, "\\trace on");
        run(&mut s, "ask ev(4)");
        let dir = std::env::temp_dir().join("itd_repl_flame_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.folded");
        let msg = run(&mut s, &format!("\\flame {}", path.display()));
        assert!(msg.contains("collapsed stack"), "{msg}");
        let folded = std::fs::read_to_string(&path).unwrap();
        assert!(!folded.is_empty(), "folded output must not be empty");
        for line in folded.lines() {
            // Collapsed-stack convention: `frame;frame;... value` with the
            // sample value after the last space.
            let (stack, value) = line.rsplit_once(' ').expect("frame and value");
            assert!(!stack.is_empty(), "{line}");
            assert!(!stack.contains('\n'));
            value.parse::<u64>().expect("numeric sample value");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join("itd_repl_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("session.json");
        let path_str = path.to_str().unwrap().to_owned();
        let mut s = ReplSession::new();
        run(&mut s, "create ev(t)");
        run(&mut s, "insert ev lrp t 1 3");
        run(&mut s, &format!("save {path_str}"));
        let mut s2 = ReplSession::new();
        let msg = run(&mut s2, &format!("load {path_str}"));
        assert!(msg.contains("1 table"), "{msg}");
        assert_eq!(run(&mut s2, "ask ev(4)"), "true");
        std::fs::remove_file(&path).ok();
    }
}

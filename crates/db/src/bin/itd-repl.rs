//! A small interactive shell over the temporal database.
//!
//! ```text
//! $ cargo run -p itd-db --bin itd-repl
//! itd> create train(dep, arr; kind)
//! itd> insert train lrp dep 2 60, lrp arr 80 60, eq dep arr -78, datum kind slow
//! itd> show train
//! itd> ask exists a. train(62, a; "slow")
//! itd> query train(d, a; k) and d >= 0 and a <= 200
//! itd> \explain train(d, a; k) and not train(d, a; "slow")
//! itd> \trace on
//! itd> ask exists a. train(62, a; "slow")
//! itd> \trace chrome /tmp/ask.trace.json
//! itd> save /tmp/trains.json
//! itd> quit
//! ```
//!
//! Commands: `create`, `insert`, `show`, `tables`, `ask`, `query`,
//! `\explain [analyze]`, `\trace [on|off|json|chrome <path>]`,
//! `\metrics`, `\stats [reset|json]`, `save <path>`, `load <path>`,
//! `help`, `quit`. The command layer is in [`itd_db::repl`] so it is
//! unit-testable; this binary is a thin stdin loop.

use std::io::{BufRead, Write};

use itd_db::render_error_chain;
use itd_db::repl::ReplSession;

fn main() {
    let mut session = ReplSession::new();
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    println!("itd — infinite temporal database shell (type `help`)");
    loop {
        print!("itd> ");
        stdout.flush().expect("stdout");
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        match session.execute(line.trim()) {
            Ok(Some(output)) => println!("{output}"),
            Ok(None) => break, // quit
            Err(e) => eprintln!("error: {}", render_error_chain(&e)),
        }
    }
}

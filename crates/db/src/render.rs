//! Paper-style table rendering.
//!
//! Displays a [`Table`] like the paper's Table 1: one row per generalized
//! tuple, one column per attribute (lrps shown as `c + kn`), and a trailing
//! constraints column.

use std::fmt::Write as _;

use crate::table::Table;

impl Table {
    /// Renders the table in the paper's style.
    pub fn render(&self) -> String {
        let mut headers: Vec<String> = Vec::new();
        headers.extend(self.temporal_names().iter().cloned());
        headers.extend(self.data_names().iter().cloned());
        headers.push("constraints".to_owned());

        let mut rows: Vec<Vec<String>> = Vec::new();
        let rel = self.relation();
        for t in rel.rows() {
            let mut row: Vec<String> = Vec::with_capacity(headers.len());
            for l in t.lrps() {
                row.push(l.to_string());
            }
            for c in 0..rel.schema().data() {
                row.push(t.datum(c).to_string());
            }
            row.push(if t.constraints().is_unconstrained() {
                String::new()
            } else {
                t.constraints().to_string()
            });
            rows.push(row);
        }

        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        for row in &rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }

        let mut out = String::new();
        let _ = writeln!(out, "{}", self.name());
        let rule = |out: &mut String| {
            out.push('+');
            for w in &widths {
                out.push_str(&"-".repeat(w + 2));
                out.push('+');
            }
            out.push('\n');
        };
        let line = |out: &mut String, cells: &[String]| {
            out.push('|');
            for (w, cell) in widths.iter().zip(cells) {
                let pad = w - cell.chars().count();
                let _ = write!(out, " {}{} |", cell, " ".repeat(pad));
            }
            out.push('\n');
        };
        rule(&mut out);
        line(&mut out, &headers);
        rule(&mut out);
        for row in &rows {
            line(&mut out, row);
        }
        rule(&mut out);
        out
    }
}

impl Table {
    /// Renders an ASCII timeline of the window `[lo, hi]`.
    ///
    /// For a temporal-arity-2 table, each distinct data vector gets a lane
    /// and every denoted interval `[a, b]` with any overlap of the window
    /// paints `#` from `a` to `b`. For temporal arity 1, time points paint
    /// single `#` cells. Other arities render an explanatory note instead.
    pub fn timeline(&self, lo: i64, hi: i64) -> String {
        use std::collections::BTreeMap;
        if lo > hi {
            return String::from("(empty window)\n");
        }
        let arity = self.relation().schema().temporal();
        if arity == 0 || arity > 2 {
            return format!("(timeline supports temporal arity 1 or 2; this table has {arity})\n");
        }
        let width = (hi - lo + 1) as usize;
        let mut lanes: BTreeMap<String, Vec<bool>> = BTreeMap::new();
        // Materialize with slack so intervals straddling the window edges
        // are painted too.
        let slack = (hi - lo).max(8);
        for (times, data) in self
            .relation()
            .materialize(lo.saturating_sub(slack), hi.saturating_add(slack))
        {
            let label = if data.is_empty() {
                self.name().to_owned()
            } else {
                data.iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(",")
            };
            let lane = lanes.entry(label).or_insert_with(|| vec![false; width]);
            let (a, b) = match times.as_slice() {
                [t] => (*t, *t),
                [a, b] => (*a.min(b), *a.max(b)),
                _ => unreachable!("arity checked above"),
            };
            for t in a.max(lo)..=b.min(hi) {
                lane[(t - lo) as usize] = true;
            }
        }
        let label_width = lanes.keys().map(String::len).max().unwrap_or(0).max(4);
        let mut out = String::new();
        let _ = writeln!(out, "{:label_width$} {lo} .. {hi}", "lane",);
        for (label, cells) in lanes {
            let bar: String = cells.iter().map(|&on| if on { '#' } else { '.' }).collect();
            let _ = writeln!(out, "{label:label_width$} {bar}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::table::TupleSpec;
    use crate::Database;

    #[test]
    fn renders_paper_table_1_shape() {
        let mut db = Database::new();
        db.create_table("perform", &["from", "to"], &["robot", "task"])
            .unwrap();
        let t = db.table_mut("perform").unwrap();
        t.insert(
            TupleSpec::new()
                .lrp("from", 2, 2)
                .lrp("to", 4, 2)
                .diff_eq("from", "to", -2)
                .ge("from", -1)
                .datum("robot", "robot1")
                .datum("task", "task1"),
        )
        .unwrap();
        t.insert(
            TupleSpec::new()
                .lrp("from", 6, 10)
                .lrp("to", 7, 10)
                .diff_eq("from", "to", -1)
                .ge("from", 10)
                .datum("robot", "robot2")
                .datum("task", "task1"),
        )
        .unwrap();
        let text = t.render();
        assert!(text.contains("| from"), "{text}");
        // lrps display in canonical form: 2 + 2n ≡ 2n, 6 + 10n stays.
        assert!(text.contains("2n"), "{text}");
        assert!(text.contains("6 + 10n"), "{text}");
        assert!(text.contains("robot2"), "{text}");
        assert!(text.contains("constraints"), "{text}");
        // Three rules, header, two data rows.
        assert_eq!(text.lines().filter(|l| l.starts_with('+')).count(), 3);
        assert_eq!(text.lines().filter(|l| l.starts_with('|')).count(), 3);
    }

    #[test]
    fn timeline_paints_intervals() {
        let mut db = Database::new();
        db.create_table("busy", &["from", "to"], &["who"]).unwrap();
        let t = db.table_mut("busy").unwrap();
        t.insert(
            TupleSpec::new()
                .lrp("from", 0, 10)
                .lrp("to", 3, 10)
                .diff_eq("from", "to", -3)
                .datum("who", "press"),
        )
        .unwrap();
        let text = db.table("busy").unwrap().timeline(0, 19);
        // Two bursts: [0,3] and [10,13].
        let lane = text.lines().find(|l| l.starts_with("press")).unwrap();
        assert!(lane.contains("####......####......"), "{text}");
        // Straddling interval [-10, -7] is clipped away; [20, 23] too.
        assert!(
            !text.contains('#') || lane.matches('#').count() == 8,
            "{text}"
        );
    }

    #[test]
    fn timeline_arity_1_and_bad_arities() {
        let mut db = Database::new();
        db.create_table("tick", &["t"], &[]).unwrap();
        db.table_mut("tick")
            .unwrap()
            .insert(TupleSpec::new().lrp("t", 1, 4))
            .unwrap();
        let text = db.table("tick").unwrap().timeline(0, 8);
        assert!(
            text.contains(".#...#...") || text.contains(".#...#.."),
            "{text}"
        );
        db.create_table("wide", &["a", "b", "c"], &[]).unwrap();
        let text = db.table("wide").unwrap().timeline(0, 5);
        assert!(text.contains("arity"), "{text}");
        let text = db.table("tick").unwrap().timeline(5, 0);
        assert!(text.contains("empty window"), "{text}");
    }

    #[test]
    fn unconstrained_rows_have_empty_constraint_cell() {
        let mut db = Database::new();
        db.create_table("t", &["x"], &[]).unwrap();
        db.table_mut("t")
            .unwrap()
            .insert(TupleSpec::new().lrp("x", 0, 5))
            .unwrap();
        let text = db.table("t").unwrap().render();
        assert!(text.contains("5n"), "{text}");
        assert!(!text.contains("true"), "{text}");
    }
}

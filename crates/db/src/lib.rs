//! User-facing temporal database built on generalized lrp relations.
//!
//! This crate ties the reproduction together: a [`Database`] is a catalog of
//! named [`Table`]s, each a generalized relation with named attributes. It
//! offers:
//!
//! * schema definition and tuple insertion with **named-column** constraint
//!   builders ([`Table::col`], [`TupleSpec`]);
//! * the full relational algebra, inherited from
//!   [`itd_core::GenRelation`];
//! * first-order querying ([`Database::run`] with [`QueryOpts`]) through
//!   `itd-query` — the database implements [`itd_query::Catalog`];
//! * JSON persistence ([`Database::to_json`] / [`Database::from_json`]);
//! * paper-style pretty printing ([`Table::render`]) that shows each
//!   generalized tuple as a row of lrps plus its constraint column, like
//!   Table 1 of the paper.
//!
//! # Example
//!
//! ```
//! use itd_db::{Database, QueryOpts, TupleSpec};
//!
//! let mut db = Database::new();
//! // The paper's Example 2.4: hourly trains Liège → Brussels.
//! db.create_table("train", &["dep", "arr"], &["kind"]).unwrap();
//! let table = db.table_mut("train").unwrap();
//! table
//!     .insert(
//!         TupleSpec::new()
//!             .lrp("dep", 2, 60)
//!             .lrp("arr", 80, 60)
//!             .diff_eq("dep", "arr", -78)
//!             .datum("kind", "slow"),
//!     )
//!     .unwrap();
//!
//! // Is there a train departing at minute 62 (= 1:02)?
//! let out = db.run(r#"exists a. train(62, a; "slow")"#, QueryOpts::new()).unwrap();
//! assert!(out.truth().unwrap());
//! ```

mod database;
mod error;
mod render;
pub mod repl;
mod table;
mod txn;

pub use database::{Database, ViewId, ViewInfo, ViewSnapshot};
pub use error::{render_error_chain, DbError};
pub use table::{Table, TupleSpec};
pub use txn::{Txn, TxnSummary};

pub use itd_core::{Atom, CancelToken, GenRelation, GenTuple, Lrp, Schema, Value};
pub use itd_query::{
    ExplainReport, Formula, MaintainedView, QueryOpts, QueryOutput, QueryResult, RefreshOutcome,
    RelationDelta,
};

/// Result alias for database operations.
pub type Result<T> = std::result::Result<T, DbError>;

//! The database: a catalog of named tables.

use std::collections::{BTreeMap, BTreeSet};

use itd_core::{ExecContext, GenRelation, Value};
use itd_query::{Catalog, Formula, QueryResult};
use serde::{Deserialize, Serialize};

use crate::error::DbError;
use crate::table::Table;
use crate::Result;

/// A temporal database: named tables of generalized relations, queryable
/// with the two-sorted first-order language.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Database {
    tables: BTreeMap<String, Table>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Creates a table with the given temporal and data attribute names.
    ///
    /// # Errors
    /// [`DbError::DuplicateTable`], [`DbError::DuplicateAttribute`].
    pub fn create_table(
        &mut self,
        name: &str,
        temporal: &[&str],
        data: &[&str],
    ) -> Result<&mut Table> {
        if self.tables.contains_key(name) {
            return Err(DbError::DuplicateTable(name.to_owned()));
        }
        let table = Table::new(name, temporal, data)?;
        Ok(self.tables.entry(name.to_owned()).or_insert(table))
    }

    /// Removes a table.
    ///
    /// # Errors
    /// [`DbError::UnknownTable`].
    pub fn drop_table(&mut self, name: &str) -> Result<Table> {
        self.tables
            .remove(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_owned()))
    }

    /// Immutable access to a table.
    ///
    /// # Errors
    /// [`DbError::UnknownTable`].
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_owned()))
    }

    /// Mutable access to a table.
    ///
    /// # Errors
    /// [`DbError::UnknownTable`].
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_owned()))
    }

    /// Table names, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Parses and evaluates an open query; the result carries one column
    /// per free variable (and the evaluation's operator statistics,
    /// [`QueryResult::stats`]).
    ///
    /// # Errors
    /// Parse/sort/evaluation errors ([`DbError::Query`]).
    pub fn query(&self, src: impl AsRef<str>) -> Result<QueryResult> {
        let f = itd_query::parse(src.as_ref())?;
        self.query_formula(&f)
    }

    /// [`Database::query`] under an explicit execution context (thread
    /// budget and accumulated statistics).
    ///
    /// # Errors
    /// See [`Database::query`].
    pub fn query_with(&self, src: impl AsRef<str>, ctx: &ExecContext) -> Result<QueryResult> {
        let f = itd_query::parse(src.as_ref())?;
        itd_query::evaluate_with(self, &f, ctx).map_err(DbError::Query)
    }

    /// Evaluates a pre-built formula.
    ///
    /// # Errors
    /// See [`Database::query`].
    pub fn query_formula(&self, f: &Formula) -> Result<QueryResult> {
        itd_query::evaluate(self, f).map_err(DbError::Query)
    }

    /// Parses and evaluates a yes/no query (free variables are closed
    /// existentially).
    ///
    /// # Errors
    /// See [`Database::query`].
    pub fn query_bool(&self, src: impl AsRef<str>) -> Result<bool> {
        let f = itd_query::parse(src.as_ref())?;
        itd_query::evaluate_bool(self, &f).map_err(DbError::Query)
    }

    /// [`Database::query_bool`] under an explicit execution context.
    ///
    /// # Errors
    /// See [`Database::query`].
    pub fn query_bool_with(&self, src: impl AsRef<str>, ctx: &ExecContext) -> Result<bool> {
        let f = itd_query::parse(src.as_ref())?;
        itd_query::evaluate_bool_with(self, &f, ctx).map_err(DbError::Query)
    }

    /// Conversational name for [`Database::query_bool`].
    ///
    /// # Errors
    /// See [`Database::query`].
    pub fn ask(&self, src: impl AsRef<str>) -> Result<bool> {
        self.query_bool(src)
    }

    /// Compiles a query to its algebra plan *without executing it*
    /// (EXPLAIN). Parse and sort errors are reported exactly as
    /// [`Database::query`] would report them, but no relation is touched.
    ///
    /// # Errors
    /// Parse/sort errors ([`DbError::Query`]).
    pub fn explain(&self, src: impl AsRef<str>) -> Result<itd_query::Plan> {
        let f = itd_query::parse(src.as_ref())?;
        itd_query::explain(self, &f).map_err(DbError::Query)
    }

    /// Parses and evaluates an open query with tracing (EXPLAIN ANALYZE):
    /// returns the answer, the compiled plan, and the recorded span tree.
    /// The context should be traced ([`ExecContext::traced`]); untraced
    /// contexts yield an empty trace.
    ///
    /// # Errors
    /// See [`Database::query`].
    pub fn query_traced_with(
        &self,
        src: impl AsRef<str>,
        ctx: &ExecContext,
    ) -> Result<itd_query::Traced> {
        let f = itd_query::parse(src.as_ref())?;
        itd_query::evaluate_traced_with(self, &f, ctx).map_err(DbError::Query)
    }

    /// Materializes an open query as a new table: the answer relation
    /// becomes the table's contents and the query's free variables its
    /// attribute names.
    ///
    /// Because query answers are themselves generalized relations, the view
    /// is exact over infinite time — it is a snapshot of the *symbolic*
    /// result, not of a window.
    ///
    /// # Errors
    /// [`DbError::DuplicateTable`]; query errors.
    pub fn materialize_view(&mut self, name: &str, src: impl AsRef<str>) -> Result<&Table> {
        self.materialize_view_with(name, src, &ExecContext::new())
    }

    /// [`Database::materialize_view`] under an explicit execution context.
    ///
    /// # Errors
    /// See [`Database::materialize_view`].
    pub fn materialize_view_with(
        &mut self,
        name: &str,
        src: impl AsRef<str>,
        ctx: &ExecContext,
    ) -> Result<&Table> {
        if self.tables.contains_key(name) {
            return Err(DbError::DuplicateTable(name.to_owned()));
        }
        let result = self.query_with(src, ctx)?;
        let tnames: Vec<&str> = result.temporal_vars.iter().map(String::as_str).collect();
        let dnames: Vec<&str> = result.data_vars.iter().map(String::as_str).collect();
        let table = self.create_table(name, &tnames, &dnames)?;
        table.set_relation(result.relation)?;
        self.table(name)
    }

    /// Serializes the database to pretty JSON.
    ///
    /// # Errors
    /// [`DbError::Serde`].
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string_pretty(self).map_err(|e| DbError::Serde(e.to_string()))
    }

    /// Restores a database from JSON.
    ///
    /// # Errors
    /// [`DbError::Serde`].
    pub fn from_json(json: &str) -> Result<Database> {
        serde_json::from_str(json).map_err(|e| DbError::Serde(e.to_string()))
    }

    /// Saves to a file.
    ///
    /// # Errors
    /// [`DbError::Serde`] on I/O or encoding failure.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        let json = self.to_json()?;
        std::fs::write(path, json).map_err(|e| DbError::Serde(e.to_string()))
    }

    /// Loads from a file.
    ///
    /// # Errors
    /// [`DbError::Serde`] on I/O or decoding failure.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Database> {
        let json = std::fs::read_to_string(path).map_err(|e| DbError::Serde(e.to_string()))?;
        Database::from_json(&json)
    }
}

impl Catalog for Database {
    fn relation(&self, name: &str) -> Option<&GenRelation> {
        self.tables.get(name).map(Table::relation)
    }

    fn active_domain(&self) -> BTreeSet<Value> {
        let mut out = BTreeSet::new();
        for table in self.tables.values() {
            for t in table.relation().tuples() {
                out.extend(t.data().iter().cloned());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TupleSpec;

    fn sample() -> Database {
        let mut db = Database::new();
        db.create_table("even", &["t"], &[]).unwrap();
        db.table_mut("even")
            .unwrap()
            .insert(TupleSpec::new().lrp("t", 0, 2))
            .unwrap();
        db
    }

    #[test]
    fn create_drop_lookup() {
        let mut db = sample();
        assert_eq!(db.table_names(), vec!["even"]);
        assert!(matches!(
            db.create_table("even", &["t"], &[]),
            Err(DbError::DuplicateTable(_))
        ));
        assert!(db.table("missing").is_err());
        db.drop_table("even").unwrap();
        assert!(db.drop_table("even").is_err());
        assert!(db.table_names().is_empty());
    }

    #[test]
    fn ask_and_query() {
        let db = sample();
        assert!(db.ask("even(4)").unwrap());
        assert!(!db.ask("even(5)").unwrap());
        let r = db.query("even(t) and t >= 10").unwrap();
        assert_eq!(r.temporal_vars, vec!["t"]);
        assert!(r.relation.contains(&[10], &[]));
        assert!(!r.relation.contains(&[8], &[]));
        assert!(matches!(db.ask("nosuch(3)"), Err(DbError::Query(_))));
    }

    #[test]
    fn materialized_views() {
        let mut db = sample();
        let view = db
            .materialize_view("late_even", "even(t) and t >= 100")
            .unwrap();
        assert_eq!(view.temporal_names(), &["t".to_string()]);
        assert!(db.ask("late_even(100)").unwrap());
        assert!(!db.ask("late_even(98)").unwrap());
        assert!(db.ask("late_even(1000000)").unwrap());
        // Views can feed further views.
        db.materialize_view("very_late", "late_even(t) and t >= 200")
            .unwrap();
        assert!(db.ask("very_late(200)").unwrap());
        assert!(!db.ask("very_late(100)").unwrap());
        // Name clashes rejected.
        assert!(matches!(
            db.materialize_view("even", "even(t)"),
            Err(DbError::DuplicateTable(_))
        ));
        // Query errors propagate without creating the table.
        assert!(db.materialize_view("bad", "nosuch(t)").is_err());
        assert!(db.table("bad").is_err());
    }

    #[test]
    fn json_roundtrip() {
        let db = sample();
        let json = db.to_json().unwrap();
        let back = Database::from_json(&json).unwrap();
        assert!(back.ask("even(4)").unwrap());
        assert!(!back.ask("even(5)").unwrap());
        assert!(Database::from_json("not json").is_err());
    }

    #[test]
    fn active_domain_collects_values() {
        let mut db = sample();
        db.create_table("tagged", &["t"], &["who"]).unwrap();
        db.table_mut("tagged")
            .unwrap()
            .insert(TupleSpec::new().lrp("t", 0, 3).datum("who", "alice"))
            .unwrap();
        let adom = db.active_domain();
        assert!(adom.contains(&Value::str("alice")));
        assert_eq!(adom.len(), 1);
    }
}

//! The database: a catalog of named tables.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use itd_core::{ExecContext, GenRelation, MetricsRegistry, Value};
use itd_query::{Catalog, Formula, QueryOpts, QueryOutput, QueryResult};
use serde::{Deserialize, Serialize};

use crate::error::DbError;
use crate::table::Table;
use crate::Result;

/// A temporal database: named tables of generalized relations, queryable
/// with the two-sorted first-order language.
///
/// Every database owns a cross-query [`MetricsRegistry`]
/// ([`Database::metrics`]): [`Database::run`] reports each query to it
/// unless the caller attached a different registry via
/// [`QueryOpts::metrics`]. Clones share the registry (it is measurement
/// state, not data), and persistence ignores it — a loaded database
/// starts with a fresh one.
///
/// Databases carry a plan token ([`Catalog::plan_token`]), so repeated
/// [`Database::run`] calls of the same source text are served by the
/// process-wide prepared-plan cache — parse, sort-check and the
/// optimizer are skipped on a warm hit. Every schema or content
/// mutation (`create_table`, `drop_table`, `table_mut`,
/// `materialize_view`) invalidates this database's cached plans and
/// rotates the token; the token is runtime state and is never
/// persisted.
#[derive(Debug, Clone)]
pub struct Database {
    tables: BTreeMap<String, Table>,
    metrics: Arc<MetricsRegistry>,
    /// Current prepared-plan-cache token; rotated on every mutation.
    plan_token: u64,
}

impl Default for Database {
    fn default() -> Database {
        Database {
            tables: BTreeMap::new(),
            metrics: Arc::default(),
            plan_token: itd_query::next_plan_token(),
        }
    }
}

// Hand-written (de)serialization: byte-compatible with what
// `#[derive(Serialize, Deserialize)]` produced before the registry field
// existed — the registry is runtime measurement state and is never
// persisted.
impl Serialize for Database {
    fn to_content(&self) -> serde::Content {
        serde::Content::Map(vec![("tables".to_owned(), self.tables.to_content())])
    }
}

impl Deserialize for Database {
    fn from_content(c: &serde::Content) -> std::result::Result<Self, serde::de::DeError> {
        let entries = serde::de::as_struct_map(c, "Database")?;
        Ok(Database {
            tables: serde::de::field(entries, "tables", "Database")?,
            metrics: Arc::default(),
            plan_token: itd_query::next_plan_token(),
        })
    }
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Creates a table with the given temporal and data attribute names.
    ///
    /// # Errors
    /// [`DbError::DuplicateTable`], [`DbError::DuplicateAttribute`].
    pub fn create_table(
        &mut self,
        name: &str,
        temporal: &[&str],
        data: &[&str],
    ) -> Result<&mut Table> {
        if self.tables.contains_key(name) {
            return Err(DbError::DuplicateTable(name.to_owned()));
        }
        let table = Table::new(name, temporal, data)?;
        self.bump_plan_token();
        Ok(self.tables.entry(name.to_owned()).or_insert(table))
    }

    /// Removes a table.
    ///
    /// # Errors
    /// [`DbError::UnknownTable`].
    pub fn drop_table(&mut self, name: &str) -> Result<Table> {
        let table = self
            .tables
            .remove(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_owned()))?;
        self.bump_plan_token();
        Ok(table)
    }

    /// Immutable access to a table.
    ///
    /// # Errors
    /// [`DbError::UnknownTable`].
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_owned()))
    }

    /// Mutable access to a table.
    ///
    /// # Errors
    /// [`DbError::UnknownTable`].
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        if !self.tables.contains_key(name) {
            return Err(DbError::UnknownTable(name.to_owned()));
        }
        // Handing out `&mut Table` is a mutation from the plan cache's
        // point of view: contents (statistics) may change before the
        // borrow ends, so rotate the token conservatively up front.
        self.bump_plan_token();
        Ok(self.tables.get_mut(name).expect("checked above"))
    }

    /// The database's current plan token (see [`Catalog::plan_token`]).
    pub fn plan_token(&self) -> u64 {
        self.plan_token
    }

    /// Invalidates this database's prepared plans and issues a fresh
    /// plan token — called by every mutating entry point.
    fn bump_plan_token(&mut self) {
        itd_query::plan_cache_invalidate(self.plan_token);
        self.plan_token = itd_query::next_plan_token();
    }

    /// Table names, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// The database's cross-query metrics registry. Every query run
    /// through [`Database::run`]/[`Database::run_formula`] lands here
    /// (unless the caller attached another registry); snapshot it for
    /// latency percentiles, cumulative counters, resource gauges, and the
    /// slow-query log.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Parses and evaluates a query under [`QueryOpts`] — the single
    /// entry point behind the old `query*`/`ask` family. The returned
    /// [`QueryOutput`] carries the answer relation, the executed plan,
    /// and (when requested) the recorded span tree.
    ///
    /// # Errors
    /// Parse/sort/evaluation errors ([`DbError::Query`]).
    ///
    /// # Examples
    /// ```
    /// use itd_db::{Database, QueryOpts, TupleSpec};
    /// let mut db = Database::new();
    /// db.create_table("even", &["t"], &[]).unwrap();
    /// db.table_mut("even").unwrap().insert(TupleSpec::new().lrp("t", 0, 2)).unwrap();
    /// let out = db.run("even(4)", QueryOpts::new()).unwrap();
    /// assert!(out.truth().unwrap());
    /// ```
    pub fn run(&self, src: impl AsRef<str>, opts: QueryOpts<'_>) -> Result<QueryOutput> {
        // Text-level entry: a warm prepared-plan cache answers on the raw
        // source and skips the parser too (`QueryOutput::plan_cached`).
        itd_query::run_src(self, src.as_ref(), opts.metrics_default(&self.metrics))
            .map_err(DbError::Query)
    }

    /// [`Database::run`] on a pre-built formula.
    ///
    /// # Errors
    /// See [`Database::run`].
    pub fn run_formula(&self, f: &Formula, opts: QueryOpts<'_>) -> Result<QueryOutput> {
        itd_query::run(self, f, opts.metrics_default(&self.metrics)).map_err(DbError::Query)
    }

    /// Parses and evaluates an open query; the result carries one column
    /// per free variable (and the evaluation's operator statistics,
    /// [`QueryResult::stats`]).
    ///
    /// # Errors
    /// Parse/sort/evaluation errors ([`DbError::Query`]).
    #[deprecated(since = "0.2.0", note = "use `run` with `QueryOpts` instead")]
    pub fn query(&self, src: impl AsRef<str>) -> Result<QueryResult> {
        self.run(src, QueryOpts::new().optimize(false).compact(false))
            .map(|o| o.result)
    }

    /// [`Database::query`] under an explicit execution context (thread
    /// budget and accumulated statistics).
    ///
    /// # Errors
    /// See [`Database::run`].
    #[deprecated(
        since = "0.2.0",
        note = "use `run` with `QueryOpts::new().ctx(ctx)` instead"
    )]
    pub fn query_with(&self, src: impl AsRef<str>, ctx: &ExecContext) -> Result<QueryResult> {
        self.run(
            src,
            QueryOpts::new().ctx(ctx).optimize(false).compact(false),
        )
        .map(|o| o.result)
    }

    /// Evaluates a pre-built formula.
    ///
    /// # Errors
    /// See [`Database::run`].
    #[deprecated(since = "0.2.0", note = "use `run_formula` with `QueryOpts` instead")]
    pub fn query_formula(&self, f: &Formula) -> Result<QueryResult> {
        self.run_formula(f, QueryOpts::new().optimize(false).compact(false))
            .map(|o| o.result)
    }

    /// Parses and evaluates a yes/no query (free variables are closed
    /// existentially).
    ///
    /// # Errors
    /// See [`Database::run`].
    #[deprecated(
        since = "0.2.0",
        note = "use `run` with `QueryOpts`, then `QueryOutput::truth`, instead"
    )]
    pub fn query_bool(&self, src: impl AsRef<str>) -> Result<bool> {
        let ctx = ExecContext::new();
        self.run(
            src,
            QueryOpts::new().ctx(&ctx).optimize(false).compact(false),
        )?
        .truth_in(&ctx)
        .map_err(DbError::Query)
    }

    /// [`Database::query_bool`] under an explicit execution context.
    ///
    /// # Errors
    /// See [`Database::run`].
    #[deprecated(
        since = "0.2.0",
        note = "use `run` with `QueryOpts::new().ctx(ctx)`, then `QueryOutput::truth_in`, instead"
    )]
    pub fn query_bool_with(&self, src: impl AsRef<str>, ctx: &ExecContext) -> Result<bool> {
        self.run(
            src,
            QueryOpts::new().ctx(ctx).optimize(false).compact(false),
        )?
        .truth_in(ctx)
        .map_err(DbError::Query)
    }

    /// Conversational name for the yes/no reading of a query.
    ///
    /// # Errors
    /// See [`Database::run`].
    #[deprecated(
        since = "0.2.0",
        note = "use `run` with `QueryOpts`, then `QueryOutput::truth`, instead"
    )]
    pub fn ask(&self, src: impl AsRef<str>) -> Result<bool> {
        let ctx = ExecContext::new();
        self.run(
            src,
            QueryOpts::new().ctx(&ctx).optimize(false).compact(false),
        )?
        .truth_in(&ctx)
        .map_err(DbError::Query)
    }

    /// Compiles a query to its algebra plan *without executing it*
    /// (EXPLAIN). Parse and sort errors are reported exactly as
    /// [`Database::run`] would report them, but no relation is touched.
    ///
    /// # Errors
    /// Parse/sort errors ([`DbError::Query`]).
    pub fn explain(&self, src: impl AsRef<str>) -> Result<itd_query::Plan> {
        let f = itd_query::parse(src.as_ref())?;
        itd_query::explain(self, &f).map_err(DbError::Query)
    }

    /// Compiles and optimizes a query without executing it: the logical
    /// plan next to its rewritten form, both cost-annotated, plus the
    /// list of fired rewrite rules.
    ///
    /// # Errors
    /// Parse/sort errors ([`DbError::Query`]).
    pub fn explain_opt(&self, src: impl AsRef<str>) -> Result<itd_query::ExplainReport> {
        let f = itd_query::parse(src.as_ref())?;
        itd_query::explain_opt(self, &f).map_err(DbError::Query)
    }

    /// [`Database::explain_opt`] with explicit control over whether the
    /// adaptive compaction pass inserts [`itd_query::PlanOp::Compact`]
    /// nodes, matching a [`QueryOpts::compact`] setting so the explained
    /// plan is the one execution would run.
    ///
    /// # Errors
    /// Parse/sort errors ([`DbError::Query`]).
    pub fn explain_opt_with(
        &self,
        src: impl AsRef<str>,
        compact: bool,
    ) -> Result<itd_query::ExplainReport> {
        let f = itd_query::parse(src.as_ref())?;
        itd_query::explain_opt_with(self, &f, compact).map_err(DbError::Query)
    }

    /// Parses and evaluates an open query with tracing (EXPLAIN ANALYZE):
    /// returns the answer, the compiled plan, and the recorded span tree.
    /// The context should be traced ([`ExecContext::traced`]); untraced
    /// contexts yield an empty trace.
    ///
    /// # Errors
    /// See [`Database::run`].
    #[deprecated(
        since = "0.2.0",
        note = "use `run` with `QueryOpts::new().ctx(ctx).trace(true)` instead"
    )]
    pub fn query_traced_with(
        &self,
        src: impl AsRef<str>,
        ctx: &ExecContext,
    ) -> Result<itd_query::Traced> {
        let out = self.run(
            src,
            QueryOpts::new()
                .ctx(ctx)
                .trace(true)
                .optimize(false)
                .compact(false),
        )?;
        Ok(itd_query::Traced {
            result: out.result,
            plan: out.plan,
            trace: out.trace.unwrap_or_default(),
        })
    }

    /// Materializes an open query as a new table: the answer relation
    /// becomes the table's contents and the query's free variables its
    /// attribute names.
    ///
    /// Because query answers are themselves generalized relations, the view
    /// is exact over infinite time — it is a snapshot of the *symbolic*
    /// result, not of a window.
    ///
    /// # Errors
    /// [`DbError::DuplicateTable`]; query errors.
    pub fn materialize_view(&mut self, name: &str, src: impl AsRef<str>) -> Result<&Table> {
        self.materialize_view_opts(name, src, QueryOpts::new())
    }

    /// [`Database::materialize_view`] under an explicit execution context.
    ///
    /// # Errors
    /// See [`Database::materialize_view`].
    pub fn materialize_view_with(
        &mut self,
        name: &str,
        src: impl AsRef<str>,
        ctx: &ExecContext,
    ) -> Result<&Table> {
        self.materialize_view_opts(name, src, QueryOpts::new().ctx(ctx))
    }

    /// [`Database::materialize_view`] under explicit [`QueryOpts`].
    ///
    /// # Errors
    /// See [`Database::materialize_view`].
    pub fn materialize_view_opts(
        &mut self,
        name: &str,
        src: impl AsRef<str>,
        opts: QueryOpts<'_>,
    ) -> Result<&Table> {
        if self.tables.contains_key(name) {
            return Err(DbError::DuplicateTable(name.to_owned()));
        }
        let result = self.run(src, opts)?.result;
        let tnames: Vec<&str> = result.temporal_vars.iter().map(String::as_str).collect();
        let dnames: Vec<&str> = result.data_vars.iter().map(String::as_str).collect();
        let table = self.create_table(name, &tnames, &dnames)?;
        table.set_relation(result.relation)?;
        self.table(name)
    }

    /// Serializes the database to pretty JSON.
    ///
    /// # Errors
    /// [`DbError::Serde`].
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string_pretty(self)
            .map_err(|e| DbError::serde_caused_by("cannot encode database as JSON", e))
    }

    /// Restores a database from JSON.
    ///
    /// # Errors
    /// [`DbError::Serde`].
    pub fn from_json(json: &str) -> Result<Database> {
        serde_json::from_str(json)
            .map_err(|e| DbError::serde_caused_by("cannot decode database from JSON", e))
    }

    /// Saves to a file.
    ///
    /// # Errors
    /// [`DbError::Serde`] on I/O or encoding failure.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        let json = self.to_json()?;
        let path = path.as_ref();
        std::fs::write(path, json)
            .map_err(|e| DbError::serde_caused_by(format!("cannot write {}", path.display()), e))
    }

    /// Loads from a file.
    ///
    /// # Errors
    /// [`DbError::Serde`] on I/O or decoding failure.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Database> {
        let path = path.as_ref();
        let json = std::fs::read_to_string(path)
            .map_err(|e| DbError::serde_caused_by(format!("cannot read {}", path.display()), e))?;
        Database::from_json(&json)
    }
}

impl Catalog for Database {
    fn relation(&self, name: &str) -> Option<&GenRelation> {
        self.tables.get(name).map(Table::relation)
    }

    fn plan_token(&self) -> Option<u64> {
        Some(self.plan_token)
    }

    fn active_domain(&self) -> BTreeSet<Value> {
        let mut out = BTreeSet::new();
        for table in self.tables.values() {
            let rel = table.relation();
            let cols = rel.columns();
            for c in 0..rel.schema().data() {
                // Dedup at the interned-id level before resolving values.
                let distinct: BTreeSet<_> = cols.data(c).ids().iter().copied().collect();
                out.extend(distinct.into_iter().map(itd_core::resolve_value));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TupleSpec;

    fn ask(db: &Database, src: &str) -> Result<bool> {
        db.run(src, QueryOpts::new())?
            .truth()
            .map_err(DbError::Query)
    }

    fn sample() -> Database {
        let mut db = Database::new();
        db.create_table("even", &["t"], &[]).unwrap();
        db.table_mut("even")
            .unwrap()
            .insert(TupleSpec::new().lrp("t", 0, 2))
            .unwrap();
        db
    }

    #[test]
    fn create_drop_lookup() {
        let mut db = sample();
        assert_eq!(db.table_names(), vec!["even"]);
        assert!(matches!(
            db.create_table("even", &["t"], &[]),
            Err(DbError::DuplicateTable(_))
        ));
        assert!(db.table("missing").is_err());
        db.drop_table("even").unwrap();
        assert!(db.drop_table("even").is_err());
        assert!(db.table_names().is_empty());
    }

    #[test]
    fn ask_and_query() {
        let db = sample();
        assert!(ask(&db, "even(4)").unwrap());
        assert!(!ask(&db, "even(5)").unwrap());
        let r = db
            .run("even(t) and t >= 10", QueryOpts::new())
            .unwrap()
            .result;
        assert_eq!(r.temporal_vars, vec!["t"]);
        assert!(r.relation.contains(&[10], &[]));
        assert!(!r.relation.contains(&[8], &[]));
        assert!(matches!(ask(&db, "nosuch(3)"), Err(DbError::Query(_))));
    }

    #[test]
    fn materialized_views() {
        let mut db = sample();
        let view = db
            .materialize_view("late_even", "even(t) and t >= 100")
            .unwrap();
        assert_eq!(view.temporal_names(), &["t".to_string()]);
        assert!(ask(&db, "late_even(100)").unwrap());
        assert!(!ask(&db, "late_even(98)").unwrap());
        assert!(ask(&db, "late_even(1000000)").unwrap());
        // Views can feed further views.
        db.materialize_view("very_late", "late_even(t) and t >= 200")
            .unwrap();
        assert!(ask(&db, "very_late(200)").unwrap());
        assert!(!ask(&db, "very_late(100)").unwrap());
        // Name clashes rejected.
        assert!(matches!(
            db.materialize_view("even", "even(t)"),
            Err(DbError::DuplicateTable(_))
        ));
        // Query errors propagate without creating the table.
        assert!(db.materialize_view("bad", "nosuch(t)").is_err());
        assert!(db.table("bad").is_err());
    }

    #[test]
    fn json_roundtrip() {
        let db = sample();
        let json = db.to_json().unwrap();
        let back = Database::from_json(&json).unwrap();
        assert!(ask(&back, "even(4)").unwrap());
        assert!(!ask(&back, "even(5)").unwrap());
        assert!(Database::from_json("not json").is_err());
    }

    #[test]
    fn active_domain_collects_values() {
        let mut db = sample();
        db.create_table("tagged", &["t"], &["who"]).unwrap();
        db.table_mut("tagged")
            .unwrap()
            .insert(TupleSpec::new().lrp("t", 0, 3).datum("who", "alice"))
            .unwrap();
        let adom = db.active_domain();
        assert!(adom.contains(&Value::str("alice")));
        assert_eq!(adom.len(), 1);
    }
}

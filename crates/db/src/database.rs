//! The database: a catalog of named tables.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use itd_core::{ExecContext, GenRelation, GenTuple, MetricsRegistry, Value};
#[cfg(feature = "legacy-api")]
use itd_query::QueryResult;
use itd_query::{Catalog, Formula, MaintainedView, QueryOpts, QueryOutput, RelationDelta};
use serde::{Deserialize, Serialize};

use crate::error::DbError;
use crate::table::Table;
use crate::txn::{RowSpec, Txn, TxnSummary};
use crate::Result;

/// A temporal database: named tables of generalized relations, queryable
/// with the two-sorted first-order language.
///
/// Every database owns a cross-query [`MetricsRegistry`]
/// ([`Database::metrics`]): [`Database::run`] reports each query to it
/// unless the caller attached a different registry via
/// [`QueryOpts::metrics`]. Clones share the registry (it is measurement
/// state, not data), and persistence ignores it — a loaded database
/// starts with a fresh one.
///
/// Databases carry a plan token ([`Catalog::plan_token`]), so repeated
/// [`Database::run`] calls of the same source text are served by the
/// process-wide prepared-plan cache — parse, sort-check and the
/// optimizer are skipped on a warm hit. Every schema or content
/// mutation (`create_table`, `drop_table`, `table_mut`,
/// `materialize_view`) invalidates this database's cached plans and
/// rotates the token; the token is runtime state and is never
/// persisted.
#[derive(Debug, Clone)]
pub struct Database {
    tables: BTreeMap<String, Table>,
    metrics: Arc<MetricsRegistry>,
    /// Current prepared-plan-cache token; rotated on every mutation.
    plan_token: u64,
    /// Registered incrementally maintained views, in registration order.
    views: Vec<RegisteredView>,
    /// Next [`ViewId`] to hand out (per database, never reused).
    next_view_id: u64,
    /// Set when a mutation happened outside [`Database::apply`] (no
    /// signed deltas available): the next `apply` recomputes every
    /// registered view instead of propagating deltas.
    views_stale: bool,
}

impl Default for Database {
    fn default() -> Database {
        Database {
            tables: BTreeMap::new(),
            metrics: Arc::default(),
            plan_token: itd_query::next_plan_token(),
            views: Vec::new(),
            next_view_id: 1,
            views_stale: false,
        }
    }
}

/// Handle to a registered view; returned by [`Database::register_view`]
/// and never reused within one database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ViewId(u64);

/// An immutable snapshot of a registered view's answer, cheap to hand
/// out (`Arc`, and the relation itself is an `Arc`-backed snapshot).
/// Rebuilt by every refresh; a handle obtained earlier keeps observing
/// the state it was taken at.
#[derive(Debug, Clone)]
pub struct ViewSnapshot {
    /// The view's registered name.
    pub name: String,
    /// The maintained answer relation.
    pub relation: GenRelation,
    /// Names of the answer's temporal columns.
    pub temporal_vars: Vec<String>,
    /// Names of the answer's data columns.
    pub data_vars: Vec<String>,
}

impl ViewSnapshot {
    fn of(name: &str, view: &MaintainedView) -> ViewSnapshot {
        ViewSnapshot {
            name: name.to_owned(),
            relation: view.relation().clone(),
            temporal_vars: view.temporal_vars().to_vec(),
            data_vars: view.data_vars().to_vec(),
        }
    }
}

/// Counters and identity of one registered view, for listings
/// ([`Database::views`], the REPL's `\views`).
#[derive(Debug, Clone)]
pub struct ViewInfo {
    /// The view's handle.
    pub id: ViewId,
    /// The view's registered name.
    pub name: String,
    /// The maintained query's source rendering.
    pub query: String,
    /// Generalized tuples in the current answer representation.
    pub tuples: usize,
    /// Refreshes applied since registration.
    pub refreshes: u64,
    /// Of those, full recomputations (adom change or stale catalog).
    pub full_refreshes: u64,
    /// Cumulative signed delta rows propagated into this view.
    pub delta_rows: u64,
}

#[derive(Debug, Clone)]
struct RegisteredView {
    id: ViewId,
    name: String,
    view: MaintainedView,
    snapshot: Arc<ViewSnapshot>,
    refreshes: u64,
}

// Hand-written (de)serialization: byte-compatible with what
// `#[derive(Serialize, Deserialize)]` produced before the registry field
// existed — the registry is runtime measurement state and is never
// persisted.
impl Serialize for Database {
    fn to_content(&self) -> serde::Content {
        serde::Content::Map(vec![("tables".to_owned(), self.tables.to_content())])
    }
}

impl Deserialize for Database {
    fn from_content(c: &serde::Content) -> std::result::Result<Self, serde::de::DeError> {
        let entries = serde::de::as_struct_map(c, "Database")?;
        Ok(Database {
            tables: serde::de::field(entries, "tables", "Database")?,
            metrics: Arc::default(),
            plan_token: itd_query::next_plan_token(),
            // Registered views are runtime subscriptions, never persisted.
            views: Vec::new(),
            next_view_id: 1,
            views_stale: false,
        })
    }
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Creates a table with the given temporal and data attribute names.
    ///
    /// # Errors
    /// [`DbError::DuplicateTable`], [`DbError::DuplicateAttribute`].
    pub fn create_table(
        &mut self,
        name: &str,
        temporal: &[&str],
        data: &[&str],
    ) -> Result<&mut Table> {
        if self.tables.contains_key(name) {
            return Err(DbError::DuplicateTable(name.to_owned()));
        }
        let table = Table::new(name, temporal, data)?;
        self.bump_plan_token();
        self.views_stale = !self.views.is_empty();
        Ok(self.tables.entry(name.to_owned()).or_insert(table))
    }

    /// Removes a table.
    ///
    /// # Errors
    /// [`DbError::UnknownTable`].
    pub fn drop_table(&mut self, name: &str) -> Result<Table> {
        let table = self
            .tables
            .remove(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_owned()))?;
        self.bump_plan_token();
        self.views_stale = !self.views.is_empty();
        Ok(table)
    }

    /// Immutable access to a table.
    ///
    /// # Errors
    /// [`DbError::UnknownTable`].
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_owned()))
    }

    /// Mutable access to a table.
    ///
    /// # Errors
    /// [`DbError::UnknownTable`].
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        if !self.tables.contains_key(name) {
            return Err(DbError::UnknownTable(name.to_owned()));
        }
        // Handing out `&mut Table` is a mutation from the plan cache's
        // point of view: contents (statistics) may change before the
        // borrow ends, so rotate the token conservatively up front. It is
        // also a mutation the view-maintenance delta path cannot see, so
        // registered views go stale until the next `apply` recomputes
        // them.
        self.bump_plan_token();
        self.views_stale = !self.views.is_empty();
        Ok(self.tables.get_mut(name).expect("checked above"))
    }

    /// The database's current plan token (see [`Catalog::plan_token`]).
    pub fn plan_token(&self) -> u64 {
        self.plan_token
    }

    /// Invalidates this database's prepared plans and issues a fresh
    /// plan token — called by every mutating entry point.
    fn bump_plan_token(&mut self) {
        itd_query::plan_cache_invalidate(self.plan_token);
        self.plan_token = itd_query::next_plan_token();
    }

    /// Table names, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// The database's cross-query metrics registry. Every query run
    /// through [`Database::run`]/[`Database::run_formula`] lands here
    /// (unless the caller attached another registry); snapshot it for
    /// latency percentiles, cumulative counters, resource gauges, and the
    /// slow-query log.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// An owning handle on the same registry, for components that outlive
    /// any one borrow of the database (the query service's metrics
    /// listener reads it from another thread).
    pub fn metrics_handle(&self) -> std::sync::Arc<MetricsRegistry> {
        std::sync::Arc::clone(&self.metrics)
    }

    /// Parses and evaluates a query under [`QueryOpts`] — the single
    /// entry point behind the old `query*`/`ask` family. The returned
    /// [`QueryOutput`] carries the answer relation, the executed plan,
    /// and (when requested) the recorded span tree.
    ///
    /// # Errors
    /// Parse/sort/evaluation errors ([`DbError::Query`]).
    ///
    /// # Examples
    /// ```
    /// use itd_db::{Database, QueryOpts, TupleSpec};
    /// let mut db = Database::new();
    /// db.create_table("even", &["t"], &[]).unwrap();
    /// db.table_mut("even").unwrap().insert(TupleSpec::new().lrp("t", 0, 2)).unwrap();
    /// let out = db.run("even(4)", QueryOpts::new()).unwrap();
    /// assert!(out.truth().unwrap());
    /// ```
    pub fn run(&self, src: impl AsRef<str>, opts: QueryOpts<'_>) -> Result<QueryOutput> {
        // Text-level entry: a warm prepared-plan cache answers on the raw
        // source and skips the parser too (`QueryOutput::plan_cached`).
        itd_query::run_src(self, src.as_ref(), opts.metrics_default(&self.metrics))
            .map_err(DbError::Query)
    }

    /// [`Database::run`] on a pre-built formula.
    ///
    /// # Errors
    /// See [`Database::run`].
    pub fn run_formula(&self, f: &Formula, opts: QueryOpts<'_>) -> Result<QueryOutput> {
        itd_query::run(self, f, opts.metrics_default(&self.metrics)).map_err(DbError::Query)
    }

    /// The cost model's pre-execution total-pairs estimate for `src` —
    /// the admission-control number — without executing anything. Shares
    /// [`Database::run`]'s prepared-plan cache, so the preparation an
    /// estimate performs is reused verbatim by the run that follows the
    /// admission decision.
    ///
    /// # Errors
    /// Parse/sort errors ([`DbError::Query`]); estimation never touches
    /// relation data.
    ///
    /// # Examples
    /// ```
    /// use itd_db::{Database, QueryOpts, TupleSpec};
    /// let mut db = Database::new();
    /// db.create_table("even", &["t"], &[]).unwrap();
    /// db.table_mut("even").unwrap().insert(TupleSpec::new().lrp("t", 0, 2)).unwrap();
    /// let est = db.estimate("even(t) and even(t + 1)", QueryOpts::new()).unwrap();
    /// assert!(est.is_finite());
    /// ```
    pub fn estimate(&self, src: impl AsRef<str>, opts: QueryOpts<'_>) -> Result<f64> {
        itd_query::estimate_src(self, src.as_ref(), opts.metrics_default(&self.metrics))
            .map_err(DbError::Query)
    }

    /// Server-facing batched entry point: runs every query in `srcs`
    /// against this *one* database state (the caller typically holds a
    /// cheap [`Clone`] snapshot, so `apply` transactions on the base
    /// interleave between batches, never within one). Catalog resolution
    /// — plan token, metrics attachment — happens once; each query then
    /// executes under its own [`QueryOpts`] produced by `opts_for(i)`,
    /// which lets the service attach a per-request deadline token.
    ///
    /// Per-query failures are per-slot: one over-deadline or malformed
    /// query does not disturb its batch-mates' results.
    pub fn run_batch<'a>(
        &self,
        srcs: &[impl AsRef<str>],
        mut opts_for: impl FnMut(usize) -> QueryOpts<'a>,
    ) -> Vec<Result<QueryOutput>> {
        srcs.iter()
            .enumerate()
            .map(|(i, src)| self.run(src.as_ref(), opts_for(i)))
            .collect()
    }

    /// Applies a batch of signed mutations atomically — the write path
    /// registered views are maintained under.
    ///
    /// The whole batch is validated first (unknown tables, incomplete
    /// specs, schema mismatches fail before anything changes), then all
    /// retractions are applied, then all insertions, the plan token is
    /// rotated once, and every registered view is brought up to date by
    /// propagating the batch's per-table signed deltas through its plan
    /// (see [`MaintainedView::refresh`]). Each view refresh is reported
    /// to [`Database::metrics`].
    ///
    /// # Errors
    /// [`DbError::UnknownTable`], [`DbError::IncompleteTuple`],
    /// [`DbError::Core`] on schema mismatch — all before mutating; view
    /// refresh failures ([`DbError::Query`]) after (the mutation itself
    /// stays applied, and the affected views recompute on the next
    /// `apply`).
    ///
    /// # Examples
    /// ```
    /// use itd_db::{Database, Txn, TupleSpec};
    /// let mut db = Database::new();
    /// db.create_table("even", &["t"], &[]).unwrap();
    /// let v = db.register_view("wit", "even(t) and t >= 0").unwrap();
    /// db.apply(Txn::new().insert("even", TupleSpec::new().lrp("t", 0, 2)))
    ///     .unwrap();
    /// assert!(db.view(v).unwrap().relation.contains(&[4], &[]));
    /// ```
    pub fn apply(&mut self, txn: Txn) -> Result<TxnSummary> {
        self.apply_with(txn, &ExecContext::new())
    }

    /// [`Database::apply`] under an explicit execution context (thread
    /// budget; view-maintenance operator counters land in `ctx`'s stats).
    ///
    /// # Errors
    /// See [`Database::apply`].
    pub fn apply_with(&mut self, txn: Txn, ctx: &ExecContext) -> Result<TxnSummary> {
        // Validate everything up front so a failing batch changes nothing.
        let mut resolved: Vec<(String, bool, GenTuple)> = Vec::with_capacity(txn.ops.len());
        for op in txn.ops {
            let table = self.table(&op.table)?;
            let tuple = match op.row {
                RowSpec::Spec(spec) => spec.build(table)?,
                RowSpec::Tuple(t) => {
                    if t.schema() != table.relation().schema() {
                        return Err(DbError::Core(itd_core::CoreError::SchemaMismatch {
                            expected: table.relation().schema(),
                            found: t.schema(),
                        }));
                    }
                    t
                }
            };
            resolved.push((op.table, op.retract, tuple));
        }

        let mut summary = TxnSummary::default();
        if resolved.is_empty() && (self.views.is_empty() || !self.views_stale) {
            return Ok(summary);
        }

        // Apply: all retractions, then all insertions, collecting the
        // *actual* signed deltas — rows really removed and rows really
        // appended — per table.
        let mut removed: BTreeMap<String, Vec<GenTuple>> = BTreeMap::new();
        let mut added: BTreeMap<String, Vec<GenTuple>> = BTreeMap::new();
        for (name, retract, tuple) in &resolved {
            if *retract {
                let table = self.tables.get_mut(name).expect("validated above");
                let n = table.retract_tuple(tuple)?;
                if n > 0 {
                    summary.retracted += n;
                    removed.entry(name.clone()).or_default().push(tuple.clone());
                }
            }
        }
        for (name, retract, tuple) in resolved {
            if !retract {
                let table = self.tables.get_mut(&name).expect("validated above");
                table.insert_tuple(tuple.clone())?;
                summary.inserted += 1;
                added.entry(name).or_default().push(tuple);
            }
        }
        if summary.inserted > 0 || summary.retracted > 0 {
            self.bump_plan_token();
        }

        // Bring every registered view up to date.
        if !self.views.is_empty() {
            let mut deltas: Vec<RelationDelta> = Vec::new();
            let mut names: BTreeSet<&String> = removed.keys().collect();
            names.extend(added.keys());
            for name in names {
                let schema = self.tables[name.as_str()].relation().schema();
                deltas.push(RelationDelta {
                    name: name.clone(),
                    inserted: GenRelation::new(
                        schema,
                        added.get(name).cloned().unwrap_or_default(),
                    )
                    .map_err(DbError::Core)?,
                    retracted: GenRelation::new(
                        schema,
                        removed.get(name).cloned().unwrap_or_default(),
                    )
                    .map_err(DbError::Core)?,
                });
            }
            self.refresh_views(&deltas, ctx, &mut summary)?;
        } else {
            self.views_stale = false;
        }
        Ok(summary)
    }

    /// Refreshes every registered view: incrementally from `deltas`, or
    /// by full recomputation when the catalog mutated outside the delta
    /// path. Reports each refresh to the metrics registry.
    fn refresh_views(
        &mut self,
        deltas: &[RelationDelta],
        ctx: &ExecContext,
        summary: &mut TxnSummary,
    ) -> Result<()> {
        // Move the views aside so `self` can serve as the catalog.
        let mut views = std::mem::take(&mut self.views);
        let stale = std::mem::take(&mut self.views_stale);
        let delta_rows: u64 = deltas.iter().map(RelationDelta::rows).sum();
        let mut failed = None;
        for rv in &mut views {
            let before = ctx.stats();
            let outcome = if stale {
                rv.view
                    .recompute(&*self, ctx)
                    .map(|()| itd_query::RefreshOutcome {
                        full: true,
                        delta_rows,
                    })
            } else {
                rv.view.refresh(&*self, deltas, ctx)
            };
            match outcome {
                Ok(outcome) => {
                    let stats = ctx.stats().delta_since(&before);
                    self.metrics
                        .observe_view_refresh(outcome.full, outcome.delta_rows, &stats);
                    rv.refreshes += 1;
                    rv.snapshot = Arc::new(ViewSnapshot::of(&rv.name, &rv.view));
                    summary.views_refreshed += 1;
                    if outcome.full {
                        summary.views_recomputed += 1;
                    }
                }
                Err(e) => {
                    failed = Some(e);
                    break;
                }
            }
        }
        self.views = views;
        if let Some(e) = failed {
            // Some views may not have been refreshed: recompute all on
            // the next `apply` rather than trusting half-updated caches.
            self.views_stale = true;
            return Err(DbError::Query(e));
        }
        Ok(())
    }

    /// Registers an incrementally maintained view: the query is prepared
    /// and evaluated once, and every subsequent [`Database::apply`]
    /// keeps it up to date by delta propagation. The name is a handle
    /// for listings and [`Database::view_named`]; it does **not** enter
    /// the table namespace (use [`Database::materialize_view`] for a
    /// queryable one-shot snapshot).
    ///
    /// Views are runtime subscriptions: they are not persisted by
    /// [`Database::save`] and clones of the database carry independent
    /// copies.
    ///
    /// # Errors
    /// [`DbError::DuplicateView`]; parse/sort/evaluation errors
    /// ([`DbError::Query`]).
    pub fn register_view(&mut self, name: &str, src: impl AsRef<str>) -> Result<ViewId> {
        self.register_view_opts(name, src, QueryOpts::new())
    }

    /// [`Database::register_view`] under explicit [`QueryOpts`]
    /// (execution context, optimizer and compaction knobs — the plan
    /// shaped here is the one deltas propagate through for the view's
    /// lifetime).
    ///
    /// # Errors
    /// See [`Database::register_view`].
    pub fn register_view_opts(
        &mut self,
        name: &str,
        src: impl AsRef<str>,
        opts: QueryOpts<'_>,
    ) -> Result<ViewId> {
        if self.views.iter().any(|v| v.name == name) {
            return Err(DbError::DuplicateView(name.to_owned()));
        }
        let f = itd_query::parse(src.as_ref())?;
        let view = MaintainedView::new(self, &f, opts).map_err(DbError::Query)?;
        let id = ViewId(self.next_view_id);
        self.next_view_id += 1;
        let snapshot = Arc::new(ViewSnapshot::of(name, &view));
        self.views.push(RegisteredView {
            id,
            name: name.to_owned(),
            view,
            snapshot,
            refreshes: 0,
        });
        self.metrics.views_registered_add(1);
        Ok(id)
    }

    /// The current snapshot of a registered view, or `None` for an
    /// unknown (e.g. deregistered) handle. The snapshot reflects the
    /// last [`Database::apply`]; mutations made outside `apply` are
    /// visible only after the next one.
    pub fn view(&self, id: ViewId) -> Option<Arc<ViewSnapshot>> {
        self.views
            .iter()
            .find(|v| v.id == id)
            .map(|v| Arc::clone(&v.snapshot))
    }

    /// [`Database::view`] by registered name.
    pub fn view_named(&self, name: &str) -> Option<Arc<ViewSnapshot>> {
        self.views
            .iter()
            .find(|v| v.name == name)
            .map(|v| Arc::clone(&v.snapshot))
    }

    /// Identity and counters of every registered view, in registration
    /// order.
    pub fn views(&self) -> Vec<ViewInfo> {
        self.views
            .iter()
            .map(|rv| ViewInfo {
                id: rv.id,
                name: rv.name.clone(),
                query: rv.view.formula().to_string(),
                tuples: rv.view.relation().tuple_count(),
                refreshes: rv.refreshes,
                full_refreshes: rv.view.full_refreshes(),
                delta_rows: rv.view.delta_rows(),
            })
            .collect()
    }

    /// Removes a registered view, dropping its maintained state.
    /// Returns `false` for an unknown handle.
    pub fn deregister_view(&mut self, id: ViewId) -> bool {
        let before = self.views.len();
        self.views.retain(|v| v.id != id);
        if self.views.len() < before {
            self.metrics.views_registered_add(-1);
            true
        } else {
            false
        }
    }

    /// Parses and evaluates an open query; the result carries one column
    /// per free variable (and the evaluation's operator statistics,
    /// [`QueryResult::stats`]).
    ///
    /// # Errors
    /// Parse/sort/evaluation errors ([`DbError::Query`]).
    #[cfg(feature = "legacy-api")]
    #[deprecated(since = "0.2.0", note = "use `run` with `QueryOpts` instead")]
    pub fn query(&self, src: impl AsRef<str>) -> Result<QueryResult> {
        self.run(src, QueryOpts::new().optimize(false).compact(false))
            .map(|o| o.result)
    }

    /// [`Database::query`] under an explicit execution context (thread
    /// budget and accumulated statistics).
    ///
    /// # Errors
    /// See [`Database::run`].
    #[cfg(feature = "legacy-api")]
    #[deprecated(
        since = "0.2.0",
        note = "use `run` with `QueryOpts::new().ctx(ctx)` instead"
    )]
    pub fn query_with(&self, src: impl AsRef<str>, ctx: &ExecContext) -> Result<QueryResult> {
        self.run(
            src,
            QueryOpts::new().ctx(ctx).optimize(false).compact(false),
        )
        .map(|o| o.result)
    }

    /// Evaluates a pre-built formula.
    ///
    /// # Errors
    /// See [`Database::run`].
    #[cfg(feature = "legacy-api")]
    #[deprecated(since = "0.2.0", note = "use `run_formula` with `QueryOpts` instead")]
    pub fn query_formula(&self, f: &Formula) -> Result<QueryResult> {
        self.run_formula(f, QueryOpts::new().optimize(false).compact(false))
            .map(|o| o.result)
    }

    /// Parses and evaluates a yes/no query (free variables are closed
    /// existentially).
    ///
    /// # Errors
    /// See [`Database::run`].
    #[cfg(feature = "legacy-api")]
    #[deprecated(
        since = "0.2.0",
        note = "use `run` with `QueryOpts`, then `QueryOutput::truth`, instead"
    )]
    pub fn query_bool(&self, src: impl AsRef<str>) -> Result<bool> {
        let ctx = ExecContext::new();
        self.run(
            src,
            QueryOpts::new().ctx(&ctx).optimize(false).compact(false),
        )?
        .truth_in(&ctx)
        .map_err(DbError::Query)
    }

    /// [`Database::query_bool`] under an explicit execution context.
    ///
    /// # Errors
    /// See [`Database::run`].
    #[cfg(feature = "legacy-api")]
    #[deprecated(
        since = "0.2.0",
        note = "use `run` with `QueryOpts::new().ctx(ctx)`, then `QueryOutput::truth_in`, instead"
    )]
    pub fn query_bool_with(&self, src: impl AsRef<str>, ctx: &ExecContext) -> Result<bool> {
        self.run(
            src,
            QueryOpts::new().ctx(ctx).optimize(false).compact(false),
        )?
        .truth_in(ctx)
        .map_err(DbError::Query)
    }

    /// Conversational name for the yes/no reading of a query.
    ///
    /// # Errors
    /// See [`Database::run`].
    #[cfg(feature = "legacy-api")]
    #[deprecated(
        since = "0.2.0",
        note = "use `run` with `QueryOpts`, then `QueryOutput::truth`, instead"
    )]
    pub fn ask(&self, src: impl AsRef<str>) -> Result<bool> {
        let ctx = ExecContext::new();
        self.run(
            src,
            QueryOpts::new().ctx(&ctx).optimize(false).compact(false),
        )?
        .truth_in(&ctx)
        .map_err(DbError::Query)
    }

    /// Compiles a query to its algebra plan *without executing it*
    /// (EXPLAIN). Parse and sort errors are reported exactly as
    /// [`Database::run`] would report them, but no relation is touched.
    ///
    /// # Errors
    /// Parse/sort errors ([`DbError::Query`]).
    pub fn explain(&self, src: impl AsRef<str>) -> Result<itd_query::Plan> {
        let f = itd_query::parse(src.as_ref())?;
        itd_query::explain(self, &f).map_err(DbError::Query)
    }

    /// Compiles and optimizes a query without executing it: the logical
    /// plan next to its rewritten form, both cost-annotated, plus the
    /// list of fired rewrite rules.
    ///
    /// # Errors
    /// Parse/sort errors ([`DbError::Query`]).
    pub fn explain_opt(&self, src: impl AsRef<str>) -> Result<itd_query::ExplainReport> {
        let f = itd_query::parse(src.as_ref())?;
        itd_query::explain_opt(self, &f).map_err(DbError::Query)
    }

    /// [`Database::explain_opt`] with explicit control over whether the
    /// adaptive compaction pass inserts [`itd_query::PlanOp::Compact`]
    /// nodes, matching a [`QueryOpts::compact`] setting so the explained
    /// plan is the one execution would run.
    ///
    /// # Errors
    /// Parse/sort errors ([`DbError::Query`]).
    pub fn explain_opt_with(
        &self,
        src: impl AsRef<str>,
        compact: bool,
    ) -> Result<itd_query::ExplainReport> {
        let f = itd_query::parse(src.as_ref())?;
        itd_query::explain_opt_with(self, &f, compact).map_err(DbError::Query)
    }

    /// Parses and evaluates an open query with tracing (EXPLAIN ANALYZE):
    /// returns the answer, the compiled plan, and the recorded span tree.
    /// The context should be traced ([`ExecContext::traced`]); untraced
    /// contexts yield an empty trace.
    ///
    /// # Errors
    /// See [`Database::run`].
    #[cfg(feature = "legacy-api")]
    #[deprecated(
        since = "0.2.0",
        note = "use `run` with `QueryOpts::new().ctx(ctx).trace(true)` instead"
    )]
    pub fn query_traced_with(
        &self,
        src: impl AsRef<str>,
        ctx: &ExecContext,
    ) -> Result<itd_query::Traced> {
        let out = self.run(
            src,
            QueryOpts::new()
                .ctx(ctx)
                .trace(true)
                .optimize(false)
                .compact(false),
        )?;
        Ok(itd_query::Traced {
            result: out.result,
            plan: out.plan,
            trace: out.trace.unwrap_or_default(),
        })
    }

    /// Materializes an open query as a new table: the answer relation
    /// becomes the table's contents and the query's free variables its
    /// attribute names.
    ///
    /// Because query answers are themselves generalized relations, the view
    /// is exact over infinite time — it is a snapshot of the *symbolic*
    /// result, not of a window.
    ///
    /// # Errors
    /// [`DbError::DuplicateTable`]; query errors.
    pub fn materialize_view(&mut self, name: &str, src: impl AsRef<str>) -> Result<&Table> {
        self.materialize_view_opts(name, src, QueryOpts::new())
    }

    /// [`Database::materialize_view`] under an explicit execution context.
    ///
    /// # Errors
    /// See [`Database::materialize_view`].
    pub fn materialize_view_with(
        &mut self,
        name: &str,
        src: impl AsRef<str>,
        ctx: &ExecContext,
    ) -> Result<&Table> {
        self.materialize_view_opts(name, src, QueryOpts::new().ctx(ctx))
    }

    /// [`Database::materialize_view`] under explicit [`QueryOpts`].
    ///
    /// # Errors
    /// See [`Database::materialize_view`].
    pub fn materialize_view_opts(
        &mut self,
        name: &str,
        src: impl AsRef<str>,
        opts: QueryOpts<'_>,
    ) -> Result<&Table> {
        if self.tables.contains_key(name) {
            return Err(DbError::DuplicateTable(name.to_owned()));
        }
        let result = self.run(src, opts)?.result;
        let tnames: Vec<&str> = result.temporal_vars.iter().map(String::as_str).collect();
        let dnames: Vec<&str> = result.data_vars.iter().map(String::as_str).collect();
        let table = self.create_table(name, &tnames, &dnames)?;
        table.set_relation(result.relation)?;
        self.table(name)
    }

    /// Serializes the database to pretty JSON.
    ///
    /// # Errors
    /// [`DbError::Serde`].
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string_pretty(self)
            .map_err(|e| DbError::serde_caused_by("cannot encode database as JSON", e))
    }

    /// Restores a database from JSON.
    ///
    /// # Errors
    /// [`DbError::Serde`].
    pub fn from_json(json: &str) -> Result<Database> {
        serde_json::from_str(json)
            .map_err(|e| DbError::serde_caused_by("cannot decode database from JSON", e))
    }

    /// Saves to a file.
    ///
    /// # Errors
    /// [`DbError::Serde`] on I/O or encoding failure.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        let json = self.to_json()?;
        let path = path.as_ref();
        std::fs::write(path, json)
            .map_err(|e| DbError::serde_caused_by(format!("cannot write {}", path.display()), e))
    }

    /// Loads from a file.
    ///
    /// # Errors
    /// [`DbError::Serde`] on I/O or decoding failure.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Database> {
        let path = path.as_ref();
        let json = std::fs::read_to_string(path)
            .map_err(|e| DbError::serde_caused_by(format!("cannot read {}", path.display()), e))?;
        Database::from_json(&json)
    }
}

impl Catalog for Database {
    fn relation(&self, name: &str) -> Option<&GenRelation> {
        self.tables.get(name).map(Table::relation)
    }

    fn plan_token(&self) -> Option<u64> {
        Some(self.plan_token)
    }

    fn active_domain(&self) -> BTreeSet<Value> {
        let mut out = BTreeSet::new();
        for table in self.tables.values() {
            let rel = table.relation();
            let cols = rel.columns();
            for c in 0..rel.schema().data() {
                // Dedup at the interned-id level before resolving values.
                let distinct: BTreeSet<_> = cols.data(c).ids().iter().copied().collect();
                out.extend(distinct.into_iter().map(itd_core::resolve_value));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TupleSpec;

    fn ask(db: &Database, src: &str) -> Result<bool> {
        db.run(src, QueryOpts::new())?
            .truth()
            .map_err(DbError::Query)
    }

    fn sample() -> Database {
        let mut db = Database::new();
        db.create_table("even", &["t"], &[]).unwrap();
        db.table_mut("even")
            .unwrap()
            .insert(TupleSpec::new().lrp("t", 0, 2))
            .unwrap();
        db
    }

    #[test]
    fn create_drop_lookup() {
        let mut db = sample();
        assert_eq!(db.table_names(), vec!["even"]);
        assert!(matches!(
            db.create_table("even", &["t"], &[]),
            Err(DbError::DuplicateTable(_))
        ));
        assert!(db.table("missing").is_err());
        db.drop_table("even").unwrap();
        assert!(db.drop_table("even").is_err());
        assert!(db.table_names().is_empty());
    }

    #[test]
    fn ask_and_query() {
        let db = sample();
        assert!(ask(&db, "even(4)").unwrap());
        assert!(!ask(&db, "even(5)").unwrap());
        let r = db
            .run("even(t) and t >= 10", QueryOpts::new())
            .unwrap()
            .result;
        assert_eq!(r.temporal_vars, vec!["t"]);
        assert!(r.relation.contains(&[10], &[]));
        assert!(!r.relation.contains(&[8], &[]));
        assert!(matches!(ask(&db, "nosuch(3)"), Err(DbError::Query(_))));
    }

    #[test]
    fn materialized_views() {
        let mut db = sample();
        let view = db
            .materialize_view("late_even", "even(t) and t >= 100")
            .unwrap();
        assert_eq!(view.temporal_names(), &["t".to_string()]);
        assert!(ask(&db, "late_even(100)").unwrap());
        assert!(!ask(&db, "late_even(98)").unwrap());
        assert!(ask(&db, "late_even(1000000)").unwrap());
        // Views can feed further views.
        db.materialize_view("very_late", "late_even(t) and t >= 200")
            .unwrap();
        assert!(ask(&db, "very_late(200)").unwrap());
        assert!(!ask(&db, "very_late(100)").unwrap());
        // Name clashes rejected.
        assert!(matches!(
            db.materialize_view("even", "even(t)"),
            Err(DbError::DuplicateTable(_))
        ));
        // Query errors propagate without creating the table.
        assert!(db.materialize_view("bad", "nosuch(t)").is_err());
        assert!(db.table("bad").is_err());
    }

    #[test]
    fn json_roundtrip() {
        let db = sample();
        let json = db.to_json().unwrap();
        let back = Database::from_json(&json).unwrap();
        assert!(ask(&back, "even(4)").unwrap());
        assert!(!ask(&back, "even(5)").unwrap());
        assert!(Database::from_json("not json").is_err());
    }

    #[test]
    fn active_domain_collects_values() {
        let mut db = sample();
        db.create_table("tagged", &["t"], &["who"]).unwrap();
        db.table_mut("tagged")
            .unwrap()
            .insert(TupleSpec::new().lrp("t", 0, 3).datum("who", "alice"))
            .unwrap();
        let adom = db.active_domain();
        assert!(adom.contains(&Value::str("alice")));
        assert_eq!(adom.len(), 1);
    }
}

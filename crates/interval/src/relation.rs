//! The thirteen Allen relations and their symbolic composition.

use std::fmt;

use itd_constraint::{Atom, ConstraintSystem};

use crate::Result;

/// One of Allen's thirteen basic relations between proper intervals
/// `A = [a1, a2)` and `B = [b1, b2)` (with `a1 < a2`, `b1 < b2`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AllenRel {
    /// `a2 < b1` — A entirely precedes B.
    Before,
    /// `a2 = b1` — A ends exactly where B starts.
    Meets,
    /// `a1 < b1 < a2 < b2`.
    Overlaps,
    /// `a1 < b1 ∧ a2 = b2` (inverse of `Finishes`).
    FinishedBy,
    /// `a1 < b1 ∧ b2 < a2` — A strictly contains B (inverse of `During`).
    Contains,
    /// `a1 = b1 ∧ a2 < b2`.
    Starts,
    /// `a1 = b1 ∧ a2 = b2`.
    Equals,
    /// `a1 = b1 ∧ b2 < a2` (inverse of `Starts`).
    StartedBy,
    /// `b1 < a1 ∧ a2 < b2` — A strictly inside B.
    During,
    /// `b1 < a1 ∧ a2 = b2`.
    Finishes,
    /// `b1 < a1 < b2 < a2` (inverse of `Overlaps`).
    OverlappedBy,
    /// `a1 = b2` — A starts exactly where B ends (inverse of `Meets`).
    MetBy,
    /// `b2 < a1` — A entirely follows B.
    After,
}

/// All thirteen relations, in conventional order.
pub const ALL_RELATIONS: [AllenRel; 13] = [
    AllenRel::Before,
    AllenRel::Meets,
    AllenRel::Overlaps,
    AllenRel::FinishedBy,
    AllenRel::Contains,
    AllenRel::Starts,
    AllenRel::Equals,
    AllenRel::StartedBy,
    AllenRel::During,
    AllenRel::Finishes,
    AllenRel::OverlappedBy,
    AllenRel::MetBy,
    AllenRel::After,
];

impl AllenRel {
    /// Does `[a1, a2] REL [b1, b2]` hold? Intervals must be proper.
    ///
    /// # Panics
    /// If either interval is improper (`start >= end`).
    pub fn holds(self, a1: i64, a2: i64, b1: i64, b2: i64) -> bool {
        assert!(
            a1 < a2 && b1 < b2,
            "Allen relations require proper intervals"
        );
        match self {
            AllenRel::Before => a2 < b1,
            AllenRel::Meets => a2 == b1,
            AllenRel::Overlaps => a1 < b1 && b1 < a2 && a2 < b2,
            AllenRel::FinishedBy => a1 < b1 && a2 == b2,
            AllenRel::Contains => a1 < b1 && b2 < a2,
            AllenRel::Starts => a1 == b1 && a2 < b2,
            AllenRel::Equals => a1 == b1 && a2 == b2,
            AllenRel::StartedBy => a1 == b1 && b2 < a2,
            AllenRel::During => b1 < a1 && a2 < b2,
            AllenRel::Finishes => b1 < a1 && a2 == b2,
            AllenRel::OverlappedBy => b1 < a1 && a1 < b2 && b2 < a2,
            AllenRel::MetBy => a1 == b2,
            AllenRel::After => b2 < a1,
        }
    }

    /// The unique relation holding between two proper intervals.
    ///
    /// # Panics
    /// If either interval is improper.
    pub fn classify(a1: i64, a2: i64, b1: i64, b2: i64) -> AllenRel {
        *ALL_RELATIONS
            .iter()
            .find(|r| r.holds(a1, a2, b1, b2))
            .expect("the 13 relations are jointly exhaustive")
    }

    /// The inverse relation: `A r B ⟺ B r⁻¹ A`.
    pub fn inverse(self) -> AllenRel {
        match self {
            AllenRel::Before => AllenRel::After,
            AllenRel::Meets => AllenRel::MetBy,
            AllenRel::Overlaps => AllenRel::OverlappedBy,
            AllenRel::FinishedBy => AllenRel::Finishes,
            AllenRel::Contains => AllenRel::During,
            AllenRel::Starts => AllenRel::StartedBy,
            AllenRel::Equals => AllenRel::Equals,
            AllenRel::StartedBy => AllenRel::Starts,
            AllenRel::During => AllenRel::Contains,
            AllenRel::Finishes => AllenRel::FinishedBy,
            AllenRel::OverlappedBy => AllenRel::Overlaps,
            AllenRel::MetBy => AllenRel::Meets,
            AllenRel::After => AllenRel::Before,
        }
    }

    /// The restricted-constraint atoms expressing
    /// `[X_{s1}, X_{e1}] REL [X_{s2}, X_{e2}]` over the given column
    /// indices (strict `<` becomes `≤ −1` over the integers).
    pub fn endpoint_atoms(self, s1: usize, e1: usize, s2: usize, e2: usize) -> Vec<Atom> {
        let lt = |i, j| Atom::diff_le(i, j, -1);
        let eq = |i, j| Atom::diff_eq(i, j, 0);
        match self {
            AllenRel::Before => vec![lt(e1, s2)],
            AllenRel::Meets => vec![eq(e1, s2)],
            AllenRel::Overlaps => vec![lt(s1, s2), lt(s2, e1), lt(e1, e2)],
            AllenRel::FinishedBy => vec![lt(s1, s2), eq(e1, e2)],
            AllenRel::Contains => vec![lt(s1, s2), lt(e2, e1)],
            AllenRel::Starts => vec![eq(s1, s2), lt(e1, e2)],
            AllenRel::Equals => vec![eq(s1, s2), eq(e1, e2)],
            AllenRel::StartedBy => vec![eq(s1, s2), lt(e2, e1)],
            AllenRel::During => vec![lt(s2, s1), lt(e1, e2)],
            AllenRel::Finishes => vec![lt(s2, s1), eq(e1, e2)],
            AllenRel::OverlappedBy => vec![lt(s2, s1), lt(s1, e2), lt(e2, e1)],
            AllenRel::MetBy => vec![eq(s1, e2)],
            AllenRel::After => vec![lt(e2, s1)],
        }
    }
}

impl fmt::Display for AllenRel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AllenRel::Before => "before",
            AllenRel::Meets => "meets",
            AllenRel::Overlaps => "overlaps",
            AllenRel::FinishedBy => "finished-by",
            AllenRel::Contains => "contains",
            AllenRel::Starts => "starts",
            AllenRel::Equals => "equals",
            AllenRel::StartedBy => "started-by",
            AllenRel::During => "during",
            AllenRel::Finishes => "finishes",
            AllenRel::OverlappedBy => "overlapped-by",
            AllenRel::MetBy => "met-by",
            AllenRel::After => "after",
        })
    }
}

/// Allen composition, computed symbolically: the set of relations `r3`
/// such that `A r1 B ∧ B r2 C ∧ A r3 C` is satisfiable.
///
/// # Examples
/// ```
/// use itd_interval::{compose, AllenRel};
/// assert_eq!(
///     compose(AllenRel::Meets, AllenRel::Meets).unwrap(),
///     vec![AllenRel::Before],
/// );
/// ```
///
/// Rather than transcribing the classical 13×13 table, each candidate is
/// decided by a satisfiability check over the six endpoints
/// (`a1 a2 b1 b2 c1 c2` as difference constraints) — exact over `Z`
/// because the system is a DBM. The classical table is recovered as a
/// theorem, not an input; the tests cross-check entries against brute
/// force.
///
/// # Errors
/// Constraint-closure arithmetic (cannot overflow for these constants).
pub fn compose(r1: AllenRel, r2: AllenRel) -> Result<Vec<AllenRel>> {
    // Columns: a1=0, a2=1, b1=2, b2=3, c1=4, c2=5.
    let mut base = ConstraintSystem::unconstrained(6);
    for (s, e) in [(0, 1), (2, 3), (4, 5)] {
        base.add(Atom::diff_le(s, e, -1))
            .map_err(itd_core::CoreError::Numth)?;
    }
    for atom in r1.endpoint_atoms(0, 1, 2, 3) {
        base.add(atom).map_err(itd_core::CoreError::Numth)?;
    }
    for atom in r2.endpoint_atoms(2, 3, 4, 5) {
        base.add(atom).map_err(itd_core::CoreError::Numth)?;
    }
    let mut out = Vec::new();
    for r3 in ALL_RELATIONS {
        let mut sys = base.clone();
        for atom in r3.endpoint_atoms(0, 1, 4, 5) {
            sys.add(atom).map_err(itd_core::CoreError::Numth)?;
        }
        if sys.is_satisfiable() {
            out.push(r3);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn relations_partition_proper_interval_pairs() {
        for a1 in -4i64..4 {
            for a2 in (a1 + 1)..5 {
                for b1 in -4i64..4 {
                    for b2 in (b1 + 1)..5 {
                        let holding: Vec<AllenRel> = ALL_RELATIONS
                            .iter()
                            .copied()
                            .filter(|r| r.holds(a1, a2, b1, b2))
                            .collect();
                        assert_eq!(holding.len(), 1, "({a1},{a2}) vs ({b1},{b2}): {holding:?}");
                        assert_eq!(AllenRel::classify(a1, a2, b1, b2), holding[0]);
                    }
                }
            }
        }
    }

    #[test]
    fn inverses_are_involutive_and_correct() {
        for r in ALL_RELATIONS {
            assert_eq!(r.inverse().inverse(), r);
        }
        for (a1, a2, b1, b2) in [(0, 2, 3, 5), (0, 5, 1, 2), (0, 2, 2, 4), (1, 3, 1, 5)] {
            let r = AllenRel::classify(a1, a2, b1, b2);
            assert_eq!(AllenRel::classify(b1, b2, a1, a2), r.inverse());
        }
    }

    #[test]
    fn endpoint_atoms_agree_with_holds() {
        use itd_constraint::ConstraintSystem;
        for r in ALL_RELATIONS {
            let sys = ConstraintSystem::from_atoms(4, &r.endpoint_atoms(0, 1, 2, 3)).unwrap();
            for a1 in -3i64..3 {
                for a2 in (a1 + 1)..4 {
                    for b1 in -3i64..3 {
                        for b2 in (b1 + 1)..4 {
                            assert_eq!(
                                sys.satisfied_by(&[a1, a2, b1, b2]),
                                r.holds(a1, a2, b1, b2),
                                "{r} at ({a1},{a2},{b1},{b2})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn composition_known_entries() {
        // Classical table spot checks.
        assert_eq!(
            compose(AllenRel::Before, AllenRel::Before).unwrap(),
            vec![AllenRel::Before]
        );
        assert_eq!(
            compose(AllenRel::Meets, AllenRel::Meets).unwrap(),
            vec![AllenRel::Before]
        );
        assert_eq!(
            compose(AllenRel::During, AllenRel::During).unwrap(),
            vec![AllenRel::During]
        );
        assert_eq!(
            compose(AllenRel::Equals, AllenRel::Overlaps).unwrap(),
            vec![AllenRel::Overlaps]
        );
        // overlaps ∘ overlaps = {before, meets, overlaps}
        assert_eq!(
            compose(AllenRel::Overlaps, AllenRel::Overlaps).unwrap(),
            vec![AllenRel::Before, AllenRel::Meets, AllenRel::Overlaps]
        );
        // before ∘ after = all thirteen.
        assert_eq!(
            compose(AllenRel::Before, AllenRel::After).unwrap().len(),
            13
        );
    }

    #[test]
    fn composition_is_sound_and_complete_by_brute_force() {
        // For every pair (r1, r2), the computed set equals the set of
        // relations observable on a small grid of endpoint choices.
        let span = 8i64;
        for r1 in ALL_RELATIONS {
            for r2 in ALL_RELATIONS {
                let computed = compose(r1, r2).unwrap();
                let mut observed = std::collections::BTreeSet::new();
                for a1 in 0..span {
                    for a2 in (a1 + 1)..=span {
                        for b1 in 0..span {
                            for b2 in (b1 + 1)..=span {
                                if !r1.holds(a1, a2, b1, b2) {
                                    continue;
                                }
                                for c1 in 0..span {
                                    for c2 in (c1 + 1)..=span {
                                        if r2.holds(b1, b2, c1, c2) {
                                            observed.insert(AllenRel::classify(a1, a2, c1, c2));
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                let observed: Vec<AllenRel> = observed.into_iter().collect();
                let mut computed_sorted = computed.clone();
                computed_sorted.sort();
                assert_eq!(
                    computed_sorted, observed,
                    "composition {r1} ∘ {r2} mismatch"
                );
            }
        }
    }

    proptest! {
        #[test]
        fn prop_classify_consistent_with_inverse(
            a1 in -20i64..20, alen in 1i64..10,
            b1 in -20i64..20, blen in 1i64..10,
        ) {
            let (a2, b2) = (a1 + alen, b1 + blen);
            let r = AllenRel::classify(a1, a2, b1, b2);
            prop_assert!(r.holds(a1, a2, b1, b2));
            prop_assert!(r.inverse().holds(b1, b2, a1, a2));
        }
    }
}

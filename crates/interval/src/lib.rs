//! Allen's interval algebra over generalized lrp relations.
//!
//! The paper grounds its model in the interval tradition of AI (§1 cites
//! Allen; §2 chooses pairs of points as the interval representation,
//! following Ladkin's observation that the two theories coincide). This
//! crate supplies the canonical interval vocabulary on top of `itd-core`:
//!
//! * [`AllenRel`] — the thirteen basic relations between proper intervals,
//!   with concrete evaluation, inversion, and classification;
//! * [`allen_join`] — an interval-relation-filtered join of two
//!   temporal-arity-2 generalized relations, implemented as a cross product
//!   plus the endpoint constraints of the relation (everything stays in the
//!   restricted-constraint fragment, so the result is again a generalized
//!   relation);
//! * [`compose`] — the Allen composition table, **derived symbolically**:
//!   instead of hard-coding 169 entries, each entry is computed by a
//!   satisfiability check on the 6-endpoint difference-constraint system,
//!   using the same DBM engine that powers the rest of the reproduction.
//!
//! Intervals here are *proper*: `start < end`. (The paper's tuples allow
//! `start = end`; Allen's algebra does not, and the helpers below make the
//! distinction explicit.)

mod join;
mod network;
mod relation;

pub use join::{allen_join, allen_select, proper_intervals};
pub use network::{satisfies, AllenNetwork, RelSet};
pub use relation::{compose, AllenRel, ALL_RELATIONS};

pub use itd_core::CoreError;

/// Result alias (errors come from the core algebra).
pub type Result<T> = itd_core::Result<T>;

//! Interval-relation joins and selections on generalized relations.

use itd_constraint::Atom;
use itd_core::{CoreError, GenRelation, Schema};

use crate::relation::AllenRel;
use crate::Result;

/// Joins two interval relations (temporal arity 2 each, any data arity) on
/// an Allen relation: the result contains
/// `(a1, a2, b1, b2, data_r, data_s)` for every pair of denoted intervals
/// with `[a1,a2] REL [b1,b2]`.
///
/// Implemented entirely inside the §3 algebra: cross product, then one
/// temporal selection per endpoint atom. The output is a generalized
/// relation like any other — project it, complement it, query it.
///
/// # Errors
/// [`CoreError::SchemaMismatch`] if either input does not have temporal
/// arity 2; algebra failures.
pub fn allen_join(r: &GenRelation, s: &GenRelation, rel: AllenRel) -> Result<GenRelation> {
    check_interval_schema(r)?;
    check_interval_schema(s)?;
    let mut out = r.cross_product(s)?;
    for atom in rel.endpoint_atoms(0, 1, 2, 3) {
        out = out.select_temporal(atom)?;
    }
    Ok(out)
}

/// Selects the intervals of `r` standing in `rel` to one fixed interval
/// `[b1, b2]`.
///
/// # Errors
/// Schema/algebra failures as in [`allen_join`].
///
/// # Panics
/// If `b1 >= b2` (Allen relations need proper intervals).
pub fn allen_select(r: &GenRelation, rel: AllenRel, b1: i64, b2: i64) -> Result<GenRelation> {
    assert!(b1 < b2, "Allen relations require proper intervals");
    check_interval_schema(r)?;
    // Constrain against constants by re-expressing the endpoint atoms with
    // the fixed interval folded in: build the 4-column atoms, then
    // substitute columns 2 and 3.
    let mut out = r.clone();
    for atom in rel.endpoint_atoms(0, 1, 2, 3) {
        for substituted in substitute_constants(atom, b1, b2) {
            out = out.select_temporal(substituted)?;
        }
    }
    Ok(out)
}

/// Restricts an interval relation to its *proper* intervals
/// (`start < end`) — the fragment Allen's algebra speaks about.
///
/// # Errors
/// Schema/algebra failures.
pub fn proper_intervals(r: &GenRelation) -> Result<GenRelation> {
    check_interval_schema(r)?;
    r.select_temporal(Atom::diff_le(0, 1, -1))
}

fn check_interval_schema(r: &GenRelation) -> Result<()> {
    if r.schema().temporal() != 2 {
        return Err(CoreError::SchemaMismatch {
            expected: Schema::new(2, r.schema().data()),
            found: r.schema(),
        });
    }
    Ok(())
}

/// Rewrites an atom over columns {0,1,2,3} into atoms over columns {0,1}
/// with columns 2 → `b1`, 3 → `b2` turned into constants.
fn substitute_constants(atom: Atom, b1: i64, b2: i64) -> Vec<Atom> {
    let val = |col: usize| if col == 2 { b1 } else { b2 };
    match atom {
        Atom::DiffLe { i, j, a } => match (i < 2, j < 2) {
            (true, true) => vec![Atom::diff_le(i, j, a)],
            // Xi ≤ b + a
            (true, false) => vec![Atom::le(i, val(j).saturating_add(a))],
            // b ≤ Xj + a ⇔ Xj ≥ b − a
            (false, true) => vec![Atom::ge(j, val(i).saturating_sub(a))],
            (false, false) => {
                // Constant comparison: true → no constraint, false →
                // contradiction.
                if val(i) <= val(j).saturating_add(a) {
                    vec![]
                } else {
                    vec![Atom::le(0, -1), Atom::ge(0, 0)]
                }
            }
        },
        Atom::DiffEq { i, j, a } => match (i < 2, j < 2) {
            (true, true) => vec![Atom::diff_eq(i, j, a)],
            (true, false) => vec![Atom::eq(i, val(j).saturating_add(a))],
            (false, true) => vec![Atom::eq(j, val(i).saturating_sub(a))],
            (false, false) => {
                if val(i) == val(j).saturating_add(a) {
                    vec![]
                } else {
                    vec![Atom::le(0, -1), Atom::ge(0, 0)]
                }
            }
        },
        other => vec![other],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itd_core::{GenTuple, Lrp, Value};

    fn lrp(c: i64, k: i64) -> Lrp {
        Lrp::new(c, k).unwrap()
    }

    /// Periodic maintenance windows [10n, 10n+4] and short probes
    /// [5n+1, 5n+2].
    fn fixtures() -> (GenRelation, GenRelation) {
        let windows = GenRelation::new(
            Schema::new(2, 1),
            vec![GenTuple::builder()
                .lrps(vec![lrp(0, 10), lrp(4, 10)])
                .atoms([Atom::diff_eq(1, 0, 4)])
                .data(vec![Value::str("window")])
                .build()
                .unwrap()],
        )
        .unwrap();
        let probes = GenRelation::new(
            Schema::new(2, 1),
            vec![GenTuple::builder()
                .lrps(vec![lrp(1, 5), lrp(2, 5)])
                .atoms([Atom::diff_eq(1, 0, 1)])
                .data(vec![Value::str("probe")])
                .build()
                .unwrap()],
        )
        .unwrap();
        (windows, probes)
    }

    #[test]
    fn join_matches_pointwise_semantics() {
        let (w, p) = fixtures();
        for rel in crate::ALL_RELATIONS {
            let joined = allen_join(&w, &p, rel).unwrap();
            for a1 in (0..30).step_by(10) {
                let a2 = a1 + 4;
                for b1 in (1..32).step_by(5) {
                    let b2 = b1 + 1;
                    let expect = rel.holds(a1, a2, b1, b2);
                    let got = joined.contains(
                        &[a1, a2, b1, b2],
                        &[Value::str("window"), Value::str("probe")],
                    );
                    assert_eq!(expect, got, "{rel} at ({a1},{a2})({b1},{b2})");
                }
            }
        }
    }

    #[test]
    fn probes_during_windows() {
        let (w, p) = fixtures();
        // probe [1,2] during window [0,4]; probe [11,12] during [10,14];
        // probe [6,7] falls between windows.
        let during = allen_join(&p, &w, AllenRel::During).unwrap();
        assert!(during.contains(&[1, 2, 0, 4], &[Value::str("probe"), Value::str("window")]));
        assert!(during.contains(
            &[11, 12, 10, 14],
            &[Value::str("probe"), Value::str("window")]
        ));
        assert!(!during.contains(
            &[6, 7, 10, 14],
            &[Value::str("probe"), Value::str("window")]
        ));
        // Projection: the probes that are inside SOME window.
        let covered = during.project(&[0, 1], &[0]).unwrap();
        assert!(covered.contains(&[21, 22], &[Value::str("probe")]));
        assert!(!covered.contains(&[6, 7], &[Value::str("probe")]));
    }

    #[test]
    fn select_against_fixed_interval() {
        let (w, _) = fixtures();
        // Windows entirely before [17, 25]: [0,4] and [10,14] qualify,
        // [20, 24] does not.
        let before = allen_select(&w, AllenRel::Before, 17, 25).unwrap();
        assert!(before.contains(&[0, 4], &[Value::str("window")]));
        assert!(before.contains(&[10, 14], &[Value::str("window")]));
        assert!(!before.contains(&[20, 24], &[Value::str("window")]));
        // Windows containing [11, 13]: exactly [10, 14].
        let containing = allen_select(&w, AllenRel::Contains, 11, 13).unwrap();
        assert!(containing.contains(&[10, 14], &[Value::str("window")]));
        assert!(!containing.contains(&[0, 4], &[Value::str("window")]));
        assert!(!containing.contains(&[20, 24], &[Value::str("window")]));
    }

    #[test]
    fn select_with_equality_relations() {
        let (w, _) = fixtures();
        let equals = allen_select(&w, AllenRel::Equals, 20, 24).unwrap();
        assert!(equals.contains(&[20, 24], &[Value::str("window")]));
        assert!(!equals.contains(&[10, 14], &[Value::str("window")]));
        let met_by = allen_select(&w, AllenRel::MetBy, 5, 10).unwrap();
        assert!(met_by.contains(&[10, 14], &[Value::str("window")]));
        assert!(!met_by.contains(&[20, 24], &[Value::str("window")]));
    }

    #[test]
    fn proper_interval_filter() {
        let rel = GenRelation::new(
            Schema::new(2, 0),
            vec![
                // Degenerate: start = end.
                GenTuple::builder()
                    .lrps(vec![lrp(0, 5), lrp(0, 5)])
                    .atoms([Atom::diff_eq(0, 1, 0)])
                    .build()
                    .unwrap(),
                GenTuple::builder()
                    .lrps(vec![lrp(0, 5), lrp(2, 5)])
                    .atoms([Atom::diff_eq(1, 0, 2)])
                    .build()
                    .unwrap(),
            ],
        )
        .unwrap();
        let proper = proper_intervals(&rel).unwrap();
        assert!(!proper.contains(&[5, 5], &[]));
        assert!(proper.contains(&[5, 7], &[]));
    }

    #[test]
    fn schema_validation() {
        let bad = GenRelation::empty(Schema::new(1, 0));
        assert!(allen_join(&bad, &bad, AllenRel::Before).is_err());
        assert!(proper_intervals(&bad).is_err());
        assert!(allen_select(&bad, AllenRel::Before, 0, 1).is_err());
    }
}

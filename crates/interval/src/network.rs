//! Qualitative interval constraint networks (Allen, 1983) with
//! path-consistency propagation and scenario search.
//!
//! An [`AllenNetwork`] holds, for every ordered pair of interval variables,
//! the set of basic relations still allowed ([`RelSet`], a 13-bit mask).
//! [`AllenNetwork::path_consistency`] runs the classical
//! `C(i,j) ← C(i,j) ∩ (C(i,k) ∘ C(k,j))` propagation; the composition
//! table is **derived** from [`crate::compose`] (i.e. from the DBM
//! engine), not transcribed. [`AllenNetwork::scenario`] searches for a
//! consistent atomic labeling by backtracking over the pruned network.

use std::sync::OnceLock;

use crate::relation::{compose, AllenRel, ALL_RELATIONS};

/// A set of Allen relations, represented as a 13-bit mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RelSet(u16);

const FULL_MASK: u16 = (1 << 13) - 1;

impl RelSet {
    /// The empty set (an inconsistency marker).
    pub const EMPTY: RelSet = RelSet(0);

    /// All thirteen relations (no information).
    pub const FULL: RelSet = RelSet(FULL_MASK);

    /// The singleton set.
    pub fn only(r: AllenRel) -> RelSet {
        RelSet(1 << index(r))
    }

    /// Builds from an iterator of relations.
    #[allow(clippy::should_implement_trait)] // const-friendly inherent builder
    pub fn from_iter(rels: impl IntoIterator<Item = AllenRel>) -> RelSet {
        let mut s = RelSet::EMPTY;
        for r in rels {
            s.0 |= 1 << index(r);
        }
        s
    }

    /// Membership.
    pub fn contains(self, r: AllenRel) -> bool {
        self.0 & (1 << index(r)) != 0
    }

    /// Set intersection.
    #[must_use]
    pub fn intersect(self, other: RelSet) -> RelSet {
        RelSet(self.0 & other.0)
    }

    /// Set union.
    #[must_use]
    pub fn union(self, other: RelSet) -> RelSet {
        RelSet(self.0 | other.0)
    }

    /// Is the set empty?
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of relations in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterates the member relations.
    pub fn iter(self) -> impl Iterator<Item = AllenRel> {
        ALL_RELATIONS
            .into_iter()
            .enumerate()
            .filter(move |(i, _)| self.0 & (1 << i) != 0)
            .map(|(_, r)| r)
    }

    /// The set of inverses (`{r⁻¹ | r ∈ self}`).
    #[must_use]
    pub fn inverse(self) -> RelSet {
        RelSet::from_iter(self.iter().map(AllenRel::inverse))
    }

    /// Composition of sets: `∪ {r1 ∘ r2 | r1 ∈ self, r2 ∈ other}`.
    pub fn compose(self, other: RelSet) -> RelSet {
        let table = composition_table();
        let mut out = RelSet::EMPTY;
        for r1 in self.iter() {
            for r2 in other.iter() {
                out = out.union(table[index(r1)][index(r2)]);
            }
        }
        out
    }
}

fn index(r: AllenRel) -> usize {
    ALL_RELATIONS
        .iter()
        .position(|&x| x == r)
        .expect("relation is in ALL_RELATIONS")
}

/// The 13×13 composition table, computed once from the symbolic
/// `compose` (itself backed by the DBM engine).
fn composition_table() -> &'static [[RelSet; 13]; 13] {
    static TABLE: OnceLock<[[RelSet; 13]; 13]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [[RelSet::EMPTY; 13]; 13];
        for (i, &r1) in ALL_RELATIONS.iter().enumerate() {
            for (j, &r2) in ALL_RELATIONS.iter().enumerate() {
                let entries = compose(r1, r2).expect("small constants cannot overflow");
                table[i][j] = RelSet::from_iter(entries);
            }
        }
        table
    })
}

/// A qualitative constraint network over `n` interval variables.
#[derive(Debug, Clone)]
pub struct AllenNetwork {
    n: usize,
    /// Row-major n×n; entry (i,j) is the allowed relation set from i to j.
    constraints: Vec<RelSet>,
}

impl AllenNetwork {
    /// A fully unconstrained network over `n` intervals.
    pub fn new(n: usize) -> AllenNetwork {
        let mut constraints = vec![RelSet::FULL; n * n];
        for i in 0..n {
            constraints[i * n + i] = RelSet::only(AllenRel::Equals);
        }
        AllenNetwork { n, constraints }
    }

    /// Number of interval variables.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Is the network empty (zero variables)?
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The current allowed set between `i` and `j`.
    ///
    /// # Panics
    /// If an index is out of range.
    pub fn get(&self, i: usize, j: usize) -> RelSet {
        assert!(i < self.n && j < self.n, "variable out of range");
        self.constraints[i * self.n + j]
    }

    /// Restricts the pair `(i, j)` to `set` (and `(j, i)` to its inverse).
    ///
    /// # Panics
    /// If an index is out of range or `i == j` with a non-`Equals` set.
    pub fn constrain(&mut self, i: usize, j: usize, set: RelSet) {
        assert!(i < self.n && j < self.n, "variable out of range");
        if i == j {
            assert!(
                set.contains(AllenRel::Equals),
                "an interval always equals itself"
            );
            return;
        }
        let n = self.n;
        self.constraints[i * n + j] = self.constraints[i * n + j].intersect(set);
        self.constraints[j * n + i] = self.constraints[j * n + i].intersect(set.inverse());
    }

    /// Convenience: restrict to a single relation.
    pub fn constrain_to(&mut self, i: usize, j: usize, rel: AllenRel) {
        self.constrain(i, j, RelSet::only(rel));
    }

    /// Path-consistency propagation: repeatedly refine
    /// `C(i,j) ← C(i,j) ∩ (C(i,k) ∘ C(k,j))` to a fixpoint.
    ///
    /// Returns `false` if some pair becomes empty (the network is
    /// inconsistent). `true` means path-consistent — a necessary (for
    /// Allen networks not always sufficient) consistency condition.
    pub fn path_consistency(&mut self) -> bool {
        let n = self.n;
        loop {
            let mut changed = false;
            for i in 0..n {
                for j in 0..n {
                    if i == j {
                        continue;
                    }
                    for k in 0..n {
                        if k == i || k == j {
                            continue;
                        }
                        let through = self.get(i, k).compose(self.get(k, j));
                        let refined = self.get(i, j).intersect(through);
                        if refined != self.get(i, j) {
                            self.constraints[i * n + j] = refined;
                            self.constraints[j * n + i] = refined.inverse();
                            changed = true;
                        }
                        if refined.is_empty() {
                            return false;
                        }
                    }
                }
            }
            if !changed {
                return true;
            }
        }
    }

    /// Searches for a consistent *scenario* — one basic relation per pair —
    /// by backtracking with path-consistency propagation. Returns the
    /// refined network (all pairs singleton) or `None`.
    pub fn scenario(&self) -> Option<AllenNetwork> {
        let mut work = self.clone();
        if !work.path_consistency() {
            return None;
        }
        Self::search(work)
    }

    fn search(net: AllenNetwork) -> Option<AllenNetwork> {
        // Find the most constrained undecided pair.
        let n = net.n;
        let mut pick: Option<(usize, usize)> = None;
        let mut best = usize::MAX;
        for i in 0..n {
            for j in (i + 1)..n {
                let size = net.get(i, j).len();
                if size > 1 && size < best {
                    best = size;
                    pick = Some((i, j));
                }
            }
        }
        let Some((i, j)) = pick else {
            return Some(net); // all singletons: a scenario
        };
        for r in net.get(i, j).iter() {
            let mut branch = net.clone();
            branch.constrain_to(i, j, r);
            if branch.path_consistency() {
                if let Some(solution) = Self::search(branch) {
                    return Some(solution);
                }
            }
        }
        None
    }

    /// Builds the network induced by concrete intervals (each pair gets the
    /// singleton of its actual relation) — useful as a test oracle.
    ///
    /// # Panics
    /// If any interval is improper.
    pub fn from_concrete(intervals: &[(i64, i64)]) -> AllenNetwork {
        let mut net = AllenNetwork::new(intervals.len());
        for (i, &(a1, a2)) in intervals.iter().enumerate() {
            for (j, &(b1, b2)) in intervals.iter().enumerate() {
                if i != j {
                    net.constrain_to(i, j, AllenRel::classify(a1, a2, b1, b2));
                }
            }
        }
        net
    }
}

/// Convenience re-export used by tests: is a concrete interval assignment a
/// model of the network?
pub fn satisfies(net: &AllenNetwork, intervals: &[(i64, i64)]) -> bool {
    if intervals.len() != net.len() {
        return false;
    }
    for (i, &(a1, a2)) in intervals.iter().enumerate() {
        for (j, &(b1, b2)) in intervals.iter().enumerate() {
            if i != j && !net.get(i, j).contains(AllenRel::classify(a1, a2, b1, b2)) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn relset_basics() {
        let s = RelSet::from_iter([AllenRel::Before, AllenRel::Meets]);
        assert_eq!(s.len(), 2);
        assert!(s.contains(AllenRel::Before));
        assert!(!s.contains(AllenRel::After));
        assert_eq!(
            s.inverse(),
            RelSet::from_iter([AllenRel::After, AllenRel::MetBy])
        );
        assert_eq!(s.intersect(RelSet::only(AllenRel::Meets)).len(), 1);
        assert!(RelSet::EMPTY.is_empty());
        assert_eq!(RelSet::FULL.len(), 13);
        assert_eq!(RelSet::FULL.inverse(), RelSet::FULL);
    }

    #[test]
    fn set_composition_matches_pointwise() {
        let s1 = RelSet::from_iter([AllenRel::Before, AllenRel::Meets]);
        let s2 = RelSet::only(AllenRel::Before);
        // before ∘ before = {before}; meets ∘ before = {before}.
        assert_eq!(s1.compose(s2), RelSet::only(AllenRel::Before));
    }

    #[test]
    fn transitive_chain_propagates() {
        // A before B, B before C ⟹ A before C.
        let mut net = AllenNetwork::new(3);
        net.constrain_to(0, 1, AllenRel::Before);
        net.constrain_to(1, 2, AllenRel::Before);
        assert!(net.path_consistency());
        assert_eq!(net.get(0, 2), RelSet::only(AllenRel::Before));
        assert_eq!(net.get(2, 0), RelSet::only(AllenRel::After));
    }

    #[test]
    fn classic_meets_during() {
        // A meets B, B during C ⟹ A ∈ {overlaps, during, starts} C.
        let mut net = AllenNetwork::new(3);
        net.constrain_to(0, 1, AllenRel::Meets);
        net.constrain_to(1, 2, AllenRel::During);
        assert!(net.path_consistency());
        assert_eq!(
            net.get(0, 2),
            RelSet::from_iter([AllenRel::Overlaps, AllenRel::During, AllenRel::Starts])
        );
    }

    #[test]
    fn cyclic_inconsistency_detected() {
        // A before B, B before C, C before A: impossible.
        let mut net = AllenNetwork::new(3);
        net.constrain_to(0, 1, AllenRel::Before);
        net.constrain_to(1, 2, AllenRel::Before);
        net.constrain_to(2, 0, AllenRel::Before);
        assert!(!net.path_consistency());
        assert!(net.scenario().is_none());
    }

    #[test]
    fn scenario_search_finds_models() {
        // A overlaps-or-before B, B meets C, A disjoint-from C.
        let mut net = AllenNetwork::new(3);
        net.constrain(
            0,
            1,
            RelSet::from_iter([AllenRel::Overlaps, AllenRel::Before]),
        );
        net.constrain_to(1, 2, AllenRel::Meets);
        net.constrain(0, 2, RelSet::from_iter([AllenRel::Before, AllenRel::After]));
        let scenario = net.scenario().expect("consistent");
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    assert_eq!(scenario.get(i, j).len(), 1, "({i},{j})");
                }
            }
        }
        // The singleton labeling is itself path-consistent and within the
        // original constraints.
        assert!(scenario.get(0, 1).intersect(net.get(0, 1)).len() == 1);
    }

    #[test]
    fn from_concrete_is_consistent() {
        let intervals = [(0, 5), (2, 4), (5, 9), (-3, 0)];
        let net = AllenNetwork::from_concrete(&intervals);
        let mut pc = net.clone();
        assert!(pc.path_consistency());
        assert!(satisfies(&net, &intervals));
        assert!(net.scenario().is_some());
    }

    proptest! {
        /// Path consistency never removes relations realized by an actual
        /// model (soundness of pruning).
        #[test]
        fn prop_path_consistency_sound(
            starts in proptest::collection::vec((-10i64..10, 1i64..6), 4),
            loosen in proptest::collection::vec(0usize..13, 6),
        ) {
            let intervals: Vec<(i64, i64)> =
                starts.iter().map(|&(s, len)| (s, s + len)).collect();
            // Start from the exact network, then loosen some pairs with
            // extra relations.
            let mut net = AllenNetwork::from_concrete(&intervals);
            let mut li = loosen.iter();
            for i in 0..intervals.len() {
                for j in (i + 1)..intervals.len() {
                    if let Some(&extra) = li.next() {
                        let extra_rel = ALL_RELATIONS[extra];
                        let widened = net.get(i, j).union(RelSet::only(extra_rel));
                        net.constraints[i * net.n + j] = widened;
                        net.constraints[j * net.n + i] = widened.inverse();
                    }
                }
            }
            let mut pc = net.clone();
            prop_assert!(pc.path_consistency(), "a model exists");
            // The actual relations survive pruning.
            prop_assert!(satisfies(&pc, &intervals));
            // And a scenario is found.
            prop_assert!(net.scenario().is_some());
        }
    }
}

//! Checked elementary arithmetic: gcd, lcm, Euclidean division.

use crate::error::{NumthError, Overflow};
use crate::Result;

/// Checked addition.
#[inline]
pub fn checked_add(a: i64, b: i64) -> std::result::Result<i64, Overflow> {
    a.checked_add(b).ok_or(Overflow)
}

/// Checked subtraction.
#[inline]
pub fn checked_sub(a: i64, b: i64) -> std::result::Result<i64, Overflow> {
    a.checked_sub(b).ok_or(Overflow)
}

/// Checked multiplication.
#[inline]
pub fn checked_mul(a: i64, b: i64) -> std::result::Result<i64, Overflow> {
    a.checked_mul(b).ok_or(Overflow)
}

/// Checked negation (fails on `i64::MIN`).
#[inline]
pub fn checked_neg(a: i64) -> std::result::Result<i64, Overflow> {
    a.checked_neg().ok_or(Overflow)
}

/// Checked absolute value (fails on `i64::MIN`).
#[inline]
pub fn checked_abs(a: i64) -> std::result::Result<i64, Overflow> {
    a.checked_abs().ok_or(Overflow)
}

/// Floor division: largest `q` with `q * b <= a`. Errors on `b == 0`.
///
/// Unlike Rust's truncating `/`, this rounds toward negative infinity, which
/// is what the constraint-rounding step of normalization (Thm 3.2, step 5)
/// requires for upper bounds.
#[inline]
pub fn div_floor(a: i64, b: i64) -> Result<i64> {
    if b == 0 {
        return Err(NumthError::DivisionByZero);
    }
    if a == i64::MIN && b == -1 {
        return Err(NumthError::Overflow);
    }
    let q = a / b;
    let r = a % b;
    Ok(if r != 0 && (r < 0) != (b < 0) {
        q - 1
    } else {
        q
    })
}

/// Ceiling division: smallest `q` with `q * b >= a`. Errors on `b == 0`.
#[inline]
pub fn div_ceil(a: i64, b: i64) -> Result<i64> {
    if b == 0 {
        return Err(NumthError::DivisionByZero);
    }
    if a == i64::MIN && b == -1 {
        return Err(NumthError::Overflow);
    }
    let q = a / b;
    let r = a % b;
    Ok(if r != 0 && (r < 0) == (b < 0) {
        q + 1
    } else {
        q
    })
}

/// Euclidean remainder: the unique `r` in `[0, |b|)` with `a ≡ r (mod b)`.
#[inline]
pub fn mod_euclid(a: i64, b: i64) -> Result<i64> {
    if b == 0 {
        return Err(NumthError::DivisionByZero);
    }
    Ok(a.rem_euclid(b))
}

/// Greatest common divisor (always non-negative; `gcd(0, 0) == 0`).
#[inline]
pub fn gcd(a: i64, b: i64) -> i64 {
    // Work in u64 so that |i64::MIN| is representable.
    let mut x = a.unsigned_abs();
    let mut y = b.unsigned_abs();
    while y != 0 {
        let t = x % y;
        x = y;
        y = t;
    }
    // gcd of two i64s always fits in i64 except gcd(MIN, 0) = |MIN|;
    // saturate that corner to an error-free i64 by construction below.
    debug_assert!(x <= i64::MAX as u64 || (a == i64::MIN && (b == 0 || b == i64::MIN)));
    x.try_into().unwrap_or(i64::MAX)
}

/// Extended Euclid: returns `(g, x, y)` with `a*x + b*y == g == gcd(a, b)`
/// and `g >= 0`.
///
/// # Examples
/// ```
/// let (g, x, y) = itd_numth::egcd(240, 46);
/// assert_eq!(g, 2);
/// assert_eq!(240 * x + 46 * y, 2);
/// ```
///
/// This is the "extension of Euclid's algorithm" the paper cites for
/// computing modular inverses in lrp intersection (§3.2.1).
pub fn egcd(a: i64, b: i64) -> (i64, i64, i64) {
    // i128 intermediates: Bézout coefficients are bounded by |a|,|b| so the
    // final cast is safe, but intermediate products can exceed i64.
    let (mut r0, mut r1) = (a as i128, b as i128);
    let (mut s0, mut s1) = (1i128, 0i128);
    let (mut t0, mut t1) = (0i128, 1i128);
    while r1 != 0 {
        let q = r0 / r1;
        (r0, r1) = (r1, r0 - q * r1);
        (s0, s1) = (s1, s0 - q * s1);
        (t0, t1) = (t1, t0 - q * t1);
    }
    if r0 < 0 {
        r0 = -r0;
        s0 = -s0;
        t0 = -t0;
    }
    (r0 as i64, s0 as i64, t0 as i64)
}

/// Least common multiple of `|a|` and `|b|` (checked). `lcm(0, b) == 0`.
pub fn lcm(a: i64, b: i64) -> Result<i64> {
    if a == 0 || b == 0 {
        return Ok(0);
    }
    let g = gcd(a, b);
    let a_abs = checked_abs(a)?;
    let b_abs = checked_abs(b)?;
    checked_mul(a_abs / g, b_abs).map_err(Into::into)
}

/// Least common multiple of a whole sequence (ignoring zeros).
///
/// Returns `1` for an empty (or all-zero) sequence: the neutral period, under
/// which every lrp is already "normalized". Used to compute the common period
/// `k` of Theorem 3.2.
pub fn lcm_many<I: IntoIterator<Item = i64>>(periods: I) -> Result<i64> {
    let mut acc = 1i64;
    for k in periods {
        if k == 0 {
            continue;
        }
        acc = lcm(acc, k)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(-12, 18), 6);
        assert_eq!(gcd(12, -18), 6);
        assert_eq!(gcd(-12, -18), 6);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(1, i64::MAX), 1);
    }

    #[test]
    fn gcd_min_corner() {
        // |i64::MIN| saturates rather than panicking.
        assert_eq!(gcd(i64::MIN, 0), i64::MAX);
        assert_eq!(gcd(i64::MIN, 2), 2);
    }

    #[test]
    fn egcd_bezout_holds() {
        for &(a, b) in &[(240, 46), (-240, 46), (240, -46), (0, 7), (7, 0), (1, 1)] {
            let (g, x, y) = egcd(a, b);
            assert_eq!(g, gcd(a, b), "gcd mismatch for ({a},{b})");
            assert_eq!(
                (a as i128) * (x as i128) + (b as i128) * (y as i128),
                g as i128,
                "Bézout identity fails for ({a},{b})"
            );
        }
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(lcm(4, 6).unwrap(), 12);
        assert_eq!(lcm(-4, 6).unwrap(), 12);
        assert_eq!(lcm(0, 6).unwrap(), 0);
        assert_eq!(lcm(7, 7).unwrap(), 7);
        assert!(lcm(i64::MAX, i64::MAX - 1).is_err());
    }

    #[test]
    fn lcm_many_skips_zero_periods() {
        assert_eq!(lcm_many([4, 0, 6]).unwrap(), 12);
        assert_eq!(lcm_many([] as [i64; 0]).unwrap(), 1);
        assert_eq!(lcm_many([0, 0]).unwrap(), 1);
    }

    #[test]
    fn div_floor_and_ceil() {
        assert_eq!(div_floor(7, 2).unwrap(), 3);
        assert_eq!(div_floor(-7, 2).unwrap(), -4);
        assert_eq!(div_floor(7, -2).unwrap(), -4);
        assert_eq!(div_floor(-7, -2).unwrap(), 3);
        assert_eq!(div_ceil(7, 2).unwrap(), 4);
        assert_eq!(div_ceil(-7, 2).unwrap(), -3);
        assert_eq!(div_ceil(7, -2).unwrap(), -3);
        assert_eq!(div_ceil(-7, -2).unwrap(), 4);
        assert_eq!(div_floor(6, 3).unwrap(), 2);
        assert_eq!(div_ceil(6, 3).unwrap(), 2);
        assert_eq!(div_floor(5, 0), Err(NumthError::DivisionByZero));
        assert_eq!(div_ceil(5, 0), Err(NumthError::DivisionByZero));
        assert_eq!(div_floor(i64::MIN, -1), Err(NumthError::Overflow));
    }

    #[test]
    fn mod_euclid_is_non_negative() {
        assert_eq!(mod_euclid(7, 3).unwrap(), 1);
        assert_eq!(mod_euclid(-7, 3).unwrap(), 2);
        assert_eq!(mod_euclid(-7, -3).unwrap(), 2);
        assert_eq!(mod_euclid(7, 0), Err(NumthError::DivisionByZero));
    }

    proptest! {
        #[test]
        fn prop_gcd_divides_both(a in -10_000i64..10_000, b in -10_000i64..10_000) {
            let g = gcd(a, b);
            if g != 0 {
                prop_assert_eq!(a % g, 0);
                prop_assert_eq!(b % g, 0);
            } else {
                prop_assert_eq!(a, 0);
                prop_assert_eq!(b, 0);
            }
        }

        #[test]
        fn prop_egcd_bezout(a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000) {
            let (g, x, y) = egcd(a, b);
            prop_assert_eq!(g, gcd(a, b));
            prop_assert_eq!((a as i128) * (x as i128) + (b as i128) * (y as i128), g as i128);
        }

        #[test]
        fn prop_lcm_is_common_multiple(a in 1i64..10_000, b in 1i64..10_000) {
            let l = lcm(a, b).unwrap();
            prop_assert_eq!(l % a, 0);
            prop_assert_eq!(l % b, 0);
            // Minimality: lcm * gcd == |a*b|
            prop_assert_eq!(l as i128 * gcd(a, b) as i128, (a as i128) * (b as i128));
        }

        #[test]
        fn prop_div_floor_ceil_bracket(a in -10_000i64..10_000, b in -100i64..100) {
            prop_assume!(b != 0);
            let f = div_floor(a, b).unwrap();
            let c = div_ceil(a, b).unwrap();
            // f <= a/b <= c as rationals, i.e. f*b brackets a on the correct side.
            let (fb, cb, av) = (f as i128 * b as i128, c as i128 * b as i128, a as i128);
            if b > 0 {
                prop_assert!(fb <= av && av < fb + b as i128);
                prop_assert!(cb >= av && av > cb - b as i128);
            } else {
                prop_assert!(fb >= av && av > fb + b as i128);
                prop_assert!(cb <= av && av < cb - b as i128);
            }
            prop_assert!(c >= f && c - f <= 1);
            if a % b == 0 {
                prop_assert_eq!(f, c);
            }
        }

        #[test]
        fn prop_mod_euclid_range(a in -10_000i64..10_000, b in -100i64..100) {
            prop_assume!(b != 0);
            let r = mod_euclid(a, b).unwrap();
            prop_assert!(r >= 0 && r < b.abs());
            prop_assert_eq!((a - r) % b, 0);
        }
    }
}

//! Error types for checked number theory.

use std::fmt;

/// Marker for an arithmetic overflow of `i64`.
///
/// Carried inside [`NumthError::Overflow`]; exists as its own type so that
/// lower-level helpers can return `Result<T, Overflow>` without paying for a
/// larger enum on the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Overflow;

impl fmt::Display for Overflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("i64 overflow in temporal arithmetic")
    }
}

impl std::error::Error for Overflow {}

/// Errors produced by the number-theory layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NumthError {
    /// A computation exceeded the range of `i64`.
    Overflow,
    /// Division (or modular reduction) by zero.
    DivisionByZero,
    /// A modular inverse was requested for non-coprime arguments.
    NotInvertible {
        /// The value whose inverse was requested.
        value: i64,
        /// The modulus.
        modulus: i64,
    },
}

impl fmt::Display for NumthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumthError::Overflow => Overflow.fmt(f),
            NumthError::DivisionByZero => f.write_str("division by zero"),
            NumthError::NotInvertible { value, modulus } => {
                write!(f, "{value} is not invertible modulo {modulus}")
            }
        }
    }
}

impl std::error::Error for NumthError {}

impl From<Overflow> for NumthError {
    fn from(_: Overflow) -> Self {
        NumthError::Overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_stable() {
        assert_eq!(Overflow.to_string(), "i64 overflow in temporal arithmetic");
        assert_eq!(
            NumthError::Overflow.to_string(),
            "i64 overflow in temporal arithmetic"
        );
        assert_eq!(NumthError::DivisionByZero.to_string(), "division by zero");
        assert_eq!(
            NumthError::NotInvertible {
                value: 4,
                modulus: 6
            }
            .to_string(),
            "4 is not invertible modulo 6"
        );
    }

    #[test]
    fn overflow_converts_to_numth_error() {
        let e: NumthError = Overflow.into();
        assert_eq!(e, NumthError::Overflow);
    }
}

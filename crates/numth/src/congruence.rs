//! Congruences: modular inverses, linear congruences, and the
//! Chinese-remainder pairing that underlies lrp intersection (§3.2.1).

use crate::arith::{egcd, gcd, lcm, mod_euclid};
use crate::error::NumthError;
use crate::Result;

/// A congruence `x ≡ residue (mod modulus)` with `modulus > 0` and
/// `0 <= residue < modulus`.
///
/// This is exactly the set of values of an infinite linear repeating point;
/// [`crt_pair`] computes the intersection of two such sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Congruence {
    residue: i64,
    modulus: i64,
}

impl Congruence {
    /// Builds a congruence class, reducing `residue` into `[0, modulus)`.
    ///
    /// # Errors
    /// [`NumthError::DivisionByZero`] if `modulus == 0`.
    pub fn new(residue: i64, modulus: i64) -> Result<Self> {
        if modulus == 0 {
            return Err(NumthError::DivisionByZero);
        }
        let modulus = modulus.checked_abs().ok_or(NumthError::Overflow)?;
        Ok(Self {
            residue: mod_euclid(residue, modulus)?,
            modulus,
        })
    }

    /// The canonical residue in `[0, modulus)`.
    #[inline]
    pub fn residue(&self) -> i64 {
        self.residue
    }

    /// The (positive) modulus.
    #[inline]
    pub fn modulus(&self) -> i64 {
        self.modulus
    }

    /// Does `x` belong to this residue class?
    #[inline]
    pub fn contains(&self, x: i64) -> bool {
        x.rem_euclid(self.modulus) == self.residue
    }
}

/// Modular inverse: the `x` in `[0, |m|)` with `a * x ≡ 1 (mod m)`.
///
/// # Errors
/// [`NumthError::NotInvertible`] if `gcd(a, m) != 1`;
/// [`NumthError::DivisionByZero`] if `m == 0`.
pub fn mod_inverse(a: i64, m: i64) -> Result<i64> {
    if m == 0 {
        return Err(NumthError::DivisionByZero);
    }
    let (g, x, _) = egcd(a, m);
    if g != 1 {
        return Err(NumthError::NotInvertible {
            value: a,
            modulus: m,
        });
    }
    mod_euclid(x, m)
}

/// Solves the linear congruence `a * x ≡ b (mod m)`.
///
/// Returns the solution set as a [`Congruence`] (`x ≡ x0 (mod m/g)`) when
/// `g = gcd(a, m)` divides `b`, and `None` otherwise. This is Equation (1)
/// of §3.2.1 in the paper, solved exactly as described there:
/// `j = (-d * (k1'⁻¹ mod k2')) mod k2'`.
///
/// # Errors
/// [`NumthError::DivisionByZero`] if `m == 0`.
pub fn solve_lin_congruence(a: i64, b: i64, m: i64) -> Result<Option<Congruence>> {
    if m == 0 {
        return Err(NumthError::DivisionByZero);
    }
    let m = m.checked_abs().ok_or(NumthError::Overflow)?;
    let g = gcd(a, m);
    if g == 0 {
        // a == 0 and m == 0 is excluded above; a == 0, m > 0 gives g = m.
        unreachable!("gcd(a, m) == 0 implies m == 0");
    }
    if b % g != 0 {
        return Ok(None);
    }
    let (a1, b1, m1) = (a / g, b / g, m / g);
    if m1 == 1 {
        // Every x is a solution modulo 1.
        return Ok(Some(Congruence::new(0, 1)?));
    }
    let inv = mod_inverse(mod_euclid(a1, m1)?, m1)?;
    // x ≡ b1 * inv (mod m1); compute in i128 to avoid overflow.
    let x0 = ((b1 as i128 * inv as i128).rem_euclid(m1 as i128)) as i64;
    Ok(Some(Congruence::new(x0, m1)?))
}

/// Intersects two residue classes (Chinese Remainder with non-coprime
/// moduli).
///
/// # Examples
/// ```
/// use itd_numth::{crt_pair, Congruence};
/// // The paper's Example 3.1: (2n+1) ∩ 5n = 10n + 5.
/// let odd = Congruence::new(1, 2).unwrap();
/// let by5 = Congruence::new(0, 5).unwrap();
/// let meet = crt_pair(odd, by5).unwrap().unwrap();
/// assert_eq!((meet.residue(), meet.modulus()), (5, 10));
/// ```
///
/// Returns `None` when the classes are disjoint, i.e. when
/// `gcd(m1, m2) ∤ (r1 - r2)`; otherwise the intersection is a single class
/// modulo `lcm(m1, m2)`.
///
/// # Errors
/// [`NumthError::Overflow`] if `lcm(m1, m2)` exceeds `i64`.
pub fn crt_pair(c1: Congruence, c2: Congruence) -> Result<Option<Congruence>> {
    let (r1, m1) = (c1.residue(), c1.modulus());
    let (r2, m2) = (c2.residue(), c2.modulus());
    let g = gcd(m1, m2);
    let diff = r2 as i128 - r1 as i128;
    if diff.rem_euclid(g as i128) != 0 {
        return Ok(None);
    }
    let l = lcm(m1, m2)?;
    // x = r1 + m1 * t, with m1 * t ≡ (r2 - r1) (mod m2).
    let sol = solve_lin_congruence(m1, (diff.rem_euclid(m2 as i128)) as i64, m2)?
        .expect("divisibility checked above");
    // x ≡ r1 + m1 * t0 (mod lcm)
    let x0 = (r1 as i128 + m1 as i128 * sol.residue() as i128).rem_euclid(l as i128);
    Ok(Some(Congruence::new(x0 as i64, l)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn congruence_canonicalizes() {
        let c = Congruence::new(-1, 5).unwrap();
        assert_eq!(c.residue(), 4);
        assert_eq!(c.modulus(), 5);
        assert!(c.contains(-1));
        assert!(c.contains(4));
        assert!(c.contains(9));
        assert!(!c.contains(5));
        // Negative modulus is normalized.
        let c = Congruence::new(3, -5).unwrap();
        assert_eq!(c.modulus(), 5);
        assert_eq!(c.residue(), 3);
    }

    #[test]
    fn congruence_rejects_zero_modulus() {
        assert_eq!(Congruence::new(3, 0), Err(NumthError::DivisionByZero));
    }

    #[test]
    fn mod_inverse_basics() {
        assert_eq!(mod_inverse(3, 7).unwrap(), 5); // 3*5 = 15 ≡ 1 (mod 7)
        assert_eq!(mod_inverse(1, 2).unwrap(), 1);
        assert!(matches!(
            mod_inverse(4, 6),
            Err(NumthError::NotInvertible {
                value: 4,
                modulus: 6
            })
        ));
        assert_eq!(mod_inverse(3, 0), Err(NumthError::DivisionByZero));
    }

    #[test]
    fn lin_congruence_solved_and_unsolvable() {
        // 6x ≡ 4 (mod 8): g=2 divides 4; solutions x ≡ 2 (mod 4)? 6*2=12≡4 ✓
        let s = solve_lin_congruence(6, 4, 8).unwrap().unwrap();
        assert_eq!(s.modulus(), 4);
        assert!((0..4).any(|t| s.contains(t) && (6 * t - 4).rem_euclid(8) == 0));
        // 6x ≡ 3 (mod 8): g=2 does not divide 3.
        assert!(solve_lin_congruence(6, 3, 8).unwrap().is_none());
        // modulus 1 after reduction
        let s = solve_lin_congruence(5, 10, 5).unwrap().unwrap();
        assert_eq!(s.modulus(), 1);
    }

    #[test]
    fn crt_pair_paper_example() {
        // Example 3.1: (2n+1) ∩ (5n) = 10n + 5.
        let a = Congruence::new(1, 2).unwrap();
        let b = Congruence::new(0, 5).unwrap();
        let i = crt_pair(a, b).unwrap().unwrap();
        assert_eq!(i.modulus(), 10);
        assert_eq!(i.residue(), 5);

        // Example 3.1: (3n−4) ∩ (5n+2) = 15n + 2.
        let a = Congruence::new(-4, 3).unwrap();
        let b = Congruence::new(2, 5).unwrap();
        let i = crt_pair(a, b).unwrap().unwrap();
        assert_eq!(i.modulus(), 15);
        assert_eq!(i.residue(), 2);
    }

    #[test]
    fn crt_pair_disjoint() {
        // Even ∩ (4n + 1) = ∅.
        let a = Congruence::new(0, 2).unwrap();
        let b = Congruence::new(1, 4).unwrap();
        assert!(crt_pair(a, b).unwrap().is_none());
    }

    #[test]
    fn crt_pair_nested_moduli() {
        // (2n) ∩ (6n + 4) = 6n + 4 (the finer class).
        let a = Congruence::new(0, 2).unwrap();
        let b = Congruence::new(4, 6).unwrap();
        let i = crt_pair(a, b).unwrap().unwrap();
        assert_eq!((i.residue(), i.modulus()), (4, 6));
    }

    proptest! {
        #[test]
        fn prop_mod_inverse_correct(a in 1i64..1000, m in 2i64..1000) {
            match mod_inverse(a, m) {
                Ok(x) => {
                    prop_assert_eq!(gcd(a, m), 1);
                    prop_assert_eq!((a as i128 * x as i128).rem_euclid(m as i128), 1);
                    prop_assert!(x >= 0 && x < m);
                }
                Err(NumthError::NotInvertible { .. }) => prop_assert!(gcd(a, m) != 1),
                Err(e) => prop_assert!(false, "unexpected error {e:?}"),
            }
        }

        #[test]
        fn prop_crt_matches_brute_force(
            r1 in -50i64..50, m1 in 1i64..40,
            r2 in -50i64..50, m2 in 1i64..40,
        ) {
            let c1 = Congruence::new(r1, m1).unwrap();
            let c2 = Congruence::new(r2, m2).unwrap();
            let result = crt_pair(c1, c2).unwrap();
            let l = lcm(m1, m2).unwrap();
            // Brute-force the intersection over one full common period.
            let brute: Vec<i64> = (0..l).filter(|&x| c1.contains(x) && c2.contains(x)).collect();
            match result {
                None => prop_assert!(brute.is_empty()),
                Some(c) => {
                    prop_assert_eq!(c.modulus(), l);
                    prop_assert_eq!(brute, vec![c.residue()]);
                }
            }
        }

        #[test]
        fn prop_lin_congruence_matches_brute_force(
            a in -30i64..30, b in -30i64..30, m in 1i64..30,
        ) {
            let result = solve_lin_congruence(a, b, m).unwrap();
            let sols: Vec<i64> = (0..m)
                .filter(|&x| (a as i128 * x as i128 - b as i128).rem_euclid(m as i128) == 0)
                .collect();
            match result {
                None => prop_assert!(sols.is_empty()),
                Some(c) => {
                    prop_assert!(!sols.is_empty());
                    for x in 0..m {
                        prop_assert_eq!(c.contains(x), sols.contains(&x), "x = {}", x);
                    }
                }
            }
        }
    }
}

//! Checked integer number theory for the ITD temporal database.
//!
//! The algorithms of *Handling Infinite Temporal Data* (Kabanza, Stevenne,
//! Wolper) reduce every question about linear repeating points to elementary
//! number theory: greatest common divisors, least common multiples, modular
//! inverses (the extension of Euclid's algorithm cited in §3.2.1), and the
//! Chinese-remainder style intersection of residue classes.
//!
//! All user-visible quantities are [`i64`]. Normalization multiplies periods
//! together (worst case `k = Π kᵢ`, Appendix A.1), so overflow is a real
//! possibility rather than a theoretical one; every operation here is
//! *checked* and reports [`Overflow`] instead of wrapping.

mod arith;
mod congruence;
mod error;

pub use arith::{
    checked_abs, checked_add, checked_mul, checked_neg, checked_sub, div_ceil, div_floor, egcd,
    gcd, lcm, lcm_many, mod_euclid,
};
pub use congruence::{crt_pair, mod_inverse, solve_lin_congruence, Congruence};
pub use error::{NumthError, Overflow};

/// Result alias for fallible number-theory operations.
pub type Result<T> = std::result::Result<T, NumthError>;
